let n_pairs = List.length Compiler.Personality.pairs
let n_levels = Array.length Compiler.Optlevel.all

type t = {
  mutable programs : int;
  mutable generation_failures : int;
  mutable programs_with_failures : int;
  cross_counts : int array array;              (* pair × level *)
  cross_digit_acc : Fp.Digits.Acc.t array array;
  class_counts : (int * int * int, int ref) Hashtbl.t;
      (* (level index, class rank low, class rank high) *)
  within : int array array;                    (* personality × level *)
  mutable inconsistencies : int;
  mutable work : int;
  mutable ops : int;
  mutable performed : int;
  mutable within_performed : int;
}

let create () =
  {
    programs = 0;
    generation_failures = 0;
    programs_with_failures = 0;
    cross_counts = Array.make_matrix n_pairs n_levels 0;
    cross_digit_acc =
      Array.init n_pairs (fun _ -> Array.make n_levels Fp.Digits.Acc.empty);
    class_counts = Hashtbl.create 32;
    within = Array.make_matrix (Array.length Compiler.Personality.all) n_levels 0;
    inconsistencies = 0;
    work = 0;
    ops = 0;
    performed = 0;
    within_performed = 0;
  }

let pair_index pair =
  let rec go i = function
    | [] -> invalid_arg "Stats.pair_index"
    | p :: rest -> if p = pair then i else go (i + 1) rest
  in
  go 0 Compiler.Personality.pairs

let personality_index p =
  let rec go i =
    if Compiler.Personality.all.(i) = p then i else go (i + 1)
  in
  go 0

let class_rank (c : Fp.Bits.class_) =
  match c with
  | Fp.Bits.Real -> 0
  | Fp.Bits.Zero -> 1
  | Fp.Bits.Pos_inf -> 2
  | Fp.Bits.Neg_inf -> 3
  | Fp.Bits.Nan -> 4

let note_class t level_idx a b =
  let ra = class_rank a and rb = class_rank b in
  let key = (level_idx, min ra rb, max ra rb) in
  match Hashtbl.find_opt t.class_counts key with
  | Some r -> incr r
  | None -> Hashtbl.replace t.class_counts key (ref 1)

let add t (result : Run.result) =
  t.programs <- t.programs + 1;
  if result.Run.failures <> [] then
    t.programs_with_failures <- t.programs_with_failures + 1;
  t.work <- t.work + result.Run.total_work;
  t.ops <- t.ops + result.Run.total_ops;
  List.iter
    (fun (pair, (c : Run.comparison)) ->
      t.performed <- t.performed + 1;
      if c.Run.inconsistent then begin
        let pi = pair_index pair in
        let li = Compiler.Optlevel.index c.Run.level in
        t.cross_counts.(pi).(li) <- t.cross_counts.(pi).(li) + 1;
        t.cross_digit_acc.(pi).(li) <-
          Fp.Digits.Acc.add t.cross_digit_acc.(pi).(li) c.Run.digits;
        t.inconsistencies <- t.inconsistencies + 1;
        note_class t li c.Run.class_left c.Run.class_right
      end)
    result.Run.cross;
  List.iter
    (fun (personality, (c : Run.comparison)) ->
      t.within_performed <- t.within_performed + 1;
      if c.Run.inconsistent then begin
        let pi = personality_index personality in
        let li = Compiler.Optlevel.index c.Run.level in
        t.within.(pi).(li) <- t.within.(pi).(li) + 1
      end)
    result.Run.within

let add_generation_failure t =
  t.programs <- t.programs + 1;
  t.generation_failures <- t.generation_failures + 1;
  t.programs_with_failures <- t.programs_with_failures + 1

let n_programs t = t.programs
let total_comparisons t = t.programs * n_pairs * n_levels
let performed_comparisons t = t.performed
let total_inconsistencies t = t.inconsistencies

let inconsistency_rate t =
  let total = total_comparisons t in
  if total = 0 then 0.0
  else float_of_int t.inconsistencies /. float_of_int total

let cross_count t ~pair ~level =
  t.cross_counts.(pair).(Compiler.Optlevel.index level)

let cross_digits t ~pair ~level =
  t.cross_digit_acc.(pair).(Compiler.Optlevel.index level)

let pair_total t ~pair = Array.fold_left ( + ) 0 t.cross_counts.(pair)

let class_pair_count t ?level (a, b) =
  let ra = class_rank a and rb = class_rank b in
  let lo = min ra rb and hi = max ra rb in
  match level with
  | Some l ->
    let li = Compiler.Optlevel.index l in
    Option.fold ~none:0 ~some:( ! ) (Hashtbl.find_opt t.class_counts (li, lo, hi))
  | None ->
    Hashtbl.fold
      (fun (_, l, h) count acc -> if l = lo && h = hi then acc + !count else acc)
      t.class_counts 0

let rank_class = function
  | 0 -> Fp.Bits.Real
  | 1 -> Fp.Bits.Zero
  | 2 -> Fp.Bits.Pos_inf
  | 3 -> Fp.Bits.Neg_inf
  | _ -> Fp.Bits.Nan

let class_pairs_present t =
  (* Explicit comparator: the keys are int ranks today, but polymorphic
     [compare] here would silently become an ordering (or exception)
     hazard the day the key type grows a float or functional field. *)
  let compare_rank_pair (a_lo, a_hi) (b_lo, b_hi) =
    match Int.compare a_lo b_lo with
    | 0 -> Int.compare a_hi b_hi
    | c -> c
  in
  Hashtbl.fold (fun (_, lo, hi) _ acc -> (lo, hi) :: acc) t.class_counts []
  |> List.sort_uniq compare_rank_pair
  |> List.map (fun (lo, hi) -> (rank_class lo, rank_class hi))

let within_count t personality level =
  if level = Compiler.Optlevel.O0_nofma then 0
  else t.within.(personality_index personality).(Compiler.Optlevel.index level)

let within_total t personality =
  Array.fold_left ( + ) 0 t.within.(personality_index personality)

let within_comparisons t =
  t.programs * Array.length Compiler.Personality.all * (n_levels - 1)

let total_work t = t.work
let total_ops t = t.ops
let compile_failures t = t.programs_with_failures

(* ------------------------------------------------------------------ *)
(* Merging: fold two accumulators into a fresh one, as if a single
   accumulator had seen both result streams. Every field is a sum (or a
   min/max inside the digit accumulators), so the operation is
   commutative and associative — the algebraic property the fleet-merge
   property suite asserts. It is deliberately *not* idempotent: merging
   an accumulator with itself doubles every count, exactly like feeding
   the same results twice. Deduplication is the fleet layer's job
   (chunk-id-keyed union), not this fold's. *)

let acc_merge a b =
  let na, mina, maxa, suma = Fp.Digits.Acc.raw a in
  let nb, minb, maxb, sumb = Fp.Digits.Acc.raw b in
  if na = 0 then b
  else if nb = 0 then a
  else
    Fp.Digits.Acc.of_raw
      (na + nb, Stdlib.min mina minb, Stdlib.max maxa maxb, suma + sumb)

let merge a b =
  let t = create () in
  t.programs <- a.programs + b.programs;
  t.generation_failures <- a.generation_failures + b.generation_failures;
  t.programs_with_failures <-
    a.programs_with_failures + b.programs_with_failures;
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j _ ->
          t.cross_counts.(i).(j) <-
            a.cross_counts.(i).(j) + b.cross_counts.(i).(j);
          t.cross_digit_acc.(i).(j) <-
            acc_merge a.cross_digit_acc.(i).(j) b.cross_digit_acc.(i).(j))
        row)
    t.cross_counts;
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j _ -> t.within.(i).(j) <- a.within.(i).(j) + b.within.(i).(j))
        row)
    t.within;
  let add_classes src =
    Hashtbl.iter
      (fun key count ->
        match Hashtbl.find_opt t.class_counts key with
        | Some r -> r := !r + !count
        | None -> Hashtbl.replace t.class_counts key (ref !count))
      src.class_counts
  in
  add_classes a;
  add_classes b;
  t.inconsistencies <- a.inconsistencies + b.inconsistencies;
  t.work <- a.work + b.work;
  t.ops <- a.ops + b.ops;
  t.performed <- a.performed + b.performed;
  t.within_performed <- a.within_performed + b.within_performed;
  t

(* ------------------------------------------------------------------ *)
(* Snapshot codec: everything the accumulator holds, so a checkpointed
   campaign restores its running totals exactly. All payloads are ints,
   so plain JSON numbers are lossless. *)

let json_schema = "llm4fp-stats/1"

let matrix_to_json m =
  Obs.Json.List
    (Array.to_list
       (Array.map
          (fun row ->
            Obs.Json.List
              (Array.to_list (Array.map (fun v -> Obs.Json.Int v) row)))
          m))

let to_json t =
  let acc_to_json a =
    let n, min_, max_, sum = Fp.Digits.Acc.raw a in
    Obs.Json.List
      [ Obs.Json.Int n; Obs.Json.Int min_; Obs.Json.Int max_; Obs.Json.Int sum ]
  in
  let class_counts =
    Hashtbl.fold
      (fun (l, lo, hi) count acc -> ((l, lo, hi), !count) :: acc)
      t.class_counts []
    |> List.sort (fun ((al, alo, ahi), _) ((bl, blo, bhi), _) ->
           match Int.compare al bl with
           | 0 -> (
               match Int.compare alo blo with
               | 0 -> Int.compare ahi bhi
               | c -> c)
           | c -> c)
    |> List.map (fun ((l, lo, hi), count) ->
           Obs.Json.List
             [ Obs.Json.Int l;
               Obs.Json.Int lo;
               Obs.Json.Int hi;
               Obs.Json.Int count ])
  in
  Obs.Json.Obj
    [ ("schema", Obs.Json.String json_schema);
      ("programs", Obs.Json.Int t.programs);
      ("generation_failures", Obs.Json.Int t.generation_failures);
      ("programs_with_failures", Obs.Json.Int t.programs_with_failures);
      ("cross_counts", matrix_to_json t.cross_counts);
      ( "cross_digit_acc",
        Obs.Json.List
          (Array.to_list
             (Array.map
                (fun row ->
                  Obs.Json.List (Array.to_list (Array.map acc_to_json row)))
                t.cross_digit_acc)) );
      ("class_counts", Obs.Json.List class_counts);
      ("within", matrix_to_json t.within);
      ("inconsistencies", Obs.Json.Int t.inconsistencies);
      ("work", Obs.Json.Int t.work);
      ("ops", Obs.Json.Int t.ops);
      ("performed", Obs.Json.Int t.performed);
      ("within_performed", Obs.Json.Int t.within_performed) ]

let ( let* ) = Result.bind

let int_of_json name = function
  | Obs.Json.Int n -> Ok n
  | _ -> Error (Printf.sprintf "stats JSON: %s is not an int" name)

let int_field name json =
  match Obs.Json.member name json with
  | Some v -> int_of_json name v
  | None -> Error (Printf.sprintf "stats JSON: missing field %S" name)

let fill_matrix name dst json =
  match json with
  | Some (Obs.Json.List rows) when List.length rows = Array.length dst ->
      let rec go i = function
        | [] -> Ok ()
        | Obs.Json.List cells :: rest
          when List.length cells = Array.length dst.(i) ->
            let rec cells_go j = function
              | [] -> go (i + 1) rest
              | c :: cs ->
                  let* v = int_of_json name c in
                  dst.(i).(j) <- v;
                  cells_go (j + 1) cs
            in
            cells_go 0 cells
        | _ -> Error (Printf.sprintf "stats JSON: %s has the wrong shape" name)
      in
      go 0 rows
  | _ -> Error (Printf.sprintf "stats JSON: %s has the wrong shape" name)

let of_json json =
  let* schema_got =
    match Obs.Json.member "schema" json with
    | Some (Obs.Json.String s) -> Ok s
    | _ -> Error "stats JSON: missing schema"
  in
  let* () =
    if schema_got = json_schema then Ok ()
    else Error (Printf.sprintf "stats JSON: unsupported schema %S" schema_got)
  in
  let t = create () in
  let* programs = int_field "programs" json in
  let* generation_failures = int_field "generation_failures" json in
  let* programs_with_failures = int_field "programs_with_failures" json in
  let* inconsistencies = int_field "inconsistencies" json in
  let* work = int_field "work" json in
  let* ops = int_field "ops" json in
  let* performed = int_field "performed" json in
  let* within_performed = int_field "within_performed" json in
  let* () = fill_matrix "cross_counts" t.cross_counts (Obs.Json.member "cross_counts" json) in
  let* () = fill_matrix "within" t.within (Obs.Json.member "within" json) in
  let* () =
    match Obs.Json.member "cross_digit_acc" json with
    | Some (Obs.Json.List rows)
      when List.length rows = Array.length t.cross_digit_acc ->
        let rec go i = function
          | [] -> Ok ()
          | Obs.Json.List cells :: rest
            when List.length cells = Array.length t.cross_digit_acc.(i) ->
              let rec cells_go j = function
                | [] -> go (i + 1) rest
                | Obs.Json.List
                    [ Obs.Json.Int n;
                      Obs.Json.Int min_;
                      Obs.Json.Int max_;
                      Obs.Json.Int sum ]
                  :: cs ->
                    t.cross_digit_acc.(i).(j) <-
                      Fp.Digits.Acc.of_raw (n, min_, max_, sum);
                    cells_go (j + 1) cs
                | _ -> Error "stats JSON: cross_digit_acc cell has the wrong shape"
              in
              cells_go 0 cells
          | _ -> Error "stats JSON: cross_digit_acc has the wrong shape"
        in
        go 0 rows
    | _ -> Error "stats JSON: cross_digit_acc has the wrong shape"
  in
  let* () =
    match Obs.Json.member "class_counts" json with
    | Some (Obs.Json.List entries) ->
        let rec go = function
          | [] -> Ok ()
          | Obs.Json.List
              [ Obs.Json.Int l; Obs.Json.Int lo; Obs.Json.Int hi;
                Obs.Json.Int count ]
            :: rest ->
              Hashtbl.replace t.class_counts (l, lo, hi) (ref count);
              go rest
          | _ -> Error "stats JSON: class_counts entry has the wrong shape"
        in
        go entries
    | _ -> Error "stats JSON: class_counts has the wrong shape"
  in
  t.programs <- programs;
  t.generation_failures <- generation_failures;
  t.programs_with_failures <- programs_with_failures;
  t.inconsistencies <- inconsistencies;
  t.work <- work;
  t.ops <- ops;
  t.performed <- performed;
  t.within_performed <- within_performed;
  Ok t
