(** Forensic inconsistency cases: self-contained, replayable witnesses.

    A campaign that merely {e counts} inconsistencies cannot answer the
    paper's RQ2/RQ3 drill-down questions after the run ends, and cannot
    feed the pLiner-style root-cause analysis of {!Isolate} (§3.2.2,
    §4). A {e case} captures everything needed to reproduce one
    cross- or within-compiler inconsistency bit-for-bit in a fresh
    process: the printed program, the input vector, both configurations,
    both hexadecimal outputs with their value classes, the digit
    difference, and the (seed, slot) provenance.

    Cases are identified by a {!fingerprint}: a 64-bit FNV-1a content
    hash over the program source, the bit-exact inputs, the
    configuration pair and the output bits — {e not} over the
    provenance, so the same inconsistency found by two campaigns (or at
    two job counts) has the same identity. The hash is computed from
    bytes we serialize ourselves, making it stable across processes,
    architectures and OCaml versions. *)

type kind = Cross | Within

type side = {
  config : Compiler.Config.t;
  hex : string;  (** 16-char hexadecimal encoding of the printed result *)
  class_ : Fp.Bits.class_;
}

type t = {
  kind : kind;
  left : side;   (** for {!Within}, the [00_nofma] baseline *)
  right : side;  (** for {!Within}, the non-baseline level *)
  level : Compiler.Optlevel.t;  (** the compared (non-baseline) level *)
  digits : int;  (** decimal digit difference, per {!Fp.Digits} *)
  source : string;  (** full host translation unit ({!Lang.Pp.to_c}) *)
  inputs : Irsim.Inputs.t;
  seed : int;  (** campaign seed (provenance, not part of the hash) *)
  slot : int;  (** campaign budget slot (provenance) *)
}

val kind_name : kind -> string
(** ["cross"] or ["within"]. *)

val pair_name : t -> string
(** The comparison's display name: {!Compiler.Personality.pair_name}
    for cross cases, the compiler's own name for within cases. *)

val fingerprint : t -> string
(** 16 lowercase hex digits of the FNV-1a-64 content hash. *)

val of_result :
  seed:int ->
  slot:int ->
  program:Lang.Ast.program ->
  inputs:Irsim.Inputs.t ->
  Run.result ->
  t list
(** One case per inconsistent comparison of the result, cross cases
    first, in the result's (deterministic) comparison order. *)

val to_json : t -> Obs.Json.t
(** The archive encoding ([schema "llm4fp-case/1"]): one object whose
    float payloads (inputs) are carried as bit-exact hexadecimal
    alongside a human-readable decimal rendering. Includes the
    fingerprint. *)

val of_json : Obs.Json.t -> (t, string) result
(** Inverse of {!to_json}. Verifies that the embedded fingerprint
    matches the decoded content (an archive integrity check). *)

val input_to_json : Irsim.Inputs.value -> Obs.Json.t
(** The bit-exact (hex-payload) input encoding used inside {!to_json},
    exposed so campaign checkpoints reuse the same lossless codec. *)

val input_of_json : Obs.Json.t -> (Irsim.Inputs.value, string) result
(** Inverse of {!input_to_json}. *)

val to_analytics : t -> Report.Analytics.case
(** The dependency-free projection the dashboard aggregates. *)
