(** The flight recorder: a first-seen archive of inconsistency cases.

    A recorder owns a directory and writes each {e new} fingerprint as a
    self-contained single-line JSON file [DIR/<fingerprint>.jsonl] (the
    {!Case.to_json} encoding). Duplicates — the same inconsistency
    retriggered by a later slot, or by both sides of a comparison
    family — are counted but not rewritten, so an archive directory is a
    set, not a log. Recording never changes campaign results; it only
    observes them.

    Thread-safe: [record] may be called from any domain (the dedup set
    and the counters sit behind a mutex). With tracing enabled, every
    first-seen case emits an {!Obs.Event.Case_recorded} event. *)

type t

val create : dir:string -> t
(** Creates [dir] (and missing parents) if needed. Pre-existing
    [*.jsonl] files in [dir] seed the dedup set, so re-running a
    campaign into the same directory extends the archive instead of
    rewriting it. *)

val dir : t -> string

val record : t -> Case.t -> bool
(** [true] when the case was new and archived, [false] when its
    fingerprint was already present. *)

val count : t -> int
(** Cases archived by this recorder (excluding pre-existing ones). *)

val duplicates : t -> int
(** Cases offered to {!record} that were already present. *)

val snapshot : t -> string list * int * int
(** [(seen, recorded, duplicates)]: the sorted dedup set and both
    counters, for campaign checkpoints. *)

val restore : t -> string list * int * int -> unit
(** Replace the recorder's dedup set and counters with a {!snapshot}.
    A resumed campaign restores the {e checkpoint-time} state rather
    than re-seeding from the directory, so cases archived after the
    checkpoint are re-recorded (the atomic rewrite produces identical
    bytes) and the counters match an uninterrupted run. *)

val load_dir : string -> (Case.t list, string) result
(** Read every [*.jsonl] file of an archive directory, sorted by file
    name (= fingerprint order). Fails on the first undecodable file,
    naming it. *)

val load_file : string -> (Case.t, string) result
(** Read one archived case (the first line of the file). *)

val minimized_path : dir:string -> fingerprint:string -> string
(** [dir/<fingerprint>.min.jsonl]: where the reducer's minimized
    companion of an archived case lives. *)

val write_minimized : dir:string -> fingerprint:string -> Case.t -> string
(** Write a reduced case next to the archived original it came from
    (keyed by the {e original}'s fingerprint) and return the path.
    Minimized companions are not archive members: {!create}'s dedup
    seeding and {!load_dir} ignore [*.min.jsonl] files. *)
