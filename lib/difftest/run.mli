(** Differential testing of one program (paper §2.4, §3.1).

    The program is compiled under every (compiler × optimization level)
    configuration and each binary runs on the same inputs. Two families
    of comparisons are recorded:

    - {b cross-compiler}: for every optimization level, every pair of
      compilers (3 pairs × 6 levels = 18 comparisons per program — the
      denominators of Tables 2 and 5);
    - {b within-compiler}: for every compiler, every level against its
      own [00_nofma] baseline (3 × 5 = 15 comparisons — Table 6).

    A comparison is inconsistent when the two printed results differ in
    their 16-character hexadecimal encodings. Each inconsistency carries
    the two value classes (RQ2) and the decimal digit difference (RQ3). *)

type output = {
  config : Compiler.Config.t;
  value : float;
  hex : string;
  ops : int;   (** dynamic FP operations, for the time model *)
  work : int;  (** optimized IR size, for the time model *)
}

type comparison = {
  level : Compiler.Optlevel.t;
  left : output;
  right : output;
  inconsistent : bool;
  class_left : Fp.Bits.class_;
  class_right : Fp.Bits.class_;
  digits : int;  (** 0 when consistent *)
}

type result = {
  outputs : output list;            (** successful configurations *)
  failures : (Compiler.Config.t * string) list;
  cross : ((Compiler.Personality.t * Compiler.Personality.t) * comparison) list;
  within : (Compiler.Personality.t * comparison) list;
      (** [comparison.level] is the non-baseline level; [left] ran at
          [00_nofma] *)
  total_work : int;
  total_ops : int;
}

val test :
  ?configs:Compiler.Config.t list ->
  ?jobs:int ->
  Lang.Ast.program ->
  Irsim.Inputs.t ->
  result
(** Compile everywhere, run everything, compare. Comparisons involving a
    failed configuration are simply absent (the paper passes only
    successfully compiled binaries to differential testing). [configs]
    defaults to the full 18-configuration matrix; ablation studies pass
    modified matrices — campaigns build the list once and thread it
    through every slot.

    The front end (emit + parse + validate + lower) runs once per
    {e target} via {!Compiler.Driver.fronts} — two passes per program
    instead of one per configuration — and [jobs > 1] fans the
    per-configuration back ends and the deduplicated executions across
    the {!Exec.Pool}.

    Executions are deduplicated: configurations whose back ends produced
    the same (post-pipeline IR, runtime) pair share one execution of
    that binary, and each configuration then books the shared outcome as
    its own run (metrics, trace event, totals). The
    [exec.dedup.hits] / [exec.dedup.misses] counters expose the ratio;
    on the standard matrix the O1/O2/O3 levels of each personality
    collapse, roughly halving executions.

    The [result] is identical at any job count and on either
    {!Compiler.Driver.engine}; only wall-clock changes. Trace events
    carry a deterministic [(slot, lane, seq)] stamp — [lane] is the
    configuration's matrix index — so a sink wrapped in
    {!Obs.Sink.ordered} observes the exact [jobs = 1] event sequence at
    any job count. *)

val coverage_keys : result -> Obs.Coverage.key list
(** The result's inconsistent comparisons projected to coverage-ledger
    keys: cross comparisons first (kind ["cross"], pair =
    {!Compiler.Personality.pair_name}), then within (kind ["within"],
    pair = the compiler's own name), each in the result's level-major
    construction order — so the campaign feeds its {!Obs.Coverage}
    ledger in a deterministic order. *)

val cross_inconsistencies : result -> int
val has_inconsistency : result -> bool
(** True when any cross-compiler comparison is inconsistent — the
    criterion for entering the feedback set (§2.4). *)
