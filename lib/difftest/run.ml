type output = {
  config : Compiler.Config.t;
  value : float;
  hex : string;
  ops : int;
  work : int;
}

type comparison = {
  level : Compiler.Optlevel.t;
  left : output;
  right : output;
  inconsistent : bool;
  class_left : Fp.Bits.class_;
  class_right : Fp.Bits.class_;
  digits : int;
}

type result = {
  outputs : output list;
  failures : (Compiler.Config.t * string) list;
  cross : ((Compiler.Personality.t * Compiler.Personality.t) * comparison) list;
  within : (Compiler.Personality.t * comparison) list;
  total_work : int;
  total_ops : int;
}

let m_programs = Obs.Metrics.counter "difftest.programs"
let m_cross = Obs.Metrics.counter "difftest.comparisons.cross"
let m_within = Obs.Metrics.counter "difftest.comparisons.within"
let m_cross_incons = Obs.Metrics.counter "difftest.inconsistencies.cross"
let m_within_incons = Obs.Metrics.counter "difftest.inconsistencies.within"

let m_digits =
  Obs.Metrics.histogram ~buckets:[| 1.0; 2.0; 4.0; 8.0; 12.0; 17.0 |]
    "difftest.digit_diffs"

let compare_outputs level (left : output) (right : output) =
  let inconsistent = left.hex <> right.hex in
  {
    level;
    left;
    right;
    inconsistent;
    class_left = Fp.Bits.classify left.value;
    class_right = Fp.Bits.classify right.value;
    digits = (if inconsistent then Fp.Digits.diff_count left.value right.value else 0);
  }

let test ?configs ?(jobs = 1) program inputs =
  let configs =
    match configs with Some cs -> cs | None -> Compiler.Config.all ()
  in
  (* One shared front-end cache for the whole configuration matrix: two
     front-end passes (host C, device CUDA) instead of one per config.
     The per-config back end + execution fan out across the domain pool;
     Pool.map keeps configuration order, so outputs and failures are
     identical at any job count. *)
  let fronts = Compiler.Driver.fronts program in
  let slot = Obs.Trace.current_slot () in
  let evaluate config =
    match Compiler.Driver.compile_with fronts config with
    | Error msg -> Either.Right (config, msg)
    | Ok binary ->
      let out = Compiler.Driver.run binary inputs in
      Either.Left
        {
          config;
          value = out.Irsim.Interp.result;
          hex = Fp.Bits.hex_of_double out.Irsim.Interp.result;
          ops = out.Irsim.Interp.fp_ops;
          work = binary.Compiler.Driver.work;
        }
  in
  let task (lane, config) =
    (* Pool workers re-establish the campaign's slot context so their
       Compiled/Executed trace events stay correlated, and stamp their
       events with the configuration's matrix index as the lane — an
       ordered sink sorts on (slot, lane, seq), restoring the jobs=1
       event order no matter which domain finishes first. *)
    let go () = Obs.Trace.with_lane lane (fun () -> evaluate config) in
    match slot with
    | Some s -> Obs.Trace.with_slot s go
    | None -> go ()
  in
  let outputs, failures =
    (* At jobs = 1 the pool runs tasks inline, so the per-config
       compile/interp spans nest under this one in the span tree; at
       jobs > 1 they record in worker domains and surface as that
       domain's roots. *)
    Obs.Span.with_span "difftest.fanout" @@ fun () ->
    List.partition_map Fun.id
      (Exec.Pool.map ~jobs task (List.mapi (fun i c -> (i, c)) configs))
  in
  (* One O(n) pass instead of an O(configs) scan per lookup: the
     comparison stage below performs 2 lookups per (pair, level) plus 2
     per (personality, level), which made the old List.find_opt
     quadratic in the number of configurations. *)
  let by_config = Hashtbl.create 32 in
  List.iter
    (fun o ->
      Hashtbl.replace by_config
        (o.config.Compiler.Config.personality, o.config.Compiler.Config.level)
        o)
    outputs;
  let find personality level = Hashtbl.find_opt by_config (personality, level) in
  let cross, within =
    Obs.Span.with_span "difftest.compare" @@ fun () ->
    let cross =
      List.concat_map
        (fun level ->
          List.filter_map
            (fun (a, b) ->
              match (find a level, find b level) with
              | Some left, Some right ->
                Some ((a, b), compare_outputs level left right)
              | _ -> None)
            Compiler.Personality.pairs)
        (Array.to_list Compiler.Optlevel.all)
    in
    let within =
      List.concat_map
        (fun personality ->
          List.filter_map
            (fun level ->
              if level = Compiler.Optlevel.O0_nofma then None
              else
                match
                  ( find personality Compiler.Optlevel.O0_nofma,
                    find personality level )
                with
                | Some baseline, Some other ->
                  Some (personality, compare_outputs level baseline other)
                | _ -> None)
            (Array.to_list Compiler.Optlevel.all))
        (Array.to_list Compiler.Personality.all)
    in
    (cross, within)
  in
  let cross_hits =
    List.fold_left (fun acc (_, c) -> if c.inconsistent then acc + 1 else acc)
      0 cross
  in
  Obs.Metrics.incr m_programs;
  Obs.Metrics.incr ~by:(List.length cross) m_cross;
  Obs.Metrics.incr ~by:(List.length within) m_within;
  Obs.Metrics.incr ~by:cross_hits m_cross_incons;
  Obs.Metrics.incr
    ~by:
      (List.fold_left
         (fun acc (_, c) -> if c.inconsistent then acc + 1 else acc)
         0 within)
    m_within_incons;
  List.iter
    (fun (_, c) ->
      if c.inconsistent then Obs.Metrics.observe m_digits (float_of_int c.digits))
    cross;
  if Obs.Trace.on () then begin
    let slot = Obs.Trace.current_slot () in
    List.iter
      (fun (pair, c) ->
        if c.inconsistent then
          Obs.Trace.emit
            (Obs.Event.Inconsistency_found
               {
                 slot;
                 pair = Compiler.Personality.pair_name pair;
                 level = Compiler.Optlevel.name c.level;
                 left_hex = c.left.hex;
                 right_hex = c.right.hex;
                 digits = c.digits;
               }))
      cross;
    Obs.Trace.emit
      (Obs.Event.Compared
         {
           slot;
           cross = List.length cross;
           within = List.length within;
           inconsistent = cross_hits;
         })
  end;
  {
    outputs;
    failures;
    cross;
    within;
    total_work = List.fold_left (fun acc o -> acc + o.work) 0 outputs;
    total_ops = List.fold_left (fun acc o -> acc + o.ops) 0 outputs;
  }

let cross_inconsistencies result =
  List.fold_left
    (fun acc (_, c) -> if c.inconsistent then acc + 1 else acc)
    0 result.cross

let has_inconsistency result = cross_inconsistencies result > 0
