type output = {
  config : Compiler.Config.t;
  value : float;
  hex : string;
  ops : int;
  work : int;
}

type comparison = {
  level : Compiler.Optlevel.t;
  left : output;
  right : output;
  inconsistent : bool;
  class_left : Fp.Bits.class_;
  class_right : Fp.Bits.class_;
  digits : int;
}

type result = {
  outputs : output list;
  failures : (Compiler.Config.t * string) list;
  cross : ((Compiler.Personality.t * Compiler.Personality.t) * comparison) list;
  within : (Compiler.Personality.t * comparison) list;
  total_work : int;
  total_ops : int;
}

let m_programs = Obs.Metrics.counter "difftest.programs"
let m_cross = Obs.Metrics.counter "difftest.comparisons.cross"
let m_within = Obs.Metrics.counter "difftest.comparisons.within"
let m_cross_incons = Obs.Metrics.counter "difftest.inconsistencies.cross"
let m_within_incons = Obs.Metrics.counter "difftest.inconsistencies.within"

let m_digits =
  Obs.Metrics.histogram ~buckets:[| 1.0; 2.0; 4.0; 8.0; 12.0; 17.0 |]
    "difftest.digit_diffs"

let m_dedup_hits = Obs.Metrics.counter "exec.dedup.hits"
let m_dedup_misses = Obs.Metrics.counter "exec.dedup.misses"

let compare_outputs level (left : output) (right : output) =
  let inconsistent = left.hex <> right.hex in
  {
    level;
    left;
    right;
    inconsistent;
    class_left = Fp.Bits.classify left.value;
    class_right = Fp.Bits.classify right.value;
    digits = (if inconsistent then Fp.Digits.diff_count left.value right.value else 0);
  }

let test ?configs ?(jobs = 1) program inputs =
  let configs =
    match configs with Some cs -> cs | None -> Compiler.Config.all ()
  in
  (* One shared front-end cache for the whole configuration matrix: two
     front-end passes (host C, device CUDA) instead of one per config.
     The per-config back end + execution fan out across the domain pool;
     Pool.map keeps configuration order, so outputs and failures are
     identical at any job count. *)
  let fronts = Compiler.Driver.fronts program in
  let slot = Obs.Trace.current_slot () in
  (* Pool workers re-establish the campaign's slot context so their
     Compiled/Executed trace events stay correlated. *)
  let in_slot go =
    match slot with Some s -> Obs.Trace.with_slot s go | None -> go ()
  in
  (* Phase 1 — compile every configuration. Each task stamps its events
     with the configuration's matrix index as the lane — an ordered sink
     sorts on (slot, lane, seq), restoring the jobs=1 event order no
     matter which domain finishes first. At jobs = 1 the pool runs tasks
     inline, so the per-config compile spans nest under this one in the
     span tree; at jobs > 1 they record in worker domains and surface as
     that domain's roots. *)
  let compiled =
    Obs.Span.with_span "difftest.fanout" @@ fun () ->
    Exec.Pool.map ~jobs
      (fun (lane, config) ->
        in_slot (fun () ->
            Obs.Trace.with_lane lane (fun () ->
                Compiler.Driver.compile_with fronts config)))
      (List.mapi (fun i c -> (i, c)) configs)
  in
  (* Phase 2 — deduplicate executions. Configurations whose back ends
     produced the same (post-pipeline IR, runtime) pair are literally the
     same binary: one execution serves them all. The key scan is
     polymorphic [compare] (NaN-tolerant, unlike [=], so folded NaN
     constants still dedup) over at most |configs| leaders. The first
     configuration holding a key becomes the group's leader, so grouping
     is deterministic in configuration order. *)
  let exec_key (b : Compiler.Driver.binary) =
    (b.Compiler.Driver.ir, Compiler.Config.runtime b.Compiler.Driver.config)
  in
  let leader_of = Array.make (max 1 (List.length configs)) (-1) in
  let leaders_rev = ref [] in
  List.iteri
    (fun i r ->
      match r with
      | Error _ -> ()
      | Ok binary -> begin
        let key = exec_key binary in
        match
          List.find_opt
            (fun (k, _, _) -> Stdlib.compare k key = 0)
            !leaders_rev
        with
        | Some (_, lane, _) -> leader_of.(i) <- lane
        | None ->
          leaders_rev := (key, i, binary) :: !leaders_rev;
          leader_of.(i) <- i
      end)
    compiled;
  let leaders = List.rev !leaders_rev in
  (* Phase 3 — one execution per distinct binary, fanned out. Raw
     [execute]: accounting happens per configuration in phase 4. A trap
     (out-of-bounds subscript) is a reportable per-configuration
     failure, not a crash. *)
  let executed =
    Obs.Span.with_span "difftest.exec" @@ fun () ->
    Exec.Pool.map ~jobs
      (fun (_, _, binary) ->
        in_slot (fun () ->
            match Compiler.Driver.execute binary inputs with
            | out -> Ok out
            | exception Irsim.Interp.Trap t ->
              Error ("execution trapped: " ^ Irsim.Interp.trap_message t)))
      leaders
  in
  let outcome_by_lane = Hashtbl.create 16 in
  List.iter2
    (fun (_, lane, _) out -> Hashtbl.replace outcome_by_lane lane out)
    leaders executed;
  (* Phase 4 — per-configuration accounting, sequential in configuration
     order. Every configuration books its own run — metrics, dedup
     hit/miss, and (when tracing) an Executed event re-entering the
     configuration's lane at seq 1, the stamp the compile event's lane
     left off at — so outputs, totals, and trace bytes are identical to
     executing each configuration separately. *)
  let outputs, failures =
    let outs = ref [] and fails = ref [] in
    List.iteri
      (fun i (config, r) ->
        match r with
        | Error msg -> fails := (config, msg) :: !fails
        | Ok binary -> begin
          let lane = leader_of.(i) in
          match Hashtbl.find outcome_by_lane lane with
          | Error msg ->
            fails :=
              (config, Printf.sprintf "%s: %s" (Compiler.Config.name config) msg)
              :: !fails
          | Ok (out : Irsim.Interp.outcome) ->
            Obs.Metrics.incr
              (if lane = i then m_dedup_misses else m_dedup_hits);
            in_slot (fun () ->
                Obs.Trace.with_lane ~seq:1 i (fun () ->
                    Compiler.Driver.account binary out));
            outs :=
              {
                config;
                value = out.Irsim.Interp.result;
                hex = Fp.Bits.hex_of_double out.Irsim.Interp.result;
                ops = out.Irsim.Interp.fp_ops;
                work = binary.Compiler.Driver.work;
              }
              :: !outs
        end)
      (List.combine configs compiled);
    (List.rev !outs, List.rev !fails)
  in
  (* One O(n) pass instead of an O(configs) scan per lookup: the
     comparison stage below performs 2 lookups per (pair, level) plus 2
     per (personality, level), which made the old List.find_opt
     quadratic in the number of configurations. *)
  let by_config = Hashtbl.create 32 in
  List.iter
    (fun o ->
      Hashtbl.replace by_config
        (o.config.Compiler.Config.personality, o.config.Compiler.Config.level)
        o)
    outputs;
  let find personality level = Hashtbl.find_opt by_config (personality, level) in
  let cross, within =
    Obs.Span.with_span "difftest.compare" @@ fun () ->
    let cross =
      List.concat_map
        (fun level ->
          List.filter_map
            (fun (a, b) ->
              match (find a level, find b level) with
              | Some left, Some right ->
                Some ((a, b), compare_outputs level left right)
              | _ -> None)
            Compiler.Personality.pairs)
        (Array.to_list Compiler.Optlevel.all)
    in
    let within =
      List.concat_map
        (fun personality ->
          List.filter_map
            (fun level ->
              if level = Compiler.Optlevel.O0_nofma then None
              else
                match
                  ( find personality Compiler.Optlevel.O0_nofma,
                    find personality level )
                with
                | Some baseline, Some other ->
                  Some (personality, compare_outputs level baseline other)
                | _ -> None)
            (Array.to_list Compiler.Optlevel.all))
        (Array.to_list Compiler.Personality.all)
    in
    (cross, within)
  in
  let cross_hits =
    List.fold_left (fun acc (_, c) -> if c.inconsistent then acc + 1 else acc)
      0 cross
  in
  Obs.Metrics.incr m_programs;
  Obs.Metrics.incr ~by:(List.length cross) m_cross;
  Obs.Metrics.incr ~by:(List.length within) m_within;
  Obs.Metrics.incr ~by:cross_hits m_cross_incons;
  Obs.Metrics.incr
    ~by:
      (List.fold_left
         (fun acc (_, c) -> if c.inconsistent then acc + 1 else acc)
         0 within)
    m_within_incons;
  List.iter
    (fun (_, c) ->
      if c.inconsistent then Obs.Metrics.observe m_digits (float_of_int c.digits))
    cross;
  if Obs.Trace.on () then begin
    let slot = Obs.Trace.current_slot () in
    List.iter
      (fun (pair, c) ->
        if c.inconsistent then
          Obs.Trace.emit
            (Obs.Event.Inconsistency_found
               {
                 slot;
                 pair = Compiler.Personality.pair_name pair;
                 level = Compiler.Optlevel.name c.level;
                 left_hex = c.left.hex;
                 right_hex = c.right.hex;
                 digits = c.digits;
               }))
      cross;
    Obs.Trace.emit
      (Obs.Event.Compared
         {
           slot;
           cross = List.length cross;
           within = List.length within;
           inconsistent = cross_hits;
         })
  end;
  {
    outputs;
    failures;
    cross;
    within;
    total_work = List.fold_left (fun acc o -> acc + o.work) 0 outputs;
    total_ops = List.fold_left (fun acc o -> acc + o.ops) 0 outputs;
  }

(* The coverage projection: one ledger key per inconsistent comparison,
   cross first then within, each list in its construction (level-major)
   order — the deterministic feed order of the campaign's ledger. *)
let coverage_keys result =
  let key kind pair (c : comparison) =
    {
      Obs.Coverage.kind;
      pair;
      level = Compiler.Optlevel.name c.level;
      classes = Fp.Bits.class_pair_name c.class_left c.class_right;
    }
  in
  List.filter_map
    (fun (pair, c) ->
      if c.inconsistent then
        Some (key "cross" (Compiler.Personality.pair_name pair) c)
      else None)
    result.cross
  @ List.filter_map
      (fun (p, c) ->
        if c.inconsistent then
          Some (key "within" (Compiler.Personality.name p) c)
        else None)
      result.within

let cross_inconsistencies result =
  List.fold_left
    (fun acc (_, c) -> if c.inconsistent then acc + 1 else acc)
    0 result.cross

let has_inconsistency result = cross_inconsistencies result > 0
