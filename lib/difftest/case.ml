(* Self-contained, replayable inconsistency witnesses. The archive
   encoding carries floats as bit-exact hexadecimal (plus a decimal
   rendering for humans), so a decoded case replays on exactly the
   inputs that triggered it. *)

type kind = Cross | Within

type side = {
  config : Compiler.Config.t;
  hex : string;
  class_ : Fp.Bits.class_;
}

type t = {
  kind : kind;
  left : side;
  right : side;
  level : Compiler.Optlevel.t;
  digits : int;
  source : string;
  inputs : Irsim.Inputs.t;
  seed : int;
  slot : int;
}

let kind_name = function Cross -> "cross" | Within -> "within"

let pair_name t =
  match t.kind with
  | Cross ->
    Compiler.Personality.pair_name
      ( t.left.config.Compiler.Config.personality,
        t.right.config.Compiler.Config.personality )
  | Within ->
    Compiler.Personality.name t.left.config.Compiler.Config.personality

(* ------------------------------------------------------------------ *)
(* Fingerprint: FNV-1a over bytes we serialize ourselves, so the hash
   is stable across processes (unlike Hashtbl.hash, whose value is not
   part of any compatibility contract). *)

let fnv1a64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code c)))
          0x100000001b3L)
    s;
  !h

let input_token = function
  | Irsim.Inputs.Fp v -> "fp:" ^ Fp.Bits.hex_of_double v
  | Irsim.Inputs.Int n -> "int:" ^ string_of_int n
  | Irsim.Inputs.Arr a ->
    "arr:"
    ^ String.concat ","
        (Array.to_list (Array.map Fp.Bits.hex_of_double a))

let side_token s = Compiler.Config.name s.config ^ "=" ^ s.hex

let fingerprint t =
  (* Content only — no seed/slot — so the same inconsistency has the
     same identity whichever campaign found it. *)
  let canonical =
    String.concat "\x00"
      ([ kind_name t.kind;
         Compiler.Optlevel.name t.level;
         side_token t.left;
         side_token t.right ]
      @ List.map input_token t.inputs
      @ [ t.source ])
  in
  Printf.sprintf "%016Lx" (fnv1a64 canonical)

(* ------------------------------------------------------------------ *)

let of_result ~seed ~slot ~program ~inputs (r : Run.result) =
  let source = Lang.Pp.to_c program in
  let case kind (c : Run.comparison) =
    {
      kind;
      left =
        {
          config = c.Run.left.Run.config;
          hex = c.Run.left.Run.hex;
          class_ = c.Run.class_left;
        };
      right =
        {
          config = c.Run.right.Run.config;
          hex = c.Run.right.Run.hex;
          class_ = c.Run.class_right;
        };
      level = c.Run.level;
      digits = c.Run.digits;
      source;
      inputs;
      seed;
      slot;
    }
  in
  List.filter_map
    (fun (_, c) -> if c.Run.inconsistent then Some (case Cross c) else None)
    r.Run.cross
  @ List.filter_map
      (fun (_, c) -> if c.Run.inconsistent then Some (case Within c) else None)
      r.Run.within

(* ------------------------------------------------------------------ *)
(* JSON codec *)

let schema = "llm4fp-case/1"

let class_of_name = function
  | "Real" -> Some Fp.Bits.Real
  | "Zero" -> Some Fp.Bits.Zero
  | "+Inf" -> Some Fp.Bits.Pos_inf
  | "-Inf" -> Some Fp.Bits.Neg_inf
  | "NaN" -> Some Fp.Bits.Nan
  | _ -> None

let side_to_json s =
  Obs.Json.Obj
    [ ("compiler",
       Obs.Json.String
         (Compiler.Personality.name s.config.Compiler.Config.personality));
      ("level",
       Obs.Json.String
         (Compiler.Optlevel.name s.config.Compiler.Config.level));
      ("hex", Obs.Json.String s.hex);
      ("class", Obs.Json.String (Fp.Bits.class_name s.class_));
      ("value",
       Obs.Json.String
         (Printf.sprintf "%.17g" (Fp.Bits.double_of_hex s.hex))) ]

let input_to_json = function
  | Irsim.Inputs.Fp v ->
    Obs.Json.Obj
      [ ("fp", Obs.Json.String (Fp.Bits.hex_of_double v));
        ("dec", Obs.Json.String (Printf.sprintf "%.17g" v)) ]
  | Irsim.Inputs.Int n -> Obs.Json.Obj [ ("int", Obs.Json.Int n) ]
  | Irsim.Inputs.Arr a ->
    Obs.Json.Obj
      [ ("arr",
         Obs.Json.List
           (Array.to_list
              (Array.map
                 (fun v -> Obs.Json.String (Fp.Bits.hex_of_double v))
                 a)));
        ("dec",
         Obs.Json.List
           (Array.to_list
              (Array.map
                 (fun v -> Obs.Json.String (Printf.sprintf "%.17g" v))
                 a))) ]

let to_json t =
  Obs.Json.Obj
    [ ("schema", Obs.Json.String schema);
      ("fingerprint", Obs.Json.String (fingerprint t));
      ("kind", Obs.Json.String (kind_name t.kind));
      ("pair", Obs.Json.String (pair_name t));
      ("level", Obs.Json.String (Compiler.Optlevel.name t.level));
      ("left", side_to_json t.left);
      ("right", side_to_json t.right);
      ("digits", Obs.Json.Int t.digits);
      ("seed", Obs.Json.Int t.seed);
      ("slot", Obs.Json.Int t.slot);
      ("inputs", Obs.Json.List (List.map input_to_json t.inputs));
      ("source", Obs.Json.String t.source) ]

(* Decoding helpers: each returns Error with the offending field name. *)
let field name json =
  match Obs.Json.member name json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "case JSON: missing field %S" name)

let string_field name json =
  match field name json with
  | Ok (Obs.Json.String s) -> Ok s
  | Ok _ -> Error (Printf.sprintf "case JSON: field %S is not a string" name)
  | Error e -> Error e

let int_field name json =
  match field name json with
  | Ok (Obs.Json.Int n) -> Ok n
  | Ok _ -> Error (Printf.sprintf "case JSON: field %S is not an int" name)
  | Error e -> Error e

let ( let* ) = Result.bind

let hex_value name s =
  match Fp.Bits.double_of_hex s with
  | v -> Ok v
  | exception Invalid_argument _ ->
    Error (Printf.sprintf "case JSON: field %S is not a 16-digit hex" name)

let side_of_json json =
  let* compiler = string_field "compiler" json in
  let* level = string_field "level" json in
  let* hex = string_field "hex" json in
  let* class_name = string_field "class" json in
  let* personality =
    Option.to_result
      ~none:(Printf.sprintf "case JSON: unknown compiler %S" compiler)
      (Compiler.Personality.of_name compiler)
  in
  let* level =
    Option.to_result
      ~none:(Printf.sprintf "case JSON: unknown level %S" level)
      (Compiler.Optlevel.of_name level)
  in
  let* class_ =
    Option.to_result
      ~none:(Printf.sprintf "case JSON: unknown class %S" class_name)
      (class_of_name class_name)
  in
  let* _ = hex_value "hex" hex in
  Ok { config = Compiler.Config.make personality level; hex; class_ }

let input_of_json json =
  match
    (Obs.Json.member "fp" json, Obs.Json.member "int" json,
     Obs.Json.member "arr" json)
  with
  | Some (Obs.Json.String h), _, _ ->
    let* v = hex_value "fp" h in
    Ok (Irsim.Inputs.Fp v)
  | _, Some (Obs.Json.Int n), _ -> Ok (Irsim.Inputs.Int n)
  | _, _, Some (Obs.Json.List items) ->
    let* values =
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          match item with
          | Obs.Json.String h ->
            let* v = hex_value "arr" h in
            Ok (v :: acc)
          | _ -> Error "case JSON: array input element is not a hex string")
        (Ok []) items
    in
    Ok (Irsim.Inputs.Arr (Array.of_list (List.rev values)))
  | _ -> Error "case JSON: input is none of fp/int/arr"

let of_json json =
  let* schema_got = string_field "schema" json in
  let* () =
    if schema_got = schema then Ok ()
    else Error (Printf.sprintf "case JSON: unsupported schema %S" schema_got)
  in
  let* embedded = string_field "fingerprint" json in
  let* kind_s = string_field "kind" json in
  let* kind =
    match kind_s with
    | "cross" -> Ok Cross
    | "within" -> Ok Within
    | k -> Error (Printf.sprintf "case JSON: unknown kind %S" k)
  in
  let* level_s = string_field "level" json in
  let* level =
    Option.to_result
      ~none:(Printf.sprintf "case JSON: unknown level %S" level_s)
      (Compiler.Optlevel.of_name level_s)
  in
  let* left_json = field "left" json in
  let* right_json = field "right" json in
  let* left = side_of_json left_json in
  let* right = side_of_json right_json in
  let* digits = int_field "digits" json in
  let* seed = int_field "seed" json in
  let* slot = int_field "slot" json in
  let* inputs_json = field "inputs" json in
  let* inputs =
    match inputs_json with
    | Obs.Json.List items ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* v = input_of_json item in
          Ok (v :: acc))
        (Ok []) items
      |> Result.map List.rev
    | _ -> Error "case JSON: field \"inputs\" is not a list"
  in
  let* source = string_field "source" json in
  let t =
    { kind; left; right; level; digits; source; inputs; seed; slot }
  in
  let actual = fingerprint t in
  if actual <> embedded then
    Error
      (Printf.sprintf
         "case JSON: fingerprint mismatch (embedded %s, content hashes to \
          %s) — the archive file was edited or corrupted"
         embedded actual)
  else Ok t

let to_analytics t =
  {
    Report.Analytics.fingerprint = fingerprint t;
    kind = kind_name t.kind;
    pair = pair_name t;
    level = Compiler.Optlevel.name t.level;
    class_pair = Fp.Bits.class_pair_name t.left.class_ t.right.class_;
    digits = t.digits;
    slot = t.slot;
  }
