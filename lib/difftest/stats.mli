(** Campaign-level aggregation of differential-testing results.

    Collects everything the paper's tables need: per-(pair, level)
    inconsistency counts and digit-difference accumulators (Table 5),
    per-(class-pair, level) counts (Figure 3, Table 4), per-(compiler,
    level) within-compiler counts against [00_nofma] (Table 6), totals
    and rates (Table 2), plus cost accounting for the time model. *)

type t

val create : unit -> t
val add : t -> Run.result -> unit
(** Fold one program's result into the accumulator. *)

val add_generation_failure : t -> unit
(** Record a budget slot whose generation never produced a testable
    program (e.g. the LLM emitted code that failed to compile
    everywhere). Its comparisons count as consistent, matching the
    paper's fixed 18,000-comparison denominator. *)

(** {1 Denominators} *)

val n_programs : t -> int
(** Budget consumed, including generation failures. *)

val total_comparisons : t -> int
(** [n_programs × pairs × levels] — the paper's denominator. *)

val performed_comparisons : t -> int
(** Comparisons actually executed (both sides compiled). *)

(** {1 Table 2} *)

val total_inconsistencies : t -> int
val inconsistency_rate : t -> float
(** [total_inconsistencies / total_comparisons], in [0,1]. *)

(** {1 Table 5} *)

val pair_index : Compiler.Personality.t * Compiler.Personality.t -> int
val cross_count : t -> pair:int -> level:Compiler.Optlevel.t -> int
val cross_digits : t -> pair:int -> level:Compiler.Optlevel.t -> Fp.Digits.Acc.t
val pair_total : t -> pair:int -> int

(** {1 Figure 3 / Table 4} *)

val class_pair_count :
  t -> ?level:Compiler.Optlevel.t -> Fp.Bits.class_ * Fp.Bits.class_ -> int
(** Count of inconsistencies whose two sides classified as the given
    (unordered) pair, optionally restricted to one level. *)

val class_pairs_present : t -> (Fp.Bits.class_ * Fp.Bits.class_) list
(** Distinct class pairs observed, normalized order, sorted. *)

(** {1 Table 6} *)

val within_count :
  t -> Compiler.Personality.t -> Compiler.Optlevel.t -> int
(** Inconsistencies between the level and [00_nofma] for this compiler.
    Zero for the baseline level itself. *)

val within_total : t -> Compiler.Personality.t -> int
val within_comparisons : t -> int
(** [n_programs × compilers × (levels - 1)]. *)

(** {1 Cost accounting} *)

val total_work : t -> int
val total_ops : t -> int
val compile_failures : t -> int
(** Programs with at least one configuration failing to compile
    (generation failures included). *)

(** {1 Merging} *)

val merge : t -> t -> t
(** A fresh accumulator equal to one that saw both inputs' result
    streams: every count, matrix cell and digit accumulator is summed
    (digit min/max combined). Commutative and associative, so folding
    any permutation of per-shard accumulators yields the same totals —
    and {e not} idempotent: like {!add}, feeding the same results twice
    counts them twice. Fingerprint-level deduplication lives in the
    fleet merge layer, not here. Inputs are not mutated. *)

(** {1 Durable snapshots} *)

val to_json : t -> Obs.Json.t
(** Full accumulator state ([schema "llm4fp-stats/1"]). Every payload
    is an integer, so the encoding is lossless and byte-stable — two
    accumulators that saw the same results serialize identically. *)

val of_json : Obs.Json.t -> (t, string) result
(** Inverse of {!to_json}; rejects shape or schema mismatches with a
    field-naming error. *)
