type t = {
  dir : string;
  lock : Mutex.t;
  seen : (string, unit) Hashtbl.t;
  mutable recorded : int;
  mutable duplicates : int;
}

let m_recorded = Obs.Metrics.counter "recorder.cases"
let m_duplicates = Obs.Metrics.counter "recorder.duplicates"
let mkdir_p = Util.Durable.mkdir_p

(* Minimized companions written by the reducer ([<fp>.min.jsonl]) live in
   the same directory but are not part of the archive proper. *)
let is_case_file name =
  Filename.check_suffix name ".jsonl"
  && not (Filename.check_suffix name ".min.jsonl")

let create ~dir =
  mkdir_p dir;
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun name ->
      if is_case_file name then
        Hashtbl.replace seen (Filename.chop_suffix name ".jsonl") ())
    (Sys.readdir dir);
  { dir; lock = Mutex.create (); seen; recorded = 0; duplicates = 0 }

let dir t = t.dir

let path_of t fingerprint = Filename.concat t.dir (fingerprint ^ ".jsonl")

let record t case =
  let fingerprint = Case.fingerprint case in
  Mutex.lock t.lock;
  let fresh = not (Hashtbl.mem t.seen fingerprint) in
  if fresh then begin
    Hashtbl.replace t.seen fingerprint ();
    t.recorded <- t.recorded + 1
  end
  else t.duplicates <- t.duplicates + 1;
  Mutex.unlock t.lock;
  if fresh then begin
    (* Write outside the lock: the fingerprint is already claimed, so
       no other domain can race on this path. The write is atomic
       (temp + rename, binary mode): a crash mid-record can never leave
       a truncated case file that later fails the integrity check. *)
    Exec.Faults.inject Exec.Faults.Archive_write;
    Util.Durable.write_atomic
      ~path:(path_of t fingerprint)
      (fun oc ->
        output_string oc (Obs.Json.to_string (Case.to_json case));
        output_char oc '\n');
    Obs.Metrics.incr m_recorded;
    Obs.Trace.event (fun () ->
        Obs.Event.Case_recorded
          {
            slot = Obs.Trace.current_slot ();
            fingerprint;
            kind = Case.kind_name case.Case.kind;
          })
  end
  else Obs.Metrics.incr m_duplicates;
  fresh

let count t =
  Mutex.lock t.lock;
  let n = t.recorded in
  Mutex.unlock t.lock;
  n

let duplicates t =
  Mutex.lock t.lock;
  let n = t.duplicates in
  Mutex.unlock t.lock;
  n

let snapshot t =
  Mutex.lock t.lock;
  let seen =
    Hashtbl.fold (fun fp () acc -> fp :: acc) t.seen []
    |> List.sort String.compare
  in
  let r = (seen, t.recorded, t.duplicates) in
  Mutex.unlock t.lock;
  r

let restore t (seen, recorded, duplicates) =
  Mutex.lock t.lock;
  Hashtbl.reset t.seen;
  List.iter (fun fp -> Hashtbl.replace t.seen fp ()) seen;
  t.recorded <- recorded;
  t.duplicates <- duplicates;
  Mutex.unlock t.lock

let minimized_path ~dir ~fingerprint =
  Filename.concat dir (fingerprint ^ ".min.jsonl")

let write_minimized ~dir ~fingerprint case =
  let path = minimized_path ~dir ~fingerprint in
  Util.Durable.write_atomic ~path (fun oc ->
      output_string oc (Obs.Json.to_string (Case.to_json case));
      output_char oc '\n');
  path

let load_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        match input_line ic with
        | exception End_of_file -> Error (Printf.sprintf "%s: empty file" path)
        | line -> begin
          match Obs.Json.parse line with
          | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
          | Ok json -> begin
            match Case.of_json json with
            | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
            | Ok case -> Ok case
          end
        end)

let load_dir dir =
  match Sys.readdir dir with
  | exception Sys_error msg -> Error msg
  | names ->
    let names =
      List.sort String.compare
        (List.filter is_case_file (Array.to_list names))
    in
    List.fold_left
      (fun acc name ->
        match acc with
        | Error _ -> acc
        | Ok cases -> begin
          match load_file (Filename.concat dir name) with
          | Ok case -> Ok (case :: cases)
          | Error msg -> Error msg
        end)
      (Ok []) names
    |> Result.map List.rev
