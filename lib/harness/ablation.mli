(** Mechanism ablation (this reproduction's own study, motivated by
    DESIGN.md's calibration story).

    The simulator attributes inconsistencies to five mechanisms, each a
    documented behaviour of the real toolchains. An ablation disables one
    mechanism in every compiler configuration and replays the {e same}
    generated programs and inputs through the modified matrix, so the
    drop in inconsistency rate measures that mechanism's marginal
    contribution:

    - [no-cuda-libm]: the device links the host's math library (no
      last-ulp vendor divergence);
    - [no-fma-gap]: every compiler contracts with the same syntactic
      policy at the same levels (nvcc loses its [-O0] default, gcc its
      cross-statement reach);
    - [no-fold-divergence]: no compiler folds math calls on constants
      with divergent semantics;
    - [no-fastmath]: [03_fastmath] compiles exactly like [03] (no
      value-unsafe rewrites, FTZ, fast libms, or NaN-branch flips);
    - [full]: the unmodified model, for reference. *)

type variant = {
  name : string;
  description : string;
  configs : Compiler.Config.t list;
}

val variants : unit -> variant list
(** [full] first, then each ablation. *)

val replay :
  ?jobs:int ->
  variant ->
  (Lang.Ast.program * Irsim.Inputs.t) list ->
  Difftest.Stats.t
(** Run the corpus through the variant's matrix. [jobs] (default 1)
    fans the per-case differential tests across the {!Exec.Pool};
    results are folded in corpus order, so the statistics are identical
    at any job count. *)

val table : ?budget:int -> ?jobs:int -> seed:int -> unit -> string
(** Generate an LLM4FP corpus once (default budget 300) and render the
    per-variant inconsistency rates with their deltas. *)
