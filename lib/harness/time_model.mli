(** Wall-clock cost model for Table 2's time column.

    Real campaigns spend their time on (a) LLM API latency, (b) invoking
    compilers, (c) running binaries, and (d) framework overhead. In the
    sealed reproduction none of those costs exist at their original
    scale, so campaigns charge modelled costs to a simulated clock:

    - per compiled configuration: [compile_base + compile_per_work × IR
      size] (larger programs take longer to compile);
    - per executed binary: [exec_base + exec_per_op × dynamic FP ops];
    - per generated program: [framework] (driver bookkeeping);
    - per LLM call: the latency the mock client reports.

    Coefficients are calibrated so a 1000-program Varity campaign lands
    near the paper's ~31 minutes and the LLM campaigns near ~3h20 with
    roughly a third of that being API latency. EXPERIMENTS.md reports
    the model next to the measured real compute time. *)

val compile_base : float
val compile_per_work : float
val exec_base : float
val exec_per_op : float
val framework : float

val framework_llm : float
(** Per-program orchestration overhead of the LLM driver (prompt
    assembly, API session management, response validation, file I/O) —
    the paper's LLM campaigns take ~6.5x Varity's wall-clock although
    only ~30% of their time is API latency, so the rest of the gap is
    driver-side. Charged instead of {!framework} for LLM approaches. *)

val charge_program :
  Util.Sim_clock.t -> work:int -> ops:int -> configs:int -> unit
(** Charge compile + execute costs for one tested program ([work] and
    [ops] are totals across its configurations); the per-program
    framework cost is charged separately by the campaign loop. *)

val charge_llm : Util.Sim_clock.t -> float -> unit
(** Charge one LLM call's latency. *)

val retry_backoff : attempt:int -> float
(** The transient-failure retry delay before attempt [n >= 1] — the
    {!Exec.Faults.backoff} schedule, re-exported here because it is
    part of the time model: LLM retries fold it into response latency,
    driver retries charge it via {!Obs.Span.charge_sim}. *)
