type t = Varity | Direct_prompt | Grammar_guided | Llm4fp | Bandit

(* The paper's four approaches, in table order. [Bandit] is this
   reproduction's ensemble mode and deliberately not a member: paper
   tables and suites iterate [all]. *)
let all = [| Varity; Direct_prompt; Grammar_guided; Llm4fp |]

let name = function
  | Varity -> "VARITY"
  | Direct_prompt -> "DIRECT-PROMPT"
  | Grammar_guided -> "GRAMMAR-GUIDED"
  | Llm4fp -> "LLM4FP"
  | Bandit -> "BANDIT"

let of_name s =
  let s = String.uppercase_ascii s in
  if s = "BANDIT" then Some Bandit
  else Array.find_opt (fun a -> name a = s) all

let uses_llm = function
  | Varity -> false
  | Direct_prompt | Grammar_guided | Llm4fp -> true
  | Bandit -> true (* three of five arms call the model *)
