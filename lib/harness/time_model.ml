let compile_base = 0.055
let compile_per_work = 0.0002
let exec_base = 0.008
let exec_per_op = 8e-6
let framework = 0.09
let framework_llm = 6.0

let charge_program clock ~work ~ops ~configs =
  let compile =
    (float_of_int configs *. compile_base)
    +. (float_of_int work *. compile_per_work)
  in
  let exec =
    (float_of_int configs *. exec_base) +. (float_of_int ops *. exec_per_op)
  in
  Util.Sim_clock.advance clock (compile +. exec)

let charge_llm = Util.Sim_clock.advance
let retry_backoff ~attempt = Exec.Faults.backoff ~attempt
