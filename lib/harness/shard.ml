(* Deterministic partitioning of a campaign's budget across a fleet.

   The unit of distribution is the *chunk*: a fixed-size contiguous
   block of budget slots run as an independent mini-campaign whose seed
   derives from (base seed, chunk index) through a SplitMix64-style
   finalizer. Shard i of N owns exactly the chunks whose index is
   congruent to i mod N — a pure function of the index, so slices are
   pairwise disjoint and jointly exhaustive by construction, and the
   set of chunks (hence the merged result) is identical at every N.

   The trade-off this buys: the paper's feedback loop is sequential
   within a campaign (the mutate arm samples from the successful set),
   so feedback resets at every chunk boundary. The chunk size is the
   knob — larger chunks mean longer feedback runs and coarser
   parallelism. The single-process reference for every determinism
   drill is the N = 1 fleet ([--shard 0/1]), which runs the same chunk
   sequence in one process. *)

type spec = { index : int; count : int }

let parse_spec s =
  let malformed () =
    Error
      (Printf.sprintf
         "malformed shard spec %S (expected I/N with 0 <= I < N, e.g. 0/4)" s)
  in
  match String.index_opt s '/' with
  | None -> malformed ()
  | Some cut -> begin
    let index = String.sub s 0 cut in
    let count = String.sub s (cut + 1) (String.length s - cut - 1) in
    match (int_of_string_opt index, int_of_string_opt count) with
    | Some index, Some count when count >= 1 && index >= 0 && index < count ->
      Ok { index; count }
    | Some _, Some _ | Some _, None | None, Some _ | None, None ->
      malformed ()
  end

let spec_name { index; count } = Printf.sprintf "%d/%d" index count

type slice = {
  chunk : int;
  first_slot : int;
  budget : int;
  seed : int;
}

let default_chunk = 25

(* SplitMix64 finalization over (seed, chunk): decorrelated chunk
   streams that never collide with the base campaign stream (which
   advances by golden-gamma increments, not by finalizing the raw
   seed). Masked into non-negative [int] range because campaign seeds
   travel as plain ints through checkpoints and the CLI. *)
let chunk_seed ~seed chunk =
  let mix z =
    let z =
      Int64.mul
        (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul
        (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    Int64.logxor z (Int64.shift_right_logical z 31)
  in
  let z =
    mix (Int64.logxor (Int64.of_int seed) (mix (Int64.of_int (chunk + 1))))
  in
  Int64.to_int z land max_int

let plan ?(chunk = default_chunk) ~budget ~seed () =
  if chunk <= 0 then invalid_arg "Shard.plan: chunk size must be positive";
  if budget < 0 then invalid_arg "Shard.plan: negative budget";
  let n_chunks = (budget + chunk - 1) / chunk in
  List.init n_chunks (fun k ->
      let first_slot = (k * chunk) + 1 in
      {
        chunk = k;
        first_slot;
        budget = min chunk (budget - (k * chunk));
        seed = chunk_seed ~seed k;
      })

let assigned spec slices =
  List.filter (fun s -> s.chunk mod spec.count = spec.index) slices

let slots slice =
  List.init slice.budget (fun i -> slice.first_slot + i)
