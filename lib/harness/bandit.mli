(** Epsilon-greedy bandit allocation over the five generation arms.

    A bandit campaign ([campaign --bandit], {!Approach.Bandit}) treats
    every budget slot as a pull and allocates it to the arm with the
    best {e recent} inconsistencies per simulated second — the same
    efficiency signal {!Obs.Coverage.strategy_rates} reports, measured
    over the same rolling window of the simulated clock. Cold arms get
    a warmup pull each; after that an [epsilon] fraction of slots
    explore uniformly and the rest exploit the best windowed rate
    (ties to the fixed arm order).

    Determinism contract: {!select} consumes exactly two uniform draws
    from the bandit's own split stream per slot, regardless of branch —
    so stream position is a function of pull count alone, and the
    posterior plus stream state serialize into the campaign checkpoint
    ({!to_json}/{!restore}) for byte-identical kill/resume at any
    point. *)

type arm =
  | Mutate   (** the LLM4FP feedback mutation loop *)
  | Varity   (** random grammar generation, no LLM *)
  | Direct   (** direct LLM prompt *)
  | Grammar  (** grammar-guided LLM prompt *)
  | Grow     (** archived-case growth: {!Gen.Grow} on the seed pool *)

val arms : arm array
(** Fixed order: mutate, varity, direct, grammar, grow. Warmup and tie
    resolution follow it. *)

val arm_name : arm -> string
(** The campaign strategy name ("mutate", "varity", "direct",
    "grammar", "grow") — bandit slots reuse the fixed-arm vocabulary in
    traces and coverage. *)

val arm_of_name : string -> arm option

type t

val default_epsilon : float
(** 0.1 *)

val create : ?epsilon:float -> ?window:float -> rng:Util.Rng.t -> unit -> t
(** A cold bandit owning [rng] (one {!Util.Rng.split} of the campaign
    stream). [window] defaults to {!Obs.Coverage.default_window} so the
    bandit and the coverage observatory agree on what "recent" means. *)

val pulls : t -> arm -> int

val reward : t -> arm -> now:float -> float
(** Windowed inconsistencies per simulated second at [now]; 0 before
    any windowed cost. Prunes expired window entries as a side effect. *)

type choice = {
  arm : arm;
  pulls_before : int;
  estimate : float;  (** windowed reward of the chosen arm at choice time *)
  explore : bool;    (** warmup or epsilon-exploration, not exploitation *)
}

val select : t -> now:float -> mutate_ok:bool -> grow_ok:bool -> choice
(** Choose the next slot's arm. [mutate_ok]/[grow_ok] gate the two arms
    that need a non-empty seed pool (the feedback set, the grow pool);
    ineligible arms are never chosen but the draw count is unaffected. *)

val update :
  t -> arm -> inconsistencies:int -> sim_cost:float -> now:float -> unit
(** Record a completed pull: the slot's inconsistency delta and its
    simulated cost, stamped at the slot's final simulated time. *)

val to_json : t -> Obs.Json.t
(** The full posterior — per-arm pulls, lifetime totals, rolling window
    entries — plus the stream position. Deterministic bytes: equal
    states serialize equally. *)

val restore : t -> Obs.Json.t -> (unit, string) result
(** Overwrite a freshly created bandit with a {!to_json} snapshot.
    Rejects snapshots whose epsilon/window disagree with the caller's. *)

val table : t -> (string * int * int * float * float) list
(** Per-arm report rows in fixed order:
    (name, pulls, inconsistencies, simulated seconds, lifetime rate). *)
