type outcome = {
  approach : Approach.t;
  budget : int;
  stats : Difftest.Stats.t;
  coverage : Obs.Coverage.t;
  programs : Lang.Ast.program list;
  cases : (Lang.Ast.program * Irsim.Inputs.t) list;
  generation_failures : int;
  successful : int;
  sim_seconds : float;
  llm_seconds : float;
  real_seconds : float;
  bandit : Bandit.t option;
}

let strategy_mix_probability = 0.5

let m_slots = Obs.Metrics.counter "campaign.slots"
let m_generation_failures = Obs.Metrics.counter "campaign.generation_failures"
let m_feedback_size = Obs.Metrics.gauge "campaign.feedback_size"
let m_sim_seconds = Obs.Metrics.gauge "campaign.sim_seconds"

let precision_name = function Lang.Ast.F64 -> "fp64" | Lang.Ast.F32 -> "fp32"

(* A generated candidate: either a program that made it through the front
   end and validator, or the stage that rejected it and why. *)
let admit source =
  match
    Obs.Span.with_span "frontend.parse" (fun () -> Cparse.Parse.program source)
  with
  | Error msg -> Error (`Parse msg)
  | Ok program -> begin
    match
      Obs.Span.with_span "frontend.validate" (fun () ->
          Analysis.Validate.check program)
    with
    | Error issues ->
      Error
        (`Validate
          (String.concat "; "
             (List.map Analysis.Validate.issue_to_string issues)))
    | Ok () -> Ok program
  end

let run ?(budget = 1000) ?(precision = Lang.Ast.F64) ?(jobs = 1) ?recorder
    ?checkpoint ?resume ?(slot_offset = 0) ?(grow_seeds = []) ~seed approach =
  (match checkpoint with
  | Some (_, interval) when interval <= 0 ->
    invalid_arg "Campaign.run: checkpoint interval must be positive"
  | _ -> ());
  let rng = Util.Rng.of_int seed in
  (* The 18-configuration matrix is immutable for the whole campaign:
     build it once here instead of once per budget slot. *)
  let configs = Compiler.Config.all () in
  let input_rng = Util.Rng.split rng in
  (* The bandit owns its own split stream, taken only in bandit mode so
     every fixed-arm campaign's draw sequence is unchanged. Selection
     burns exactly two draws per slot from this stream, never from the
     strategy or input streams. *)
  let bandit =
    match approach with
    | Approach.Bandit -> Some (Bandit.create ~rng:(Util.Rng.split rng) ())
    | _ -> None
  in
  let clock = Util.Sim_clock.create () in
  let client = Llm.Client.create ~seed:(seed lxor 0x5eed) () in
  (* The grow arm's external seed pool. On resume the snapshot's stored
     renderings are authoritative — they are exactly the pool the
     interrupted run drew from, independent of what the caller can
     still locate on disk. *)
  let grow_seeds =
    match resume with
    | None -> grow_seeds
    | Some snap ->
      List.map
        (fun source ->
          match Cparse.Parse.program source with
          | Ok p -> p
          | Error msg ->
            invalid_arg ("Campaign.run: checkpoint grow seed: " ^ msg))
        snap.Checkpoint.grow_seeds
  in
  let stats =
    match resume with
    | None -> Difftest.Stats.create ()
    | Some snap -> snap.Checkpoint.stats
  in
  (* The coverage ledger is always on and purely observational: feeding
     it draws no randomness and changes no campaign decision, it only
     measures which cells of the inconsistency space have lit up. *)
  let coverage =
    match resume with
    | None -> Obs.Coverage.create ()
    | Some snap -> snap.Checkpoint.coverage
  in
  let successful = ref [] in
  let n_successful = ref 0 in
  let programs = ref [] in
  let cases = ref [] in
  (* Feedback flags, newest first, aligned with [cases]: which valid
     programs are members of the successful set. Maintained whether or
     not checkpointing is on (one cons per slot) so the history can be
     snapshotted at any boundary. *)
  let feedback_flags = ref [] in
  let generation_failures = ref 0 in
  (* Restoring a snapshot replays the loop's complete state: both RNG
     streams, the LLM session, clock, stats, counters, and the valid
     slot history (from which programs/cases/successful rebuild in
     order). Identity fields must match the caller's arguments — a
     checkpoint resumes the campaign it came from, nothing else. *)
  (match resume with
  | None -> ()
  | Some snap ->
    let check name got want =
      if got <> want then
        invalid_arg
          (Printf.sprintf
             "Campaign.run: resume mismatch: checkpoint has %s %s, caller \
              passed %s"
             name got want)
    in
    check "seed" (string_of_int snap.Checkpoint.seed) (string_of_int seed);
    check "approach" snap.Checkpoint.approach (Approach.name approach);
    check "budget" (string_of_int snap.Checkpoint.budget)
      (string_of_int budget);
    check "precision" snap.Checkpoint.precision (precision_name precision);
    Util.Rng.set_state rng snap.Checkpoint.rng;
    Util.Rng.set_state input_rng snap.Checkpoint.input_rng;
    Util.Sim_clock.advance clock snap.Checkpoint.sim_seconds;
    (match Llm.Client.restore client snap.Checkpoint.client with
    | Ok () -> ()
    | Error msg -> invalid_arg ("Campaign.run: " ^ msg));
    (match (bandit, snap.Checkpoint.bandit) with
    | Some b, Some json -> (
      match Bandit.restore b json with
      | Ok () -> ()
      | Error msg -> invalid_arg ("Campaign.run: " ^ msg))
    | Some _, None ->
      invalid_arg
        "Campaign.run: resume mismatch: bandit campaign, but the checkpoint \
         has no bandit state"
    | None, _ -> ());
    (match (recorder, snap.Checkpoint.recorder) with
    | Some r, Some rs ->
      Difftest.Recorder.restore r
        ( rs.Checkpoint.rec_seen,
          rs.Checkpoint.rec_recorded,
          rs.Checkpoint.rec_duplicates )
    | _ -> ());
    List.iter
      (fun { Checkpoint.program; inputs; feedback } ->
        programs := program :: !programs;
        cases := (program, inputs) :: !cases;
        feedback_flags := feedback :: !feedback_flags;
        if feedback then begin
          successful := program :: !successful;
          incr n_successful
        end)
      snap.Checkpoint.slots;
    generation_failures := snap.Checkpoint.generation_failures);
  let first_slot =
    match resume with None -> 1 | Some snap -> snap.Checkpoint.next_slot
  in
  let write_checkpoint ~dir ~interval slot =
    (* Durably flush the trace first: the stored offset marks the slot
       boundary, so a resumed run can truncate away any events the
       interrupted run flushed beyond it. *)
    let trace_offset = Obs.Trace.sync () in
    let slots =
      List.rev_map2
        (fun (program, inputs) feedback ->
          { Checkpoint.program; inputs; feedback })
        !cases !feedback_flags
    in
    Checkpoint.write ~dir
      {
        Checkpoint.seed;
        approach = Approach.name approach;
        budget;
        precision = precision_name precision;
        interval;
        next_slot = slot + 1;
        generation_failures = !generation_failures;
        sim_seconds = Util.Sim_clock.elapsed clock;
        rng = Util.Rng.state rng;
        input_rng = Util.Rng.state input_rng;
        trace_offset;
        bandit = Option.map Bandit.to_json bandit;
        grow_seeds = List.map Lang.Pp.to_c grow_seeds;
        client = Llm.Client.snapshot client;
        stats;
        coverage;
        recorder =
          Option.map
            (fun r ->
              let seen, recorded, duplicates = Difftest.Recorder.snapshot r in
              {
                Checkpoint.rec_dir = Difftest.Recorder.dir r;
                rec_seen = seen;
                rec_recorded = recorded;
                rec_duplicates = duplicates;
              })
            recorder;
        slots;
      }
  in
  let t_start = Unix.gettimeofday () in
  let llm_generate prompt =
    let response = Llm.Client.generate client prompt in
    Time_model.charge_llm clock response.Llm.Client.latency;
    admit response.Llm.Client.source
  in
  let arm_strategy = function
    | Bandit.Mutate -> `Mutate
    | Bandit.Varity -> `Varity
    | Bandit.Direct -> `Direct
    | Bandit.Grammar -> `Grammar
    | Bandit.Grow -> `Grow
  in
  let arm_of_strategy = function
    | `Mutate -> Bandit.Mutate
    | `Varity -> Bandit.Varity
    | `Direct -> Bandit.Direct
    | `Grammar -> Bandit.Grammar
    | `Grow -> Bandit.Grow
  in
  (* The per-slot strategy is drawn first (same RNG order as ever) so it
     can be traced even when generation subsequently fails. In bandit
     mode the choice comes from the bandit's own stream instead and is
     traced as an [Arm_chosen] event just before the slot starts. *)
  let choose_strategy rslot =
    match approach with
    | Approach.Varity -> `Varity
    | Approach.Direct_prompt -> `Direct
    | Approach.Grammar_guided -> `Grammar
    | Approach.Llm4fp ->
      if !successful <> [] && Util.Rng.chance rng strategy_mix_probability
      then `Mutate
      else `Grammar
    | Approach.Bandit ->
      let b = Option.get bandit in
      let choice =
        Bandit.select b
          ~now:(Util.Sim_clock.elapsed clock)
          ~mutate_ok:(!successful <> [])
          ~grow_ok:(grow_seeds <> [] || !successful <> [])
      in
      if Obs.Trace.on () then
        Obs.Trace.emit
          (Obs.Event.Arm_chosen
             {
               slot = rslot;
               arm = Bandit.arm_name choice.Bandit.arm;
               pulls = choice.Bandit.pulls_before;
               reward = choice.Bandit.estimate;
               explore = choice.Bandit.explore;
             });
      arm_strategy choice.Bandit.arm
  in
  let strategy_name = function
    | `Varity -> "varity"
    | `Direct -> "direct"
    | `Grammar -> "grammar"
    | `Mutate -> "mutate"
    | `Grow -> "grow"
  in
  let generate strategy : (Lang.Ast.program, _) result =
    match strategy with
    | `Varity -> Ok { (Gen.Varity.generate rng) with Lang.Ast.precision }
    | `Direct -> llm_generate (Llm.Prompt.Direct { precision })
    | `Grammar -> llm_generate (Llm.Prompt.Grammar { precision })
    | `Mutate ->
      let example = Util.Rng.choose_list rng !successful in
      llm_generate (Llm.Prompt.Mutate { precision; example })
    | `Grow ->
      (* Reverse-shrink: start from an archived or successful case and
         apply validity-preserving growth moves. No LLM call — this arm
         costs framework time only. *)
      let pool = grow_seeds @ !successful in
      let sprout = Util.Rng.choose_list rng pool in
      Ok { (Gen.Grow.grow rng sprout) with Lang.Ast.precision }
  in
  (* Per strategy, not per approach: under the bandit a Varity slot
     keeps Varity's input ranges and LLM arms keep the LLM config —
     exactly what the corresponding fixed-arm campaign would use for
     that slot. Grow takes the LLM ranges since its seeds are archived
     or feedback programs generated under them. *)
  let input_config = function
    | `Varity -> Gen.Varity.config
    | `Direct | `Grammar | `Mutate | `Grow -> Llm.Client.generation_config
  in
  let framework_cost = function
    | `Varity | `Grow -> Time_model.framework
    | `Direct | `Grammar | `Mutate -> Time_model.framework_llm
  in
  (* A resumed run appends to a trace that already opens with the
     original Campaign_started event (the stored offset covers it). *)
  if resume = None && Obs.Trace.on () then
    Obs.Trace.emit
      (Obs.Event.Campaign_started
         {
           approach = Approach.name approach;
           budget;
           seed;
           precision = precision_name precision;
         });
  Obs.Span.with_clock clock (fun () ->
      for slot = first_slot to budget do
        (* The loop variable is campaign-local (checkpoints store it);
           [rslot] is what observers see — offset into the fleet's
           global slot space, so merged traces, archives and coverage
           ledgers carry globally unique slot numbers. At the default
           offset 0 the two coincide and nothing changes. *)
        let rslot = slot_offset + slot in
        (Obs.Trace.with_slot rslot @@ fun () ->
        Obs.Span.with_span "campaign.slot" @@ fun () ->
        Obs.Metrics.incr m_slots;
        let incons_before = Difftest.Stats.total_inconsistencies stats in
        let sim_before = Util.Sim_clock.elapsed clock in
        let strategy = choose_strategy rslot in
        Util.Sim_clock.advance clock (framework_cost strategy);
        if Obs.Trace.on () then
          Obs.Trace.emit
            (Obs.Event.Slot_started
               { slot = rslot; strategy = strategy_name strategy });
        (match
           Obs.Span.with_span "campaign.generate" (fun () -> generate strategy)
         with
        | Error failure ->
          incr generation_failures;
          Obs.Metrics.incr m_generation_failures;
          Difftest.Stats.add_generation_failure stats;
          if Obs.Trace.on () then begin
            (match failure with
            | `Parse reason ->
              Obs.Trace.emit (Obs.Event.Parse_failed { slot = rslot; reason })
            | `Validate reason ->
              Obs.Trace.emit
                (Obs.Event.Validation_failed { slot = rslot; reason }));
            Obs.Trace.emit
              (Obs.Event.Slot_finished
                 {
                   slot = rslot;
                   outcome = "generation_failed";
                   sim_s = Util.Sim_clock.elapsed clock;
                 })
          end
        | Ok program ->
          programs := program :: !programs;
          let inputs =
            Gen.Generate.gen_inputs input_rng (input_config strategy) program
          in
          cases := (program, inputs) :: !cases;
          let result =
            Obs.Span.with_span "campaign.difftest" (fun () ->
                let result = Difftest.Run.test ~configs ~jobs program inputs in
                Time_model.charge_program clock
                  ~work:result.Difftest.Run.total_work
                  ~ops:result.Difftest.Run.total_ops
                  ~configs:(List.length result.Difftest.Run.outputs);
                result)
          in
          Difftest.Stats.add stats result;
          (* Flight recorder: archive every first-seen inconsistency.
             Purely observational — stats, feedback and RNG draws are
             identical with or without a recorder attached. *)
          (match recorder with
          | None -> ()
          | Some recorder ->
            Obs.Span.with_span "campaign.record" @@ fun () ->
            List.iter
              (fun case -> ignore (Difftest.Recorder.record recorder case))
              (Difftest.Case.of_result ~seed ~slot:rslot ~program ~inputs
                 result));
          (* Coverage ledger: every inconsistent comparison lights its
             cell. Recorded in the result's deterministic key order at
             the slot's final simulated time. *)
          let sim_now = Util.Sim_clock.elapsed clock in
          List.iter
            (fun key ->
              let novel =
                Obs.Coverage.record coverage ~slot:rslot
                  ~strategy:(strategy_name strategy) ~sim_s:sim_now key
              in
              if Obs.Trace.on () then
                Obs.Trace.emit
                  (if novel then
                     Obs.Event.Coverage_novel
                       {
                         slot = rslot;
                         kind = key.Obs.Coverage.kind;
                         pair = key.Obs.Coverage.pair;
                         level = key.Obs.Coverage.level;
                         classes = key.Obs.Coverage.classes;
                         strategy = strategy_name strategy;
                         cells = Obs.Coverage.total_cells coverage;
                         sim_s = sim_now;
                       }
                   else
                     Obs.Event.Coverage_hit
                       {
                         slot = rslot;
                         kind = key.Obs.Coverage.kind;
                         pair = key.Obs.Coverage.pair;
                         level = key.Obs.Coverage.level;
                         classes = key.Obs.Coverage.classes;
                         strategy = strategy_name strategy;
                         hits =
                           (match Obs.Coverage.find coverage key with
                           | Some c -> c.Obs.Coverage.hits
                           | None -> 0);
                       }))
            (Difftest.Run.coverage_keys result);
          let inconsistent = Difftest.Run.has_inconsistency result in
          let feedback =
            (approach = Approach.Llm4fp || approach = Approach.Bandit)
            && inconsistent
          in
          feedback_flags := feedback :: !feedback_flags;
          if feedback then begin
            successful := program :: !successful;
            incr n_successful;
            if Obs.Trace.on () then
              Obs.Trace.emit
                (Obs.Event.Feedback_added
                   { slot = rslot; feedback_size = !n_successful })
          end;
          if Obs.Trace.on () then
            Obs.Trace.emit
              (Obs.Event.Slot_finished
                 {
                   slot = rslot;
                   outcome =
                     (if inconsistent then "inconsistent" else "consistent");
                   sim_s = Util.Sim_clock.elapsed clock;
                 }));
        (* Reward the pulled arm with the slot's whole delta — framework
           charge, LLM latency and execution cost all count, so the rate
           the bandit optimises is the same inconsistencies per
           simulated second the coverage observatory reports. *)
        match bandit with
        | None -> ()
        | Some b ->
          Bandit.update b (arm_of_strategy strategy)
            ~inconsistencies:
              (Difftest.Stats.total_inconsistencies stats - incons_before)
            ~sim_cost:(Util.Sim_clock.elapsed clock -. sim_before)
            ~now:(Util.Sim_clock.elapsed clock));
        (* Checkpoint at the slot boundary (outside the slot context):
           the ordered sink's reorder buffer is provably empty here, so
           the synced trace offset is a clean cut line. Never written
           after the final slot — a checkpoint always has work left, so
           resume is meaningful and idempotent. *)
        match checkpoint with
        | Some (dir, interval) when slot mod interval = 0 && slot < budget ->
          Obs.Span.with_span "campaign.checkpoint" (fun () ->
              write_checkpoint ~dir ~interval slot)
        | _ -> ()
      done);
  Obs.Metrics.set m_feedback_size (float_of_int !n_successful);
  Obs.Metrics.add m_sim_seconds (Util.Sim_clock.elapsed clock);
  if Obs.Trace.on () then
    Obs.Trace.emit
      (Obs.Event.Campaign_finished
         {
           approach = Approach.name approach;
           valid = List.length !programs;
           generation_failures = !generation_failures;
           inconsistencies = Difftest.Stats.total_inconsistencies stats;
           comparisons = Difftest.Stats.total_comparisons stats;
           sim_seconds = Util.Sim_clock.elapsed clock;
           llm_seconds = Llm.Client.total_latency client;
         });
  {
    approach;
    budget;
    stats;
    coverage;
    programs = List.rev !programs;
    cases = List.rev !cases;
    generation_failures = !generation_failures;
    successful = !n_successful;
    sim_seconds = Util.Sim_clock.elapsed clock;
    llm_seconds = Llm.Client.total_latency client;
    real_seconds = Unix.gettimeofday () -. t_start;
    bandit;
  }

(* The equality key used by determinism drills (bench, checkpoint and
   engine-equivalence tests): everything about an outcome that must be
   invariant under jobs, checkpointing, observation, and execution
   engine — but not the real-time measurements, which always differ. *)
let signature (o : outcome) =
  ( Difftest.Stats.total_inconsistencies o.stats,
    Difftest.Stats.total_comparisons o.stats,
    o.successful,
    o.generation_failures,
    o.sim_seconds )
