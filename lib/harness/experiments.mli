(** One module per paper table/figure: run the four campaigns once, then
    render each experiment from the shared outcomes.

    Conventions matching the paper's accounting (derived in
    EXPERIMENTS.md): Table 2's inconsistency rate divides by
    [budget × 3 pairs × 6 levels]; Table 5's cell percentages use the
    same global denominator (the per-pair Total row then sums to the
    overall rate, as in the paper); Table 6's cells divide by
    [budget × 3 compilers × 5 non-baseline levels]. Zero cells render
    as ["-"]. *)

type suite = {
  budget : int;
  seed : int;
  varity : Campaign.outcome;
  direct : Campaign.outcome;
  grammar : Campaign.outcome;
  llm4fp : Campaign.outcome;
  bandit : Campaign.outcome;
      (** the bandit-interleaved ensemble at the same budget — not a
          paper approach; it feeds the ablation section only *)
}

val run_suite : ?budget:int -> ?jobs:int -> seed:int -> unit -> suite
(** Five campaigns (the paper's four approaches plus the bandit
    ensemble) with decorrelated seeds derived from [seed].

    [jobs] (default 1) is the size of the shared {!Exec.Pool}: the
    independent campaigns fan out across it, and each campaign's
    per-slot configuration matrix does too (nested fan-out degrades to
    sequential inside a pool worker, so there is no oversubscription).
    Every campaign owns its RNG, simulated clock, LLM client and stats,
    so the suite is byte-identical at any job count. *)

val outcome : suite -> Approach.t -> Campaign.outcome

val table1 : unit -> string
(** Optimization levels and flags (configuration, not measurement). *)

val table2 : suite -> string
(** Effectiveness: inconsistency rate, count, simulated time cost. *)

val table3 : ?max_pairs:int -> ?jobs:int -> suite -> string
(** Diversity: mean pairwise CodeBLEU and clone counts. [max_pairs]
    bounds the CodeBLEU pair sample (default 50,000 per approach);
    [jobs] fans the four per-approach CodeBLEU computations across the
    {!Exec.Pool} (scores are per-corpus, so the table is identical at
    any job count). *)

val figure3 : suite -> string
(** Inconsistency class-pair counts, Varity vs LLM4FP (the paper's bar
    chart, printed as a series table). *)

val table4 : suite -> string
(** LLM4FP class-pair counts per optimization level. *)

val table5 : suite -> string
(** Per-(pair, level) inconsistency rates and digit differences for
    Varity and LLM4FP. *)

val table6 : suite -> string
(** Within-compiler rates against 00_nofma. *)

val summary : suite -> string
(** Campaign header: compilers, flags, budget, seeds, model parameters. *)

type section = {
  name : string;   (** e.g. ["table2"] — doubles as the CSV file stem *)
  text : string;   (** the rendered plain-text table *)
  csv : string option;
      (** the same data as CSV ([None] for prose sections like the
          summary). Text and CSV are two views of one computation:
          requesting both does not run table3's CodeBLEU pass twice. *)
}

val sections : ?max_pairs:int -> ?jobs:int -> suite -> section list
(** Every table and figure, in paper order. *)

val all_tables : ?max_pairs:int -> ?jobs:int -> suite -> (string * string) list
(** [(name, rendered)] for every table and figure, in paper order
    (= {!sections} without the CSV view). *)

val bandit_ablation : suite -> string
(** This reproduction's bandit ablation: the ensemble campaign against
    every fixed arm at equal budget, compared on the bandit's objective
    (inconsistencies per simulated second) with the bandit-minus-arm
    delta per row. *)

val feature_statistics : suite -> string
(** This reproduction's structural summary: mean program size, math-call
    and loop density, split multiply-add and accumulation patterns per
    approach — the features DESIGN.md's calibration story says drive the
    inconsistency-rate differences. *)

val precision_comparison : ?budget:int -> seed:int -> unit -> string
(** This reproduction's FP32 extension (§3.1.3 notes the paper's setup
    "could be easily extended" to single precision): Varity and LLM4FP
    campaigns at FP32 and FP64, side by side. Single precision shifts
    the balance — device fast-math intrinsics genuinely apply to floats,
    while the coarser grid absorbs more last-ulp library divergence. *)

val seed_stability : ?budget:int -> seeds:int list -> unit -> string
(** This reproduction's robustness check: the Table-2 inconsistency rate
    of every approach across several independent seeds, with min/mean/max
    per approach — evidence that the headline ordering is not a
    single-seed artifact. *)
