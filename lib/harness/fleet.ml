(* The distributed campaign fleet: run chunks, persist their outcomes,
   merge the results.

   Everything under a fleet root is keyed by *chunk*, not by shard:
   ROOT/chunk-%04d/ holds the chunk's trace, case archive, checkpoint
   and durable outcome record. Which process runs a chunk is invisible
   in the filesystem, so a fleet at any shard count — or a shard
   restarted after a crash — produces the identical tree. The
   outcome.json file doubles as the completion marker: a (re)started
   shard skips chunks that have one, resumes from the chunk checkpoint
   when one exists, and otherwise runs the chunk fresh. That is the
   whole crash-recovery story; the supervisor only respawns processes. *)

let chunk_dir ~root chunk =
  Filename.concat root (Printf.sprintf "chunk-%04d" chunk)

let trace_path dir = Filename.concat dir "trace.jsonl"
let cases_path dir = Filename.concat dir "cases"
let checkpoint_path dir = Filename.concat dir "ckpt"
let outcome_path dir = Filename.concat dir "outcome.json"

type chunk_outcome = {
  chunk : int;
  seed : int;
  first_slot : int;
  budget : int;
  approach : string;
  precision : string;
  successful : int;
  generation_failures : int;
  sim_seconds : float;
  llm_seconds : float;
  stats : Difftest.Stats.t;
  coverage : Obs.Coverage.t;
  fingerprints : string list;
}

let json_schema = "llm4fp-fleet-chunk/1"

let outcome_to_json o =
  Obs.Json.Obj
    [ ("schema", Obs.Json.String json_schema);
      ("chunk", Obs.Json.Int o.chunk);
      ("seed", Obs.Json.Int o.seed);
      ("first_slot", Obs.Json.Int o.first_slot);
      ("budget", Obs.Json.Int o.budget);
      ("approach", Obs.Json.String o.approach);
      ("precision", Obs.Json.String o.precision);
      ("successful", Obs.Json.Int o.successful);
      ("generation_failures", Obs.Json.Int o.generation_failures);
      ("sim_seconds", Obs.Json.Float o.sim_seconds);
      ("llm_seconds", Obs.Json.Float o.llm_seconds);
      ( "fingerprints",
        Obs.Json.List (List.map (fun f -> Obs.Json.String f) o.fingerprints)
      );
      ("stats", Difftest.Stats.to_json o.stats);
      ("coverage", Obs.Coverage.to_json o.coverage) ]

let ( let* ) = Result.bind

let err fmt = Printf.ksprintf (fun m -> Error ("fleet: " ^ m)) fmt

let jint name json =
  match Obs.Json.member name json with
  | Some (Obs.Json.Int n) -> Ok n
  | _ -> err "missing or non-int field %S" name

let jstr name json =
  match Obs.Json.member name json with
  | Some (Obs.Json.String s) -> Ok s
  | _ -> err "missing or non-string field %S" name

let jnum name json =
  match Obs.Json.member name json with
  | Some (Obs.Json.Float f) -> Ok f
  | Some (Obs.Json.Int n) -> Ok (float_of_int n)
  | _ -> err "missing or non-number field %S" name

let outcome_of_json json =
  let* schema = jstr "schema" json in
  let* () =
    if schema = json_schema then Ok ()
    else err "unsupported chunk-outcome schema %S" schema
  in
  let* chunk = jint "chunk" json in
  let* seed = jint "seed" json in
  let* first_slot = jint "first_slot" json in
  let* budget = jint "budget" json in
  let* approach = jstr "approach" json in
  let* precision = jstr "precision" json in
  let* successful = jint "successful" json in
  let* generation_failures = jint "generation_failures" json in
  let* sim_seconds = jnum "sim_seconds" json in
  let* llm_seconds = jnum "llm_seconds" json in
  let* fingerprints =
    match Obs.Json.member "fingerprints" json with
    | Some (Obs.Json.List items) ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          match item with
          | Obs.Json.String f -> Ok (f :: acc)
          | _ -> err "non-string fingerprint"
        )
        (Ok []) items
      |> Result.map List.rev
    | _ -> err "missing or non-list field \"fingerprints\""
  in
  let* stats =
    match Obs.Json.member "stats" json with
    | Some j -> Difftest.Stats.of_json j
    | None -> err "missing field \"stats\""
  in
  let* coverage =
    match Obs.Json.member "coverage" json with
    | Some j -> Obs.Coverage.of_json j
    | None -> err "missing field \"coverage\""
  in
  Ok
    {
      chunk;
      seed;
      first_slot;
      budget;
      approach;
      precision;
      successful;
      generation_failures;
      sim_seconds;
      llm_seconds;
      stats;
      coverage;
      fingerprints;
    }

let load_outcome path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let content =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let* json =
      Result.map_error (fun m -> path ^ ": " ^ m) (Obs.Json.parse content)
    in
    Result.map_error (fun m -> path ^ ": " ^ m) (outcome_of_json json)

let write_outcome path o =
  Util.Durable.write_string ~path (Obs.Json.to_string (outcome_to_json o) ^ "\n")

(* ------------------------------------------------------------------ *)
(* Running one chunk *)

let precision_name = function Lang.Ast.F64 -> "fp64" | Lang.Ast.F32 -> "fp32"

type chunk_run = Skipped | Resumed | Fresh

let run_chunk ?(jobs = 1) ?(precision = Lang.Ast.F64) ?(interval = 5)
    ?(trace = true) ~root approach (slice : Shard.slice) =
  let dir = chunk_dir ~root slice.Shard.chunk in
  let done_path = outcome_path dir in
  if Sys.file_exists done_path then
    let* o = load_outcome done_path in
    let* () =
      if o.seed = slice.Shard.seed && o.budget = slice.Shard.budget
         && o.first_slot = slice.Shard.first_slot
      then Ok ()
      else
        err "%s records a different slice (seed %d, slots %d+%d) than planned"
          done_path o.seed o.first_slot o.budget
    in
    Ok (o, Skipped)
  else begin
    Util.Durable.mkdir_p dir;
    let recorder = Difftest.Recorder.create ~dir:(cases_path dir) in
    let ckpt = checkpoint_path dir in
    let* resume =
      if Sys.file_exists (Checkpoint.path ~dir:ckpt) then
        Result.map Option.some (Checkpoint.load ~dir:ckpt)
      else Ok None
    in
    let campaign () =
      Campaign.run ~budget:slice.Shard.budget ~precision ~jobs ~recorder
        ~checkpoint:(ckpt, interval) ?resume
        ~slot_offset:(slice.Shard.first_slot - 1) ~seed:slice.Shard.seed
        approach
    in
    let o =
      if not trace then campaign ()
      else begin
        let oc =
          match resume with
          | Some snap -> Checkpoint.reopen_trace ~path:(trace_path dir) snap
          | None -> open_out_bin (trace_path dir)
        in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            Obs.Trace.with_sink (Obs.Sink.ordered (Obs.Sink.jsonl oc)) campaign)
      end
    in
    let fingerprints, _, _ = Difftest.Recorder.snapshot recorder in
    let outcome =
      {
        chunk = slice.Shard.chunk;
        seed = slice.Shard.seed;
        first_slot = slice.Shard.first_slot;
        budget = slice.Shard.budget;
        approach = Approach.name approach;
        precision = precision_name precision;
        successful = o.Campaign.successful;
        generation_failures = o.Campaign.generation_failures;
        sim_seconds = o.Campaign.sim_seconds;
        llm_seconds = o.Campaign.llm_seconds;
        stats = o.Campaign.stats;
        coverage = o.Campaign.coverage;
        fingerprints;
      }
    in
    write_outcome done_path outcome;
    Ok (outcome, if resume = None then Fresh else Resumed)
  end

let run_shard ?chunk ?jobs ?precision ?interval ?trace ?on_chunk ~root
    ~spec ~budget ~seed approach =
  let slices = Shard.assigned spec (Shard.plan ?chunk ~budget ~seed ()) in
  List.fold_left
    (fun acc slice ->
      let* acc = acc in
      let* outcome, how = run_chunk ?jobs ?precision ?interval ?trace ~root
          approach slice
      in
      Option.iter (fun f -> f outcome how) on_chunk;
      Ok (outcome :: acc))
    (Ok []) slices
  |> Result.map List.rev

(* ------------------------------------------------------------------ *)
(* Merging *)

(* The fleet-level merge is keyed: chunk outcomes by chunk index, cases
   by fingerprint. Keyed union with a byte-equality conflict check is
   what makes the operation idempotent on top of the raw
   [Difftest.Stats.merge] / [Obs.Coverage.merge] sums — merging a
   record with itself (or two shards that happen to share a completed
   chunk directory) changes nothing, while a *conflicting* duplicate
   (same chunk id, different bytes: a mis-configured rerun) is a hard
   error rather than a silent double count. *)

let merge_outcomes a b =
  let tbl = Hashtbl.create 16 in
  List.iter (fun o -> Hashtbl.replace tbl o.chunk o) a;
  let* () =
    List.fold_left
      (fun acc o ->
        let* () = acc in
        match Hashtbl.find_opt tbl o.chunk with
        | None ->
          Hashtbl.replace tbl o.chunk o;
          Ok ()
        | Some prev ->
          if
            Obs.Json.to_string (outcome_to_json prev)
            = Obs.Json.to_string (outcome_to_json o)
          then Ok ()
          else err "conflicting outcomes for chunk %d" o.chunk)
      (Ok ()) b
  in
  Hashtbl.fold (fun _ o acc -> o :: acc) tbl []
  |> List.sort (fun x y -> Int.compare x.chunk y.chunk)
  |> Result.ok

type merged = {
  chunks : chunk_outcome list;  (* ascending chunk order, unique *)
  total_budget : int;
  total_successful : int;
  total_generation_failures : int;
  total_sim_seconds : float;
  total_llm_seconds : float;
  merged_stats : Difftest.Stats.t;
  merged_coverage : Obs.Coverage.t;
  cases : Difftest.Case.t list;  (* fingerprint-sorted union *)
}

let merge_cases per_chunk =
  let tbl = Hashtbl.create 64 in
  List.iter
    (List.iter (fun case ->
         let fp = Difftest.Case.fingerprint case in
         if not (Hashtbl.mem tbl fp) then Hashtbl.replace tbl fp case))
    per_chunk;
  Hashtbl.fold (fun _ c acc -> c :: acc) tbl []
  |> List.sort (fun a b ->
         String.compare (Difftest.Case.fingerprint a)
           (Difftest.Case.fingerprint b))

let summarize outcomes per_chunk_cases =
  let* chunks = merge_outcomes outcomes [] in
  match chunks with
  | [] -> err "nothing to merge (no chunk outcomes)"
  | first :: rest ->
    let fold f init get = List.fold_left (fun acc o -> f acc (get o)) init rest in
    Ok
      {
        chunks;
        total_budget = fold ( + ) first.budget (fun o -> o.budget);
        total_successful = fold ( + ) first.successful (fun o -> o.successful);
        total_generation_failures =
          fold ( + ) first.generation_failures (fun o -> o.generation_failures);
        total_sim_seconds = fold ( +. ) first.sim_seconds (fun o -> o.sim_seconds);
        total_llm_seconds = fold ( +. ) first.llm_seconds (fun o -> o.llm_seconds);
        merged_stats =
          fold Difftest.Stats.merge first.stats (fun o -> o.stats);
        merged_coverage =
          fold Obs.Coverage.merge first.coverage (fun o -> o.coverage);
        cases = merge_cases per_chunk_cases;
      }

let chunk_cases ~root o =
  let dir = cases_path (chunk_dir ~root o.chunk) in
  let* cases =
    if Sys.file_exists dir then Difftest.Recorder.load_dir dir else Ok []
  in
  let loaded =
    List.sort String.compare (List.map Difftest.Case.fingerprint cases)
  in
  if loaded = o.fingerprints then Ok cases
  else
    err "chunk %d archive does not match its outcome record (%d case(s) \
         on disk, %d recorded)"
      o.chunk (List.length loaded)
      (List.length o.fingerprints)

let load ~root =
  let* entries =
    match Sys.readdir root with
    | entries -> Ok (Array.to_list entries)
    | exception Sys_error msg -> err "%s" msg
  in
  let outcome_files =
    List.filter
      (fun e ->
        String.length e > 6
        && String.sub e 0 6 = "chunk-"
        && Sys.file_exists (outcome_path (Filename.concat root e)))
      entries
    |> List.sort String.compare
  in
  let* outcomes =
    List.fold_left
      (fun acc e ->
        let* acc = acc in
        let* o = load_outcome (outcome_path (Filename.concat root e)) in
        Ok (o :: acc))
      (Ok []) outcome_files
    |> Result.map List.rev
  in
  match outcomes with
  | [] ->
    err "no completed chunk outcomes under %s (run 'llm4fp fleet' or \
         'llm4fp campaign --shard' first)"
      root
  | outcomes ->
    let* per_chunk =
      List.fold_left
        (fun acc o ->
          let* acc = acc in
          let* cases = chunk_cases ~root o in
          Ok (cases :: acc))
        (Ok []) outcomes
      |> Result.map List.rev
    in
    summarize outcomes per_chunk

let signature m =
  ( Difftest.Stats.total_inconsistencies m.merged_stats,
    Difftest.Stats.total_comparisons m.merged_stats,
    m.total_successful,
    m.total_generation_failures,
    m.total_sim_seconds )

let write_archive ~dir m =
  Util.Durable.mkdir_p dir;
  List.iter
    (fun case ->
      let path =
        Filename.concat dir (Difftest.Case.fingerprint case ^ ".jsonl")
      in
      Util.Durable.write_string ~path
        (Obs.Json.to_string (Difftest.Case.to_json case) ^ "\n"))
    m.cases
