(** The four program-generation approaches the paper evaluates (§3.2.1),
    plus this reproduction's bandit ensemble over all of them. *)

type t =
  | Varity          (** random grammar generation, no LLM, no feedback *)
  | Direct_prompt   (** LLM, no grammar, no examples *)
  | Grammar_guided  (** LLM + Figure-2 grammar specification *)
  | Llm4fp          (** grammar + feedback-based mutation loop *)
  | Bandit
      (** epsilon-greedy ensemble ({!Bandit}): every slot goes to the
          arm — mutate, varity, direct, grammar, or archived-case
          growth — with the best recent inconsistencies per simulated
          second *)

val all : t array
(** The paper's four approaches in table order. [Bandit] is
    deliberately excluded: paper tables and suites iterate [all]. *)

val name : t -> string
(** Paper spelling: ["VARITY"], ["DIRECT-PROMPT"], ["GRAMMAR-GUIDED"],
    ["LLM4FP"]; the ensemble is ["BANDIT"]. *)

val of_name : string -> t option
(** Case-insensitive. *)

val uses_llm : t -> bool
