type suite = {
  budget : int;
  seed : int;
  varity : Campaign.outcome;
  direct : Campaign.outcome;
  grammar : Campaign.outcome;
  llm4fp : Campaign.outcome;
  bandit : Campaign.outcome;
}

let run_suite ?(budget = 1000) ?(jobs = 1) ~seed () =
  let sub k = seed + (k * 7919) in
  let campaign (k, approach) =
    Obs.Span.with_span
      ("campaign." ^ String.lowercase_ascii (Approach.name approach))
      (fun () -> Campaign.run ~budget ~jobs ~seed:(sub k) approach)
  in
  (* The five campaigns draw from decorrelated seed streams and share no
     mutable state beyond the domain-safe observability layer, so they
     fan out across the pool as independent units (the coarsest grain
     available); inside a pool worker the nested per-slot fan-out
     degrades to sequential automatically. *)
  match
    Exec.Pool.map ~jobs campaign
      [ (1, Approach.Varity); (2, Approach.Direct_prompt);
        (3, Approach.Grammar_guided); (4, Approach.Llm4fp);
        (5, Approach.Bandit) ]
  with
  | [ varity; direct; grammar; llm4fp; bandit ] ->
    { budget; seed; varity; direct; grammar; llm4fp; bandit }
  | _ -> assert false

let outcome suite = function
  | Approach.Varity -> suite.varity
  | Approach.Direct_prompt -> suite.direct
  | Approach.Grammar_guided -> suite.grammar
  | Approach.Llm4fp -> suite.llm4fp
  | Approach.Bandit -> suite.bandit

let outcomes suite =
  [ suite.varity; suite.direct; suite.grammar; suite.llm4fp ]

(* ----------------------------------------------------------------- *)

(* Every table is built as data first — title, header, rows — so the
   text rendering and the CSV export are two views of one computation
   (table3's CodeBLEU pass in particular must not run twice). *)
type tabular = {
  tab_title : string;
  tab_header : string list;
  tab_align : Report.Table.align list option;
  tab_rows : string list list;
}

let render_tabular t =
  match t.tab_align with
  | Some align ->
    Report.Table.render ~title:t.tab_title ~header:t.tab_header ~align
      t.tab_rows
  | None -> Report.Table.render ~title:t.tab_title ~header:t.tab_header t.tab_rows

let csv_tabular t = Report.Table.to_csv ~header:t.tab_header t.tab_rows

let table1_data () =
  let rows =
    Array.to_list Compiler.Optlevel.all
    |> List.map (fun level ->
           [ Compiler.Optlevel.name level;
             Compiler.Optlevel.host_flags level;
             Compiler.Optlevel.nvcc_flags level ])
  in
  {
    tab_title = "Table 1: Optimization Levels and Compiler Flags";
    tab_header = [ "Level"; "gcc/clang"; "nvcc" ];
    tab_align = Some [ Report.Table.Left; Report.Table.Left; Report.Table.Left ];
    tab_rows = rows;
  }

let table1 () = render_tabular (table1_data ())

let table2_data suite =
  let rows =
    outcomes suite
    |> List.map (fun (o : Campaign.outcome) ->
           [ Approach.name o.approach;
             Report.Table.pct (Difftest.Stats.inconsistency_rate o.stats);
             Report.Table.commas (Difftest.Stats.total_inconsistencies o.stats);
             Util.Sim_clock.hms o.sim_seconds ])
  in
  {
    tab_title =
      "Table 2: Numerical inconsistencies and time cost (simulated \
       hh:mm:ss)";
    tab_header = [ "Approach"; "Incons. Rate"; "# Incons."; "Time Cost" ];
    tab_align = None;
    tab_rows = rows;
  }

let table2 suite = render_tabular (table2_data suite)

let table3_data ?(max_pairs = 50_000) ?(jobs = 1) suite =
  (* Diversity scoring is the one post-campaign stage heavy enough to
     matter (O(pairs) CodeBLEU): fan the four independent corpora across
     the pool. *)
  let rows =
    Exec.Pool.map ~jobs
      (fun (o : Campaign.outcome) ->
        let codebleu =
          Obs.Span.with_span "diversity.codebleu" (fun () ->
              Diversity.Codebleu.corpus_mean ~max_pairs ~seed:suite.seed
                o.programs)
        in
        let clones = Diversity.Clones.analyze o.programs in
        [ Approach.name o.approach;
          Printf.sprintf "%.4f" codebleu;
          string_of_int clones.Diversity.Clones.type1;
          string_of_int clones.Diversity.Clones.type2;
          string_of_int clones.Diversity.Clones.type2c;
          Printf.sprintf "%.2f%%" (Diversity.Clones.percentage clones) ])
      (outcomes suite)
  in
  {
    tab_title =
      "Table 3: Program diversity (lower CodeBLEU is better; clone types \
       1 / 2 / 2c)";
    tab_header = [ "Approach"; "CodeBLEU"; "1"; "2"; "2c"; "Percentage" ];
    tab_align = None;
    tab_rows = rows;
  }

let table3 ?max_pairs ?jobs suite =
  render_tabular (table3_data ?max_pairs ?jobs suite)

(* ----------------------------------------------------------------- *)

let class_pair_columns =
  [ (Fp.Bits.Real, Fp.Bits.Real);
    (Fp.Bits.Real, Fp.Bits.Zero);
    (Fp.Bits.Real, Fp.Bits.Pos_inf);
    (Fp.Bits.Real, Fp.Bits.Neg_inf);
    (Fp.Bits.Real, Fp.Bits.Nan);
    (Fp.Bits.Zero, Fp.Bits.Pos_inf);
    (Fp.Bits.Zero, Fp.Bits.Neg_inf);
    (Fp.Bits.Zero, Fp.Bits.Nan);
    (Fp.Bits.Pos_inf, Fp.Bits.Neg_inf);
    (Fp.Bits.Pos_inf, Fp.Bits.Nan);
    (Fp.Bits.Neg_inf, Fp.Bits.Nan) ]

let dash n = if n = 0 then "-" else Report.Table.commas n

let figure3_data suite =
  let count stats pair = Difftest.Stats.class_pair_count stats pair in
  let rows =
    class_pair_columns
    |> List.filter_map (fun pair ->
           let v = count suite.varity.Campaign.stats pair in
           let l = count suite.llm4fp.Campaign.stats pair in
           if v = 0 && l = 0 then None
           else
             Some
               [ Fp.Bits.class_pair_name (fst pair) (snd pair);
                 dash v; dash l ])
  in
  {
    tab_title =
      "Figure 3: Inconsistency counts of different kinds between two \
       compilers (VARITY vs. LLM4FP)";
    tab_header = [ "Kind"; "VARITY"; "LLM4FP" ];
    tab_align = None;
    tab_rows = rows;
  }

let figure3 suite = render_tabular (figure3_data suite)

let table4_data suite =
  let stats = suite.llm4fp.Campaign.stats in
  let present =
    class_pair_columns
    |> List.filter (fun pair -> Difftest.Stats.class_pair_count stats pair > 0)
  in
  let rows =
    Array.to_list Compiler.Optlevel.all
    |> List.map (fun level ->
           Compiler.Optlevel.name level
           :: List.map
                (fun pair ->
                  dash (Difftest.Stats.class_pair_count stats ~level pair))
                present)
  in
  let total_row =
    [ "Total Inconsistencies";
      Report.Table.commas (Difftest.Stats.total_inconsistencies stats) ]
  in
  {
    tab_title =
      "Table 4: Inconsistency counts for LLM4FP across optimization \
       levels (\"-\" = category did not appear)";
    tab_header =
      "Optimization Level"
      :: List.map (fun (a, b) -> Fp.Bits.class_pair_name a b) present;
    tab_align = None;
    tab_rows = rows @ [ total_row ];
  }

let table4 suite = render_tabular (table4_data suite)

(* ----------------------------------------------------------------- *)

let table5_data suite =
  let cell (o : Campaign.outcome) pair level =
    let stats = o.Campaign.stats in
    let count = Difftest.Stats.cross_count stats ~pair ~level in
    if count = 0 then "-"
    else
      let rate =
        float_of_int count
        /. float_of_int (Difftest.Stats.total_comparisons stats)
      in
      Printf.sprintf "%s %s" (Report.Table.pct rate)
        (Fp.Digits.Acc.to_string (Difftest.Stats.cross_digits stats ~pair ~level))
  in
  let pair_names = List.map Compiler.Personality.pair_name Compiler.Personality.pairs in
  let header =
    "Level"
    :: (List.map (fun p -> "V: " ^ p) pair_names
       @ List.map (fun p -> "L: " ^ p) pair_names)
  in
  let rows =
    Array.to_list Compiler.Optlevel.all
    |> List.map (fun level ->
           Compiler.Optlevel.name level
           :: (List.map (fun pair -> cell suite.varity pair level) [ 0; 1; 2 ]
              @ List.map (fun pair -> cell suite.llm4fp pair level) [ 0; 1; 2 ]))
  in
  let total (o : Campaign.outcome) pair =
    let stats = o.Campaign.stats in
    let count = Difftest.Stats.pair_total stats ~pair in
    if count = 0 then "-"
    else
      Report.Table.pct
        (float_of_int count
        /. float_of_int (Difftest.Stats.total_comparisons stats))
  in
  let total_row =
    "Total"
    :: (List.map (total suite.varity) [ 0; 1; 2 ]
       @ List.map (total suite.llm4fp) [ 0; 1; 2 ])
  in
  {
    tab_title =
      "Table 5: Inconsistency rates and digit differences (min/max/avg) \
       across compiler pairs at each optimization level (V = VARITY, \
       L = LLM4FP)";
    tab_header = header;
    tab_align = None;
    tab_rows = rows @ [ total_row ];
  }

let table5 suite = render_tabular (table5_data suite)

let table6_data suite =
  let cell (o : Campaign.outcome) personality level =
    if level = Compiler.Optlevel.O0_nofma then "-"
    else
      let stats = o.Campaign.stats in
      let count = Difftest.Stats.within_count stats personality level in
      if count = 0 then "-"
      else
        Report.Table.pct
          (float_of_int count
          /. float_of_int (Difftest.Stats.within_comparisons stats))
  in
  let personalities = Array.to_list Compiler.Personality.all in
  let header =
    "Level"
    :: (List.map (fun p -> "V: " ^ Compiler.Personality.name p) personalities
       @ List.map (fun p -> "L: " ^ Compiler.Personality.name p) personalities)
  in
  let rows =
    Array.to_list Compiler.Optlevel.all
    |> List.filter (fun level -> level <> Compiler.Optlevel.O0_nofma)
    |> List.map (fun level ->
           Compiler.Optlevel.name level
           :: (List.map (fun p -> cell suite.varity p level) personalities
              @ List.map (fun p -> cell suite.llm4fp p level) personalities))
  in
  let total (o : Campaign.outcome) personality =
    let stats = o.Campaign.stats in
    let count = Difftest.Stats.within_total stats personality in
    if count = 0 then "-"
    else
      Report.Table.pct
        (float_of_int count
        /. float_of_int (Difftest.Stats.within_comparisons stats))
  in
  let total_row =
    "Total"
    :: (List.map (total suite.varity) personalities
       @ List.map (total suite.llm4fp) personalities)
  in
  {
    tab_title =
      "Table 6: Inconsistency rates between any optimization level and \
       00_nofma (V = VARITY, L = LLM4FP)";
    tab_header = header;
    tab_align = None;
    tab_rows = rows @ [ total_row ];
  }

let table6 suite = render_tabular (table6_data suite)

(* ----------------------------------------------------------------- *)

let summary suite =
  let b = Buffer.create 512 in
  Buffer.add_string b "LLM4FP reproduction campaign\n";
  Buffer.add_string b
    (Printf.sprintf "budget: %d programs per approach; base seed: %d\n"
       suite.budget suite.seed);
  Buffer.add_string b "compilers: ";
  Array.iter
    (fun p ->
      Buffer.add_string b
        (Printf.sprintf "%s %s%s " (Compiler.Personality.name p)
           (Compiler.Personality.version p)
           (if Compiler.Personality.is_host p then " (host)" else " (device)")))
    Compiler.Personality.all;
  Buffer.add_string b "\n";
  Buffer.add_string b ("math library model: " ^ Mathlib.Libm.profiles_doc ^ "\n");
  List.iter
    (fun (o : Campaign.outcome) ->
      Buffer.add_string b
        (Printf.sprintf
           "%-15s valid programs: %d/%d; feedback set: %d; simulated %s \
            (llm %s); real compute %.1fs\n"
           (Approach.name o.approach)
           (List.length o.programs) o.budget o.successful
           (Util.Sim_clock.hms o.sim_seconds)
           (Util.Sim_clock.hms o.llm_seconds)
           o.real_seconds))
    (outcomes suite);
  Buffer.contents b

let feature_statistics_data suite =
  let mean f programs =
    let total = List.fold_left (fun acc p -> acc + f p) 0 programs in
    float_of_int total /. float_of_int (max 1 (List.length programs))
  in
  let rows =
    outcomes suite
    |> List.map (fun (o : Campaign.outcome) ->
           let programs = o.programs in
           let features = List.map Analysis.Features.of_program programs in
           let meanf f =
             let total = List.fold_left (fun acc x -> acc +. f x) 0.0 features in
             total /. float_of_int (max 1 (List.length features))
           in
           [ Approach.name o.approach;
             Printf.sprintf "%.0f" (mean Lang.Ast.program_size programs);
             Printf.sprintf "%.2f" (mean Lang.Ast.call_count programs);
             Printf.sprintf "%.2f" (mean Lang.Ast.loop_count programs);
             Printf.sprintf "%.2f"
               (meanf (fun (f : Analysis.Features.t) ->
                    float_of_int f.Analysis.Features.split_mul_add_patterns));
             Printf.sprintf "%.2f"
               (meanf (fun (f : Analysis.Features.t) ->
                    float_of_int f.Analysis.Features.mul_add_patterns));
             Printf.sprintf "%.2f"
               (meanf (fun (f : Analysis.Features.t) ->
                    float_of_int f.Analysis.Features.accumulation_loops)) ])
  in
  {
    tab_title =
      "Feature statistics (this reproduction): per-program structural means driving the divergence mechanisms";
    tab_header =
      [ "approach"; "size"; "calls"; "loops"; "split-mul-add"; "mul-add";
        "accum-loops" ];
    tab_align = None;
    tab_rows = rows;
  }

let feature_statistics suite = render_tabular (feature_statistics_data suite)

(* Equal-budget ablation: the bandit ensemble against each fixed arm it
   interleaves. The comparison metric is the bandit's own objective —
   inconsistencies per simulated second — so the table directly answers
   "did adaptive allocation beat the best single generator?". *)
let bandit_ablation_data suite =
  let per_sim (o : Campaign.outcome) =
    if o.Campaign.sim_seconds <= 0.0 then 0.0
    else
      float_of_int (Difftest.Stats.total_inconsistencies o.Campaign.stats)
      /. o.Campaign.sim_seconds
  in
  let bandit_rate = per_sim suite.bandit in
  let row (o : Campaign.outcome) =
    let r = per_sim o in
    [ Approach.name o.Campaign.approach;
      Report.Table.commas (Difftest.Stats.total_inconsistencies o.Campaign.stats);
      Util.Sim_clock.hms o.Campaign.sim_seconds;
      Printf.sprintf "%.4f" r;
      (if o.Campaign.approach = Approach.Bandit then "-"
       else Printf.sprintf "%+.4f" (bandit_rate -. r)) ]
  in
  {
    tab_title =
      "Bandit ablation (this reproduction): ensemble vs each fixed arm at \
       equal budget (incons/sim-s; delta = bandit - arm)";
    tab_header =
      [ "campaign"; "# incons."; "sim time"; "incons/sim-s"; "bandit delta" ];
    tab_align = None;
    tab_rows = List.map row (suite.bandit :: outcomes suite);
  }

let bandit_ablation suite = render_tabular (bandit_ablation_data suite)

let precision_comparison ?(budget = 300) ~seed () =
  let row approach precision label =
    let o = Campaign.run ~budget ~precision ~seed approach in
    [ Printf.sprintf "%s (%s)" (Approach.name o.Campaign.approach) label;
      Report.Table.pct (Difftest.Stats.inconsistency_rate o.Campaign.stats);
      Report.Table.commas (Difftest.Stats.total_inconsistencies o.Campaign.stats);
      string_of_int o.Campaign.successful ]
  in
  Report.Table.render
    ~title:
      (Printf.sprintf
         "Precision extension (this reproduction): FP64 vs FP32 campaigns (budget %d)"
         budget)
    ~header:[ "campaign"; "incons. rate"; "# incons."; "feedback set" ]
    [ row Approach.Varity Lang.Ast.F64 "FP64";
      row Approach.Varity Lang.Ast.F32 "FP32";
      row Approach.Llm4fp Lang.Ast.F64 "FP64";
      row Approach.Llm4fp Lang.Ast.F32 "FP32" ]

let seed_stability ?(budget = 200) ~seeds () =
  let rates approach =
    List.map
      (fun seed ->
        let o = Campaign.run ~budget ~seed approach in
        Difftest.Stats.inconsistency_rate o.Campaign.stats)
      seeds
  in
  let rows =
    Array.to_list Approach.all
    |> List.map (fun approach ->
           let rs = rates approach in
           let mn = List.fold_left Float.min infinity rs in
           let mx = List.fold_left Float.max neg_infinity rs in
           let mean = List.fold_left ( +. ) 0.0 rs /. float_of_int (List.length rs) in
           Approach.name approach
           :: (List.map Report.Table.pct rs
              @ [ Report.Table.pct mn; Report.Table.pct mean; Report.Table.pct mx ]))
  in
  let header =
    "approach"
    :: (List.map (fun s -> Printf.sprintf "seed %d" s) seeds
       @ [ "min"; "mean"; "max" ])
  in
  Report.Table.render
    ~title:
      (Printf.sprintf
         "Seed stability (this reproduction): Table-2 rates across %d independent seeds (budget %d)"
         (List.length seeds) budget)
    ~header rows

type section = { name : string; text : string; csv : string option }

let sections ?max_pairs ?jobs suite =
  let tab name t =
    { name; text = render_tabular t; csv = Some (csv_tabular t) }
  in
  { name = "summary"; text = summary suite; csv = None }
  :: [ tab "table1" (table1_data ());
       tab "table2" (table2_data suite);
       tab "table3" (table3_data ?max_pairs ?jobs suite);
       tab "figure3" (figure3_data suite);
       tab "table4" (table4_data suite);
       tab "table5" (table5_data suite);
       tab "table6" (table6_data suite);
       tab "features" (feature_statistics_data suite);
       tab "bandit" (bandit_ablation_data suite) ]

let all_tables ?max_pairs ?jobs suite =
  List.map (fun s -> (s.name, s.text)) (sections ?max_pairs ?jobs suite)
