(** The distributed campaign fleet: run budget chunks as independent
    mini-campaigns, persist a durable outcome per chunk, and merge any
    set of completed chunks into one combined record.

    Everything under a fleet root is keyed by {e chunk}, never by
    shard: [ROOT/chunk-%04d/] holds that chunk's JSONL trace, case
    archive, checkpoint directory and [outcome.json]. Which process ran
    a chunk leaves no mark, so a fleet at any shard count produces the
    byte-identical tree — the invariance the shard drills assert
    against the single-process reference ([--shard 0/1]).

    [outcome.json] doubles as the completion marker and is written
    durably ({!Util.Durable}) only after the chunk finishes: a
    restarted shard {e skips} chunks that have one, {e resumes} from
    the chunk's checkpoint when one exists, and otherwise reruns the
    chunk fresh. Combined with {!Campaign.run}'s byte-identical
    resume guarantee, a shard killed at any point and rerun converges
    to the same tree — the supervisor only has to respawn processes. *)

(** {1 Layout} *)

val chunk_dir : root:string -> int -> string
(** [ROOT/chunk-%04d]. *)

val trace_path : string -> string
(** [CHUNK_DIR/trace.jsonl]. *)

val cases_path : string -> string
(** [CHUNK_DIR/cases] — the chunk's {!Difftest.Recorder} archive. *)

val checkpoint_path : string -> string
(** [CHUNK_DIR/ckpt] — the chunk's {!Checkpoint} directory. *)

val outcome_path : string -> string
(** [CHUNK_DIR/outcome.json] — the completion marker. *)

(** {1 Chunk outcomes} *)

type chunk_outcome = {
  chunk : int;
  seed : int;          (** derived: {!Shard.chunk_seed} *)
  first_slot : int;    (** global slot of the chunk's first slot *)
  budget : int;        (** slots this chunk ran *)
  approach : string;
  precision : string;
  successful : int;
  generation_failures : int;
  sim_seconds : float;
  llm_seconds : float;
  stats : Difftest.Stats.t;
  coverage : Obs.Coverage.t;
  fingerprints : string list;  (** sorted archive fingerprints *)
}

val json_schema : string
(** ["llm4fp-fleet-chunk/1"]. *)

val outcome_to_json : chunk_outcome -> Obs.Json.t
(** Byte-stable: equal outcomes serialize identically (the conflict
    check and the shard-invariance drills compare these bytes). *)

val outcome_of_json : Obs.Json.t -> (chunk_outcome, string) result
val load_outcome : string -> (chunk_outcome, string) result

(** {1 Running} *)

type chunk_run =
  | Skipped  (** outcome.json already present — nothing ran *)
  | Resumed  (** continued from the chunk's checkpoint *)
  | Fresh    (** ran from slot 1 of the chunk *)

val run_chunk :
  ?jobs:int ->
  ?precision:Lang.Ast.precision ->
  ?interval:int ->
  ?trace:bool ->
  root:string ->
  Approach.t ->
  Shard.slice ->
  (chunk_outcome * chunk_run, string) result
(** Run (or skip, or resume) one chunk under the fleet root: a
    {!Campaign.run} with the slice's derived seed, budget and
    [slot_offset = first_slot - 1], recording into the chunk archive,
    checkpointing every [interval] slots (default 5) into the chunk's
    checkpoint directory, and — unless [trace] is [false] (in-process
    benchmarking: the trace sink is process-global) — writing the
    chunk's ordered JSONL trace. A pre-existing [outcome.json] is
    validated against the slice and returned as {!Skipped}. *)

val run_shard :
  ?chunk:int ->
  ?jobs:int ->
  ?precision:Lang.Ast.precision ->
  ?interval:int ->
  ?trace:bool ->
  ?on_chunk:(chunk_outcome -> chunk_run -> unit) ->
  root:string ->
  spec:Shard.spec ->
  budget:int ->
  seed:int ->
  Approach.t ->
  (chunk_outcome list, string) result
(** Run every chunk the shard owns ({!Shard.assigned} of
    {!Shard.plan}), in chunk order, calling [on_chunk] after each.
    Idempotent: rerunning a completed shard skips every chunk. *)

(** {1 Merging} *)

val merge_outcomes :
  chunk_outcome list ->
  chunk_outcome list ->
  (chunk_outcome list, string) result
(** Chunk-id-keyed union, ascending chunk order. Two outcomes for the
    same chunk must serialize to identical bytes — so the union is
    commutative, associative {e and} idempotent (the fleet-merge
    property suite's laws) — and conflicting duplicates (a
    mis-configured rerun) are an [Error], never a silent double
    count. *)

type merged = {
  chunks : chunk_outcome list;  (** ascending chunk order, unique *)
  total_budget : int;
  total_successful : int;
  total_generation_failures : int;
  total_sim_seconds : float;
  total_llm_seconds : float;
  merged_stats : Difftest.Stats.t;
      (** {!Difftest.Stats.merge} folded in chunk order *)
  merged_coverage : Obs.Coverage.t;
      (** {!Obs.Coverage.merge} folded in chunk order *)
  cases : Difftest.Case.t list;
      (** fingerprint-sorted union of the chunk archives *)
}

val merge_cases : Difftest.Case.t list list -> Difftest.Case.t list
(** Fingerprint-keyed union of per-chunk case lists, sorted by
    fingerprint — cases are content-addressed, so duplicates across
    chunks are byte-identical and the union is order-insensitive. *)

val summarize :
  chunk_outcome list ->
  Difftest.Case.t list list ->
  (merged, string) result
(** Fold outcomes (deduplicated and sorted by {!merge_outcomes}) and
    their per-chunk case lists into one {!merged} record. [Error] on
    an empty outcome set or a chunk-id conflict. *)

val load : root:string -> (merged, string) result
(** Scan the fleet root for completed chunks ([chunk-*/outcome.json]),
    load each outcome and its case archive (verifying the archive
    matches the outcome's fingerprint list), and {!summarize}.
    Deterministic: directory order never leaks (chunks sort by id,
    cases by fingerprint). *)

val signature : merged -> int * int * int * int * float
(** The fleet analogue of {!Campaign.signature}: (inconsistencies,
    comparisons, feedback-set total, generation failures, summed
    simulated seconds). Byte-comparable across shard counts. *)

val write_archive : dir:string -> merged -> unit
(** Write the merged case archive into [dir] (one
    [<fingerprint>.jsonl] per case, durable writes) — byte-identical
    to the union of the chunk archives, loadable by
    {!Difftest.Recorder.load_dir} and every downstream tool
    ([dashboard], [explain]). *)
