(** Deterministic partitioning of a campaign budget across a fleet.

    A budget of B slots is cut into fixed-size contiguous {e chunks},
    each run as an independent mini-campaign ({!Campaign.run} with a
    derived seed and a slot offset). Shard [i] of [N] owns exactly the
    chunks with [chunk mod N = i], so for any N the slices are pairwise
    disjoint, jointly exhaustive over [1..B], and — because ownership
    is a pure function of the chunk index — the {e set} of chunks the
    whole fleet runs is identical at every shard count. The merged
    fleet result is therefore a function of (seed, budget, chunk size)
    alone, byte-identical to the single-process reference
    ([--shard 0/1]).

    The documented trade-off: the paper's feedback loop is sequential,
    so the mutate arm's successful set resets at chunk boundaries.
    {!default_chunk} balances feedback depth against parallel grain;
    changing the chunk size changes results (it is part of the
    partition's identity), changing the shard count never does. *)

type spec = { index : int; count : int }
(** One shard's identity: [index] of [count], zero-based. *)

val parse_spec : string -> (spec, string) result
(** Parse an ["I/N"] spec as given to [--shard]. [Error] (a one-line
    diagnostic) unless both are integers with [0 <= I < N]. *)

val spec_name : spec -> string
(** Canonical ["I/N"] rendering (inverse of {!parse_spec}). *)

type slice = {
  chunk : int;       (** chunk index, zero-based *)
  first_slot : int;  (** first global budget slot (1-based) *)
  budget : int;      (** slots in this chunk (the last may be short) *)
  seed : int;        (** derived campaign seed, {!chunk_seed} *)
}

val default_chunk : int
(** 25 slots per chunk. *)

val chunk_seed : seed:int -> int -> int
(** SplitMix64-finalized mix of the base seed and the chunk index:
    decorrelated per-chunk streams, deterministic, non-negative. *)

val plan : ?chunk:int -> budget:int -> seed:int -> unit -> slice list
(** Every chunk of the campaign in index order. Raises
    [Invalid_argument] on a non-positive chunk size or negative
    budget. *)

val assigned : spec -> slice list -> slice list
(** The slices shard [spec] owns ([chunk mod count = index]), in index
    order. *)

val slots : slice -> int list
(** The global slot numbers a slice covers, ascending. *)
