(* Epsilon-greedy multi-armed bandit over the five generation arms.

   Each campaign slot is one pull. The reward signal is the one the
   coverage observatory already measures for strategies: inconsistencies
   per simulated second, over a rolling window of the simulated clock
   (default {!Obs.Coverage.default_window}), so an arm that was hot an
   hour of simulated time ago but has gone cold is demoted the same way
   a strategy's efficiency rate decays.

   Draw discipline: selection consumes {e exactly two} uniform draws
   from the bandit's own split stream per slot — one explore/exploit
   decision, one arm pick — no matter which branch is taken (warmup,
   exploration or exploitation). A fixed draw count is what keeps
   kill/resume byte-identical: the posterior and the stream position
   both travel in the checkpoint, and neither depends on data-dependent
   control flow. *)

type arm = Mutate | Varity | Direct | Grammar | Grow

let arms = [| Mutate; Varity; Direct; Grammar; Grow |]

(* Arm names double as campaign strategy names, so Slot_started events,
   the coverage ledger and the flight deck label bandit slots with the
   same vocabulary as fixed-arm campaigns. *)
let arm_name = function
  | Mutate -> "mutate"
  | Varity -> "varity"
  | Direct -> "direct"
  | Grammar -> "grammar"
  | Grow -> "grow"

let arm_of_name = function
  | "mutate" -> Some Mutate
  | "varity" -> Some Varity
  | "direct" -> Some Direct
  | "grammar" -> Some Grammar
  | "grow" -> Some Grow
  | _ -> None

type post = {
  mutable pulls : int;
  mutable inconsistencies : int;  (* lifetime total *)
  mutable sim_cost : float;       (* lifetime simulated seconds *)
  mutable window : (float * int * float) list;
      (* newest first: (completion sim-time, inconsistency delta,
         simulated cost) — entries older than the window are pruned *)
}

type t = {
  rng : Util.Rng.t;
  epsilon : float;
  window_s : float;
  posts : post array;  (* indexed like [arms] *)
}

let default_epsilon = 0.1

let create ?(epsilon = default_epsilon)
    ?(window = Obs.Coverage.default_window) ~rng () =
  {
    rng;
    epsilon;
    window_s = window;
    posts =
      Array.map
        (fun _ ->
          { pulls = 0; inconsistencies = 0; sim_cost = 0.0; window = [] })
        arms;
  }

let index arm =
  let rec go i = if arms.(i) = arm then i else go (i + 1) in
  go 0

let prune t post ~now =
  let cutoff = now -. t.window_s in
  post.window <- List.filter (fun (at, _, _) -> at >= cutoff) post.window

(* Windowed inconsistencies per simulated second; 0 before any cost has
   been charged in the window. *)
let reward t arm ~now =
  let post = t.posts.(index arm) in
  prune t post ~now;
  let incons, cost =
    List.fold_left
      (fun (i, c) (_, di, dc) -> (i + di, c +. dc))
      (0, 0.0) post.window
  in
  if cost <= 0.0 then 0.0 else float_of_int incons /. cost

let pulls t arm = t.posts.(index arm).pulls

type choice = {
  arm : arm;
  pulls_before : int;
  estimate : float;  (** windowed reward of the chosen arm at choice time *)
  explore : bool;    (** warmup or epsilon-exploration, not exploitation *)
}

let select t ~now ~mutate_ok ~grow_ok =
  (* Both draws happen up front, unconditionally: the stream position
     after [select] is a pure function of the position before it. *)
  let u_explore = Util.Rng.float t.rng 1.0 in
  let u_pick = Util.Rng.float t.rng 1.0 in
  let ok = function
    | Mutate -> mutate_ok
    | Grow -> grow_ok
    | Varity | Direct | Grammar -> true
  in
  let eligible = Array.to_list arms |> List.filter ok in
  let pick =
    match List.find_opt (fun a -> pulls t a = 0) eligible with
    | Some a -> (a, true) (* warmup: every eligible arm gets a first pull *)
    | None ->
      if u_explore < t.epsilon then begin
        let n = List.length eligible in
        let i = int_of_float (u_pick *. float_of_int n) in
        (List.nth eligible (min i (n - 1)), true)
      end
      else
        (* Exploit: best windowed rate; ties resolve to the fixed arm
           order, so exploitation is draw-free and deterministic. *)
        let best =
          List.fold_left
            (fun acc a ->
              match acc with
              | None -> Some (a, reward t a ~now)
              | Some (_, best_r) ->
                let r = reward t a ~now in
                if r > best_r then Some (a, r) else acc)
            None eligible
        in
        (fst (Option.get best), false)
  in
  let arm, explore = pick in
  { arm; pulls_before = pulls t arm; estimate = reward t arm ~now; explore }

let update t arm ~inconsistencies ~sim_cost ~now =
  let post = t.posts.(index arm) in
  post.pulls <- post.pulls + 1;
  post.inconsistencies <- post.inconsistencies + inconsistencies;
  post.sim_cost <- post.sim_cost +. sim_cost;
  post.window <- (now, inconsistencies, sim_cost) :: post.window;
  prune t post ~now

(* ------------------------------------------------------------------ *)
(* Serialization: the posterior array plus the stream position, stored
   verbatim in the campaign checkpoint (schema 3). *)

let rng_to_json (state, spare) =
  Obs.Json.Obj
    [ ("state", Obs.Json.String (Printf.sprintf "%016Lx" state));
      ( "spare",
        match spare with
        | None -> Obs.Json.Null
        | Some f -> Obs.Json.Float f ) ]

let to_json t =
  Obs.Json.Obj
    [ ("epsilon", Obs.Json.Float t.epsilon);
      ("window_s", Obs.Json.Float t.window_s);
      ("rng", rng_to_json (Util.Rng.state t.rng));
      ( "arms",
        Obs.Json.List
          (Array.to_list
             (Array.mapi
                (fun i post ->
                  Obs.Json.Obj
                    [ ("arm", Obs.Json.String (arm_name arms.(i)));
                      ("pulls", Obs.Json.Int post.pulls);
                      ( "inconsistencies",
                        Obs.Json.Int post.inconsistencies );
                      ("sim_cost", Obs.Json.Float post.sim_cost);
                      ( "window",
                        Obs.Json.List
                          (List.map
                             (fun (at, di, dc) ->
                               Obs.Json.List
                                 [ Obs.Json.Float at; Obs.Json.Int di;
                                   Obs.Json.Float dc ])
                             post.window) ) ])
                t.posts)) ) ]

let ( let* ) = Result.bind

let err fmt = Printf.ksprintf (fun m -> Error ("bandit: " ^ m)) fmt

let number = function
  | Obs.Json.Float f -> Ok f
  | Obs.Json.Int n -> Ok (float_of_int n)
  | _ -> err "expected a number"

let float_field name json =
  match Obs.Json.member name json with
  | Some v -> number v
  | None -> err "missing field %S" name

let int_field name json =
  match Obs.Json.member name json with
  | Some (Obs.Json.Int n) -> Ok n
  | _ -> err "missing or non-int field %S" name

let restore t json =
  let* epsilon = float_field "epsilon" json in
  let* window_s = float_field "window_s" json in
  let* () =
    if epsilon = t.epsilon && window_s = t.window_s then Ok ()
    else err "checkpoint has epsilon %g window %g, caller built %g/%g"
        epsilon window_s t.epsilon t.window_s
  in
  let* rng_json =
    match Obs.Json.member "rng" json with
    | Some j -> Ok j
    | None -> err "missing field \"rng\""
  in
  let* state_s =
    match Obs.Json.member "state" rng_json with
    | Some (Obs.Json.String s) -> Ok s
    | _ -> err "malformed rng state"
  in
  let* state =
    match Int64.of_string_opt ("0x" ^ state_s) with
    | Some v -> Ok v
    | None -> err "rng state %S is not 16 hex digits" state_s
  in
  let* spare =
    match Obs.Json.member "spare" rng_json with
    | Some Obs.Json.Null -> Ok None
    | Some v -> Result.map Option.some (number v)
    | None -> err "malformed rng spare"
  in
  let* arm_list =
    match Obs.Json.member "arms" json with
    | Some (Obs.Json.List items) -> Ok items
    | _ -> err "missing or non-list field \"arms\""
  in
  let* () =
    if List.length arm_list = Array.length arms then Ok ()
    else err "expected %d arms, found %d" (Array.length arms)
        (List.length arm_list)
  in
  let* posts =
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        let* name =
          match Obs.Json.member "arm" item with
          | Some (Obs.Json.String s) -> Ok s
          | _ -> err "arm entry without a name"
        in
        let* arm =
          match arm_of_name name with
          | Some a -> Ok a
          | None -> err "unknown arm %S" name
        in
        let* pulls = int_field "pulls" item in
        let* inconsistencies = int_field "inconsistencies" item in
        let* sim_cost = float_field "sim_cost" item in
        let* window =
          match Obs.Json.member "window" item with
          | Some (Obs.Json.List entries) ->
            List.fold_left
              (fun acc entry ->
                let* acc = acc in
                match entry with
                | Obs.Json.List [ at; di; dc ] ->
                  let* at = number at in
                  let* di =
                    match di with
                    | Obs.Json.Int n -> Ok n
                    | _ -> err "malformed window entry"
                  in
                  let* dc = number dc in
                  Ok ((at, di, dc) :: acc)
                | _ -> err "malformed window entry")
              (Ok []) entries
            |> Result.map List.rev
          | _ -> err "arm entry without a window"
        in
        Ok ((arm, pulls, inconsistencies, sim_cost, window) :: acc))
      (Ok []) arm_list
    |> Result.map List.rev
  in
  Util.Rng.set_state t.rng (state, spare);
  List.iter
    (fun (arm, pulls, inconsistencies, sim_cost, window) ->
      let post = t.posts.(index arm) in
      post.pulls <- pulls;
      post.inconsistencies <- inconsistencies;
      post.sim_cost <- sim_cost;
      post.window <- window)
    posts;
  Ok ()

(* Per-arm rows for reports and the bench summary, in fixed arm order:
   (name, pulls, inconsistencies, sim seconds, windowless lifetime
   rate). *)
let table t =
  Array.to_list
    (Array.mapi
       (fun i post ->
         let rate =
           if post.sim_cost <= 0.0 then 0.0
           else float_of_int post.inconsistencies /. post.sim_cost
         in
         (arm_name arms.(i), post.pulls, post.inconsistencies, post.sim_cost,
          rate))
       t.posts)
