(** Campaign runner: one approach, one budget, full pipeline.

    Implements Figure 1's loop. For each of the [budget] slots: select a
    generation strategy (for LLM4FP, a fair coin between Grammar-Based
    Generation and Feedback-Based Mutation once the successful set is
    non-empty — §2.3), obtain a candidate program, pair it with a fresh
    input vector, push it through the compilation driver and differential
    testing, and feed programs that triggered at least one inconsistency
    back into the successful set. All costs are charged to a simulated
    clock via {!Time_model}.

    Everything is deterministic in [seed]. *)

type outcome = {
  approach : Approach.t;
  budget : int;
  stats : Difftest.Stats.t;
  coverage : Obs.Coverage.t;
      (** search-space coverage ledger: every inconsistent comparison's
          (kind × pair × level × value-class) cell, with hit counts,
          first-discovery provenance and rolling novelty telemetry.
          Purely observational, deterministic in [seed], and snapshotted
          by checkpoints. *)
  programs : Lang.Ast.program list;
      (** valid generated programs in generation order (diversity input) *)
  cases : (Lang.Ast.program * Irsim.Inputs.t) list;
      (** the same programs paired with their input vectors, so ablation
          studies can replay the corpus under modified compiler models *)
  generation_failures : int;
      (** budget slots whose candidate failed to parse or validate *)
  successful : int;  (** final size of the feedback set *)
  sim_seconds : float;       (** total modelled wall-clock *)
  llm_seconds : float;       (** the API-latency share *)
  real_seconds : float;      (** actually measured compute time *)
  bandit : Bandit.t option;
      (** final arm posteriors ({!Bandit.table} renders them); [None]
          outside bandit campaigns *)
}

val run :
  ?budget:int ->
  ?precision:Lang.Ast.precision ->
  ?jobs:int ->
  ?recorder:Difftest.Recorder.t ->
  ?checkpoint:string * int ->
  ?resume:Checkpoint.t ->
  ?slot_offset:int ->
  ?grow_seeds:Lang.Ast.program list ->
  seed:int ->
  Approach.t ->
  outcome
(** [budget] defaults to 1000 (the paper's); [precision] to FP64 (the
    paper's default — §3.1.3 notes the extension to FP32, which this
    parameter provides: programs are generated, printed, compiled and
    executed in single precision, and nvcc's [-use_fast_math] intrinsics
    then genuinely apply).

    [jobs] (default 1) fans each slot's configuration matrix across the
    {!Exec.Pool}. The feedback loop stays strictly sequential in slot
    order — the strategy draw, the generated program and the feedback
    set of slot [n] never depend on execution timing — so the outcome
    is identical at any job count; only wall-clock changes.

    [recorder] (none by default) attaches a {!Difftest.Recorder} flight
    recorder: every first-seen inconsistency — cross {e and} within —
    is archived as a replayable case file. Recording is purely
    observational; it changes no statistic, no RNG draw and no feedback
    decision.

    [checkpoint:(dir, interval)] durably snapshots the complete loop
    state into [dir] every [interval] slots ({!Checkpoint.write}:
    atomic temp + rename, fsync'd), at the slot boundary, never after
    the final slot. Checkpointing off means zero behaviour change; on,
    it adds only the snapshot writes — no RNG draw, no statistic, no
    trace event differs.

    [resume] restores a {!Checkpoint.load}ed snapshot and continues at
    its [next_slot]. The caller's [seed], [budget], [precision] and
    approach must match the snapshot ([Invalid_argument] otherwise),
    and the caller is responsible for truncating a trace file to the
    snapshot's offset {e before} subscribing its sink
    ({!Checkpoint.reopen_trace}). A resumed campaign's outcome, trace
    bytes and case archives are identical to the uninterrupted run's,
    at any kill point and any job count.

    [grow_seeds] (default empty) is the grow arm's external seed pool —
    typically archived cases loaded with {!Reduce.grow_pool} from a
    previous campaign's [--record] directory. Only a bandit campaign
    reads it: the grow arm draws a seed from [grow_seeds] plus the
    current feedback set and applies {!Gen.Grow}'s validity-preserving
    growth moves. The pool is snapshotted into checkpoints (as C
    renderings), so a resumed run ignores the caller's value and
    restores the original pool.

    For [Approach.Bandit], the per-slot strategy is chosen by an
    epsilon-greedy bandit ({!Bandit}) over five arms — mutate, varity,
    direct, grammar, grow — maximising recent inconsistencies per
    simulated second. The bandit draws from its own split stream
    (exactly two draws per slot), so fixed-arm campaigns' draw
    sequences are untouched, and its full posterior rides in the
    checkpoint for byte-identical kill/resume. Every choice is traced
    as an {!Obs.Event.Arm_chosen} event just before [Slot_started].

    [slot_offset] (default 0) shifts every {e reported} slot number —
    trace events and their ordering stamps, archived-case provenance,
    coverage recordings — by the given amount, without touching the
    loop itself: RNG draws, feedback decisions, checkpoint contents and
    resume logic all keep the campaign-local [1..budget] indices. The
    fleet layer runs each chunk as an independent campaign with
    [slot_offset = first_slot - 1], so merged traces and ledgers carry
    globally unique slot numbers. At offset 0, behaviour is
    bit-identical to before the parameter existed. *)

val signature : outcome -> int * int * int * int * float
(** (total inconsistencies, total comparisons, feedback-set size,
    generation failures, simulated seconds): the outcome fields that
    every determinism drill asserts invariant — under job count,
    checkpoint/resume, attached observers, and execution engine. Shared
    by bench and the equivalence tests so they all compare the same
    key. *)

val strategy_mix_probability : float
(** 0.5 — the paper's fixed probability of choosing Feedback-Based
    Mutation once examples exist (§3.1.4). *)
