type variant = {
  name : string;
  description : string;
  configs : Compiler.Config.t list;
}

let base () = Compiler.Config.all ()

let no_cuda_libm () =
  List.map
    (fun (c : Compiler.Config.t) ->
      match c.libm with
      | Mathlib.Libm.Cuda -> { c with Compiler.Config.libm = Mathlib.Libm.Glibc }
      | Mathlib.Libm.Cuda_fast ->
        { c with Compiler.Config.libm = Mathlib.Libm.Gcc_fast }
      | _ -> c)
    (base ())

let no_fma_gap () =
  List.map
    (fun (c : Compiler.Config.t) ->
      let contract =
        match c.Compiler.Config.level with
        | Compiler.Optlevel.O0_nofma | Compiler.Optlevel.O0 ->
          Irsim.Contract.No_contract
        | _ -> Irsim.Contract.Syntactic
      in
      { c with Compiler.Config.contract })
    (base ())

let no_fold_divergence () =
  List.map
    (fun (c : Compiler.Config.t) ->
      { c with
        Compiler.Config.fold =
          { c.Compiler.Config.fold with Irsim.Fold.fold_calls = None } })
    (base ())

let no_fastmath () =
  List.map
    (fun (c : Compiler.Config.t) ->
      if c.Compiler.Config.level <> Compiler.Optlevel.O3_fastmath then c
      else
        let plain =
          Compiler.Config.make c.Compiler.Config.personality Compiler.Optlevel.O3
        in
        { plain with Compiler.Config.level = Compiler.Optlevel.O3_fastmath })
    (base ())

let variants () =
  [
    { name = "full"; description = "unmodified compiler model"; configs = base () };
    { name = "no-cuda-libm";
      description = "device links the host math library";
      configs = no_cuda_libm () };
    { name = "no-fma-gap";
      description = "uniform syntactic contraction at O1+ for everyone";
      configs = no_fma_gap () };
    { name = "no-fold-divergence";
      description = "no divergent compile-time folding of math calls";
      configs = no_fold_divergence () };
    { name = "no-fastmath";
      description = "03_fastmath behaves exactly like 03";
      configs = no_fastmath () };
  ]

let replay ?(jobs = 1) variant cases =
  (* The corpus is fixed, so each case is an independent unit of work:
     fan the difftests across the pool and fold the results into the
     stats accumulator sequentially, in corpus order. Pool.map preserves
     that order, so the statistics are identical at any job count. *)
  let results =
    Exec.Pool.map ~jobs
      (fun (program, inputs) ->
        Difftest.Run.test ~configs:variant.configs program inputs)
      cases
  in
  let stats = Difftest.Stats.create () in
  List.iter (Difftest.Stats.add stats) results;
  stats

let table ?(budget = 300) ?jobs ~seed () =
  let outcome = Campaign.run ~budget ?jobs ~seed Approach.Llm4fp in
  let cases = outcome.Campaign.cases in
  let full_rate = ref 0.0 in
  let rows =
    List.map
      (fun variant ->
        let stats = replay ?jobs variant cases in
        let rate = Difftest.Stats.inconsistency_rate stats in
        if variant.name = "full" then full_rate := rate;
        let delta =
          if variant.name = "full" then "-"
          else Printf.sprintf "%+.2f pts" (100.0 *. (rate -. !full_rate))
        in
        [ variant.name;
          Report.Table.pct rate;
          Report.Table.commas (Difftest.Stats.total_inconsistencies stats);
          delta;
          variant.description ])
      (variants ())
  in
  Report.Table.render
    ~title:
      (Printf.sprintf
         "Ablation (this reproduction): LLM4FP corpus of %d programs \
          replayed under modified compiler models"
         budget)
    ~header:[ "variant"; "rate"; "# incons."; "delta"; "mechanism removed" ]
    ~align:
      [ Report.Table.Left; Report.Table.Right; Report.Table.Right;
        Report.Table.Right; Report.Table.Left ]
    rows
