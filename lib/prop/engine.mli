(** Seeded, dependency-free property-based testing.

    A miniature QuickCheck built directly on {!Util.Rng} so that every
    property run is reproducible from a single 64-bit seed: the runner
    derives one case seed per iteration from a master generator, and a
    failing case prints that seed so the exact counterexample can be
    replayed with {!run_case} (or [llm4fp fuzz --replay]).

    Unlike qcheck, generation and shrinking are decoupled from any test
    framework: {!run} returns an {!outcome} and the caller decides how to
    report it (Alcotest check, CLI exit code, ...). *)

type 'a gen = Util.Rng.t -> 'a
(** A generator draws a value from a seeded stream. *)

type 'a shrink = 'a -> 'a Seq.t
(** A shrinker proposes strictly "smaller" candidates, most aggressive
    first. The sequence must be finite and must not contain the input
    itself. *)

type 'a arb = {
  gen : 'a gen;
  shrink : 'a shrink;
  print : 'a -> string;
}
(** A testable domain: how to generate, minimize, and display values. *)

val make : ?shrink:'a shrink -> ?print:('a -> string) -> 'a gen -> 'a arb
(** [make gen] with no shrinking and an opaque printer by default. *)

(** Generator combinators. *)
module Gen : sig
  val return : 'a -> 'a gen
  val map : ('a -> 'b) -> 'a gen -> 'b gen
  val map2 : ('a -> 'b -> 'c) -> 'a gen -> 'b gen -> 'c gen
  val bind : 'a gen -> ('a -> 'b gen) -> 'b gen
  val int_in : int -> int -> int gen
  val float_in : float -> float -> float gen
  val bool : bool gen

  val oneof : 'a gen list -> 'a gen
  (** Uniform choice. Raises [Invalid_argument] on the empty list. *)

  val frequency : (int * 'a gen) list -> 'a gen
  (** Weighted choice; weights are non-negative with a positive sum. *)

  val list : ?min:int -> ?max:int -> 'a gen -> 'a list gen
  (** Length uniform in [\[min, max\]] (default [\[0, 8\]]). *)

  val pair : 'a gen -> 'b gen -> ('a * 'b) gen
end

(** Shrinking combinators. *)
module Shrink : sig
  val nothing : 'a shrink

  val int : int shrink
  (** Toward 0 by sign-preserving halving. *)

  val float : float shrink
  (** Toward 0.0, then 1.0/-1.0, then truncation and halving; non-finite
      values shrink to simple finite ones. *)

  val list : ?elt:'a shrink -> 'a list shrink
  (** Chunk removal (ddmin-style halving granularity) first, then
      pointwise element shrinking with [elt]. *)

  val pair : 'a shrink -> 'b shrink -> ('a * 'b) shrink
end

(** Outcome of a property run. *)
type 'a failure = {
  case_seed : int64;  (** replays the original counterexample *)
  iteration : int;  (** 0-based index of the failing iteration *)
  shrink_steps : int;  (** successful shrink steps applied *)
  counterexample : 'a;  (** minimal failing value after shrinking *)
  error : string option;  (** exception message, or [None] for [false] *)
}

type 'a outcome = Pass of int | Fail of 'a failure

val default_count : unit -> int
(** Iterations per property: [LLM4FP_PROP_ITERS] when set to a positive
    integer, otherwise 60. The tier-1 gate keeps the default small; deep
    runs export a larger count. *)

val run :
  ?count:int ->
  ?max_shrinks:int ->
  seed:int64 ->
  'a arb ->
  ('a -> bool) ->
  'a outcome
(** [run ~seed arb prop] checks [prop] on [count] generated values. A
    property fails by returning [false] or raising. On failure the value
    is greedily shrunk (candidates that still fail are kept; at most
    [max_shrinks] successful steps, default 500) and the minimal
    counterexample is returned with the seed that replays it. *)

val run_case : seed:int64 -> 'a arb -> ('a -> bool) -> 'a outcome
(** [run_case ~seed arb prop] replays the single case generated from
    [seed] — the seed printed by a failing {!run} — without shrinking. *)

val pp_failure : ('a -> string) -> 'a failure -> string
(** Human-readable report: seed, iteration, shrink count, printed
    counterexample, and the replay hint. *)
