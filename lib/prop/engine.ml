type 'a gen = Util.Rng.t -> 'a
type 'a shrink = 'a -> 'a Seq.t

type 'a arb = {
  gen : 'a gen;
  shrink : 'a shrink;
  print : 'a -> string;
}

let make ?(shrink = fun _ -> Seq.empty) ?(print = fun _ -> "<opaque>") gen =
  { gen; shrink; print }

module Gen = struct
  let return x _ = x
  let map f g rng = f (g rng)
  let map2 f ga gb rng =
    let a = ga rng in
    let b = gb rng in
    f a b

  let bind g f rng = f (g rng) rng
  let int_in lo hi rng = Util.Rng.int_in rng lo hi
  let float_in lo hi rng = Util.Rng.float_in rng lo hi
  let bool rng = Util.Rng.bool rng

  let oneof gens rng =
    if gens = [] then invalid_arg "Prop.Gen.oneof: empty list";
    Util.Rng.choose_list rng gens rng

  let frequency weighted rng =
    let arr =
      Array.of_list
        (List.map (fun (w, g) -> (float_of_int w, g)) weighted)
    in
    Util.Rng.weighted rng arr rng

  let list ?(min = 0) ?(max = 8) g rng =
    let n = Util.Rng.int_in rng min max in
    List.init n (fun _ -> g rng)

  let pair ga gb rng =
    let a = ga rng in
    let b = gb rng in
    (a, b)
end

module Shrink = struct
  let nothing _ = Seq.empty

  let int n =
    if n = 0 then Seq.empty
    else
      (* 0 first, then sign-preserving halvings converging on n. *)
      let rec halves acc k =
        if k = 0 || k = n then acc else halves (k :: acc) (n - ((n - k) / 2))
      in
      List.to_seq (0 :: List.rev (halves [] (n / 2)))

  let float x =
    if x = 0.0 then Seq.empty
    else if Float.is_nan x then List.to_seq [ 0.0; 1.0 ]
    else if Float.is_integer x && Float.abs x <= 2.0 then
      List.to_seq (List.filter (fun c -> c <> x) [ 0.0 ])
    else
      let candidates =
        [ 0.0; Float.of_int (Float.to_int (Float.min 1e9 (Float.max (-1e9) x)));
          x /. 2.0 ]
      in
      let seen = Hashtbl.create 4 in
      List.to_seq
        (List.filter
           (fun c ->
             let keep =
               Float.is_finite c && c <> x && not (Hashtbl.mem seen c)
             in
             if keep then Hashtbl.add seen c ();
             keep)
           candidates)

  (* ddmin-style chunk removal: try dropping large chunks first, then
     smaller ones, then shrink elements pointwise. *)
  let list ?(elt = nothing) xs =
    let n = List.length xs in
    if n = 0 then Seq.empty
    else
      let arr = Array.of_list xs in
      let without lo len =
        Array.to_list
          (Array.of_seq
             (Seq.filter_map
                (fun i -> if i >= lo && i < lo + len then None else Some arr.(i))
                (Seq.init n Fun.id)))
      in
      let removals =
        let rec chunks acc size =
          if size = 0 then List.rev acc
          else
            let rec offsets acc lo =
              if lo >= n then acc else offsets ((lo, size) :: acc) (lo + size)
            in
            chunks (List.rev_append (List.rev (offsets [] 0)) acc) (size / 2)
        in
        chunks [] (Stdlib.max 1 (n / 2))
      in
      let removal_seq =
        Seq.map (fun (lo, len) -> without lo len) (List.to_seq removals)
      in
      let elementwise =
        Seq.concat
          (Seq.init n (fun i ->
               Seq.map
                 (fun e ->
                   Array.to_list (Array.mapi (fun j x -> if i = j then e else x) arr))
                 (elt arr.(i))))
      in
      Seq.append removal_seq elementwise

  let pair sa sb (a, b) =
    Seq.append
      (Seq.map (fun a' -> (a', b)) (sa a))
      (Seq.map (fun b' -> (a, b')) (sb b))
end

type 'a failure = {
  case_seed : int64;
  iteration : int;
  shrink_steps : int;
  counterexample : 'a;
  error : string option;
}

type 'a outcome = Pass of int | Fail of 'a failure

let default_count () =
  match Sys.getenv_opt "LLM4FP_PROP_ITERS" with
  | Some s -> ( match int_of_string_opt (String.trim s) with
    | Some n when n > 0 -> n
    | _ -> 60)
  | None -> 60

(* Run the property, mapping exceptions to failures with a message. *)
let attempt prop x =
  match prop x with
  | true -> Ok ()
  | false -> Error None
  | exception e -> Error (Some (Printexc.to_string e))

let shrink_loop ~max_shrinks arb prop x0 err0 =
  let x = ref x0 in
  let err = ref err0 in
  let steps = ref 0 in
  let progress = ref true in
  while !progress && !steps < max_shrinks do
    progress := false;
    let candidates = arb.shrink !x in
    let rec try_cands s =
      match s () with
      | Seq.Nil -> ()
      | Seq.Cons (c, rest) -> (
          match attempt prop c with
          | Ok () -> try_cands rest
          | Error e ->
              x := c;
              err := e;
              incr steps;
              progress := true)
    in
    try_cands candidates
  done;
  (!x, !err, !steps)

let run_one ~shrink ~max_shrinks ~case_seed ~iteration arb prop =
  let rng = Util.Rng.create case_seed in
  let x = arb.gen rng in
  match attempt prop x with
  | Ok () -> None
  | Error err ->
      let counterexample, error, shrink_steps =
        if shrink then shrink_loop ~max_shrinks arb prop x err
        else (x, err, 0)
      in
      Some { case_seed; iteration; shrink_steps; counterexample; error }

let run ?count ?(max_shrinks = 500) ~seed arb prop =
  let count = match count with Some c -> c | None -> default_count () in
  let master = Util.Rng.create seed in
  let rec go i =
    if i >= count then Pass count
    else
      let case_seed = Util.Rng.bits64 master in
      match run_one ~shrink:true ~max_shrinks ~case_seed ~iteration:i arb prop with
      | None -> go (i + 1)
      | Some f -> Fail f
  in
  go 0

let run_case ~seed arb prop =
  match
    run_one ~shrink:false ~max_shrinks:0 ~case_seed:seed ~iteration:0 arb prop
  with
  | None -> Pass 1
  | Some f -> Fail f

let pp_failure print f =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "property failed at iteration %d (after %d shrink steps)\n"
       f.iteration f.shrink_steps);
  Buffer.add_string b
    (Printf.sprintf "replay seed: %Ld  (fuzz --replay %Ld)\n" f.case_seed
       f.case_seed);
  (match f.error with
  | Some msg -> Buffer.add_string b (Printf.sprintf "raised: %s\n" msg)
  | None -> ());
  Buffer.add_string b "counterexample:\n";
  Buffer.add_string b (print f.counterexample);
  Buffer.contents b
