open Lang.Ast

(* ------------------------------------------------------------------ *)
(* Expression shrinking *)

let rec shrink_expr e : expr Seq.t =
  match e with
  | Lit x ->
      if x = 0.0 then Seq.empty
      else if x = 1.0 then Seq.return (Lit 0.0)
      else List.to_seq [ Lit 0.0; Lit 1.0 ]
  | Int_lit n -> Seq.map (fun n' -> Int_lit n') (Engine.Shrink.int n)
  | Var _ -> Seq.empty
  | Index (a, i) ->
      (* the subscript shrinks toward a[0]; the whole node cannot hoist
         to [Var a] (that would use the array as a scalar) *)
      let to_zero =
        if i = Int_lit 0 then Seq.empty else Seq.return (Index (a, Int_lit 0))
      in
      Seq.append to_zero (Seq.map (fun i' -> Index (a, i')) (shrink_expr i))
  | Neg inner ->
      Seq.cons inner (Seq.map (fun e' -> Neg e') (shrink_expr inner))
  | Bin (op, a, b) ->
      Seq.append
        (List.to_seq [ a; b ])
        (Seq.append
           (Seq.map (fun a' -> Bin (op, a', b)) (shrink_expr a))
           (Seq.map (fun b' -> Bin (op, a, b')) (shrink_expr b)))
  | Call (fn, args) ->
      let hoists = List.to_seq args in
      let pointwise =
        Seq.concat
          (List.to_seq
             (List.mapi
                (fun i arg ->
                  Seq.map
                    (fun arg' ->
                      Call (fn, List.mapi (fun j a -> if i = j then arg' else a) args))
                    (shrink_expr arg))
                args))
      in
      Seq.append hoists pointwise

(* ------------------------------------------------------------------ *)
(* Statement/body shrinking: one rewrite per candidate *)

let replace_nth xs i ys =
  List.concat (List.mapi (fun j x -> if j = i then ys else [ x ]) xs)

let rec shrink_stmt s : stmt Seq.t =
  match s with
  | Decl { name; init } ->
      Seq.map (fun init -> Decl { name; init }) (shrink_expr init)
  | Assign { lhs; op; rhs } ->
      let rhs_shrinks =
        Seq.map (fun rhs -> Assign { lhs; op; rhs }) (shrink_expr rhs)
      in
      let lhs_shrinks =
        match lhs with
        | Lv_var _ -> Seq.empty
        | Lv_index (a, i) ->
            Seq.map
              (fun i' -> Assign { lhs = Lv_index (a, i'); op; rhs })
              (shrink_expr i)
      in
      Seq.append rhs_shrinks lhs_shrinks
  | If { lhs; cmp; rhs; body } ->
      Seq.concat
        (List.to_seq
           [ Seq.map (fun body -> If { lhs; cmp; rhs; body }) (shrink_body body);
             Seq.map (fun lhs -> If { lhs; cmp; rhs; body }) (shrink_expr lhs);
             Seq.map (fun rhs -> If { lhs; cmp; rhs; body }) (shrink_expr rhs) ])
  | For { var; bound; body } ->
      let smaller_bounds =
        Seq.filter_map
          (fun b -> if b >= 1 && b < bound then Some (For { var; bound = b; body }) else None)
          (Engine.Shrink.int bound)
      in
      Seq.append smaller_bounds
        (Seq.map (fun body -> For { var; bound; body }) (shrink_body body))

and shrink_body body : stmt list Seq.t =
  let n = List.length body in
  if n = 0 then Seq.empty
  else
    (* drop one statement *)
    let drops = Seq.init n (fun i -> replace_nth body i []) in
    (* splice a compound statement's body into its place *)
    let splices =
      Seq.concat
        (Seq.init n (fun i ->
             match List.nth body i with
             | If { body = inner; _ } | For { body = inner; _ } ->
                 Seq.return (replace_nth body i inner)
             | Decl _ | Assign _ -> Seq.empty))
    in
    (* rewrite one statement in place *)
    let rewrites =
      Seq.concat
        (Seq.init n (fun i ->
             Seq.map
               (fun s' -> replace_nth body i [ s' ])
               (shrink_stmt (List.nth body i))))
    in
    Seq.append drops (Seq.append splices rewrites)

let shrink_program p =
  Seq.filter Analysis.Validate.is_valid
    (Seq.map (fun body -> { p with body }) (shrink_body p.body))

(* ------------------------------------------------------------------ *)
(* Input shrinking: arity and array lengths are fixed by the program *)

let shrink_value (v : Irsim.Inputs.value) : Irsim.Inputs.value Seq.t =
  match v with
  | Irsim.Inputs.Fp x ->
      Seq.map (fun x' -> Irsim.Inputs.Fp x') (Engine.Shrink.float x)
  | Irsim.Inputs.Int n ->
      Seq.map (fun n' -> Irsim.Inputs.Int n') (Engine.Shrink.int n)
  | Irsim.Inputs.Arr a ->
      let zeroed = Array.map (fun _ -> 0.0) a in
      let all_zero =
        if a = zeroed then Seq.empty else Seq.return (Irsim.Inputs.Arr zeroed)
      in
      let pointwise =
        Seq.concat
          (Seq.init (Array.length a) (fun i ->
               Seq.map
                 (fun x' ->
                   let a' = Array.copy a in
                   a'.(i) <- x';
                   Irsim.Inputs.Arr a')
                 (Engine.Shrink.float a.(i))))
      in
      Seq.append all_zero pointwise

let shrink_inputs (inputs : Irsim.Inputs.t) : Irsim.Inputs.t Seq.t =
  let n = List.length inputs in
  Seq.concat
    (Seq.init n (fun i ->
         Seq.map
           (fun v' -> List.mapi (fun j v -> if i = j then v' else v) inputs)
           (shrink_value (List.nth inputs i))))

(* ------------------------------------------------------------------ *)
(* Arbitraries *)

let print_inputs inputs = Format.asprintf "%a" Irsim.Inputs.pp inputs

let program =
  {
    Engine.gen = (fun rng -> Gen.Varity.generate rng);
    shrink = shrink_program;
    print = Lang.Pp.to_c;
  }

let case =
  {
    Engine.gen = (fun rng -> Gen.Varity.gen_case rng);
    shrink =
      (fun (p, inputs) ->
        Seq.append
          (Seq.map (fun p' -> (p', inputs)) (shrink_program p))
          (Seq.map (fun i' -> (p, i')) (shrink_inputs inputs)));
    print =
      (fun (p, inputs) ->
        Printf.sprintf "%s\ninputs: %s" (Lang.Pp.to_c p) (print_inputs inputs));
  }
