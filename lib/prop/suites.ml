type result = {
  suite : string;
  iterations : int;
  failure : string option;
  replay_seed : int64 option;
}

type suite = {
  name : string;
  doc : string;
  run : ?count:int -> seed:int64 -> unit -> result;
  replay : int64 -> result;
}

let passed r = r.failure = None

let to_result name print = function
  | Engine.Pass n ->
      { suite = name; iterations = n; failure = None; replay_seed = None }
  | Engine.Fail f ->
      {
        suite = name;
        iterations = f.Engine.iteration;
        failure = Some (Engine.pp_failure print f);
        replay_seed = Some f.Engine.case_seed;
      }

let make_suite name doc arb prop =
  {
    name;
    doc;
    run =
      (fun ?count ~seed () ->
        to_result name arb.Engine.print (Engine.run ?count ~seed arb prop));
    replay =
      (fun seed -> to_result name arb.Engine.print (Engine.run_case ~seed arb prop));
  }

(* ------------------------------------------------------------------ *)
(* Shared machinery *)

let strict_rt =
  { Irsim.Interp.libm = Mathlib.Libm.Glibc; ftz = false; nan_cmp_taken = false }

let strict_result p inputs =
  (Irsim.Interp.run strict_rt (Irsim.Lower.program p) inputs).Irsim.Interp.result

let same_bits a b =
  Int64.bits_of_float a = Int64.bits_of_float b
  || (Float.is_nan a && Float.is_nan b)

(* Floats spread over many binades: where EFT identities are exact and
   where rounding differences actually live. *)
let gen_eft_float rng =
  let m = Util.Rng.float_in rng (-1.0) 1.0 in
  let e = Util.Rng.int_in rng (-100) 100 in
  ldexp m e

let eft_pair =
  Engine.make
    ~shrink:(Engine.Shrink.pair Engine.Shrink.float Engine.Shrink.float)
    ~print:(fun (a, b) -> Printf.sprintf "a = %h, b = %h" a b)
    (Engine.Gen.pair gen_eft_float gen_eft_float)

(* ------------------------------------------------------------------ *)
(* Generator invariants *)

let gen_valid =
  make_suite "gen-valid"
    "Varity-generated programs pass the static validator" Arb.program
    Analysis.Validate.is_valid

let gen_inputs_match =
  make_suite "gen-inputs-match"
    "generated input vectors match the program's parameters" Arb.case
    (fun (p, inputs) -> Irsim.Inputs.matches p inputs)

(* ------------------------------------------------------------------ *)
(* Interpreter / pass invariants (strict mode) *)

let interp_total =
  make_suite "interp-total"
    "the interpreter never raises on validated generated programs" Arb.case
    (fun (p, inputs) ->
      ignore (strict_result p inputs);
      true)

let fold_preserves =
  make_suite "fold-preserves"
    "arithmetic constant folding preserves strict-mode bits" Arb.case
    (fun (p, inputs) ->
      let ir = Irsim.Lower.program p in
      let folded =
        Irsim.Fold.run { Irsim.Fold.fold_arith = true; fold_calls = None } ir
      in
      let a = (Irsim.Interp.run strict_rt ir inputs).Irsim.Interp.result in
      let b = (Irsim.Interp.run strict_rt folded inputs).Irsim.Interp.result in
      same_bits a b)

let dce_preserves =
  make_suite "dce-preserves"
    "dead-code elimination preserves strict-mode bits" Arb.case
    (fun (p, inputs) ->
      let ir = Irsim.Lower.program p in
      let swept = Irsim.Dce.run ir in
      let a = (Irsim.Interp.run strict_rt ir inputs).Irsim.Interp.result in
      let b = (Irsim.Interp.run strict_rt swept inputs).Irsim.Interp.result in
      same_bits a b)

let forward_preserves =
  make_suite "forward-preserves"
    "expression forwarding preserves strict-mode bits" Arb.case
    (fun (p, inputs) ->
      let ir = Irsim.Lower.program p in
      let fwd = Irsim.Forward.run ir in
      let a = (Irsim.Interp.run strict_rt ir inputs).Irsim.Interp.result in
      let b = (Irsim.Interp.run strict_rt fwd inputs).Irsim.Interp.result in
      same_bits a b)

let contract_idempotent =
  make_suite "contract-idempotent"
    "FMA contraction applied twice equals applied once" Arb.case
    (fun (p, inputs) ->
      let ir = Irsim.Lower.program p in
      let once = Irsim.Contract.run Irsim.Contract.Syntactic ir in
      let twice = Irsim.Contract.run Irsim.Contract.Syntactic once in
      let a = (Irsim.Interp.run strict_rt once inputs).Irsim.Interp.result in
      let b = (Irsim.Interp.run strict_rt twice inputs).Irsim.Interp.result in
      same_bits a b)

(* ------------------------------------------------------------------ *)
(* Codec fixpoints *)

let pp_parse_fixpoint =
  make_suite "pp-parse-fixpoint"
    "print -> parse -> print is a fixpoint on the C rendering" Arb.program
    (fun p ->
      let printed = Lang.Pp.to_c p in
      match Cparse.Parse.program printed with
      | Error _ -> false
      | Ok p' -> Lang.Pp.to_c p' = printed)

let gen_archive_case rng =
  let p, inputs = Gen.Varity.gen_case rng in
  let r = strict_result p inputs in
  (* a second side with deliberately different bits: the codec does not
     care whether the divergence is physical *)
  let r' = if Float.is_nan r then 0.0 else Float.succ r in
  let side config v =
    {
      Difftest.Case.config;
      hex = Fp.Bits.hex_of_double v;
      class_ = Fp.Bits.classify v;
    }
  in
  let level = Util.Rng.choose rng Compiler.Optlevel.all in
  {
    Difftest.Case.kind =
      (if Util.Rng.bool rng then Difftest.Case.Cross else Difftest.Case.Within);
    left = side (Compiler.Config.make Compiler.Personality.Gcc level) r;
    right = side (Compiler.Config.make Compiler.Personality.Clang level) r';
    level;
    digits = Fp.Digits.diff_count r r';
    source = Lang.Pp.to_c p;
    inputs;
    seed = Util.Rng.int_in rng 0 1_000_000;
    slot = Util.Rng.int_in rng 0 10_000;
  }

let case_codec_roundtrip =
  make_suite "case-codec-roundtrip"
    "Case JSON encode/decode is the identity (bit-exact inputs)"
    (Engine.make
       ~print:(fun c -> Obs.Json.to_string (Difftest.Case.to_json c))
       gen_archive_case)
    (fun c ->
      match Difftest.Case.of_json (Difftest.Case.to_json c) with
      | Error _ -> false
      | Ok c' ->
          Difftest.Case.fingerprint c = Difftest.Case.fingerprint c'
          && Obs.Json.to_string (Difftest.Case.to_json c')
             = Obs.Json.to_string (Difftest.Case.to_json c))

(* ------------------------------------------------------------------ *)
(* Digit metric *)

(* Finite floats across the full double range plus the awkward corners
   (zeros, subnormals, extremes), and the occasional non-finite value:
   [decompose_result] must be total on all of them. *)
let gen_digit_float rng =
  match Util.Rng.int_in rng 0 9 with
  | 0 -> 0.0
  | 1 -> -0.0
  | 2 -> Float.min_float /. 4.0 (* subnormal *)
  | 3 -> Float.max_float
  | 4 -> infinity
  | 5 -> nan
  | _ -> ldexp (Util.Rng.float_in rng (-1.0) 1.0) (Util.Rng.int_in rng (-300) 300)

let digit_float =
  Engine.make ~print:(fun x -> Printf.sprintf "%h" x) gen_digit_float

let digits_total =
  make_suite "digits-total"
    "decompose_result is total: 16 digits on finite, typed error otherwise"
    digit_float
    (fun x ->
      match Fp.Digits.decompose_result x with
      | Ok (_, digits, _) ->
          Float.is_finite x
          && String.length digits = 16
          && String.for_all (fun c -> c >= '0' && c <= '9') digits
      | Error (Fp.Digits.Non_finite y) ->
          (not (Float.is_finite x)) && same_bits x y
      | Error (Fp.Digits.Malformed _) -> false)

(* ------------------------------------------------------------------ *)
(* Error-free transformations *)

let eft_two_sum =
  make_suite "eft-two-sum"
    "two_sum matches magnitude-ordered fast_two_sum exactly" eft_pair
    (fun (a, b) ->
      let s, e = Fp.Eft.two_sum a b in
      let s2, e2 =
        if Float.abs a >= Float.abs b then Fp.Eft.fast_two_sum a b
        else Fp.Eft.fast_two_sum b a
      in
      s = a +. b && same_bits s s2 && same_bits e e2)

let eft_two_prod =
  make_suite "eft-two-prod"
    "two_prod error equals fma(a, b, -p) exactly" eft_pair
    (fun (a, b) ->
      let p, e = Fp.Eft.two_prod a b in
      p = a *. b && same_bits e (Float.fma a b (-.p)))

(* ------------------------------------------------------------------ *)
(* Diversity metrics *)

let tokens p =
  Cparse.Lex.tokens (Lang.Pp.compute_to_string p)
  |> List.map Cparse.Lex.to_string

let program_pair =
  Engine.make
    ~print:(fun (a, b) ->
      Printf.sprintf "%s\n--- vs ---\n%s" (Lang.Pp.to_c a) (Lang.Pp.to_c b))
    (fun rng ->
      let a = Gen.Varity.generate rng in
      let b = Gen.Varity.generate rng in
      (a, b))

let bleu_range =
  make_suite "bleu-range" "BLEU score of any program pair lies in [0, 1]"
    program_pair
    (fun (a, b) ->
      let s =
        Diversity.Bleu.score
          ~candidate:(Diversity.Bleu.table (tokens a))
          ~reference:(Diversity.Bleu.table (tokens b))
      in
      s >= 0.0 && s <= 1.0)

let bleu_self =
  make_suite "bleu-self" "BLEU self-score of any program is 1" Arb.program
    (fun p ->
      let t = Diversity.Bleu.table (tokens p) in
      Float.abs (Diversity.Bleu.score ~candidate:t ~reference:t -. 1.0) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Execution-engine equivalence *)

(* A generated case plus a uniformly drawn configuration index: the VM
   must agree with the tree interpreter under every runtime the matrix
   can produce (libm flavor, FTZ, NaN-branch polarity, precision), not
   just strict mode. Shrinking minimizes the program/inputs and keeps
   the configuration fixed. *)
let vm_configs = Compiler.Config.all ()

let vm_case =
  {
    Engine.gen =
      (fun rng ->
        let case = Arb.case.Engine.gen rng in
        let k = Util.Rng.int_in rng 0 (List.length vm_configs - 1) in
        (case, k));
    shrink =
      (fun (case, k) ->
        Seq.map (fun c -> (c, k)) (Arb.case.Engine.shrink case));
    print =
      (fun (case, k) ->
        Printf.sprintf "config = %s\n%s"
          (Compiler.Config.name (List.nth vm_configs k))
          (Arb.case.Engine.print case));
  }

let vm_equiv =
  make_suite "vm-equiv"
    "the flattened VM is bit-identical to the tree interpreter under \
     every configuration"
    vm_case
    (fun ((p, inputs), k) ->
      let config = List.nth vm_configs k in
      match Compiler.Driver.compile config p with
      | Error _ -> true (* nothing to execute *)
      | Ok binary -> begin
        let rt = Compiler.Config.runtime binary.Compiler.Driver.config in
        let tree = Irsim.Interp.run rt binary.Compiler.Driver.ir inputs in
        (* a batch of two through one reused state also proves the
           state reset between vectors *)
        match
          Irsim.Vm.run_batch binary.Compiler.Driver.vm [ inputs; inputs ]
        with
        | [ first; second ] ->
          same_bits tree.Irsim.Interp.result first.Irsim.Interp.result
          && tree.Irsim.Interp.fp_ops = first.Irsim.Interp.fp_ops
          && same_bits first.Irsim.Interp.result second.Irsim.Interp.result
          && first.Irsim.Interp.fp_ops = second.Irsim.Interp.fp_ops
        | _ -> false
      end)

let all =
  [
    gen_valid;
    gen_inputs_match;
    interp_total;
    fold_preserves;
    dce_preserves;
    forward_preserves;
    contract_idempotent;
    pp_parse_fixpoint;
    case_codec_roundtrip;
    digits_total;
    eft_two_sum;
    eft_two_prod;
    bleu_range;
    bleu_self;
    vm_equiv;
  ]

let find name = List.find_opt (fun s -> s.name = name) all
