type result = {
  suite : string;
  iterations : int;
  failure : string option;
  replay_seed : int64 option;
}

type suite = {
  name : string;
  doc : string;
  run : ?count:int -> seed:int64 -> unit -> result;
  replay : int64 -> result;
}

let passed r = r.failure = None

let to_result name print = function
  | Engine.Pass n ->
      { suite = name; iterations = n; failure = None; replay_seed = None }
  | Engine.Fail f ->
      {
        suite = name;
        iterations = f.Engine.iteration;
        failure = Some (Engine.pp_failure print f);
        replay_seed = Some f.Engine.case_seed;
      }

let make_suite name doc arb prop =
  {
    name;
    doc;
    run =
      (fun ?count ~seed () ->
        to_result name arb.Engine.print (Engine.run ?count ~seed arb prop));
    replay =
      (fun seed -> to_result name arb.Engine.print (Engine.run_case ~seed arb prop));
  }

(* ------------------------------------------------------------------ *)
(* Shared machinery *)

let strict_rt =
  { Irsim.Interp.libm = Mathlib.Libm.Glibc; ftz = false; nan_cmp_taken = false }

let strict_result p inputs =
  (Irsim.Interp.run strict_rt (Irsim.Lower.program p) inputs).Irsim.Interp.result

let same_bits a b =
  Int64.bits_of_float a = Int64.bits_of_float b
  || (Float.is_nan a && Float.is_nan b)

(* Floats spread over many binades: where EFT identities are exact and
   where rounding differences actually live. *)
let gen_eft_float rng =
  let m = Util.Rng.float_in rng (-1.0) 1.0 in
  let e = Util.Rng.int_in rng (-100) 100 in
  ldexp m e

let eft_pair =
  Engine.make
    ~shrink:(Engine.Shrink.pair Engine.Shrink.float Engine.Shrink.float)
    ~print:(fun (a, b) -> Printf.sprintf "a = %h, b = %h" a b)
    (Engine.Gen.pair gen_eft_float gen_eft_float)

(* ------------------------------------------------------------------ *)
(* Generator invariants *)

let gen_valid =
  make_suite "gen-valid"
    "Varity-generated programs pass the static validator" Arb.program
    Analysis.Validate.is_valid

let gen_inputs_match =
  make_suite "gen-inputs-match"
    "generated input vectors match the program's parameters" Arb.case
    (fun (p, inputs) -> Irsim.Inputs.matches p inputs)

(* ------------------------------------------------------------------ *)
(* Interpreter / pass invariants (strict mode) *)

let interp_total =
  make_suite "interp-total"
    "the interpreter never raises on validated generated programs" Arb.case
    (fun (p, inputs) ->
      ignore (strict_result p inputs);
      true)

let fold_preserves =
  make_suite "fold-preserves"
    "arithmetic constant folding preserves strict-mode bits" Arb.case
    (fun (p, inputs) ->
      let ir = Irsim.Lower.program p in
      let folded =
        Irsim.Fold.run { Irsim.Fold.fold_arith = true; fold_calls = None } ir
      in
      let a = (Irsim.Interp.run strict_rt ir inputs).Irsim.Interp.result in
      let b = (Irsim.Interp.run strict_rt folded inputs).Irsim.Interp.result in
      same_bits a b)

let dce_preserves =
  make_suite "dce-preserves"
    "dead-code elimination preserves strict-mode bits" Arb.case
    (fun (p, inputs) ->
      let ir = Irsim.Lower.program p in
      let swept = Irsim.Dce.run ir in
      let a = (Irsim.Interp.run strict_rt ir inputs).Irsim.Interp.result in
      let b = (Irsim.Interp.run strict_rt swept inputs).Irsim.Interp.result in
      same_bits a b)

let forward_preserves =
  make_suite "forward-preserves"
    "expression forwarding preserves strict-mode bits" Arb.case
    (fun (p, inputs) ->
      let ir = Irsim.Lower.program p in
      let fwd = Irsim.Forward.run ir in
      let a = (Irsim.Interp.run strict_rt ir inputs).Irsim.Interp.result in
      let b = (Irsim.Interp.run strict_rt fwd inputs).Irsim.Interp.result in
      same_bits a b)

let contract_idempotent =
  make_suite "contract-idempotent"
    "FMA contraction applied twice equals applied once" Arb.case
    (fun (p, inputs) ->
      let ir = Irsim.Lower.program p in
      let once = Irsim.Contract.run Irsim.Contract.Syntactic ir in
      let twice = Irsim.Contract.run Irsim.Contract.Syntactic once in
      let a = (Irsim.Interp.run strict_rt once inputs).Irsim.Interp.result in
      let b = (Irsim.Interp.run strict_rt twice inputs).Irsim.Interp.result in
      same_bits a b)

(* ------------------------------------------------------------------ *)
(* Codec fixpoints *)

let pp_parse_fixpoint =
  make_suite "pp-parse-fixpoint"
    "print -> parse -> print is a fixpoint on the C rendering" Arb.program
    (fun p ->
      let printed = Lang.Pp.to_c p in
      match Cparse.Parse.program printed with
      | Error _ -> false
      | Ok p' -> Lang.Pp.to_c p' = printed)

let gen_archive_case rng =
  let p, inputs = Gen.Varity.gen_case rng in
  let r = strict_result p inputs in
  (* a second side with deliberately different bits: the codec does not
     care whether the divergence is physical *)
  let r' = if Float.is_nan r then 0.0 else Float.succ r in
  let side config v =
    {
      Difftest.Case.config;
      hex = Fp.Bits.hex_of_double v;
      class_ = Fp.Bits.classify v;
    }
  in
  let level = Util.Rng.choose rng Compiler.Optlevel.all in
  {
    Difftest.Case.kind =
      (if Util.Rng.bool rng then Difftest.Case.Cross else Difftest.Case.Within);
    left = side (Compiler.Config.make Compiler.Personality.Gcc level) r;
    right = side (Compiler.Config.make Compiler.Personality.Clang level) r';
    level;
    digits = Fp.Digits.diff_count r r';
    source = Lang.Pp.to_c p;
    inputs;
    seed = Util.Rng.int_in rng 0 1_000_000;
    slot = Util.Rng.int_in rng 0 10_000;
  }

let case_codec_roundtrip =
  make_suite "case-codec-roundtrip"
    "Case JSON encode/decode is the identity (bit-exact inputs)"
    (Engine.make
       ~print:(fun c -> Obs.Json.to_string (Difftest.Case.to_json c))
       gen_archive_case)
    (fun c ->
      match Difftest.Case.of_json (Difftest.Case.to_json c) with
      | Error _ -> false
      | Ok c' ->
          Difftest.Case.fingerprint c = Difftest.Case.fingerprint c'
          && Obs.Json.to_string (Difftest.Case.to_json c')
             = Obs.Json.to_string (Difftest.Case.to_json c))

(* ------------------------------------------------------------------ *)
(* Digit metric *)

(* Finite floats across the full double range plus the awkward corners
   (zeros, subnormals, extremes), and the occasional non-finite value:
   [decompose_result] must be total on all of them. *)
let gen_digit_float rng =
  match Util.Rng.int_in rng 0 9 with
  | 0 -> 0.0
  | 1 -> -0.0
  | 2 -> Float.min_float /. 4.0 (* subnormal *)
  | 3 -> Float.max_float
  | 4 -> infinity
  | 5 -> nan
  | _ -> ldexp (Util.Rng.float_in rng (-1.0) 1.0) (Util.Rng.int_in rng (-300) 300)

let digit_float =
  Engine.make ~print:(fun x -> Printf.sprintf "%h" x) gen_digit_float

let digits_total =
  make_suite "digits-total"
    "decompose_result is total: 16 digits on finite, typed error otherwise"
    digit_float
    (fun x ->
      match Fp.Digits.decompose_result x with
      | Ok (_, digits, _) ->
          Float.is_finite x
          && String.length digits = 16
          && String.for_all (fun c -> c >= '0' && c <= '9') digits
      | Error (Fp.Digits.Non_finite y) ->
          (not (Float.is_finite x)) && same_bits x y
      | Error (Fp.Digits.Malformed _) -> false)

(* ------------------------------------------------------------------ *)
(* RNG draw discipline *)

(* Probabilities including the boundaries and out-of-range values: the
   schedule endpoints are exactly where a shortcut would skip the draw
   and desync every replayed stream behind it. *)
let chance_case =
  Engine.make
    ~print:(fun (seed, p) -> Printf.sprintf "seed = %d, p = %.6f" seed p)
    (fun rng ->
      let seed = Util.Rng.int_in rng 0 1_000_000 in
      let p =
        match Util.Rng.int_in rng 0 5 with
        | 0 -> 0.0
        | 1 -> 1.0
        | 2 -> -0.25
        | 3 -> 1.25
        | _ -> Util.Rng.float rng 1.0
      in
      (seed, p))

let chance_one_draw =
  make_suite "chance-one-draw"
    "Rng.chance burns exactly one uniform draw at every p, boundaries \
     included, and decides by comparing that draw"
    chance_case
    (fun (seed, p) ->
      let a = Util.Rng.of_int seed in
      let b = Util.Rng.of_int seed in
      let c = Util.Rng.chance a p in
      let u = Util.Rng.float b 1.0 in
      c = (u < p) && Util.Rng.state a = Util.Rng.state b)

(* ------------------------------------------------------------------ *)
(* Error-free transformations *)

let eft_two_sum =
  make_suite "eft-two-sum"
    "two_sum matches magnitude-ordered fast_two_sum exactly" eft_pair
    (fun (a, b) ->
      let s, e = Fp.Eft.two_sum a b in
      let s2, e2 =
        if Float.abs a >= Float.abs b then Fp.Eft.fast_two_sum a b
        else Fp.Eft.fast_two_sum b a
      in
      s = a +. b && same_bits s s2 && same_bits e e2)

let eft_two_prod =
  make_suite "eft-two-prod"
    "two_prod error equals fma(a, b, -p) exactly" eft_pair
    (fun (a, b) ->
      let p, e = Fp.Eft.two_prod a b in
      p = a *. b && same_bits e (Float.fma a b (-.p)))

(* ------------------------------------------------------------------ *)
(* Diversity metrics *)

let tokens p =
  Cparse.Lex.tokens (Lang.Pp.compute_to_string p)
  |> List.map Cparse.Lex.to_string

let program_pair =
  Engine.make
    ~print:(fun (a, b) ->
      Printf.sprintf "%s\n--- vs ---\n%s" (Lang.Pp.to_c a) (Lang.Pp.to_c b))
    (fun rng ->
      let a = Gen.Varity.generate rng in
      let b = Gen.Varity.generate rng in
      (a, b))

let bleu_range =
  make_suite "bleu-range" "BLEU score of any program pair lies in [0, 1]"
    program_pair
    (fun (a, b) ->
      let s =
        Diversity.Bleu.score
          ~candidate:(Diversity.Bleu.table (tokens a))
          ~reference:(Diversity.Bleu.table (tokens b))
      in
      s >= 0.0 && s <= 1.0)

let bleu_self =
  make_suite "bleu-self" "BLEU self-score of any program is 1" Arb.program
    (fun p ->
      let t = Diversity.Bleu.table (tokens p) in
      Float.abs (Diversity.Bleu.score ~candidate:t ~reference:t -. 1.0) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Execution-engine equivalence *)

(* A generated case plus a uniformly drawn configuration index: the VM
   must agree with the tree interpreter under every runtime the matrix
   can produce (libm flavor, FTZ, NaN-branch polarity, precision), not
   just strict mode. Shrinking minimizes the program/inputs and keeps
   the configuration fixed. *)
let vm_configs = Compiler.Config.all ()

let vm_case =
  {
    Engine.gen =
      (fun rng ->
        let case = Arb.case.Engine.gen rng in
        let k = Util.Rng.int_in rng 0 (List.length vm_configs - 1) in
        (case, k));
    shrink =
      (fun (case, k) ->
        Seq.map (fun c -> (c, k)) (Arb.case.Engine.shrink case));
    print =
      (fun (case, k) ->
        Printf.sprintf "config = %s\n%s"
          (Compiler.Config.name (List.nth vm_configs k))
          (Arb.case.Engine.print case));
  }

let vm_equiv =
  make_suite "vm-equiv"
    "the flattened VM is bit-identical to the tree interpreter under \
     every configuration"
    vm_case
    (fun ((p, inputs), k) ->
      let config = List.nth vm_configs k in
      match Compiler.Driver.compile config p with
      | Error _ -> true (* nothing to execute *)
      | Ok binary -> begin
        let rt = Compiler.Config.runtime binary.Compiler.Driver.config in
        let tree = Irsim.Interp.run rt binary.Compiler.Driver.ir inputs in
        (* a batch of two through one reused state also proves the
           state reset between vectors *)
        match
          Irsim.Vm.run_batch binary.Compiler.Driver.vm [ inputs; inputs ]
        with
        | [ first; second ] ->
          same_bits tree.Irsim.Interp.result first.Irsim.Interp.result
          && tree.Irsim.Interp.fp_ops = first.Irsim.Interp.fp_ops
          && same_bits first.Irsim.Interp.result second.Irsim.Interp.result
          && first.Irsim.Interp.fp_ops = second.Irsim.Interp.fp_ops
        | _ -> false
      end)

(* ------------------------------------------------------------------ *)
(* Fleet merge laws *)

(* A fixed pool of completed chunk outcomes, built once per process:
   real mini-campaigns supply stats and coverage ledgers with populated
   cross/within matrices, and per-chunk archive cases come from the
   same generator the codec suite uses. Random subsets of one pool can
   never conflict (equal chunk ids carry equal bytes), which is exactly
   the regime Harness.Fleet.merge_outcomes promises its laws under. *)
let fleet_pool =
  lazy
    (List.init 6 (fun k ->
         let approach = Harness.Approach.all.(k mod Array.length Harness.Approach.all) in
         let seed = Harness.Shard.chunk_seed ~seed:20250704 k in
         let o = Harness.Campaign.run ~budget:4 ~seed approach in
         let rng = Util.Rng.of_int (1000 + k) in
         let cases = List.init ((k mod 3) + 1) (fun _ -> gen_archive_case rng) in
         let cases =
           (* fingerprint-keyed first-wins, sorted: the invariant chunk
              archives hold on disk *)
           List.sort_uniq
             (fun a b ->
               compare (Difftest.Case.fingerprint a) (Difftest.Case.fingerprint b))
             cases
         in
         let outcome =
           {
             Harness.Fleet.chunk = k;
             seed;
             first_slot = (k * 4) + 1;
             budget = 4;
             approach = Harness.Approach.name approach;
             precision = "fp64";
             successful = o.Harness.Campaign.successful;
             generation_failures = o.Harness.Campaign.generation_failures;
             sim_seconds = o.Harness.Campaign.sim_seconds;
             llm_seconds = o.Harness.Campaign.llm_seconds;
             stats = o.Harness.Campaign.stats;
             coverage = o.Harness.Campaign.coverage;
             fingerprints = List.map Difftest.Case.fingerprint cases;
           }
         in
         (outcome, cases)))

(* Three independent subsets of the pool, as sorted index lists. *)
let gen_fleet_subsets rng =
  let subset () =
    List.filter (fun _ -> Util.Rng.bool rng) [ 0; 1; 2; 3; 4; 5 ]
  in
  (subset (), subset (), subset ())

let fleet_subsets =
  Engine.make
    ~print:(fun (a, b, c) ->
      let show ids = "{" ^ String.concat "," (List.map string_of_int ids) ^ "}" in
      Printf.sprintf "a=%s b=%s c=%s" (show a) (show b) (show c))
    gen_fleet_subsets

let fleet_merge =
  make_suite "fleet-merge"
    "fleet archive/stats/coverage merge is commutative, associative, idempotent"
    fleet_subsets
    (fun (ia, ib, ic) ->
      let pool = Lazy.force fleet_pool in
      let outcomes ids = List.map (fun i -> fst (List.nth pool i)) ids in
      let cases ids = List.concat_map (fun i -> snd (List.nth pool i)) ids in
      let oa, ob, oc = (outcomes ia, outcomes ib, outcomes ic) in
      let outcome_bytes os =
        String.concat ";"
          (List.map
             (fun o -> Obs.Json.to_string (Harness.Fleet.outcome_to_json o))
             os)
      in
      let merge2 x y =
        match Harness.Fleet.merge_outcomes x y with
        | Ok m -> m
        | Error msg -> failwith msg
      in
      let case_bytes cs =
        String.concat ";"
          (List.map (fun c -> Obs.Json.to_string (Difftest.Case.to_json c)) cs)
      in
      let mc = Harness.Fleet.merge_cases in
      let ca, cb, cc = (cases ia, cases ib, cases ic) in
      let stats_of os =
        List.fold_left
          (fun acc o -> Difftest.Stats.merge acc o.Harness.Fleet.stats)
          (Difftest.Stats.create ()) os
      in
      let stats_bytes s = Obs.Json.to_string (Difftest.Stats.to_json s) in
      let sa, sb, sc = (stats_of oa, stats_of ob, stats_of oc) in
      let cov_of os =
        List.fold_left
          (fun acc o -> Obs.Coverage.merge acc o.Harness.Fleet.coverage)
          (Obs.Coverage.create ()) os
      in
      let cov_bytes v = Obs.Json.to_string (Obs.Coverage.to_json v) in
      let va, vb, vc = (cov_of oa, cov_of ob, cov_of oc) in
      (* chunk-keyed outcome union: commutative, associative AND
         idempotent (the keyed-union layer supplies idempotence the raw
         ledger sums cannot) *)
      outcome_bytes (merge2 oa ob) = outcome_bytes (merge2 ob oa)
      && outcome_bytes (merge2 (merge2 oa ob) oc)
         = outcome_bytes (merge2 oa (merge2 ob oc))
      && outcome_bytes (merge2 oa oa) = outcome_bytes oa
      (* fingerprint-keyed archive union: same three laws *)
      && case_bytes (mc [ ca; cb ]) = case_bytes (mc [ cb; ca ])
      && case_bytes (mc [ mc [ ca; cb ]; cc ]) = case_bytes (mc [ ca; mc [ cb; cc ] ])
      && case_bytes (mc [ ca; ca ]) = case_bytes (mc [ ca ])
      (* raw ledger folds: commutative and associative sums (dedup is
         the keyed layer's job, so no idempotence here) *)
      && stats_bytes (Difftest.Stats.merge sa sb)
         = stats_bytes (Difftest.Stats.merge sb sa)
      && stats_bytes (Difftest.Stats.merge (Difftest.Stats.merge sa sb) sc)
         = stats_bytes (Difftest.Stats.merge sa (Difftest.Stats.merge sb sc))
      && cov_bytes (Obs.Coverage.merge va vb) = cov_bytes (Obs.Coverage.merge vb va)
      && cov_bytes (Obs.Coverage.merge (Obs.Coverage.merge va vb) vc)
         = cov_bytes (Obs.Coverage.merge va (Obs.Coverage.merge vb vc)))

let all =
  [
    gen_valid;
    gen_inputs_match;
    interp_total;
    fold_preserves;
    dce_preserves;
    forward_preserves;
    contract_idempotent;
    pp_parse_fixpoint;
    case_codec_roundtrip;
    digits_total;
    chance_one_draw;
    eft_two_sum;
    eft_two_prod;
    bleu_range;
    bleu_self;
    vm_equiv;
    fleet_merge;
  ]

let find name = List.find_opt (fun s -> s.name = name) all
