(** The framework's property suites: the invariants the differential
    oracle itself rests on, packaged as named, seeded, replayable checks.

    Each suite pairs an arbitrary with a predicate and is run either from
    [llm4fp fuzz] (all suites, or one by name, or a single-case replay
    from a printed seed) or from the Alcotest harness (fixed seed, small
    count) so the tier-1 gate exercises the same properties. *)

type result = {
  suite : string;
  iterations : int;  (** cases passed (the full count on success) *)
  failure : string option;  (** {!Engine.pp_failure} report when failed *)
  replay_seed : int64 option;  (** seed replaying the counterexample *)
}

type suite = {
  name : string;
  doc : string;
  run : ?count:int -> seed:int64 -> unit -> result;
  replay : int64 -> result;  (** re-check the single case from a seed *)
}

val all : suite list
(** Every suite, in display order. Names:
    [gen-valid], [gen-inputs-match], [interp-total], [fold-preserves],
    [dce-preserves], [forward-preserves], [contract-idempotent],
    [pp-parse-fixpoint], [case-codec-roundtrip], [digits-total],
    [chance-one-draw], [eft-two-sum], [eft-two-prod], [bleu-range],
    [bleu-self], [vm-equiv], [fleet-merge]. *)

val find : string -> suite option

val passed : result -> bool
