(** Arbitraries over the framework's own domain: generated programs and
    their input vectors.

    Generation delegates to the Varity grammar generator (always valid by
    construction); shrinking proposes structurally smaller programs —
    statement removal at any depth, loop/branch body splicing, expression
    hoisting and literal simplification — and filters every candidate
    through {!Analysis.Validate.check} so shrunk programs stay well-typed
    and in-bounds. The same shrinkers back the {!Reduce} delta-debugging
    loop over archived cases. *)

val shrink_expr : Lang.Ast.expr -> Lang.Ast.expr Seq.t
(** Hoist an operand/argument over its parent node, simplify literals
    toward 0/1, and recurse. Candidates are not validity-filtered. *)

val shrink_body : Lang.Ast.stmt list -> Lang.Ast.stmt list Seq.t
(** Statement removal (any depth), [If]/[For] body splicing, and
    in-place expression shrinking, one rewrite per candidate. *)

val shrink_program : Lang.Ast.program -> Lang.Ast.program Seq.t
(** {!shrink_body} on the body, keeping only candidates that pass
    {!Analysis.Validate.check}. Parameters are never touched, so any
    input vector that matched the original still matches. *)

val shrink_inputs : Irsim.Inputs.t -> Irsim.Inputs.t Seq.t
(** Pointwise value shrinking toward 0 (scalars) and zeroed/simplified
    elements (arrays). Arity and array lengths are preserved. *)

val program : Lang.Ast.program Engine.arb
(** Varity-generated programs, printed as C. *)

val case : (Lang.Ast.program * Irsim.Inputs.t) Engine.arb
(** Program/input pairs as produced by [Gen.Varity.gen_case]: the
    program shrinks first, then the inputs. *)
