type outcome = {
  original : Difftest.Case.t;
  reduced : Difftest.Case.t;
  original_size : int;
  reduced_size : int;
  shrink_steps : int;
  oracle_calls : int;
}

let shrink_ratio o = float_of_int o.reduced_size /. float_of_int o.original_size

let m_cases = Obs.Metrics.counter "reduce.cases"
let m_oracle = Obs.Metrics.counter "reduce.oracle_calls"
let m_accepted = Obs.Metrics.counter "reduce.accepted_shrinks"

let m_ratio =
  Obs.Metrics.histogram
    ~buckets:[| 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 |]
    "reduce.shrink_ratio"

(* The grow arm's seed loader: an archive directory back into programs.
   [load_dir] returns cases in fingerprint order, so the pool — and
   therefore every bandit grow draw — is deterministic in the archive
   contents alone. Distinct cases frequently share one program (same
   slot, different pair or level): dedup on the normalized rendering
   keeps one seed each, first occurrence wins. *)
let grow_pool ~dir =
  match Difftest.Recorder.load_dir dir with
  | Error msg -> Error msg
  | Ok cases ->
    let rec go seen acc = function
      | [] -> Ok (List.rev acc)
      | (case : Difftest.Case.t) :: rest -> (
        match Cparse.Parse.program case.Difftest.Case.source with
        | Error msg ->
          Error
            (Printf.sprintf "%s: archived source does not parse: %s"
               (Difftest.Case.fingerprint case) msg)
        | Ok program ->
          let key = Lang.Pp.to_c program in
          if List.mem key seen then go seen acc rest
          else go (key :: seen) (program :: acc) rest)
    in
    go [] [] cases

(* Compile a candidate under both sides of the case's configuration pair,
   sharing the front end when both are host configurations. *)
let compile_pair left_cfg right_cfg program =
  let fronts = Compiler.Driver.fronts program in
  match
    ( Compiler.Driver.compile_with fronts left_cfg,
      Compiler.Driver.compile_with fronts right_cfg )
  with
  | Ok l, Ok r -> Some (l, r)
  | Error _, _ | _, Error _ -> None

let hex_pair left_bin right_bin inputs =
  match
    ( Compiler.Driver.run_hex left_bin inputs,
      Compiler.Driver.run_hex right_bin inputs )
  with
  | pair -> Some pair
  | exception _ -> None

let run ?(max_oracle_calls = 4000) (case : Difftest.Case.t) =
  Obs.Metrics.incr m_cases;
  Obs.Span.with_span "reduce.case" @@ fun () ->
  let left_cfg = case.Difftest.Case.left.Difftest.Case.config in
  let right_cfg = case.Difftest.Case.right.Difftest.Case.config in
  match Cparse.Parse.program case.Difftest.Case.source with
  | Error e -> Error (Printf.sprintf "archived source does not parse: %s" e)
  | Ok program0 ->
      if not (Irsim.Inputs.matches program0 case.Difftest.Case.inputs) then
        Error "archived inputs do not match the program's parameters"
      else begin
        let calls = ref 0 in
        let steps = ref 0 in
        (* current state: program, inputs, and the program's binaries *)
        let program = ref program0 in
        let inputs = ref case.Difftest.Case.inputs in
        let bins = ref None in
        (* the oracle: does the config pair still diverge on (p, ins)? *)
        let diverges p ins =
          if !calls >= max_oracle_calls then None
          else begin
            incr calls;
            Obs.Metrics.incr m_oracle;
            match compile_pair left_cfg right_cfg p with
            | None -> None
            | Some (l, r) -> (
                match hex_pair l r ins with
                | Some (hl, hr) when hl <> hr -> Some ((l, r), (hl, hr))
                | Some _ | None -> None)
          end
        in
        match diverges program0 case.Difftest.Case.inputs with
        | None -> Error "case does not reproduce a divergence"
        | Some (b0, (hl0, hr0))
          when hl0 <> case.Difftest.Case.left.Difftest.Case.hex
               || hr0 <> case.Difftest.Case.right.Difftest.Case.hex ->
            ignore b0;
            Error
              (Printf.sprintf
                 "archive mismatch: replay gives %s / %s, archive has %s / %s"
                 hl0 hr0 case.Difftest.Case.left.Difftest.Case.hex
                 case.Difftest.Case.right.Difftest.Case.hex)
        | Some (b0, hexes0) ->
            bins := Some b0;
            let hexes = ref hexes0 in
            (* greedy fixpoint: first shrink the program, then the inputs,
               restarting after every accepted candidate *)
            let progress = ref true in
            while !progress && !calls < max_oracle_calls do
              progress := false;
              (* program candidates (validated by the shrinker) *)
              let rec try_programs seq =
                match seq () with
                | Seq.Nil -> ()
                | Seq.Cons (p', rest) -> (
                    match diverges p' !inputs with
                    | Some (b', h') ->
                        program := p';
                        bins := Some b';
                        hexes := h';
                        incr steps;
                        Obs.Metrics.incr m_accepted;
                        progress := true
                    | None -> try_programs rest)
              in
              try_programs (Prop.Arb.shrink_program !program);
              if not !progress then begin
                (* input candidates: the binaries are unchanged, so only
                   re-run, never re-compile *)
                let l, r = Option.get !bins in
                let rec try_inputs seq =
                  match seq () with
                  | Seq.Nil -> ()
                  | Seq.Cons (ins', rest) ->
                      if !calls >= max_oracle_calls then ()
                      else begin
                        incr calls;
                        Obs.Metrics.incr m_oracle;
                        match hex_pair l r ins' with
                        | Some (hl, hr) when hl <> hr ->
                            inputs := ins';
                            hexes := (hl, hr);
                            incr steps;
                            Obs.Metrics.incr m_accepted;
                            progress := true
                        | Some _ | None -> try_inputs rest
                      end
                in
                try_inputs (Prop.Arb.shrink_inputs !inputs)
              end
            done;
            let hl, hr = !hexes in
            let left_val = Fp.Bits.double_of_hex hl in
            let right_val = Fp.Bits.double_of_hex hr in
            let reduced =
              {
                case with
                Difftest.Case.source = Lang.Pp.to_c !program;
                inputs = !inputs;
                digits = Fp.Digits.diff_count left_val right_val;
                left =
                  {
                    case.Difftest.Case.left with
                    Difftest.Case.hex = hl;
                    class_ = Fp.Bits.classify left_val;
                  };
                right =
                  {
                    case.Difftest.Case.right with
                    Difftest.Case.hex = hr;
                    class_ = Fp.Bits.classify right_val;
                  };
              }
            in
            (* final gate: the reduced record must replay bit-for-bit from
               its own printed source, exactly like any archived case *)
            let replayed =
              match Cparse.Parse.program reduced.Difftest.Case.source with
              | Error _ -> None
              | Ok p -> (
                  match compile_pair left_cfg right_cfg p with
                  | None -> None
                  | Some (l, r) -> hex_pair l r reduced.Difftest.Case.inputs)
            in
            (match replayed with
            | Some (hl', hr')
              when hl' = reduced.Difftest.Case.left.Difftest.Case.hex
                   && hr' = reduced.Difftest.Case.right.Difftest.Case.hex ->
                let original_size = Lang.Ast.program_size program0 in
                let reduced_size = Lang.Ast.program_size !program in
                let outcome =
                  {
                    original = case;
                    reduced;
                    original_size;
                    reduced_size;
                    shrink_steps = !steps;
                    oracle_calls = !calls;
                  }
                in
                Obs.Metrics.observe m_ratio (shrink_ratio outcome);
                Ok outcome
            | _ -> Error "reduced case failed its bit-exact replay")
      end

let render o =
  let b = Buffer.create 512 in
  let fp = Difftest.Case.fingerprint o.original in
  Buffer.add_string b
    (Printf.sprintf "reduction of %s: %d -> %d nodes (ratio %.2f)\n" fp
       o.original_size o.reduced_size (shrink_ratio o));
  Buffer.add_string b
    (Printf.sprintf "%d accepted shrinks, %d oracle calls\n" o.shrink_steps
       o.oracle_calls);
  Buffer.add_string b
    (Printf.sprintf "reduced fingerprint: %s\n"
       (Difftest.Case.fingerprint o.reduced));
  Buffer.add_string b "minimized program:\n";
  Buffer.add_string b o.reduced.Difftest.Case.source;
  Buffer.add_string b
    (Format.asprintf "inputs: %a\n" Irsim.Inputs.pp
       o.reduced.Difftest.Case.inputs);
  Buffer.contents b
