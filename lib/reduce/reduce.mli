(** Delta-debugging reduction of archived inconsistency cases.

    An archived {!Difftest.Case.t} is a full generated kernel, most of
    which is usually irrelevant to the divergence it witnesses. This
    module minimizes the case while re-checking the inconsistency oracle
    after every candidate shrink: a candidate survives only if the
    case's own configuration pair still produces bitwise-different
    results on it. Shrinking reuses the property-testing shrinkers of
    {!Prop.Arb} — statement removal at any depth (dead statements, the
    ones {!Irsim.Dce} would sweep, fall out first since dropping them
    cannot perturb either side), loop/branch body splicing, expression
    hoisting and literal simplification, and input-vector shrinking —
    each candidate filtered through {!Analysis.Validate.check}.

    The reduced case is rebuilt with freshly computed hex sides, classes
    and digit distance, and is re-replayed from its own printed source
    before being returned: {!run} guarantees the reduced record
    reproduces its archived divergence bit-for-bit, between the same
    configuration pair as the original.

    Progress flows through {!Obs}: a [reduce.case] span per reduction,
    [reduce.cases] / [reduce.oracle_calls] / [reduce.accepted_shrinks]
    counters, and a [reduce.shrink_ratio] histogram (reduced size over
    original size, so lower is better). *)

type outcome = {
  original : Difftest.Case.t;
  reduced : Difftest.Case.t;  (** same kind, configs, level, provenance *)
  original_size : int;  (** {!Lang.Ast.program_size} of the archived program *)
  reduced_size : int;
  shrink_steps : int;  (** accepted candidate shrinks *)
  oracle_calls : int;  (** candidate evaluations (compile + both runs) *)
}

val shrink_ratio : outcome -> float
(** [reduced_size /. original_size], in (0, 1]. *)

val run :
  ?max_oracle_calls:int -> Difftest.Case.t -> (outcome, string) result
(** Reduce a case. Default oracle budget: 4000 candidate evaluations.
    [Error] when the archived source fails to parse or compile, when the
    archive does not reproduce its recorded hex pair in the first place,
    or when the final bit-exact replay of the reduced case fails (a
    reducer bug, surfaced rather than archived). *)

val render : outcome -> string
(** Human-readable report: size before/after, ratio, oracle cost, and
    the minimized program with its inputs. *)

val grow_pool : dir:string -> (Lang.Ast.program list, string) result
(** Load a [--record] archive directory as a seed pool for the bandit's
    grow arm ([campaign --bandit --grow-from DIR]): every archived case's
    program, re-parsed from its stored source, deduplicated on the
    normalized rendering, in fingerprint order — deterministic in the
    archive contents alone. [Error] on an unreadable directory or an
    undecodable case file. *)
