(** The compilation driver (paper §2.4).

    Prepares a generated program for execution on host and device: the
    host path emits C and compiles it; the device path first translates C
    to CUDA ([compute] becomes a single-thread [__global__] kernel) and
    compiles that. "Compiling" means: emit the translation unit, re-parse
    it (the simulated front end — translation errors surface here, as
    real nvcc failures do), validate, lower to IR, and run the
    configuration's pass pipeline (constant folding → fast-math rewrites
    → FMA contraction → dead-store elimination). The result is a binary:
    optimized IR plus the runtime configuration.

    The front end is split from the back end: only the {e target}
    (host/device) decides the translation unit — gcc and clang compile
    the same host C — so one program needs exactly {e two} front-end
    passes, not one per configuration. {!fronts} carries the memoized
    per-target front ends (domain-safe; shareable across an
    {!Exec.Pool} fan-out) and {!compile_with} runs only the per-config
    back end against them. The cache's effectiveness is observable as
    the [compiler.frontend.runs] / [compiler.frontend.cache_hits]
    metrics.

    Fault tolerance: every stage entry point (front end, back end,
    execution) is an {!Exec.Faults} injection site with a bounded-retry
    policy for transient failures — up to two retries with deterministic
    exponential backoff charged to the attached simulated clock
    ({!Obs.Span.charge_sim}); exhaustion re-raises the original
    {!Exec.Faults.Transient}. Counted by the [retry.compiler.*]
    metrics. *)

type binary = {
  config : Config.t;
  source : string;  (** the exact translation unit that was "compiled" *)
  ir : Irsim.Ir.t;  (** after the pass pipeline *)
  vm : Irsim.Vm.program;
      (** the flattened program, built once per back-end output; carries
          the configuration's runtime pre-bound *)
  work : int;       (** IR node count, the compile/execute cost proxy *)
}

(** Which execution engine {!run} and {!run_batch} dispatch to. [Vm]
    (the default) runs the flattened program cached on the binary; [Tree]
    runs the reference tree-walking interpreter. The two are bit-exact —
    the [vm-equiv] property suite, the difftest suites, and the bench
    equivalence drill all assert it — so the toggle exists for A/B
    measurement and for re-validating the VM against the reference. *)
type engine = Tree | Vm

val engine_name : engine -> string
val engine_of_string : string -> engine option

val engine : unit -> engine
(** The process-wide engine currently in effect (atomic; shared by every
    domain). *)

val set_engine : engine -> unit

val set_engine_of_env : unit -> unit
(** Apply [LLM4FP_ENGINE] ("tree" | "vm") if set and non-empty. Raises
    [Invalid_argument] on an unrecognized value. Call sites (CLI, bench)
    invoke this explicitly at startup, like {!Exec.Faults.of_env}. *)

val of_ir :
  config:Config.t -> source:string -> work:int -> Irsim.Ir.t -> binary
(** Package optimized IR as a binary, flattening it for the VM under
    [config]'s runtime. The one constructor every binary goes through —
    keeps hand-built binaries (isolation probes) executable on either
    engine. *)

type target = [ `Host | `Device ]

type front
(** A completed front-end pass: the emitted translation unit and its
    lowered (pre-pipeline) IR. Immutable and shareable. *)

type fronts
(** Per-program front-end cache, at most one entry per target. Lazy and
    mutex-guarded: concurrent {!compile_with} calls from pool workers
    compute each target once and share the result. *)

val fronts : Lang.Ast.program -> fronts
(** An empty cache for [program]; no front-end work happens yet. *)

val target_of : Config.t -> target

val front_end : fronts -> target -> (front, string) result
(** The memoized front end: emit + parse + validate + lower, computed on
    first use per target and cached (errors are cached too). The error
    string carries no configuration name. *)

val back_end : Config.t -> front -> binary
(** The per-configuration pass pipeline over the shared front-end IR
    (which is never mutated — every binary gets its own optimized IR). *)

val compile_with : fronts -> Config.t -> (binary, string) result
(** [front_end] + [back_end] with the historic [compile] accounting:
    per-configuration success/failure metrics and [Compiled] trace
    events, and failure messages prefixed with the configuration name. *)

val compile : Config.t -> Lang.Ast.program -> (binary, string) result
(** One-shot compilation (a fresh single-use cache). Validation or
    lowering failure yields [Error] (a compilation failure; the harness
    counts it and moves on, per §2.4 "only binaries that compile
    successfully are passed to the next stage"). *)

val execute : binary -> Irsim.Inputs.t -> Irsim.Interp.outcome
(** Raw execution on the current {!engine}: the [compiler.interp] span
    and the fault-injection site, but no metrics and no trace event.
    {!Difftest.Run} uses this to run each deduplicated binary once and
    then {!account} the outcome to every configuration that shares it. *)

val account : binary -> Irsim.Interp.outcome -> unit
(** Book an execution outcome against [binary]'s configuration: the
    [compiler.runs] / [compiler.fp_ops] metrics and (when tracing) an
    [Executed] event stamped with the caller's slot/lane context. *)

val run : binary -> Irsim.Inputs.t -> Irsim.Interp.outcome
(** [execute] + [account]: the historic one-call entry point. *)

val run_batch : binary -> Irsim.Inputs.t list -> Irsim.Interp.outcome list
(** Execute every input vector against one binary in a single pass,
    reusing the VM's register state across vectors (per-call on the tree
    engine). Raw like {!execute}: one [compiler.interp] span, no
    metrics, no trace events, no fault injection — the throughput entry
    point for bench and batch callers. *)

val run_hex : binary -> Irsim.Inputs.t -> string
(** The 16-character hexadecimal encoding of the printed result — the
    comparison key of the paper's differential testing. *)

val matrix :
  ?configs:Config.t list ->
  ?jobs:int ->
  Lang.Ast.program ->
  ((Config.t * binary, Config.t * string) Either.t) list
(** Compile under every configuration (default: the full 18-entry
    matrix), keeping per-configuration successes and failures in
    configuration order. The front end runs at most twice regardless of
    configuration count, and [jobs > 1] fans the per-configuration back
    ends across the {!Exec.Pool} — results are identical at any job
    count. *)
