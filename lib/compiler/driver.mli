(** The compilation driver (paper §2.4).

    Prepares a generated program for execution on host and device: the
    host path emits C and compiles it; the device path first translates C
    to CUDA ([compute] becomes a single-thread [__global__] kernel) and
    compiles that. "Compiling" means: emit the translation unit, re-parse
    it (the simulated front end — translation errors surface here, as
    real nvcc failures do), validate, lower to IR, and run the
    configuration's pass pipeline (constant folding → fast-math rewrites
    → FMA contraction → dead-store elimination). The result is a binary:
    optimized IR plus the runtime configuration.

    The front end is split from the back end: only the {e target}
    (host/device) decides the translation unit — gcc and clang compile
    the same host C — so one program needs exactly {e two} front-end
    passes, not one per configuration. {!fronts} carries the memoized
    per-target front ends (domain-safe; shareable across an
    {!Exec.Pool} fan-out) and {!compile_with} runs only the per-config
    back end against them. The cache's effectiveness is observable as
    the [compiler.frontend.runs] / [compiler.frontend.cache_hits]
    metrics.

    Fault tolerance: every stage entry point (front end, back end,
    execution) is an {!Exec.Faults} injection site with a bounded-retry
    policy for transient failures — up to two retries with deterministic
    exponential backoff charged to the attached simulated clock
    ({!Obs.Span.charge_sim}); exhaustion re-raises the original
    {!Exec.Faults.Transient}. Counted by the [retry.compiler.*]
    metrics. *)

type binary = {
  config : Config.t;
  source : string;  (** the exact translation unit that was "compiled" *)
  ir : Irsim.Ir.t;  (** after the pass pipeline *)
  work : int;       (** IR node count, the compile/execute cost proxy *)
}

type target = [ `Host | `Device ]

type front
(** A completed front-end pass: the emitted translation unit and its
    lowered (pre-pipeline) IR. Immutable and shareable. *)

type fronts
(** Per-program front-end cache, at most one entry per target. Lazy and
    mutex-guarded: concurrent {!compile_with} calls from pool workers
    compute each target once and share the result. *)

val fronts : Lang.Ast.program -> fronts
(** An empty cache for [program]; no front-end work happens yet. *)

val target_of : Config.t -> target

val front_end : fronts -> target -> (front, string) result
(** The memoized front end: emit + parse + validate + lower, computed on
    first use per target and cached (errors are cached too). The error
    string carries no configuration name. *)

val back_end : Config.t -> front -> binary
(** The per-configuration pass pipeline over the shared front-end IR
    (which is never mutated — every binary gets its own optimized IR). *)

val compile_with : fronts -> Config.t -> (binary, string) result
(** [front_end] + [back_end] with the historic [compile] accounting:
    per-configuration success/failure metrics and [Compiled] trace
    events, and failure messages prefixed with the configuration name. *)

val compile : Config.t -> Lang.Ast.program -> (binary, string) result
(** One-shot compilation (a fresh single-use cache). Validation or
    lowering failure yields [Error] (a compilation failure; the harness
    counts it and moves on, per §2.4 "only binaries that compile
    successfully are passed to the next stage"). *)

val run : binary -> Irsim.Inputs.t -> Irsim.Interp.outcome

val run_hex : binary -> Irsim.Inputs.t -> string
(** The 16-character hexadecimal encoding of the printed result — the
    comparison key of the paper's differential testing. *)

val matrix :
  ?configs:Config.t list ->
  ?jobs:int ->
  Lang.Ast.program ->
  ((Config.t * binary, Config.t * string) Either.t) list
(** Compile under every configuration (default: the full 18-entry
    matrix), keeping per-configuration successes and failures in
    configuration order. The front end runs at most twice regardless of
    configuration count, and [jobs > 1] fans the per-configuration back
    ends across the {!Exec.Pool} — results are identical at any job
    count. *)
