type binary = {
  config : Config.t;
  source : string;
  ir : Irsim.Ir.t;
  work : int;
}

let m_compile_ok = Obs.Metrics.counter "compiler.compile.ok"
let m_compile_error = Obs.Metrics.counter "compiler.compile.error"
let m_work = Obs.Metrics.counter "compiler.work"
let m_runs = Obs.Metrics.counter "compiler.runs"
let m_fp_ops = Obs.Metrics.counter "compiler.fp_ops"

let rec body_size body =
  List.fold_left
    (fun acc (s : Irsim.Ir.stmt) ->
      acc
      +
      match s with
      | Irsim.Ir.Store (_, e) -> 1 + Irsim.Ir.expr_size e
      | Irsim.Ir.Store_arr (_, _, e) -> 2 + Irsim.Ir.expr_size e
      | Irsim.Ir.If { lhs; rhs; body; _ } ->
        1 + Irsim.Ir.expr_size lhs + Irsim.Ir.expr_size rhs + body_size body
      | Irsim.Ir.For { body; _ } -> 2 + body_size body)
    0 body

let pipeline (config : Config.t) ir =
  let ir = Irsim.Fold.run config.fold ir in
  let ir =
    match config.fastmath with
    | None -> ir
    | Some fm -> Irsim.Fastmath.run fm ir
  in
  let ir = Irsim.Contract.run config.contract ir in
  if config.dce then Irsim.Dce.run ir else ir

let compile (config : Config.t) (program : Lang.Ast.program) =
  Obs.Span.with_span "compiler.compile" @@ fun () ->
  (* Emit the translation unit for the target, then run the front end on
     that text: the device path really goes through the C-to-CUDA
     translation. *)
  let source =
    if Personality.is_host config.personality then Lang.Pp.to_c program
    else Lang.Pp.to_cuda program
  in
  let result =
    match Cparse.Parse.program source with
    | Error msg ->
      Error (Printf.sprintf "%s: front end: %s" (Config.name config) msg)
    | Ok parsed -> begin
      match Analysis.Validate.check parsed with
      | Error issues ->
        Error
          (Printf.sprintf "%s: %s" (Config.name config)
             (String.concat "; "
                (List.map Analysis.Validate.issue_to_string issues)))
      | Ok () -> begin
        match Irsim.Lower.program parsed with
        | exception Irsim.Lower.Error msg ->
          Error (Printf.sprintf "%s: lowering: %s" (Config.name config) msg)
        | ir ->
          let applied = Config.effective config parsed.Lang.Ast.precision in
          let ir = pipeline applied ir in
          Ok { config = applied; source; ir; work = body_size ir.body }
      end
    end
  in
  (match result with
  | Ok binary ->
    Obs.Metrics.incr m_compile_ok;
    Obs.Metrics.incr ~by:binary.work m_work;
    if Obs.Trace.on () then
      Obs.Trace.emit
        (Obs.Event.Compiled
           {
             slot = Obs.Trace.current_slot ();
             config = Config.name config;
             ok = true;
             work = binary.work;
           })
  | Error _ ->
    Obs.Metrics.incr m_compile_error;
    if Obs.Trace.on () then
      Obs.Trace.emit
        (Obs.Event.Compiled
           {
             slot = Obs.Trace.current_slot ();
             config = Config.name config;
             ok = false;
             work = 0;
           }));
  result

let run binary inputs =
  Obs.Span.with_span "compiler.interp" @@ fun () ->
  let out = Irsim.Interp.run (Config.runtime binary.config) binary.ir inputs in
  Obs.Metrics.incr m_runs;
  Obs.Metrics.incr ~by:out.Irsim.Interp.fp_ops m_fp_ops;
  if Obs.Trace.on () then
    Obs.Trace.emit
      (Obs.Event.Executed
         {
           slot = Obs.Trace.current_slot ();
           config = Config.name binary.config;
           hex = Fp.Bits.hex_of_double out.Irsim.Interp.result;
           ops = out.Irsim.Interp.fp_ops;
         });
  out

let run_hex binary inputs = Fp.Bits.hex_of_double (run binary inputs).result

let matrix program =
  List.map
    (fun config ->
      match compile config program with
      | Ok binary -> Either.Left (config, binary)
      | Error msg -> Either.Right (config, msg))
    (Config.all ())
