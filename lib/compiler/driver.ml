type binary = {
  config : Config.t;
  source : string;
  ir : Irsim.Ir.t;
  vm : Irsim.Vm.program;
  work : int;
}

type engine = Tree | Vm

let engine_name = function Tree -> "tree" | Vm -> "vm"

let engine_of_string = function
  | "tree" -> Some Tree
  | "vm" -> Some Vm
  | _ -> None

let current_engine = Atomic.make Vm
let engine () = Atomic.get current_engine
let set_engine e = Atomic.set current_engine e

let set_engine_of_env () =
  match Sys.getenv_opt "LLM4FP_ENGINE" with
  | None | Some "" -> ()
  | Some s -> begin
    match engine_of_string s with
    | Some e -> set_engine e
    | None ->
      invalid_arg
        (Printf.sprintf "LLM4FP_ENGINE: unknown engine %S (tree | vm)" s)
  end

let m_compile_ok = Obs.Metrics.counter "compiler.compile.ok"
let m_compile_error = Obs.Metrics.counter "compiler.compile.error"
let m_front_runs = Obs.Metrics.counter "compiler.frontend.runs"
let m_front_hits = Obs.Metrics.counter "compiler.frontend.cache_hits"
let m_work = Obs.Metrics.counter "compiler.work"
let m_runs = Obs.Metrics.counter "compiler.runs"
let m_fp_ops = Obs.Metrics.counter "compiler.fp_ops"
let m_retries = Obs.Metrics.counter "retry.compiler.retries"
let m_exhausted = Obs.Metrics.counter "retry.compiler.exhausted"
let max_attempts = 3

(* Transient-failure policy shared by every driver stage: the stage
   entry point is re-attempted up to [max_attempts] times with
   deterministic exponential backoff charged to the attached simulated
   clock; exhaustion re-raises the original failure. The stages
   themselves are deterministic, so a retry repeats the work exactly. *)
let inject_with_retry stage =
  let rec go attempt =
    match Exec.Faults.inject stage with
    | () -> ()
    | exception (Exec.Faults.Transient _ as e) ->
        if attempt >= max_attempts then begin
          Obs.Metrics.incr m_exhausted;
          raise e
        end
        else begin
          Obs.Metrics.incr m_retries;
          Obs.Span.charge_sim (Exec.Faults.backoff ~attempt);
          go (attempt + 1)
        end
  in
  go 1

let rec body_size body =
  List.fold_left
    (fun acc (s : Irsim.Ir.stmt) ->
      acc
      +
      match s with
      | Irsim.Ir.Store (_, e) -> 1 + Irsim.Ir.expr_size e
      | Irsim.Ir.Store_arr (_, _, e) -> 2 + Irsim.Ir.expr_size e
      | Irsim.Ir.If { lhs; rhs; body; _ } ->
        1 + Irsim.Ir.expr_size lhs + Irsim.Ir.expr_size rhs + body_size body
      | Irsim.Ir.For { body; _ } -> 2 + body_size body)
    0 body

let pipeline (config : Config.t) ir =
  let ir = Irsim.Fold.run config.fold ir in
  let ir =
    match config.fastmath with
    | None -> ir
    | Some fm -> Irsim.Fastmath.run fm ir
  in
  let ir = Irsim.Contract.run config.contract ir in
  if config.dce then Irsim.Dce.run ir else ir

(* ------------------------------------------------------------------ *)
(* Front end: emit + parse + validate + lower. Only the target decides
   the translation unit (gcc and clang share the host C unit; nvcc gets
   the CUDA one), so the whole 18-configuration matrix needs exactly two
   front-end passes. *)

type target = [ `Host | `Device ]

type front = {
  f_source : string;       (* the emitted translation unit *)
  f_ir : Irsim.Ir.t;       (* lowered, before the pass pipeline *)
  f_precision : Lang.Ast.precision;  (* of the re-parsed unit *)
}

type fronts = {
  program : Lang.Ast.program;
  lock : Mutex.t;
  mutable host : (front, string) result option;
  mutable device : (front, string) result option;
}

let target_of (config : Config.t) : target =
  if Personality.is_host config.personality then `Host else `Device

(* Error strings carry no configuration name; [compile_with] prefixes
   the config so per-configuration failure messages keep their historic
   shape ("<config>: front end: …" / "<config>: …" / "<config>:
   lowering: …"). *)
let run_front_end (target : target) program =
  Obs.Span.with_span "compiler.front_end" @@ fun () ->
  inject_with_retry Exec.Faults.Front_end;
  Obs.Metrics.incr m_front_runs;
  (* Emit the translation unit for the target, then run the front end on
     that text: the device path really goes through the C-to-CUDA
     translation. *)
  let source =
    match target with
    | `Host -> Lang.Pp.to_c program
    | `Device -> Lang.Pp.to_cuda program
  in
  match Cparse.Parse.program source with
  | Error msg -> Error (Printf.sprintf "front end: %s" msg)
  | Ok parsed -> begin
    match Analysis.Validate.check parsed with
    | Error issues ->
      Error
        (String.concat "; "
           (List.map Analysis.Validate.issue_to_string issues))
    | Ok () -> begin
      match Irsim.Lower.program parsed with
      | exception Irsim.Lower.Error msg ->
        Error (Printf.sprintf "lowering: %s" msg)
      | ir ->
        Ok
          { f_source = source; f_ir = ir;
            f_precision = parsed.Lang.Ast.precision }
    end
  end

let fronts program =
  { program; lock = Mutex.create (); host = None; device = None }

let front_end fronts (target : target) =
  Mutex.lock fronts.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock fronts.lock)
    (fun () ->
      let cached =
        match target with `Host -> fronts.host | `Device -> fronts.device
      in
      match cached with
      | Some r ->
        Obs.Metrics.incr m_front_hits;
        r
      | None ->
        let r = run_front_end target fronts.program in
        (match target with
        | `Host -> fronts.host <- Some r
        | `Device -> fronts.device <- Some r);
        r)

(* ------------------------------------------------------------------ *)
(* Back end: the configuration's pass pipeline over the shared
   (immutable) lowered IR. *)

(* Every binary carries its flattened program: the flatten pass runs
   exactly once per back-end output, so run-many execution never
   re-walks the tree. *)
let of_ir ~(config : Config.t) ~source ~work ir =
  { config; source; ir; vm = Irsim.Vm.flatten (Config.runtime config) ir; work }

let back_end (config : Config.t) (front : front) =
  inject_with_retry Exec.Faults.Back_end;
  let applied = Config.effective config front.f_precision in
  let ir = pipeline applied front.f_ir in
  of_ir ~config:applied ~source:front.f_source ~work:(body_size ir.body) ir

let compile_with fronts (config : Config.t) =
  Obs.Span.with_span "compiler.compile" @@ fun () ->
  let result =
    match front_end fronts (target_of config) with
    | Error msg -> Error (Printf.sprintf "%s: %s" (Config.name config) msg)
    | Ok front ->
      Ok (Obs.Span.with_span "compiler.back_end" (fun () -> back_end config front))
  in
  (match result with
  | Ok binary ->
    Obs.Metrics.incr m_compile_ok;
    Obs.Metrics.incr ~by:binary.work m_work;
    if Obs.Trace.on () then
      Obs.Trace.emit
        (Obs.Event.Compiled
           {
             slot = Obs.Trace.current_slot ();
             config = Config.name config;
             ok = true;
             work = binary.work;
           })
  | Error _ ->
    Obs.Metrics.incr m_compile_error;
    if Obs.Trace.on () then
      Obs.Trace.emit
        (Obs.Event.Compiled
           {
             slot = Obs.Trace.current_slot ();
             config = Config.name config;
             ok = false;
             work = 0;
           }));
  result

let compile (config : Config.t) (program : Lang.Ast.program) =
  compile_with (fronts program) config

let execute binary inputs =
  Obs.Span.with_span "compiler.interp" @@ fun () ->
  inject_with_retry Exec.Faults.Execution;
  match Atomic.get current_engine with
  | Tree -> Irsim.Interp.run (Config.runtime binary.config) binary.ir inputs
  | Vm -> Irsim.Vm.run binary.vm inputs

let account binary (out : Irsim.Interp.outcome) =
  Obs.Metrics.incr m_runs;
  Obs.Metrics.incr ~by:out.Irsim.Interp.fp_ops m_fp_ops;
  if Obs.Trace.on () then
    Obs.Trace.emit
      (Obs.Event.Executed
         {
           slot = Obs.Trace.current_slot ();
           config = Config.name binary.config;
           hex = Fp.Bits.hex_of_double out.Irsim.Interp.result;
           ops = out.Irsim.Interp.fp_ops;
         })

let run binary inputs =
  let out = execute binary inputs in
  account binary out;
  out

let run_batch binary inputs_list =
  Obs.Span.with_span "compiler.interp" @@ fun () ->
  match Atomic.get current_engine with
  | Tree ->
    let rt = Config.runtime binary.config in
    List.map (fun inputs -> Irsim.Interp.run rt binary.ir inputs) inputs_list
  | Vm -> Irsim.Vm.run_batch binary.vm inputs_list

let run_hex binary inputs = Fp.Bits.hex_of_double (run binary inputs).result

let matrix ?configs ?(jobs = 1) program =
  let configs =
    match configs with Some cs -> cs | None -> Config.all ()
  in
  let fronts = fronts program in
  let slot = Obs.Trace.current_slot () in
  let compile_one config =
    match compile_with fronts config with
    | Ok binary -> Either.Left (config, binary)
    | Error msg -> Either.Right (config, msg)
  in
  let task (lane, config) =
    (* Re-establish the caller's slot context inside pool workers so
       Compiled events stay correlated, and lane-stamp by matrix index
       so ordered sinks can serialize them deterministically. *)
    let go () = Obs.Trace.with_lane lane (fun () -> compile_one config) in
    match slot with
    | Some s -> Obs.Trace.with_slot s go
    | None -> go ()
  in
  Exec.Pool.map ~jobs task (List.mapi (fun i c -> (i, c)) configs)
