(** Deterministic replay and root-cause analysis of archived cases.

    [explain] closes the forensics loop: a case recorded by
    {!Difftest.Recorder} is replayed from its archive file alone — the
    source is re-parsed, both configurations recompiled, the binaries
    re-run on the bit-exact inputs — and the fresh outputs are checked
    against the archived bits. Because the whole toolchain is
    deterministic, a mismatch means the archive does not describe this
    build of the simulator (e.g. a policy-table change), which is
    exactly what a reproduction check should catch.

    On top of the replay, the pLiner-style {!Isolate.isolate} search
    runs with the case's right side as the suspect and its left side as
    the reference, attributing the divergence either to a minimal set
    of strictifiable statements or to the runtime. *)

type outcome = {
  case : Difftest.Case.t;
  program : Lang.Ast.program;  (** re-parsed from the archived source *)
  left_hex : string;           (** freshly replayed left output *)
  right_hex : string;          (** freshly replayed right output *)
  reproduced : bool;
      (** both replayed outputs bit-identical to the archived ones *)
  verdict : (Isolate.verdict, string) result;
  reduction : (Reduce.outcome, string) result option;
      (** present when {!replay} ran with [~reduce:true] *)
}

val load : ?dir:string -> string -> (Difftest.Case.t, string) result
(** Resolve a case reference: a path to an archive file, or — when
    [dir] is given — a bare fingerprint looked up as
    [dir/<fingerprint>.jsonl]. *)

val replay : ?reduce:bool -> Difftest.Case.t -> (outcome, string) result
(** Parse, recompile, re-run, compare, isolate. With [~reduce:true]
    (default [false]) the delta-debugging reducer also runs, and its
    result — a minimized replayable case, or why reduction failed —
    lands in [reduction]. [Error] only on parse or compile failure of
    the archived source. *)

val render : outcome -> string
(** The forensic report: identity, both sides (archived vs replayed
    bits), inputs, reproduction status, isolation verdict, and the
    archived source. *)
