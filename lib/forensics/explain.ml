type outcome = {
  case : Difftest.Case.t;
  program : Lang.Ast.program;
  left_hex : string;
  right_hex : string;
  reproduced : bool;
  verdict : (Isolate.verdict, string) result;
  reduction : (Reduce.outcome, string) result option;
}

let m_replays = Obs.Metrics.counter "explain.replays"
let m_reproduced = Obs.Metrics.counter "explain.reproduced"

let looks_like_fingerprint s =
  String.length s = 16
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
       s

let load ?dir ref_ =
  if Sys.file_exists ref_ && not (Sys.is_directory ref_) then
    Difftest.Recorder.load_file ref_
  else if looks_like_fingerprint ref_ then begin
    match dir with
    | Some d ->
      let path = Filename.concat d (ref_ ^ ".jsonl") in
      if Sys.file_exists path then Difftest.Recorder.load_file path
      else
        Error
          (Printf.sprintf "fingerprint %s not found in archive %s" ref_ d)
    | None ->
      Error
        (Printf.sprintf
           "%s looks like a fingerprint; pass the archive directory to \
            resolve it"
           ref_)
  end
  else Error (Printf.sprintf "%s: no such case file" ref_)

let replay ?(reduce = false) (case : Difftest.Case.t) =
  Obs.Span.with_span "explain.replay" @@ fun () ->
  Obs.Metrics.incr m_replays;
  let ( let* ) = Result.bind in
  let* program =
    Obs.Span.with_span "explain.parse" @@ fun () ->
    Cparse.Parse.program case.Difftest.Case.source
  in
  let compile (side : Difftest.Case.side) =
    Compiler.Driver.compile side.Difftest.Case.config program
  in
  let* left_bin =
    Obs.Span.with_span "explain.compile" @@ fun () ->
    compile case.Difftest.Case.left
  in
  let* right_bin =
    Obs.Span.with_span "explain.compile" @@ fun () ->
    compile case.Difftest.Case.right
  in
  let run bin =
    Obs.Span.with_span "explain.execute" @@ fun () ->
    Compiler.Driver.run_hex bin case.Difftest.Case.inputs
  in
  let left_hex = run left_bin in
  let right_hex = run right_bin in
  let reproduced =
    left_hex = case.Difftest.Case.left.Difftest.Case.hex
    && right_hex = case.Difftest.Case.right.Difftest.Case.hex
  in
  if reproduced then Obs.Metrics.incr m_reproduced;
  let verdict =
    Isolate.isolate ~program ~inputs:case.Difftest.Case.inputs
      ~suspect:case.Difftest.Case.right.Difftest.Case.config
      ~reference:case.Difftest.Case.left.Difftest.Case.config
  in
  let reduction =
    if reduce then
      Some (Obs.Span.with_span "explain.reduce" @@ fun () -> Reduce.run case)
    else None
  in
  Ok { case; program; left_hex; right_hex; reproduced; verdict; reduction }

let render o =
  let case = o.case in
  let b = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "case %s (%s, %s at %s)"
    (Difftest.Case.fingerprint case)
    (Difftest.Case.kind_name case.Difftest.Case.kind)
    (Difftest.Case.pair_name case)
    (Compiler.Optlevel.name case.Difftest.Case.level);
  line "provenance: seed %d, slot %d" case.Difftest.Case.seed
    case.Difftest.Case.slot;
  Buffer.add_char b '\n';
  let side label (s : Difftest.Case.side) replayed =
    line "%s: %s" label (Compiler.Config.name s.Difftest.Case.config);
    line "  archived  %s  (%s, %.17g)" s.Difftest.Case.hex
      (Fp.Bits.class_name s.Difftest.Case.class_)
      (Fp.Bits.double_of_hex s.Difftest.Case.hex);
    line "  replayed  %s  %s" replayed
      (if replayed = s.Difftest.Case.hex then "[bit-identical]"
       else "[MISMATCH]")
  in
  side "left " case.Difftest.Case.left o.left_hex;
  side "right" case.Difftest.Case.right o.right_hex;
  line "digit difference: %d" case.Difftest.Case.digits;
  line "inputs: %s"
    (Format.asprintf "%a" Irsim.Inputs.pp case.Difftest.Case.inputs);
  Buffer.add_char b '\n';
  line "reproduction: %s"
    (if o.reproduced then "exact — both outputs match the archived bits"
     else
       "FAILED — the replayed bits differ from the archive (the \
        simulator's policy tables have likely changed since recording)");
  Buffer.add_char b '\n';
  begin
    match o.verdict with
    | Error msg -> line "isolation: failed (%s)" msg
    | Ok v ->
      line "isolation [%s]: %s" (Isolate.verdict_name v)
        (Isolate.verdict_to_string o.program v)
  end;
  begin
    match o.reduction with
    | None -> ()
    | Some (Error msg) ->
      Buffer.add_char b '\n';
      line "reduction: failed (%s)" msg
    | Some (Ok r) ->
      Buffer.add_char b '\n';
      line "reduction: %d -> %d nodes (ratio %.2f, %d shrinks, %d oracle \
            calls)"
        r.Reduce.original_size r.Reduce.reduced_size (Reduce.shrink_ratio r)
        r.Reduce.shrink_steps r.Reduce.oracle_calls;
      line "minimized program (%s / %s):"
        r.Reduce.reduced.Difftest.Case.left.Difftest.Case.hex
        r.Reduce.reduced.Difftest.Case.right.Difftest.Case.hex;
      Buffer.add_string b r.Reduce.reduced.Difftest.Case.source;
      line "minimized inputs: %s"
        (Format.asprintf "%a" Irsim.Inputs.pp
           r.Reduce.reduced.Difftest.Case.inputs)
  end;
  Buffer.add_char b '\n';
  line "archived source:";
  Buffer.add_string b case.Difftest.Case.source;
  if
    String.length case.Difftest.Case.source > 0
    && case.Difftest.Case.source.[String.length case.Difftest.Case.source - 1]
       <> '\n'
  then Buffer.add_char b '\n';
  Buffer.contents b
