(** Pluggable trace sinks: where {!Trace} fans events out to.

    The default state of the process is {e no} sink subscribed, in which
    case instrumentation sites skip event construction entirely
    ({!Trace.on} is one branch) — observability off is effectively
    free. *)

type t = { emit : Event.t -> unit; close : unit -> unit }

val make : ?close:(unit -> unit) -> (Event.t -> unit) -> t

val null : t
(** Swallows everything. Subscribing it still turns {!Trace.on} on;
    for zero overhead simply subscribe nothing. *)

val jsonl : out_channel -> t
(** One JSON object per line on [oc]; [close] flushes (the channel
    itself belongs to the caller). *)

val ring : ?capacity:int -> unit -> t * (unit -> Event.t list)
(** In-memory ring buffer keeping the last [capacity] (default 1024)
    events; the second component returns them oldest-first. Used by
    tests and interactive inspection. *)

val close : t -> unit
