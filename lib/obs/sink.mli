(** Pluggable trace sinks: where {!Trace} fans events out to.

    The default state of the process is {e no} sink subscribed, in which
    case instrumentation sites skip event construction entirely
    ({!Trace.on} is one branch) — observability off is effectively
    free. *)

type stamp = {
  slot : int;  (** campaign budget slot, [-1] outside any slot context *)
  lane : int;
      (** deterministic sub-slot lane (the configuration index of a
          parallel fan-out), [-1] for the sequential main lane *)
  seq : int;  (** emission index within the lane, starting at 0 *)
}
(** Deterministic ordering stamp attached by {!Trace.emit}. Within one
    slot, the sequential sections of the pipeline emit on the main lane
    ([-1]) in a fixed order, while a parallel fan-out gives each task
    its own lane whose events are internally ordered by [seq] — so
    [(slot, lane, seq)] is a complete, job-count-independent sort key
    for everything emitted {e between} two main-lane events. *)

type t

val make :
  ?close:(unit -> unit) -> ?sync:(unit -> int option) -> (Event.t -> unit) -> t
(** A stamp-oblivious sink (the common case). [sync] durably flushes
    buffered output and reports the current byte position, if the sink
    has a meaningful one (default: [fun () -> None]). *)

val make_stamped :
  ?close:(unit -> unit) ->
  ?sync:(unit -> int option) ->
  (stamp -> Event.t -> unit) ->
  t
(** A sink that also sees each event's ordering stamp. *)

val null : t
(** Swallows everything. Subscribing it still turns {!Trace.on} on;
    for zero overhead simply subscribe nothing. *)

val jsonl : out_channel -> t
(** One JSON object per line on [oc]; [close] flushes (the channel
    itself belongs to the caller). [sync] flushes, [fsync]s, and
    returns [Some (pos_out oc)] — the durable byte offset a campaign
    checkpoint records so a resumed run can truncate the trace file
    back to a slot boundary. *)

val ordered : t -> t
(** Order-on-flush: buffer lane events ([stamp.lane >= 0]) and release
    them to the inner sink sorted by [(slot, lane, seq)] whenever a
    main-lane event arrives (and at [close]). Main-lane events pass
    through immediately, after flushing the buffer.

    Because every parallel fan-out joins before the next main-lane
    event is emitted, this reconstructs exactly the sequential
    ([jobs = 1]) event order — wrapping a {!jsonl} sink in [ordered]
    makes a fixed-seed trace byte-identical at {e any} job count for a
    single campaign. (Campaigns running concurrently — the experiment
    suite at [jobs > 1] — interleave their main lanes
    nondeterministically; [ordered] does not reorder across
    campaigns.) *)

val ring : ?capacity:int -> unit -> t * (unit -> Event.t list)
(** In-memory ring buffer keeping the last [capacity] (default 1024)
    events; the second component returns them oldest-first. Used by
    tests and interactive inspection. *)

val deliver : t -> stamp -> Event.t -> unit
(** Feed one stamped event (what {!Trace.emit} calls). *)

val close : t -> unit

val sync : t -> int option
(** Durably flush the sink and return its byte position, when it has
    one. {!ordered} flushes its reorder buffer first (a no-op at slot
    boundaries, where the buffer is provably empty) and delegates. *)
