(** Process-wide trace dispatcher: fans {!Event} values out to the
    currently subscribed {!Sink}s.

    With no sink subscribed (the default), [on ()] is [false] and
    instrumentation sites skip event construction entirely — the cost
    of disabled tracing is one atomic read per site.

    Domain safety: delivery serializes on a mutex (sink [emit]s never
    run concurrently, so JSONL lines cannot interleave mid-line) and
    the slot/lane contexts are domain-local. Event {e arrival} order
    across domains follows completion order, but every event carries a
    deterministic [(slot, lane, seq)] {!Sink.stamp} — wrap a sink in
    {!Sink.ordered} to restore the sequential order at any job count
    (what the CLI's [--trace] does). *)

type subscription

val subscribe : Sink.t -> subscription
val unsubscribe : subscription -> unit

val on : unit -> bool
(** At least one sink subscribed? Guard event construction with this:
    [if Trace.on () then Trace.emit (Event.… )]. *)

val emit : Event.t -> unit
(** Deliver to every subscribed sink, in subscription order, stamped
    with the current slot/lane context. *)

val event : (unit -> Event.t) -> unit
(** [event make] = [if on () then emit (make ())] — convenience for
    non-hot paths. *)

val with_sink : Sink.t -> (unit -> 'a) -> 'a
(** Subscribe, run, then unsubscribe and {!Sink.close} (even on
    exceptions). *)

val sync : unit -> int option
(** Durably flush every subscribed sink ({!Sink.sync}) and return the
    byte position of the first sink that reports one — in practice the
    campaign's JSONL trace file. Campaign checkpoints record this
    offset so a resumed run can truncate the trace back to the
    checkpointed slot boundary. [None] when no sink is positional. *)

val current_slot : unit -> int option
(** The campaign budget slot currently executing, if any. *)

val with_slot : int -> (unit -> 'a) -> 'a
(** Bracket one budget slot; nested layers pick the slot up via
    {!current_slot} when building their events. *)

val with_lane : ?seq:int -> int -> (unit -> 'a) -> 'a
(** Bracket one task of a parallel fan-out. [lane] must be the task's
    deterministic input index (e.g. the configuration's position in the
    matrix), {e not} anything completion-ordered: events emitted inside
    are stamped [(slot, lane, seq)], [(slot, lane, seq+1)], … with [seq]
    defaulting to 0, so an {!Sink.ordered} sink can restore sequential
    order. A caller that split one historic task into phases passes
    [?seq] to continue the lane's numbering — stamps must stay unique
    per (slot, lane) or ordered-sink output becomes arrival-ordered.
    Nests: an inner lane shadows the outer one for its extent. *)
