(** Process-wide trace dispatcher: fans {!Event} values out to the
    currently subscribed {!Sink}s.

    With no sink subscribed (the default), [on ()] is [false] and
    instrumentation sites skip event construction entirely — the cost
    of disabled tracing is one atomic read per site.

    Domain safety: delivery serializes on a mutex (sink [emit]s never
    run concurrently, so JSONL lines cannot interleave mid-line) and
    the slot context is domain-local. Event {e order} across domains
    follows completion order: traces are byte-reproducible only for
    sequential ([--jobs 1]) runs; event {e content} and every derived
    count are identical at any job count. *)

type subscription

val subscribe : Sink.t -> subscription
val unsubscribe : subscription -> unit

val on : unit -> bool
(** At least one sink subscribed? Guard event construction with this:
    [if Trace.on () then Trace.emit (Event.… )]. *)

val emit : Event.t -> unit
(** Deliver to every subscribed sink, in subscription order. *)

val event : (unit -> Event.t) -> unit
(** [event make] = [if on () then emit (make ())] — convenience for
    non-hot paths. *)

val with_sink : Sink.t -> (unit -> 'a) -> 'a
(** Subscribe, run, then unsubscribe and {!Sink.close} (even on
    exceptions). *)

val current_slot : unit -> int option
(** The campaign budget slot currently executing, if any. *)

val with_slot : int -> (unit -> 'a) -> 'a
(** Bracket one budget slot; nested layers pick the slot up via
    {!current_slot} when building their events. *)
