(* Search-space coverage ledger.

   Cells live in a hashtable keyed by the rendered-name tuple; every
   listing sorts by key, so hash order never leaks into output. The
   rolling window is a newest-first list of (sim_s, strategy, novel)
   hit records pruned on each [record] — recordings arrive in
   nondecreasing simulated time, so pruning as we go keeps exactly the
   entries a from-scratch replay would keep. That makes the serialized
   snapshot a complete continuation state: a ledger restored from
   [of_json] records onwards byte-identically to the original. *)

type key = { kind : string; pair : string; level : string; classes : string }

type cell = {
  hits : int;
  first_slot : int;
  first_sim_s : float;
  strategy : string;
}

type hit = { h_sim_s : float; h_strategy : string; h_novel : bool }

type t = {
  w : float;
  tbl : (key, cell) Hashtbl.t;
  mutable recent : hit list; (* newest first *)
  mutable last_novel : float;
  mutable total_hits : int;
}

let default_window = 600.0

let create ?(window = default_window) () =
  if window <= 0.0 then invalid_arg "Coverage.create: window must be positive";
  { w = window; tbl = Hashtbl.create 64; recent = []; last_novel = 0.0;
    total_hits = 0 }

let window t = t.w

let record t ~slot ~strategy ~sim_s key =
  t.recent <-
    List.filter (fun h -> h.h_sim_s > sim_s -. t.w) t.recent;
  t.total_hits <- t.total_hits + 1;
  let novel = not (Hashtbl.mem t.tbl key) in
  (if novel then begin
     Hashtbl.replace t.tbl key
       { hits = 1; first_slot = slot; first_sim_s = sim_s; strategy };
     t.last_novel <- sim_s
   end
   else
     let c = Hashtbl.find t.tbl key in
     Hashtbl.replace t.tbl key { c with hits = c.hits + 1 });
  t.recent <-
    { h_sim_s = sim_s; h_strategy = strategy; h_novel = novel } :: t.recent;
  novel

let find t key = Hashtbl.find_opt t.tbl key

let cells t =
  Hashtbl.fold (fun k c acc -> (k, c) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let total_cells t = Hashtbl.length t.tbl

let kind_cells t kind =
  Hashtbl.fold (fun k _ acc -> if k.kind = kind then acc + 1 else acc) t.tbl 0

let total_hits t = t.total_hits

let last_novel t = t.last_novel

type strategy_rate = {
  strategy : string;
  window_hits : int;
  window_novel : int;
  hits_per_sim_s : float;
  novel_per_sim_s : float;
}

let strategy_rates t ~now =
  let live = List.filter (fun h -> h.h_sim_s > now -. t.w) t.recent in
  let names =
    List.sort_uniq String.compare (List.map (fun h -> h.h_strategy) live)
  in
  let span = Float.min t.w now in
  List.map
    (fun strategy ->
      let mine = List.filter (fun h -> h.h_strategy = strategy) live in
      let window_hits = List.length mine in
      let window_novel =
        List.length (List.filter (fun h -> h.h_novel) mine)
      in
      let rate n =
        if span <= 0.0 then 0.0 else float_of_int n /. span
      in
      {
        strategy;
        window_hits;
        window_novel;
        hits_per_sim_s = rate window_hits;
        novel_per_sim_s = rate window_novel;
      })
    names

let plateaued t ~now = now -. t.last_novel >= t.w

let plateau_at t ~now =
  if plateaued t ~now then Some (t.last_novel +. t.w) else None

(* ------------------------------------------------------------------ *)
(* Merging *)

(* Total order on hit records: newest first, ties broken by strategy
   then novelty, so the merged window is a deterministic function of
   the two hit multisets, never of list construction order. *)
let compare_hit a b =
  match Float.compare b.h_sim_s a.h_sim_s with
  | 0 -> begin
    match String.compare a.h_strategy b.h_strategy with
    | 0 -> Bool.compare a.h_novel b.h_novel
    | c -> c
  end
  | c -> c

(* First-discovery provenance of a cell seen by both sides: the
   earlier (slot, sim_s, strategy) wins — a total order, so the choice
   is commutative and associative. Fleet shards report disjoint global
   slot ranges, so in practice the slot alone decides. *)
let earlier_cell a b =
  let key c = (c.first_slot, c.first_sim_s, c.strategy) in
  if key a <= key b then a else b

let merge a b =
  let w = Float.max a.w b.w in
  let tbl = Hashtbl.create 64 in
  let add_cells src =
    Hashtbl.iter
      (fun k c ->
        match Hashtbl.find_opt tbl k with
        | None -> Hashtbl.replace tbl k c
        | Some prev ->
          let first = earlier_cell prev c in
          Hashtbl.replace tbl k { first with hits = prev.hits + c.hits })
      src.tbl
  in
  add_cells a;
  add_cells b;
  let hits = List.sort compare_hit (a.recent @ b.recent) in
  (* Re-prune against the merged frontier: the window ends at the
     newest hit either side has seen. Pruning against the running max
     commutes with union, which keeps the merge associative. *)
  let now = match hits with [] -> 0.0 | h :: _ -> h.h_sim_s in
  let recent = List.filter (fun h -> h.h_sim_s > now -. w) hits in
  {
    w;
    tbl;
    recent;
    last_novel = Float.max a.last_novel b.last_novel;
    total_hits = a.total_hits + b.total_hits;
  }

(* ------------------------------------------------------------------ *)
(* JSON snapshot *)

let json_schema = "llm4fp-coverage/1"

let cell_to_json (k, c) =
  Json.Obj
    [ ("kind", Json.String k.kind);
      ("pair", Json.String k.pair);
      ("level", Json.String k.level);
      ("classes", Json.String k.classes);
      ("hits", Json.Int c.hits);
      ("first_slot", Json.Int c.first_slot);
      ("first_sim_s", Json.Float c.first_sim_s);
      ("strategy", Json.String c.strategy) ]

let hit_to_json h =
  Json.Obj
    [ ("sim_s", Json.Float h.h_sim_s);
      ("strategy", Json.String h.h_strategy);
      ("novel", Json.Bool h.h_novel) ]

let to_json t =
  Json.Obj
    [ ("schema", Json.String json_schema);
      ("window", Json.Float t.w);
      ("last_novel", Json.Float t.last_novel);
      ("total_hits", Json.Int t.total_hits);
      ("cells", Json.List (List.map cell_to_json (cells t)));
      ("recent", Json.List (List.rev_map hit_to_json t.recent)) ]

let ( let* ) = Result.bind

let err fmt = Printf.ksprintf (fun m -> Error ("coverage: " ^ m)) fmt

let str name json =
  match Json.member name json with
  | Some (Json.String s) -> Ok s
  | _ -> err "missing or non-string field %S" name

let int name json =
  match Json.member name json with
  | Some (Json.Int n) -> Ok n
  | _ -> err "missing or non-int field %S" name

let num name json =
  match Json.member name json with
  | Some (Json.Float f) -> Ok f
  | Some (Json.Int n) -> Ok (float_of_int n)
  | _ -> err "missing or non-number field %S" name

let bool name json =
  match Json.member name json with
  | Some (Json.Bool b) -> Ok b
  | _ -> err "missing or non-bool field %S" name

let cell_of_json json =
  let* kind = str "kind" json in
  let* pair = str "pair" json in
  let* level = str "level" json in
  let* classes = str "classes" json in
  let* hits = int "hits" json in
  let* first_slot = int "first_slot" json in
  let* first_sim_s = num "first_sim_s" json in
  let* strategy = str "strategy" json in
  Ok ({ kind; pair; level; classes },
      { hits; first_slot; first_sim_s; strategy })

let hit_of_json json =
  let* h_sim_s = num "sim_s" json in
  let* h_strategy = str "strategy" json in
  let* h_novel = bool "novel" json in
  Ok { h_sim_s; h_strategy; h_novel }

let list_field name of_item json =
  match Json.member name json with
  | Some (Json.List items) ->
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        let* v = of_item item in
        Ok (v :: acc))
      (Ok []) items
    |> Result.map List.rev
  | _ -> err "missing or non-list field %S" name

let of_json json =
  let* schema = str "schema" json in
  let* () =
    if schema = json_schema then Ok ()
    else err "unsupported schema %S" schema
  in
  let* w = num "window" json in
  let* () = if w > 0.0 then Ok () else err "non-positive window" in
  let* last_novel = num "last_novel" json in
  let* total_hits = int "total_hits" json in
  let* cell_list = list_field "cells" cell_of_json json in
  let* recent = list_field "recent" hit_of_json json in
  let t =
    { w; tbl = Hashtbl.create 64; recent = List.rev recent; last_novel;
      total_hits }
  in
  let* () =
    List.fold_left
      (fun acc (k, c) ->
        let* () = acc in
        if Hashtbl.mem t.tbl k then
          err "duplicate cell %s/%s/%s/%s" k.kind k.pair k.level k.classes
        else begin
          Hashtbl.replace t.tbl k c;
          Ok ()
        end)
      (Ok ()) cell_list
  in
  Ok t
