(* The typed trace event stream. Events carry plain strings and ints
   (never compiler/harness types — [obs] sits below every pipeline
   library) and deliberately no wall-clock timestamps: every payload
   field is deterministic in the campaign seed, so a fixed-seed trace is
   byte-reproducible. Real time lives only in Span summaries. *)

type t =
  | Campaign_started of {
      approach : string;
      budget : int;
      seed : int;
      precision : string;
    }
  | Slot_started of { slot : int; strategy : string }
  | Generated of {
      slot : int option;
      prompt : string;
      latency_s : float;  (** latency-model seconds, not measured time *)
      prompt_tokens : int;
      output_tokens : int;
    }
  | Parse_failed of { slot : int; reason : string }
  | Validation_failed of { slot : int; reason : string }
  | Compiled of { slot : int option; config : string; ok : bool; work : int }
  | Executed of { slot : int option; config : string; hex : string; ops : int }
  | Compared of {
      slot : int option;
      cross : int;
      within : int;
      inconsistent : int;
    }
  | Inconsistency_found of {
      slot : int option;
      pair : string;
      level : string;
      left_hex : string;
      right_hex : string;
      digits : int;
    }
  | Case_recorded of { slot : int option; fingerprint : string; kind : string }
  | Feedback_added of { slot : int; feedback_size : int }
  | Slot_finished of { slot : int; outcome : string }
  | Campaign_finished of {
      approach : string;
      valid : int;
      generation_failures : int;
      inconsistencies : int;
      comparisons : int;
      sim_seconds : float;
      llm_seconds : float;
    }

let name = function
  | Campaign_started _ -> "campaign_started"
  | Slot_started _ -> "slot_started"
  | Generated _ -> "generated"
  | Parse_failed _ -> "parse_failed"
  | Validation_failed _ -> "validation_failed"
  | Compiled _ -> "compiled"
  | Executed _ -> "executed"
  | Compared _ -> "compared"
  | Inconsistency_found _ -> "inconsistency_found"
  | Case_recorded _ -> "case_recorded"
  | Feedback_added _ -> "feedback_added"
  | Slot_finished _ -> "slot_finished"
  | Campaign_finished _ -> "campaign_finished"

let to_json ev =
  let obj fields = Json.Obj (("event", Json.String (name ev)) :: fields) in
  let slot = function
    | None -> []
    | Some s -> [ ("slot", Json.Int s) ]
  in
  match ev with
  | Campaign_started { approach; budget; seed; precision } ->
    obj
      [ ("approach", Json.String approach);
        ("budget", Json.Int budget);
        ("seed", Json.Int seed);
        ("precision", Json.String precision) ]
  | Slot_started { slot; strategy } ->
    obj [ ("slot", Json.Int slot); ("strategy", Json.String strategy) ]
  | Generated { slot = s; prompt; latency_s; prompt_tokens; output_tokens } ->
    obj
      (slot s
      @ [ ("prompt", Json.String prompt);
          ("latency_s", Json.Float latency_s);
          ("prompt_tokens", Json.Int prompt_tokens);
          ("output_tokens", Json.Int output_tokens) ])
  | Parse_failed { slot; reason } ->
    obj [ ("slot", Json.Int slot); ("reason", Json.String reason) ]
  | Validation_failed { slot; reason } ->
    obj [ ("slot", Json.Int slot); ("reason", Json.String reason) ]
  | Compiled { slot = s; config; ok; work } ->
    obj
      (slot s
      @ [ ("config", Json.String config);
          ("ok", Json.Bool ok);
          ("work", Json.Int work) ])
  | Executed { slot = s; config; hex; ops } ->
    obj
      (slot s
      @ [ ("config", Json.String config);
          ("hex", Json.String hex);
          ("ops", Json.Int ops) ])
  | Compared { slot = s; cross; within; inconsistent } ->
    obj
      (slot s
      @ [ ("cross", Json.Int cross);
          ("within", Json.Int within);
          ("inconsistent", Json.Int inconsistent) ])
  | Inconsistency_found { slot = s; pair; level; left_hex; right_hex; digits }
    ->
    obj
      (slot s
      @ [ ("pair", Json.String pair);
          ("level", Json.String level);
          ("left_hex", Json.String left_hex);
          ("right_hex", Json.String right_hex);
          ("digits", Json.Int digits) ])
  | Case_recorded { slot = s; fingerprint; kind } ->
    obj
      (slot s
      @ [ ("fingerprint", Json.String fingerprint);
          ("kind", Json.String kind) ])
  | Feedback_added { slot; feedback_size } ->
    obj
      [ ("slot", Json.Int slot); ("feedback_size", Json.Int feedback_size) ]
  | Slot_finished { slot; outcome } ->
    obj [ ("slot", Json.Int slot); ("outcome", Json.String outcome) ]
  | Campaign_finished
      {
        approach;
        valid;
        generation_failures;
        inconsistencies;
        comparisons;
        sim_seconds;
        llm_seconds;
      } ->
    obj
      [ ("approach", Json.String approach);
        ("valid", Json.Int valid);
        ("generation_failures", Json.Int generation_failures);
        ("inconsistencies", Json.Int inconsistencies);
        ("comparisons", Json.Int comparisons);
        ("sim_seconds", Json.Float sim_seconds);
        ("llm_seconds", Json.Float llm_seconds) ]

let to_jsonl ev = Json.to_string (to_json ev)
