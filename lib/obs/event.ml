(* The typed trace event stream. Events carry plain strings and ints
   (never compiler/harness types — [obs] sits below every pipeline
   library) and deliberately no wall-clock timestamps: every payload
   field is deterministic in the campaign seed, so a fixed-seed trace is
   byte-reproducible. Real time lives only in Span summaries. *)

type t =
  | Campaign_started of {
      approach : string;
      budget : int;
      seed : int;
      precision : string;
    }
  | Slot_started of { slot : int; strategy : string }
  | Arm_chosen of {
      slot : int;
      arm : string;  (** strategy name of the chosen bandit arm *)
      pulls : int;  (** the arm's pull count before this slot *)
      reward : float;  (** windowed inconsistencies/sim-s at choice time *)
      explore : bool;  (** warmup or epsilon-exploration *)
    }
  | Generated of {
      slot : int option;
      prompt : string;
      latency_s : float;  (** latency-model seconds, not measured time *)
      prompt_tokens : int;
      output_tokens : int;
    }
  | Parse_failed of { slot : int; reason : string }
  | Validation_failed of { slot : int; reason : string }
  | Compiled of { slot : int option; config : string; ok : bool; work : int }
  | Executed of { slot : int option; config : string; hex : string; ops : int }
  | Compared of {
      slot : int option;
      cross : int;
      within : int;
      inconsistent : int;
    }
  | Inconsistency_found of {
      slot : int option;
      pair : string;
      level : string;
      left_hex : string;
      right_hex : string;
      digits : int;
    }
  | Case_recorded of { slot : int option; fingerprint : string; kind : string }
  | Coverage_novel of {
      slot : int;
      kind : string;
      pair : string;
      level : string;
      classes : string;
      strategy : string;
      cells : int;
      sim_s : float;
    }
  | Coverage_hit of {
      slot : int;
      kind : string;
      pair : string;
      level : string;
      classes : string;
      strategy : string;
      hits : int;
    }
  | Feedback_added of { slot : int; feedback_size : int }
  | Slot_finished of { slot : int; outcome : string; sim_s : float }
  | Campaign_finished of {
      approach : string;
      valid : int;
      generation_failures : int;
      inconsistencies : int;
      comparisons : int;
      sim_seconds : float;
      llm_seconds : float;
    }

let name = function
  | Campaign_started _ -> "campaign_started"
  | Slot_started _ -> "slot_started"
  | Arm_chosen _ -> "arm_chosen"
  | Generated _ -> "generated"
  | Parse_failed _ -> "parse_failed"
  | Validation_failed _ -> "validation_failed"
  | Compiled _ -> "compiled"
  | Executed _ -> "executed"
  | Compared _ -> "compared"
  | Inconsistency_found _ -> "inconsistency_found"
  | Case_recorded _ -> "case_recorded"
  | Coverage_novel _ -> "coverage_novel"
  | Coverage_hit _ -> "coverage_hit"
  | Feedback_added _ -> "feedback_added"
  | Slot_finished _ -> "slot_finished"
  | Campaign_finished _ -> "campaign_finished"

let to_json ev =
  let obj fields = Json.Obj (("event", Json.String (name ev)) :: fields) in
  let slot = function
    | None -> []
    | Some s -> [ ("slot", Json.Int s) ]
  in
  match ev with
  | Campaign_started { approach; budget; seed; precision } ->
    obj
      [ ("approach", Json.String approach);
        ("budget", Json.Int budget);
        ("seed", Json.Int seed);
        ("precision", Json.String precision) ]
  | Slot_started { slot; strategy } ->
    obj [ ("slot", Json.Int slot); ("strategy", Json.String strategy) ]
  | Arm_chosen { slot; arm; pulls; reward; explore } ->
    obj
      [ ("slot", Json.Int slot);
        ("arm", Json.String arm);
        ("pulls", Json.Int pulls);
        ("reward", Json.Float reward);
        ("explore", Json.Bool explore) ]
  | Generated { slot = s; prompt; latency_s; prompt_tokens; output_tokens } ->
    obj
      (slot s
      @ [ ("prompt", Json.String prompt);
          ("latency_s", Json.Float latency_s);
          ("prompt_tokens", Json.Int prompt_tokens);
          ("output_tokens", Json.Int output_tokens) ])
  | Parse_failed { slot; reason } ->
    obj [ ("slot", Json.Int slot); ("reason", Json.String reason) ]
  | Validation_failed { slot; reason } ->
    obj [ ("slot", Json.Int slot); ("reason", Json.String reason) ]
  | Compiled { slot = s; config; ok; work } ->
    obj
      (slot s
      @ [ ("config", Json.String config);
          ("ok", Json.Bool ok);
          ("work", Json.Int work) ])
  | Executed { slot = s; config; hex; ops } ->
    obj
      (slot s
      @ [ ("config", Json.String config);
          ("hex", Json.String hex);
          ("ops", Json.Int ops) ])
  | Compared { slot = s; cross; within; inconsistent } ->
    obj
      (slot s
      @ [ ("cross", Json.Int cross);
          ("within", Json.Int within);
          ("inconsistent", Json.Int inconsistent) ])
  | Inconsistency_found { slot = s; pair; level; left_hex; right_hex; digits }
    ->
    obj
      (slot s
      @ [ ("pair", Json.String pair);
          ("level", Json.String level);
          ("left_hex", Json.String left_hex);
          ("right_hex", Json.String right_hex);
          ("digits", Json.Int digits) ])
  | Case_recorded { slot = s; fingerprint; kind } ->
    obj
      (slot s
      @ [ ("fingerprint", Json.String fingerprint);
          ("kind", Json.String kind) ])
  | Coverage_novel { slot; kind; pair; level; classes; strategy; cells; sim_s }
    ->
    obj
      [ ("slot", Json.Int slot);
        ("kind", Json.String kind);
        ("pair", Json.String pair);
        ("level", Json.String level);
        ("classes", Json.String classes);
        ("strategy", Json.String strategy);
        ("cells", Json.Int cells);
        ("sim_s", Json.Float sim_s) ]
  | Coverage_hit { slot; kind; pair; level; classes; strategy; hits } ->
    obj
      [ ("slot", Json.Int slot);
        ("kind", Json.String kind);
        ("pair", Json.String pair);
        ("level", Json.String level);
        ("classes", Json.String classes);
        ("strategy", Json.String strategy);
        ("hits", Json.Int hits) ]
  | Feedback_added { slot; feedback_size } ->
    obj
      [ ("slot", Json.Int slot); ("feedback_size", Json.Int feedback_size) ]
  | Slot_finished { slot; outcome; sim_s } ->
    obj
      [ ("slot", Json.Int slot);
        ("outcome", Json.String outcome);
        ("sim_s", Json.Float sim_s) ]
  | Campaign_finished
      {
        approach;
        valid;
        generation_failures;
        inconsistencies;
        comparisons;
        sim_seconds;
        llm_seconds;
      } ->
    obj
      [ ("approach", Json.String approach);
        ("valid", Json.Int valid);
        ("generation_failures", Json.Int generation_failures);
        ("inconsistencies", Json.Int inconsistencies);
        ("comparisons", Json.Int comparisons);
        ("sim_seconds", Json.Float sim_seconds);
        ("llm_seconds", Json.Float llm_seconds) ]

let to_jsonl ev = Json.to_string (to_json ev)

(* ------------------------------------------------------------------ *)
(* Decoding: the inverse of [to_json], used by the trace follower and
   the [llm4fp trace] query subcommand. Field lookup is by name, so the
   decoder tolerates field reordering; it rejects wrong types and
   missing fields with a message naming them. *)

let of_json json =
  let ( let* ) = Result.bind in
  let str key =
    match Json.member key json with
    | Some (Json.String s) -> Ok s
    | _ -> Error (Printf.sprintf "missing or non-string field %S" key)
  in
  let int key =
    match Json.member key json with
    | Some (Json.Int n) -> Ok n
    | _ -> Error (Printf.sprintf "missing or non-int field %S" key)
  in
  (* Whole floats serialize as integers (shortest round-trip form), and
     non-finite floats serialize as the strings "nan"/"inf"/"-inf". *)
  let float key =
    match Json.member key json with
    | Some (Json.Float f) -> Ok f
    | Some (Json.Int n) -> Ok (float_of_int n)
    | Some (Json.String "nan") -> Ok Float.nan
    | Some (Json.String "inf") -> Ok Float.infinity
    | Some (Json.String "-inf") -> Ok Float.neg_infinity
    | _ -> Error (Printf.sprintf "missing or non-number field %S" key)
  in
  let bool key =
    match Json.member key json with
    | Some (Json.Bool b) -> Ok b
    | _ -> Error (Printf.sprintf "missing or non-bool field %S" key)
  in
  let slot_opt =
    match Json.member "slot" json with
    | Some (Json.Int n) -> Some n
    | _ -> None
  in
  let* kind = str "event" in
  match kind with
  | "campaign_started" ->
    let* approach = str "approach" in
    let* budget = int "budget" in
    let* seed = int "seed" in
    let* precision = str "precision" in
    Ok (Campaign_started { approach; budget; seed; precision })
  | "slot_started" ->
    let* slot = int "slot" in
    let* strategy = str "strategy" in
    Ok (Slot_started { slot; strategy })
  | "arm_chosen" ->
    let* slot = int "slot" in
    let* arm = str "arm" in
    let* pulls = int "pulls" in
    let* reward = float "reward" in
    let* explore = bool "explore" in
    Ok (Arm_chosen { slot; arm; pulls; reward; explore })
  | "generated" ->
    let* prompt = str "prompt" in
    let* latency_s = float "latency_s" in
    let* prompt_tokens = int "prompt_tokens" in
    let* output_tokens = int "output_tokens" in
    Ok
      (Generated
         { slot = slot_opt; prompt; latency_s; prompt_tokens; output_tokens })
  | "parse_failed" ->
    let* slot = int "slot" in
    let* reason = str "reason" in
    Ok (Parse_failed { slot; reason })
  | "validation_failed" ->
    let* slot = int "slot" in
    let* reason = str "reason" in
    Ok (Validation_failed { slot; reason })
  | "compiled" ->
    let* config = str "config" in
    let* ok = bool "ok" in
    let* work = int "work" in
    Ok (Compiled { slot = slot_opt; config; ok; work })
  | "executed" ->
    let* config = str "config" in
    let* hex = str "hex" in
    let* ops = int "ops" in
    Ok (Executed { slot = slot_opt; config; hex; ops })
  | "compared" ->
    let* cross = int "cross" in
    let* within = int "within" in
    let* inconsistent = int "inconsistent" in
    Ok (Compared { slot = slot_opt; cross; within; inconsistent })
  | "inconsistency_found" ->
    let* pair = str "pair" in
    let* level = str "level" in
    let* left_hex = str "left_hex" in
    let* right_hex = str "right_hex" in
    let* digits = int "digits" in
    Ok
      (Inconsistency_found
         { slot = slot_opt; pair; level; left_hex; right_hex; digits })
  | "case_recorded" ->
    let* fingerprint = str "fingerprint" in
    let* kind = str "kind" in
    Ok (Case_recorded { slot = slot_opt; fingerprint; kind })
  | "coverage_novel" ->
    let* slot = int "slot" in
    let* kind = str "kind" in
    let* pair = str "pair" in
    let* level = str "level" in
    let* classes = str "classes" in
    let* strategy = str "strategy" in
    let* cells = int "cells" in
    let* sim_s = float "sim_s" in
    Ok
      (Coverage_novel
         { slot; kind; pair; level; classes; strategy; cells; sim_s })
  | "coverage_hit" ->
    let* slot = int "slot" in
    let* kind = str "kind" in
    let* pair = str "pair" in
    let* level = str "level" in
    let* classes = str "classes" in
    let* strategy = str "strategy" in
    let* hits = int "hits" in
    Ok (Coverage_hit { slot; kind; pair; level; classes; strategy; hits })
  | "feedback_added" ->
    let* slot = int "slot" in
    let* feedback_size = int "feedback_size" in
    Ok (Feedback_added { slot; feedback_size })
  | "slot_finished" ->
    let* slot = int "slot" in
    let* outcome = str "outcome" in
    let* sim_s = float "sim_s" in
    Ok (Slot_finished { slot; outcome; sim_s })
  | "campaign_finished" ->
    let* approach = str "approach" in
    let* valid = int "valid" in
    let* generation_failures = int "generation_failures" in
    let* inconsistencies = int "inconsistencies" in
    let* comparisons = int "comparisons" in
    let* sim_seconds = float "sim_seconds" in
    let* llm_seconds = float "llm_seconds" in
    Ok
      (Campaign_finished
         {
           approach;
           valid;
           generation_failures;
           inconsistencies;
           comparisons;
           sim_seconds;
           llm_seconds;
         })
  | other -> Error (Printf.sprintf "unknown event kind %S" other)

let of_jsonl line =
  match Json.parse line with
  | Error msg -> Error msg
  | Ok json -> of_json json

(* ------------------------------------------------------------------ *)
(* Uniform field access for trace queries. *)

let slot = function
  | Campaign_started _ | Campaign_finished _ -> None
  | Slot_started { slot; _ }
  | Arm_chosen { slot; _ }
  | Parse_failed { slot; _ }
  | Validation_failed { slot; _ }
  | Coverage_novel { slot; _ }
  | Coverage_hit { slot; _ }
  | Feedback_added { slot; _ }
  | Slot_finished { slot; _ } ->
    Some slot
  | Generated { slot; _ }
  | Compiled { slot; _ }
  | Executed { slot; _ }
  | Compared { slot; _ }
  | Inconsistency_found { slot; _ }
  | Case_recorded { slot; _ } ->
    slot

let config = function
  | Compiled { config; _ } | Executed { config; _ } -> Some config
  | _ -> None

let seconds f = Json.float_repr f ^ "s"

let summary = function
  | Campaign_started { approach; budget; seed; precision } ->
    Printf.sprintf "%s budget=%d seed=%d %s" approach budget seed precision
  | Slot_started { strategy; _ } -> "strategy=" ^ strategy
  | Arm_chosen { arm; pulls; reward; explore; _ } ->
    Printf.sprintf "arm=%s pulls=%d reward=%s/s %s" arm pulls
      (Json.float_repr reward)
      (if explore then "explore" else "exploit")
  | Generated { prompt; latency_s; prompt_tokens; output_tokens; _ } ->
    Printf.sprintf "prompt=%s latency=%s tokens=%d/%d" prompt
      (seconds latency_s) prompt_tokens output_tokens
  | Parse_failed { reason; _ } -> reason
  | Validation_failed { reason; _ } -> reason
  | Compiled { config; ok; work; _ } ->
    Printf.sprintf "%s %s work=%d" config (if ok then "ok" else "FAILED") work
  | Executed { config; hex; ops; _ } ->
    Printf.sprintf "%s %s ops=%d" config hex ops
  | Compared { cross; within; inconsistent; _ } ->
    Printf.sprintf "cross=%d within=%d inconsistent=%d" cross within
      inconsistent
  | Inconsistency_found { pair; level; left_hex; right_hex; digits; _ } ->
    Printf.sprintf "%s @ %s: %s != %s (digits %d)" pair level left_hex
      right_hex digits
  | Case_recorded { fingerprint; kind; _ } ->
    Printf.sprintf "%s %s" fingerprint kind
  | Coverage_novel { kind; pair; level; classes; strategy; cells; sim_s; _ } ->
    Printf.sprintf "%s %s @ %s %s strategy=%s cells=%d sim=%s" kind pair level
      classes strategy cells (seconds sim_s)
  | Coverage_hit { kind; pair; level; classes; strategy; hits; _ } ->
    Printf.sprintf "%s %s @ %s %s strategy=%s hits=%d" kind pair level classes
      strategy hits
  | Feedback_added { feedback_size; _ } ->
    Printf.sprintf "size=%d" feedback_size
  | Slot_finished { outcome; sim_s; _ } ->
    Printf.sprintf "%s sim=%s" outcome (seconds sim_s)
  | Campaign_finished
      {
        approach;
        valid;
        generation_failures;
        inconsistencies;
        comparisons;
        sim_seconds;
        llm_seconds;
      } ->
    Printf.sprintf
      "%s valid=%d failures=%d inconsistencies=%d comparisons=%d sim=%s \
       llm=%s"
      approach valid generation_failures inconsistencies comparisons
      (seconds sim_seconds) (seconds llm_seconds)
