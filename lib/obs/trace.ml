(* Process-wide event dispatcher. Instrumentation sites guard with
   [on ()] (a single atomic read when no sink is subscribed) so that
   event construction costs nothing in the default, un-traced
   configuration.

   Domain safety: the sink list lives in an [Atomic.t] so [on ()] stays
   lock-free; subscription changes and event delivery serialize on one
   mutex, so a sink's [emit] is never invoked concurrently (JSONL lines
   from pool workers cannot interleave mid-line). Event *arrival* order
   across domains follows completion order, but each event is stamped
   with its deterministic (slot, lane, seq) coordinates so an ordered
   sink (Sink.ordered) can restore the sequential order at any job
   count. *)

type subscription = int

let sinks : (subscription * Sink.t) list Atomic.t = Atomic.make []
let lock = Mutex.create ()
let next_id = ref 0

let subscribe sink =
  Mutex.lock lock;
  incr next_id;
  let id = !next_id in
  Atomic.set sinks (Atomic.get sinks @ [ (id, sink) ]);
  Mutex.unlock lock;
  id

let unsubscribe id =
  Mutex.lock lock;
  Atomic.set sinks (List.filter (fun (i, _) -> i <> id) (Atomic.get sinks));
  Mutex.unlock lock

let on () = Atomic.get sinks <> []

(* Slot context: the campaign loop brackets each budget slot so that
   events emitted from layers that do not know the slot number (compiler
   driver, difftest) can still be correlated. The context is
   domain-local: parallel sections re-establish it inside each task
   (see Difftest.Run), and concurrent campaigns on different domains
   keep independent slots. *)

let slot_ctx : int option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current_slot () = Domain.DLS.get slot_ctx

let with_slot slot f =
  let saved = Domain.DLS.get slot_ctx in
  Domain.DLS.set slot_ctx (Some slot);
  Fun.protect ~finally:(fun () -> Domain.DLS.set slot_ctx saved) f

(* Lane context: a parallel fan-out brackets each task with its input
   index so the task's events carry a deterministic intra-slot sort key
   (the per-lane sequence counter restarts at [seq], default 0, for
   every task). [?seq] lets a caller that split one historic task into
   phases re-enter the lane and continue its numbering — stamps must
   stay unique per (slot, lane) or ordered sinks lose determinism. *)

let lane_ctx : (int * int ref) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let with_lane ?(seq = 0) lane f =
  let saved = Domain.DLS.get lane_ctx in
  Domain.DLS.set lane_ctx (Some (lane, ref seq));
  Fun.protect ~finally:(fun () -> Domain.DLS.set lane_ctx saved) f

let current_stamp () =
  let slot = match Domain.DLS.get slot_ctx with Some s -> s | None -> -1 in
  match Domain.DLS.get lane_ctx with
  | None -> { Sink.slot; lane = -1; seq = 0 }
  | Some (lane, next_seq) ->
    let seq = !next_seq in
    incr next_seq;
    { Sink.slot; lane; seq }

let emit ev =
  let stamp = current_stamp () in
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      List.iter (fun (_, s) -> Sink.deliver s stamp ev) (Atomic.get sinks))

let event make = if on () then emit (make ())

let sync () =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      List.fold_left
        (fun acc (_, s) ->
          match Sink.sync s with Some _ as p when acc = None -> p | _ -> acc)
        None (Atomic.get sinks))

let with_sink sink f =
  let id = subscribe sink in
  Fun.protect
    ~finally:(fun () ->
      unsubscribe id;
      Sink.close sink)
    f
