(* Process-wide event dispatcher. Instrumentation sites guard with
   [on ()] (a single atomic read when no sink is subscribed) so that
   event construction costs nothing in the default, un-traced
   configuration.

   Domain safety: the sink list lives in an [Atomic.t] so [on ()] stays
   lock-free; subscription changes and event delivery serialize on one
   mutex, so a sink's [emit] is never invoked concurrently (JSONL lines
   from pool workers cannot interleave mid-line). Event *order* across
   domains follows completion order — byte-identical traces are
   guaranteed only for sequential (jobs = 1) runs. *)

type subscription = int

let sinks : (subscription * Sink.t) list Atomic.t = Atomic.make []
let lock = Mutex.create ()
let next_id = ref 0

let subscribe sink =
  Mutex.lock lock;
  incr next_id;
  let id = !next_id in
  Atomic.set sinks (Atomic.get sinks @ [ (id, sink) ]);
  Mutex.unlock lock;
  id

let unsubscribe id =
  Mutex.lock lock;
  Atomic.set sinks (List.filter (fun (i, _) -> i <> id) (Atomic.get sinks));
  Mutex.unlock lock

let on () = Atomic.get sinks <> []

let emit ev =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () -> List.iter (fun (_, s) -> s.Sink.emit ev) (Atomic.get sinks))

let event make = if on () then emit (make ())

let with_sink sink f =
  let id = subscribe sink in
  Fun.protect
    ~finally:(fun () ->
      unsubscribe id;
      Sink.close sink)
    f

(* Slot context: the campaign loop brackets each budget slot so that
   events emitted from layers that do not know the slot number (compiler
   driver, difftest) can still be correlated. The context is
   domain-local: parallel sections re-establish it inside each task
   (see Difftest.Run), and concurrent campaigns on different domains
   keep independent slots. *)

let slot_ctx : int option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current_slot () = Domain.DLS.get slot_ctx

let with_slot slot f =
  let saved = Domain.DLS.get slot_ctx in
  Domain.DLS.set slot_ctx (Some slot);
  Fun.protect ~finally:(fun () -> Domain.DLS.set slot_ctx saved) f
