(* Process-wide event dispatcher. Instrumentation sites guard with
   [on ()] (a single branch when no sink is subscribed) so that event
   construction costs nothing in the default, un-traced configuration. *)

type subscription = int

let sinks : (subscription * Sink.t) list ref = ref []
let next_id = ref 0

let subscribe sink =
  incr next_id;
  sinks := !sinks @ [ (!next_id, sink) ];
  !next_id

let unsubscribe id = sinks := List.filter (fun (i, _) -> i <> id) !sinks

let on () = !sinks <> []

let emit ev = List.iter (fun (_, s) -> s.Sink.emit ev) !sinks

let event make = if on () then emit (make ())

let with_sink sink f =
  let id = subscribe sink in
  Fun.protect
    ~finally:(fun () ->
      unsubscribe id;
      Sink.close sink)
    f

(* Slot context: the campaign loop brackets each budget slot so that
   events emitted from layers that do not know the slot number (compiler
   driver, difftest) can still be correlated. *)

let slot_ctx = ref None

let current_slot () = !slot_ctx

let with_slot slot f =
  let saved = !slot_ctx in
  slot_ctx := Some slot;
  Fun.protect ~finally:(fun () -> slot_ctx := saved) f
