(* Process-wide metrics registry.

   Instruments are created once (get-or-create by name, typically at
   module initialization) and updated through lock-free atomics, so the
   always-on cost of a counter bump is one fetch-and-add — cheap enough
   to leave enabled unconditionally, and safe to bump from any pool
   domain (see {!Exec.Pool}): parallel runs produce exactly the totals
   of the equivalent sequential run. Histograms serialize on a
   per-instrument mutex (they sit off the per-op hot path). The
   registry itself is mutex-guarded; snapshots are name-sorted, making
   the rendered table deterministic. *)

type counter = { c_name : string; count : int Atomic.t }
type gauge = { g_name : string; value : float Atomic.t }

type histogram = {
  h_name : string;
  h_lock : Mutex.t;
  bounds : float array;  (* strictly increasing upper bounds *)
  counts : int array;    (* length = Array.length bounds + 1 (overflow) *)
  mutable observations : int;
  mutable sum : float;
}

type instrument = C of counter | G of gauge | H of histogram

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let default_buckets = [| 0.001; 0.01; 0.1; 1.0; 10.0; 100.0 |]

let get_or_create name project create =
  Mutex.lock registry_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_lock)
    (fun () ->
      match Hashtbl.find_opt registry name with
      | Some existing -> begin
        match project existing with
        | Some v -> v
        | None ->
          invalid_arg
            (Printf.sprintf
               "Obs.Metrics: %S already registered with another kind" name)
      end
      | None ->
        let v, wrapped = create () in
        Hashtbl.replace registry name wrapped;
        v)

let counter name =
  get_or_create name
    (function C c -> Some c | _ -> None)
    (fun () ->
      let c = { c_name = name; count = Atomic.make 0 } in
      (c, C c))

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.count by)
let counter_value c = Atomic.get c.count
let counter_name c = c.c_name

let gauge name =
  get_or_create name
    (function G g -> Some g | _ -> None)
    (fun () ->
      let g = { g_name = name; value = Atomic.make 0.0 } in
      (g, G g))

let set g v = Atomic.set g.value v

let rec add g v =
  let cur = Atomic.get g.value in
  if not (Atomic.compare_and_set g.value cur (cur +. v)) then add g v

let gauge_value g = Atomic.get g.value
let gauge_name g = g.g_name

let histogram ?(buckets = default_buckets) name =
  let ok = ref true in
  Array.iteri
    (fun i b -> if i > 0 && b <= buckets.(i - 1) then ok := false)
    buckets;
  if (not !ok) || Array.length buckets = 0 then
    invalid_arg "Obs.Metrics.histogram: buckets must be strictly increasing";
  get_or_create name
    (function H h -> Some h | _ -> None)
    (fun () ->
      let h =
        {
          h_name = name;
          h_lock = Mutex.create ();
          bounds = Array.copy buckets;
          counts = Array.make (Array.length buckets + 1) 0;
          observations = 0;
          sum = 0.0;
        }
      in
      (h, H h))

let observe h x =
  let n = Array.length h.bounds in
  let rec slot i = if i >= n || x <= h.bounds.(i) then i else slot (i + 1) in
  let i = slot 0 in
  Mutex.lock h.h_lock;
  h.counts.(i) <- h.counts.(i) + 1;
  h.observations <- h.observations + 1;
  h.sum <- h.sum +. x;
  Mutex.unlock h.h_lock

let histogram_count h =
  Mutex.lock h.h_lock;
  let n = h.observations in
  Mutex.unlock h.h_lock;
  n

let histogram_name h = h.h_name

(* Prometheus-style bucket quantile: find the bucket holding rank
   ceil(q*n) and interpolate linearly between its bounds. The overflow
   bucket has no upper bound, so it reports the last finite one. *)
let percentile_of ~bounds ~counts q =
  if q <= 0.0 || q > 1.0 then
    invalid_arg "Obs.Metrics.percentile_of: q must be in (0, 1]";
  let n = Array.fold_left ( + ) 0 counts in
  if n = 0 then Float.nan
  else begin
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    let rank = if rank < 1 then 1 else rank in
    let n_bounds = Array.length bounds in
    let rec find i cum_before =
      if i >= Array.length counts - 1 then `Overflow
      else
        let cum = cum_before + counts.(i) in
        if rank <= cum then `Bucket (i, cum_before) else find (i + 1) cum
    in
    match find 0 0 with
    | `Overflow -> bounds.(n_bounds - 1)
    | `Bucket (i, cum_before) ->
      let lower = if i = 0 then 0.0 else bounds.(i - 1) in
      let upper = bounds.(i) in
      let within = float_of_int (rank - cum_before) in
      lower +. ((upper -. lower) *. within /. float_of_int counts.(i))
  end

let histogram_percentile h q =
  Mutex.lock h.h_lock;
  let counts = Array.copy h.counts in
  Mutex.unlock h.h_lock;
  percentile_of ~bounds:h.bounds ~counts q

(* ------------------------------------------------------------------ *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      bounds : float array;
      counts : int array;
      count : int;
      sum : float;
    }

let snapshot () =
  Mutex.lock registry_lock;
  let entries =
    Hashtbl.fold
      (fun name instrument acc ->
        let v =
          match instrument with
          | C c -> Counter (Atomic.get c.count)
          | G g -> Gauge (Atomic.get g.value)
          | H h ->
            Mutex.lock h.h_lock;
            let v =
              Histogram
                {
                  bounds = Array.copy h.bounds;
                  counts = Array.copy h.counts;
                  count = h.observations;
                  sum = h.sum;
                }
            in
            Mutex.unlock h.h_lock;
            v
        in
        (name, v) :: acc)
      registry []
  in
  Mutex.unlock registry_lock;
  List.sort (fun (a, _) (b, _) -> String.compare a b) entries

let reset () =
  Mutex.lock registry_lock;
  Hashtbl.iter
    (fun _ instrument ->
      match instrument with
      | C c -> Atomic.set c.count 0
      | G g -> Atomic.set g.value 0.0
      | H h ->
        Mutex.lock h.h_lock;
        Array.fill h.counts 0 (Array.length h.counts) 0;
        h.observations <- 0;
        h.sum <- 0.0;
        Mutex.unlock h.h_lock)
    registry;
  Mutex.unlock registry_lock

let render_value = function
  | Counter n -> ("counter", Report.Table.commas n)
  | Gauge v -> ("gauge", Printf.sprintf "%.6g" v)
  | Histogram { bounds; counts; count; sum } ->
    let buckets =
      Array.to_list
        (Array.mapi
           (fun i b -> Printf.sprintf "le%.3g:%d" b counts.(i))
           bounds)
      @ [ Printf.sprintf "inf:%d" counts.(Array.length bounds) ]
    in
    let quantiles =
      (* An empty histogram has no quantiles: percentile_of returns nan
         and the dump shows "-" rather than a misleading number. *)
      let p q =
        let v = percentile_of ~bounds ~counts q in
        if Float.is_nan v then "-" else Printf.sprintf "%.6g" v
      in
      Printf.sprintf "  p50=%s p95=%s p99=%s" (p 0.50) (p 0.95) (p 0.99)
    in
    ( "histogram",
      Printf.sprintf "n=%d sum=%.6g  %s%s" count sum
        (String.concat " " buckets)
        quantiles )

let render_percentiles () =
  let rows =
    List.filter_map
      (fun (name, v) ->
        match v with
        | Histogram { bounds; counts; count; _ } ->
          let p q =
            let v = percentile_of ~bounds ~counts q in
            if Float.is_nan v then "-" else Printf.sprintf "%.6g" v
          in
          Some [ name; string_of_int count; p 0.50; p 0.95; p 0.99 ]
        | _ -> None)
      (snapshot ())
  in
  Report.Table.render ~title:"histogram percentiles"
    ~header:[ "histogram"; "n"; "p50"; "p95"; "p99" ]
    rows

let render_table () =
  let rows =
    List.map
      (fun (name, v) ->
        let kind, rendered = render_value v in
        [ name; kind; rendered ])
      (snapshot ())
  in
  Report.Table.render ~title:"metrics registry"
    ~header:[ "metric"; "type"; "value" ]
    ~align:[ Report.Table.Left; Report.Table.Left; Report.Table.Left ]
    rows
