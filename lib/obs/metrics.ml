(* Process-wide metrics registry.

   Instruments are created once (get-or-create by name, typically at
   module initialization) and updated through direct mutable-field
   writes, so the always-on cost of a counter bump is one integer add —
   cheap enough to leave enabled unconditionally. Snapshots are
   name-sorted, making the rendered table deterministic. *)

type counter = { c_name : string; mutable count : int }
type gauge = { g_name : string; mutable value : float }

type histogram = {
  h_name : string;
  bounds : float array;  (* strictly increasing upper bounds *)
  counts : int array;    (* length = Array.length bounds + 1 (overflow) *)
  mutable observations : int;
  mutable sum : float;
}

type instrument = C of counter | G of gauge | H of histogram

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64

let default_buckets = [| 0.001; 0.01; 0.1; 1.0; 10.0; 100.0 |]

let get_or_create name project create =
  match Hashtbl.find_opt registry name with
  | Some existing -> begin
    match project existing with
    | Some v -> v
    | None ->
      invalid_arg
        (Printf.sprintf "Obs.Metrics: %S already registered with another kind"
           name)
  end
  | None ->
    let v, wrapped = create () in
    Hashtbl.replace registry name wrapped;
    v

let counter name =
  get_or_create name
    (function C c -> Some c | _ -> None)
    (fun () ->
      let c = { c_name = name; count = 0 } in
      (c, C c))

let incr ?(by = 1) c = c.count <- c.count + by
let counter_value c = c.count
let counter_name c = c.c_name

let gauge name =
  get_or_create name
    (function G g -> Some g | _ -> None)
    (fun () ->
      let g = { g_name = name; value = 0.0 } in
      (g, G g))

let set g v = g.value <- v
let add g v = g.value <- g.value +. v
let gauge_value g = g.value
let gauge_name g = g.g_name

let histogram ?(buckets = default_buckets) name =
  let ok = ref true in
  Array.iteri
    (fun i b -> if i > 0 && b <= buckets.(i - 1) then ok := false)
    buckets;
  if (not !ok) || Array.length buckets = 0 then
    invalid_arg "Obs.Metrics.histogram: buckets must be strictly increasing";
  get_or_create name
    (function H h -> Some h | _ -> None)
    (fun () ->
      let h =
        {
          h_name = name;
          bounds = Array.copy buckets;
          counts = Array.make (Array.length buckets + 1) 0;
          observations = 0;
          sum = 0.0;
        }
      in
      (h, H h))

let observe h x =
  let n = Array.length h.bounds in
  let rec slot i = if i >= n || x <= h.bounds.(i) then i else slot (i + 1) in
  let i = slot 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.observations <- h.observations + 1;
  h.sum <- h.sum +. x

let histogram_count h = h.observations
let histogram_name h = h.h_name

(* ------------------------------------------------------------------ *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      bounds : float array;
      counts : int array;
      count : int;
      sum : float;
    }

let snapshot () =
  Hashtbl.fold
    (fun name instrument acc ->
      let v =
        match instrument with
        | C c -> Counter c.count
        | G g -> Gauge g.value
        | H h ->
          Histogram
            {
              bounds = Array.copy h.bounds;
              counts = Array.copy h.counts;
              count = h.observations;
              sum = h.sum;
            }
      in
      (name, v) :: acc)
    registry []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset () =
  Hashtbl.iter
    (fun _ instrument ->
      match instrument with
      | C c -> c.count <- 0
      | G g -> g.value <- 0.0
      | H h ->
        Array.fill h.counts 0 (Array.length h.counts) 0;
        h.observations <- 0;
        h.sum <- 0.0)
    registry

let render_value = function
  | Counter n -> ("counter", Report.Table.commas n)
  | Gauge v -> ("gauge", Printf.sprintf "%.6g" v)
  | Histogram { bounds; counts; count; sum } ->
    let buckets =
      Array.to_list
        (Array.mapi
           (fun i b -> Printf.sprintf "le%.3g:%d" b counts.(i))
           bounds)
      @ [ Printf.sprintf "inf:%d" counts.(Array.length bounds) ]
    in
    ( "histogram",
      Printf.sprintf "n=%d sum=%.6g  %s" count sum
        (String.concat " " buckets) )

let render_table () =
  let rows =
    List.map
      (fun (name, v) ->
        let kind, rendered = render_value v in
        [ name; kind; rendered ])
      (snapshot ())
  in
  Report.Table.render ~title:"metrics registry"
    ~header:[ "metric"; "type"; "value" ]
    ~align:[ Report.Table.Left; Report.Table.Left; Report.Table.Left ]
    rows
