(** Folds the typed trace-event stream into the flight deck's
    {!Report.Flightdeck.view}.

    [apply] is pure, so feeding the same events — live {!Follow}
    batches or a one-shot replay read — always yields the same view;
    with {!Report.Flightdeck.render} being pure too, replaying a
    fixed-seed trace renders a byte-identical frame. A
    [Campaign_started] event resets the view (a rotated trace file
    restarts the deck cleanly). *)

val apply : Report.Flightdeck.view -> Event.t -> Report.Flightdeck.view

val of_events : Event.t list -> Report.Flightdeck.view
(** [List.fold_left apply Report.Flightdeck.empty]. *)
