(* Incremental JSONL trace follower.

   A follower owns nothing but a path and a committed byte offset. Each
   [poll] opens the file fresh (so a writer replacing the file under us
   can never wedge a stale descriptor), reads from the committed offset
   to the current end, and consumes only *complete* lines: the offset
   advances past the last newline seen, so a partially-written final
   line — the normal state of a trace file mid-fsync — is simply left
   for the next poll. A file that shrank below the committed offset was
   rotated or truncated; the follower resets to the start and reports
   it, letting the consumer discard its derived state.

   This is the streaming-progress protocol the future fleet [serve]
   mode reuses: the durable byte offsets here are the same
   [Obs.Sink.sync] positions campaign checkpoints record, so a follower
   attached to a live campaign observes exactly the durable prefix of
   the trace at every poll. *)

type t = { path : string; mutable pos : int }

type batch = { events : Event.t list; rotated : bool }

let create ~path = { path; pos = 0 }

let path t = t.path

let offset t = t.pos

let decode_lines t lines =
  let rec go acc n = function
    | [] -> Ok (List.rev acc)
    | "" :: rest -> go acc (n + 1) rest (* blank line: skip, keep counting *)
    | line :: rest -> begin
      match Event.of_jsonl line with
      | Ok ev -> go (ev :: acc) (n + 1) rest
      | Error msg ->
        Error (Printf.sprintf "%s: bad trace line %d past offset %d: %s"
                 t.path n t.pos msg)
    end
  in
  go [] 1 lines

let poll t =
  match open_in_bin t.path with
  | exception Sys_error _ ->
    (* Not created yet (or momentarily absent mid-rotation): nothing to
       report, keep waiting. *)
    Ok { events = []; rotated = false }
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let size = in_channel_length ic in
        let rotated = size < t.pos in
        if rotated then t.pos <- 0;
        if size = t.pos then Ok { events = []; rotated }
        else begin
          seek_in ic t.pos;
          let chunk = really_input_string ic (size - t.pos) in
          match String.rindex_opt chunk '\n' with
          | None ->
            (* Only a partial line so far: consume nothing. *)
            Ok { events = []; rotated }
          | Some last_nl -> begin
            let complete = String.sub chunk 0 last_nl in
            match decode_lines t (String.split_on_char '\n' complete) with
            | Error _ as e -> e
            | Ok events ->
              t.pos <- t.pos + last_nl + 1;
              Ok { events; rotated }
          end
        end)

(* Multi-file following: one follower per shard trace, polled in the
   fixed path order given at creation. A shard that has not opened its
   trace yet (the supervisor attaches before the child's first flush)
   simply contributes an empty batch — [poll] already treats a missing
   file as "keep waiting", and the aggregate inherits that tolerance
   path by path rather than failing the whole fleet poll. *)
module Multi = struct
  type nonrec t = t array

  let create ~paths = Array.of_list (List.map (fun path -> create ~path) paths)

  let paths t = Array.to_list (Array.map (fun f -> f.path) t)

  let poll t =
    let rec go acc i =
      if i = Array.length t then Ok (List.rev acc)
      else
        match poll t.(i) with
        | Error _ as e -> e
        | Ok batch -> go ((t.(i).path, batch) :: acc) (i + 1)
    in
    go [] 0
end

let read_all ~path =
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "%s: no such trace file" path)
  else begin
    let t = create ~path in
    match poll t with
    | Error _ as e -> e
    | Ok { events; _ } -> Ok events
  end
