(** Timed spans for profiling the pipeline's hot paths.

    Disabled (the default), {!with_span} adds one branch around the
    thunk. Enabled ([set_enabled true]), each span records real
    wall-clock seconds and — when a simulated clock is attached — the
    simulated seconds elapsed inside it, aggregated per label as
    count / total / mean / max. Spans nest freely; a nested span's time
    is accounted under its own label {e and} inside its enclosing
    span's.

    Real time appears only here, never in trace events — span summaries
    are the one deliberately non-deterministic surface.

    Domain safety: each domain aggregates into its own table (lock-free
    recording under the {!Exec.Pool} workers) and {!summary} merges the
    per-domain tables at read time; the attached simulated clock is
    domain-local as well. Take summaries after parallel sections have
    drained — pool workers idle between batches do not record. *)

val set_enabled : bool -> unit
val is_enabled : unit -> bool

val set_clock : Util.Sim_clock.t option -> unit
(** Attach the simulated clock whose delta each span should also
    capture (the campaign runner attaches its own for the duration of
    a run). The attachment is domain-local. *)

val with_clock : Util.Sim_clock.t -> (unit -> 'a) -> 'a
(** Scoped {!set_clock} with restore (exception-safe). *)

val charge_sim : float -> unit
(** Charge simulated seconds to the attached clock, if any (no-op
    otherwise). Lets layers that cannot see the campaign's clock —
    the compiler driver's retry backoff — account deterministic
    modelled costs. Domain-local, like the attachment itself. *)

val with_span : string -> (unit -> 'a) -> 'a
(** Run the thunk, attributing its duration to [label]. Records on
    exceptions too. *)

type row = {
  label : string;
  count : int;
  total_s : float;
  mean_s : float;
  max_s : float;
  sim_s : float;
}

val summary : unit -> row list
(** Per-label aggregates, sorted by label. *)

val render : unit -> string
(** The summary as a {!Report.Table}. *)

val reset : unit -> unit
