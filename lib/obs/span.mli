(** Timed spans for profiling the pipeline's hot paths.

    Disabled (the default), {!with_span} adds one branch around the
    thunk. Enabled ([set_enabled true]), each span records real
    wall-clock seconds and — when a simulated clock is attached — the
    simulated seconds elapsed inside it. Aggregation is keyed by the
    span's {e path} (the stack of enclosing span labels, tracked
    domain-locally), so the same label reached through different
    parents aggregates separately and {!tree} reconstructs the call
    hierarchy with per-node self time. The flat {!summary} merges paths
    on their leaf label, so per-label totals are unchanged from the
    pre-tree behaviour: a nested span's time is accounted under its own
    label {e and} inside its enclosing span's.

    Real time appears only here, never in trace events — span summaries
    are the one deliberately non-deterministic surface.

    Domain safety: each domain aggregates into its own table (lock-free
    recording under the {!Exec.Pool} workers) and read-side functions
    merge the per-domain tables. The label stack is domain-local, so
    spans recorded inside pool workers become roots of that domain's
    tree; at jobs = 1 the pool runs tasks inline and nesting is
    preserved. The attached simulated clock is domain-local as well.
    Take summaries after parallel sections have drained — pool workers
    idle between batches do not record. *)

val set_enabled : bool -> unit
val is_enabled : unit -> bool

val set_clock : Util.Sim_clock.t option -> unit
(** Attach the simulated clock whose delta each span should also
    capture (the campaign runner attaches its own for the duration of
    a run). The attachment is domain-local. *)

val with_clock : Util.Sim_clock.t -> (unit -> 'a) -> 'a
(** Scoped {!set_clock} with restore (exception-safe). *)

val charge_sim : float -> unit
(** Charge simulated seconds to the attached clock, if any (no-op
    otherwise). Lets layers that cannot see the campaign's clock —
    the compiler driver's retry backoff — account deterministic
    modelled costs. Domain-local, like the attachment itself. *)

val with_span : string -> (unit -> 'a) -> 'a
(** Run the thunk, attributing its duration to [label] nested under the
    currently open spans of this domain. Records on exceptions too. *)

type row = {
  label : string;
  count : int;
  total_s : float;
  mean_s : float;
  max_s : float;
  sim_s : float;
}

val summary : unit -> row list
(** Flat per-label aggregates (paths merged on leaf label), sorted by
    label. *)

type node = {
  n_label : string;
  n_path : string list;  (** root-first, ending in [n_label] *)
  n_count : int;
  n_total_s : float;  (** real seconds inside this path, children included *)
  n_self_s : float;
      (** [n_total_s] minus the children's totals, clamped at 0 (a
          summary taken mid-span can transiently under-count a
          parent) *)
  n_max_s : float;
  n_sim_s : float;
  n_sim_self_s : float;
  n_children : node list;  (** sorted by label *)
}

val tree : unit -> node list
(** The span hierarchy as recorded, roots sorted by label. Spans run in
    pool worker domains appear as roots of their own (the worker cannot
    see the submitting domain's stack); at jobs = 1 nesting is exact. *)

val render_tree : unit -> string
(** The tree as an indented {!Report.Table}. *)

val flame : unit -> Json.t
(** The tree as Chrome trace-event JSON ([{"traceEvents": [...]}] with
    ["ph": "X"] complete events, microsecond [ts]/[dur]) loadable in
    [chrome://tracing] / Perfetto. The timeline is synthetic — nodes are
    aggregates, laid out depth-first with each child nested inside its
    parent; a parent's duration is at least the sum of its children's. *)

val render : unit -> string
(** The flat summary as a {!Report.Table}. *)

val reset : unit -> unit
