(* Folds the typed trace-event stream into the flight deck's view.

   Pure: [apply] consumes one event and returns the updated view, so
   the same event stream — live batches from [Follow] or a one-shot
   [--replay] read — always produces the same view, and the frame
   rendered from it is byte-identical. *)

let lat_window = 24

let bump key assoc =
  let rec go = function
    | [] -> [ (key, 1) ]
    | (k, n) :: rest when k = key -> (k, n + 1) :: rest
    | kv :: rest -> kv :: go rest
  in
  List.sort compare (go assoc)

let apply (v : Report.Flightdeck.view) (ev : Event.t) : Report.Flightdeck.view =
  match ev with
  | Event.Campaign_started { approach; budget; seed; precision } ->
    {
      Report.Flightdeck.empty with
      approach;
      budget;
      seed;
      precision;
      coverage_window = Coverage.default_window;
    }
  | Event.Slot_started { strategy; _ } ->
    {
      v with
      slots_started = v.slots_started + 1;
      strategies = bump strategy v.strategies;
    }
  | Event.Arm_chosen { arm; explore; _ } ->
    {
      v with
      arms = bump arm v.arms;
      arm_explores = (v.arm_explores + if explore then 1 else 0);
    }
  | Event.Generated { latency_s; _ } ->
    let recent = v.recent_lat_s @ [ latency_s ] in
    let recent =
      let extra = List.length recent - lat_window in
      if extra > 0 then List.filteri (fun i _ -> i >= extra) recent else recent
    in
    {
      v with
      lat_count = v.lat_count + 1;
      lat_total_s = v.lat_total_s +. latency_s;
      lat_max_s = Float.max v.lat_max_s latency_s;
      recent_lat_s = recent;
    }
  | Event.Parse_failed _ -> { v with parse_failures = v.parse_failures + 1 }
  | Event.Validation_failed _ ->
    { v with validation_failures = v.validation_failures + 1 }
  | Event.Compiled _ | Event.Executed _ | Event.Feedback_added _ -> v
  | Event.Compared { cross; within; inconsistent; _ } ->
    {
      v with
      programs = v.programs + 1;
      comparisons = v.comparisons + cross + within;
      cross_hits = v.cross_hits + inconsistent;
    }
  | Event.Inconsistency_found { pair; level; _ } ->
    { v with hits = bump (pair, level) v.hits }
  | Event.Case_recorded _ -> { v with cases = v.cases + 1 }
  | Event.Coverage_novel { kind; strategy; cells; sim_s; _ } ->
    {
      v with
      coverage_cells = max v.coverage_cells cells;
      coverage_cross =
        (v.coverage_cross + if kind = "cross" then 1 else 0);
      coverage_within =
        (v.coverage_within + if kind = "within" then 1 else 0);
      coverage_hits = v.coverage_hits + 1;
      novel_by_strategy = bump strategy v.novel_by_strategy;
      last_novel_sim_s = Float.max v.last_novel_sim_s sim_s;
    }
  | Event.Coverage_hit _ -> { v with coverage_hits = v.coverage_hits + 1 }
  | Event.Slot_finished { outcome; sim_s; _ } ->
    {
      v with
      slots_done = v.slots_done + 1;
      outcomes = bump outcome v.outcomes;
      sim_s = Float.max v.sim_s sim_s;
    }
  | Event.Campaign_finished { sim_seconds; _ } ->
    { v with sim_s = Float.max v.sim_s sim_seconds; finished = true }

let of_events events = List.fold_left apply Report.Flightdeck.empty events
