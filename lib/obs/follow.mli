(** Incremental JSONL trace follower — the read side of the trace
    protocol, and the streaming-progress foundation the future fleet
    [serve] mode reuses.

    A follower holds a path and a {e committed byte offset}. Every
    {!poll} reopens the file, reads from the offset to the current end,
    decodes the complete lines it finds ({!Event.of_jsonl}) and
    advances the offset past the last newline. The invariants:

    - a partially-written final line (a writer mid-flush) is never
      consumed — it is re-examined on the next poll, so followers
      tolerate tailing a file that is being appended to and [fsync]'d
      concurrently;
    - a file that shrank below the committed offset (rotation, or a
      resumed campaign truncating back to a checkpoint boundary) resets
      the follower to the start of the file and flags the batch as
      [rotated], so the consumer can discard state derived from the
      discarded suffix;
    - a missing file is not an error — the follower reports an empty
      batch and keeps waiting, so a watcher can attach before the
      campaign opens its trace.

    Following a live trace and then concatenating every batch yields
    the byte-identical event stream of a one-shot read of the completed
    file (test-asserted at jobs 1 and 4). Followers never write;
    attaching one to a live campaign is purely observational. *)

type t

type batch = {
  events : Event.t list;  (** decoded complete lines, in file order *)
  rotated : bool;
      (** the file shrank since the last poll; the follower restarted
          from offset 0 and [events] begins at the new file's start *)
}

val create : path:string -> t
(** No I/O happens until the first {!poll}; the file need not exist. *)

val path : t -> string

val offset : t -> int
(** The committed byte offset: start of the first unconsumed byte
    (0 initially; always lands just past a newline). *)

val poll : t -> (batch, string) result
(** Read forward from the committed offset. [Error] means an
    undecodable {e complete} line — a corrupt trace, not a mid-write
    artifact — and names the path, line and offset; the offset is not
    advanced past it. *)

val read_all : path:string -> (Event.t list, string) result
(** One-shot read of a completed trace: every complete line decoded in
    file order. Unlike {!poll}, a missing file is an [Error]. *)

(** Following a whole fleet: one committed offset per shard trace,
    polled together. The missing-file tolerance of {!poll} holds per
    path — a shard whose trace has not been created yet (the
    supervisor attaches before the child's first flush) contributes an
    empty batch instead of failing the aggregate poll. *)
module Multi : sig
  type t

  val create : paths:string list -> t
  (** One follower per path, kept in the given order. No I/O until the
      first {!poll}; none of the files need exist. *)

  val paths : t -> string list

  val poll : t -> ((string * batch) list, string) result
  (** Poll every follower in creation order: one [(path, batch)] pair
      per path, missing files yielding empty batches. [Error] (a
      corrupt complete line in one file, as in the single-file
      {!poll}) aborts the aggregate poll at that file; offsets of the
      files polled before it have already advanced. *)
end
