type t = { emit : Event.t -> unit; close : unit -> unit }

let make ?(close = fun () -> ()) emit = { emit; close }

let null = { emit = (fun _ -> ()); close = (fun () -> ()) }

let close t = t.close ()

let jsonl oc =
  {
    emit =
      (fun ev ->
        output_string oc (Event.to_jsonl ev);
        output_char oc '\n');
    close = (fun () -> flush oc);
  }

let ring ?(capacity = 1024) () =
  if capacity <= 0 then invalid_arg "Obs.Sink.ring: capacity must be positive";
  let slots = Array.make capacity None in
  let next = ref 0 in
  let stored = ref 0 in
  let emit ev =
    slots.(!next) <- Some ev;
    next := (!next + 1) mod capacity;
    if !stored < capacity then incr stored
  in
  let events () =
    (* oldest first: start after the most recent write when full *)
    let start = if !stored < capacity then 0 else !next in
    List.init !stored (fun i ->
        match slots.((start + i) mod capacity) with
        | Some ev -> ev
        | None -> assert false)
  in
  ({ emit; close = (fun () -> ()) }, events)
