type stamp = { slot : int; lane : int; seq : int }

type t = {
  emit : stamp -> Event.t -> unit;
  close : unit -> unit;
  sync : unit -> int option;
}

let no_sync () = None

let make ?(close = fun () -> ()) ?(sync = no_sync) emit =
  { emit = (fun _ ev -> emit ev); close; sync }

let make_stamped ?(close = fun () -> ()) ?(sync = no_sync) emit =
  { emit; close; sync }

let null = { emit = (fun _ _ -> ()); close = (fun () -> ()); sync = no_sync }

let deliver t stamp ev = t.emit stamp ev

let close t = t.close ()

let sync t = t.sync ()

let jsonl oc =
  make
    ~close:(fun () -> flush oc)
    ~sync:(fun () ->
      flush oc;
      (try Unix.fsync (Unix.descr_of_out_channel oc)
       with Unix.Unix_error _ | Sys_error _ -> ());
      Some (pos_out oc))
    (fun ev ->
      output_string oc (Event.to_jsonl ev);
      output_char oc '\n')

let ordered inner =
  (* Lane events buffer; the next main-lane event (or close) releases
     them in (slot, lane, seq) order. Delivery is already serialized by
     the Trace lock, so no extra mutex is needed here. *)
  let buffer : (stamp * Event.t) list ref = ref [] in
  let flush_buffer () =
    let compare_stamp (a, _) (b, _) =
      compare (a.slot, a.lane, a.seq) (b.slot, b.lane, b.seq)
    in
    List.iter
      (fun (stamp, ev) -> inner.emit stamp ev)
      (List.stable_sort compare_stamp (List.rev !buffer));
    buffer := []
  in
  {
    emit =
      (fun stamp ev ->
        if stamp.lane >= 0 then buffer := (stamp, ev) :: !buffer
        else begin
          flush_buffer ();
          inner.emit stamp ev
        end);
    close =
      (fun () ->
        flush_buffer ();
        inner.close ());
    sync =
      (fun () ->
        flush_buffer ();
        inner.sync ());
  }

let ring ?(capacity = 1024) () =
  if capacity <= 0 then invalid_arg "Obs.Sink.ring: capacity must be positive";
  let slots = Array.make capacity None in
  let next = ref 0 in
  let stored = ref 0 in
  let emit ev =
    slots.(!next) <- Some ev;
    next := (!next + 1) mod capacity;
    if !stored < capacity then incr stored
  in
  let events () =
    (* oldest first: start after the most recent write when full *)
    let start = if !stored < capacity then 0 else !next in
    List.init !stored (fun i ->
        match slots.((start + i) mod capacity) with
        | Some ev -> ev
        | None -> assert false)
  in
  (make emit, events)
