(** Process-wide registry of named counters, gauges and fixed-bucket
    histograms.

    Instruments are {e get-or-create} by name — create them once at
    module initialization, then update through the returned handle: a
    counter bump is a single atomic fetch-and-add, cheap enough to stay
    enabled unconditionally (the acceptance budget for "observability
    off" is ~free) and safe from any {!Exec.Pool} worker domain —
    parallel runs produce exactly the totals of the equivalent
    sequential run. Snapshots are sorted by name, so the rendered table
    is deterministic. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Get or create. Raises [Invalid_argument] if [name] is already
    registered as a different kind. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int
val counter_name : counter -> string

val gauge : string -> gauge
val set : gauge -> float -> unit
val add : gauge -> float -> unit
val gauge_value : gauge -> float
val gauge_name : gauge -> string

val default_buckets : float array
(** [0.001; 0.01; 0.1; 1; 10; 100] — decade buckets in seconds. *)

val histogram : ?buckets:float array -> string -> histogram
(** [buckets] are strictly increasing upper bounds; one overflow bucket
    is added beyond the last. Defaults to {!default_buckets}. *)

val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_name : histogram -> string

val percentile_of : bounds:float array -> counts:int array -> float -> float
(** [percentile_of ~bounds ~counts q] estimates the [q]-quantile
    ([0 < q <= 1]) from fixed-bucket data by linear interpolation
    inside the bucket holding rank [ceil (q × n)] (the usual
    Prometheus-style estimate): a value in the overflow bucket reports
    the last finite bound. An {e empty} histogram has no quantiles and
    reports [nan] — callers that print should render it as ["-"], as
    the registry dumps here do; [nan] (unlike the [0] it used to
    return) can never be confused with a real quantile. Deterministic
    in the observations, so quantiles of model-time histograms are
    seed-reproducible. *)

val histogram_percentile : histogram -> float -> float
(** {!percentile_of} on a live instrument's current contents. *)

val render_percentiles : unit -> string
(** Every registered histogram as a name-sorted p50/p95/p99 summary
    table (the latency-percentile dump of the [profile] subcommand).
    Histograms with no observations appear with ["-"] in each
    percentile column. *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      bounds : float array;
      counts : int array;  (** length = bounds + 1 (overflow last) *)
      count : int;
      sum : float;
    }

val snapshot : unit -> (string * value) list
(** Every registered instrument, sorted by name. *)

val render_table : unit -> string
(** The snapshot as a {!Report.Table} (name-sorted, deterministic). *)

val reset : unit -> unit
(** Zero every instrument in place (handles stay valid). For tests and
    for isolating consecutive runs inside one process. *)
