(** Minimal deterministic JSON for trace sinks and bench output.

    Serialization is byte-stable: object fields keep construction order
    and floats print as the shortest decimal that round-trips, so two
    runs producing equal values produce identical bytes — the property
    behind the fixed-seed trace reproducibility guarantee. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** One line, no insignificant whitespace. Non-finite floats encode as
    the strings ["nan"], ["inf"], ["-inf"] (JSON has no number for
    them). *)

val parse : string -> (t, string) result
(** Strict parse of a complete JSON document (used by tests to check
    emitted trace lines). [\u] escapes decode to UTF-8. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on other constructors. *)

val float_repr : float -> string
(** The serializer's float rendering (exposed for tests). *)
