(** Search-space coverage ledger: which cells of the inconsistency
    space a campaign has lit up, when, and which strategy found them.

    A {e cell} is the identity of an inconsistency class: outcome kind
    (["cross"] or ["within"]) × compiler pair (or compiler, for within
    cases) × optimization level × value-class pair — the axes of the
    paper's Tables 2–6. The ledger counts hits per cell, remembers the
    first-discovery provenance (slot, simulated time, strategy), and
    keeps a rolling window of recent hits on the {e simulated} clock
    from which per-strategy efficiency rates and a plateau signal
    derive.

    Everything here is deterministic in the campaign seed: keys are
    rendered names, times are simulated seconds, and {!cells} /
    {!to_json} order cells by key — so two runs recording the same
    hit sequence serialize to identical bytes. The ledger is purely
    observational: feeding it draws no randomness and changes no
    campaign decision. *)

type key = {
  kind : string;     (** ["cross"] or ["within"] — the outcome axis *)
  pair : string;     (** compiler pair, or compiler name for within *)
  level : string;    (** compared optimization level *)
  classes : string;  (** value-class pair label, e.g. ["{Real, Zero}"] *)
}

type cell = {
  hits : int;          (** total recordings of this key *)
  first_slot : int;    (** budget slot of the first hit *)
  first_sim_s : float; (** simulated clock at the first hit *)
  strategy : string;   (** strategy that discovered the cell *)
}

type t

val default_window : float
(** 600 simulated seconds — the rolling window over which efficiency
    rates and the plateau detector are computed. *)

val create : ?window:float -> unit -> t
(** An empty ledger. [window] must be positive (defaults to
    {!default_window}). *)

val window : t -> float

val record : t -> slot:int -> strategy:string -> sim_s:float -> key -> bool
(** Record one hit at simulated time [sim_s]. Returns [true] when the
    key is novel (first ever hit of that cell). Recordings must arrive
    in nondecreasing [sim_s] order — the campaign loop's natural
    order — because the rolling window prunes as it goes. *)

val find : t -> key -> cell option

val cells : t -> (key * cell) list
(** Every cell, sorted by key (kind, pair, level, classes) — the
    deterministic ordering every consumer renders in. *)

val total_cells : t -> int
val kind_cells : t -> string -> int
(** Distinct cells of one [kind] (["cross"] / ["within"]). *)

val total_hits : t -> int

val last_novel : t -> float
(** Simulated time of the most recent novel cell; [0.0] before any —
    the campaign start, so an all-quiet campaign plateaus after one
    full window. *)

type strategy_rate = {
  strategy : string;
  window_hits : int;      (** hits inside the rolling window *)
  window_novel : int;     (** novel cells inside the window *)
  hits_per_sim_s : float;
  novel_per_sim_s : float;
}

val strategy_rates : t -> now:float -> strategy_rate list
(** Per-strategy efficiency over the window ending at [now], sorted by
    strategy name. Rates divide by [min window now] (the span actually
    observed), and are [0.] when that span is not positive. *)

val plateaued : t -> now:float -> bool
(** No novel cell within the last {!window} simulated seconds. *)

val plateau_at : t -> now:float -> float option
(** When {!plateaued}, the simulated time the plateau tripped:
    [last_novel + window]. *)

val merge : t -> t -> t
(** A fresh ledger equal to one campaign having observed both hit
    histories: cells are unioned with hit counts summed and the {e
    earlier} first-discovery provenance kept (ordered by slot, then
    simulated time, then strategy — a total order, so the winner never
    depends on argument order); [total_hits] sums; [last_novel] is the
    max; the window length is the max of the two; and the rolling
    window re-sorts both sides' surviving hits newest-first and prunes
    against the merged frontier. Commutative and associative — folding
    per-shard ledgers in any order yields byte-identical {!to_json} —
    and not idempotent (merging a ledger with itself doubles its
    counts); chunk-level deduplication is the fleet layer's job.
    Inputs are not mutated. Merged ledgers are for reporting
    ({!cells}, {!strategy_rates}, {!plateaued}); recording into one is
    not meaningful because the constituent campaigns' simulated clocks
    are independent. *)

val json_schema : string
(** ["llm4fp-coverage/1"]. *)

val to_json : t -> Json.t
(** Complete snapshot — cells in {!cells} order plus the rolling
    window's surviving entries — so a ledger restored by {!of_json}
    continues recording exactly as the original would. Equal ledgers
    serialize to identical bytes. *)

val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json}; [Error] names the offending field. *)
