(** The typed trace event stream emitted by the instrumented pipeline.

    Events carry plain strings and ints only — [obs] sits below every
    pipeline library, so compiler configurations, prompts etc. appear by
    their rendered names. No payload field is a wall-clock timestamp:
    everything (including [latency_s], which comes from the latency
    {e model}) is deterministic in the campaign seed, making a
    fixed-seed trace byte-reproducible. Real time lives only in
    {!Span} summaries.

    [slot] is the 1-based campaign budget slot. Events emitted from
    layers that do not know the slot ({!Compiled}, {!Executed}, …) pick
    it up from {!Trace.with_slot} context and carry [int option]. *)

type t =
  | Campaign_started of {
      approach : string;
      budget : int;
      seed : int;
      precision : string;
    }
  | Slot_started of { slot : int; strategy : string }
      (** [strategy] is one of ["varity"], ["direct"], ["grammar"],
          ["mutate"] (for LLM4FP the per-slot coin flip of §2.3) or
          ["grow"] (the bandit's archived-case growth arm). *)
  | Arm_chosen of {
      slot : int;
      arm : string;
      pulls : int;
      reward : float;
      explore : bool;
    }
      (** a bandit campaign allocated the slot: [arm] is the chosen
          strategy name, [pulls] the arm's pull count before this slot,
          [reward] its windowed inconsistencies per simulated second at
          choice time, [explore] whether the pick was a warmup or
          epsilon-exploration rather than exploitation. Emitted
          immediately before the slot's {!Slot_started}. *)
  | Generated of {
      slot : int option;
      prompt : string;
      latency_s : float;
      prompt_tokens : int;
      output_tokens : int;
    }
  | Parse_failed of { slot : int; reason : string }
  | Validation_failed of { slot : int; reason : string }
  | Compiled of { slot : int option; config : string; ok : bool; work : int }
  | Executed of { slot : int option; config : string; hex : string; ops : int }
  | Compared of {
      slot : int option;
      cross : int;
      within : int;
      inconsistent : int;
    }  (** one per differential test: comparison counts + cross hits *)
  | Inconsistency_found of {
      slot : int option;
      pair : string;
      level : string;
      left_hex : string;
      right_hex : string;
      digits : int;
    }  (** one per inconsistent cross-compiler comparison *)
  | Case_recorded of { slot : int option; fingerprint : string; kind : string }
      (** a first-seen inconsistency case entered the forensic archive;
          [kind] is ["cross"] or ["within"]. The fingerprint is a
          content hash, so this event is seed-deterministic. *)
  | Coverage_novel of {
      slot : int;
      kind : string;
      pair : string;
      level : string;
      classes : string;
      strategy : string;
      cells : int;
      sim_s : float;
    }
      (** a never-before-seen coverage cell (see {!Coverage.key}) lit
          up: [kind] is ["cross"]/["within"], [strategy] the generation
          strategy that found it, [cells] the ledger's distinct-cell
          count after this hit, [sim_s] the simulated clock. *)
  | Coverage_hit of {
      slot : int;
      kind : string;
      pair : string;
      level : string;
      classes : string;
      strategy : string;
      hits : int;
    }
      (** a repeat hit of an already-covered cell by [strategy]; [hits]
          is the cell's cumulative count after this hit. *)
  | Feedback_added of { slot : int; feedback_size : int }
  | Slot_finished of { slot : int; outcome : string; sim_s : float }
      (** [outcome]: ["generation_failed"], ["consistent"] or
          ["inconsistent"]. [sim_s] is the simulated clock at the slot
          boundary — deterministic in the seed, and the time base the
          flight deck's throughput and ETA figures are computed on. *)
  | Campaign_finished of {
      approach : string;
      valid : int;
      generation_failures : int;
      inconsistencies : int;
      comparisons : int;
      sim_seconds : float;
      llm_seconds : float;
    }

val name : t -> string
(** snake_case tag, also the ["event"] field of the JSON encoding. *)

val to_json : t -> Json.t
(** Deterministic field order: ["event"] first, then [slot] (when
    known), then payload. *)

val to_jsonl : t -> string
(** [to_json] rendered as a single line (no trailing newline). *)

val of_json : Json.t -> (t, string) result
(** The inverse of {!to_json}: decode one event object. Tolerant of
    field reordering (lookup is by name); missing fields, wrong types
    and unknown ["event"] tags yield [Error] naming the problem.
    [of_json (to_json ev) = Ok ev] for every event. *)

val of_jsonl : string -> (t, string) result
(** Parse one trace line and decode it ({!Json.parse} ∘ {!of_json}). *)

val slot : t -> int option
(** The event's campaign budget slot, when it carries one (campaign
    start/finish never do). *)

val config : t -> string option
(** The compiler-configuration name of a {!Compiled} or {!Executed}
    event; [None] for every other kind. *)

val summary : t -> string
(** A compact single-line rendering of the payload (without the kind or
    slot), used by the [llm4fp trace] query tables. Deterministic:
    floats print in the {!Json.float_repr} shortest form. *)
