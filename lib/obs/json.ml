(* Minimal deterministic JSON — just enough for the trace sinks and the
   bench harness, with byte-stable serialization: object fields keep
   their construction order and floats use the shortest decimal that
   round-trips, so a fixed-seed trace file is reproducible byte for
   byte. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* Shortest decimal that reads back to exactly [f]; deterministic for a
   given value, unlike a fixed "%.17g" it avoids noise digits. *)
let float_repr f =
  let try_prec p =
    let s = Printf.sprintf "%.*g" p f in
    if float_of_string s = f then Some s else None
  in
  match try_prec 15 with
  | Some s -> s
  | None -> (
    match try_prec 16 with Some s -> s | None -> Printf.sprintf "%.17g" f)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
    (* non-finite values are not JSON numbers; encode as strings *)
    if Float.is_finite f then Buffer.add_string buf (float_repr f)
    else
      escape_into buf
        (if Float.is_nan f then "nan" else if f > 0.0 then "inf" else "-inf")
  | String s -> escape_into buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (key, value) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_into buf key;
        Buffer.add_char buf ':';
        write buf value)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  write buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* A small recursive-descent parser, used by the tests to check that
   every emitted trace line is well-formed JSON. *)

exception Bad of string

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let len = String.length word in
    if !pos + len <= n && String.sub text !pos len = word then begin
      pos := !pos + len;
      value
    end
    else fail ("expected " ^ word)
  in
  let utf8_of_code buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> begin
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buf '"'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some '/' -> Buffer.add_char buf '/'
        | Some 'b' -> Buffer.add_char buf '\b'
        | Some 'f' -> Buffer.add_char buf '\012'
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 'r' -> Buffer.add_char buf '\r'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some 'u' ->
          if !pos + 4 >= n then fail "truncated \\u escape";
          let hex = String.sub text (!pos + 1) 4 in
          let code =
            try int_of_string ("0x" ^ hex)
            with Failure _ -> fail "bad \\u escape"
          in
          pos := !pos + 4;
          utf8_of_code buf code
        | _ -> fail "bad escape");
        advance ();
        go ()
      end
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let s = String.sub text start (!pos - start) in
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail ("bad number " ^ s))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ]"
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (key, v)
        in
        let rec fields acc =
          let f = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (f :: acc)
          | Some '}' ->
            advance ();
            List.rev (f :: acc)
          | _ -> fail "expected , or }"
        in
        Obj (fields [])
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
