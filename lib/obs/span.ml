(* Timed spans for hot-path profiling.

   Disabled (the default), [with_span] is one branch around the thunk.
   Enabled, each span records real wall-clock seconds and — when a
   simulated clock is attached — the simulated seconds that elapsed
   inside it, aggregated per label (count / total / mean / max). Spans
   nest freely: a nested span accounts its own label and its time is
   also inside its parent's. *)

type agg = {
  mutable count : int;
  mutable total : float;
  mutable max : float;
  mutable sim : float;
}

let table : (string, agg) Hashtbl.t = Hashtbl.create 32
let enabled = ref false
let clock : Util.Sim_clock.t option ref = ref None

let set_enabled b = enabled := b
let is_enabled () = !enabled

let set_clock c = clock := c

let with_clock c f =
  let saved = !clock in
  clock := Some c;
  Fun.protect ~finally:(fun () -> clock := saved) f

let sim_now () =
  match !clock with Some c -> Util.Sim_clock.elapsed c | None -> 0.0

let record label dt dsim =
  let agg =
    match Hashtbl.find_opt table label with
    | Some a -> a
    | None ->
      let a = { count = 0; total = 0.0; max = 0.0; sim = 0.0 } in
      Hashtbl.replace table label a;
      a
  in
  agg.count <- agg.count + 1;
  agg.total <- agg.total +. dt;
  if dt > agg.max then agg.max <- dt;
  agg.sim <- agg.sim +. dsim

let with_span label f =
  if not !enabled then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    let s0 = sim_now () in
    Fun.protect
      ~finally:(fun () ->
        record label (Unix.gettimeofday () -. t0) (sim_now () -. s0))
      f
  end

type row = {
  label : string;
  count : int;
  total_s : float;
  mean_s : float;
  max_s : float;
  sim_s : float;
}

let summary () =
  Hashtbl.fold
    (fun label (a : agg) acc ->
      {
        label;
        count = a.count;
        total_s = a.total;
        mean_s = (if a.count = 0 then 0.0 else a.total /. float_of_int a.count);
        max_s = a.max;
        sim_s = a.sim;
      }
      :: acc)
    table []
  |> List.sort (fun a b -> String.compare a.label b.label)

let render () =
  let seconds v = Printf.sprintf "%.4f" v in
  let rows =
    List.map
      (fun r ->
        [ r.label;
          string_of_int r.count;
          seconds r.total_s;
          Printf.sprintf "%.6f" r.mean_s;
          Printf.sprintf "%.6f" r.max_s;
          seconds r.sim_s ])
      (summary ())
  in
  Report.Table.render
    ~title:"span profile (real seconds; sim = simulated-clock share)"
    ~header:[ "span"; "count"; "total s"; "mean s"; "max s"; "sim s" ]
    rows

let reset () = Hashtbl.reset table
