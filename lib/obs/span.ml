(* Timed spans for hot-path profiling.

   Disabled (the default), [with_span] is one atomic read around the
   thunk. Enabled, each span records real wall-clock seconds and — when
   a simulated clock is attached — the simulated seconds that elapsed
   inside it, aggregated per label (count / total / mean / max). Spans
   nest freely: a nested span accounts its own label and its time is
   also inside its parent's.

   Domain safety: every domain aggregates into its own table (DLS), so
   recording stays lock-free even under the pool; tables register
   themselves in a mutex-guarded list on first use and [summary] merges
   them at read time. The attached simulated clock is domain-local too,
   so concurrent campaigns each attribute simulated time to their own
   clock. Take summaries after parallel sections have drained. *)

type agg = {
  mutable count : int;
  mutable total : float;
  mutable max : float;
  mutable sim : float;
}

type table = (string, agg) Hashtbl.t

let registry_lock = Mutex.create ()
let tables : table list ref = ref []

let local_table : table Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let t : table = Hashtbl.create 32 in
      Mutex.lock registry_lock;
      tables := t :: !tables;
      Mutex.unlock registry_lock;
      t)

let enabled = Atomic.make false
let set_enabled b = Atomic.set enabled b
let is_enabled () = Atomic.get enabled

let clock_key : Util.Sim_clock.t option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let set_clock c = Domain.DLS.set clock_key c

let with_clock c f =
  let saved = Domain.DLS.get clock_key in
  Domain.DLS.set clock_key (Some c);
  Fun.protect ~finally:(fun () -> Domain.DLS.set clock_key saved) f

let sim_now () =
  match Domain.DLS.get clock_key with
  | Some c -> Util.Sim_clock.elapsed c
  | None -> 0.0

let charge_sim seconds =
  match Domain.DLS.get clock_key with
  | Some c -> Util.Sim_clock.advance c seconds
  | None -> ()

let record label dt dsim =
  let table = Domain.DLS.get local_table in
  let agg =
    match Hashtbl.find_opt table label with
    | Some a -> a
    | None ->
      let a = { count = 0; total = 0.0; max = 0.0; sim = 0.0 } in
      Hashtbl.replace table label a;
      a
  in
  agg.count <- agg.count + 1;
  agg.total <- agg.total +. dt;
  if dt > agg.max then agg.max <- dt;
  agg.sim <- agg.sim +. dsim

let with_span label f =
  if not (Atomic.get enabled) then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    let s0 = sim_now () in
    Fun.protect
      ~finally:(fun () ->
        record label (Unix.gettimeofday () -. t0) (sim_now () -. s0))
      f
  end

type row = {
  label : string;
  count : int;
  total_s : float;
  mean_s : float;
  max_s : float;
  sim_s : float;
}

let summary () =
  let merged : table = Hashtbl.create 32 in
  Mutex.lock registry_lock;
  let snapshot = !tables in
  Mutex.unlock registry_lock;
  List.iter
    (fun t ->
      Hashtbl.iter
        (fun label (a : agg) ->
          match Hashtbl.find_opt merged label with
          | Some m ->
            m.count <- m.count + a.count;
            m.total <- m.total +. a.total;
            if a.max > m.max then m.max <- a.max;
            m.sim <- m.sim +. a.sim
          | None ->
            Hashtbl.replace merged label
              { count = a.count; total = a.total; max = a.max; sim = a.sim })
        t)
    snapshot;
  Hashtbl.fold
    (fun label (a : agg) acc ->
      {
        label;
        count = a.count;
        total_s = a.total;
        mean_s = (if a.count = 0 then 0.0 else a.total /. float_of_int a.count);
        max_s = a.max;
        sim_s = a.sim;
      }
      :: acc)
    merged []
  |> List.sort (fun a b -> String.compare a.label b.label)

let render () =
  let seconds v = Printf.sprintf "%.4f" v in
  let rows =
    List.map
      (fun r ->
        [ r.label;
          string_of_int r.count;
          seconds r.total_s;
          Printf.sprintf "%.6f" r.mean_s;
          Printf.sprintf "%.6f" r.max_s;
          seconds r.sim_s ])
      (summary ())
  in
  Report.Table.render
    ~title:"span profile (real seconds; sim = simulated-clock share)"
    ~header:[ "span"; "count"; "total s"; "mean s"; "max s"; "sim s" ]
    rows

let reset () =
  Mutex.lock registry_lock;
  List.iter Hashtbl.reset !tables;
  Mutex.unlock registry_lock
