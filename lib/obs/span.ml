(* Timed spans for hot-path profiling.

   Disabled (the default), [with_span] is one atomic read around the
   thunk. Enabled, each span records real wall-clock seconds and — when
   a simulated clock is attached — the simulated seconds that elapsed
   inside it. Aggregation is keyed by the span's *path*: the stack of
   enclosing span labels, tracked in a domain-local stack, so the same
   label reached through different parents aggregates separately and
   [tree] can reconstruct the call hierarchy with per-node self time.
   The flat [summary] view merges paths on their leaf label, preserving
   the historical per-label totals (a nested span still accounts its
   own label and its time is also inside its parent's).

   Domain safety: every domain aggregates into its own table (DLS), so
   recording stays lock-free even under the pool; tables register
   themselves in a mutex-guarded list on first use and [summary]/[tree]
   merge them at read time. The label stack is domain-local too, which
   means spans recorded inside pool workers become roots of that
   domain's tree (the worker cannot see the submitting domain's stack);
   at jobs = 1 the pool runs tasks inline and nesting is preserved.
   The attached simulated clock is domain-local as well, so concurrent
   campaigns each attribute simulated time to their own clock. Take
   summaries after parallel sections have drained. *)

type agg = {
  mutable count : int;
  mutable total : float;
  mutable max : float;
  mutable sim : float;
}

(* Keyed by the span path in leaf-first order (the natural stack
   order — pushing a child is O(1)). *)
type table = (string list, agg) Hashtbl.t

let registry_lock = Mutex.create ()
let tables : table list ref = ref []

let local_table : table Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let t : table = Hashtbl.create 32 in
      Mutex.lock registry_lock;
      tables := t :: !tables;
      Mutex.unlock registry_lock;
      t)

let stack_key : string list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

let enabled = Atomic.make false
let set_enabled b = Atomic.set enabled b
let is_enabled () = Atomic.get enabled

let clock_key : Util.Sim_clock.t option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let set_clock c = Domain.DLS.set clock_key c

let with_clock c f =
  let saved = Domain.DLS.get clock_key in
  Domain.DLS.set clock_key (Some c);
  Fun.protect ~finally:(fun () -> Domain.DLS.set clock_key saved) f

let sim_now () =
  match Domain.DLS.get clock_key with
  | Some c -> Util.Sim_clock.elapsed c
  | None -> 0.0

let charge_sim seconds =
  match Domain.DLS.get clock_key with
  | Some c -> Util.Sim_clock.advance c seconds
  | None -> ()

let record path dt dsim =
  let table = Domain.DLS.get local_table in
  let agg =
    match Hashtbl.find_opt table path with
    | Some a -> a
    | None ->
      let a = { count = 0; total = 0.0; max = 0.0; sim = 0.0 } in
      Hashtbl.replace table path a;
      a
  in
  agg.count <- agg.count + 1;
  agg.total <- agg.total +. dt;
  if dt > agg.max then agg.max <- dt;
  agg.sim <- agg.sim +. dsim

let with_span label f =
  if not (Atomic.get enabled) then f ()
  else begin
    let parent = Domain.DLS.get stack_key in
    let path = label :: parent in
    Domain.DLS.set stack_key path;
    let t0 = Unix.gettimeofday () in
    let s0 = sim_now () in
    Fun.protect
      ~finally:(fun () ->
        Domain.DLS.set stack_key parent;
        record path (Unix.gettimeofday () -. t0) (sim_now () -. s0))
      f
  end

(* Merged (path -> agg) snapshot across all domain tables. *)
let merged_paths () =
  let merged : table = Hashtbl.create 32 in
  Mutex.lock registry_lock;
  let snapshot = !tables in
  Mutex.unlock registry_lock;
  List.iter
    (fun t ->
      Hashtbl.iter
        (fun path (a : agg) ->
          match Hashtbl.find_opt merged path with
          | Some m ->
            m.count <- m.count + a.count;
            m.total <- m.total +. a.total;
            if a.max > m.max then m.max <- a.max;
            m.sim <- m.sim +. a.sim
          | None ->
            Hashtbl.replace merged path
              { count = a.count; total = a.total; max = a.max; sim = a.sim })
        t)
    snapshot;
  merged

type row = {
  label : string;
  count : int;
  total_s : float;
  mean_s : float;
  max_s : float;
  sim_s : float;
}

let summary () =
  (* Flat view: merge paths on their leaf label, so per-label totals are
     independent of where in the tree a span ran (the pre-tree
     behaviour, and what the bench "phases" output keys on). *)
  let by_label : (string, agg) Hashtbl.t = Hashtbl.create 32 in
  Hashtbl.iter
    (fun path (a : agg) ->
      let label = List.hd path in
      match Hashtbl.find_opt by_label label with
      | Some m ->
        m.count <- m.count + a.count;
        m.total <- m.total +. a.total;
        if a.max > m.max then m.max <- a.max;
        m.sim <- m.sim +. a.sim
      | None ->
        Hashtbl.replace by_label label
          { count = a.count; total = a.total; max = a.max; sim = a.sim })
    (merged_paths ());
  Hashtbl.fold
    (fun label (a : agg) acc ->
      {
        label;
        count = a.count;
        total_s = a.total;
        mean_s = (if a.count = 0 then 0.0 else a.total /. float_of_int a.count);
        max_s = a.max;
        sim_s = a.sim;
      }
      :: acc)
    by_label []
  |> List.sort (fun a b -> String.compare a.label b.label)

type node = {
  n_label : string;
  n_path : string list;
  n_count : int;
  n_total_s : float;
  n_self_s : float;
  n_max_s : float;
  n_sim_s : float;
  n_sim_self_s : float;
  n_children : node list;
}

let tree () =
  (* Entries as (root-first path, agg); group recursively on the head
     label under the current prefix. *)
  let entries =
    Hashtbl.fold
      (fun path a acc -> (List.rev path, a) :: acc)
      (merged_paths ()) []
  in
  let rec build prefix_rev entries =
    let labels =
      List.sort_uniq String.compare
        (List.filter_map
           (fun (path, _) ->
             match path with label :: _ -> Some label | [] -> None)
           entries)
    in
    List.map
      (fun label ->
        let own : agg option ref = ref None in
        let sub =
          List.filter_map
            (fun (path, a) ->
              match path with
              | [ l ] when String.equal l label ->
                own := Some a;
                None
              | l :: rest when String.equal l label -> Some (rest, a)
              | _ -> None)
            entries
        in
        let children = build (label :: prefix_rev) sub in
        let child_total =
          List.fold_left (fun s c -> s +. c.n_total_s) 0.0 children
        in
        let child_sim =
          List.fold_left (fun s c -> s +. c.n_sim_s) 0.0 children
        in
        (* A path can lack its own aggregate only if the summary was
           taken while the span was still open; synthesize it from the
           children so the tree stays consistent. *)
        let count, total, max_s, sim =
          match !own with
          | Some a -> (a.count, a.total, a.max, a.sim)
          | None -> (0, child_total, 0.0, child_sim)
        in
        {
          n_label = label;
          n_path = List.rev (label :: prefix_rev);
          n_count = count;
          n_total_s = total;
          n_self_s = Float.max 0.0 (total -. child_total);
          n_max_s = max_s;
          n_sim_s = sim;
          n_sim_self_s = Float.max 0.0 (sim -. child_sim);
          n_children = children;
        })
      labels
  in
  build [] entries

let render () =
  let seconds v = Printf.sprintf "%.4f" v in
  let rows =
    List.map
      (fun r ->
        [ r.label;
          string_of_int r.count;
          seconds r.total_s;
          Printf.sprintf "%.6f" r.mean_s;
          Printf.sprintf "%.6f" r.max_s;
          seconds r.sim_s ])
      (summary ())
  in
  Report.Table.render
    ~title:"span profile (real seconds; sim = simulated-clock share)"
    ~header:[ "span"; "count"; "total s"; "mean s"; "max s"; "sim s" ]
    rows

let render_tree () =
  let seconds v = Printf.sprintf "%.4f" v in
  let rows = ref [] in
  let rec walk depth n =
    let indent = String.concat "" (List.init depth (fun _ -> "  ")) in
    rows :=
      [ indent ^ n.n_label;
        string_of_int n.n_count;
        seconds n.n_total_s;
        seconds n.n_self_s;
        seconds n.n_sim_s ]
      :: !rows;
    List.iter (walk (depth + 1)) n.n_children
  in
  List.iter (walk 0) (tree ());
  Report.Table.render
    ~title:"span tree (real seconds; self = total minus children)"
    ~header:[ "span"; "count"; "total s"; "self s"; "sim s" ]
    (List.rev !rows)

let flame () =
  (* Chrome trace-event export. The tree holds aggregates, not
     individual span instances, so the timeline is synthetic: a DFS
     lays each node out as one complete event whose duration is
     max(own total, sum of children durations) — the clamp keeps every
     child interval nested inside its parent even when a summary was
     taken mid-span. The layout is computed in integer microseconds —
     rounding durations before placing children, not after — so
     siblings tile exactly and never overlap by a rounding ulp.
     Timestamps are microseconds from an arbitrary origin at 0. *)
  let rec duration n =
    max
      (int_of_float (Float.round (n.n_total_s *. 1e6)))
      (List.fold_left (fun s c -> s + duration c) 0 n.n_children)
  in
  let events = ref [] in
  let rec emit ts n =
    let dur = duration n in
    events :=
      Json.Obj
        [
          ("name", Json.String n.n_label);
          ("cat", Json.String "span");
          ("ph", Json.String "X");
          ("ts", Json.Int ts);
          ("dur", Json.Int dur);
          ("pid", Json.Int 1);
          ("tid", Json.Int 1);
          ( "args",
            Json.Obj
              [
                ("count", Json.Int n.n_count);
                ("self_s", Json.Float n.n_self_s);
                ("sim_s", Json.Float n.n_sim_s);
              ] );
        ]
      :: !events;
    ignore
      (List.fold_left (fun t c -> emit t c; t + duration c) ts n.n_children)
  in
  ignore (List.fold_left (fun t n -> emit t n; t + duration n) 0 (tree ()));
  Json.Obj
    [
      ("traceEvents", Json.List (List.rev !events));
      ("displayTimeUnit", Json.String "ms");
    ]

let reset () =
  Mutex.lock registry_lock;
  List.iter Hashtbl.reset !tables;
  Mutex.unlock registry_lock
