external hardware : float -> float -> float -> float
  = "caml_fma_float" "caml_fma"
[@@unboxed] [@@noalloc]

(* Round-to-odd addition: compute a+b, and when rounding occurred force the
   last significand bit to 1. Adding a round-to-odd intermediate before a
   final rounded addition avoids double-rounding errors
   (Boldo & Melquiond, "Emulation of a FMA and correctly rounded sums"). *)
let add_round_to_odd a b =
  let s, e = Eft.two_sum a b in
  if e = 0.0 || not (Float.is_finite s) then s
  else
    let bits = Int64.bits_of_float s in
    if Int64.logand bits 1L = 1L then s
    else
      (* Force the last bit toward the direction of the discarded error so
         the result is odd and carries the sticky information. *)
      let bumped =
        if (e > 0.0) = (s >= 0.0) then Int64.add bits 1L else Int64.sub bits 1L
      in
      Int64.float_of_bits bumped

let finite x = Float.is_finite x

let software a b c =
  if not (finite a && finite b && finite c) then (a *. b) +. c
  else
    let mag = Float.abs a +. Float.abs b +. Float.abs c in
    if mag > 0x1p510 || (mag <> 0.0 && mag < 0x1p-510) then (a *. b) +. c
    else
      let ph, pl = Eft.two_prod a b in
      let sh, sl = Eft.two_sum ph c in
      let v = add_round_to_odd pl sl in
      sh +. v

external contract : float -> float -> float -> float
  = "caml_fma_float" "caml_fma"
[@@unboxed] [@@noalloc]
