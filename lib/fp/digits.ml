type error = Non_finite of float | Malformed of string

let error_to_string = function
  | Non_finite x -> Printf.sprintf "Digits.decompose: non-finite input %h" x
  | Malformed s ->
      Printf.sprintf "Digits.decompose: malformed scientific rendering %S" s

let decompose_result x =
  if not (Float.is_finite x) then Error (Non_finite x)
  else
    let s = Printf.sprintf "%.15e" (Float.abs x) in
    (* Format: d.ddddddddddddddde[+-]XX *)
    match String.index_opt s 'e' with
    | None -> Error (Malformed s)
    | Some epos -> (
        let mantissa = String.sub s 0 epos in
        let exp_s = String.sub s (epos + 1) (String.length s - epos - 1) in
        match int_of_string_opt exp_s with
        | None -> Error (Malformed s)
        | Some exponent ->
            let digits =
              String.to_seq mantissa
              |> Seq.filter (fun c -> c <> '.')
              |> String.of_seq
            in
            if
              String.length digits <> 16
              || not (String.for_all (fun c -> c >= '0' && c <= '9') digits)
            then Error (Malformed s)
            else Ok (Float.sign_bit x, digits, if x = 0.0 then 0 else exponent))

let decompose x =
  match decompose_result x with
  | Ok v -> v
  | Error e -> invalid_arg (error_to_string e)

let significand_digits x =
  let _, digits, _ = decompose x in
  digits

let diff_count a b =
  if Int64.bits_of_float a = Int64.bits_of_float b then 0
  else if not (Float.is_finite a && Float.is_finite b) then 16
  else
    let na, da, ea = decompose a in
    let nb, db, eb = decompose b in
    if na <> nb || ea <> eb then 16
    else begin
      let count = ref 0 in
      String.iteri (fun i c -> if c <> db.[i] then incr count) da;
      (* Bit patterns differ but all printed digits agree: the divergence
         is below 16 decimal digits; charge the minimum of one digit. *)
      if !count = 0 then 1 else !count
    end

module Acc = struct
  type t = { n : int; min_ : int; max_ : int; sum : int }

  let empty = { n = 0; min_ = 0; max_ = 0; sum = 0 }

  let add t d =
    if t.n = 0 then { n = 1; min_ = d; max_ = d; sum = d }
    else
      { n = t.n + 1;
        min_ = Stdlib.min t.min_ d;
        max_ = Stdlib.max t.max_ d;
        sum = t.sum + d }

  let count t = t.n

  let min t =
    if t.n = 0 then invalid_arg "Digits.Acc.min: empty" else t.min_

  let max t =
    if t.n = 0 then invalid_arg "Digits.Acc.max: empty" else t.max_

  let mean t = if t.n = 0 then 0.0 else float_of_int t.sum /. float_of_int t.n

  let raw t = (t.n, t.min_, t.max_, t.sum)
  let of_raw (n, min_, max_, sum) = { n; min_; max_; sum }

  let to_string t =
    if t.n = 0 then "-"
    else Printf.sprintf "(%d/%d/%.2f)" t.min_ t.max_ (mean t)
end
