(** Decimal digit-difference metric (paper §3.4, Table 5).

    The paper considers "the 16 first floating-point digits" of the printed
    results and reports the minimum / maximum / average number of differing
    digits among inconsistent outputs. We render both values in scientific
    notation with 16 significant decimal digits and count positions whose
    digits disagree; a sign or exponent mismatch (or any non-finite operand)
    counts as all 16 digits differing. *)

val significand_digits : float -> string
(** The 16 significant decimal digits of a finite value (no sign, no
    decimal point), e.g. [significand_digits 0.1 = "1000000000000000"].
    Raises [Invalid_argument] on non-finite input. *)

type error =
  | Non_finite of float  (** only finite values decompose *)
  | Malformed of string
      (** the [%.15e] rendering did not have the expected
          [d.ddddddddddddddde±XX] shape (carries the rendering) *)

val error_to_string : error -> string

val decompose_result : float -> (bool * string * int, error) result
(** Total decomposition: never raises. [Ok (negative, digits, exponent)]
    for well-formed finite input; the digit string is always exactly 16
    decimal digits. *)

val decompose : float -> bool * string * int
(** [decompose x = (negative, digits, exponent)] for finite [x], matching
    [%.15e] formatting. Zero decomposes to [(sign, "000...0", 0)].
    Raises [Invalid_argument (error_to_string e)] where
    [decompose_result] would return [Error e]. *)

val diff_count : float -> float -> int
(** Number of differing digits among the 16, in [\[0, 16\]]. Bitwise-equal
    values give 0. *)

(** Running min/max/mean accumulator for digit differences. *)
module Acc : sig
  type t

  val empty : t
  val add : t -> int -> t
  val count : t -> int
  val min : t -> int
  (** Raises [Invalid_argument] when empty. *)

  val max : t -> int
  val mean : t -> float
  val to_string : t -> string
  (** ["(min/max/avg)"] in the paper's format, or ["-"] when empty. *)

  val raw : t -> int * int * int * int
  (** [(count, min, max, sum)] — the full accumulator state, for
      durable snapshots. *)

  val of_raw : int * int * int * int -> t
  (** Rebuild from a {!raw} snapshot. *)
end
