(** Fused multiply-add.

    The compiler simulator introduces FMA nodes when a personality's
    contraction policy fires; the execution engine must then evaluate
    [round(a*b + c)] with a single rounding. [hardware] delegates to the
    platform's correctly-rounded primitive; [software] is an independent
    emulation built from error-free transformations and Boldo–Melquiond
    round-to-odd addition, used to cross-check the primitive in tests and
    as a fallback documentation of the algorithm. *)

external hardware : float -> float -> float -> float
  = "caml_fma_float" "caml_fma"
[@@unboxed] [@@noalloc]
(** [hardware a b c] is the platform's correctly rounded fused
    [a *. b +. c]. *)

val software : float -> float -> float -> float
(** Software emulation of the fused operation. Correctly rounded on the
    non-overflowing, non-underflowing range; falls back to the naive
    two-rounding expression for special values and extreme magnitudes. *)

external contract : float -> float -> float -> float
  = "caml_fma_float" "caml_fma"
[@@unboxed] [@@noalloc]
(** The evaluation used by the simulator for contracted multiply-adds
    (currently [hardware]). *)
