open Lang

type runtime = {
  libm : Mathlib.Libm.flavor;
  ftz : bool;
  nan_cmp_taken : bool;
}

type outcome = { result : float; fp_ops : int }

type trap = { array : int; index : int; length : int }

exception Trap of trap

let trap_message { array; index; length } =
  Printf.sprintf "out-of-bounds subscript: arr%d[%d] (length %d)" array index
    length

let () =
  Printexc.register_printer (function
    | Trap t -> Some ("Irsim.Interp.Trap: " ^ trap_message t)
    | _ -> None)

let check_bounds ~array ~index ~length =
  if index < 0 || index >= length then raise (Trap { array; index; length })

type env = {
  f : float array;
  i : int array;
  a : float array array;
  rt : runtime;
  precision : Lang.Ast.precision;
  prec : float -> float;   (** storage/operation precision rounding *)
  mutable ops : int;
}

let round_f32 x = Int32.float_of_bits (Int32.bits_of_float x)

let rec eval_i env (e : Ir.iexpr) =
  match e with
  | Ir.Iconst n -> n
  | Ir.Iload s -> env.i.(s)
  | Ir.Ineg e -> -eval_i env e
  | Ir.Ibin (op, a, b) -> begin
    let a = eval_i env a and b = eval_i env b in
    match op with
    | Ast.Add -> a + b
    | Ast.Sub -> a - b
    | Ast.Mul -> a * b
    | Ast.Div -> a / b
  end

(* C comparison semantics: every ordered comparison involving NaN is
   false; != is true. Under finite-math codegen (see {!runtime}) the
   branch is taken instead. *)
let ccmp ~nan_taken cmp a b =
  if Float.is_nan a || Float.is_nan b then nan_taken || cmp = Ast.Ne
  else
    match cmp with
    | Ast.Lt -> a < b
    | Ast.Le -> a <= b
    | Ast.Gt -> a > b
    | Ast.Ge -> a >= b
    | Ast.Eq -> a = b
    | Ast.Ne -> a <> b

let rec eval env (e : Ir.expr) =
  match e with
  | Ir.Const v -> env.prec v
  | Ir.Load s -> env.f.(s)
  | Ir.Load_arr (s, idx) ->
    let arr = env.a.(s) in
    let k = eval_i env idx in
    check_bounds ~array:s ~index:k ~length:(Array.length arr);
    arr.(k)
  | Ir.Itof e -> env.prec (float_of_int (eval_i env e))
  | Ir.Neg e -> -.eval env e
  | Ir.Bin (op, a, b) ->
    let a = flush env (eval env a) and b = flush env (eval env b) in
    env.ops <- env.ops + 1;
    let raw =
      match op with
      | Ast.Add -> a +. b
      | Ast.Sub -> a -. b
      | Ast.Mul -> a *. b
      | Ast.Div -> a /. b
    in
    flush env (env.prec raw)
  | Ir.Call (fn, args) ->
    let args = List.map (fun e -> flush env (eval env e)) args in
    env.ops <- env.ops + 1;
    flush env
      (env.prec (Mathlib.Libm.call ~precision:env.precision env.rt.libm fn args))
  | Ir.Fma (a, b, c) ->
    let a = flush env (eval env a)
    and b = flush env (eval env b)
    and c = flush env (eval env c) in
    env.ops <- env.ops + 1;
    flush env (env.prec (Fp.Fma.contract a b c))
  | Ir.Recip e ->
    let v = flush env (eval env e) in
    env.ops <- env.ops + 1;
    flush env (env.prec (1.0 /. v))

and flush env x = if env.rt.ftz then Fp.Bits.flush_subnormal x else x

let rec exec env body =
  List.iter
    (fun (s : Ir.stmt) ->
      match s with
      | Ir.Store (slot, e) -> env.f.(slot) <- eval env e
      | Ir.Store_arr (slot, idx, e) ->
        let arr = env.a.(slot) in
        let k = eval_i env idx in
        check_bounds ~array:slot ~index:k ~length:(Array.length arr);
        arr.(k) <- eval env e
      | Ir.If { lhs; cmp; rhs; body } ->
        if
          ccmp ~nan_taken:env.rt.nan_cmp_taken cmp (eval env lhs)
            (eval env rhs)
        then exec env body
      | Ir.For { islot; bound; body } ->
        for k = 0 to bound - 1 do
          env.i.(islot) <- k;
          exec env body
        done)
    body

let run rt (ir : Ir.t) (inputs : Inputs.t) =
  if List.length inputs <> List.length ir.bindings then
    invalid_arg "Interp.run: input arity mismatch";
  let prec =
    match ir.precision with Ast.F64 -> Fun.id | Ast.F32 -> round_f32
  in
  let env =
    {
      f = Array.make (max 1 ir.n_fslots) 0.0;
      i = Array.make (max 1 ir.n_islots) 0;
      a = Array.map (fun len -> Array.make len 0.0) ir.arr_lens;
      rt;
      precision = ir.precision;
      prec;
      ops = 0;
    }
  in
  List.iter2
    (fun binding (value : Inputs.value) ->
      match (binding, value) with
      | Ir.Bind_fp slot, Inputs.Fp v -> env.f.(slot) <- prec v
      | Ir.Bind_int slot, Inputs.Int v -> env.i.(slot) <- v
      | Ir.Bind_arr (slot, len), Inputs.Arr a ->
        if Array.length a <> len then
          invalid_arg "Interp.run: array length mismatch";
        let dst = env.a.(slot) in
        for k = 0 to len - 1 do
          dst.(k) <- prec a.(k)
        done
      | _ -> invalid_arg "Interp.run: input kind mismatch")
    ir.bindings inputs;
  env.f.(ir.comp_slot) <- 0.0;
  exec env ir.body;
  { result = env.f.(ir.comp_slot); fp_ops = env.ops }
