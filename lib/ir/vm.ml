open Lang

(* One flat three-address instruction. Operands are register indices
   resolved at flatten time: the float register file is laid out as
   [program slots | pooled constants | expression temps], the int file
   as [program slots | pooled constants | temps]. Slot loads and
   constants therefore cost no instructions at all — they are read
   directly as operands — and jump targets are absolute code indices. *)
type instr =
  (* float registers *)
  | Fmov of int * int (* dst <- src *)
  | Load_arr of int * int * int (* dst <- array[idx reg]; checked *)
  | Itof of int * int (* dst <- float of int reg *)
  | Fneg of int * int
  | Fadd of int * int * int (* dst <- a op b *)
  | Fsub of int * int * int
  | Fmul of int * int * int
  | Fdiv of int * int * int
  | Call1 of Ast.math_fn * int * int
  | Call2 of Ast.math_fn * int * int * int
  | Calln of Ast.math_fn * int * int array (* dst, arg regs *)
  | Fma of int * int * int * int
  | Recip of int * int
  (* int registers *)
  | Iconst of int * int (* dst <- literal (loop init) *)
  | Ineg of int * int
  | Iadd of int * int * int
  | Isub of int * int * int
  | Imul of int * int * int
  | Idiv of int * int * int
  | Iaddi of int * int * int (* dst <- src + immediate *)
  (* effects and control *)
  | Check_arr of int * int (* array, idx reg; trap before the value runs *)
  | Store_arr of int * int * int (* array, idx reg, value reg *)
  | Branch of Ast.cmpop * int * int * int (* lhs, rhs, jump when NOT taken *)
  | Loop of int * int * int (* islot reg, bound, back-edge target *)

type program = {
  code : instr array;
  n_f : int; (* float slots: registers [0, n_f) *)
  n_i : int; (* int slots: registers [0, n_i) *)
  consts : float array; (* pooled, pre-rounded: registers [n_f, n_f + .) *)
  iconsts : int array; (* pooled: registers [n_i, n_i + .) *)
  n_fregs : int; (* slots + consts + temps *)
  n_iregs : int;
  arr_lens : int array;
  bindings : Ir.param_binding list;
  comp_slot : int;
  precision : Ast.precision;
  f32 : bool;
  ftz : bool;
  nan_cmp_taken : bool;
  libm : Mathlib.Libm.flavor;
}

type state = { f : float array; i : int array; a : float array array }

let code_size p = Array.length p.code

let instr_name p ins =
  let nc = Array.length p.consts and nic = Array.length p.iconsts in
  let fr r =
    if r < p.n_f then Printf.sprintf "f%d" r
    else if r < p.n_f + nc then Printf.sprintf "c%d" (r - p.n_f)
    else Printf.sprintf "t%d" (r - p.n_f - nc)
  in
  let irg r =
    if r < p.n_i then Printf.sprintf "i%d" r
    else if r < p.n_i + nic then Printf.sprintf "k%d" (r - p.n_i)
    else Printf.sprintf "j%d" (r - p.n_i - nic)
  in
  match ins with
  | Fmov (d, s) -> Printf.sprintf "fmov %s <- %s" (fr d) (fr s)
  | Load_arr (d, id, ki) ->
    Printf.sprintf "load_arr %s <- a%d[%s]" (fr d) id (irg ki)
  | Itof (d, s) -> Printf.sprintf "itof %s <- %s" (fr d) (irg s)
  | Fneg (d, s) -> Printf.sprintf "fneg %s <- %s" (fr d) (fr s)
  | Fadd (d, a, b) -> Printf.sprintf "fadd %s <- %s %s" (fr d) (fr a) (fr b)
  | Fsub (d, a, b) -> Printf.sprintf "fsub %s <- %s %s" (fr d) (fr a) (fr b)
  | Fmul (d, a, b) -> Printf.sprintf "fmul %s <- %s %s" (fr d) (fr a) (fr b)
  | Fdiv (d, a, b) -> Printf.sprintf "fdiv %s <- %s %s" (fr d) (fr a) (fr b)
  | Call1 (fn, d, a) ->
    Printf.sprintf "call1 %s %s <- %s" (Ast.math_fn_name fn) (fr d) (fr a)
  | Call2 (fn, d, a, b) ->
    Printf.sprintf "call2 %s %s <- %s %s" (Ast.math_fn_name fn) (fr d) (fr a)
      (fr b)
  | Calln (fn, d, regs) ->
    Printf.sprintf "call%d %s %s <- %s" (Array.length regs)
      (Ast.math_fn_name fn) (fr d)
      (String.concat " " (Array.to_list (Array.map fr regs)))
  | Fma (d, a, b, c) ->
    Printf.sprintf "fma %s <- %s %s %s" (fr d) (fr a) (fr b) (fr c)
  | Recip (d, s) -> Printf.sprintf "recip %s <- %s" (fr d) (fr s)
  | Iconst (d, v) -> Printf.sprintf "iconst %s <- %d" (irg d) v
  | Ineg (d, s) -> Printf.sprintf "ineg %s <- %s" (irg d) (irg s)
  | Iadd (d, a, b) -> Printf.sprintf "iadd %s <- %s %s" (irg d) (irg a) (irg b)
  | Isub (d, a, b) -> Printf.sprintf "isub %s <- %s %s" (irg d) (irg a) (irg b)
  | Imul (d, a, b) -> Printf.sprintf "imul %s <- %s %s" (irg d) (irg a) (irg b)
  | Idiv (d, a, b) -> Printf.sprintf "idiv %s <- %s %s" (irg d) (irg a) (irg b)
  | Iaddi (d, s, imm) ->
    Printf.sprintf "iaddi %s <- %s + %d" (irg d) (irg s) imm
  | Check_arr (id, ki) -> Printf.sprintf "check_arr a%d[%s]" id (irg ki)
  | Store_arr (id, ki, v) ->
    Printf.sprintf "store_arr a%d[%s] <- %s" id (irg ki) (fr v)
  | Branch (cmp, l, r, t) ->
    Printf.sprintf "branch %s %s %s -> %d" (fr l) (Ast.cmpop_symbol cmp) (fr r)
      t
  | Loop (s, bound, back) ->
    Printf.sprintf "loop %s <%d -> %d" (irg s) bound back

let disasm p =
  Array.to_list
    (Array.mapi (fun k ins -> Printf.sprintf "%3d: %s" k (instr_name p ins))
       p.code)

(* Flatten in two passes. Pass 1 validates every slot index and binding
   (so execution can use unsafe accessors) and interns the program's
   constants — float literals pre-rounded to storage precision, folded
   through negation chains and [Itof] of int literals, and int literals
   that are not absorbed by [Iaddi] fusion. Interning fixes the
   register-file layout; pass 2 then emits code against absolute
   register indices, giving every expression temp a stack-disciplined
   depth so results never outlive their single use. The two passes walk
   the tree identically (including skipping zero-trip [For] bodies), so
   every constant pass 2 looks up was interned by pass 1. *)
let flatten (rt : Interp.runtime) (ir : Ir.t) =
  let f32 = ir.Ir.precision = Ast.F32 in
  let prec v = if f32 then Interp.round_f32 v else v in
  let n_arr = Array.length ir.Ir.arr_lens in
  let bad fmt = Printf.ksprintf (fun s -> invalid_arg ("Vm.flatten: " ^ s)) fmt in
  let check_f s = if s < 0 || s >= ir.Ir.n_fslots then bad "float slot f%d out of range" s in
  let check_i s = if s < 0 || s >= ir.Ir.n_islots then bad "int slot i%d out of range" s in
  let check_a s = if s < 0 || s >= n_arr then bad "array slot a%d out of range" s in
  (* a value's whole evaluation folds to a constant when it is a literal
     under negations (negation is exact) or an int literal converted to
     float; the fold applies [prec] exactly where the reference engine
     would *)
  let rec const_value (e : Ir.expr) =
    match e with
    | Ir.Const v -> Some (prec v)
    | Ir.Neg e -> (
      match const_value e with Some v -> Some (-.v) | None -> None)
    | Ir.Itof (Ir.Iconst k) -> Some (prec (float_of_int k))
    | _ -> None
  in
  (* ---- pass 1: validate + intern constants ---- *)
  let fpool = Hashtbl.create 16 in
  let fvals = ref [] in
  let n_fc = ref 0 in
  let intern_f v =
    let key = Int64.bits_of_float v in
    match Hashtbl.find_opt fpool key with
    | Some r -> r
    | None ->
      let r = !n_fc in
      Hashtbl.add fpool key r;
      fvals := v :: !fvals;
      incr n_fc;
      r
  in
  let ipool = Hashtbl.create 16 in
  let ivals = ref [] in
  let n_ic = ref 0 in
  let intern_i v =
    match Hashtbl.find_opt ipool v with
    | Some r -> r
    | None ->
      let r = !n_ic in
      Hashtbl.add ipool v r;
      ivals := v :: !ivals;
      incr n_ic;
      r
  in
  let rec iscan (e : Ir.iexpr) =
    match e with
    | Ir.Iconst n -> ignore (intern_i n)
    | Ir.Iload s -> check_i s
    | Ir.Ineg e -> iscan e
    | Ir.Ibin (Ast.Add, a, Ir.Iconst _)
    | Ir.Ibin (Ast.Add, Ir.Iconst _, a)
    | Ir.Ibin (Ast.Sub, a, Ir.Iconst _) ->
      iscan a
    | Ir.Ibin (_, a, b) ->
      iscan a;
      iscan b
  in
  let rec fscan (e : Ir.expr) =
    match const_value e with
    | Some v -> ignore (intern_f v)
    | None -> (
      match e with
      | Ir.Const _ -> assert false (* covered by [const_value] *)
      | Ir.Load s -> check_f s
      | Ir.Load_arr (s, idx) ->
        check_a s;
        iscan idx
      | Ir.Itof ie -> iscan ie
      | Ir.Neg e -> fscan e
      | Ir.Bin (_, a, b) ->
        fscan a;
        fscan b
      | Ir.Call (_, args) -> List.iter fscan args
      | Ir.Fma (a, b, c) ->
        fscan a;
        fscan b;
        fscan c
      | Ir.Recip e -> fscan e)
  in
  let rec scan_stmt (s : Ir.stmt) =
    match s with
    | Ir.Store (slot, e) ->
      check_f slot;
      fscan e
    | Ir.Store_arr (slot, idx, e) ->
      check_a slot;
      iscan idx;
      fscan e
    | Ir.If { lhs; cmp = _; rhs; body } ->
      fscan lhs;
      fscan rhs;
      List.iter scan_stmt body
    | Ir.For { islot; bound; body } ->
      check_i islot;
      (* a zero-trip loop neither initializes nor touches the slot,
         exactly like the reference engine's [for k = 0 to -1] *)
      if bound > 0 then List.iter scan_stmt body
  in
  List.iter scan_stmt ir.Ir.body;
  check_f ir.Ir.comp_slot;
  List.iter
    (fun (b : Ir.param_binding) ->
      match b with
      | Ir.Bind_fp slot -> check_f slot
      | Ir.Bind_int slot -> check_i slot
      | Ir.Bind_arr (slot, declared) ->
        check_a slot;
        if declared <> ir.Ir.arr_lens.(slot) then
          bad "binding for a%d declares length %d, array has %d" slot declared
            ir.Ir.arr_lens.(slot))
    ir.Ir.bindings;
  let consts = Array.of_list (List.rev !fvals) in
  let iconsts = Array.of_list (List.rev !ivals) in
  let n_f = ir.Ir.n_fslots and n_i = ir.Ir.n_islots in
  let ftemp = n_f + Array.length consts in
  let itemp = n_i + Array.length iconsts in
  let fcreg v = n_f + Hashtbl.find fpool (Int64.bits_of_float v) in
  let icreg v = n_i + Hashtbl.find ipool v in
  (* ---- pass 2: emit ---- *)
  let buf = ref (Array.make 64 (Iconst (0, 0))) in
  let len = ref 0 in
  let emit ins =
    if !len = Array.length !buf then begin
      let bigger = Array.make (2 * !len) (Iconst (0, 0)) in
      Array.blit !buf 0 bigger 0 !len;
      buf := bigger
    end;
    !buf.(!len) <- ins;
    incr len
  in
  let here () = !len in
  let patch at ins = !buf.(at) <- ins in
  let max_ft = ref 0 and max_it = ref 0 in
  let ftreg fd =
    if fd + 1 > !max_ft then max_ft := fd + 1;
    ftemp + fd
  in
  let itreg id =
    if id + 1 > !max_it then max_it := id + 1;
    itemp + id
  in
  (* [icompile e id] emits code for [e] using int temps at depth [id]
     and up, returning the register holding the result — a slot or
     pooled-constant register when no code is needed. [i +- literal]
     fuses into a single [Iaddi]. *)
  let rec icompile (e : Ir.iexpr) id =
    match e with
    | Ir.Iconst n -> icreg n
    | Ir.Iload s -> s
    | Ir.Ineg e ->
      let r = icompile e id in
      let d = itreg id in
      emit (Ineg (d, r));
      d
    | Ir.Ibin (Ast.Add, a, Ir.Iconst c) | Ir.Ibin (Ast.Add, Ir.Iconst c, a) ->
      let r = icompile a id in
      let d = itreg id in
      emit (Iaddi (d, r, c));
      d
    | Ir.Ibin (Ast.Sub, a, Ir.Iconst c) ->
      let r = icompile a id in
      let d = itreg id in
      emit (Iaddi (d, r, -c));
      d
    | Ir.Ibin (op, a, b) ->
      let ra = icompile a id in
      let ida = if ra >= itemp then id + 1 else id in
      let rb = icompile b ida in
      let d = itreg id in
      emit
        (match op with
        | Ast.Add -> Iadd (d, ra, rb)
        | Ast.Sub -> Isub (d, ra, rb)
        | Ast.Mul -> Imul (d, ra, rb)
        | Ast.Div -> Idiv (d, ra, rb));
      d
  in
  (* [fcompile ?dst e fd id]: emit code for [e] with float temps at
     depth [fd] and up. [dst] redirects the root instruction's result
     (used by [Store], whose slot must be written last so a trap during
     evaluation leaves it untouched); a leaf under [dst] becomes an
     [Fmov]. Without [dst], leaves return their slot/constant register
     directly — no instruction at all. *)
  let rec fcompile ?dst (e : Ir.expr) fd id =
    let dest fd = match dst with Some d -> d | None -> ftreg fd in
    match const_value e with
    | Some v -> (
      let c = fcreg v in
      match dst with
      | Some d ->
        if d <> c then emit (Fmov (d, c));
        d
      | None -> c)
    | None -> (
      match e with
      | Ir.Const _ -> assert false (* covered by [const_value] *)
      | Ir.Load s -> (
        match dst with
        | Some d ->
          if d <> s then emit (Fmov (d, s));
          d
        | None -> s)
      | Ir.Load_arr (s, idx) ->
        let ri = icompile idx id in
        let d = dest fd in
        emit (Load_arr (d, s, ri));
        d
      | Ir.Itof ie ->
        let ri = icompile ie id in
        let d = dest fd in
        emit (Itof (d, ri));
        d
      | Ir.Neg e ->
        let r = fcompile e fd id in
        let d = dest fd in
        emit (Fneg (d, r));
        d
      | Ir.Bin (op, a, b) ->
        let ra = fcompile a fd id in
        let fda = if ra >= ftemp then fd + 1 else fd in
        let rb = fcompile b fda id in
        let d = dest fd in
        emit
          (match op with
          | Ast.Add -> Fadd (d, ra, rb)
          | Ast.Sub -> Fsub (d, ra, rb)
          | Ast.Mul -> Fmul (d, ra, rb)
          | Ast.Div -> Fdiv (d, ra, rb));
        d
      | Ir.Call (fn, [ a ]) ->
        let ra = fcompile a fd id in
        let d = dest fd in
        emit (Call1 (fn, d, ra));
        d
      | Ir.Call (fn, [ a; b ]) ->
        let ra = fcompile a fd id in
        let fda = if ra >= ftemp then fd + 1 else fd in
        let rb = fcompile b fda id in
        let d = dest fd in
        emit (Call2 (fn, d, ra, rb));
        d
      | Ir.Call (fn, args) ->
        let regs, _ =
          List.fold_left
            (fun (acc, fd) a ->
              let r = fcompile a fd id in
              (r :: acc, if r >= ftemp then fd + 1 else fd))
            ([], fd) args
        in
        let d = dest fd in
        emit (Calln (fn, d, Array.of_list (List.rev regs)));
        d
      | Ir.Fma (a, b, c) ->
        let ra = fcompile a fd id in
        let fda = if ra >= ftemp then fd + 1 else fd in
        let rb = fcompile b fda id in
        let fdb = if rb >= ftemp then fda + 1 else fda in
        let rc = fcompile c fdb id in
        let d = dest fd in
        emit (Fma (d, ra, rb, rc));
        d
      | Ir.Recip e ->
        let r = fcompile e fd id in
        let d = dest fd in
        emit (Recip (d, r));
        d)
  in
  let rec emit_stmt (s : Ir.stmt) =
    match s with
    | Ir.Store (slot, e) -> ignore (fcompile ~dst:slot e 0 0)
    | Ir.Store_arr (slot, idx, e) ->
      let ri = icompile idx 0 in
      (* the reference engine bounds-checks before evaluating the stored
         value; Check_arr preserves that trap order *)
      emit (Check_arr (slot, ri));
      let id = if ri >= itemp then 1 else 0 in
      let rv = fcompile e 0 id in
      emit (Store_arr (slot, ri, rv))
    | Ir.If { lhs; cmp; rhs; body } ->
      let rl = fcompile lhs 0 0 in
      let fd = if rl >= ftemp then 1 else 0 in
      let rr = fcompile rhs fd 0 in
      let site = here () in
      emit (Branch (cmp, rl, rr, 0));
      List.iter emit_stmt body;
      patch site (Branch (cmp, rl, rr, here ()))
    | Ir.For { islot; bound; body } ->
      if bound > 0 then begin
        emit (Iconst (islot, 0));
        let top = here () in
        List.iter emit_stmt body;
        emit (Loop (islot, bound, top))
      end
  in
  List.iter emit_stmt ir.Ir.body;
  {
    code = Array.sub !buf 0 !len;
    n_f;
    n_i;
    consts;
    iconsts;
    n_fregs = ftemp + !max_ft;
    n_iregs = itemp + !max_it;
    arr_lens = Array.copy ir.Ir.arr_lens;
    bindings = ir.Ir.bindings;
    comp_slot = ir.Ir.comp_slot;
    precision = ir.Ir.precision;
    f32;
    ftz = rt.Interp.ftz;
    nan_cmp_taken = rt.Interp.nan_cmp_taken;
    libm = rt.Interp.libm;
  }

let make_state p =
  let f = Array.make (max 1 p.n_fregs) 0.0 in
  Array.blit p.consts 0 f p.n_f (Array.length p.consts);
  let i = Array.make (max 1 p.n_iregs) 0 in
  Array.blit p.iconsts 0 i p.n_i (Array.length p.iconsts);
  { f; i; a = Array.map (fun l -> Array.make l 0.0) p.arr_lens }

(* The inner loop. Every register index in [code] was placed by
   [flatten] inside the file it sized, so register and code accesses
   are unsafe; only data-dependent array subscripts keep a check, which
   raises the same {!Interp.Trap} as the reference engine. Flush and
   precision are applied exactly where the tree interpreter applies
   them: operands of arithmetic and calls are flushed on read, results
   are flushed after rounding; moves, negation, and int->float
   conversion copy raw bits. *)
let exec p st =
  let code = p.code in
  let stop = Array.length code in
  let f = st.f and ints = st.i and arrs = st.a in
  let ftz = p.ftz and f32 = p.f32 in
  let precision = p.precision and flavor = p.libm in
  let nan_taken = p.nan_cmp_taken in
  let flush x = if ftz then Fp.Bits.flush_subnormal x else x in
  let prec x = if f32 then Interp.round_f32 x else x in
  let ops = ref 0 in
  let pc = ref 0 in
  while !pc < stop do
    let ins = Array.unsafe_get code !pc in
    incr pc;
    match ins with
    | Fmov (d, s) -> Array.unsafe_set f d (Array.unsafe_get f s)
    | Load_arr (d, id, ki) ->
      let arr = Array.unsafe_get arrs id in
      let k = Array.unsafe_get ints ki in
      Interp.check_bounds ~array:id ~index:k ~length:(Array.length arr);
      Array.unsafe_set f d (Array.unsafe_get arr k)
    | Itof (d, s) ->
      Array.unsafe_set f d (prec (float_of_int (Array.unsafe_get ints s)))
    | Fneg (d, s) -> Array.unsafe_set f d (-.Array.unsafe_get f s)
    | Fadd (d, a, b) ->
      let x = flush (Array.unsafe_get f a) in
      let y = flush (Array.unsafe_get f b) in
      incr ops;
      Array.unsafe_set f d (flush (prec (x +. y)))
    | Fsub (d, a, b) ->
      let x = flush (Array.unsafe_get f a) in
      let y = flush (Array.unsafe_get f b) in
      incr ops;
      Array.unsafe_set f d (flush (prec (x -. y)))
    | Fmul (d, a, b) ->
      let x = flush (Array.unsafe_get f a) in
      let y = flush (Array.unsafe_get f b) in
      incr ops;
      Array.unsafe_set f d (flush (prec (x *. y)))
    | Fdiv (d, a, b) ->
      let x = flush (Array.unsafe_get f a) in
      let y = flush (Array.unsafe_get f b) in
      incr ops;
      Array.unsafe_set f d (flush (prec (x /. y)))
    | Call1 (fn, d, a) ->
      let x = flush (Array.unsafe_get f a) in
      incr ops;
      Array.unsafe_set f d
        (flush (prec (Mathlib.Libm.call1 ~precision flavor fn x)))
    | Call2 (fn, d, a, b) ->
      let x = flush (Array.unsafe_get f a) in
      let y = flush (Array.unsafe_get f b) in
      incr ops;
      Array.unsafe_set f d
        (flush (prec (Mathlib.Libm.call2 ~precision flavor fn x y)))
    | Calln (fn, d, regs) ->
      let args =
        Array.fold_right
          (fun r acc -> flush (Array.unsafe_get f r) :: acc)
          regs []
      in
      incr ops;
      Array.unsafe_set f d
        (flush (prec (Mathlib.Libm.call ~precision flavor fn args)))
    | Fma (d, a, b, c) ->
      let x = flush (Array.unsafe_get f a) in
      let y = flush (Array.unsafe_get f b) in
      let z = flush (Array.unsafe_get f c) in
      incr ops;
      Array.unsafe_set f d (flush (prec (Fp.Fma.contract x y z)))
    | Recip (d, s) ->
      let v = flush (Array.unsafe_get f s) in
      incr ops;
      Array.unsafe_set f d (flush (prec (1.0 /. v)))
    | Iconst (d, v) -> Array.unsafe_set ints d v
    | Ineg (d, s) -> Array.unsafe_set ints d (-Array.unsafe_get ints s)
    | Iadd (d, a, b) ->
      Array.unsafe_set ints d (Array.unsafe_get ints a + Array.unsafe_get ints b)
    | Isub (d, a, b) ->
      Array.unsafe_set ints d (Array.unsafe_get ints a - Array.unsafe_get ints b)
    | Imul (d, a, b) ->
      Array.unsafe_set ints d (Array.unsafe_get ints a * Array.unsafe_get ints b)
    | Idiv (d, a, b) ->
      Array.unsafe_set ints d (Array.unsafe_get ints a / Array.unsafe_get ints b)
    | Iaddi (d, s, imm) ->
      Array.unsafe_set ints d (Array.unsafe_get ints s + imm)
    | Check_arr (id, ki) ->
      let k = Array.unsafe_get ints ki in
      Interp.check_bounds ~array:id ~index:k
        ~length:(Array.length (Array.unsafe_get arrs id))
    | Store_arr (id, ki, v) ->
      let k = Array.unsafe_get ints ki in
      (* already bounds-checked by the paired Check_arr *)
      Array.unsafe_set (Array.unsafe_get arrs id) k (Array.unsafe_get f v)
    | Branch (cmp, la, ra, target) ->
      let lhs = Array.unsafe_get f la in
      let rhs = Array.unsafe_get f ra in
      if not (Interp.ccmp ~nan_taken cmp lhs rhs) then pc := target
    | Loop (slot, bound, back) ->
      let k = Array.unsafe_get ints slot + 1 in
      if k < bound then begin
        Array.unsafe_set ints slot k;
        pc := back
      end
  done;
  !ops

let run_with st p (inputs : Inputs.t) =
  if List.length inputs <> List.length p.bindings then
    invalid_arg "Vm.run: input arity mismatch";
  let prec v = if p.f32 then Interp.round_f32 v else v in
  (* slot registers are re-zeroed; constant registers keep their pool
     values and temps are always written before read *)
  Array.fill st.f 0 p.n_f 0.0;
  Array.fill st.i 0 p.n_i 0;
  Array.iter (fun arr -> Array.fill arr 0 (Array.length arr) 0.0) st.a;
  List.iter2
    (fun (binding : Ir.param_binding) (value : Inputs.value) ->
      match (binding, value) with
      | Ir.Bind_fp slot, Inputs.Fp v -> st.f.(slot) <- prec v
      | Ir.Bind_int slot, Inputs.Int v -> st.i.(slot) <- v
      | Ir.Bind_arr (slot, len), Inputs.Arr a ->
        if Array.length a <> len then
          invalid_arg "Vm.run: array length mismatch";
        let dst = st.a.(slot) in
        for k = 0 to len - 1 do
          dst.(k) <- prec a.(k)
        done
      | _ -> invalid_arg "Vm.run: input kind mismatch")
    p.bindings inputs;
  st.f.(p.comp_slot) <- 0.0;
  let ops = exec p st in
  { Interp.result = st.f.(p.comp_slot); fp_ops = ops }

let run p inputs = run_with (make_state p) p inputs

(* ------------------------------------------------------------------ *)
(* Batched execution: one instruction at a time across every input
   vector at once ("lanes"). The register file and arrays become
   lane-major unboxed arrays (register [r] of lane [l] lives at
   [r * n + l]), so each instruction's dispatch cost is paid once and
   its work is a tight loop over a contiguous float array.

   Control flow is uniform: constant-bound loops take the same number
   of back-edges in every lane, and an [If] body is executed under a
   per-lane mask instead of a jump — a [Branch] narrows the mask and
   pushes the previous one onto a region stack, to be restored when
   the program counter reaches the branch target. A lane's sequence of
   arithmetic operations is therefore exactly the sequence the scalar
   engine would run, and the results are bit-identical.

   A lane that trips a bounds check records its (first) trap and goes
   permanently inactive; the others continue. Extracting the outcomes
   re-raises the first trapped lane in input order, matching what
   [List.map (run_with st p)] would have done. *)

let exec_batch p rf ri ba ops n =
  let code = p.code in
  let stop = Array.length code in
  let arr_lens = p.arr_lens in
  let ftz = p.ftz and f32 = p.f32 in
  let precision = p.precision and flavor = p.libm in
  let nan_taken = p.nan_cmp_taken in
  let prec x = if f32 then Interp.round_f32 x else x in
  let mask = Array.make n true in
  let trapped = Array.make n false in
  let traps = Array.make n None in
  let alive = ref n in
  (* region stack: saved mask for region [k] at offset [k * n] *)
  let rmask = ref (Array.make (4 * n) false) in
  let rtarget = ref (Array.make 4 0) in
  let rsp = ref 0 in
  let push_region target =
    if !rsp = Array.length !rtarget then begin
      let m = Array.make (2 * Array.length !rmask) false in
      Array.blit !rmask 0 m 0 (Array.length !rmask);
      rmask := m;
      let t = Array.make (2 * Array.length !rtarget) 0 in
      Array.blit !rtarget 0 t 0 (Array.length !rtarget);
      rtarget := t
    end;
    Array.blit mask 0 !rmask (!rsp * n) n;
    !rtarget.(!rsp) <- target;
    incr rsp
  in
  let pop_region () =
    decr rsp;
    let off = !rsp * n in
    let saved = !rmask in
    for l = 0 to n - 1 do
      mask.(l) <- Array.unsafe_get saved (off + l) && not trapped.(l)
    done
  in
  let kill l tr =
    traps.(l) <- Some tr;
    trapped.(l) <- true;
    mask.(l) <- false;
    decr alive
  in
  let first_active () =
    let rec go l = if l >= n || Array.unsafe_get mask l then l else go (l + 1) in
    go 0
  in
  (* [dense]: no region open and no lane trapped, i.e. the mask is
     all-true — skip the per-lane mask read and count ops once in
     [dense_ops] instead of touching the per-lane counters. [plain]:
     FP64 without FTZ — [flush] and [prec] are the identity, so the
     dense loops drop them too. Both tests sit outside the lane loops;
     the common case (no divergence, default runtime) runs branch-free
     streaming loops. *)
  (* call-free flush: a double is subnormal iff 0 < |x| < 0x1p-1022;
     comparisons are false on NaN, so NaN falls through unchanged,
     exactly like {!Fp.Bits.flush_subnormal} *)
  let flush x =
    if ftz && abs_float x < 0x1p-1022 && x <> 0.0 then
      if x < 0.0 then -0.0 else 0.0
    else x
  in
  let plain = (not ftz) && not f32 in
  let dense_ops = ref 0 in
  let pc = ref 0 in
  while !pc < stop && !alive > 0 do
    while !rsp > 0 && !rtarget.(!rsp - 1) = !pc do
      pop_region ()
    done;
    let dense = !rsp = 0 && !alive = n in
    let ins = Array.unsafe_get code !pc in
    incr pc;
    match ins with
    | Fmov (d, s) ->
      let db = d * n and sb = s * n in
      if dense then
        for l = 0 to n - 1 do
          Array.unsafe_set rf (db + l) (Array.unsafe_get rf (sb + l))
        done
      else
        for l = 0 to n - 1 do
          if Array.unsafe_get mask l then
            Array.unsafe_set rf (db + l) (Array.unsafe_get rf (sb + l))
        done
    | Load_arr (d, id, ki) ->
      let arr = Array.unsafe_get ba id in
      let len = Array.unsafe_get arr_lens id in
      let db = d * n and kb = ki * n in
      for l = 0 to n - 1 do
        if dense || Array.unsafe_get mask l then begin
          let k = Array.unsafe_get ri (kb + l) in
          if k < 0 || k >= len then
            kill l { Interp.array = id; index = k; length = len }
          else
            Array.unsafe_set rf (db + l) (Array.unsafe_get arr ((k * n) + l))
        end
      done
    | Itof (d, s) ->
      let db = d * n and sb = s * n in
      if dense && plain then
        for l = 0 to n - 1 do
          Array.unsafe_set rf (db + l)
            (float_of_int (Array.unsafe_get ri (sb + l)))
        done
      else
        for l = 0 to n - 1 do
          if dense || Array.unsafe_get mask l then
            Array.unsafe_set rf (db + l)
              (prec (float_of_int (Array.unsafe_get ri (sb + l))))
        done
    | Fneg (d, s) ->
      let db = d * n and sb = s * n in
      if dense then
        for l = 0 to n - 1 do
          Array.unsafe_set rf (db + l) (-.Array.unsafe_get rf (sb + l))
        done
      else
        for l = 0 to n - 1 do
          if Array.unsafe_get mask l then
            Array.unsafe_set rf (db + l) (-.Array.unsafe_get rf (sb + l))
        done
    | Fadd (d, a, b) ->
      let db = d * n and ab = a * n and bb = b * n in
      if dense then begin
        incr dense_ops;
        if plain then
          for l = 0 to n - 1 do
            Array.unsafe_set rf (db + l)
              (Array.unsafe_get rf (ab + l) +. Array.unsafe_get rf (bb + l))
          done
        else if not f32 then
          (* the fastmath hot case (FTZ, FP64): flush written out by
             hand — a local-function call here would box its float
             argument on every element — with the loop-invariant
             [ftz]/[f32] tests hoisted out of the loop *)
          for l = 0 to n - 1 do
            let x = Array.unsafe_get rf (ab + l) in
            let x =
              if abs_float x < 0x1p-1022 && x <> 0.0 then
                if x < 0.0 then -0.0 else 0.0
              else x
            in
            let y = Array.unsafe_get rf (bb + l) in
            let y =
              if abs_float y < 0x1p-1022 && y <> 0.0 then
                if y < 0.0 then -0.0 else 0.0
              else y
            in
            let r = x +. y in
            let r =
              if abs_float r < 0x1p-1022 && r <> 0.0 then
                if r < 0.0 then -0.0 else 0.0
              else r
            in
            Array.unsafe_set rf (db + l) r
          done
        else
          for l = 0 to n - 1 do
            let x = flush (Array.unsafe_get rf (ab + l)) in
            let y = flush (Array.unsafe_get rf (bb + l)) in
            Array.unsafe_set rf (db + l) (flush (prec (x +. y)))
          done
      end
      else
        for l = 0 to n - 1 do
          if Array.unsafe_get mask l then begin
            let x = flush (Array.unsafe_get rf (ab + l)) in
            let y = flush (Array.unsafe_get rf (bb + l)) in
            Array.unsafe_set ops l (Array.unsafe_get ops l + 1);
            Array.unsafe_set rf (db + l) (flush (prec (x +. y)))
          end
        done
    | Fsub (d, a, b) ->
      let db = d * n and ab = a * n and bb = b * n in
      if dense then begin
        incr dense_ops;
        if plain then
          for l = 0 to n - 1 do
            Array.unsafe_set rf (db + l)
              (Array.unsafe_get rf (ab + l) -. Array.unsafe_get rf (bb + l))
          done
        else if not f32 then
          for l = 0 to n - 1 do
            let x = Array.unsafe_get rf (ab + l) in
            let x =
              if abs_float x < 0x1p-1022 && x <> 0.0 then
                if x < 0.0 then -0.0 else 0.0
              else x
            in
            let y = Array.unsafe_get rf (bb + l) in
            let y =
              if abs_float y < 0x1p-1022 && y <> 0.0 then
                if y < 0.0 then -0.0 else 0.0
              else y
            in
            let r = x -. y in
            let r =
              if abs_float r < 0x1p-1022 && r <> 0.0 then
                if r < 0.0 then -0.0 else 0.0
              else r
            in
            Array.unsafe_set rf (db + l) r
          done
        else
          for l = 0 to n - 1 do
            let x = flush (Array.unsafe_get rf (ab + l)) in
            let y = flush (Array.unsafe_get rf (bb + l)) in
            Array.unsafe_set rf (db + l) (flush (prec (x -. y)))
          done
      end
      else
        for l = 0 to n - 1 do
          if Array.unsafe_get mask l then begin
            let x = flush (Array.unsafe_get rf (ab + l)) in
            let y = flush (Array.unsafe_get rf (bb + l)) in
            Array.unsafe_set ops l (Array.unsafe_get ops l + 1);
            Array.unsafe_set rf (db + l) (flush (prec (x -. y)))
          end
        done
    | Fmul (d, a, b) ->
      let db = d * n and ab = a * n and bb = b * n in
      if dense then begin
        incr dense_ops;
        if plain then
          for l = 0 to n - 1 do
            Array.unsafe_set rf (db + l)
              (Array.unsafe_get rf (ab + l) *. Array.unsafe_get rf (bb + l))
          done
        else if not f32 then
          for l = 0 to n - 1 do
            let x = Array.unsafe_get rf (ab + l) in
            let x =
              if abs_float x < 0x1p-1022 && x <> 0.0 then
                if x < 0.0 then -0.0 else 0.0
              else x
            in
            let y = Array.unsafe_get rf (bb + l) in
            let y =
              if abs_float y < 0x1p-1022 && y <> 0.0 then
                if y < 0.0 then -0.0 else 0.0
              else y
            in
            let r = x *. y in
            let r =
              if abs_float r < 0x1p-1022 && r <> 0.0 then
                if r < 0.0 then -0.0 else 0.0
              else r
            in
            Array.unsafe_set rf (db + l) r
          done
        else
          for l = 0 to n - 1 do
            let x = flush (Array.unsafe_get rf (ab + l)) in
            let y = flush (Array.unsafe_get rf (bb + l)) in
            Array.unsafe_set rf (db + l) (flush (prec (x *. y)))
          done
      end
      else
        for l = 0 to n - 1 do
          if Array.unsafe_get mask l then begin
            let x = flush (Array.unsafe_get rf (ab + l)) in
            let y = flush (Array.unsafe_get rf (bb + l)) in
            Array.unsafe_set ops l (Array.unsafe_get ops l + 1);
            Array.unsafe_set rf (db + l) (flush (prec (x *. y)))
          end
        done
    | Fdiv (d, a, b) ->
      let db = d * n and ab = a * n and bb = b * n in
      if dense then begin
        incr dense_ops;
        if plain then
          for l = 0 to n - 1 do
            Array.unsafe_set rf (db + l)
              (Array.unsafe_get rf (ab + l) /. Array.unsafe_get rf (bb + l))
          done
        else if not f32 then
          for l = 0 to n - 1 do
            let x = Array.unsafe_get rf (ab + l) in
            let x =
              if abs_float x < 0x1p-1022 && x <> 0.0 then
                if x < 0.0 then -0.0 else 0.0
              else x
            in
            let y = Array.unsafe_get rf (bb + l) in
            let y =
              if abs_float y < 0x1p-1022 && y <> 0.0 then
                if y < 0.0 then -0.0 else 0.0
              else y
            in
            let r = x /. y in
            let r =
              if abs_float r < 0x1p-1022 && r <> 0.0 then
                if r < 0.0 then -0.0 else 0.0
              else r
            in
            Array.unsafe_set rf (db + l) r
          done
        else
          for l = 0 to n - 1 do
            let x = flush (Array.unsafe_get rf (ab + l)) in
            let y = flush (Array.unsafe_get rf (bb + l)) in
            Array.unsafe_set rf (db + l) (flush (prec (x /. y)))
          done
      end
      else
        for l = 0 to n - 1 do
          if Array.unsafe_get mask l then begin
            let x = flush (Array.unsafe_get rf (ab + l)) in
            let y = flush (Array.unsafe_get rf (bb + l)) in
            Array.unsafe_set ops l (Array.unsafe_get ops l + 1);
            Array.unsafe_set rf (db + l) (flush (prec (x /. y)))
          end
        done
    | Call1 (fn, d, a) ->
      let db = d * n and ab = a * n in
      if dense then begin
        incr dense_ops;
        for l = 0 to n - 1 do
          let x = flush (Array.unsafe_get rf (ab + l)) in
          Array.unsafe_set rf (db + l)
            (flush (prec (Mathlib.Libm.call1 ~precision flavor fn x)))
        done
      end
      else
        for l = 0 to n - 1 do
          if Array.unsafe_get mask l then begin
            let x = flush (Array.unsafe_get rf (ab + l)) in
            Array.unsafe_set ops l (Array.unsafe_get ops l + 1);
            Array.unsafe_set rf (db + l)
              (flush (prec (Mathlib.Libm.call1 ~precision flavor fn x)))
          end
        done
    | Call2 (fn, d, a, b) ->
      let db = d * n and ab = a * n and bb = b * n in
      if dense then begin
        incr dense_ops;
        for l = 0 to n - 1 do
          let x = flush (Array.unsafe_get rf (ab + l)) in
          let y = flush (Array.unsafe_get rf (bb + l)) in
          Array.unsafe_set rf (db + l)
            (flush (prec (Mathlib.Libm.call2 ~precision flavor fn x y)))
        done
      end
      else
        for l = 0 to n - 1 do
          if Array.unsafe_get mask l then begin
            let x = flush (Array.unsafe_get rf (ab + l)) in
            let y = flush (Array.unsafe_get rf (bb + l)) in
            Array.unsafe_set ops l (Array.unsafe_get ops l + 1);
            Array.unsafe_set rf (db + l)
              (flush (prec (Mathlib.Libm.call2 ~precision flavor fn x y)))
          end
        done
    | Calln (fn, d, regs) ->
      let db = d * n in
      let nargs = Array.length regs in
      if dense then incr dense_ops;
      for l = 0 to n - 1 do
        if dense || Array.unsafe_get mask l then begin
          let args = ref [] in
          for a = nargs - 1 downto 0 do
            args :=
              flush
                (Array.unsafe_get rf ((Array.unsafe_get regs a * n) + l))
              :: !args
          done;
          if not dense then
            Array.unsafe_set ops l (Array.unsafe_get ops l + 1);
          Array.unsafe_set rf (db + l)
            (flush (prec (Mathlib.Libm.call ~precision flavor fn !args)))
        end
      done
    | Fma (d, a, b, c) ->
      let db = d * n and ab = a * n and bb = b * n and cb = c * n in
      if dense then begin
        incr dense_ops;
        if plain then
          for l = 0 to n - 1 do
            Array.unsafe_set rf (db + l)
              (Fp.Fma.contract
                 (Array.unsafe_get rf (ab + l))
                 (Array.unsafe_get rf (bb + l))
                 (Array.unsafe_get rf (cb + l)))
          done
        else if not f32 then
          for l = 0 to n - 1 do
            let x = Array.unsafe_get rf (ab + l) in
            let x =
              if abs_float x < 0x1p-1022 && x <> 0.0 then
                if x < 0.0 then -0.0 else 0.0
              else x
            in
            let y = Array.unsafe_get rf (bb + l) in
            let y =
              if abs_float y < 0x1p-1022 && y <> 0.0 then
                if y < 0.0 then -0.0 else 0.0
              else y
            in
            let z = Array.unsafe_get rf (cb + l) in
            let z =
              if abs_float z < 0x1p-1022 && z <> 0.0 then
                if z < 0.0 then -0.0 else 0.0
              else z
            in
            let r = Fp.Fma.contract x y z in
            let r =
              if abs_float r < 0x1p-1022 && r <> 0.0 then
                if r < 0.0 then -0.0 else 0.0
              else r
            in
            Array.unsafe_set rf (db + l) r
          done
        else
          for l = 0 to n - 1 do
            let x = flush (Array.unsafe_get rf (ab + l)) in
            let y = flush (Array.unsafe_get rf (bb + l)) in
            let z = flush (Array.unsafe_get rf (cb + l)) in
            Array.unsafe_set rf (db + l) (flush (prec (Fp.Fma.contract x y z)))
          done
      end
      else
        for l = 0 to n - 1 do
          if Array.unsafe_get mask l then begin
            let x = flush (Array.unsafe_get rf (ab + l)) in
            let y = flush (Array.unsafe_get rf (bb + l)) in
            let z = flush (Array.unsafe_get rf (cb + l)) in
            Array.unsafe_set ops l (Array.unsafe_get ops l + 1);
            Array.unsafe_set rf (db + l) (flush (prec (Fp.Fma.contract x y z)))
          end
        done
    | Recip (d, s) ->
      let db = d * n and sb = s * n in
      if dense then begin
        incr dense_ops;
        if plain then
          for l = 0 to n - 1 do
            Array.unsafe_set rf (db + l) (1.0 /. Array.unsafe_get rf (sb + l))
          done
        else if not f32 then
          for l = 0 to n - 1 do
            let v = Array.unsafe_get rf (sb + l) in
            let v =
              if abs_float v < 0x1p-1022 && v <> 0.0 then
                if v < 0.0 then -0.0 else 0.0
              else v
            in
            let r = 1.0 /. v in
            let r =
              if abs_float r < 0x1p-1022 && r <> 0.0 then
                if r < 0.0 then -0.0 else 0.0
              else r
            in
            Array.unsafe_set rf (db + l) r
          done
        else
          for l = 0 to n - 1 do
            let v = flush (Array.unsafe_get rf (sb + l)) in
            Array.unsafe_set rf (db + l) (flush (prec (1.0 /. v)))
          done
      end
      else
        for l = 0 to n - 1 do
          if Array.unsafe_get mask l then begin
            let v = flush (Array.unsafe_get rf (sb + l)) in
            Array.unsafe_set ops l (Array.unsafe_get ops l + 1);
            Array.unsafe_set rf (db + l) (flush (prec (1.0 /. v)))
          end
        done
    | Iconst (d, v) ->
      let db = d * n in
      if dense then
        for l = 0 to n - 1 do
          Array.unsafe_set ri (db + l) v
        done
      else
        for l = 0 to n - 1 do
          if Array.unsafe_get mask l then Array.unsafe_set ri (db + l) v
        done
    | Ineg (d, s) ->
      let db = d * n and sb = s * n in
      for l = 0 to n - 1 do
        if dense || Array.unsafe_get mask l then
          Array.unsafe_set ri (db + l) (-Array.unsafe_get ri (sb + l))
      done
    | Iadd (d, a, b) ->
      let db = d * n and ab = a * n and bb = b * n in
      if dense then
        for l = 0 to n - 1 do
          Array.unsafe_set ri (db + l)
            (Array.unsafe_get ri (ab + l) + Array.unsafe_get ri (bb + l))
        done
      else
        for l = 0 to n - 1 do
          if Array.unsafe_get mask l then
            Array.unsafe_set ri (db + l)
              (Array.unsafe_get ri (ab + l) + Array.unsafe_get ri (bb + l))
        done
    | Isub (d, a, b) ->
      let db = d * n and ab = a * n and bb = b * n in
      if dense then
        for l = 0 to n - 1 do
          Array.unsafe_set ri (db + l)
            (Array.unsafe_get ri (ab + l) - Array.unsafe_get ri (bb + l))
        done
      else
        for l = 0 to n - 1 do
          if Array.unsafe_get mask l then
            Array.unsafe_set ri (db + l)
              (Array.unsafe_get ri (ab + l) - Array.unsafe_get ri (bb + l))
        done
    | Imul (d, a, b) ->
      let db = d * n and ab = a * n and bb = b * n in
      if dense then
        for l = 0 to n - 1 do
          Array.unsafe_set ri (db + l)
            (Array.unsafe_get ri (ab + l) * Array.unsafe_get ri (bb + l))
        done
      else
        for l = 0 to n - 1 do
          if Array.unsafe_get mask l then
            Array.unsafe_set ri (db + l)
              (Array.unsafe_get ri (ab + l) * Array.unsafe_get ri (bb + l))
        done
    | Idiv (d, a, b) ->
      let db = d * n and ab = a * n and bb = b * n in
      for l = 0 to n - 1 do
        if dense || Array.unsafe_get mask l then
          Array.unsafe_set ri (db + l)
            (Array.unsafe_get ri (ab + l) / Array.unsafe_get ri (bb + l))
      done
    | Iaddi (d, s, imm) ->
      let db = d * n and sb = s * n in
      if dense then
        for l = 0 to n - 1 do
          Array.unsafe_set ri (db + l) (Array.unsafe_get ri (sb + l) + imm)
        done
      else
        for l = 0 to n - 1 do
          if Array.unsafe_get mask l then
            Array.unsafe_set ri (db + l) (Array.unsafe_get ri (sb + l) + imm)
        done
    | Check_arr (id, ki) ->
      let len = Array.unsafe_get arr_lens id in
      let kb = ki * n in
      for l = 0 to n - 1 do
        if dense || Array.unsafe_get mask l then begin
          let k = Array.unsafe_get ri (kb + l) in
          if k < 0 || k >= len then
            kill l { Interp.array = id; index = k; length = len }
        end
      done
    | Store_arr (id, ki, v) ->
      let arr = Array.unsafe_get ba id in
      let kb = ki * n and vb = v * n in
      for l = 0 to n - 1 do
        if dense || Array.unsafe_get mask l then begin
          let k = Array.unsafe_get ri (kb + l) in
          (* already bounds-checked by the paired Check_arr *)
          Array.unsafe_set arr ((k * n) + l) (Array.unsafe_get rf (vb + l))
        end
      done
    | Branch (cmp, la, ra, target) ->
      let lb = la * n and rb = ra * n in
      push_region target;
      let live = ref false in
      for l = 0 to n - 1 do
        if dense || Array.unsafe_get mask l then begin
          let lhs = Array.unsafe_get rf (lb + l) in
          let rhs = Array.unsafe_get rf (rb + l) in
          if Interp.ccmp ~nan_taken cmp lhs rhs then live := true
          else mask.(l) <- false
        end
      done;
      if not !live then begin
        pop_region ();
        pc := target
      end
    | Loop (islot, bound, back) ->
      (* trip counts are uniform: every active lane entered through the
         same Iconst and increments in lockstep, so any active lane's
         counter decides the back-edge. With no active lane (all lanes
         in this region trapped) fall through: nothing between here and
         the region end can change observable state. *)
      let l0 = if dense then 0 else first_active () in
      if l0 < n then begin
        let k = Array.unsafe_get ri ((islot * n) + l0) + 1 in
        if k < bound then begin
          let dst = islot * n in
          if dense then
            for l = 0 to n - 1 do
              Array.unsafe_set ri (dst + l) k
            done
          else
            for l = 0 to n - 1 do
              if Array.unsafe_get mask l then Array.unsafe_set ri (dst + l) k
            done;
          pc := back
        end
      end
  done;
  (* ops executed while dense apply to every lane; a trapped lane's
     count is never observed (its outcome re-raises the trap), so the
     unconditional add is safe *)
  if !dense_ops > 0 then
    for l = 0 to n - 1 do
      ops.(l) <- ops.(l) + !dense_ops
    done;
  traps

let run_batch p inputs_list =
  let n = List.length inputs_list in
  if n = 0 then []
  else begin
    let prec v = if p.f32 then Interp.round_f32 v else v in
    let rf = Array.make (max 1 (p.n_fregs * n)) 0.0 in
    let ri = Array.make (max 1 (p.n_iregs * n)) 0 in
    let ba = Array.map (fun len -> Array.make (max 1 (len * n)) 0.0) p.arr_lens in
    let ops = Array.make n 0 in
    (* broadcast the constant pools into their registers *)
    Array.iteri
      (fun c v ->
        let base = (p.n_f + c) * n in
        for l = 0 to n - 1 do
          rf.(base + l) <- v
        done)
      p.consts;
    Array.iteri
      (fun c v ->
        let base = (p.n_i + c) * n in
        for l = 0 to n - 1 do
          ri.(base + l) <- v
        done)
      p.iconsts;
    List.iteri
      (fun l (inputs : Inputs.t) ->
        if List.length inputs <> List.length p.bindings then
          invalid_arg "Vm.run: input arity mismatch";
        List.iter2
          (fun (binding : Ir.param_binding) (value : Inputs.value) ->
            match (binding, value) with
            | Ir.Bind_fp slot, Inputs.Fp v -> rf.((slot * n) + l) <- prec v
            | Ir.Bind_int slot, Inputs.Int v -> ri.((slot * n) + l) <- v
            | Ir.Bind_arr (slot, len), Inputs.Arr a ->
              if Array.length a <> len then
                invalid_arg "Vm.run: array length mismatch";
              let dst = ba.(slot) in
              for k = 0 to len - 1 do
                dst.((k * n) + l) <- prec a.(k)
              done
            | _ -> invalid_arg "Vm.run: input kind mismatch")
          p.bindings inputs)
      inputs_list;
    for l = 0 to n - 1 do
      rf.((p.comp_slot * n) + l) <- 0.0
    done;
    let traps = exec_batch p rf ri ba ops n in
    (* extract in input order so the first trapped lane raises exactly
       as [List.map (run_with st p)] would have *)
    let rec extract l acc =
      if l = n then List.rev acc
      else
        match traps.(l) with
        | Some t -> raise (Interp.Trap t)
        | None ->
          extract (l + 1)
            ({ Interp.result = rf.((p.comp_slot * n) + l); fp_ops = ops.(l) }
            :: acc)
    in
    extract 0 []
  end
