(** The reference execution engine.

    Evaluates lowered/optimized IR exactly as written: one binary64 (or
    binary32, for [F32] programs) rounding per arithmetic node, fused
    multiply-adds with a single rounding, math calls dispatched to the
    configured vendor library, and optional flush-to-zero of subnormal
    operands and results (device fast math).

    This is the "run the binary" stage of the paper's pipeline: the
    returned accumulator value is what the generated program would print,
    and its bit pattern is what differential testing compares. The
    tree-walking evaluation here is the semantic reference; {!Vm} is the
    flattened production engine, gated bit-exactly against this module. *)

type runtime = {
  libm : Mathlib.Libm.flavor;
  ftz : bool;  (** flush subnormal operands/results of FP operations *)
  nan_cmp_taken : bool;
      (** finite-math-only branch compilation: when a comparison operand
          is NaN, the branch condition evaluates to [true] instead of
          IEEE's [false]. Real fast-math compilers are free to compile
          [x < y] into the negation of [x >= y]; gcc and nvcc do, clang
          keeps the IEEE-shaped sequence — so NaN-bearing programs
          branch differently across compilers under fast math. *)
}

type outcome = {
  result : float;   (** final value of [comp] *)
  fp_ops : int;     (** dynamic floating-point operation count *)
}

type trap = {
  array : int;   (** array slot of the offending subscript *)
  index : int;   (** the out-of-range index value *)
  length : int;  (** declared length of that array *)
}

exception Trap of trap
(** An out-of-bounds subscript at execution time. The generator's
    validator excludes these from campaign programs, but hand-built or
    reduced IR can still reach one; a typed error keeps it a reportable
    finding rather than a crash. *)

val trap_message : trap -> string
(** One-line human-readable rendering of a trap. *)

val run : runtime -> Ir.t -> Inputs.t -> outcome
(** Execute. Raises [Invalid_argument] when the input vector does not
    match the program's bindings, {!Trap} on an out-of-bounds
    subscript. *)

(**/**)

val round_f32 : float -> float
(** Round to the nearest binary32 value (storage/operation precision for
    [F32] programs). Shared with {!Vm}. *)

val check_bounds : array:int -> index:int -> length:int -> unit
(** Raise {!Trap} unless [0 <= index < length]. Shared with {!Vm}. *)

val ccmp : nan_taken:bool -> Lang.Ast.cmpop -> float -> float -> bool
(** C comparison semantics: every ordered comparison involving NaN is
    false and [!=] is true, unless [nan_taken] (finite-math codegen)
    forces NaN comparisons to take the branch. Shared with {!Vm}. *)
