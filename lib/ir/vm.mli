(** The flattened execution engine.

    {!Interp} walks the IR tree on every call: each node re-dispatches on
    its constructor, re-decides precision and flush-to-zero behavior, and
    re-chases slot arrays through the environment record. That cost is
    paid once per node {e per execution}, while the campaign loop runs
    every binary once per configuration per generated program — the
    hottest real-time phase of a run.

    This module moves all of that work to a single flatten pass:
    [flatten rt ir] compiles the tree into a flat array of three-address
    instructions over a register file laid out as program slots, pooled
    constants (pre-rounded to the program's storage precision), and
    stack-disciplined expression temps — all indices absolute and
    pre-validated, with the runtime (libm flavor, FTZ, NaN-branch
    polarity, precision) pre-bound into the program value. Slot reads
    and constants are plain operand references, so they cost no
    instructions at all. Execution is then a tight loop over unboxed
    [float array] registers — no tree dispatch, no bounds checks except
    for data-dependent array subscripts (which raise the same
    {!Interp.Trap} as the reference engine).

    Results are bit-exact with {!Interp.run} — same values, same
    [fp_ops] — which the [vm-equiv] property suite and the bench
    equivalence drill enforce. *)

type program
(** A flattened, runtime-bound program, ready to execute many times. *)

type state
(** Reusable register storage for a program. A state is valid only for
    the program it was created from. *)

val flatten : Interp.runtime -> Ir.t -> program
(** Compile the IR under the given runtime. Validates every slot index
    and binding once and sizes the register file; raises
    [Invalid_argument] on malformed IR (a slot out of declared range, a
    binding whose declared array length disagrees with [arr_lens]). *)

val code_size : program -> int
(** Number of flat instructions (for tests and diagnostics). *)

val disasm : program -> string list
(** One printable line per flat instruction, in code order (for tests
    and diagnostics). *)

val make_state : program -> state
(** Fresh storage sized for [program]: slots and temps zeroed, constant
    registers preloaded from the pool. *)

val run_with : state -> program -> Inputs.t -> Interp.outcome
(** Execute one input vector, reusing [state]'s storage (slot registers
    are re-zeroed first, so results are independent of prior runs). Raises
    [Invalid_argument] on an input vector that does not match the
    program's bindings, {!Interp.Trap} on an out-of-bounds subscript. *)

val run : program -> Inputs.t -> Interp.outcome
(** [run p inputs] is [run_with (make_state p) p inputs]. *)

val run_batch : program -> Inputs.t list -> Interp.outcome list
(** Execute every input vector in one pass over a single reused state —
    the compile-once/run-many entry point for batched evaluation. *)
