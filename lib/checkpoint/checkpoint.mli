(** Durable campaign checkpoints.

    The paper's campaigns are hours-long loops; a production service
    must survive a crash, OOM-kill or preemption mid-campaign without
    corrupting archives or discarding completed slots. A checkpoint is
    a versioned JSONL snapshot ([schema "llm4fp-checkpoint/3"]) of the
    {e complete} campaign loop state, written atomically
    ({!Util.Durable.write_atomic}) every N slots at a slot boundary:

    - both RNG streams (strategy and input), including the banked
      Box–Muller halves;
    - the LLM session ({!Llm.Client.snapshot}: its RNG, sampler usage,
      skeleton memory, clone-key history, call counters);
    - the running {!Difftest.Stats.t};
    - the {!Obs.Coverage} ledger (cells, rolling window, plateau
      state), so resumed runs keep emitting the same coverage events
      and telemetry an uninterrupted run would;
    - every valid program so far with its input vector and feedback
      flag (programs travel as C renderings — [Lang.Pp] and
      [Cparse.Parse] are structural inverses);
    - the simulated clock, generation-failure count, and the trace
      file's durable byte offset ({!Obs.Trace.sync});
    - the recorder's dedup set and counters, when one is attached;
    - for bandit campaigns, the arm posteriors with their rolling
      reward windows and the bandit stream's position, plus the grow
      arm's external seed pool (as C sources).

    [Harness.Campaign.run ~resume] restores all of it and continues at
    [next_slot]; the final outcome, trace bytes and case archives are
    identical to an uninterrupted run at any kill point and any job
    count.

    Sharded campaigns ([Harness.Fleet]) keep one checkpoint directory
    per chunk ([ROOT/chunk-%04d/ckpt/]), so a restarted shard resumes
    each interrupted chunk independently. Note the snapshot embeds the
    recorder's archive directory as an absolute path — byte-comparing
    two fleet roots must therefore exclude [ckpt/] (compare the
    per-chunk [outcome.json], trace and cases instead). *)

type slot = {
  program : Lang.Ast.program;
  inputs : Irsim.Inputs.t;
  feedback : bool;  (** member of the LLM4FP successful set *)
}

type recorder_state = {
  rec_dir : string;
  rec_seen : string list;  (** sorted fingerprints *)
  rec_recorded : int;
  rec_duplicates : int;
}

type t = {
  seed : int;
  approach : string;  (** {!Harness.Approach.name} *)
  budget : int;
  precision : string;  (** ["fp64"] or ["fp32"] *)
  interval : int;  (** slots between checkpoints *)
  next_slot : int;  (** first slot the resumed run executes *)
  generation_failures : int;
  sim_seconds : float;
  rng : int64 * float option;
  input_rng : int64 * float option;
  trace_offset : int option;
      (** durable byte offset of the trace file at the boundary; a
          resumed run truncates the trace back to it *)
  bandit : Obs.Json.t option;
      (** the bandit posterior and its stream position, opaque to this
          layer ([Harness.Bandit.to_json] produced it and
          [Harness.Bandit.restore] consumes it); [None] outside bandit
          campaigns *)
  grow_seeds : string list;
      (** C renderings of the grow arm's external seed pool, so resume
          rebuilds the exact pool without the archive directory *)
  client : Llm.Client.snapshot;
  stats : Difftest.Stats.t;
  coverage : Obs.Coverage.t;
  recorder : recorder_state option;
  slots : slot list;  (** valid programs in slot order *)
}

val path : dir:string -> string
(** [DIR/checkpoint.jsonl]. *)

val write : dir:string -> t -> unit
(** Atomically (re)write the checkpoint file. An
    {!Exec.Faults.Checkpoint_write} injection site — a crash here
    leaves the {e previous} checkpoint intact. *)

val load : dir:string -> (t, string) result
(** Read and fully decode a checkpoint, re-parsing stored programs.
    Truncation, schema or shape problems yield [Error] naming the file
    and line. *)

val reopen_trace : path:string -> t -> out_channel
(** Open the trace file for a resumed run: truncate to the
    checkpoint's [trace_offset] (events from slots after the
    checkpoint — flushed by the crashed run — are discarded) and
    position for appending. The caller owns the channel. *)
