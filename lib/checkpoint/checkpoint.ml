(* Durable campaign snapshots.

   A checkpoint is one JSONL file, [DIR/checkpoint.jsonl], written
   atomically (temp + rename, fsync'd) at a slot boundary. It carries
   the complete loop state — both RNG streams, the LLM session, the
   running statistics, the valid-slot history with feedback flags, the
   simulated clock, the recorder's dedup state, and the trace file's
   durable byte offset — so a resumed run replays the remaining slots
   as if the interruption never happened.

   Programs travel as their C rendering and are re-parsed on load:
   [Lang.Pp] and [Cparse.Parse] are structural inverses, so the decoded
   ASTs are the exact trees the original run held.

   Layout (one JSON object per line):
     1. header     — identity, counters, both RNG states, trace offset
     2. LLM client — the {!Llm.Client.snapshot} payload
     3. statistics — {!Difftest.Stats.to_json}
     4. coverage   — {!Obs.Coverage.to_json} (schema 2; always present)
     5. recorder   — dedup set and counters (only when [has_recorder])
     n. slots      — one line per valid program, in slot order *)

let schema = "llm4fp-checkpoint/3"
let file_name = "checkpoint.jsonl"
let path ~dir = Filename.concat dir file_name

type slot = {
  program : Lang.Ast.program;
  inputs : Irsim.Inputs.t;
  feedback : bool;
}

type recorder_state = {
  rec_dir : string;
  rec_seen : string list;
  rec_recorded : int;
  rec_duplicates : int;
}

type t = {
  seed : int;
  approach : string;
  budget : int;
  precision : string;
  interval : int;
  next_slot : int;
  generation_failures : int;
  sim_seconds : float;
  rng : int64 * float option;
  input_rng : int64 * float option;
  trace_offset : int option;
  bandit : Obs.Json.t option;
      (* the Harness.Bandit posterior + stream position, stored as the
         opaque JSON Harness.Bandit.to_json produced (checkpoint sits
         below harness, so it cannot name the type); None outside
         bandit campaigns *)
  grow_seeds : string list;
      (* C renderings of the grow arm's external seed pool, so a
         resumed run rebuilds the exact pool without the archive
         directory it was loaded from *)
  client : Llm.Client.snapshot;
  stats : Difftest.Stats.t;
  coverage : Obs.Coverage.t;
  recorder : recorder_state option;
  slots : slot list;
}

(* ------------------------------------------------------------------ *)
(* Encoding *)

let rng_to_json (state, spare) =
  Obs.Json.Obj
    [ ("state", Obs.Json.String (Printf.sprintf "%016Lx" state));
      ( "spare",
        match spare with
        | None -> Obs.Json.Null
        | Some f -> Obs.Json.Float f ) ]

let header_to_json t =
  Obs.Json.Obj
    [ ("schema", Obs.Json.String schema);
      ("seed", Obs.Json.Int t.seed);
      ("approach", Obs.Json.String t.approach);
      ("budget", Obs.Json.Int t.budget);
      ("precision", Obs.Json.String t.precision);
      ("interval", Obs.Json.Int t.interval);
      ("next_slot", Obs.Json.Int t.next_slot);
      ("generation_failures", Obs.Json.Int t.generation_failures);
      ("sim_seconds", Obs.Json.Float t.sim_seconds);
      ("rng", rng_to_json t.rng);
      ("input_rng", rng_to_json t.input_rng);
      ( "trace_offset",
        match t.trace_offset with
        | None -> Obs.Json.Null
        | Some n -> Obs.Json.Int n );
      ( "bandit",
        match t.bandit with None -> Obs.Json.Null | Some json -> json );
      ( "grow_seeds",
        Obs.Json.List (List.map (fun s -> Obs.Json.String s) t.grow_seeds) );
      ("slots", Obs.Json.Int (List.length t.slots));
      ("has_recorder", Obs.Json.Bool (t.recorder <> None)) ]

let client_to_json (c : Llm.Client.snapshot) =
  Obs.Json.Obj
    [ ("rng", rng_to_json c.Llm.Client.snap_rng);
      ( "sampler",
        Obs.Json.List
          (List.map
             (fun (k, n) -> Obs.Json.List [ Obs.Json.String k; Obs.Json.Int n ])
             c.Llm.Client.snap_sampler) );
      ( "skeletons",
        Obs.Json.List
          (List.map (fun s -> Obs.Json.String s) c.Llm.Client.snap_skeletons)
      );
      ( "seen",
        Obs.Json.List
          (List.map (fun s -> Obs.Json.String s) c.Llm.Client.snap_seen) );
      ("calls", Obs.Json.Int c.Llm.Client.snap_calls);
      ("total_latency", Obs.Json.Float c.Llm.Client.snap_total_latency) ]

let recorder_to_json r =
  Obs.Json.Obj
    [ ("dir", Obs.Json.String r.rec_dir);
      ( "seen",
        Obs.Json.List (List.map (fun s -> Obs.Json.String s) r.rec_seen) );
      ("recorded", Obs.Json.Int r.rec_recorded);
      ("duplicates", Obs.Json.Int r.rec_duplicates) ]

let slot_to_json s =
  Obs.Json.Obj
    [ ("source", Obs.Json.String (Lang.Pp.to_c s.program));
      ( "inputs",
        Obs.Json.List (List.map Difftest.Case.input_to_json s.inputs) );
      ("feedback", Obs.Json.Bool s.feedback) ]

let write ~dir t =
  Exec.Faults.inject Exec.Faults.Checkpoint_write;
  Util.Durable.write_atomic ~path:(path ~dir) (fun oc ->
      let line json =
        output_string oc (Obs.Json.to_string json);
        output_char oc '\n'
      in
      line (header_to_json t);
      line (client_to_json t.client);
      line (Difftest.Stats.to_json t.stats);
      line (Obs.Coverage.to_json t.coverage);
      (match t.recorder with None -> () | Some r -> line (recorder_to_json r));
      List.iter (fun s -> line (slot_to_json s)) t.slots)

(* ------------------------------------------------------------------ *)
(* Decoding *)

let ( let* ) = Result.bind

let err fmt = Printf.ksprintf (fun m -> Error ("checkpoint: " ^ m)) fmt

let field name json =
  match Obs.Json.member name json with
  | Some v -> Ok v
  | None -> err "missing field %S" name

let int_field name json =
  match field name json with
  | Ok (Obs.Json.Int n) -> Ok n
  | Ok _ -> err "field %S is not an int" name
  | Error e -> Error e

let string_field name json =
  match field name json with
  | Ok (Obs.Json.String s) -> Ok s
  | Ok _ -> err "field %S is not a string" name
  | Error e -> Error e

let float_field name json =
  match field name json with
  | Ok (Obs.Json.Float f) -> Ok f
  | Ok (Obs.Json.Int n) -> Ok (float_of_int n)
  | Ok _ -> err "field %S is not a number" name
  | Error e -> Error e

let bool_field name json =
  match field name json with
  | Ok (Obs.Json.Bool b) -> Ok b
  | Ok _ -> err "field %S is not a bool" name
  | Error e -> Error e

let string_list name json =
  match field name json with
  | Ok (Obs.Json.List items) ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          match item with
          | Obs.Json.String s -> Ok (s :: acc)
          | _ -> err "field %S holds a non-string element" name)
        (Ok []) items
      |> Result.map List.rev
  | Ok _ -> err "field %S is not a list" name
  | Error e -> Error e

let rng_of_json name json =
  let* state_s = string_field "state" json in
  let* state =
    match Int64.of_string_opt ("0x" ^ state_s) with
    | Some v -> Ok v
    | None -> err "%s: state %S is not 16 hex digits" name state_s
  in
  let* spare =
    match Obs.Json.member "spare" json with
    | Some Obs.Json.Null -> Ok None
    | Some (Obs.Json.Float f) -> Ok (Some f)
    | Some (Obs.Json.Int n) -> Ok (Some (float_of_int n))
    | _ -> err "%s: malformed spare" name
  in
  Ok (state, spare)

let client_of_json json =
  let* rng_json = field "rng" json in
  let* snap_rng = rng_of_json "client rng" rng_json in
  let* snap_sampler =
    match field "sampler" json with
    | Ok (Obs.Json.List items) ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            match item with
            | Obs.Json.List [ Obs.Json.String k; Obs.Json.Int n ] ->
                Ok ((k, n) :: acc)
            | _ -> err "malformed sampler entry")
          (Ok []) items
        |> Result.map List.rev
    | Ok _ -> err "field \"sampler\" is not a list"
    | Error e -> Error e
  in
  let* snap_skeletons = string_list "skeletons" json in
  let* snap_seen = string_list "seen" json in
  let* snap_calls = int_field "calls" json in
  let* snap_total_latency = float_field "total_latency" json in
  Ok
    {
      Llm.Client.snap_rng;
      snap_sampler;
      snap_skeletons;
      snap_seen;
      snap_calls;
      snap_total_latency;
    }

let recorder_of_json json =
  let* rec_dir = string_field "dir" json in
  let* rec_seen = string_list "seen" json in
  let* rec_recorded = int_field "recorded" json in
  let* rec_duplicates = int_field "duplicates" json in
  Ok { rec_dir; rec_seen; rec_recorded; rec_duplicates }

let slot_of_json json =
  let* source = string_field "source" json in
  let* program =
    match Cparse.Parse.program source with
    | Ok p -> Ok p
    | Error msg -> err "stored program no longer parses (%s)" msg
  in
  let* inputs =
    match field "inputs" json with
    | Ok (Obs.Json.List items) ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let* v = Difftest.Case.input_of_json item in
            Ok (v :: acc))
          (Ok []) items
        |> Result.map List.rev
    | Ok _ -> err "field \"inputs\" is not a list"
    | Error e -> Error e
  in
  let* feedback = bool_field "feedback" json in
  Ok { program; inputs; feedback }

let parse_line ~path i line =
  match Obs.Json.parse line with
  | Ok json -> Ok json
  | Error msg -> err "%s: line %d: %s" path i msg

let load ~dir =
  let p = path ~dir in
  match open_in_bin p with
  | exception Sys_error msg -> Error ("checkpoint: " ^ msg)
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let lines = ref [] in
          (try
             while true do
               lines := input_line ic :: !lines
             done
           with End_of_file -> ());
          match List.rev !lines with
          | [] -> err "%s: empty file" p
          | header_line :: rest ->
              let* header = parse_line ~path:p 1 header_line in
              let* schema_got = string_field "schema" header in
              let* () =
                if schema_got = schema then Ok ()
                else err "%s: unsupported schema %S" p schema_got
              in
              let* seed = int_field "seed" header in
              let* approach = string_field "approach" header in
              let* budget = int_field "budget" header in
              let* precision = string_field "precision" header in
              let* interval = int_field "interval" header in
              let* next_slot = int_field "next_slot" header in
              let* generation_failures =
                int_field "generation_failures" header
              in
              let* sim_seconds = float_field "sim_seconds" header in
              let* rng_json = field "rng" header in
              let* rng = rng_of_json "rng" rng_json in
              let* input_rng_json = field "input_rng" header in
              let* input_rng = rng_of_json "input_rng" input_rng_json in
              let* trace_offset =
                match Obs.Json.member "trace_offset" header with
                | Some Obs.Json.Null -> Ok None
                | Some (Obs.Json.Int n) -> Ok (Some n)
                | _ -> err "%s: malformed trace_offset" p
              in
              let* bandit =
                match Obs.Json.member "bandit" header with
                | Some Obs.Json.Null -> Ok None
                | Some (Obs.Json.Obj _ as json) -> Ok (Some json)
                | _ -> err "%s: malformed bandit state" p
              in
              let* grow_seeds = string_list "grow_seeds" header in
              let* n_slots = int_field "slots" header in
              let* has_recorder = bool_field "has_recorder" header in
              let expected =
                3 + (if has_recorder then 1 else 0) + n_slots
              in
              let* () =
                if List.length rest = expected then Ok ()
                else
                  err
                    "%s: truncated or padded file (expected %d lines after \
                     the header, found %d)"
                    p expected (List.length rest)
              in
              let* client_json =
                parse_line ~path:p 2 (List.nth rest 0)
              in
              let* client = client_of_json client_json in
              let* stats_json = parse_line ~path:p 3 (List.nth rest 1) in
              let* stats =
                Result.map_error
                  (fun m -> "checkpoint: " ^ m)
                  (Difftest.Stats.of_json stats_json)
              in
              let* coverage_json = parse_line ~path:p 4 (List.nth rest 2) in
              let* coverage =
                Result.map_error
                  (fun m -> "checkpoint: " ^ m)
                  (Obs.Coverage.of_json coverage_json)
              in
              let rest = List.filteri (fun i _ -> i >= 3) rest in
              let* recorder, rest =
                if has_recorder then
                  match rest with
                  | line :: tl ->
                      let* json = parse_line ~path:p 5 line in
                      let* r = recorder_of_json json in
                      Ok (Some r, tl)
                  | [] -> err "%s: missing recorder line" p
                else Ok (None, rest)
              in
              let* slots =
                List.fold_left
                  (fun acc (i, line) ->
                    let* acc = acc in
                    let* json = parse_line ~path:p i line in
                    let* s = slot_of_json json in
                    Ok (s :: acc))
                  (Ok [])
                  (List.mapi (fun i l -> (i + 1, l)) rest)
                |> Result.map List.rev
              in
              Ok
                {
                  seed;
                  approach;
                  budget;
                  precision;
                  interval;
                  next_slot;
                  generation_failures;
                  sim_seconds;
                  rng;
                  input_rng;
                  trace_offset;
                  bandit;
                  grow_seeds;
                  client;
                  stats;
                  coverage;
                  recorder;
                  slots;
                })

(* ------------------------------------------------------------------ *)
(* Trace file reopening *)

let reopen_trace ~path:trace_path t =
  let offset = Option.value t.trace_offset ~default:0 in
  let fd =
    Unix.openfile trace_path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644
  in
  (match Unix.ftruncate fd offset with
  | () -> ignore (Unix.lseek fd offset Unix.SEEK_SET)
  | exception e ->
      Unix.close fd;
      raise e);
  Unix.out_channel_of_descr fd
