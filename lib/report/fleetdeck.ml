(* Fleet supervisor status frame.

   Like Flightdeck, this module only renders: the supervisor folds
   child traces and process states into plain [shard] rows and calls
   [render]. Every figure comes from deterministic event payloads or
   process bookkeeping, never wall time, so equal rows render equal
   bytes — which is what lets the CLI tests assert on frames. *)

type shard = {
  shard : int;
  state : string;
  restarts : int;
  chunks_done : int;
  chunks_total : int;
  slots_done : int;
  slots_total : int;
  inconsistencies : int;
}

let bar ~width ~total done_ =
  if total <= 0 then String.make width '-'
  else begin
    let filled =
      max 0 (min width (done_ * width / total))
    in
    String.make filled '#' ^ String.make (width - filled) '.'
  end

let render ~title shards =
  let rows =
    List.map
      (fun s ->
        [ string_of_int s.shard;
          s.state;
          Printf.sprintf "%d/%d" s.chunks_done s.chunks_total;
          Printf.sprintf "%d/%d" s.slots_done s.slots_total;
          bar ~width:20 ~total:s.slots_total s.slots_done;
          string_of_int s.inconsistencies;
          string_of_int s.restarts ])
      shards
  in
  let sum f = List.fold_left (fun acc s -> acc + f s) 0 shards in
  let totals =
    Printf.sprintf
      "fleet: %d/%d chunks, %d/%d slots, %d inconsistencies, %d restart(s)\n"
      (sum (fun s -> s.chunks_done))
      (sum (fun s -> s.chunks_total))
      (sum (fun s -> s.slots_done))
      (sum (fun s -> s.slots_total))
      (sum (fun s -> s.inconsistencies))
      (sum (fun s -> s.restarts))
  in
  Table.render ~title
    ~header:
      [ "shard"; "state"; "chunks"; "slots"; "progress"; "inconsistencies";
        "restarts" ]
    ~align:
      [ Table.Right; Table.Left; Table.Right; Table.Right; Table.Left;
        Table.Right; Table.Right ]
    rows
  ^ totals
