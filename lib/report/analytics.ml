type case = {
  fingerprint : string;
  kind : string;
  pair : string;
  level : string;
  class_pair : string;
  digits : int;
  slot : int;
}

type latency = {
  metric : string;
  count : int;
  p50 : float;
  p95 : float;
  p99 : float;
}

type t = { cases : case list (* unique fingerprints, sorted by them *) }

let build cases =
  let seen = Hashtbl.create 64 in
  let unique =
    List.filter
      (fun c ->
        if Hashtbl.mem seen c.fingerprint then false
        else begin
          Hashtbl.add seen c.fingerprint ();
          true
        end)
      cases
  in
  {
    cases =
      List.sort (fun a b -> String.compare a.fingerprint b.fingerprint) unique;
  }

let total t = List.length t.cases

let count_kind t k =
  List.length (List.filter (fun c -> c.kind = k) t.cases)

let cross_total t = count_kind t "cross"
let within_total t = count_kind t "within"

(* Group by a string key, keys sorted; group members keep case order. *)
let group key cases =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun c ->
      let k = key c in
      Hashtbl.replace tbl k
        (c :: Option.value ~default:[] (Hashtbl.find_opt tbl k)))
    cases;
  Hashtbl.fold (fun k v acc -> (k, List.rev v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let digit_stats cases =
  match List.map (fun c -> c.digits) cases with
  | [] -> ("-", "-", "-")
  | d :: ds ->
    let mn = List.fold_left min d ds in
    let mx = List.fold_left max d ds in
    let sum = List.fold_left ( + ) d ds in
    ( string_of_int mn,
      string_of_int mx,
      Printf.sprintf "%.2f" (float_of_int sum /. float_of_int (1 + List.length ds))
    )

let by_pair t =
  let header = [ "kind"; "pair"; "cases"; "digits min"; "max"; "mean" ] in
  let rows =
    group (fun c -> c.kind ^ "\x00" ^ c.pair) t.cases
    |> List.map (fun (key, cases) ->
           let kind, pair =
             match String.index_opt key '\x00' with
             | Some i ->
               ( String.sub key 0 i,
                 String.sub key (i + 1) (String.length key - i - 1) )
             | None -> (key, "")
           in
           let mn, mx, mean = digit_stats cases in
           [ kind; pair; string_of_int (List.length cases); mn; mx; mean ])
  in
  (header, rows)

let by_level t =
  let header = [ "level"; "cross"; "within"; "total" ] in
  let rows =
    group (fun c -> c.level) t.cases
    |> List.map (fun (level, cases) ->
           let cross = List.filter (fun c -> c.kind = "cross") cases in
           [ level;
             string_of_int (List.length cross);
             string_of_int (List.length cases - List.length cross);
             string_of_int (List.length cases) ])
  in
  (header, rows)

let by_class t =
  let header = [ "classes"; "cases"; "digits min"; "max"; "mean" ] in
  let rows =
    group (fun c -> c.class_pair) t.cases
    |> List.map (fun (class_pair, cases) ->
           let mn, mx, mean = digit_stats cases in
           [ class_pair; string_of_int (List.length cases); mn; mx; mean ])
  in
  (header, rows)

(* Pair × level case-density grid. Cells carry a shade glyph scaled to
   the densest cell plus the count, so the terminal rendering reads as
   a heatmap; the HTML rendering maps the same densities to background
   shading. Axes are sorted, so the grid is deterministic. *)
let heatmap_counts t =
  let pairs = List.map fst (group (fun c -> c.pair) t.cases) in
  let levels = List.map fst (group (fun c -> c.level) t.cases) in
  let count pair level =
    List.length
      (List.filter (fun c -> c.pair = pair && c.level = level) t.cases)
  in
  let grid =
    List.map (fun pair -> (pair, List.map (count pair) levels)) pairs
  in
  let max_n =
    List.fold_left
      (fun acc (_, row) -> List.fold_left max acc row)
      0 grid
  in
  (levels, grid, max_n)

let shade_glyphs = [| "\xe2\x96\x91"; "\xe2\x96\x92"; "\xe2\x96\x93";
                     "\xe2\x96\x88" |]

let shade_index ~max_n n =
  (* 1..4 for n > 0, proportional to the densest cell. *)
  if n <= 0 || max_n <= 0 then 0
  else min 4 (((4 * n) + max_n - 1) / max_n)

let heatmap t =
  let levels, grid, max_n = heatmap_counts t in
  let header = "pair \\ level" :: levels in
  let rows =
    List.map
      (fun (pair, row) ->
        pair
        :: List.map
             (fun n ->
               match shade_index ~max_n n with
               | 0 -> "\xc2\xb7" (* · *)
               | i -> Printf.sprintf "%s %d" shade_glyphs.(i - 1) n)
             row)
      grid
  in
  (header, rows)

let latency_table latencies =
  ( [ "histogram"; "n"; "p50"; "p95"; "p99" ],
    List.map
      (fun l ->
        [ l.metric;
          string_of_int l.count;
          Printf.sprintf "%.6g" l.p50;
          Printf.sprintf "%.6g" l.p95;
          Printf.sprintf "%.6g" l.p99 ])
      latencies )

let overview t =
  [ ("archived cases", total t);
    ("cross-compiler", cross_total t);
    ("within-compiler", within_total t);
    ("compiler pairs", List.length (group (fun c -> c.pair) t.cases));
    ("optimization levels", List.length (group (fun c -> c.level) t.cases));
    ("value-class pairs", List.length (group (fun c -> c.class_pair) t.cases))
  ]

let render_tty ?(latencies = []) ?(title = "campaign forensics") t =
  let b = Buffer.create 1024 in
  Buffer.add_string b (title ^ "\n");
  List.iter
    (fun (label, n) ->
      Buffer.add_string b (Printf.sprintf "  %-20s %s\n" label (Table.commas n)))
    (overview t);
  Buffer.add_char b '\n';
  let section title (header, rows) =
    Buffer.add_string b (Table.render ~title ~header rows);
    Buffer.add_char b '\n'
  in
  section "by compiler pair" (by_pair t);
  section "by optimization level" (by_level t);
  section "by value-class pair" (by_class t);
  if t.cases <> [] then
    section "coverage heatmap (cases per pair x level)" (heatmap t);
  if latencies <> [] then
    section "latency percentiles" (latency_table latencies);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* HTML *)

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string b "&amp;"
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '"' -> Buffer.add_string b "&quot;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let style =
  "body{font-family:system-ui,sans-serif;margin:2rem auto;max-width:60rem;\
   padding:0 1rem;color:#1a1a2e;background:#fff}\n\
   h1{font-size:1.4rem;border-bottom:2px solid #1a1a2e;padding-bottom:.4rem}\n\
   h2{font-size:1.1rem;margin-top:2rem}\n\
   table{border-collapse:collapse;margin:.5rem 0;font-variant-numeric:\
   tabular-nums}\n\
   th,td{border:1px solid #c8c8d4;padding:.3rem .6rem;text-align:right}\n\
   th{background:#ececf4;text-align:left}\n\
   td:first-child,th:first-child{text-align:left}\n\
   .overview{display:flex;flex-wrap:wrap;gap:1rem;margin:1rem 0}\n\
   .stat{border:1px solid #c8c8d4;border-radius:.4rem;padding:.5rem .9rem}\n\
   .stat b{display:block;font-size:1.3rem}\n\
   .note{color:#5a5a6e;font-size:.9rem}\n\
   code{font-family:ui-monospace,monospace;font-size:.85rem}"

let html_table b (header, rows) =
  Buffer.add_string b "<table>\n<tr>";
  List.iter
    (fun h -> Buffer.add_string b ("<th>" ^ escape h ^ "</th>"))
    header;
  Buffer.add_string b "</tr>\n";
  List.iter
    (fun row ->
      Buffer.add_string b "<tr>";
      List.iter
        (fun cell -> Buffer.add_string b ("<td>" ^ escape cell ^ "</td>"))
        row;
      Buffer.add_string b "</tr>\n")
    rows;
  Buffer.add_string b "</table>\n"

let render_html ?(latencies = []) ?(max_cases = 100) ~title t =
  let b = Buffer.create 8192 in
  Buffer.add_string b "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n";
  Buffer.add_string b "<meta charset=\"utf-8\">\n";
  Buffer.add_string b ("<title>" ^ escape title ^ "</title>\n");
  Buffer.add_string b ("<style>" ^ style ^ "</style>\n</head>\n<body>\n");
  Buffer.add_string b ("<h1>" ^ escape title ^ "</h1>\n");
  Buffer.add_string b "<div class=\"overview\">\n";
  List.iter
    (fun (label, n) ->
      Buffer.add_string b
        (Printf.sprintf "<div class=\"stat\"><b>%s</b>%s</div>\n"
           (Table.commas n) (escape label)))
    (overview t);
  Buffer.add_string b "</div>\n";
  let section heading table =
    Buffer.add_string b ("<h2>" ^ escape heading ^ "</h2>\n");
    html_table b table
  in
  section "By compiler pair" (by_pair t);
  section "By optimization level" (by_level t);
  section "By value-class pair" (by_class t);
  (if t.cases <> [] then begin
     let levels, grid, max_n = heatmap_counts t in
     Buffer.add_string b "<h2>Coverage heatmap</h2>\n";
     Buffer.add_string b "<table>\n<tr><th>pair \\ level</th>";
     List.iter
       (fun l -> Buffer.add_string b ("<th>" ^ escape l ^ "</th>"))
       levels;
     Buffer.add_string b "</tr>\n";
     List.iter
       (fun (pair, row) ->
         Buffer.add_string b ("<tr><td>" ^ escape pair ^ "</td>");
         List.iter
           (fun n ->
             if n = 0 then Buffer.add_string b "<td></td>"
             else begin
               (* Density shading on the same 4-step scale as the TTY
                  glyphs; text flips to white on the darkest steps. *)
               let i = shade_index ~max_n n in
               let bg = [| "#dfe3f5"; "#aab4e4"; "#6574c4"; "#2c3a8c" |] in
               Buffer.add_string b
                 (Printf.sprintf
                    "<td style=\"background:%s%s\">%d</td>"
                    bg.(i - 1)
                    (if i >= 3 then ";color:#fff" else "")
                    n)
             end)
           row;
         Buffer.add_string b "</tr>\n")
       grid;
     Buffer.add_string b "</table>\n"
   end);
  if latencies <> [] then
    section "Latency percentiles" (latency_table latencies);
  Buffer.add_string b "<h2>Cases</h2>\n";
  let shown =
    List.filteri (fun i _ -> i < max_cases) t.cases
  in
  html_table b
    ( [ "fingerprint"; "kind"; "pair"; "level"; "classes"; "digits"; "slot" ],
      List.map
        (fun c ->
          [ c.fingerprint; c.kind; c.pair; c.level; c.class_pair;
            string_of_int c.digits; string_of_int c.slot ])
        shown );
  if total t > max_cases then
    Buffer.add_string b
      (Printf.sprintf
         "<p class=\"note\">Showing the first %d of %d cases (fingerprint \
          order); the full set is in the case archive.</p>\n"
         max_cases (total t));
  Buffer.add_string b
    "<p class=\"note\">Replay any case with <code>llm4fp explain \
     &lt;fingerprint&gt;</code>.</p>\n";
  Buffer.add_string b "</body>\n</html>\n";
  Buffer.contents b
