(* The campaign flight deck: one renderable frame of campaign
   progress. The view is a plain fold-friendly record (obs folds trace
   events into it; this module never sees an event), and [render] is a
   pure function of the view — every figure derives from deterministic
   event payloads and the simulated clock, so a frame rendered from a
   fixed-seed trace is byte-reproducible. *)

type view = {
  approach : string;
  budget : int;
  seed : int;
  precision : string;
  slots_started : int;
  slots_done : int;
  outcomes : (string * int) list;
  strategies : (string * int) list;
  arms : (string * int) list;
  arm_explores : int;
  programs : int;
  comparisons : int;
  cross_hits : int;
  hits : ((string * string) * int) list;
  cases : int;
  parse_failures : int;
  validation_failures : int;
  lat_count : int;
  lat_total_s : float;
  lat_max_s : float;
  recent_lat_s : float list;
  coverage_cells : int;
  coverage_cross : int;
  coverage_within : int;
  coverage_hits : int;
  novel_by_strategy : (string * int) list;
  last_novel_sim_s : float;
  coverage_window : float;
  sim_s : float;
  finished : bool;
}

let empty =
  {
    approach = "?";
    budget = 0;
    seed = 0;
    precision = "?";
    slots_started = 0;
    slots_done = 0;
    outcomes = [];
    strategies = [];
    arms = [];
    arm_explores = 0;
    programs = 0;
    comparisons = 0;
    cross_hits = 0;
    hits = [];
    cases = 0;
    parse_failures = 0;
    validation_failures = 0;
    lat_count = 0;
    lat_total_s = 0.0;
    lat_max_s = 0.0;
    recent_lat_s = [];
    coverage_cells = 0;
    coverage_cross = 0;
    coverage_within = 0;
    coverage_hits = 0;
    novel_by_strategy = [];
    last_novel_sim_s = 0.0;
    coverage_window = 0.0;
    sim_s = 0.0;
    finished = false;
  }

let sparkline values =
  (* Eight block heights scaled to the max of the window; a flat window
     renders mid-height so activity is still visible. *)
  match values with
  | [] -> ""
  | vs ->
    let hi = List.fold_left Float.max 0.0 vs in
    let glyphs = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83";
                    "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86";
                    "\xe2\x96\x87"; "\xe2\x96\x88" |] in
    String.concat ""
      (List.map
         (fun v ->
           let i =
             if hi <= 0.0 then 3
             else
               let x = int_of_float (v /. hi *. 7.0 +. 0.5) in
               if x < 0 then 0 else if x > 7 then 7 else x
           in
           glyphs.(i))
         vs)

let rate_per_sim_s v n =
  if v.sim_s <= 0.0 then "-"
  else Printf.sprintf "%.3f/s" (float_of_int n /. v.sim_s)

let seconds s = Printf.sprintf "%.1fs" s

let counted pairs =
  if pairs = [] then "-"
  else
    String.concat "   "
      (List.map (fun (k, n) -> Printf.sprintf "%s %d" k n) pairs)

let render v =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let pct_done =
    if v.budget = 0 then "-"
    else Table.pct1 (float_of_int v.slots_done /. float_of_int v.budget)
  in
  let eta =
    if v.finished then "done"
    else if v.slots_done = 0 || v.budget <= v.slots_done then "-"
    else
      seconds
        (float_of_int (v.budget - v.slots_done)
        *. (v.sim_s /. float_of_int v.slots_done))
  in
  line "== llm4fp flight deck ==";
  line "campaign    %s  seed %d  precision %s" v.approach v.seed v.precision;
  line "progress    slot %d/%d (%s)  sim %s  eta %s" v.slots_done v.budget
    pct_done (seconds v.sim_s) eta;
  line "throughput  slots %s  programs %s  comparisons %s"
    (rate_per_sim_s v v.slots_done)
    (rate_per_sim_s v v.programs)
    (rate_per_sim_s v v.comparisons);
  line "outcomes    %s" (counted v.outcomes);
  line "strategies  %s" (counted v.strategies);
  (* Only bandit campaigns emit Arm_chosen events, so fixed-arm frames
     are byte-identical to what they rendered before the bandit
     existed. *)
  if v.arms <> [] then
    line "bandit      %s  explore %d/%d" (counted v.arms) v.arm_explores
      (List.fold_left (fun acc (_, n) -> acc + n) 0 v.arms);
  let rejects =
    (if v.parse_failures > 0 || v.validation_failures > 0 then
       Printf.sprintf "  (parse %d, validation %d)" v.parse_failures
         v.validation_failures
     else "")
  in
  line "programs    %d compared, %d comparisons, %d cross hits, %d archived%s"
    v.programs v.comparisons v.cross_hits v.cases rejects;
  (if v.coverage_cells = 0 then line "coverage    -"
   else
     line "coverage    %d cells (cross %d, within %d)  %d hits  novel %s  \
           last novel %s"
       v.coverage_cells v.coverage_cross v.coverage_within v.coverage_hits
       (rate_per_sim_s v v.coverage_cells)
       (seconds v.last_novel_sim_s));
  if v.novel_by_strategy <> [] then
    line "novelty     %s" (counted v.novel_by_strategy);
  if
    v.coverage_window > 0.0
    && v.sim_s -. v.last_novel_sim_s >= v.coverage_window
  then
    line "!! plateau  no novel cell in %s of simulated time (last at %s)"
      (seconds v.coverage_window)
      (seconds v.last_novel_sim_s);
  (if v.lat_count > 0 then
     line "llm latency mean %s  max %s  %s"
       (seconds (v.lat_total_s /. float_of_int v.lat_count))
       (seconds v.lat_max_s)
       (sparkline v.recent_lat_s)
   else line "llm latency -");
  (if v.hits <> [] then begin
     let total = List.fold_left (fun s (_, n) -> s + n) 0 v.hits in
     let rows =
       List.map
         (fun ((pair, level), n) ->
           [ pair; level; string_of_int n;
             (if v.programs = 0 then "-"
              else Table.pct1 (float_of_int n /. float_of_int v.programs)) ])
         v.hits
     in
     Buffer.add_string buf
       (Table.render
          ~title:
            (Printf.sprintf "inconsistencies by pair x level (%d total)" total)
          ~header:[ "pair"; "level"; "hits"; "rate/program" ]
          rows)
   end);
  Buffer.contents buf
