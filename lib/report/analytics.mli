(** Campaign forensics analytics: fold an archive of inconsistency
    cases (plus optional latency percentiles from the metrics registry)
    into per-compiler-pair / per-optimization-level / per-value-class
    breakdown tables, rendered for the terminal or as a single-file
    HTML dashboard.

    This module sits in [report] deliberately: it knows nothing about
    compilers, difftest or the observability layer — callers project
    their cases into the plain {!case} record
    ({!Difftest.Case.to_analytics}) and their histograms into
    {!latency}. Both renderings are deterministic functions of the
    input (no wall-clock, no hash order): a fixed-seed campaign
    produces a byte-identical dashboard at any job count. *)

type case = {
  fingerprint : string;  (** content hash, the case's identity *)
  kind : string;         (** ["cross"] or ["within"] *)
  pair : string;  (** compiler pair, or compiler name for within cases *)
  level : string;        (** compared optimization level *)
  class_pair : string;   (** e.g. ["{Real, Zero}"] *)
  digits : int;          (** decimal digit difference *)
  slot : int;            (** provenance: campaign budget slot *)
}

type latency = {
  metric : string;
  count : int;
  p50 : float;
  p95 : float;
  p99 : float;
}

type t

val build : case list -> t
(** Cases are deduplicated by fingerprint and ordered internally, so
    [build] is insensitive to input order and duplicates. *)

val total : t -> int
val cross_total : t -> int
val within_total : t -> int

val by_pair : t -> string list * string list list
(** [(header, rows)]: per (kind, pair) — case count and digit-difference
    min/max/mean. Also feeds the CSV export. *)

val by_level : t -> string list * string list list
(** Per optimization level: cross cases, within cases, total. *)

val by_class : t -> string list * string list list
(** Per value-class pair: case count and digit statistics. *)

val shade_index : max_n:int -> int -> int
(** Density bucket 0–4 for a cell count against the grid maximum:
    0 for an empty cell, 4 for the densest, rounding up so any
    non-zero count gets at least the lightest shade. *)

val heatmap : t -> string list * string list list
(** The pair × level case-density grid: one row per pair, one column
    per level (both sorted), each populated cell rendered as a shade
    glyph (░▒▓█, scaled to the densest cell) plus the count; empty
    cells as ["·"]. The HTML rendering shows the same grid with
    background shading. *)

val render_tty : ?latencies:latency list -> ?title:string -> t -> string
(** Overview counts plus the three breakdown tables (and the latency
    table when given), as plain text. *)

val render_html :
  ?latencies:latency list -> ?max_cases:int -> title:string -> t -> string
(** The same content as one self-contained HTML document (embedded
    CSS, no external resources, no scripts). The per-case listing is
    capped at [max_cases] (default 100, by fingerprint order) with an
    explicit truncation note — nothing is dropped silently. *)
