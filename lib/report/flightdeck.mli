(** The campaign flight deck: one renderable frame of campaign
    progress.

    The {!view} is a plain record — [report] sits below [obs], so the
    trace-event fold that populates it lives in [Obs.Deck] and this
    module only renders. Every figure derives from deterministic event
    payloads and the simulated clock ([sim_s]), never wall time, so a
    frame rendered from a fixed-seed trace is byte-reproducible — the
    property behind the golden [watch --replay] test. *)

type view = {
  approach : string;
  budget : int;  (** total campaign slots *)
  seed : int;
  precision : string;
  slots_started : int;
  slots_done : int;
  outcomes : (string * int) list;  (** outcome name -> slots, sorted *)
  strategies : (string * int) list;  (** strategy arm -> slots, sorted *)
  arms : (string * int) list;
      (** bandit arm -> pulls, sorted; [[]] outside bandit campaigns,
          which keeps fixed-arm frames byte-identical *)
  arm_explores : int;  (** warmup + epsilon-exploration pulls *)
  programs : int;  (** differential tests completed *)
  comparisons : int;  (** cross + within comparisons *)
  cross_hits : int;  (** inconsistent cross-compiler comparisons *)
  hits : ((string * string) * int) list;
      (** (pair, level) -> inconsistency count, sorted *)
  cases : int;  (** first-seen cases archived *)
  parse_failures : int;
  validation_failures : int;
  lat_count : int;  (** modelled LLM call count *)
  lat_total_s : float;
  lat_max_s : float;
  recent_lat_s : float list;  (** sliding window, newest last *)
  coverage_cells : int;  (** distinct coverage cells discovered *)
  coverage_cross : int;  (** ... of kind cross *)
  coverage_within : int;  (** ... of kind within *)
  coverage_hits : int;  (** total coverage recordings incl. repeats *)
  novel_by_strategy : (string * int) list;
      (** strategy -> novel cells discovered, sorted *)
  last_novel_sim_s : float;
      (** simulated time of the latest novel cell; 0 before any *)
  coverage_window : float;
      (** plateau window (sim seconds); 0 until the fold learns it —
          the plateau banner only renders when positive *)
  sim_s : float;  (** simulated clock at the last slot boundary *)
  finished : bool;
}

val empty : view

val sparkline : float list -> string
(** Unicode block sparkline of the values, scaled to the window max;
    [""] for the empty list. *)

val render : view -> string
(** The full frame, trailing newline included. Pure: equal views render
    equal bytes. *)
