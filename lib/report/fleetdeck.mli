(** Fleet supervisor status frame: one row per shard process.

    Render-only, like {!Flightdeck}: the supervisor folds its
    children's traces and process states into {!shard} rows and calls
    {!render}. Pure — equal rows render equal bytes (no wall clock), so
    frames are assertable in tests. *)

type shard = {
  shard : int;           (** shard index, [0..N-1] *)
  state : string;        (** [running] / [done] / [crashed] / [failed] *)
  restarts : int;        (** times the supervisor respawned it *)
  chunks_done : int;     (** chunks with a durable outcome *)
  chunks_total : int;    (** chunks the shard owns *)
  slots_done : int;      (** slots finished across its chunks *)
  slots_total : int;     (** budget slots the shard owns *)
  inconsistencies : int; (** inconsistent comparisons streamed so far *)
}

val bar : width:int -> total:int -> int -> string
(** ASCII progress bar, [#] for done and [.] for remaining; all [-]
    when [total] is not positive. *)

val render : title:string -> shard list -> string
(** The status table plus a one-line fleet total, trailing newline
    included. *)
