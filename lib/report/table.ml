type align = Left | Right

let pad align width s =
  match align with
  | Left -> Util.Text.pad_right width s
  | Right -> Util.Text.pad_left width s

let render ?title ~header ?align rows =
  let n_cols = List.length header in
  let normalize row =
    let len = List.length row in
    if len >= n_cols then row
    else row @ List.init (n_cols - len) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let alignments =
    match align with
    | Some a when List.length a = n_cols -> a
    | _ -> List.mapi (fun i _ -> if i = 0 then Left else Right) header
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (Util.Text.display_width (List.nth row i)))
          (Util.Text.display_width h) rows)
      header
  in
  let rec rstrip s =
    let n = String.length s in
    if n > 0 && s.[n - 1] = ' ' then rstrip (String.sub s 0 (n - 1)) else s
  in
  let render_row row =
    List.map2
      (fun (cell, a) w -> pad a w cell)
      (List.combine row alignments)
      widths
    |> String.concat "  "
    |> rstrip
  in
  let separator =
    List.map (fun w -> String.make w '-') widths |> String.concat "  "
  in
  let body = List.map render_row rows in
  let lines = (render_row header :: separator :: body) in
  let lines = match title with None -> lines | Some t -> t :: lines in
  String.concat "\n" lines ^ "\n"

let pct x = Printf.sprintf "%.2f%%" (100.0 *. x)
let pct1 x = Printf.sprintf "%.1f%%" (100.0 *. x)

let commas n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3)) in
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  (if n < 0 then "-" else "") ^ Buffer.contents buf

let csv_cell cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv ~header rows =
  (header :: rows)
  |> List.map (fun row -> String.concat "," (List.map csv_cell row))
  |> String.concat "\n"
  |> fun s -> s ^ "\n"
