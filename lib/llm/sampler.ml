type params = {
  temperature : float;
  frequency_penalty : float;
  presence_penalty : float;
}

let paper_params =
  { temperature = 1.2; frequency_penalty = 0.5; presence_penalty = 0.6 }

type t = { p : params; counts : (string, int) Hashtbl.t }

let create p =
  if p.temperature <= 0.0 then invalid_arg "Sampler.create: temperature";
  { p; counts = Hashtbl.create 64 }

let params t = t.p

let usage t key = Option.value (Hashtbl.find_opt t.counts key) ~default:0

let usage_snapshot t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let restore_usage t entries =
  Hashtbl.reset t.counts;
  List.iter (fun (k, v) -> Hashtbl.replace t.counts k v) entries

let pick t rng items =
  if Array.length items = 0 then invalid_arg "Sampler.pick: no items";
  let logits =
    Array.map
      (fun (key, w, _) ->
        if w <= 0.0 then invalid_arg "Sampler.pick: non-positive weight";
        let n = usage t key in
        (* The frequency discount saturates: a real API penalizes tokens
           within its context window, not over an unbounded session, so
           long campaigns must not wash out all prior weighting. *)
        (log w /. t.p.temperature)
        -. (t.p.frequency_penalty *. float_of_int (min n 4))
        -. (if n > 0 then t.p.presence_penalty else 0.0))
      items
  in
  let m = Array.fold_left Float.max neg_infinity logits in
  let weights = Array.map (fun l -> exp (l -. m)) logits in
  let choices =
    Array.mapi (fun i (key, _, v) -> (weights.(i), (key, v))) items
  in
  let key, value = Util.Rng.weighted rng choices in
  Hashtbl.replace t.counts key (usage t key + 1);
  value
