(** The three prompt shapes of the paper.

    - {b Direct} (§3.2.1, Direct-Prompt baseline): "generate a random but
      valid floating-point C program", precision, the high-level
      main/compute structure, and the robustness guidelines — no grammar,
      no examples.
    - {b Grammar} (§2.3.1 and the Grammar-Guided baseline): Direct plus
      the Figure-2 grammar specification.
    - {b Mutate} (§2.3.2, Feedback-Based Mutation): change a given
      successful program into a different one; precision, structure,
      guidelines, the five mutation strategies, and the example program.

    [render] produces the literal prompt text (used for documentation,
    the examples, and latency accounting); the mock client consumes the
    structured value. *)

type t =
  | Direct of { precision : Lang.Ast.precision }
  | Grammar of { precision : Lang.Ast.precision }
  | Mutate of { precision : Lang.Ast.precision; example : Lang.Ast.program }

val kind : t -> string
(** ["direct"], ["grammar"] or ["mutate"] — the label trace events and
    metrics use for the prompt shape. *)

val guidelines : string list
(** The robustness/code-quality guidelines shared by all prompts
    (§2.3.1): allowed headers, initialization, no undefined behavior,
    plain-code output. *)

val mutation_strategy_names : string list
(** The paper's five mutation strategies, in order. *)

val grammar_text : string
(** A rendering of the Figure-2 grammar included in Grammar prompts. *)

val render : t -> string
(** Full prompt text. *)

val token_count : string -> int
(** Whitespace-delimited token estimate, used by the latency model. *)
