open Lang

type strategy =
  | Reorder_or_nest
  | Change_constants
  | Add_control_flow
  | Swap_math_fn
  | Insert_intermediates

let all =
  [| Reorder_or_nest; Change_constants; Add_control_flow; Swap_math_fn;
     Insert_intermediates |]

let name = function
  | Reorder_or_nest -> "reorder-or-nest"
  | Change_constants -> "change-constants"
  | Add_control_flow -> "add-control-flow"
  | Swap_math_fn -> "swap-math-fn"
  | Insert_intermediates -> "insert-intermediates"

(* ----------------------------------------------------------------- *)
(* Generic k-th-candidate expression rewriting. [pred] marks candidate
   nodes; the [k]-th one (pre-order across the whole body) is rewritten
   with [f]. Returns the new body and whether a rewrite happened. *)

let rewrite_kth_expr pred f k body =
  let counter = ref k in
  let changed = ref false in
  let rec visit e =
    if !changed then e
    else if pred e then begin
      if !counter = 0 then begin
        let e' = f e in
        (* swapping syntactically symmetric operands is a no-op; only
           report a change when the tree actually differs *)
        changed := e' <> e;
        if !changed then e'
        else
          (* The k-th candidate didn't rewrite; leave the counter at 0
             so the next candidate in pre-order (possibly a descendant
             of this node) gets its turn, instead of giving up. *)
          visit_children e
      end
      else begin
        decr counter;
        visit_children e
      end
    end
    else visit_children e
  and visit_children e =
    match e with
    | Ast.Lit _ | Ast.Int_lit _ | Ast.Var _ | Ast.Index _ -> e
    | Ast.Neg inner -> Ast.Neg (visit inner)
    | Ast.Bin (op, a, b) ->
      let a = visit a in
      let b = visit b in
      Ast.Bin (op, a, b)
    | Ast.Call (fn, args) -> Ast.Call (fn, List.map visit args)
  in
  (* Walk value positions only: array subscripts stay integer-typed, so
     they are never rewritten. *)
  let rec walk body =
    List.map
      (fun s ->
        match s with
        | Ast.Decl { name; init } -> Ast.Decl { name; init = visit init }
        | Ast.Assign { lhs; op; rhs } -> Ast.Assign { lhs; op; rhs = visit rhs }
        | Ast.If { lhs; cmp; rhs; body } ->
          Ast.If { lhs = visit lhs; cmp; rhs = visit rhs; body = walk body }
        | Ast.For r -> Ast.For { r with body = walk r.body })
      body
  in
  let body = walk body in
  (body, !changed)

(* Counts must mirror [rewrite_kth_expr]'s traversal (array subscripts
   and assignment targets are not visited), or the k-th candidate could
   be unreachable. *)
let count_exprs pred body =
  let rec count acc e =
    let acc = if pred e then acc + 1 else acc in
    match e with
    | Ast.Lit _ | Ast.Int_lit _ | Ast.Var _ | Ast.Index _ -> acc
    | Ast.Neg inner -> count acc inner
    | Ast.Bin (_, a, b) -> count (count acc a) b
    | Ast.Call (_, args) -> List.fold_left count acc args
  in
  let rec walk acc body =
    List.fold_left
      (fun acc s ->
        match s with
        | Ast.Decl { init; _ } -> count acc init
        | Ast.Assign { rhs; _ } -> count acc rhs
        | Ast.If { lhs; rhs; body; _ } -> walk (count (count acc lhs) rhs) body
        | Ast.For { body; _ } -> walk acc body)
      acc body
  in
  walk 0 body

(* ----------------------------------------------------------------- *)

let is_commutative = function
  | Ast.Bin ((Ast.Add | Ast.Mul), _, _) -> true
  | _ -> false

let reorder_or_nest rng (p : Ast.program) =
  let n = count_exprs is_commutative p.body in
  if n = 0 then (p, false)
  else begin
    let k = Util.Rng.int rng n in
    let rewrite e =
      match e with
      | Ast.Bin (op, Ast.Bin (op2, a, b), c) when op = op2 && Util.Rng.bool rng ->
        (* associativity rotation: (a op b) op c -> a op (b op c) *)
        Ast.Bin (op, a, Ast.Bin (op, b, c))
      | Ast.Bin (op, a, b) -> Ast.Bin (op, b, a)
      | e -> e
    in
    let body, changed = rewrite_kth_expr is_commutative rewrite k p.body in
    ({ p with body }, changed)
  end

let jitter_literal rng v =
  let factor =
    Util.Rng.choose rng
      [| 0.5; 2.0; 1.5; 0.75; 1.0 +. 1e-3; 1.0 -. 1e-3; 3.0; 0.1 |]
  in
  let v' = v *. factor in
  if Float.is_finite v' && v' <> 0.0 then v' else v +. 1.0

let change_constants rng (p : Ast.program) =
  let changed = ref false in
  let rec visit e =
    match e with
    | Ast.Lit v when Util.Rng.chance rng 0.4 ->
      changed := true;
      Ast.Lit (jitter_literal rng v)
    | Ast.Lit _ | Ast.Int_lit _ | Ast.Var _ | Ast.Index _ -> e
    | Ast.Neg inner -> Ast.Neg (visit inner)
    | Ast.Bin (op, a, b) -> Ast.Bin (op, visit a, visit b)
    | Ast.Call (fn, args) -> Ast.Call (fn, List.map visit args)
  in
  let rec shrink_bounds body =
    List.map
      (fun s ->
        match s with
        | Ast.For { var; bound; body } when bound > 2 && Util.Rng.chance rng 0.3 ->
          changed := true;
          Ast.For
            { var;
              bound = bound - 1 - Util.Rng.int rng (min 3 (bound - 2));
              body = shrink_bounds body }
        | Ast.For { var; bound; body } ->
          Ast.For { var; bound; body = shrink_bounds body }
        | Ast.If r -> Ast.If { r with body = shrink_bounds r.body }
        | Ast.Decl _ | Ast.Assign _ -> s)
      body
  in
  let body = Ast.map_exprs visit p.body in
  let body = shrink_bounds body in
  ({ p with body }, !changed)

let swap_groups =
  [
    [ Ast.Sin; Ast.Cos; Ast.Tan ];
    [ Ast.Asin; Ast.Acos; Ast.Atan ];
    [ Ast.Sinh; Ast.Cosh; Ast.Tanh ];
    [ Ast.Exp; Ast.Exp2; Ast.Expm1 ];
    [ Ast.Log; Ast.Log2; Ast.Log10; Ast.Log1p ];
    [ Ast.Sqrt; Ast.Cbrt; Ast.Fabs ];
    [ Ast.Floor; Ast.Ceil ];
    [ Ast.Pow; Ast.Atan2; Ast.Hypot; Ast.Fmod ];
    [ Ast.Fmin; Ast.Fmax ];
  ]

let swap_candidates fn =
  match List.find_opt (fun group -> List.mem fn group) swap_groups with
  | None -> []
  | Some group -> List.filter (fun g -> g <> fn) group

let is_call = function Ast.Call _ -> true | _ -> false

(* When the program is call-free, "use different math library functions"
   means introducing one: wrap a non-trivial multiplicative subexpression
   in a unary transcendental. *)
let introduce_call rng (p : Ast.program) =
  let eligible = function
    | Ast.Bin ((Ast.Mul | Ast.Add), _, _) -> true
    | _ -> false
  in
  let n = count_exprs eligible p.body in
  if n = 0 then (p, false)
  else begin
    let k = Util.Rng.int rng n in
    let fn =
      Util.Rng.choose rng
        [| Ast.Sin; Ast.Cos; Ast.Tanh; Ast.Atan; Ast.Expm1; Ast.Cbrt |]
    in
    let rewrite e = Ast.Call (fn, [ e ]) in
    let body, changed = rewrite_kth_expr eligible rewrite k p.body in
    ({ p with body }, changed)
  end

let swap_math_fn rng (p : Ast.program) =
  let n = count_exprs is_call p.body in
  if n = 0 then introduce_call rng p
  else begin
    let k = Util.Rng.int rng n in
    let rewrite e =
      match e with
      | Ast.Call (fn, args) -> begin
        match swap_candidates fn with
        | [] -> e
        | options -> Ast.Call (Util.Rng.choose_list rng options, args)
      end
      | e -> e
    in
    let body, changed = rewrite_kth_expr is_call rewrite k p.body in
    ({ p with body }, changed)
  end

(* Wrap a random top-level assignment in a small fresh loop or an if
   block guarded by a parameter. *)
let add_control_flow rng (p : Ast.program) =
  let indices =
    List.filteri (fun _ s -> match s with Ast.Assign _ -> true | _ -> false)
      p.body
    |> List.length
  in
  if indices = 0 then (p, false)
  else begin
    let target = Util.Rng.int rng indices in
    let scalar_params =
      List.filter_map
        (function Ast.P_fp name -> Some name | _ -> None)
        p.params
    in
    let seen = ref (-1) in
    let body =
      List.map
        (fun s ->
          match s with
          | Ast.Assign _ ->
            incr seen;
            if !seen <> target then s
            else if Util.Rng.bool rng || scalar_params = [] then begin
              let var = Ast.fresh_name p "k" in
              Ast.For
                { var; bound = Util.Rng.int_in rng 2 9; body = [ s ] }
            end
            else begin
              let guard = Util.Rng.choose_list rng scalar_params in
              Ast.If
                {
                  lhs = Ast.Var guard;
                  cmp = Util.Rng.choose rng [| Ast.Lt; Ast.Ge |];
                  rhs = Ast.Lit (Util.Rng.float_in rng (-5.0) 5.0);
                  body = [ s ];
                }
            end
          | s -> s)
        p.body
    in
    ({ p with body }, true)
  end

(* Hoist an interesting subexpression of some statement into a named
   temporary declared immediately before it. Works at any block depth. *)
let insert_intermediates rng (p : Ast.program) =
  let interesting e =
    match e with
    | Ast.Bin (Ast.Mul, _, _) | Ast.Call _ -> Ast.expr_size e >= 3
    | _ -> false
  in
  (* Count candidate statements: those whose rhs/init contains an
     interesting strict subexpression. *)
  let stmt_has s =
    match s with
    | Ast.Decl { init = e; _ } | Ast.Assign { rhs = e; _ } ->
      Ast.fold_expr (fun acc sub -> acc || (sub != e && interesting sub)) false e
    | Ast.If _ | Ast.For _ -> false
  in
  let rec count body =
    List.fold_left
      (fun acc s ->
        let nested =
          match s with
          | Ast.If { body; _ } | Ast.For { body; _ } -> count body
          | Ast.Decl _ | Ast.Assign _ -> 0
        in
        acc + (if stmt_has s then 1 else 0) + nested)
      0 body
  in
  let total = count p.body in
  if total = 0 then (p, false)
  else begin
    let target = ref (Util.Rng.int rng total) in
    let fresh = Ast.fresh_name p "part" in
    let hoist_in_expr e =
      (* choose one interesting strict subexpression occurrence *)
      let subs =
        Ast.fold_expr
          (fun acc sub -> if sub != e && interesting sub then sub :: acc else acc)
          [] e
      in
      match subs with
      | [] -> None
      | subs ->
        let chosen = Util.Rng.choose_list rng subs in
        let replaced = ref false in
        let rec replace cur =
          if !replaced then cur
          else if cur == chosen then begin
            replaced := true;
            Ast.Var fresh
          end
          else
            match cur with
            | Ast.Lit _ | Ast.Int_lit _ | Ast.Var _ | Ast.Index _ -> cur
            | Ast.Neg inner -> Ast.Neg (replace inner)
            | Ast.Bin (op, a, b) ->
              let a = replace a in
              let b = replace b in
              Ast.Bin (op, a, b)
            | Ast.Call (fn, args) -> Ast.Call (fn, List.map replace args)
        in
        let e' = replace e in
        if !replaced then Some (chosen, e') else None
    in
    let changed = ref false in
    let rec walk body =
      List.concat_map
        (fun s ->
          if !changed then [ recurse s ]
          else if stmt_has s then begin
            if !target > 0 then begin
              decr target;
              [ recurse s ]
            end
            else begin
              match s with
              | Ast.Decl { name; init } -> begin
                match hoist_in_expr init with
                | None -> [ s ]
                | Some (sub, init') ->
                  changed := true;
                  [ Ast.Decl { name = fresh; init = sub };
                    Ast.Decl { name; init = init' } ]
              end
              | Ast.Assign { lhs; op; rhs } -> begin
                match hoist_in_expr rhs with
                | None -> [ s ]
                | Some (sub, rhs') ->
                  changed := true;
                  [ Ast.Decl { name = fresh; init = sub };
                    Ast.Assign { lhs; op; rhs = rhs' } ]
              end
              | Ast.If _ | Ast.For _ -> [ s ]
            end
          end
          else [ recurse s ])
        body
    and recurse s =
      match s with
      | Ast.If r -> Ast.If { r with body = walk r.body }
      | Ast.For r -> Ast.For { r with body = walk r.body }
      | Ast.Decl _ | Ast.Assign _ -> s
    in
    let body = walk p.body in
    ({ p with body }, !changed)
  end

let apply rng strategy p =
  match strategy with
  | Reorder_or_nest -> reorder_or_nest rng p
  | Change_constants -> change_constants rng p
  | Add_control_flow -> add_control_flow rng p
  | Swap_math_fn -> swap_math_fn rng p
  | Insert_intermediates -> insert_intermediates rng p

let apply_n rng strategies p =
  List.fold_left
    (fun (p, n) strategy ->
      let p, changed = apply rng strategy p in
      (p, if changed then n + 1 else n))
    (p, 0) strategies
