(** The mock LLM client.

    Stands in for the paper's GPT-4.1-mini API endpoint (§3.1.4): takes a
    prompt, returns C source text, charges simulated latency. The
    response is {e text}, not an AST — exactly like a real model, it can
    occasionally be wrong (an unknown library function, a missing
    initializer), and the downstream compilation driver rejects such
    programs, consuming budget (§2.3.1 discusses why the guidelines exist
    to make this rare rather than impossible).

    Behaviour per prompt shape, modelling the paper's observations:

    - {b Direct}: samples from the "safe and common" corpus subset (the
      paper infers that open-ended prompts make the model follow common
      patterns), then applies light structural variation. High mutual
      similarity, no literal clones. Highest mistake rate (4%).
    - {b Grammar}: sticks to the given structure; with substantial
      probability it re-instantiates a remembered skeleton (fresh names,
      jittered constants) — the pattern-repetition the paper measures as
      a 42% CodeBLEU increase and the appearance of Type-2/2c clones.
      Otherwise it produces a fresh program: a corpus kernel restructured
      by mutation, or a grammar-derived composition.
    - {b Mutate}: applies one to three of the five mutation strategies to
      the example program.

    Latency: [rtt + prompt_tokens/input_rate + output_tokens/output_rate]
    with rtt 0.5 s, input 500 tok/s, output 55 tok/s — calibrated so a
    1000-program campaign spends roughly the hour of API time the paper
    reports (~30% of its LLM campaigns' wall-clock). *)

type t

val create : ?params:Sampler.params -> seed:int -> unit -> t
(** Deterministic session. [params] defaults to {!Sampler.paper_params}. *)

type response = {
  source : string;        (** C translation-unit or compute-function text *)
  latency : float;        (** simulated seconds for this call *)
  prompt_tokens : int;
  output_tokens : int;
}

val generate : t -> Prompt.t -> response
(** Transient failures ({!Exec.Faults.Transient}, injected before any
    generation randomness) are retried up to twice with deterministic
    exponential backoff folded into the response latency; exhaustion
    re-raises the original failure. A retried call returns the
    identical program. Counted by the [retry.llm.*] metrics. *)

val calls : t -> int
val total_latency : t -> float

type snapshot = {
  snap_rng : int64 * float option;
  snap_sampler : (string * int) list;
  snap_skeletons : string list;  (** C renderings, newest first *)
  snap_seen : string list;  (** sorted clone keys *)
  snap_calls : int;
  snap_total_latency : float;
}
(** The complete mutable session state, in durable (string/number)
    form: skeletons travel as their C rendering and are re-parsed on
    restore ([Pp]/[Cparse.Parse] are structural inverses). *)

val snapshot : t -> snapshot

val restore : t -> snapshot -> (unit, string) result
(** Overwrite [t]'s session state with [snapshot]. After a successful
    restore, [t] replays exactly the stream the snapshotted session
    would have produced. Fails (naming the skeleton) if a stored
    rendering no longer parses. *)

val generation_config : Gen.Gen_config.t
(** The regime for grammar-derived composition and for drawing runtime
    inputs for LLM-generated programs (sensible magnitudes). *)

val flaw_rate : Prompt.t -> float
(** Probability this prompt shape yields an invalid program (exposed for
    tests and documentation). *)
