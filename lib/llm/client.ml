open Lang
open Gen

type t = {
  rng : Util.Rng.t;
  sampler : Sampler.t;
  mutable skeletons : Ast.program list;
  seen_structures : (string, unit) Hashtbl.t;
      (** blind-rename structural fingerprints of everything emitted: a
          temperature-1.2 model rarely reproduces a structure verbatim,
          so the client usually (not always) re-rolls on collision *)
  mutable calls : int;
  mutable total_latency : float;
}

type response = {
  source : string;
  latency : float;
  prompt_tokens : int;
  output_tokens : int;
}

let create ?(params = Sampler.paper_params) ~seed () =
  {
    rng = Util.Rng.of_int seed;
    sampler = Sampler.create params;
    skeletons = [];
    seen_structures = Hashtbl.create 256;
    calls = 0;
    total_latency = 0.0;
  }

let calls t = t.calls
let total_latency t = t.total_latency

(* --------------------------------------------------------------- *)
(* Durable snapshots. Skeleton programs are carried as their C
   rendering: [Pp] and [Cparse.Parse] are structural inverses (see
   Pp's parenthesization contract), so re-parsing rebuilds the exact
   ASTs and the restored session replays the original's stream. *)

type snapshot = {
  snap_rng : int64 * float option;
  snap_sampler : (string * int) list;
  snap_skeletons : string list;  (** newest first, as held in session *)
  snap_seen : string list;  (** sorted clone keys *)
  snap_calls : int;
  snap_total_latency : float;
}

let snapshot t =
  {
    snap_rng = Util.Rng.state t.rng;
    snap_sampler = Sampler.usage_snapshot t.sampler;
    snap_skeletons = List.map Pp.to_c t.skeletons;
    snap_seen =
      Hashtbl.fold (fun k () acc -> k :: acc) t.seen_structures []
      |> List.sort String.compare;
    snap_calls = t.calls;
    snap_total_latency = t.total_latency;
  }

let restore t snap =
  let rec parse_all acc = function
    | [] -> Ok (List.rev acc)
    | src :: rest -> (
        match Cparse.Parse.program src with
        | Ok p -> parse_all (p :: acc) rest
        | Error msg ->
            Error
              (Printf.sprintf "client snapshot: unparseable skeleton (%s)" msg))
  in
  match parse_all [] snap.snap_skeletons with
  | Error _ as e -> e
  | Ok skeletons ->
      Util.Rng.set_state t.rng snap.snap_rng;
      Sampler.restore_usage t.sampler snap.snap_sampler;
      t.skeletons <- skeletons;
      Hashtbl.reset t.seen_structures;
      List.iter (fun k -> Hashtbl.replace t.seen_structures k ()) snap.snap_seen;
      t.calls <- snap.snap_calls;
      t.total_latency <- snap.snap_total_latency;
      Ok ()

let generation_config =
  {
    Gen_config.varity with
    Gen_config.min_params = 2;
    max_params = 4;
    p_array_param = 0.5;
    min_stmts = 3;
    max_stmts = 8;
    max_expr_depth = 4;
    p_loop = 0.45;
    p_if = 0.15;
    p_decl = 0.4;
    p_call = 0.33;
    p_compound_assign = 0.6;
    loop_bound_min = 4;
    loop_bound_max = 64;
    literal_log10_min = -3.0;
    literal_log10_max = 3.0;
    input_profile = Gen_config.Sensible;
  }

let flaw_rate = function
  | Prompt.Direct _ -> 0.04
  | Prompt.Grammar _ -> 0.015
  | Prompt.Mutate _ -> 0.01

(* --------------------------------------------------------------- *)
(* Instantiation: corpus kernels come out with fresh human names and
   lightly jittered constants, like a model re-deriving an idiom. *)

let human_names = Generate.human_naming

let rename_fresh t (p : Ast.program) =
  let table = Hashtbl.create 16 in
  let taken = Hashtbl.create 16 in
  Hashtbl.add taken Ast.comp_name ();
  let pool =
    Array.append human_names.Generate.param_pool human_names.Generate.temp_pool
  in
  let fresh_for original =
    if Util.Rng.chance t.rng 0.3 then original (* keep some semantic names *)
    else begin
      let base = Util.Rng.choose t.rng pool in
      let rec go candidate n =
        if Hashtbl.mem taken candidate then
          go (Printf.sprintf "%s%d" base n) (n + 1)
        else candidate
      in
      go base 1
    end
  in
  let map name =
    match Hashtbl.find_opt table name with
    | Some fresh -> fresh
    | None ->
      let fresh =
        let candidate = fresh_for name in
        if Hashtbl.mem taken candidate then name else candidate
      in
      Hashtbl.replace table name fresh;
      Hashtbl.replace taken fresh ();
      fresh
  in
  (* Pre-register existing names so renaming stays injective. *)
  List.iter (fun n -> Hashtbl.replace taken n ()) (Ast.declared_names p);
  Ast.rename map p

(* Gentle constant jitter: enough to make literals differ between
   generations, small enough to keep kernels in their intended dynamic
   regime (an LLM re-deriving a logistic map still writes r ≈ 3.7). *)
let jitter_literals t ?(prob = 0.3) (p : Ast.program) =
  let rec visit e =
    match e with
    | Ast.Lit v when Util.Rng.chance t.rng prob ->
      let factor =
        Util.Rng.choose t.rng [| 1.05; 0.95; 1.1; 0.9; 1.02; 0.98; 1.005 |]
      in
      let v' = v *. factor in
      Ast.Lit (if Float.is_finite v' && v' <> 0.0 then v' else v)
    | Ast.Lit _ | Ast.Int_lit _ | Ast.Var _ | Ast.Index _ -> e
    | Ast.Neg inner -> Ast.Neg (visit inner)
    | Ast.Bin (op, a, b) -> Ast.Bin (op, visit a, visit b)
    | Ast.Call (fn, args) -> Ast.Call (fn, List.map visit args)
  in
  { p with body = Ast.map_exprs visit p.body }

(* A structural shake ensures fresh generations are not literal clones of
   the template: [n] structure-changing mutations (each retried until one
   takes effect). *)
let structural_shake ?(n = 1) t (p : Ast.program) =
  (* Only clone-key-changing strategies: operand swaps and constant
     retuning are invisible to blind-rename comparison. *)
  let strategies =
    [ Mutate.Swap_math_fn; Mutate.Add_control_flow;
      Mutate.Insert_intermediates ]
  in
  let weight s = ignore s; 1.0 in
  let pick () =
    Sampler.pick t.sampler t.rng
      (Array.of_list
         (List.map (fun s -> ("shake:" ^ Mutate.name s, weight s, s)) strategies))
  in
  let rec once p attempts =
    if attempts = 0 then fst (Mutate.apply t.rng Mutate.Add_control_flow p)
    else
      let p', changed = Mutate.apply t.rng (pick ()) p in
      if changed then p' else once p (attempts - 1)
  in
  let rec go p k = if k = 0 then p else go (once p 4) (k - 1) in
  go p (max 1 n)

(* Weave one extra math-library call into a program — corpus kernels are
   frequently call-free (pure reductions), while LLM-authored numerical
   code habitually decorates them with transcendentals. *)
let call_enrich t (p : Ast.program) =
  let fn =
    Util.Rng.choose t.rng
      [| Ast.Sin; Ast.Cos; Ast.Tanh; Ast.Exp; Ast.Log1p; Ast.Atan |]
  in
  let scalar =
    match
      List.filter_map (function Ast.P_fp n -> Some n | _ -> None) p.params
    with
    | [] -> Ast.Lit 0.7853981633974483
    | ps -> Ast.Var (Util.Rng.choose_list t.rng ps)
  in
  let amount = Ast.Lit (Util.Rng.choose t.rng [| 0.5; 0.25; 1.0; 0.125 |]) in
  let decorated = ref false in
  let decorate rhs =
    Ast.Bin
      (Ast.Add, rhs, Ast.Bin (Ast.Mul, amount, Ast.Call (fn, [ scalar ])))
  in
  let rec walk body =
    List.map
      (fun s ->
        match s with
        | Ast.Assign { lhs = Ast.Lv_var v; op; rhs }
          when v = Ast.comp_name && not !decorated ->
          decorated := true;
          Ast.Assign { lhs = Ast.Lv_var v; op; rhs = decorate rhs }
        | Ast.For r -> Ast.For { r with body = walk r.body }
        | s -> s)
      body
  in
  let body = walk p.body in
  if !decorated then { p with body } else p

(* The "safe and common patterns" an unconstrained model falls back to
   (§3.2.3's analysis of Direct-Prompt): plain reductions and one-shot
   formulas without named product temporaries or call-heavy loops. *)
let safe_kernels =
  [ "dot_product"; "running_mean"; "horner_polynomial"; "kahan_sum";
    "weighted_average"; "rms_energy"; "cosine_similarity";
    "compound_interest"; "quadratic_roots"; "range_normalize" ]

let pick_from_pool t pool =
  let items =
    Array.map (fun (e : Corpus.entry) -> ("corpus:" ^ e.Corpus.name, 1.0, e)) pool
  in
  Sampler.pick t.sampler t.rng items

let safe_pool =
  lazy
    (Array.of_list
       (List.filter
          (fun (e : Corpus.entry) -> List.mem e.Corpus.name safe_kernels)
          (Array.to_list Corpus.entries)))

let corpus_pick ?(safe_bias = false) t ~common_bias =
  if safe_bias && Util.Rng.chance t.rng 0.94 then
    pick_from_pool t (Lazy.force safe_pool)
  else begin
    let items =
      Array.map
        (fun (e : Corpus.entry) ->
          let w = if e.common then common_bias else 1.0 in
          ("corpus:" ^ e.name, w, e))
        Corpus.entries
    in
    Sampler.pick t.sampler t.rng items
  end

(* --------------------------------------------------------------- *)
(* Mistake injection: plausible LLM failure modes that surface as
   compilation errors downstream. *)

let replace_first haystack needle replacement =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    if i + nn > nh then haystack
    else if String.sub haystack i nn = needle then
      String.sub haystack 0 i ^ replacement
      ^ String.sub haystack (i + nn) (nh - i - nn)
    else scan (i + 1)
  in
  scan 0

let comp_decl = "double comp = 0.0;"

let inject_flaw t source =
  match Util.Rng.int t.rng 3 with
  | 0 ->
    (* unsupported math function (outside the allowed headers' subset) *)
    replace_first source comp_decl "double comp = erf(0.5);"
  | 1 ->
    (* uninitialized variable: rejected by the validator *)
    replace_first source comp_decl
      (comp_decl ^ "\n  double uninitialized_value;")
  | _ ->
    (* call to a function that does not exist *)
    replace_first source comp_decl (comp_decl ^ "\n  comp = randval();")

(* --------------------------------------------------------------- *)

let rec fresh_grammar_program t =
  let mode =
    Sampler.pick t.sampler t.rng
      [| ("gen:corpus", 4.0, `Corpus); ("gen:grammar", 0.3, `Grammar);
         ("gen:hybrid", 1.5, `Hybrid) |]
  in
  let maybe_enrich p =
    if Util.Rng.chance t.rng 0.08 then call_enrich t p else p
  in
  match mode with
  | `Corpus ->
    let entry = corpus_pick t ~common_bias:1.2 in
    Corpus.program entry |> rename_fresh t |> jitter_literals t
    |> maybe_enrich
    |> structural_shake ~n:2 t
  | `Grammar ->
    Generate.generate t.rng generation_config Generate.human_naming
  | `Hybrid ->
    (* corpus kernel with extra grammar-derived statements appended *)
    let entry = corpus_pick t ~common_bias:1.0 in
    let base = Corpus.program entry |> rename_fresh t |> jitter_literals t in
    append_grammar_tail t base

and append_grammar_tail ?(mild = false) t (base : Ast.program) =
    let tail_config =
      if mild then
        { generation_config with
          Gen_config.min_stmts = 1; max_stmts = 2; p_call = 0.06;
          p_loop = 0.15 }
      else { generation_config with Gen_config.min_stmts = 1; max_stmts = 3 }
    in
    let extra = Generate.generate t.rng tail_config Generate.human_naming in
    (* merge: rename extra's names away from base's, drop extra's params,
       keep only statements that reference base's scalars or literals *)
    let base_names = Ast.declared_names base in
    let renamed_extra =
      Ast.rename
        (fun n -> if List.mem n base_names then n ^ "_x" else n)
        extra
    in
    let scalar_params =
      List.filter_map
        (function Ast.P_fp n -> Some n | _ -> None)
        base.params
    in
    let retarget e =
      (* map extra's parameter reads onto base's scalars *)
      let extra_params = List.map Ast.param_name renamed_extra.params in
      let rec visit e =
        match e with
        | Ast.Var n when List.mem n extra_params -> begin
          match scalar_params with
          | [] -> Ast.Lit 1.5
          | ps -> Ast.Var (List.nth ps (Hashtbl.hash n mod List.length ps))
        end
        | Ast.Index (n, _) when List.mem n extra_params -> begin
          match scalar_params with
          | [] -> Ast.Lit 0.5
          | ps -> Ast.Var (List.hd ps)
        end
        | Ast.Lit _ | Ast.Int_lit _ | Ast.Var _ | Ast.Index _ -> e
        | Ast.Neg inner -> Ast.Neg (visit inner)
        | Ast.Bin (op, a, b) -> Ast.Bin (op, visit a, visit b)
        | Ast.Call (fn, args) -> Ast.Call (fn, List.map visit args)
      in
      visit e
    in
    (* extra's parameters were dropped, so writes through them (array
       stores, or stores to its scalar/int parameters) must go too — at
       any nesting depth. Reads were already retargeted. *)
    let extra_param_names = List.map Ast.param_name renamed_extra.params in
    let rec drop_param_writes body =
      List.filter_map
        (fun s ->
          match s with
          | Ast.Assign { lhs = Ast.Lv_index _; _ } -> None
          | Ast.Assign { lhs = Ast.Lv_var n; _ }
            when List.mem n extra_param_names ->
            None
          | Ast.If r -> Some (Ast.If { r with body = drop_param_writes r.body })
          | Ast.For r ->
            Some (Ast.For { r with body = drop_param_writes r.body })
          | Ast.Decl _ | Ast.Assign _ -> Some s)
        body
    in
    let extra_body =
      renamed_extra.body |> Ast.map_exprs retarget |> drop_param_writes
    in
    { base with body = base.body @ extra_body }

let skeleton_cap = 40

let remember_skeleton t p =
  t.skeletons <- p :: (if List.length t.skeletons >= skeleton_cap then
                         List.filteri (fun i _ -> i < skeleton_cap - 1) t.skeletons
                       else t.skeletons)

let grammar_generate t =
  let sticky = t.skeletons <> [] && Util.Rng.chance t.rng 0.75 in
  if sticky then begin
    let skeleton = Util.Rng.choose_list t.rng t.skeletons in
    (* An LLM re-deriving its own pattern reuses its own names a lot. *)
    let renamed =
      if Util.Rng.chance t.rng 0.7 then skeleton else rename_fresh t skeleton
    in
    (* Most re-instantiations also get jittered constants and a light
       structural shake; the residue are the Type-2 / Type-2c clones the
       paper observes in grammar-guided generation. *)
    let kept_names = renamed == skeleton in
    let jittered =
      if (not kept_names) && Util.Rng.chance t.rng 0.3 then renamed
      else jitter_literals t ~prob:0.5 renamed
    in
    (* verbatim-named re-derivations always get a structural shake, or
       they would be literal clones of their skeleton *)
    if kept_names || Util.Rng.chance t.rng 0.85 then
      structural_shake ~n:(1 + Util.Rng.int t.rng 2) t jittered
    else jittered
  end
  else begin
    let p = fresh_grammar_program t in
    remember_skeleton t p;
    p
  end

let direct_generate t =
  let entry = corpus_pick ~safe_bias:true t ~common_bias:6.0 in
  let p =
    Corpus.program entry |> rename_fresh t |> jitter_literals t ~prob:0.5
  in
  let p = if Util.Rng.chance t.rng 0.03 then call_enrich t p else p in
  let p = structural_shake ~n:(1 + Util.Rng.int t.rng 2) t p in
  (* the model writes its own decorations around the remembered idiom,
     which keeps unconstrained outputs structurally distinct *)
  if Util.Rng.chance t.rng 0.8 then append_grammar_tail ~mild:true t p else p

(* Mutations that only reorder operands or retune constants leave Type-2
   clones of the seed (blind renaming hides both); the paper's LLM4FP
   indeed shows the highest clone share of all approaches, so a small
   such fraction is deliberate — but most mutants must change the clone
   key: new control flow, a different function, or a new temporary. *)
let changes_clone_key = function
  | Mutate.Change_constants | Mutate.Reorder_or_nest -> false
  | Mutate.Add_control_flow | Mutate.Swap_math_fn
  | Mutate.Insert_intermediates ->
    true

let mutate_generate t example =
  let n = 1 + Util.Rng.int t.rng 2 in
  let strategies =
    List.init n (fun _ ->
        Sampler.pick t.sampler t.rng
          (Array.map
             (fun s -> ("mut:" ^ Mutate.name s, 1.0, s))
             Mutate.all))
  in
  let strategies =
    if List.exists changes_clone_key strategies then strategies
    else if Util.Rng.chance t.rng 0.9 then
      strategies
      @ [ (if Util.Rng.bool t.rng then Mutate.Insert_intermediates
           else Mutate.Add_control_flow) ]
    else strategies
  in
  let mutated, changed = Mutate.apply_n t.rng strategies example in
  if changed > 0 then mutated
  else if Util.Rng.chance t.rng 0.03 then example (* rare verbatim echo *)
  else fst (Mutate.apply t.rng Mutate.Change_constants example)

(* Sampling at temperature 1.2 essentially never reproduces byte-identical
   text, and only rarely an exact structural repeat. The client re-rolls:
   always (twice if needed) on an exact-text repeat, usually (once) on a
   blind-rename structural repeat. The residue models the clones the
   paper still observes in LLM4FP's output. *)
let avoid_repeats t make =
  let structural p = "2:" ^ Diversity.Clones.type2_key p in
  let exact p = "1:" ^ Diversity.Clones.type1_key p in
  let rec roll attempts =
    let candidate = make () in
    if attempts > 0 && Hashtbl.mem t.seen_structures (exact candidate) then
      roll (attempts - 1)
    else if
      attempts > 0
      && Hashtbl.mem t.seen_structures (structural candidate)
      && Util.Rng.chance t.rng 0.85
    then roll 0 (* one structural re-roll, accepted as-is *)
    else candidate
  in
  let final = roll 2 in
  Hashtbl.replace t.seen_structures (exact final) ();
  Hashtbl.replace t.seen_structures (structural final) ();
  final

let rtt = 0.5
let input_rate = 500.0
let output_rate = 55.0

let m_calls = Obs.Metrics.counter "llm.calls"
let m_prompt_tokens = Obs.Metrics.counter "llm.prompt_tokens"
let m_output_tokens = Obs.Metrics.counter "llm.output_tokens"

let m_latency =
  Obs.Metrics.histogram ~buckets:[| 1.0; 2.0; 4.0; 8.0; 16.0; 32.0 |]
    "llm.latency_s"

let m_retries = Obs.Metrics.counter "retry.llm.retries"
let m_exhausted = Obs.Metrics.counter "retry.llm.exhausted"
let max_attempts = 3

(* Transient-failure policy: the request is re-sent up to [max_attempts]
   times with deterministic exponential backoff; exhaustion re-raises
   the original failure. The injection point sits before any generation
   RNG draw, so a retried call produces the identical program — only
   the modelled latency grows by the backoff. *)
let rec request_with_retry ~attempt backoff_acc =
  match Exec.Faults.inject Exec.Faults.Llm_call with
  | () -> backoff_acc
  | exception (Exec.Faults.Transient _ as e) ->
      if attempt >= max_attempts then begin
        Obs.Metrics.incr m_exhausted;
        raise e
      end
      else begin
        Obs.Metrics.incr m_retries;
        request_with_retry ~attempt:(attempt + 1)
          (backoff_acc +. Exec.Faults.backoff ~attempt)
      end

let prompt_precision = function
  | Prompt.Direct { precision } | Prompt.Grammar { precision }
  | Prompt.Mutate { precision; _ } ->
    precision

let generate t prompt =
  Obs.Span.with_span "llm.generate" @@ fun () ->
  let backoff_latency = request_with_retry ~attempt:1 0.0 in
  let program =
    match prompt with
    | Prompt.Direct _ -> avoid_repeats t (fun () -> direct_generate t)
    | Prompt.Grammar _ -> avoid_repeats t (fun () -> grammar_generate t)
    | Prompt.Mutate { example; _ } ->
      avoid_repeats t (fun () -> mutate_generate t example)
  in
  let program = { program with Ast.precision = prompt_precision prompt } in
  let source = Pp.to_c program in
  let source =
    if Util.Rng.chance t.rng (flaw_rate prompt) then inject_flaw t source
    else source
  in
  let prompt_tokens = Prompt.token_count (Prompt.render prompt) in
  let output_tokens = Prompt.token_count source in
  let latency =
    rtt
    +. (float_of_int prompt_tokens /. input_rate)
    +. (float_of_int output_tokens /. output_rate)
    +. backoff_latency
  in
  t.calls <- t.calls + 1;
  t.total_latency <- t.total_latency +. latency;
  Obs.Metrics.incr m_calls;
  Obs.Metrics.incr ~by:prompt_tokens m_prompt_tokens;
  Obs.Metrics.incr ~by:output_tokens m_output_tokens;
  Obs.Metrics.observe m_latency latency;
  if Obs.Trace.on () then
    Obs.Trace.emit
      (Obs.Event.Generated
         {
           slot = Obs.Trace.current_slot ();
           prompt = Prompt.kind prompt;
           latency_s = latency;
           prompt_tokens;
           output_tokens;
         });
  { source; latency; prompt_tokens; output_tokens }
