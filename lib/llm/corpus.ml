type tag =
  | Reduction
  | Recurrence
  | Stencil
  | Quadrature
  | Special
  | Solver
  | Statistics

type entry = {
  name : string;
  tags : tag list;
  common : bool;
  source : string;
}

(* Every kernel is written in the Figure-2 grammar subset: braced blocks,
   counted loops from zero, single-comparison conditions, math.h calls
   only. Arrays default to length 8 (the parser's fallback for bare
   compute functions), so subscripting loops stay within bound 8. *)

let entries =
  [|
    {
      name = "dot_product";
      tags = [ Reduction ];
      common = true;
      source =
        {|
void compute(double* xs, double* ys, double scale) {
  double comp = 0.0;
  for (int i = 0; i < 8; ++i) {
    comp += xs[i] * ys[i];
  }
  comp *= scale;
}
|};
    };
    {
      name = "axpy_accumulate";
      tags = [ Reduction ];
      common = true;
      source =
        {|
void compute(double a, double* xs, double* ys) {
  double comp = 0.0;
  for (int i = 0; i < 8; ++i) {
    double t = a * xs[i];
    comp += t + ys[i];
  }
}
|};
    };
    {
      name = "horner_polynomial";
      tags = [ Recurrence ];
      common = true;
      source =
        {|
void compute(double x, double c0, double c1, double c2, double c3) {
  double comp = 0.0;
  double acc = c3;
  acc = acc * x + c2;
  acc = acc * x + c1;
  acc = acc * x + c0;
  comp = acc;
}
|};
    };
    {
      name = "running_mean";
      tags = [ Statistics; Reduction ];
      common = true;
      source =
        {|
void compute(double* data, double shift) {
  double comp = 0.0;
  double sum = 0.0;
  for (int i = 0; i < 8; ++i) {
    sum += data[i] + shift;
  }
  comp = sum / 8.0;
}
|};
    };
    {
      name = "two_pass_variance";
      tags = [ Statistics ];
      common = true;
      source =
        {|
void compute(double* data) {
  double comp = 0.0;
  double mean = 0.0;
  for (int i = 0; i < 8; ++i) {
    mean += data[i];
  }
  mean /= 8.0;
  double var = 0.0;
  for (int i = 0; i < 8; ++i) {
    double d = data[i] - mean;
    double sq = d * d;
    var += sq;
  }
  comp = var / 7.0;
}
|};
    };
    {
      name = "euclidean_norm";
      tags = [ Reduction ];
      common = true;
      source =
        {|
void compute(double* v, double eps) {
  double comp = 0.0;
  double ss = eps;
  for (int i = 0; i < 8; ++i) {
    double sq = v[i] * v[i];
    ss += sq;
  }
  comp = sqrt(ss);
}
|};
    };
    {
      name = "kahan_sum";
      tags = [ Reduction ];
      common = false;
      source =
        {|
void compute(double* data, double seed) {
  double comp = 0.0;
  double sum = seed;
  double c = 0.0;
  for (int i = 0; i < 8; ++i) {
    double y = data[i] - c;
    double t = sum + y;
    c = t - sum - y;
    sum = t;
  }
  comp = sum;
}
|};
    };
    {
      name = "logistic_map";
      tags = [ Recurrence ];
      common = true;
      source =
        {|
void compute(double r, double x0) {
  double comp = 0.0;
  double rate = 3.7 + 0.2 * sin(r);
  double x = 0.2 + 0.6 * fabs(sin(x0));
  for (int i = 0; i < 48; ++i) {
    x = rate * x * (1.0 - x);
  }
  comp = x;
}
|};
    };
    {
      name = "exp_decay_integration";
      tags = [ Recurrence; Quadrature ];
      common = true;
      source =
        {|
void compute(double lambda, double dt, double y0) {
  double comp = 0.0;
  double y = y0;
  for (int i = 0; i < 40; ++i) {
    y = y - lambda * y * dt;
    comp += y * dt;
  }
}
|};
    };
    {
      name = "trapezoid_rule";
      tags = [ Quadrature ];
      common = true;
      source =
        {|
void compute(double a, double b) {
  double comp = 0.0;
  double h = (b - a) / 32.0;
  double sum = 0.5 * (sin(a) + sin(b));
  for (int i = 0; i < 31; ++i) {
    double x = a + h * (1.0 + i);
    sum += sin(x);
  }
  comp = sum * h;
}
|};
    };
    {
      name = "newton_sqrt";
      tags = [ Solver ];
      common = true;
      source =
        {|
void compute(double s, double guess) {
  double comp = 0.0;
  double x = fabs(guess) + 1.0;
  for (int i = 0; i < 12; ++i) {
    x = 0.5 * (x + s / x);
  }
  comp = x;
}
|};
    };
    {
      name = "babylonian_cbrt";
      tags = [ Solver ];
      common = false;
      source =
        {|
void compute(double s, double x0) {
  double comp = 0.0;
  double x = fabs(x0) + 0.5;
  for (int i = 0; i < 16; ++i) {
    x = (2.0 * x + s / (x * x)) / 3.0;
  }
  comp = x;
}
|};
    };
    {
      name = "softmax_denominator";
      tags = [ Statistics; Special ];
      common = true;
      source =
        {|
void compute(double* logits, double temperature) {
  double comp = 0.0;
  double m = logits[0];
  for (int i = 0; i < 8; ++i) {
    m = fmax(m, logits[i]);
  }
  double z = 0.0;
  for (int i = 0; i < 8; ++i) {
    z += exp((logits[i] - m) / temperature);
  }
  comp = log(z) + m;
}
|};
    };
    {
      name = "cosine_similarity";
      tags = [ Reduction ];
      common = true;
      source =
        {|
void compute(double* u, double* v) {
  double comp = 0.0;
  double uv = 0.0;
  double uu = 1e-12;
  double vv = 1e-12;
  for (int i = 0; i < 8; ++i) {
    uv += u[i] * v[i];
    uu += u[i] * u[i];
    vv += v[i] * v[i];
  }
  comp = uv / (sqrt(uu) * sqrt(vv));
}
|};
    };
    {
      name = "geometric_series";
      tags = [ Recurrence ];
      common = false;
      source =
        {|
void compute(double ratio, double first) {
  double comp = 0.0;
  double term = first;
  for (int i = 0; i < 30; ++i) {
    comp += term;
    term *= ratio;
  }
}
|};
    };
    {
      name = "harmonic_partial_sum";
      tags = [ Reduction ];
      common = false;
      source =
        {|
void compute(double scale, double offset) {
  double comp = 0.0;
  for (int i = 0; i < 64; ++i) {
    comp += scale / (offset + 1.0 + i);
  }
}
|};
    };
    {
      name = "leibniz_pi";
      tags = [ Reduction ];
      common = false;
      source =
        {|
void compute(double scale) {
  double comp = 0.0;
  double sign = 1.0;
  for (int i = 0; i < 80; ++i) {
    comp += sign / (2.0 * i + 1.0);
    sign = -sign;
  }
  comp *= 4.0 * scale;
}
|};
    };
    {
      name = "stencil_1d_heat";
      tags = [ Stencil; Recurrence ];
      common = true;
      source =
        {|
void compute(double* u, double alpha) {
  double comp = 0.0;
  for (int step = 0; step < 6; ++step) {
    for (int i = 0; i < 6; ++i) {
      u[i + 1] = u[i + 1] + alpha * (u[i] - 2.0 * u[i + 1] + u[i + 2]);
    }
  }
  for (int i = 0; i < 8; ++i) {
    comp += u[i];
  }
}
|};
    };
    {
      name = "blur_stencil";
      tags = [ Stencil ];
      common = false;
      source =
        {|
void compute(double* img, double w) {
  double comp = 0.0;
  for (int i = 0; i < 6; ++i) {
    double v = w * img[i] + (1.0 - 2.0 * w) * img[i + 1] + w * img[i + 2];
    comp += v * v;
  }
}
|};
    };
    {
      name = "gaussian_pdf";
      tags = [ Special ];
      common = true;
      source =
        {|
void compute(double x, double mu, double sigma) {
  double comp = 0.0;
  double z = (x - mu) / sigma;
  double norm = 1.0 / (sigma * sqrt(2.0 * 3.141592653589793));
  comp = norm * exp(-0.5 * z * z);
}
|};
    };
    {
      name = "sigmoid_chain";
      tags = [ Special; Recurrence ];
      common = true;
      source =
        {|
void compute(double x, double gain) {
  double comp = 0.0;
  double s = x;
  for (int i = 0; i < 20; ++i) {
    s = 1.0 / (1.0 + exp(-gain * s));
  }
  comp = s;
}
|};
    };
    {
      name = "damped_oscillator";
      tags = [ Recurrence ];
      common = true;
      source =
        {|
void compute(double omega0, double zeta0, double dt0) {
  double comp = 0.0;
  double omega = 1.0 + fabs(sin(omega0));
  double zeta = 0.05 * fabs(sin(zeta0));
  double dt = 0.02 + 0.01 * fabs(sin(dt0));
  double pos = 1.0;
  double vel = 0.0;
  for (int i = 0; i < 60; ++i) {
    double acc = -2.0 * zeta * omega * vel - omega * omega * pos;
    vel += acc * dt;
    pos += vel * dt;
  }
  comp = pos;
}
|};
    };
    {
      name = "chebyshev_recurrence";
      tags = [ Recurrence; Special ];
      common = false;
      source =
        {|
void compute(double x, double c) {
  double comp = 0.0;
  double t0 = 1.0;
  double t1 = x;
  for (int i = 0; i < 24; ++i) {
    double t2 = 2.0 * x * t1 - t0;
    t0 = t1;
    t1 = t2;
    comp += c * t2;
  }
}
|};
    };
    {
      name = "continued_fraction";
      tags = [ Recurrence; Solver ];
      common = false;
      source =
        {|
void compute(double a, double b) {
  double comp = 0.0;
  double f = b;
  for (int i = 0; i < 24; ++i) {
    f = b + a / f;
  }
  comp = f;
}
|};
    };
    {
      name = "log_sum_exp_pair";
      tags = [ Special; Statistics ];
      common = true;
      source =
        {|
void compute(double a, double b) {
  double comp = 0.0;
  double m = fmax(a, b);
  comp = m + log(exp(a - m) + exp(b - m));
}
|};
    };
    {
      name = "rms_energy";
      tags = [ Statistics; Reduction ];
      common = true;
      source =
        {|
void compute(double* signal, double gain) {
  double comp = 0.0;
  double energy = 0.0;
  for (int i = 0; i < 8; ++i) {
    double s = gain * signal[i];
    energy += s * s;
  }
  comp = sqrt(energy / 8.0);
}
|};
    };
    {
      name = "weighted_average";
      tags = [ Statistics; Reduction ];
      common = true;
      source =
        {|
void compute(double* values, double* weights) {
  double comp = 0.0;
  double num = 0.0;
  double den = 1e-9;
  for (int i = 0; i < 8; ++i) {
    num += values[i] * weights[i];
    den += weights[i];
  }
  comp = num / den;
}
|};
    };
    {
      name = "range_normalize";
      tags = [ Statistics ];
      common = false;
      source =
        {|
void compute(double* data, double lo, double hi) {
  double comp = 0.0;
  double mn = data[0];
  double mx = data[0];
  for (int i = 0; i < 8; ++i) {
    mn = fmin(mn, data[i]);
    mx = fmax(mx, data[i]);
  }
  double span = mx - mn + 1e-12;
  for (int i = 0; i < 8; ++i) {
    comp += lo + (hi - lo) * (data[i] - mn) / span;
  }
}
|};
    };
    {
      name = "lorenz_step";
      tags = [ Recurrence ];
      common = false;
      source =
        {|
void compute(double seed, double x0, double y0, double z0) {
  double comp = 0.0;
  double dt = 0.006 + 0.004 * fabs(sin(seed));
  double x = 1.0 + 0.5 * sin(x0);
  double y = 1.0 + 0.5 * cos(y0);
  double z = 20.0 + 5.0 * sin(z0);
  for (int i = 0; i < 50; ++i) {
    double dx = 10.0 * (y - x);
    double dy = x * (28.0 - z) - y;
    double dz = x * y - 2.6666666666666665 * z;
    x += dx * dt;
    y += dy * dt;
    z += dz * dt;
  }
  comp = x + y + z;
}
|};
    };
    {
      name = "angle_wrap_series";
      tags = [ Special; Reduction ];
      common = true;
      source =
        {|
void compute(double theta, double step) {
  double comp = 0.0;
  for (int i = 0; i < 36; ++i) {
    double phase = theta + step * i;
    comp += sin(phase) * cos(0.5 * phase);
  }
}
|};
    };
    {
      name = "power_iteration_2x2";
      tags = [ Solver ];
      common = false;
      source =
        {|
void compute(double a, double b, double c, double d) {
  double comp = 0.0;
  double vx = 1.0;
  double vy = 1.0;
  for (int i = 0; i < 20; ++i) {
    double wx = a * vx + b * vy;
    double wy = c * vx + d * vy;
    double n = sqrt(wx * wx + wy * wy) + 1e-30;
    vx = wx / n;
    vy = wy / n;
  }
  comp = vx * a + vy * b;
}
|};
    };
    {
      name = "quadratic_roots";
      tags = [ Special; Solver ];
      common = true;
      source =
        {|
void compute(double a, double b, double c) {
  double comp = 0.0;
  double disc = b * b - 4.0 * a * c;
  if (disc >= 0.0) {
    double root = (-b + sqrt(disc)) / (2.0 * a);
    comp = root;
  }
  if (disc < 0.0) {
    comp = -b / (2.0 * a);
  }
}
|};
    };
    {
      name = "relativistic_gamma";
      tags = [ Special ];
      common = false;
      source =
        {|
void compute(double v, double cap) {
  double comp = 0.0;
  double beta = fmin(fabs(v), cap) / 299792458.0;
  comp = 1.0 / sqrt(1.0 - beta * beta);
}
|};
    };
    {
      name = "compound_interest";
      tags = [ Recurrence ];
      common = true;
      source =
        {|
void compute(double principal, double rate, double fee) {
  double comp = 0.0;
  double balance = principal;
  for (int i = 0; i < 36; ++i) {
    balance = balance * (1.0 + rate / 12.0) - fee;
  }
  comp = balance;
}
|};
    };
    {
      name = "alternating_exponent_mix";
      tags = [ Special; Reduction ];
      common = false;
      source =
        {|
void compute(double x, double y) {
  double comp = 0.0;
  double t = x;
  for (int i = 0; i < 28; ++i) {
    double e = exp2(t * 0.03125) - log2(fabs(y) + 2.0);
    comp += e / (1.0 + i);
    t = 0.5 * t + 0.25 * e;
  }
}
|};
    };
    {
      name = "midpoint_ode";
      tags = [ Quadrature; Recurrence ];
      common = false;
      source =
        {|
void compute(double y0, double dt, double k) {
  double comp = 0.0;
  double y = y0;
  for (int i = 0; i < 32; ++i) {
    double half = y + 0.5 * dt * (-k * y);
    y = y + dt * (-k * half);
    comp += fabs(y);
  }
}
|};
    };
    {
      name = "trig_identity_residual";
      tags = [ Special; Reduction ];
      common = false;
      source =
        {|
void compute(double theta, double step, double scale) {
  double comp = 0.0;
  for (int i = 0; i < 32; ++i) {
    double phase = theta + step * i;
    double s = sin(phase);
    double c = cos(phase);
    comp += scale * (s * s + c * c - 1.0);
  }
}
|};
    };
    {
      name = "exp_log_roundtrip";
      tags = [ Special ];
      common = true;
      source =
        {|
void compute(double x, double gain) {
  double comp = 0.0;
  double v = 0.25 + 0.125 * sin(x * gain);
  comp = log(exp(v)) - v;
}
|};
    };
    {
      name = "sine_wave_energy";
      tags = [ Special; Reduction ];
      common = true;
      source =
        {|
void compute(double freq, double amp, double phase) {
  double comp = 0.0;
  for (int i = 0; i < 48; ++i) {
    double t = 0.02 * i;
    double w = amp * sin(freq * t + phase) + 0.3 * cos(2.0 * freq * t);
    double energy = w * w;
    comp += energy;
  }
}
|};
    };
    {
      name = "exp_weighted_dot";
      tags = [ Reduction; Special ];
      common = true;
      source =
        {|
void compute(double* xs, double* ys, double beta) {
  double comp = 0.0;
  for (int i = 0; i < 8; ++i) {
    double w = exp(-beta * xs[i] * xs[i]);
    comp += w * ys[i];
  }
}
|};
    };
    {
      name = "log_product_residual";
      tags = [ Special ];
      common = false;
      source =
        {|
void compute(double x, double y) {
  double comp = 0.0;
  double px = fabs(x) + 0.5;
  double py = fabs(y) + 0.5;
  comp = log(px * py) - log(px) - log(py);
}
|};
    };
    {
      name = "taylor_cos_residual";
      tags = [ Special; Recurrence ];
      common = false;
      source =
        {|
void compute(double x, double scale) {
  double comp = 0.0;
  for (int i = 0; i < 16; ++i) {
    double t = 0.1 * x + 0.05 * i;
    double t2 = t * t;
    double approx = 1.0 - t2 / 2.0 + t2 * t2 / 24.0;
    comp += scale * (cos(t) - approx);
  }
}
|};
    };
    {
      name = "cancellation_ladder";
      tags = [ Reduction; Statistics ];
      common = true;
      source =
        {|
void compute(double big, double tiny) {
  double comp = 0.0;
  double b = fabs(big) + 1.0;
  double t = tiny * 1e-12;
  for (int i = 0; i < 20; ++i) {
    double s = b + t;
    comp += (s - b) - t;
    t *= 1.5;
  }
}
|};
    };
    {
      name = "tanh_activation_chain";
      tags = [ Special; Recurrence ];
      common = true;
      source =
        {|
void compute(double x, double w0, double w1) {
  double comp = 0.0;
  double h = x;
  for (int i = 0; i < 30; ++i) {
    h = tanh(w0 * h + w1);
    comp += h;
  }
}
|};
    };
    {
      name = "phase_accumulator";
      tags = [ Special; Recurrence ];
      common = false;
      source =
        {|
void compute(double omega, double dt) {
  double comp = 0.0;
  double phase = 0.0;
  for (int i = 0; i < 96; ++i) {
    phase += omega * dt;
    comp += sin(phase) / (1.0 + 0.01 * i);
  }
}
|};
    };
    {
      name = "normalized_entropy_bound";
      tags = [ Special; Statistics ];
      common = true;
      source =
        {|
void compute(double p0, double p1) {
  double comp = 0.0;
  double max_entropy = log(8.0);
  double scale = exp(0.5) / sqrt(2.0);
  double a = 0.1 + 0.8 * fabs(sin(p0));
  double b = 1.0 - a;
  double h = -(a * log(a) + b * log(b));
  comp = scale * h / max_entropy + 0.001 * p1;
}
|};
    };
    {
      name = "gamma_correction_lut";
      tags = [ Special; Reduction ];
      common = true;
      source =
        {|
void compute(double* pixels, double gamma) {
  double comp = 0.0;
  double inv = 1.0 / (fabs(gamma) + 0.8);
  double norm = pow(255.0, 0.45);
  for (int i = 0; i < 8; ++i) {
    double clamped = fmin(fabs(pixels[i]), 255.0);
    comp += pow(clamped + 1.0, inv) / norm;
  }
}
|};
    };
    {
      name = "henon_map";
      tags = [ Recurrence ];
      common = false;
      source =
        {|
void compute(double seed_x, double seed_y) {
  double comp = 0.0;
  double x = 0.1 * sin(seed_x);
  double y = 0.1 * cos(seed_y);
  for (int i = 0; i < 60; ++i) {
    double xn = 1.0 - 1.4 * x * x + y;
    y = 0.3 * x;
    x = xn;
  }
  comp = x + y;
}
|};
    };
    {
      name = "normalize_then_simulate";
      tags = [ Reduction; Recurrence ];
      common = false;
      source =
        {|
void compute(double* samples, double drive) {
  double comp = 0.0;
  double mean = 0.0;
  for (int i = 0; i < 8; ++i) {
    double contribution = samples[i] * 0.125;
    mean += contribution;
  }
  double r = 3.65 + 0.25 * fabs(sin(mean + drive));
  double x = 0.3 + 0.4 * fabs(sin(mean));
  for (int i = 0; i < 52; ++i) {
    x = r * x * (1.0 - x);
  }
  comp = x;
}
|};
    };
    {
      name = "fir_filter";
      tags = [ Stencil; Reduction ];
      common = true;
      source =
        {|
void compute(double* signal, double* taps) {
  double comp = 0.0;
  for (int n = 0; n < 6; ++n) {
    double acc = 0.0;
    for (int k = 0; k < 3; ++k) {
      acc += taps[k] * signal[n + k];
    }
    comp += acc * acc;
  }
}
|};
    };
    {
      name = "iir_biquad";
      tags = [ Recurrence ];
      common = false;
      source =
        {|
void compute(double* x, double a1, double a2) {
  double comp = 0.0;
  double y1 = 0.0;
  double y2 = 0.0;
  for (int n = 0; n < 8; ++n) {
    double y = x[n] - 0.9 * a1 * y1 - 0.5 * a2 * y2;
    y2 = y1;
    y1 = y;
    comp += y;
  }
}
|};
    };
    {
      name = "black_scholes_d1";
      tags = [ Special ];
      common = true;
      source =
        {|
void compute(double spot, double strike, double vol, double t) {
  double comp = 0.0;
  double s = fabs(spot) + 50.0;
  double k = fabs(strike) + 50.0;
  double sigma = 0.1 + 0.3 * fabs(sin(vol));
  double tau = 0.25 + fabs(sin(t));
  double d1 = (log(s / k) + (0.05 + sigma * sigma / 2.0) * tau)
              / (sigma * sqrt(tau));
  comp = d1;
}
|};
    };
    {
      name = "verlet_spring";
      tags = [ Recurrence ];
      common = true;
      source =
        {|
void compute(double k_over_m, double dt0, double x0) {
  double comp = 0.0;
  double k = 1.0 + fabs(sin(k_over_m));
  double dt = 0.05 + 0.02 * fabs(sin(dt0));
  double x = 1.0 + 0.1 * sin(x0);
  double x_prev = x;
  for (int i = 0; i < 64; ++i) {
    double acc = -k * x;
    double x_next = 2.0 * x - x_prev + acc * dt * dt;
    x_prev = x;
    x = x_next;
  }
  comp = x;
}
|};
    };
    {
      name = "simpson_rule";
      tags = [ Quadrature ];
      common = false;
      source =
        {|
void compute(double a, double width) {
  double comp = 0.0;
  double h = (0.5 + fabs(sin(width))) / 16.0;
  double sum = exp(-a * a);
  for (int i = 0; i < 15; ++i) {
    double x = a + h * (1.0 + i);
    double fx = exp(-x * x);
    if (comp <= 1e300) {
      sum += 4.0 * fx;
    }
    sum -= 2.0 * fx;
  }
  comp = sum * h / 3.0;
}
|};
    };
    {
      name = "bisection_step";
      tags = [ Solver ];
      common = false;
      source =
        {|
void compute(double lo0, double hi0) {
  double comp = 0.0;
  double lo = -2.0 - fabs(lo0);
  double hi = 2.0 + fabs(hi0);
  for (int i = 0; i < 40; ++i) {
    double mid = 0.5 * (lo + hi);
    double fmid = mid * mid * mid - mid - 2.0;
    if (fmid < 0.0) {
      lo = mid;
    }
    if (fmid >= 0.0) {
      hi = mid;
    }
  }
  comp = 0.5 * (lo + hi);
}
|};
    };
    {
      name = "secant_method";
      tags = [ Solver ];
      common = false;
      source =
        {|
void compute(double s0, double s1) {
  double comp = 0.0;
  double x0 = 1.0 + 0.1 * sin(s0);
  double x1 = 2.0 + 0.1 * sin(s1);
  double f0 = cos(x0) - x0;
  for (int i = 0; i < 20; ++i) {
    double f1 = cos(x1) - x1;
    double x2 = x1 - f1 * (x1 - x0) / (f1 - f0 + 1e-30);
    x0 = x1;
    f0 = f1;
    x1 = x2;
  }
  comp = x1;
}
|};
    };
    {
      name = "lagrange_interpolation";
      tags = [ Special; Reduction ];
      common = false;
      source =
        {|
void compute(double* ys, double t) {
  double comp = 0.0;
  double x = 2.0 * sin(t) + 3.5;
  for (int i = 0; i < 8; ++i) {
    double term = ys[i];
    for (int j = 0; j < 8; ++j) {
      if (j != i) {
        term *= (x - j) / (i - j + 1e-30);
      }
    }
    comp += term;
  }
}
|};
    };
    {
      name = "det2x2_chain";
      tags = [ Reduction; Recurrence ];
      common = false;
      source =
        {|
void compute(double a, double b, double c, double d) {
  double comp = 0.0;
  double m00 = 1.0 + 0.01 * a;
  double m01 = 0.01 * b;
  double m10 = 0.01 * c;
  double m11 = 1.0 + 0.01 * d;
  for (int i = 0; i < 24; ++i) {
    double n00 = m00 * m00 + m01 * m10;
    double n01 = m00 * m01 + m01 * m11;
    double n10 = m10 * m00 + m11 * m10;
    double n11 = m10 * m01 + m11 * m11;
    double det = n00 * n11 - n01 * n10;
    double norm = sqrt(fabs(det)) + 1e-30;
    m00 = n00 / norm;
    m01 = n01 / norm;
    m10 = n10 / norm;
    m11 = n11 / norm;
  }
  comp = m00 + m11;
}
|};
    };
    {
      name = "skewness_estimate";
      tags = [ Statistics ];
      common = false;
      source =
        {|
void compute(double* data) {
  double comp = 0.0;
  double mean = 0.0;
  for (int i = 0; i < 8; ++i) {
    mean += data[i];
  }
  mean /= 8.0;
  double m2 = 0.0;
  double m3 = 0.0;
  for (int i = 0; i < 8; ++i) {
    double d = data[i] - mean;
    double d2 = d * d;
    m2 += d2;
    m3 += d2 * d;
  }
  m2 /= 8.0;
  m3 /= 8.0;
  comp = m3 / (pow(m2, 1.5) + 1e-30);
}
|};
    };
    {
      name = "gelu_activation_sum";
      tags = [ Special; Reduction ];
      common = true;
      source =
        {|
void compute(double* xs, double gain) {
  double comp = 0.0;
  for (int i = 0; i < 8; ++i) {
    double x = gain * xs[i];
    double inner = 0.7978845608028654 * (x + 0.044715 * x * x * x);
    comp += 0.5 * x * (1.0 + tanh(inner));
  }
}
|};
    };
    {
      name = "quaternion_normalize";
      tags = [ Special ];
      common = false;
      source =
        {|
void compute(double w, double x, double y, double z) {
  double comp = 0.0;
  double qw = 1.0 + 0.1 * sin(w);
  double qx = 0.1 * cos(x);
  double qy = 0.1 * sin(y);
  double qz = 0.1 * cos(z);
  for (int i = 0; i < 16; ++i) {
    double n = sqrt(qw * qw + qx * qx + qy * qy + qz * qz);
    qw = (qw + 0.001) / n;
    qx = (qx + 0.001) / n;
    qy = (qy - 0.001) / n;
    qz = (qz - 0.001) / n;
  }
  comp = qw + qx + qy + qz;
}
|};
    };
    {
      name = "softplus_chain";
      tags = [ Special; Recurrence ];
      common = false;
      source =
        {|
void compute(double x0, double beta) {
  double comp = 0.0;
  double x = sin(x0);
  double b = 0.5 + fabs(sin(beta));
  for (int i = 0; i < 24; ++i) {
    x = log1p(exp(b * x)) - 0.5;
    comp += x;
  }
}
|};
    };
    {
      name = "mandelbrot_escape";
      tags = [ Recurrence ];
      common = true;
      source =
        {|
void compute(double cr0, double ci0) {
  double comp = 0.0;
  double cr = -0.75 + 0.1 * sin(cr0);
  double ci = 0.1 * cos(ci0);
  double zr = 0.0;
  double zi = 0.0;
  for (int i = 0; i < 80; ++i) {
    double zr2 = zr * zr - zi * zi + cr;
    double zi2 = 2.0 * zr * zi + ci;
    zr = zr2;
    zi = zi2;
    if (zr * zr + zi * zi < 4.0) {
      comp += 1.0;
    }
  }
  comp += zr * zr + zi * zi;
}
|};
    };
    {
      name = "planck_radiance";
      tags = [ Special ];
      common = false;
      source =
        {|
void compute(double wavelength, double temperature) {
  double comp = 0.0;
  double x = 0.0143877 / (fabs(wavelength) + 1e-9) / (fabs(temperature) + 1.0);
  comp = 1.0 / (expm1(x) + 1e-300);
}
|};
    };
  |]

(* The memo table is shared by every campaign; parallel campaigns reach
   it from pool workers, so the whole lookup-or-parse is guarded. Parsed
   programs are immutable, so handing the same value to several domains
   is fine. *)
let table : (string, Lang.Ast.program) Hashtbl.t = Hashtbl.create 64
let table_lock = Mutex.create ()

let program entry =
  Mutex.lock table_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock table_lock) @@ fun () ->
  match Hashtbl.find_opt table entry.name with
  | Some p -> p
  | None ->
    let p =
      match Cparse.Parse.program entry.source with
      | Ok p -> p
      | Error msg ->
        failwith (Printf.sprintf "corpus %s does not parse: %s" entry.name msg)
    in
    (match Analysis.Validate.check p with
     | Ok () -> ()
     | Error issues ->
       failwith
         (Printf.sprintf "corpus %s invalid: %s" entry.name
            (String.concat "; "
               (List.map Analysis.Validate.issue_to_string issues))));
    Hashtbl.replace table entry.name p;
    p

let common_entries =
  Array.of_list (List.filter (fun e -> e.common) (Array.to_list entries))

let by_tag tag =
  Array.of_list
    (List.filter (fun e -> List.mem tag e.tags) (Array.to_list entries))
