type t =
  | Direct of { precision : Lang.Ast.precision }
  | Grammar of { precision : Lang.Ast.precision }
  | Mutate of { precision : Lang.Ast.precision; example : Lang.Ast.program }

let kind = function
  | Direct _ -> "direct"
  | Grammar _ -> "grammar"
  | Mutate _ -> "mutate"

let guidelines =
  [
    "Use only the headers stdio.h, stdlib.h and math.h.";
    "The program must contain exactly two functions: main and compute.";
    "compute takes scalar/array floating-point and integer parameters, \
     performs a sequence of arithmetic operations, and prints a single \
     scalar result to standard output.";
    "Initialize every variable before use.";
    "Avoid undefined behavior: no out-of-bounds accesses, no \
     uninitialized reads, no integer division by zero.";
    "Output plain code only, with no formatting or explanation.";
  ]

let mutation_strategy_names =
  [
    "reorder or deeply nest arithmetic expressions";
    "change numeric constants";
    "introduce new control flow such as nested loops or conditionals";
    "use different math library functions";
    "insert intermediate computations";
  ]

let grammar_text =
  {|<function>   ::= "void" "compute" "(" <param-list> ")" "{" <block> "}"
<param-decl> ::= "int" <id> | <fp-type> <id> | <fp-type> "*" <id>
<assignment> ::= "comp" <assign-op> <expression> ";"
               | <fp-type> <id> <assign-op> <expression> ";"
<expression> ::= <term> | "(" <expression> ")"
               | <expression> <op> <expression>
<term>       ::= <identifier> | <fp-numeral>
<block>      ::= {<assignment>}+ | <if-block> <block> | <for-block> <block>
<if-block>   ::= "if" "(" <bool-expression> ")" "{" <block> "}"
<for-block>  ::= "for" "(" "int" <id> "=" "0" ";" <id> "<" <int-numeral>
                 ";" "++" <id> ")" "{" <block> "}"|}

let precision_name = function
  | Lang.Ast.F64 -> "double"
  | Lang.Ast.F32 -> "single (float)"

let bullet lines = String.concat "\n" (List.map (fun l -> "- " ^ l) lines)

let render = function
  | Direct { precision } ->
    Printf.sprintf
      "Create a random but valid floating-point C program.\n\
       Use %s precision for all floating-point variables.\n\
       Guidelines:\n%s\n"
      (precision_name precision) (bullet guidelines)
  | Grammar { precision } ->
    Printf.sprintf
      "Create a random but valid floating-point C program.\n\
       Use %s precision for all floating-point variables.\n\
       The compute function must follow this grammar:\n%s\n\
       Guidelines:\n%s\n"
      (precision_name precision) grammar_text (bullet guidelines)
  | Mutate { precision; example } ->
    Printf.sprintf
      "Change the following floating-point C program to create a new one \
       that behaves differently.\n\
       Use %s precision for all floating-point variables.\n\
       Guidelines:\n%s\n\
       Consider these mutation strategies:\n%s\n\
       Program to mutate:\n%s\n"
      (precision_name precision) (bullet guidelines)
      (bullet mutation_strategy_names)
      (Lang.Pp.compute_to_string example)

let token_count s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\n')
  |> List.filter (fun w -> w <> "")
  |> List.length
