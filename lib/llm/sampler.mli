(** Temperature / penalty sampling over a discrete pattern vocabulary.

    The paper configures GPT-4.1-mini with temperature 1.2,
    frequency_penalty 0.5 and presence_penalty 0.6 (§3.1.4). Our mock LLM
    gives those hyperparameters the same meaning they have for token
    sampling, applied to its pattern choices (corpus kernels, mutation
    strategies, naming schemes): a softmax over item log-weights scaled
    by temperature, with logits discounted per prior usage count
    (frequency penalty) and once-off for any prior usage (presence
    penalty). Usage counts live in the session and persist across calls,
    so repetition is discouraged over a whole campaign, as with a real
    API session log. *)

type params = {
  temperature : float;
  frequency_penalty : float;
  presence_penalty : float;
}

val paper_params : params
(** temperature 1.2, frequency_penalty 0.5, presence_penalty 0.6. *)

type t
(** Mutable usage history. *)

val create : params -> t
val params : t -> params

val pick : t -> Util.Rng.t -> (string * float * 'a) array -> 'a
(** [pick t rng items] samples one [(key, base_weight, value)] item.
    Base weights must be positive. The sampled item's usage count is
    recorded under its key. *)

val usage : t -> string -> int
(** How often a key has been sampled so far. *)

val usage_snapshot : t -> (string * int) list
(** The full usage history, sorted by key (deterministic bytes for
    durable snapshots). *)

val restore_usage : t -> (string * int) list -> unit
(** Replace the usage history with a {!usage_snapshot}. *)
