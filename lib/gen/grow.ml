(* Structural program growth: the validity-filtered shrink moves of the
   reducer run in reverse. Where [Prop.Arb.shrink_program] removes
   statements, splices loop bodies, hoists operands over their parents
   and simplifies literals, each grower here performs the inverse move —
   wrap a statement in fresh control flow, duplicate work into a named
   temporary, push an expression under a new arithmetic node, split a
   literal into an equivalent-looking compound. Growers never need to
   preserve semantics (they generate new test programs, not witnesses),
   but every candidate is filtered through {!Analysis.Validate.check}
   exactly like the shrink direction, so grown programs are always
   admissible without another trip through the front end. *)

open Lang

(* ------------------------------------------------------------------ *)
(* Individual growth moves. Each returns [None] when it finds no
   applicable site; RNG draws happen only after applicability is
   established, so inapplicable movers are draw-free. *)

(* Inverse of loop-body splicing: wrap the k-th top-level statement in a
   small fresh [For]. *)
let wrap_in_loop rng (p : Ast.program) =
  match p.body with
  | [] -> None
  | body ->
    let k = Util.Rng.int rng (List.length body) in
    let var = Ast.fresh_name p "g" in
    let bound = Util.Rng.int_in rng 2 4 in
    let body =
      List.mapi
        (fun i s -> if i = k then Ast.For { var; bound; body = [ s ] } else s)
        body
    in
    Some { p with body }

(* Inverse of branch-body splicing: guard the k-th top-level statement
   with a comparison against a scalar parameter. *)
let wrap_in_if rng (p : Ast.program) =
  let scalars =
    List.filter_map (function Ast.P_fp n -> Some n | _ -> None) p.params
  in
  match (p.body, scalars) with
  | [], _ | _, [] -> None
  | body, scalars ->
    let k = Util.Rng.int rng (List.length body) in
    let guard = Util.Rng.choose_list rng scalars in
    let cmp = Util.Rng.choose rng [| Ast.Lt; Ast.Ge |] in
    let rhs = Ast.Lit (Util.Rng.float_in rng (-4.0) 4.0) in
    let body =
      List.mapi
        (fun i s ->
          if i = k then Ast.If { lhs = Ast.Var guard; cmp; rhs; body = [ s ] }
          else s)
        body
    in
    Some { p with body }

(* Inverse of statement removal: duplicate an existing right-hand side
   into a fresh named temporary declared before its source statement,
   growing the dataflow without changing the observable result. *)
let duplicate_work rng (p : Ast.program) =
  let candidates =
    List.filteri
      (fun _ s -> match s with Ast.Decl _ | Ast.Assign _ -> true | _ -> false)
      p.body
    |> List.length
  in
  if candidates = 0 then None
  else begin
    let target = Util.Rng.int rng candidates in
    let fresh = Ast.fresh_name p "dup" in
    let seen = ref (-1) in
    let body =
      List.concat_map
        (fun s ->
          match s with
          | Ast.Decl { init = e; _ } | Ast.Assign { rhs = e; _ } ->
            incr seen;
            if !seen = target then [ Ast.Decl { name = fresh; init = e }; s ]
            else [ s ]
          | Ast.If _ | Ast.For _ -> [ s ])
        p.body
    in
    Some { p with body }
  end

(* Inverse of operand hoisting: push the k-th non-trivial expression
   under a new arithmetic parent node. The new operand is chosen to be
   numerically gentle (additive zero-ish or multiplicative one-ish) so
   grown programs stay mostly finite, but nothing depends on that. *)
let deepen_expr rng (p : Ast.program) =
  let eligible = function
    | Ast.Bin _ | Ast.Call _ | Ast.Var _ -> true
    | _ -> false
  in
  let count = ref 0 in
  List.iter
    (fun s ->
      match s with
      | Ast.Decl { init = e; _ } | Ast.Assign { rhs = e; _ } ->
        count :=
          Ast.fold_expr
            (fun acc sub -> if eligible sub then acc + 1 else acc)
            !count e
      | Ast.If _ | Ast.For _ -> ())
    p.body;
  if !count = 0 then None
  else begin
    let target = ref (Util.Rng.int rng !count) in
    let wrapped = ref false in
    let wrap e =
      match Util.Rng.int rng 3 with
      | 0 -> Ast.Bin (Ast.Add, e, Ast.Lit (Util.Rng.float_in rng 1e-8 1e-6))
      | 1 -> Ast.Bin (Ast.Mul, e, Ast.Lit (1.0 +. Util.Rng.float_in rng 1e-9 1e-7))
      | _ -> Ast.Neg (Ast.Neg e)
    in
    let rec visit e =
      if !wrapped then e
      else begin
        let here = eligible e in
        if here && !target = 0 then begin
          wrapped := true;
          target := -1;
          wrap e
        end
        else begin
          if here then decr target;
          match e with
          | Ast.Lit _ | Ast.Int_lit _ | Ast.Var _ | Ast.Index _ -> e
          | Ast.Neg inner -> Ast.Neg (visit inner)
          | Ast.Bin (op, a, b) ->
            let a = visit a in
            let b = visit b in
            Ast.Bin (op, a, b)
          | Ast.Call (fn, args) -> Ast.Call (fn, List.map visit args)
        end
      end
    in
    let body =
      List.map
        (fun s ->
          match s with
          | Ast.Decl { name; init } -> Ast.Decl { name; init = visit init }
          | Ast.Assign { lhs; op; rhs } ->
            Ast.Assign { lhs; op; rhs = visit rhs }
          | Ast.If _ | Ast.For _ -> s)
        p.body
    in
    if !wrapped then Some { p with body } else None
  end

(* Inverse of literal simplification: split the k-th literal into a
   compound with the same value, re-growing the constant structure the
   shrinker collapses. *)
let complicate_literal rng (p : Ast.program) =
  let count = ref 0 in
  List.iter
    (fun s ->
      match s with
      | Ast.Decl { init = e; _ } | Ast.Assign { rhs = e; _ } ->
        count :=
          Ast.fold_expr
            (fun acc sub -> match sub with Ast.Lit _ -> acc + 1 | _ -> acc)
            !count e
      | Ast.If _ | Ast.For _ -> ())
    p.body;
  if !count = 0 then None
  else begin
    let target = ref (Util.Rng.int rng !count) in
    let split = Util.Rng.float_in rng 0.25 0.75 in
    let done_ = ref false in
    let visit e =
      match e with
      | Ast.Lit v when not !done_ ->
        if !target = 0 then begin
          done_ := true;
          target := -1;
          let a = v *. split in
          Ast.Bin (Ast.Add, Ast.Lit a, Ast.Lit (v -. a))
        end
        else begin
          decr target;
          e
        end
      | e -> e
    in
    let body = Ast.map_exprs visit p.body in
    if !done_ then Some { p with body } else None
  end

let movers =
  [| wrap_in_loop; wrap_in_if; duplicate_work; deepen_expr;
     complicate_literal |]

(* ------------------------------------------------------------------ *)

let grow_once rng p =
  (* Start from a random mover and fall through the rest in ring order:
     a seed with no literal (say) still grows via another move. Every
     accepted candidate passes the same validator the shrink direction
     filters through. *)
  let n = Array.length movers in
  let start = Util.Rng.int rng n in
  let rec try_from i remaining =
    if remaining = 0 then None
    else
      match movers.((start + i) mod n) rng p with
      | Some p' when Result.is_ok (Analysis.Validate.check p') -> Some p'
      | _ -> try_from (i + 1) (remaining - 1)
  in
  try_from 0 n

let grow rng p =
  let steps = Util.Rng.int_in rng 1 3 in
  let rec go p i = function
    | 0 -> p
    | remaining -> begin
      match grow_once rng p with
      | None -> p
      | Some p' -> go p' (i + 1) (remaining - 1)
    end
  in
  go p 0 steps
