(** Structural program growth — the reducer's validity-filtered shrink
    moves run in reverse.

    {!Prop.Arb.shrink_program} proposes structurally {e smaller}
    programs (statement removal, loop/branch body splicing, operand
    hoisting, literal simplification); each grower here performs the
    inverse move: wrap a statement in fresh control flow, duplicate a
    right-hand side into a named temporary, push an expression under a
    new arithmetic node, split a literal into a same-valued compound.
    Candidates are filtered through {!Analysis.Validate.check} exactly
    like the shrink direction, so a grown program is always admissible
    without another front-end pass.

    This is the fifth generation arm of the bandit campaign ensemble:
    seeded from archived inconsistency cases, it explores the
    neighborhood {e around} known divergence witnesses instead of
    sampling fresh programs. All randomness flows through the caller's
    {!Util.Rng.t}, so growth is deterministic in the campaign seed. *)

val grow_once : Util.Rng.t -> Lang.Ast.program -> Lang.Ast.program option
(** Apply one growth move. Movers are tried in a ring from a random
    starting point; the first applicable, validator-approved candidate
    wins. [None] when no mover applies (practically only on degenerate
    empty-body programs). *)

val grow : Util.Rng.t -> Lang.Ast.program -> Lang.Ast.program
(** Apply one to three growth moves in sequence. Returns the input
    program unchanged when no mover applies. *)
