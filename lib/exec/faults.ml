(* Deterministic fault injection.

   A fault plan maps pipeline stages to the 1-based hit count at which
   an action fires: the Nth time [inject stage] runs for that stage, the
   stage crashes (simulated process death), fails transiently, or is
   delayed. Hit counters are process-global atomics, so a plan like
   "llm@3:crash" fires at exactly the same pipeline position on every
   run of a fixed-seed campaign — which is what makes crash-recovery
   testable rather than anecdotal. *)

type stage =
  | Llm_call
  | Front_end
  | Back_end
  | Execution
  | Archive_write
  | Checkpoint_write

type action = Crash | Fail | Delay of float

exception Crash_injected of string
exception Transient of string

let stage_name = function
  | Llm_call -> "llm"
  | Front_end -> "frontend"
  | Back_end -> "backend"
  | Execution -> "exec"
  | Archive_write -> "archive"
  | Checkpoint_write -> "checkpoint"

let stage_of_name = function
  | "llm" -> Some Llm_call
  | "frontend" -> Some Front_end
  | "backend" -> Some Back_end
  | "exec" -> Some Execution
  | "archive" -> Some Archive_write
  | "checkpoint" -> Some Checkpoint_write
  | _ -> None

let all_stages =
  [ Llm_call; Front_end; Back_end; Execution; Archive_write; Checkpoint_write ]

type rule = { stage : stage; hit : int; action : action }
type plan = rule list

(* ------------------------------------------------------------------ *)
(* Plan parsing: "llm@3:crash,frontend@5:fail,exec@10:delay=0.01" *)

let parse_rule s =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match String.index_opt s '@' with
  | None -> err "fault rule %S: expected STAGE@HIT:ACTION" s
  | Some at -> (
      let stage_s = String.sub s 0 at in
      match stage_of_name stage_s with
      | None ->
          err "fault rule %S: unknown stage %S (expected one of %s)" s stage_s
            (String.concat "/" (List.map stage_name all_stages))
      | Some stage -> (
          let rest = String.sub s (at + 1) (String.length s - at - 1) in
          match String.index_opt rest ':' with
          | None -> err "fault rule %S: expected STAGE@HIT:ACTION" s
          | Some colon -> (
              let hit_s = String.sub rest 0 colon in
              let action_s =
                String.sub rest (colon + 1) (String.length rest - colon - 1)
              in
              match int_of_string_opt hit_s with
              | Some hit when hit >= 1 -> (
                  match action_s with
                  | "crash" -> Ok { stage; hit; action = Crash }
                  | "fail" -> Ok { stage; hit; action = Fail }
                  | _ -> (
                      match String.index_opt action_s '=' with
                      | Some eq when String.sub action_s 0 eq = "delay" -> (
                          let v =
                            String.sub action_s (eq + 1)
                              (String.length action_s - eq - 1)
                          in
                          match float_of_string_opt v with
                          | Some d when d >= 0.0 && Float.is_finite d ->
                              Ok { stage; hit; action = Delay d }
                          | _ ->
                              err
                                "fault rule %S: delay %S is not a \
                                 non-negative number"
                                s v)
                      | _ ->
                          err
                            "fault rule %S: unknown action %S (expected \
                             crash, fail, or delay=SECONDS)"
                            s action_s))
              | _ ->
                  err "fault rule %S: hit count %S is not a positive integer" s
                    hit_s)))

let parse spec =
  let parts =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> (
        match parse_rule p with
        | Ok r -> go (r :: acc) rest
        | Error _ as e -> e)
  in
  go [] parts

let to_string plan =
  plan
  |> List.map (fun { stage; hit; action } ->
         let a =
           match action with
           | Crash -> "crash"
           | Fail -> "fail"
           | Delay d -> Printf.sprintf "delay=%g" d
         in
         Printf.sprintf "%s@%d:%s" (stage_name stage) hit a)
  |> String.concat ","

(* ------------------------------------------------------------------ *)
(* Arming and injection *)

let armed : plan Atomic.t = Atomic.make []
let counters = List.map (fun s -> (s, Atomic.make 0)) all_stages
let counter stage = List.assq stage counters

let reset_counters () =
  List.iter (fun (_, c) -> Atomic.set c 0) counters

let arm plan =
  Atomic.set armed plan;
  reset_counters ()

let disarm () =
  Atomic.set armed [];
  reset_counters ()

let of_env () =
  match Sys.getenv_opt "LLM4FP_FAULTS" with
  | None | Some "" -> ()
  | Some spec -> (
      match parse spec with
      | Ok plan -> arm plan
      | Error msg -> invalid_arg ("LLM4FP_FAULTS: " ^ msg))

let inject ?(delay = fun (_ : float) -> ()) stage =
  match Atomic.get armed with
  | [] -> () (* fast path: nothing armed, no counter traffic *)
  | plan ->
      let hit = 1 + Atomic.fetch_and_add (counter stage) 1 in
      List.iter
        (fun r ->
          if r.stage == stage && r.hit = hit then
            match r.action with
            | Crash ->
                raise
                  (Crash_injected
                     (Printf.sprintf "injected crash at %s hit %d"
                        (stage_name stage) hit))
            | Fail ->
                raise
                  (Transient
                     (Printf.sprintf "injected transient failure at %s hit %d"
                        (stage_name stage) hit))
            | Delay d -> delay d)
        plan

(* ------------------------------------------------------------------ *)
(* Retry backoff *)

let backoff ~attempt =
  if attempt < 1 then invalid_arg "Faults.backoff: attempt must be >= 1";
  0.25 *. (2.0 ** float_of_int (attempt - 1))
