(** Deterministic fault injection for recovery testing.

    Recovery code that is never exercised is broken code. This module
    lets tests (and the CLI, via [--faults] / [LLM4FP_FAULTS]) declare a
    {e plan} — "the 3rd LLM call crashes", "the 5th front-end run fails
    transiently" — and every pipeline stage calls {!inject} at its entry
    point. Hit counters are process-global and deterministic for a
    fixed-seed campaign, so an injected crash lands at exactly the same
    pipeline position on every run.

    Crashes are simulated by raising {!Crash_injected}, which the
    campaign loop deliberately does not catch; transient failures raise
    {!Transient}, which retry policies in [Llm.Client] and
    [Compiler.Driver] absorb with deterministic {!backoff}.

    The fleet supervisor ([llm4fp fleet --faults ...]) forwards the
    plan to every shard child on first spawn only: each child then
    crashes once at its planned position, and the restarted child runs
    fault-free, resuming from its per-chunk checkpoints — the
    crash-and-resume drill in [test_cli.ml] pins this end to end. *)

type stage =
  | Llm_call  (** one simulated LLM generation request *)
  | Front_end  (** one semantic front-end pass *)
  | Back_end  (** one per-config back-end compilation *)
  | Execution  (** one compiled-program execution *)
  | Archive_write  (** one case-archive file write *)
  | Checkpoint_write  (** one campaign checkpoint write *)

type action =
  | Crash  (** raise {!Crash_injected} (simulated process death) *)
  | Fail  (** raise {!Transient} (retryable failure) *)
  | Delay of float  (** invoke the injection point's delay hook *)

exception Crash_injected of string
exception Transient of string

type rule = { stage : stage; hit : int; action : action }
(** Fire [action] on the [hit]-th (1-based) injection for [stage]. *)

type plan = rule list

val stage_name : stage -> string
(** Stable lowercase name: [llm], [frontend], [backend], [exec],
    [archive], [checkpoint]. *)

val parse : string -> (plan, string) result
(** Parse a comma-separated spec like ["llm@3:crash,exec@10:delay=0.01"].
    Each rule is [STAGE@HIT:ACTION] with [ACTION] one of [crash],
    [fail], or [delay=SECONDS]. The empty string is the empty plan. *)

val to_string : plan -> string
(** Inverse of {!parse} (canonical spelling). *)

val arm : plan -> unit
(** Install a plan and reset all hit counters. *)

val disarm : unit -> unit
(** Remove any armed plan and reset all hit counters. *)

val of_env : unit -> unit
(** Arm the plan in [LLM4FP_FAULTS], if set and non-empty. Raises
    [Invalid_argument] with the parse error on a malformed spec. *)

val inject : ?delay:(float -> unit) -> stage -> unit
(** [inject stage] counts one hit for [stage] and fires any matching
    armed rule: [Crash]/[Fail] raise, [Delay d] calls [delay d]
    (default: ignore). With no plan armed this is a no-op that touches
    no counters, so production runs pay nothing. *)

val backoff : attempt:int -> float
(** [backoff ~attempt] is the deterministic retry delay in (simulated)
    seconds before retry number [attempt >= 1]: [0.25 * 2^(attempt-1)].
    Deterministic so retried runs stay byte-identical. *)
