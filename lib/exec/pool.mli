(** Work-sharing domain pool for the parallel execution layer.

    One process-wide pool of worker domains (stdlib [Domain] + [Mutex] /
    [Condition], no dependencies) serves every parallel site in the
    pipeline: the per-slot configuration matrix in differential testing,
    the independent seeded campaigns of the experiment suite, and the
    ablation replay. Workers are spawned on demand, kept for the life of
    the process (domain spawn is far too expensive to pay per batch),
    and joined at exit.

    Design rules, chosen so that {b job count can never change results}:

    - {!map} returns results in input order, whatever order the items
      finished in;
    - if any application raised, the exception of the {e earliest} input
      is re-raised (with its backtrace) after the whole batch has
      drained — deterministic even when several items fail;
    - [jobs <= 1], empty and singleton batches run sequentially in the
      caller, byte-for-byte the plain [List.map];
    - a {!map} issued from inside a pool worker (a nested parallel
      section) runs sequentially in that worker — nesting cannot
      deadlock and cannot oversubscribe the machine.

    The caller participates: while a batch is in flight the calling
    domain executes queued tasks alongside the workers, so [~jobs:n]
    means [n] domains of compute including the caller ([n - 1] workers
    are spawned). The pool grows to the largest [jobs] ever requested
    and is never shrunk except by {!shutdown}.

    The pool itself is orchestrated from one domain at a time (the
    campaign / experiment driver); tasks may freely use the domain-safe
    observability layer ({!Obs.Metrics} atomics, mutex-guarded
    {!Obs.Trace} sinks, per-domain {!Obs.Span} aggregates). *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] applies [f] to every element of [xs], using up to
    [jobs] domains (the caller plus [jobs - 1] pool workers), and
    returns the results in input order. See the determinism rules
    above. [jobs] is clamped below by 1; requesting more jobs than
    items spawns at most [length xs - 1] workers (oversubscription is
    safe). *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — a sensible [--jobs] value
    for "use the whole machine". *)

val worker_count : unit -> int
(** Worker domains currently alive (0 until the first parallel
    {!map}). Exposed for tests and diagnostics. *)

val shutdown : unit -> unit
(** Stop and join every worker. Registered [at_exit] automatically on
    first spawn; callable manually (e.g. between tests). A later
    {!map} transparently respawns workers. *)
