(* Work-sharing domain pool.

   A single process-wide task queue guarded by one mutex. [map] enqueues
   one task per input element; the calling domain then drives the queue
   itself until its batch completes, while the persistent workers pull
   from the same queue. Results land in a per-batch array indexed by
   input position, so output order is input order no matter which domain
   ran what. Completion is tracked by a per-batch pending counter and
   signalled on a per-batch condition (sharing the pool mutex).

   Workers are spawned lazily, up to the largest [jobs] ever requested,
   and joined at exit. Nested [map]s from inside a worker degrade to
   sequential [List.map] (a DLS flag marks worker domains), which makes
   nesting deadlock-free by construction: a worker never blocks waiting
   for queue capacity it is itself responsible for draining. *)

type task = unit -> unit

type pool = {
  lock : Mutex.t;
  work : Condition.t;  (* signalled on enqueue and on shutdown *)
  queue : task Queue.t;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
  mutable size : int;  (* worker domains spawned *)
}

let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let pool =
  {
    lock = Mutex.create ();
    work = Condition.create ();
    queue = Queue.create ();
    stopping = false;
    domains = [];
    size = 0;
  }

let worker_loop () =
  Domain.DLS.set in_worker true;
  let rec loop () =
    Mutex.lock pool.lock;
    let rec next () =
      if pool.stopping then None
      else
        match Queue.take_opt pool.queue with
        | Some t -> Some t
        | None ->
          Condition.wait pool.work pool.lock;
          next ()
    in
    let t = next () in
    Mutex.unlock pool.lock;
    match t with
    | None -> ()
    | Some t ->
      (* Tasks wrap their own exceptions; see [map]. *)
      t ();
      loop ()
  in
  loop ()

let shutdown () =
  Mutex.lock pool.lock;
  pool.stopping <- true;
  Condition.broadcast pool.work;
  Mutex.unlock pool.lock;
  List.iter Domain.join pool.domains;
  pool.domains <- [];
  pool.size <- 0;
  (* Re-arm so a later [map] can respawn workers. *)
  pool.stopping <- false

let at_exit_registered = ref false

(* Grow the pool to [workers] spawned domains. Called from the
   orchestrating (non-worker) domain only. *)
let ensure_workers workers =
  if pool.size < workers then begin
    if not !at_exit_registered then begin
      at_exit_registered := true;
      at_exit shutdown
    end;
    for _ = pool.size + 1 to workers do
      pool.domains <- Domain.spawn worker_loop :: pool.domains
    done;
    pool.size <- workers
  end

let worker_count () = pool.size

let recommended_jobs () = Domain.recommended_domain_count ()

let map ~jobs f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when jobs <= 1 || Domain.DLS.get in_worker -> List.map f xs
  | _ ->
    let inputs = Array.of_list xs in
    let n = Array.length inputs in
    ensure_workers (min (jobs - 1) (n - 1));
    let results = Array.make n None in
    let pending = ref n in
    let finished = Condition.create () in
    let run_one i =
      let r =
        try Ok (f inputs.(i))
        with e -> Error (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock pool.lock;
      results.(i) <- Some r;
      decr pending;
      if !pending = 0 then Condition.broadcast finished;
      Mutex.unlock pool.lock
    in
    Mutex.lock pool.lock;
    for i = 0 to n - 1 do
      Queue.add (fun () -> run_one i) pool.queue
    done;
    Condition.broadcast pool.work;
    (* The caller is a compute domain too: drain tasks until this
       batch's counter reaches zero. When the queue is empty but tasks
       are still running in workers, sleep on the batch condition. *)
    let rec drive () =
      if !pending > 0 then
        match Queue.take_opt pool.queue with
        | Some t ->
          Mutex.unlock pool.lock;
          t ();
          Mutex.lock pool.lock;
          drive ()
        | None ->
          Condition.wait finished pool.lock;
          drive ()
    in
    drive ();
    Mutex.unlock pool.lock;
    (* Deterministic failure: re-raise for the earliest input. *)
    let err = ref None in
    for i = n - 1 downto 0 do
      match results.(i) with
      | Some (Error eb) -> err := Some eb
      | _ -> ()
    done;
    (match !err with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.to_list
      (Array.map
         (function Some (Ok v) -> v | Some (Error _) | None -> assert false)
         results)
