(** Crash-safe (atomic, fsync'd) file writes.

    The durability rule for the whole tree: any file another run may
    later read — case archives, checkpoints, bench reports, dashboards —
    is produced by {!write_atomic}, never by writing the final path in
    place. A crash at any instant leaves either the previous complete
    file or the new complete file on disk. *)

val mkdir_p : string -> unit
(** [mkdir_p dir] creates [dir] and any missing parents (idempotent). *)

val write_atomic : path:string -> (out_channel -> unit) -> unit
(** [write_atomic ~path f] runs [f] on a binary-mode channel over a
    temporary file in [path]'s directory, flushes, [fsync]s, renames the
    temporary over [path], and fsyncs the directory. If [f] raises, the
    temporary is removed and [path] is untouched. Creates missing parent
    directories. *)

val write_string : path:string -> string -> unit
(** [write_string ~path s] is [write_atomic] writing exactly [s]. *)
