(* Crash-safe file writes.

   Every durable artifact in the tree (case archives, minimized
   companions, checkpoints, bench reports, HTML dashboards) goes through
   [write_atomic]: the bytes land in a temporary file in the same
   directory, are flushed and fsync'd, and only then renamed over the
   final path. POSIX rename within a filesystem is atomic, so readers
   observe either the old complete file or the new complete file —
   never a truncated hybrid. *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let fsync_dir dir =
  (* Persist the rename itself: fsync the containing directory. Some
     filesystems refuse O_RDONLY fsync on directories; that is a
     durability hint lost, not a correctness failure. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let tmp_counter = Atomic.make 0

let write_atomic ~path f =
  let dir = Filename.dirname path in
  mkdir_p dir;
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Atomic.fetch_and_add tmp_counter 1)
  in
  let oc = open_out_bin tmp in
  (match f oc with
  | () ->
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc);
      close_out oc
  | exception e ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e);
  (match Unix.rename tmp path with
  | () -> ()
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e);
  fsync_dir dir

let write_string ~path s = write_atomic ~path (fun oc -> output_string oc s)
