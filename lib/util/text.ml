let lines s =
  let parts = String.split_on_char '\n' s in
  match List.rev parts with
  | "" :: rest -> List.rev rest
  | _ -> parts

let unlines xs = String.concat "\n" xs ^ "\n"

let indent n s =
  let pad = String.make n ' ' in
  lines s
  |> List.map (fun line -> if line = "" then line else pad ^ line)
  |> String.concat "\n"

(* Column width of a UTF-8 string: codepoints, not bytes. The tables
   only ever use single-column glyphs (block shades, middle dot), so
   skipping continuation bytes (0b10xxxxxx) is exact enough. *)
let display_width s =
  let n = ref 0 in
  String.iter (fun c -> if Char.code c land 0xC0 <> 0x80 then incr n) s;
  !n

let pad_right width s =
  let w = display_width s in
  if w >= width then s else s ^ String.make (width - w) ' '

let pad_left width s =
  let w = display_width s in
  if w >= width then s else String.make (width - w) ' ' ^ s

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let contains_sub haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  if nn = 0 then true
  else
    let rec scan i =
      if i + nn > nh then false
      else if String.sub haystack i nn = needle then true
      else scan (i + 1)
    in
    scan 0

let common_prefix_len a b =
  let n = min (String.length a) (String.length b) in
  let rec go i = if i < n && a.[i] = b.[i] then go (i + 1) else i in
  go 0
