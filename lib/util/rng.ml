type t = {
  mutable state : int64;
  mutable spare : float option;
      (* the unreturned half of the last Box–Muller pair *)
}

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed; spare = None }
let of_int seed = create (Int64.of_int seed)
let copy t = { state = t.state; spare = t.spare }
let state t = (t.state, t.spare)
let of_state (state, spare) = { state; spare }

let set_state t (state, spare) =
  t.state <- state;
  t.spare <- spare

(* Finalization mix from SplitMix64: two xor-shift-multiply rounds. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  (* A distinct mixing constant keeps the child stream decorrelated. *)
  { state = mix64 (Int64.logxor s 0xD1B54A32D192ED03L); spare = None }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (bits64 t) mask) in
  v mod bound

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 uniform bits in the mantissa give a uniform float in [0,1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  let unit = Int64.to_float bits *. 0x1.0p-53 in
  unit *. bound

let float_in t lo hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (bits64 t) 1L = 1L

(* Exactly one uniform draw regardless of [p]: probability schedules
   that reach a boundary value (0 or 1) must not desync replay streams.
   The comparison itself clamps — [u < 0.] is never true and [u < 1.]
   always is, since [u] is uniform in [0,1). *)
let chance t p = float t 1.0 < p

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let choose_list t xs =
  match xs with
  | [] -> invalid_arg "Rng.choose_list: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let weighted t items =
  let total = Array.fold_left (fun acc (w, _) -> acc +. w) 0.0 items in
  if total <= 0.0 then invalid_arg "Rng.weighted: weights must sum to > 0";
  let target = float t total in
  let n = Array.length items in
  let rec go i acc =
    if i = n - 1 then snd items.(i)
    else
      let w, x = items.(i) in
      let acc = acc +. w in
      if target < acc then x else go (i + 1) acc
  in
  go 0 0.0

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample t xs k =
  let arr = Array.of_list xs in
  shuffle t arr;
  let k = min k (Array.length arr) in
  Array.to_list (Array.sub arr 0 k)

let gaussian t =
  (* Box–Muller yields two deviates per pair of uniforms; return the
     cosine half now and bank the sine half for the next call, halving
     the transcendental work. *)
  match t.spare with
  | Some z ->
    t.spare <- None;
    z
  | None ->
    let rec nonzero () =
      let u = float t 1.0 in
      if u = 0.0 then nonzero () else u
    in
    let u1 = nonzero () in
    let u2 = float t 1.0 in
    let r = sqrt (-2.0 *. log u1) in
    let theta = 2.0 *. Float.pi *. u2 in
    t.spare <- Some (r *. sin theta);
    r *. cos theta
