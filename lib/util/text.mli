(** Small string utilities shared across the framework. *)

val lines : string -> string list
(** Split on ['\n'], dropping a trailing empty line. *)

val unlines : string list -> string
(** Join with ['\n'] and a trailing newline. *)

val indent : int -> string -> string
(** [indent n s] prefixes every non-empty line of [s] with [n] spaces. *)

val display_width : string -> int
(** Column width of a UTF-8 string: codepoints, not bytes. Exact for
    the single-column glyphs the report tables use. *)

val pad_right : int -> string -> string
(** Pad with spaces on the right to at least [display_width] columns. *)

val pad_left : int -> string -> string
(** Pad with spaces on the left to at least [display_width] columns. *)

val starts_with : prefix:string -> string -> bool
(** Prefix test (available for OCaml < 4.13 compatibility of callers). *)

val contains_sub : string -> string -> bool
(** [contains_sub haystack needle] is true when [needle] occurs in
    [haystack]. The empty needle always occurs. *)

val common_prefix_len : string -> string -> int
(** Length of the longest common prefix. *)
