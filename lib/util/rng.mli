(** Deterministic pseudo-random number generation.

    All randomness in the framework flows through this module so that every
    experiment is reproducible from a single seed. The generator is
    SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): tiny state, excellent
    statistical quality for simulation workloads, and cheap splitting, which
    lets independent pipeline stages draw from decorrelated streams. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] makes a fresh generator from a 64-bit seed. Equal seeds
    yield equal streams. *)

val of_int : int -> t
(** [of_int seed] is [create] on the sign-extended integer seed. *)

val copy : t -> t
(** [copy t] is an independent generator that will replay [t]'s future
    stream. *)

val state : t -> int64 * float option
(** [state t] exposes the full generator state — the SplitMix64 counter
    and the banked Box–Muller half — for durable snapshots.
    [of_state (state t)] replays [t]'s future stream exactly. *)

val of_state : int64 * float option -> t
(** Rebuild a generator from a {!state} snapshot. *)

val set_state : t -> int64 * float option -> unit
(** Overwrite a generator's state in place with a {!state} snapshot
    (for restoring sessions that hold their generator immutably). *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    decorrelated from [t]'s continuation. Use one split per pipeline stage. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. Requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val float_in : t -> float -> float -> float
(** [float_in t lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p] (clamped to [\[0,1\]]).
    Always consumes exactly one uniform draw, even at the boundary
    values [p <= 0.] and [p >= 1.], so probability schedules that reach
    an endpoint keep replay streams in sync. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. Raises [Invalid_argument] on an
    empty array. *)

val choose_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val weighted : t -> (float * 'a) array -> 'a
(** [weighted t items] picks an element with probability proportional to its
    weight. Weights must be non-negative with a positive sum. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample : t -> 'a list -> int -> 'a list
(** [sample t xs k] draws [min k (length xs)] distinct elements, preserving
    no particular order. *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller). Each uniform pair yields two
    deviates: the cosine half is returned immediately and the sine half
    is cached on [t] and returned by the next call, so consecutive calls
    consume two uniform draws per {e pair} rather than per value.
    {!copy} replays the cached half; {!split} children start with an
    empty cache. *)
