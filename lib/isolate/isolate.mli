(** Statement-level isolation of compiler-induced inconsistencies.

    The paper points to pLiner (Guo et al., SC 2020) and Ciel as the tools
    that, given a program triggering an inconsistency between two compiler
    configurations, pinpoint the lines responsible — and names integrating
    such root-cause analysis as future work (§3.2.2, §4). This module
    implements that analysis for the simulated toolchain.

    The idea follows pLiner's region search, adapted to our setting: a
    {e hybrid} compilation of the program under the "suspect"
    configuration in which a chosen set of top-level statements is kept
    in strict form — no constant-folding divergence, no contraction, no
    fast-math rewriting of those statements — while the rest get the full
    pass pipeline. If strictifying a set of statements makes the suspect
    binary agree bitwise with the reference configuration, those
    statements contain the compile-time cause; a delta-debugging-style
    search then minimizes the set.

    Runtime-level divergence (different math-library bits, FTZ, branch
    compilation of NaN comparisons) is not a per-statement property, so
    when even the fully strictified program still disagrees, the verdict
    is {!verdict.Runtime_divergence} — the analogue of pLiner failing to
    fix an inconsistency by raising precision, and itself a useful
    classification (it separates "the optimizer did it" from "the
    libraries disagree"). *)

type verdict =
  | No_inconsistency
      (** the two configurations already agree on these inputs *)
  | Isolated of int list
      (** minimal set of top-level statement indices (0-based, in body
          order) whose strictification makes the outputs agree *)
  | Runtime_divergence
      (** strictifying every statement does not help: the divergence is
          in the runtime (math library, FTZ, branch semantics), not in a
          per-statement transformation *)

val verdict_name : verdict -> string
(** Machine-readable tag: ["no_inconsistency"], ["isolated"],
    ["runtime_divergence"] — used by the metrics registry and the
    [explain] report. *)

val hybrid_compile :
  Compiler.Config.t ->
  Lang.Ast.program ->
  strict : (int -> bool) ->
  (Compiler.Driver.binary, string) result
(** Compile under the configuration, but keep every top-level statement
    [i] with [strict i = true] in its unoptimized form. Dead-store
    elimination is disabled so statement positions align. *)

val isolate :
  program:Lang.Ast.program ->
  inputs:Irsim.Inputs.t ->
  suspect:Compiler.Config.t ->
  reference:Compiler.Config.t ->
  (verdict, string) result
(** Run the search. [Error] means one of the configurations failed to
    compile the program. *)

val verdict_to_string : Lang.Ast.program -> verdict -> string
(** Human-readable report, quoting the isolated statements. *)

(** {1 Corpus-level classification}

    The paper suggests grouping inconsistency-triggering programs into
    equivalence classes by root cause (§3.2.2). [classify] applies the
    isolation analysis across a corpus and tallies the outcomes. *)

type classification = {
  agree : int;            (** no inconsistency between the two configs *)
  isolated_one : int;     (** fixed by strictifying a single statement *)
  isolated_many : int;    (** fixed by strictifying several statements *)
  runtime : int;          (** runtime-level divergence *)
  failed : int;           (** compilation failure *)
}

val classify :
  suspect:Compiler.Config.t ->
  reference:Compiler.Config.t ->
  (Lang.Ast.program * Irsim.Inputs.t) list ->
  classification

val classification_to_string : classification -> string
