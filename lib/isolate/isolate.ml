type verdict =
  | No_inconsistency
  | Isolated of int list
  | Runtime_divergence

let verdict_name = function
  | No_inconsistency -> "no_inconsistency"
  | Isolated _ -> "isolated"
  | Runtime_divergence -> "runtime_divergence"

let m_runs = Obs.Metrics.counter "isolate.runs"
let m_isolated = Obs.Metrics.counter "isolate.verdicts.isolated"
let m_runtime = Obs.Metrics.counter "isolate.verdicts.runtime_divergence"
let m_agree = Obs.Metrics.counter "isolate.verdicts.no_inconsistency"
let m_hybrids = Obs.Metrics.counter "isolate.hybrid_compiles"

let m_strict_set =
  Obs.Metrics.histogram ~buckets:[| 1.0; 2.0; 4.0; 8.0; 16.0; 32.0 |]
    "isolate.strict_set_size"

(* Apply a config's pass pipeline, but keep the statements selected by
   [strict] in their plain lowered form. Statement positions are stable
   because no pass inserts or deletes top-level statements when dead-store
   elimination is off, so the optimized and strict bodies align 1:1. *)
let hybrid_compile (config : Compiler.Config.t) (program : Lang.Ast.program)
    ~strict =
  Obs.Metrics.incr m_hybrids;
  Obs.Span.with_span "isolate.hybrid_compile" @@ fun () ->
  let applied = Compiler.Config.effective config program.Lang.Ast.precision in
  let no_dce = { applied with Compiler.Config.dce = false } in
  match Analysis.Validate.check program with
  | Error issues ->
    Error
      (String.concat "; "
         (List.map Analysis.Validate.issue_to_string issues))
  | Ok () -> begin
    match Irsim.Lower.program program with
    | exception Irsim.Lower.Error msg -> Error msg
    | plain ->
      let optimized =
        let ir = Irsim.Fold.run no_dce.Compiler.Config.fold plain in
        let ir =
          match no_dce.Compiler.Config.fastmath with
          | None -> ir
          | Some fm -> Irsim.Fastmath.run fm ir
        in
        Irsim.Contract.run no_dce.Compiler.Config.contract ir
      in
      if
        List.length optimized.Irsim.Ir.body
        <> List.length plain.Irsim.Ir.body
      then Error "internal: pass pipeline changed statement count"
      else begin
        let body =
          List.mapi
            (fun i opt_stmt ->
              if strict i then List.nth plain.Irsim.Ir.body i else opt_stmt)
            optimized.Irsim.Ir.body
        in
        let ir = { optimized with Irsim.Ir.body } in
        Ok
          (Compiler.Driver.of_ir ~config:no_dce ~source:(Lang.Pp.to_c program)
             ~work:0 ir)
      end
  end

let hex binary inputs = Compiler.Driver.run_hex binary inputs

(* ddmin-style minimization: repeatedly try to drop chunks of the strict
   set while the fix still holds. *)
let minimize ~fixes universe =
  let rec shrink set chunk =
    if chunk = 0 then set
    else begin
      let arr = Array.of_list set in
      let n = Array.length arr in
      let removed = ref None in
      let i = ref 0 in
      while !removed = None && !i < n do
        let lo = !i and hi = min n (!i + chunk) in
        let candidate =
          Array.to_list arr
          |> List.filteri (fun j _ -> j < lo || j >= hi)
        in
        if List.length candidate < List.length set && fixes candidate then
          removed := Some candidate;
        i := !i + chunk
      done;
      match !removed with
      | Some candidate -> shrink candidate chunk
      | None -> shrink set (chunk / 2)
    end
  in
  let n = List.length universe in
  shrink universe (max 1 (n / 2))

let isolate ~program ~inputs ~suspect ~reference =
  Obs.Span.with_span "isolate.isolate" @@ fun () ->
  Obs.Metrics.incr m_runs;
  let tally = function
    | No_inconsistency -> Obs.Metrics.incr m_agree
    | Runtime_divergence -> Obs.Metrics.incr m_runtime
    | Isolated set ->
      Obs.Metrics.incr m_isolated;
      Obs.Metrics.observe m_strict_set (float_of_int (List.length set))
  in
  Result.map
    (fun v ->
      tally v;
      v)
  @@
  match
    ( Compiler.Driver.compile suspect program,
      Compiler.Driver.compile reference program )
  with
  | Error msg, _ | _, Error msg -> Error msg
  | Ok suspect_bin, Ok reference_bin ->
    let target = hex reference_bin inputs in
    if hex suspect_bin inputs = target then Ok No_inconsistency
    else begin
      let n = List.length program.Lang.Ast.body in
      let fixes set =
        match
          hybrid_compile suspect program ~strict:(fun i -> List.mem i set)
        with
        | Error _ -> false
        | Ok hybrid -> hex hybrid inputs = target
      in
      let all = List.init n Fun.id in
      if not (fixes all) then Ok Runtime_divergence
      else Ok (Isolated (minimize ~fixes all))
    end

let verdict_to_string (program : Lang.Ast.program) = function
  | No_inconsistency -> "no inconsistency on these inputs"
  | Runtime_divergence ->
    "runtime divergence: strictifying every statement does not reconcile \
     the outputs — the cause is in the math library, FTZ, or branch \
     semantics, not in a per-statement transformation"
  | Isolated indices ->
    let quoted =
      List.map
        (fun i ->
          let stmt = List.nth program.Lang.Ast.body i in
          let line =
            match Lang.Pp.stmt_to_lines program.Lang.Ast.precision 0 stmt with
            | first :: _ -> first
            | [] -> "<empty>"
          in
          Printf.sprintf "  [%d] %s" i line)
        indices
    in
    Printf.sprintf
      "isolated to %d statement(s) — strictifying them reconciles the \
       outputs:\n%s"
      (List.length indices)
      (String.concat "\n" quoted)

type classification = {
  agree : int;
  isolated_one : int;
  isolated_many : int;
  runtime : int;
  failed : int;
}

let classify ~suspect ~reference cases =
  List.fold_left
    (fun acc (program, inputs) ->
      match isolate ~program ~inputs ~suspect ~reference with
      | Error _ -> { acc with failed = acc.failed + 1 }
      | Ok No_inconsistency -> { acc with agree = acc.agree + 1 }
      | Ok Runtime_divergence -> { acc with runtime = acc.runtime + 1 }
      | Ok (Isolated [ _ ]) -> { acc with isolated_one = acc.isolated_one + 1 }
      | Ok (Isolated _) -> { acc with isolated_many = acc.isolated_many + 1 })
    { agree = 0; isolated_one = 0; isolated_many = 0; runtime = 0; failed = 0 }
    cases

let classification_to_string c =
  Printf.sprintf
    "agree: %d; isolated to one statement: %d; to several: %d; \
     runtime-level: %d; compile failures: %d"
    c.agree c.isolated_one c.isolated_many c.runtime c.failed
