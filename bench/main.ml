(* Benchmark harness.

   Two halves:

   1. Bechamel micro-benchmarks for each pipeline stage (generation, front
      end, compilation, execution, mutation, diversity scoring) — one
      Test.make per stage, all in one executable.
   2. The experiment harness: runs the four campaigns at the paper's
      budget and regenerates every table and figure of the evaluation
      (Tables 1–6 and Figure 3), printing the same rows the paper
      reports. EXPERIMENTS.md records paper-vs-measured values.

   Environment knobs:
     LLM4FP_BUDGET    programs per approach        (default 1000)
     LLM4FP_SEED      base seed                    (default 20250704)
     LLM4FP_MAXPAIRS  CodeBLEU pair sample bound   (default 50000)
     LLM4FP_JOBS      worker domains for the parallel engine (default 1);
                      when > 1 the harness first asserts that a small
                      parallel suite renders byte-identically to the
                      sequential one, then runs everything at that width
     LLM4FP_SKIP_MICRO=1   skip the bechamel half
     LLM4FP_SKIP_TABLES=1  skip the campaign half
     LLM4FP_SKIP_ABLATION=1  skip the mechanism-ablation study
     LLM4FP_ABLATION_BUDGET  corpus size for ablation/FP32 (default 300)
     LLM4FP_SKIP_FP32=1    skip the FP32-vs-FP64 extension
     LLM4FP_SKIP_FORENSICS=1  skip the flight-recorder overhead study
     LLM4FP_FORENSICS_BUDGET  campaign size for that study (default 100)
     LLM4FP_SKIP_REDUCE=1  skip the case-reduction study
     LLM4FP_REDUCE_BUDGET  campaign size for that study (default 25)
     LLM4FP_REDUCE_CASES   cases reduced from its archive (default 40)
     LLM4FP_SKIP_CHECKPOINT=1  skip the checkpoint overhead study
     LLM4FP_CHECKPOINT_BUDGET  campaign size for that study (default 100)
     LLM4FP_CHECKPOINT_EVERY   slots between checkpoints (default 25)
     LLM4FP_SKIP_WATCH=1   skip the watcher overhead study
     LLM4FP_WATCH_BUDGET   campaign size for that study (default 100)
     LLM4FP_ENGINE         execution engine for the whole bench run
                           (tree | vm, default vm)
     LLM4FP_SKIP_THROUGHPUT=1  skip the tree-vs-vm interp throughput study
     LLM4FP_THROUGHPUT_INPUTS  input vectors for that study (default 1000)
     LLM4FP_SKIP_ENGINE_EQUIV=1  skip the tree-vs-vm equivalence drill
     LLM4FP_ENGINE_BUDGET  campaign size for that drill (default 60)
     LLM4FP_SKIP_COVERAGE=1  skip the coverage-observatory study
     LLM4FP_COVERAGE_BUDGET  campaign size for that study (default 60)
     LLM4FP_SKIP_FLEET=1   skip the fleet scaling study
     LLM4FP_FLEET_BUDGET   campaign size for that study (default 60)
     LLM4FP_SKIP_BANDIT=1  skip the bandit-ensemble ablation study
     LLM4FP_BANDIT_BUDGET  campaign size for that study (default 200)
     LLM4FP_JSON_OUT=FILE  also write a machine-readable summary (totals
                           plus per-phase Obs.Span aggregates, so
                           BENCH_*.json files track the phase-level
                           trajectory, not just end-to-end seconds) *)

open Bechamel
open Toolkit

let env_int name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> begin
    match int_of_string_opt (String.trim s) with
    | Some v -> v
    | None ->
      Printf.eprintf "bench: invalid value for %s: %S (expected an integer)\n"
        name s;
      exit 2
  end

let env_flag name = Sys.getenv_opt name = Some "1"

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks: one per pipeline stage. *)

let varity_program = Gen.Varity.generate (Util.Rng.of_int 11)

let llm_source =
  let client = Llm.Client.create ~seed:11 () in
  (Llm.Client.generate client (Llm.Prompt.Grammar { precision = Lang.Ast.F64 }))
    .Llm.Client.source

let llm_program = Cparse.Parse.program_exn llm_source

let llm_inputs =
  Gen.Generate.gen_inputs (Util.Rng.of_int 12) Llm.Client.generation_config
    llm_program

let gcc_o3fm =
  Compiler.Config.make Compiler.Personality.Gcc Compiler.Optlevel.O3_fastmath

let compiled_binary =
  match Compiler.Driver.compile gcc_o3fm llm_program with
  | Ok bin -> bin
  | Error m -> failwith m

let codebleu_summary_a = Diversity.Codebleu.summarize llm_program
let codebleu_summary_b = Diversity.Codebleu.summarize varity_program

let micro_tests =
  [
    Test.make ~name:"generate/varity"
      (Staged.stage (fun () -> Gen.Varity.generate (Util.Rng.of_int 42)));
    Test.make ~name:"generate/mock-llm"
      (let client = Llm.Client.create ~seed:42 () in
       Staged.stage (fun () ->
           Llm.Client.generate client
             (Llm.Prompt.Grammar { precision = Lang.Ast.F64 })));
    Test.make ~name:"frontend/parse"
      (Staged.stage (fun () -> Cparse.Parse.program_exn llm_source));
    Test.make ~name:"frontend/validate"
      (Staged.stage (fun () -> Analysis.Validate.check llm_program));
    Test.make ~name:"compile/gcc-O3-fastmath"
      (Staged.stage (fun () -> Compiler.Driver.compile gcc_o3fm llm_program));
    Test.make ~name:"execute/one-binary"
      (Staged.stage (fun () -> Compiler.Driver.run compiled_binary llm_inputs));
    Test.make ~name:"difftest/full-matrix"
      (Staged.stage (fun () -> Difftest.Run.test llm_program llm_inputs));
    Test.make ~name:"mutate/one-strategy"
      (let rng = Util.Rng.of_int 43 in
       Staged.stage (fun () ->
           Llm.Mutate.apply rng Llm.Mutate.Insert_intermediates llm_program));
    Test.make ~name:"diversity/codebleu-pair"
      (Staged.stage (fun () ->
           Diversity.Codebleu.symmetric codebleu_summary_a codebleu_summary_b));
    Test.make ~name:"diversity/clone-keys"
      (Staged.stage (fun () -> Diversity.Clones.type2_key llm_program));
  ]

let run_micro () : (string * float) list =
  print_endline "== micro-benchmarks (bechamel, monotonic clock) ==";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let instance = Instance.monotonic_clock in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let rows =
    List.map
      (fun test ->
        let results = Benchmark.all cfg [ instance ] test in
        let name = Test.Elt.name (List.hd (Test.elements test)) in
        let analyzed = Analyze.all ols instance results in
        let estimate =
          Hashtbl.fold
            (fun _ result acc ->
              match Analyze.OLS.estimates result with
              | Some [ t ] -> t
              | _ -> acc)
            analyzed 0.0
        in
        (name, estimate))
      micro_tests
  in
  print_string
    (Report.Table.render ~header:[ "stage"; "time per call" ]
       (List.map
          (fun (name, ns) ->
            let rendered =
              if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
              else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
              else Printf.sprintf "%.0f ns" ns
            in
            [ name; rendered ])
          rows));
  print_newline ();
  rows

(* ------------------------------------------------------------------ *)
(* Table/figure regeneration. *)

(* Parallelism must never change results: before running anything at
   LLM4FP_JOBS > 1, render a small suite sequentially and at the
   requested width and require the deterministic tables to match byte
   for byte. (summary embeds measured real seconds, so the check uses
   table2 and table5.) *)
let assert_jobs_deterministic ~jobs =
  let budget = 20 in
  let seed = env_int "LLM4FP_SEED" 20250704 in
  let render jobs =
    let suite = Harness.Experiments.run_suite ~budget ~jobs ~seed () in
    ( Harness.Experiments.table2 suite,
      Harness.Experiments.table5 suite )
  in
  let seq = render 1 in
  let par = render jobs in
  if seq <> par then begin
    Printf.eprintf
      "FATAL: tables differ between --jobs 1 and --jobs %d (budget %d, \
       seed %d)\n"
      jobs budget seed;
    exit 1
  end;
  Printf.printf
    "(determinism check: budget-%d suite byte-identical at jobs=1 and \
     jobs=%d)\n\n"
    budget jobs

let run_tables ~jobs () =
  let budget = env_int "LLM4FP_BUDGET" 1000 in
  let seed = env_int "LLM4FP_SEED" 20250704 in
  let max_pairs = env_int "LLM4FP_MAXPAIRS" 50_000 in
  Printf.printf
    "== experiment harness: regenerating every table and figure (budget \
     %d per approach, %d jobs) ==\n\n"
    budget jobs;
  let t0 = Unix.gettimeofday () in
  let suite = Harness.Experiments.run_suite ~budget ~jobs ~seed () in
  List.iter
    (fun (name, text) -> Printf.printf "== %s ==\n%s\n" name text)
    (Harness.Experiments.all_tables ~max_pairs ~jobs suite);
  let elapsed = Unix.gettimeofday () -. t0 in
  Printf.printf "(real compute for all campaigns + tables: %.1fs)\n" elapsed;
  elapsed

let run_ablation ~jobs () =
  let budget = env_int "LLM4FP_ABLATION_BUDGET" 300 in
  let seed = env_int "LLM4FP_SEED" 20250704 in
  print_endline "== ablation (this reproduction's own study) ==";
  print_string (Harness.Ablation.table ~budget ~jobs ~seed ());
  print_newline ()

let run_fp32 () =
  let budget = env_int "LLM4FP_ABLATION_BUDGET" 300 in
  let seed = env_int "LLM4FP_SEED" 20250704 in
  print_endline "== precision extension (FP32 vs FP64) ==";
  print_string (Harness.Experiments.precision_comparison ~budget ~seed ());
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Flight-recorder overhead: the same campaign with and without a case
   archive attached. Recording is specified to be purely observational,
   so the study doubles as an assertion: any differing statistic is a
   correctness bug, not a measurement artifact. *)

type forensics_summary = {
  f_without_s : float;
  f_with_s : float;
  f_cases : int;
  f_cross : int;
  f_within : int;
  f_duplicates : int;
}

let run_forensics ~jobs () =
  let budget = env_int "LLM4FP_FORENSICS_BUDGET" 100 in
  let seed = env_int "LLM4FP_SEED" 20250704 in
  Printf.printf
    "== forensics: flight-recorder overhead (budget %d, %d jobs) ==\n"
    budget jobs;
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let bare, without_s =
    timed (fun () ->
        Harness.Campaign.run ~budget ~jobs ~seed Harness.Approach.Llm4fp)
  in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "llm4fp-bench-cases-%d" (Unix.getpid ()))
  in
  let recorder = Difftest.Recorder.create ~dir in
  let recorded, with_s =
    timed (fun () ->
        Harness.Campaign.run ~budget ~jobs ~recorder ~seed
          Harness.Approach.Llm4fp)
  in
  let signature = Harness.Campaign.signature in
  if signature bare <> signature recorded then begin
    Printf.eprintf
      "FATAL: attaching the flight recorder changed campaign results \
       (budget %d, seed %d)\n"
      budget seed;
    exit 1
  end;
  let cases =
    match Difftest.Recorder.load_dir dir with
    | Ok cases -> cases
    | Error msg -> failwith ("bench: cannot re-read case archive: " ^ msg)
  in
  let cross =
    List.length
      (List.filter
         (fun (c : Difftest.Case.t) -> c.Difftest.Case.kind = Difftest.Case.Cross)
         cases)
  in
  let summary =
    {
      f_without_s = without_s;
      f_with_s = with_s;
      f_cases = List.length cases;
      f_cross = cross;
      f_within = List.length cases - cross;
      f_duplicates = Difftest.Recorder.duplicates recorder;
    }
  in
  Array.iter
    (fun f -> Sys.remove (Filename.concat dir f))
    (Sys.readdir dir);
  Unix.rmdir dir;
  Printf.printf
    "without recorder: %.2fs; with: %.2fs (overhead %+.2fs); archived %d \
     case(s) (%d cross, %d within), %d duplicate hit(s); results \
     identical\n\n"
    summary.f_without_s summary.f_with_s
    (summary.f_with_s -. summary.f_without_s)
    summary.f_cases summary.f_cross summary.f_within summary.f_duplicates;
  summary

(* ------------------------------------------------------------------ *)
(* Reduction: record a small fixed-seed archive and delta-debug every
   case, reporting how far the witnesses shrink and what the oracle
   costs. A case that fails to reduce (or to replay) is a correctness
   bug in the reducer, so the study asserts there are none. *)

type reduce_summary = {
  r_seconds : float;
  r_cases : int;
  r_strictly_smaller : int;
  r_ratio_mean : float;
  r_ratio_min : float;
  r_ratio_max : float;
  r_oracle_calls : int;
}

let run_reduce () =
  let budget = env_int "LLM4FP_REDUCE_BUDGET" 25 in
  let max_cases = env_int "LLM4FP_REDUCE_CASES" 40 in
  let seed = env_int "LLM4FP_SEED" 20250704 in
  Printf.printf
    "== reduction: delta-debugging shrink ratios (budget %d, first %d \
     cases) ==\n"
    budget max_cases;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "llm4fp-bench-reduce-%d" (Unix.getpid ()))
  in
  let recorder = Difftest.Recorder.create ~dir in
  ignore
    (Harness.Campaign.run ~budget ~jobs:1 ~recorder ~seed
       Harness.Approach.Llm4fp);
  let cases =
    match Difftest.Recorder.load_dir dir with
    | Ok cases -> List.filteri (fun i _ -> i < max_cases) cases
    | Error msg -> failwith ("bench: cannot re-read case archive: " ^ msg)
  in
  let t0 = Unix.gettimeofday () in
  let outcomes =
    List.map
      (fun case ->
        match Reduce.run case with
        | Ok o -> o
        | Error msg ->
          Printf.eprintf "FATAL: reduction failed on %s: %s\n"
            (Difftest.Case.fingerprint case)
            msg;
          exit 1)
      cases
  in
  let r_seconds = Unix.gettimeofday () -. t0 in
  Array.iter
    (fun f -> Sys.remove (Filename.concat dir f))
    (Sys.readdir dir);
  Unix.rmdir dir;
  let ratios = List.map Reduce.shrink_ratio outcomes in
  let n = List.length outcomes in
  let summary =
    {
      r_seconds;
      r_cases = n;
      r_strictly_smaller =
        List.length
          (List.filter
             (fun (o : Reduce.outcome) ->
               o.Reduce.reduced_size < o.Reduce.original_size)
             outcomes);
      r_ratio_mean =
        (if n = 0 then 1.0
         else List.fold_left ( +. ) 0.0 ratios /. float_of_int n);
      r_ratio_min = List.fold_left Float.min 1.0 ratios;
      r_ratio_max = List.fold_left Float.max 0.0 ratios;
      r_oracle_calls =
        List.fold_left
          (fun acc (o : Reduce.outcome) -> acc + o.Reduce.oracle_calls)
          0 outcomes;
    }
  in
  Printf.printf
    "%d case(s) reduced in %.2fs: %d strictly smaller; shrink ratio mean \
     %.2f (min %.2f, max %.2f); %d oracle calls\n\n"
    summary.r_cases summary.r_seconds summary.r_strictly_smaller
    summary.r_ratio_mean summary.r_ratio_min summary.r_ratio_max
    summary.r_oracle_calls;
  summary

(* ------------------------------------------------------------------ *)
(* Checkpointing: the same campaign without and with durable snapshots,
   then a crash-recovery drill. Checkpointing is specified to change no
   result, and a resumed campaign must be indistinguishable from an
   uninterrupted one — both properties are asserted fatally, so the
   overhead numbers this study reports are only ever printed for a
   correct implementation. *)

type checkpoint_summary = {
  c_without_s : float;
  c_with_s : float;
  c_interval : int;
  c_checkpoints : int;
  c_resume_equivalent : bool;
}

let run_checkpoint ~jobs () =
  let budget = env_int "LLM4FP_CHECKPOINT_BUDGET" 100 in
  let interval = env_int "LLM4FP_CHECKPOINT_EVERY" 25 in
  let seed = env_int "LLM4FP_SEED" 20250704 in
  Printf.printf
    "== checkpointing: snapshot overhead and crash recovery (budget %d, \
     every %d slots, %d jobs) ==\n"
    budget interval jobs;
  if budget <= 2 * interval then begin
    Printf.eprintf
      "FATAL: LLM4FP_CHECKPOINT_BUDGET (%d) must exceed twice \
       LLM4FP_CHECKPOINT_EVERY (%d) so the crash drill has a second \
       checkpoint to die at\n"
      budget interval;
    exit 1
  end;
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let rm_rf dir =
    if Sys.file_exists dir then begin
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Unix.rmdir dir
    end
  in
  let tmp name =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "llm4fp-bench-%s-%d" name (Unix.getpid ()))
  in
  let signature = Harness.Campaign.signature in
  let bare, without_s =
    timed (fun () ->
        Harness.Campaign.run ~budget ~jobs ~seed Harness.Approach.Llm4fp)
  in
  let dir = tmp "ckpt" in
  let snapshotted, with_s =
    timed (fun () ->
        Harness.Campaign.run ~budget ~jobs ~checkpoint:(dir, interval) ~seed
          Harness.Approach.Llm4fp)
  in
  if signature bare <> signature snapshotted then begin
    Printf.eprintf
      "FATAL: checkpointing changed campaign results (budget %d, seed %d)\n"
      budget seed;
    exit 1
  end;
  rm_rf dir;
  (* Crash drill: die mid-write at the second checkpoint (the atomic
     rename means the first snapshot survives intact), resume from it,
     and require the outcome to match the uninterrupted run exactly. *)
  let crash_dir = tmp "ckpt-crash" in
  Exec.Faults.arm
    [ { Exec.Faults.stage = Exec.Faults.Checkpoint_write;
        hit = 2;
        action = Exec.Faults.Crash } ];
  (match
     Harness.Campaign.run ~budget ~jobs ~checkpoint:(crash_dir, interval)
       ~seed Harness.Approach.Llm4fp
   with
  | exception Exec.Faults.Crash_injected _ -> ()
  | _ ->
    Printf.eprintf "FATAL: injected checkpoint crash never fired\n";
    exit 1);
  Exec.Faults.disarm ();
  let resumed =
    match Checkpoint.load ~dir:crash_dir with
    | Error msg ->
      Printf.eprintf "FATAL: surviving checkpoint unreadable: %s\n" msg;
      exit 1
    | Ok snap ->
      Harness.Campaign.run ~budget ~jobs ~resume:snap ~seed
        Harness.Approach.Llm4fp
  in
  rm_rf crash_dir;
  let resume_equivalent = signature resumed = signature bare in
  if not resume_equivalent then begin
    Printf.eprintf
      "FATAL: resumed campaign diverged from the uninterrupted run \
       (budget %d, seed %d, crash at checkpoint 2)\n"
      budget seed;
    exit 1
  end;
  let summary =
    {
      c_without_s = without_s;
      c_with_s = with_s;
      c_interval = interval;
      c_checkpoints = (budget - 1) / interval;
      c_resume_equivalent = resume_equivalent;
    }
  in
  Printf.printf
    "without checkpoints: %.2fs; with: %.2fs (overhead %+.2fs over %d \
     snapshot(s)); crash at checkpoint 2 resumed to an identical \
     outcome\n\n"
    summary.c_without_s summary.c_with_s
    (summary.c_with_s -. summary.c_without_s)
    summary.c_checkpoints;
  summary

(* ------------------------------------------------------------------ *)
(* Watching: the same traced campaign with and without a concurrent
   flight-deck follower polling the trace file from another domain.
   Watching is specified to be purely observational, so the study
   asserts three byte-level identities before reporting overhead: the
   campaign signatures match, the trace files match byte for byte, and
   the case archives match file for file. It also asserts the follower
   protocol itself: the concatenated streamed batches equal a one-shot
   read of the finished trace. *)

type watch_summary = {
  w_without_s : float;
  w_with_s : float;
  w_polls : int;
  w_events : int;
}

let read_file path = In_channel.with_open_bin path In_channel.input_all

let run_watch ~jobs () =
  let budget = env_int "LLM4FP_WATCH_BUDGET" 100 in
  let seed = env_int "LLM4FP_SEED" 20250704 in
  Printf.printf
    "== watch: trace-follower overhead (budget %d, %d jobs) ==\n" budget jobs;
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let tmp name =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "llm4fp-bench-%s-%d" name (Unix.getpid ()))
  in
  let rm_rf dir =
    if Sys.file_exists dir then begin
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Unix.rmdir dir
    end
  in
  let traced ~trace ~dir f =
    let recorder = Difftest.Recorder.create ~dir in
    let oc = open_out_bin trace in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        Obs.Trace.with_sink
          (Obs.Sink.ordered (Obs.Sink.jsonl oc))
          (fun () -> f ~recorder))
  in
  let signature = Harness.Campaign.signature in
  let trace_a = tmp "watch-trace-a.jsonl" and dir_a = tmp "watch-cases-a" in
  let trace_b = tmp "watch-trace-b.jsonl" and dir_b = tmp "watch-cases-b" in
  let bare, without_s =
    timed (fun () ->
        traced ~trace:trace_a ~dir:dir_a (fun ~recorder ->
            Harness.Campaign.run ~budget ~jobs ~recorder ~seed
              Harness.Approach.Llm4fp))
  in
  (* Second run with a follower domain tailing the live trace. The
     watcher drains until it has seen the whole finished file: [stop]
     is raised only after the sink's channel is closed, and the loop
     does one final poll after observing it. *)
  let stop = Atomic.make false in
  let polls = ref 0 in
  let watcher = Domain.spawn (fun () ->
      let follower = Obs.Follow.create ~path:trace_b in
      let rec loop acc =
        let final = Atomic.get stop in
        let acc =
          match Obs.Follow.poll follower with
          | Ok batch -> acc @ batch.Obs.Follow.events
          | Error msg -> failwith ("bench: watcher poll failed: " ^ msg)
        in
        incr polls;
        if final then acc
        else begin
          Unix.sleepf 0.001;
          loop acc
        end
      in
      loop [])
  in
  let watched, with_s =
    timed (fun () ->
        traced ~trace:trace_b ~dir:dir_b (fun ~recorder ->
            Harness.Campaign.run ~budget ~jobs ~recorder ~seed
              Harness.Approach.Llm4fp))
  in
  Atomic.set stop true;
  let streamed = Domain.join watcher in
  if signature bare <> signature watched then begin
    Printf.eprintf
      "FATAL: a concurrent watcher changed campaign results (budget %d, \
       seed %d)\n"
      budget seed;
    exit 1
  end;
  if read_file trace_a <> read_file trace_b then begin
    Printf.eprintf
      "FATAL: a concurrent watcher changed the trace bytes (budget %d, \
       seed %d)\n"
      budget seed;
    exit 1
  end;
  let archive dir =
    Sys.readdir dir |> Array.to_list |> List.sort compare
    |> List.map (fun f -> (f, read_file (Filename.concat dir f)))
  in
  if archive dir_a <> archive dir_b then begin
    Printf.eprintf
      "FATAL: a concurrent watcher changed the case archive (budget %d, \
       seed %d)\n"
      budget seed;
    exit 1
  end;
  (match Obs.Follow.read_all ~path:trace_b with
  | Ok one_shot when one_shot = streamed -> ()
  | Ok _ ->
    Printf.eprintf
      "FATAL: streamed batches differ from a one-shot trace read\n";
    exit 1
  | Error msg ->
    Printf.eprintf "FATAL: cannot re-read watched trace: %s\n" msg;
    exit 1);
  Sys.remove trace_a;
  Sys.remove trace_b;
  rm_rf dir_a;
  rm_rf dir_b;
  let summary =
    {
      w_without_s = without_s;
      w_with_s = with_s;
      w_polls = !polls;
      w_events = List.length streamed;
    }
  in
  Printf.printf
    "without watcher: %.2fs; with: %.2fs (overhead %+.2fs); %d event(s) \
     streamed over %d poll(s); trace, archive and results identical\n\n"
    summary.w_without_s summary.w_with_s
    (summary.w_with_s -. summary.w_without_s)
    summary.w_events summary.w_polls;
  summary

(* ------------------------------------------------------------------ *)
(* Interp throughput: the tentpole measurement. One compiled binary, N
   distinct input vectors; the tree interpreter re-walks the IR per
   call, the VM runs its flattened program over one reused state. The
   outcomes must be bit-identical (fatal otherwise) before either side
   is timed. *)

type throughput_summary = {
  t_inputs : int;
  t_tree_pps : float;
  t_vm_pps : float;
  t_tree_ops_ps : float;
  t_vm_ops_ps : float;
  t_speedup : float;
}

let run_throughput () =
  let n = env_int "LLM4FP_THROUGHPUT_INPUTS" 1000 in
  let seed = env_int "LLM4FP_SEED" 20250704 in
  Printf.printf "== interp throughput: tree vs vm (%d input vectors) ==\n" n;
  let rng = Util.Rng.of_int (seed lxor 0x7B) in
  let inputs =
    List.init n (fun _ ->
        Gen.Generate.gen_inputs rng Llm.Client.generation_config llm_program)
  in
  let binary = compiled_binary in
  let rt = Compiler.Config.runtime binary.Compiler.Driver.config in
  let tree_once () =
    List.map (fun i -> Irsim.Interp.run rt binary.Compiler.Driver.ir i) inputs
  in
  let vm_once () = Irsim.Vm.run_batch binary.Compiler.Driver.vm inputs in
  let tree_out = tree_once () and vm_out = vm_once () in
  let same (a : Irsim.Interp.outcome) (b : Irsim.Interp.outcome) =
    Int64.bits_of_float a.Irsim.Interp.result
    = Int64.bits_of_float b.Irsim.Interp.result
    && a.Irsim.Interp.fp_ops = b.Irsim.Interp.fp_ops
  in
  if not (List.for_all2 same tree_out vm_out) then begin
    Printf.eprintf
      "FATAL: VM and tree interpreter disagree over %d input vectors\n" n;
    exit 1
  end;
  let total_ops =
    List.fold_left (fun acc o -> acc + o.Irsim.Interp.fp_ops) 0 tree_out
  in
  (* Repeat whole batches until ~0.5s has elapsed so both rates average
     over enough work to be stable. *)
  let time_engine f =
    ignore (f ());
    let t0 = Unix.gettimeofday () in
    let reps = ref 0 in
    while Unix.gettimeofday () -. t0 < 0.5 do
      ignore (f ());
      incr reps
    done;
    let dt = Unix.gettimeofday () -. t0 in
    ( float_of_int (!reps * n) /. dt,
      float_of_int (!reps * total_ops) /. dt )
  in
  let t_tree_pps, t_tree_ops_ps = time_engine tree_once in
  let t_vm_pps, t_vm_ops_ps = time_engine vm_once in
  let summary =
    {
      t_inputs = n;
      t_tree_pps;
      t_vm_pps;
      t_tree_ops_ps;
      t_vm_ops_ps;
      t_speedup = t_vm_pps /. t_tree_pps;
    }
  in
  Printf.printf
    "tree: %.0f programs/s (%.3g fp_ops/s)\nvm:   %.0f programs/s (%.3g \
     fp_ops/s)\nspeedup %.2fx; outcomes bit-identical\n\n"
    summary.t_tree_pps summary.t_tree_ops_ps summary.t_vm_pps
    summary.t_vm_ops_ps summary.t_speedup;
  summary

(* ------------------------------------------------------------------ *)
(* Engine equivalence: a fixed-seed campaign run under each engine with
   a trace sink and a flight recorder attached must produce the same
   outcome signature, the same trace bytes, and the same case archive.
   Fatal on any difference — the VM earning its keep must never change
   a result. *)

type engine_equiv_summary = { e_budget : int; e_jobs : int }

let run_engine_equiv ~jobs () =
  let budget = env_int "LLM4FP_ENGINE_BUDGET" 60 in
  let seed = env_int "LLM4FP_SEED" 20250704 in
  Printf.printf "== engine equivalence: tree vs vm (budget %d, %d jobs) ==\n"
    budget jobs;
  let tmp name =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "llm4fp-bench-%s-%d" name (Unix.getpid ()))
  in
  let rm_rf dir =
    if Sys.file_exists dir then begin
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Unix.rmdir dir
    end
  in
  let run_engine engine name =
    let trace = tmp (Printf.sprintf "engine-%s.jsonl" name) in
    let dir = tmp (Printf.sprintf "engine-%s-cases" name) in
    Compiler.Driver.set_engine engine;
    let recorder = Difftest.Recorder.create ~dir in
    let oc = open_out_bin trace in
    let o =
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          Obs.Trace.with_sink
            (Obs.Sink.ordered (Obs.Sink.jsonl oc))
            (fun () ->
              Harness.Campaign.run ~budget ~jobs ~recorder ~seed
                Harness.Approach.Llm4fp))
    in
    let archive =
      Sys.readdir dir |> Array.to_list |> List.sort compare
      |> List.map (fun f -> (f, read_file (Filename.concat dir f)))
    in
    let r = (Harness.Campaign.signature o, read_file trace, archive) in
    Sys.remove trace;
    rm_rf dir;
    r
  in
  let saved = Compiler.Driver.engine () in
  let (tree_sig, tree_trace, tree_arch), (vm_sig, vm_trace, vm_arch) =
    Fun.protect
      ~finally:(fun () -> Compiler.Driver.set_engine saved)
      (fun () ->
        let t = run_engine Compiler.Driver.Tree "tree" in
        let v = run_engine Compiler.Driver.Vm "vm" in
        (t, v))
  in
  if tree_sig <> vm_sig then begin
    Printf.eprintf
      "FATAL: tree and vm engines produced different campaign outcomes \
       (budget %d, seed %d)\n"
      budget seed;
    exit 1
  end;
  if tree_trace <> vm_trace then begin
    Printf.eprintf
      "FATAL: tree and vm engines produced different trace bytes (budget \
       %d, seed %d)\n"
      budget seed;
    exit 1
  end;
  if tree_arch <> vm_arch then begin
    Printf.eprintf
      "FATAL: tree and vm engines produced different case archives (budget \
       %d, seed %d)\n"
      budget seed;
    exit 1
  end;
  Printf.printf
    "outcome, trace bytes and case archive identical under both engines\n\n";
  { e_budget = budget; e_jobs = jobs }

(* ------------------------------------------------------------------ *)
(* Coverage observatory: the search-space ledger a campaign accumulates
   must itself be deterministic — same cells, same provenance, same
   rolling window — at any job count (asserted fatally by comparing the
   serialized snapshots). The study also surfaces the v9 summary
   fields: distinct cells, the novelty rate over the whole campaign,
   and where the plateau detector tripped (if it did). *)

type coverage_summary = {
  cov_cells : int;
  cov_novel_per_sim_s : float;
  cov_plateau_at : float option;
}

let run_coverage ~jobs () =
  let budget = env_int "LLM4FP_COVERAGE_BUDGET" 60 in
  let seed = env_int "LLM4FP_SEED" 20250704 in
  Printf.printf
    "== coverage observatory (search-space ledger, budget %d) ==\n" budget;
  let run jobs =
    Harness.Campaign.run ~budget ~jobs ~seed Harness.Approach.Llm4fp
  in
  let o = run jobs in
  let snapshot (o : Harness.Campaign.outcome) =
    Obs.Json.to_string (Obs.Coverage.to_json o.Harness.Campaign.coverage)
  in
  if jobs > 1 && snapshot o <> snapshot (run 1) then begin
    Printf.eprintf
      "FATAL: coverage ledger differs between --jobs 1 and --jobs %d \
       (budget %d, seed %d)\n"
      jobs budget seed;
    exit 1
  end;
  let cov = o.Harness.Campaign.coverage in
  let now = o.Harness.Campaign.sim_seconds in
  let cells = Obs.Coverage.total_cells cov in
  Printf.printf
    "  %d cells (cross %d, within %d), %d hits, last novel at %.1f sim-s\n"
    cells
    (Obs.Coverage.kind_cells cov "cross")
    (Obs.Coverage.kind_cells cov "within")
    (Obs.Coverage.total_hits cov)
    (Obs.Coverage.last_novel cov);
  List.iter
    (fun (r : Obs.Coverage.strategy_rate) ->
      Printf.printf "  %-8s window hits %d (novel %d), %.6f novel/sim-s\n"
        r.Obs.Coverage.strategy r.Obs.Coverage.window_hits
        r.Obs.Coverage.window_novel r.Obs.Coverage.novel_per_sim_s)
    (Obs.Coverage.strategy_rates cov ~now);
  let plateau = Obs.Coverage.plateau_at cov ~now in
  (match plateau with
  | Some at -> Printf.printf "  plateau tripped at %.1f sim-s\n\n" at
  | None -> Printf.printf "  no plateau within the campaign\n\n");
  {
    cov_cells = cells;
    cov_novel_per_sim_s =
      (if now > 0.0 then float_of_int cells /. now else 0.0);
    cov_plateau_at = plateau;
  }

(* ------------------------------------------------------------------ *)
(* Fleet scaling: run the same chunked budget at N ∈ {1, 2, 4} shards —
   each shard a domain running [Fleet.run_shard] with traces off (the
   trace sink is process-global; trace byte-identity is the test
   suite's sequential drill) — then merge each root and require the
   merged record byte-identical to the N=1 reference. Inequivalence is
   fatal: this is the bench-level shard-invariance drill the v10
   schema records. Wall-clock per N and the merge cost land in the
   JSON summary as the scaling curve. *)

type fleet_point = { fl_shards : int; fl_seconds : float; fl_speedup : float }

type fleet_summary = {
  fl_budget : int;
  fl_chunk : int;
  fl_cores : int;
      (* recommended domain count: the scaling ceiling. On a one-core
         box the curve measures pure sharding overhead, not speedup. *)
  fl_points : fleet_point list;
  fl_merge_seconds : float;
}

let run_fleet_study () =
  let budget = env_int "LLM4FP_FLEET_BUDGET" 60 in
  let seed = env_int "LLM4FP_SEED" 20250704 in
  let chunk = 10 in
  Printf.printf
    "== fleet scaling (budget %d, chunk %d, shards 1/2/4, %d core(s)) ==\n"
    budget chunk
    (Domain.recommended_domain_count ());
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter
          (fun f -> rm_rf (Filename.concat path f))
          (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  (* everything the merge exposes, as comparable bytes *)
  let merged_bytes (m : Harness.Fleet.merged) =
    String.concat "\n"
      (List.map
         (fun o -> Obs.Json.to_string (Harness.Fleet.outcome_to_json o))
         m.Harness.Fleet.chunks
      @ [ Obs.Json.to_string
            (Difftest.Stats.to_json m.Harness.Fleet.merged_stats);
          Obs.Json.to_string
            (Obs.Coverage.to_json m.Harness.Fleet.merged_coverage) ]
      @ List.map
          (fun c -> Obs.Json.to_string (Difftest.Case.to_json c))
          m.Harness.Fleet.cases)
  in
  let merge_seconds = ref 0.0 in
  let run n =
    let root =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "llm4fp-bench-fleet-n%d-%d" n (Unix.getpid ()))
    in
    rm_rf root;
    Util.Durable.mkdir_p root;
    let t0 = Unix.gettimeofday () in
    let domains =
      List.init n (fun i ->
          Domain.spawn (fun () ->
              Harness.Fleet.run_shard ~chunk ~trace:false ~root
                ~spec:{ Harness.Shard.index = i; count = n }
                ~budget ~seed Harness.Approach.Llm4fp))
    in
    List.iter
      (fun d ->
        match Domain.join d with
        | Ok _ -> ()
        | Error msg ->
          Printf.eprintf "FATAL: fleet shard failed at N=%d: %s\n" n msg;
          exit 1)
      domains;
    let seconds = Unix.gettimeofday () -. t0 in
    let t1 = Unix.gettimeofday () in
    let merged =
      match Harness.Fleet.load ~root with
      | Ok m -> m
      | Error msg ->
        Printf.eprintf "FATAL: fleet merge failed at N=%d: %s\n" n msg;
        exit 1
    in
    merge_seconds := Unix.gettimeofday () -. t1;
    let bytes = merged_bytes merged in
    rm_rf root;
    (seconds, bytes)
  in
  let t1_seconds, reference = run 1 in
  let points =
    { fl_shards = 1; fl_seconds = t1_seconds; fl_speedup = 1.0 }
    :: List.map
         (fun n ->
           let seconds, bytes = run n in
           if bytes <> reference then begin
             Printf.eprintf
               "FATAL: merged fleet record at N=%d differs from the \
                single-process reference (budget %d, seed %d)\n"
               n budget seed;
             exit 1
           end;
           {
             fl_shards = n;
             fl_seconds = seconds;
             fl_speedup = (if seconds > 0.0 then t1_seconds /. seconds else 0.0);
           })
         [ 2; 4 ]
  in
  List.iter
    (fun p ->
      Printf.printf "  N=%d: %.2fs (speedup %.2fx)\n" p.fl_shards p.fl_seconds
        p.fl_speedup)
    points;
  Printf.printf
    "  merged records byte-identical at every N (merge %.3fs)\n\n"
    !merge_seconds;
  {
    fl_budget = budget;
    fl_chunk = chunk;
    fl_cores = Domain.recommended_domain_count ();
    fl_points = points;
    fl_merge_seconds = !merge_seconds;
  }

(* ------------------------------------------------------------------ *)
(* Bandit ensemble: the five-arm bandit campaign against each fixed arm
   at the same budget and seed, compared on inconsistencies per
   simulated second. Two determinism properties are asserted fatally
   before any rate is printed: the job count must not move a single
   bandit draw (outcome signature and serialized posterior identical at
   jobs 1 and N), and a bandit campaign crashed at its second
   checkpoint and resumed must finish with the identical outcome and
   posterior. The ablation itself — bandit vs best fixed arm — is the
   reported result. *)

type bandit_arm_row = {
  b_arm : string;
  b_pulls : int;
  b_incons : int;
  b_sim_s : float;
  b_rate : float;
}

type bandit_summary = {
  b_budget : int;
  b_arms : bandit_arm_row list;
  b_bandit_rate : float;
  b_fixed : (string * float) list;
  b_best_fixed : string;
  b_best_fixed_rate : float;
  b_delta : float;
  b_resume_equivalent : bool;
  b_jobs_equivalent : bool;
}

let run_bandit ~jobs () =
  let budget = env_int "LLM4FP_BANDIT_BUDGET" 200 in
  let seed = env_int "LLM4FP_SEED" 20250704 in
  Printf.printf
    "== bandit ensemble: ablation vs fixed arms (budget %d, %d jobs) ==\n"
    budget jobs;
  let posterior (o : Harness.Campaign.outcome) =
    match o.Harness.Campaign.bandit with
    | Some b -> Obs.Json.to_string (Harness.Bandit.to_json b)
    | None ->
      Printf.eprintf "FATAL: bandit campaign returned no bandit state\n";
      exit 1
  in
  let observe jobs =
    let o = Harness.Campaign.run ~budget ~jobs ~seed Harness.Approach.Bandit in
    (o, posterior o)
  in
  let o, post = observe jobs in
  let b_jobs_equivalent =
    jobs = 1
    ||
    let o1, post1 = observe 1 in
    Harness.Campaign.signature o1 = Harness.Campaign.signature o
    && post1 = post
  in
  if not b_jobs_equivalent then begin
    Printf.eprintf
      "FATAL: bandit campaign differs between --jobs 1 and --jobs %d \
       (budget %d, seed %d)\n"
      jobs budget seed;
    exit 1
  end;
  (* Crash drill: die mid-write at the second snapshot, resume from the
     first, and require the finished posterior to match byte for byte. *)
  let interval = max 2 ((budget / 4) + 1) in
  let crash_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "llm4fp-bench-bandit-%d" (Unix.getpid ()))
  in
  let rm_rf dir =
    if Sys.file_exists dir then begin
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Unix.rmdir dir
    end
  in
  rm_rf crash_dir;
  Exec.Faults.arm
    [ { Exec.Faults.stage = Exec.Faults.Checkpoint_write;
        hit = 2;
        action = Exec.Faults.Crash } ];
  (match
     Harness.Campaign.run ~budget ~jobs ~checkpoint:(crash_dir, interval)
       ~seed Harness.Approach.Bandit
   with
  | exception Exec.Faults.Crash_injected _ -> ()
  | _ ->
    Printf.eprintf "FATAL: injected bandit checkpoint crash never fired\n";
    exit 1);
  Exec.Faults.disarm ();
  let resumed =
    match Checkpoint.load ~dir:crash_dir with
    | Error msg ->
      Printf.eprintf "FATAL: surviving bandit checkpoint unreadable: %s\n" msg;
      exit 1
    | Ok snap ->
      Harness.Campaign.run ~budget ~jobs ~resume:snap ~seed
        Harness.Approach.Bandit
  in
  rm_rf crash_dir;
  let b_resume_equivalent =
    Harness.Campaign.signature resumed = Harness.Campaign.signature o
    && posterior resumed = post
  in
  if not b_resume_equivalent then begin
    Printf.eprintf
      "FATAL: resumed bandit campaign diverged from the uninterrupted run \
       (budget %d, seed %d, crash at checkpoint 2)\n"
      budget seed;
    exit 1
  end;
  (* The ablation: each fixed arm at the identical budget and seed. *)
  let rate (o : Harness.Campaign.outcome) =
    let s = o.Harness.Campaign.sim_seconds in
    if s > 0.0 then
      float_of_int (Difftest.Stats.total_inconsistencies o.Harness.Campaign.stats)
      /. s
    else 0.0
  in
  let fixed =
    List.map
      (fun a ->
        ( Harness.Approach.name a,
          rate (Harness.Campaign.run ~budget ~jobs ~seed a) ))
      (Array.to_list Harness.Approach.all)
  in
  let best_fixed, best_fixed_rate =
    List.fold_left
      (fun (bn, br) (n, r) -> if r > br then (n, r) else (bn, br))
      ("", neg_infinity) fixed
  in
  let arms =
    match o.Harness.Campaign.bandit with
    | None -> []
    | Some b ->
      List.map
        (fun (name, pulls, incons, sim_s, r) ->
          { b_arm = name; b_pulls = pulls; b_incons = incons;
            b_sim_s = sim_s; b_rate = r })
        (Harness.Bandit.table b)
  in
  Printf.printf "  per-arm allocation (bandit campaign):\n";
  List.iter
    (fun r ->
      Printf.printf "    %-8s %5d pull(s)  %5d incons  %8.1f sim-s  %.4f/s\n"
        r.b_arm r.b_pulls r.b_incons r.b_sim_s r.b_rate)
    arms;
  let bandit_rate = rate o in
  Printf.printf "  fixed arms at the same budget:\n";
  List.iter
    (fun (n, r) -> Printf.printf "    %-14s %.4f incons/sim-s\n" n r)
    fixed;
  Printf.printf
    "  bandit: %.4f incons/sim-s vs best fixed arm %s at %.4f (%+.4f); \
     jobs and kill/resume drills byte-identical\n\n"
    bandit_rate best_fixed best_fixed_rate
    (bandit_rate -. best_fixed_rate);
  {
    b_budget = budget;
    b_arms = arms;
    b_bandit_rate = bandit_rate;
    b_fixed = fixed;
    b_best_fixed = best_fixed;
    b_best_fixed_rate = best_fixed_rate;
    b_delta = bandit_rate -. best_fixed_rate;
    b_resume_equivalent;
    b_jobs_equivalent;
  }

(* ------------------------------------------------------------------ *)
(* Flamegraph export: the span tree collected across the whole bench
   run must export as well-formed Chrome trace-event JSON — parseable,
   every event a complete ("ph":"X") slice with the required fields,
   and every child slice nested inside its parent's interval. Asserted
   fatally; the event count lands in the JSON summary. *)

let validate_flame () =
  let flame = Obs.Span.flame () in
  let reparsed =
    match Obs.Json.parse (Obs.Json.to_string flame) with
    | Ok v -> v
    | Error msg ->
      Printf.eprintf "FATAL: flame export is not valid JSON: %s\n" msg;
      exit 1
  in
  let events =
    match Obs.Json.member "traceEvents" reparsed with
    | Some (Obs.Json.List evs) -> evs
    | _ ->
      Printf.eprintf "FATAL: flame export lacks a traceEvents list\n";
      exit 1
  in
  let fail fmt = Printf.eprintf fmt; exit 1 in
  let num = function
    | Some (Obs.Json.Float f) -> f
    | Some (Obs.Json.Int i) -> float_of_int i
    | _ -> fail "FATAL: flame event has a missing/non-numeric ts or dur\n"
  in
  List.iter
    (fun ev ->
      (match Obs.Json.member "ph" ev with
      | Some (Obs.Json.String "X") -> ()
      | _ -> fail "FATAL: flame event is not a complete (\"X\") slice\n");
      (match Obs.Json.member "name" ev with
      | Some (Obs.Json.String _) -> ()
      | _ -> fail "FATAL: flame event lacks a name\n");
      let ts = num (Obs.Json.member "ts" ev) in
      let dur = num (Obs.Json.member "dur" ev) in
      if ts < 0.0 || dur < 0.0 then
        fail "FATAL: flame event has a negative ts or dur\n";
      match (Obs.Json.member "pid" ev, Obs.Json.member "tid" ev) with
      | Some (Obs.Json.Int _), Some (Obs.Json.Int _) -> ()
      | _ -> fail "FATAL: flame event lacks pid/tid\n")
    events;
  (* Nesting: walk the span tree alongside the flat event list — each
     tree node produced exactly one slice in DFS order, and a child's
     [ts, ts+dur) interval must lie within its parent's. *)
  let slices = ref events in
  let next () =
    match !slices with
    | [] -> fail "FATAL: flame export has fewer slices than tree nodes\n"
    | s :: rest ->
      slices := rest;
      (num (Obs.Json.member "ts" s), num (Obs.Json.member "dur" s))
  in
  let rec walk (n : Obs.Span.node) =
    let ts, dur = next () in
    List.iter
      (fun (child : Obs.Span.node) ->
        let cts, cdur = walk child in
        if cts < ts -. 0.5 || cts +. cdur > ts +. dur +. 0.5 then
          fail "FATAL: flame slice escapes its parent's interval\n")
      n.Obs.Span.n_children;
    (ts, dur)
  in
  List.iter (fun n -> ignore (walk n)) (Obs.Span.tree ());
  if !slices <> [] then
    fail "FATAL: flame export has more slices than tree nodes\n";
  List.length events

(* ------------------------------------------------------------------ *)
(* Machine-readable summary: per-phase span aggregates next to the
   end-to-end totals, so stored BENCH_*.json files can track where the
   time goes (generation / compile / interp / compare / CodeBLEU), not
   just how much of it there is. *)

let json_summary ~budget ~seed ~jobs ~tables_seconds ~end_to_end_seconds ~micro
    ~forensics ~reduction ~checkpoint ~watch ~throughput ~engine_equiv
    ~coverage ~fleet ~bandit ~flame_events =
  let phase (r : Obs.Span.row) =
    Obs.Json.Obj
      [ ("label", Obs.Json.String r.Obs.Span.label);
        ("count", Obs.Json.Int r.Obs.Span.count);
        ("total_s", Obs.Json.Float r.Obs.Span.total_s);
        ("mean_s", Obs.Json.Float r.Obs.Span.mean_s);
        ("max_s", Obs.Json.Float r.Obs.Span.max_s);
        ("sim_s", Obs.Json.Float r.Obs.Span.sim_s) ]
  in
  (* [counter] is get-or-create by name, so reading through it never
     fails — an instrument the run didn't touch just reads 0. *)
  let counter name = Obs.Metrics.counter_value (Obs.Metrics.counter name) in
  Obs.Json.Obj
    ([ ("schema", Obs.Json.String "llm4fp-bench/11");
       ("budget", Obs.Json.Int budget);
       ("seed", Obs.Json.Int seed);
       ("jobs", Obs.Json.Int jobs);
       ( "engine",
         Obs.Json.String
           (Compiler.Driver.engine_name (Compiler.Driver.engine ())) ) ]
    @ (match tables_seconds with
      | None -> []
      | Some s -> [ ("tables_seconds", Obs.Json.Float s) ])
    @ [ ("end_to_end_seconds", Obs.Json.Float end_to_end_seconds);
        ( "frontend_cache",
          Obs.Json.Obj
            [ ("runs", Obs.Json.Int (counter "compiler.frontend.runs"));
              ("hits", Obs.Json.Int (counter "compiler.frontend.cache_hits"))
            ] );
        ( "exec_dedup",
          Obs.Json.Obj
            [ ("hits", Obs.Json.Int (counter "exec.dedup.hits"));
              ("misses", Obs.Json.Int (counter "exec.dedup.misses")) ] ) ]
    @ (match forensics with
      | None -> []
      | Some f ->
        [ ( "record_overhead_seconds",
            Obs.Json.Float (f.f_with_s -. f.f_without_s) );
          ( "case_archive",
            Obs.Json.Obj
              [ ("cases", Obs.Json.Int f.f_cases);
                ("cross", Obs.Json.Int f.f_cross);
                ("within", Obs.Json.Int f.f_within);
                ("duplicates", Obs.Json.Int f.f_duplicates) ] ) ])
    @ (match reduction with
      | None -> []
      | Some r ->
        [ ( "reduction",
            Obs.Json.Obj
              [ ("cases", Obs.Json.Int r.r_cases);
                ("strictly_smaller", Obs.Json.Int r.r_strictly_smaller);
                ("shrink_ratio_mean", Obs.Json.Float r.r_ratio_mean);
                ("shrink_ratio_min", Obs.Json.Float r.r_ratio_min);
                ("shrink_ratio_max", Obs.Json.Float r.r_ratio_max);
                ("oracle_calls", Obs.Json.Int r.r_oracle_calls);
                ("seconds", Obs.Json.Float r.r_seconds) ] ) ])
    @ (match checkpoint with
      | None -> []
      | Some c ->
        [ ( "checkpoint",
            Obs.Json.Obj
              [ ( "overhead_seconds",
                  Obs.Json.Float (c.c_with_s -. c.c_without_s) );
                ("interval", Obs.Json.Int c.c_interval);
                ("checkpoints", Obs.Json.Int c.c_checkpoints);
                ("resume_equivalent", Obs.Json.Bool c.c_resume_equivalent) ]
          ) ])
    @ (match watch with
      | None -> []
      | Some w ->
        [ ( "watch",
            Obs.Json.Obj
              [ ( "overhead_seconds",
                  Obs.Json.Float (w.w_with_s -. w.w_without_s) );
                ("polls", Obs.Json.Int w.w_polls);
                ("events_streamed", Obs.Json.Int w.w_events) ] ) ])
    @ (match throughput with
      | None -> []
      | Some t ->
        [ ( "interp_throughput",
            Obs.Json.Obj
              [ ("inputs", Obs.Json.Int t.t_inputs);
                ("tree_programs_per_sec", Obs.Json.Float t.t_tree_pps);
                ("vm_programs_per_sec", Obs.Json.Float t.t_vm_pps);
                ("tree_fp_ops_per_sec", Obs.Json.Float t.t_tree_ops_ps);
                ("vm_fp_ops_per_sec", Obs.Json.Float t.t_vm_ops_ps);
                ("speedup", Obs.Json.Float t.t_speedup) ] ) ])
    @ (match engine_equiv with
      | None -> []
      | Some e ->
        [ ( "engine_equiv",
            Obs.Json.Obj
              [ ("budget", Obs.Json.Int e.e_budget);
                ("jobs", Obs.Json.Int e.e_jobs);
                (* inequivalence is fatal above; recorded explicitly so
                   stored summaries say the drill ran and passed *)
                ("equivalent", Obs.Json.Bool true) ] ) ])
    @ (match coverage with
      | None -> []
      | Some c ->
        [ ("coverage_cells", Obs.Json.Int c.cov_cells);
          ("novel_per_sim_s", Obs.Json.Float c.cov_novel_per_sim_s) ]
        @
        match c.cov_plateau_at with
        | None -> []
        | Some at -> [ ("plateau_at_sim_s", Obs.Json.Float at) ])
    @ (match fleet with
      | None -> []
      | Some f ->
        [ ( "fleet",
            Obs.Json.Obj
              [ ("budget", Obs.Json.Int f.fl_budget);
                ("chunk", Obs.Json.Int f.fl_chunk);
                ("cores", Obs.Json.Int f.fl_cores);
                ( "scaling",
                  Obs.Json.List
                    (List.map
                       (fun p ->
                         Obs.Json.Obj
                           [ ("shards", Obs.Json.Int p.fl_shards);
                             ("seconds", Obs.Json.Float p.fl_seconds);
                             ("speedup", Obs.Json.Float p.fl_speedup) ])
                       f.fl_points) );
                ("merge_seconds", Obs.Json.Float f.fl_merge_seconds);
                (* a divergent merge is fatal above; recorded so stored
                   summaries say the shard-invariance drill ran *)
                ("identical", Obs.Json.Bool true) ] ) ])
    @ (match bandit with
      | None -> []
      | Some b ->
        [ ( "bandit",
            Obs.Json.Obj
              [ ("budget", Obs.Json.Int b.b_budget);
                ( "arms",
                  Obs.Json.List
                    (List.map
                       (fun r ->
                         Obs.Json.Obj
                           [ ("arm", Obs.Json.String r.b_arm);
                             ("pulls", Obs.Json.Int r.b_pulls);
                             ("inconsistencies", Obs.Json.Int r.b_incons);
                             ("sim_seconds", Obs.Json.Float r.b_sim_s);
                             ("rate", Obs.Json.Float r.b_rate) ])
                       b.b_arms) );
                ("bandit_rate", Obs.Json.Float b.b_bandit_rate);
                ( "fixed",
                  Obs.Json.List
                    (List.map
                       (fun (n, r) ->
                         Obs.Json.Obj
                           [ ("approach", Obs.Json.String n);
                             ("rate", Obs.Json.Float r) ])
                       b.b_fixed) );
                ("best_fixed", Obs.Json.String b.b_best_fixed);
                ("best_fixed_rate", Obs.Json.Float b.b_best_fixed_rate);
                ("delta_vs_best_fixed", Obs.Json.Float b.b_delta);
                (* both drills are fatal above; recorded so stored
                   summaries say they ran and passed *)
                ("resume_equivalent", Obs.Json.Bool b.b_resume_equivalent);
                ("jobs_equivalent", Obs.Json.Bool b.b_jobs_equivalent) ] ) ])
    @ [ ("flame_events", Obs.Json.Int flame_events);
        ("phases", Obs.Json.List (List.map phase (Obs.Span.summary ()))) ]
    @
    match micro with
    | None -> []
    | Some rows ->
      [ ( "micro_ns_per_call",
          Obs.Json.Obj
            (List.map (fun (name, ns) -> (name, Obs.Json.Float ns)) rows) ) ])

let () =
  let t_start = Unix.gettimeofday () in
  let jobs = env_int "LLM4FP_JOBS" 1 in
  (try Compiler.Driver.set_engine_of_env ()
   with Invalid_argument msg ->
     Printf.eprintf "bench: %s\n" msg;
     exit 2);
  let micro =
    if not (env_flag "LLM4FP_SKIP_MICRO") then Some (run_micro ()) else None
  in
  (* Span timing for the campaign half: phase aggregates end up in the
     JSON summary (and cost a few ns per span while enabled). *)
  Obs.Span.set_enabled true;
  if jobs > 1 then assert_jobs_deterministic ~jobs;
  let tables_seconds =
    if not (env_flag "LLM4FP_SKIP_TABLES") then Some (run_tables ~jobs ())
    else None
  in
  if not (env_flag "LLM4FP_SKIP_ABLATION") then run_ablation ~jobs ();
  if not (env_flag "LLM4FP_SKIP_FP32") then run_fp32 ();
  let forensics =
    if not (env_flag "LLM4FP_SKIP_FORENSICS") then Some (run_forensics ~jobs ())
    else None
  in
  let reduction =
    if not (env_flag "LLM4FP_SKIP_REDUCE") then Some (run_reduce ()) else None
  in
  let checkpoint =
    if not (env_flag "LLM4FP_SKIP_CHECKPOINT") then
      Some (run_checkpoint ~jobs ())
    else None
  in
  let watch =
    if not (env_flag "LLM4FP_SKIP_WATCH") then Some (run_watch ~jobs ())
    else None
  in
  let throughput =
    if not (env_flag "LLM4FP_SKIP_THROUGHPUT") then Some (run_throughput ())
    else None
  in
  let engine_equiv =
    if not (env_flag "LLM4FP_SKIP_ENGINE_EQUIV") then
      Some (run_engine_equiv ~jobs ())
    else None
  in
  let coverage =
    if not (env_flag "LLM4FP_SKIP_COVERAGE") then Some (run_coverage ~jobs ())
    else None
  in
  let fleet =
    if not (env_flag "LLM4FP_SKIP_FLEET") then Some (run_fleet_study ())
    else None
  in
  let bandit =
    if not (env_flag "LLM4FP_SKIP_BANDIT") then Some (run_bandit ~jobs ())
    else None
  in
  let flame_events = validate_flame () in
  Printf.printf "(flame export valid: %d slice(s))\n" flame_events;
  match Sys.getenv_opt "LLM4FP_JSON_OUT" with
  | None -> ()
  | Some path ->
    let budget = env_int "LLM4FP_BUDGET" 1000 in
    let seed = env_int "LLM4FP_SEED" 20250704 in
    let end_to_end_seconds = Unix.gettimeofday () -. t_start in
    Util.Durable.write_string ~path
      (Obs.Json.to_string
         (json_summary ~budget ~seed ~jobs ~tables_seconds
            ~end_to_end_seconds ~micro ~forensics ~reduction ~checkpoint
            ~watch ~throughput ~engine_equiv ~coverage ~fleet ~bandit
            ~flame_events)
      ^ "\n");
    Printf.printf "(wrote JSON summary to %s)\n" path
