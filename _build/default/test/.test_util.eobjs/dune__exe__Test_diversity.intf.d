test/test_diversity.mli:
