test/test_harness.ml: Alcotest Array Difftest Float Harness Lang Lazy List String Util
