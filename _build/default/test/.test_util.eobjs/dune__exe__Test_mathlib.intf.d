test/test_mathlib.mli:
