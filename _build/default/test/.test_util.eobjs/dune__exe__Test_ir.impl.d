test/test_ir.ml: Alcotest Ast Compiler Cparse Float Format Gen Int64 Irsim Lang List Mathlib Pp QCheck QCheck_alcotest Util
