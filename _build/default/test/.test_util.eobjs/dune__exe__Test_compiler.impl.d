test/test_compiler.ml: Alcotest Array Compiler Cparse Either Gen Irsim Lang List Mathlib QCheck QCheck_alcotest Result Util
