test/test_analysis.ml: Alcotest Analysis Ast Cparse Gen Lang List Llm QCheck QCheck_alcotest String Util
