test/test_mathlib.ml: Alcotest Ast Float Fp Int32 Lang List Mathlib Util
