test/test_llm.ml: Alcotest Analysis Array Compiler Cparse Either Gen Lang List Llm QCheck QCheck_alcotest Util
