test/test_parser.ml: Alcotest Ast Cparse Gen Lang List Pp QCheck QCheck_alcotest Result Util
