test/test_gen.ml: Alcotest Analysis Array Float Gen Irsim Lang List Llm QCheck QCheck_alcotest Util
