test/test_isolate.ml: Alcotest Compiler Cparse Gen Harness Irsim Isolate Lang List Mathlib QCheck QCheck_alcotest String Util
