test/test_fp.ml: Alcotest Float Fp Int32 Int64 Printf QCheck QCheck_alcotest
