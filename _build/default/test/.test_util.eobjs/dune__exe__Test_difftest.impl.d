test/test_difftest.ml: Alcotest Array Compiler Cparse Difftest Fp Irsim List Util
