test/test_lang.ml: Alcotest Array Ast Float Gen Lang List Pp QCheck QCheck_alcotest Util
