test/test_diversity.ml: Alcotest Cparse Diversity Gen Lang List QCheck QCheck_alcotest Util
