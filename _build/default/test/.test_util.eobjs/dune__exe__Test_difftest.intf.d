test/test_difftest.mli:
