test/test_isolate.mli:
