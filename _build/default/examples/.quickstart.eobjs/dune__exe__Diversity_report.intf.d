examples/diversity_report.mli:
