examples/mutation_explore.ml: Array Compiler Gen Irsim Lang List Llm Printf Util
