examples/diversity_report.ml: Array Diversity Harness Lang List Printf Report Sys
