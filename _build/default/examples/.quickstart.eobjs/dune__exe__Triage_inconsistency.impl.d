examples/triage_inconsistency.ml: Analysis Array Compiler Cparse Difftest Format Fp Gen Irsim Lang List Llm Option Printf Util
