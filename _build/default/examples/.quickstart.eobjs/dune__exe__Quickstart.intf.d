examples/quickstart.mli:
