examples/triage_inconsistency.mli:
