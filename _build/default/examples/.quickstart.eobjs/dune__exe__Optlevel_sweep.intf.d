examples/optlevel_sweep.mli:
