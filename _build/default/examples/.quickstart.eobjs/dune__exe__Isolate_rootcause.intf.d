examples/isolate_rootcause.mli:
