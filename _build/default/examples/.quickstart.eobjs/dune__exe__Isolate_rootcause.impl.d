examples/isolate_rootcause.ml: Analysis Compiler Cparse Gen Isolate Lang Llm Printf Util
