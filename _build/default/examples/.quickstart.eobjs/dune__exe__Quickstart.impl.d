examples/quickstart.ml: Analysis Compiler Cparse Difftest Format Fp Gen Irsim Lang List Llm Printf String Util
