examples/optlevel_sweep.ml: Array Compiler Difftest Harness Printf Report Sys Util
