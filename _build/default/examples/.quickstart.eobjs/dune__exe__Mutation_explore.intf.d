examples/mutation_explore.mli:
