(* Optimization-level sweep: Table 6 in miniature, on a small budget, for
   a single approach — how often does each level disagree with the
   IEEE-strictest baseline (-O0 with FMA disabled) within one compiler?

   Run with: dune exec examples/optlevel_sweep.exe [-- budget] *)

let () =
  let budget =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 150
  in
  Printf.printf
    "within-compiler inconsistencies vs 00_nofma (LLM4FP, budget %d)\n\n"
    budget;
  let outcome = Harness.Campaign.run ~budget ~seed:31415 Harness.Approach.Llm4fp in
  let stats = outcome.Harness.Campaign.stats in
  Printf.printf "%-14s" "level";
  Array.iter
    (fun p -> Printf.printf "%10s" (Compiler.Personality.name p))
    Compiler.Personality.all;
  print_newline ();
  Array.iter
    (fun level ->
      if level <> Compiler.Optlevel.O0_nofma then begin
        Printf.printf "%-14s" (Compiler.Optlevel.name level);
        Array.iter
          (fun personality ->
            let count = Difftest.Stats.within_count stats personality level in
            Printf.printf "%10s"
              (if count = 0 then "-" else Printf.sprintf "%d" count))
          Compiler.Personality.all;
        print_newline ()
      end)
    Compiler.Optlevel.all;
  print_newline ();
  Printf.printf "%-14s" "total";
  Array.iter
    (fun personality ->
      Printf.printf "%10d" (Difftest.Stats.within_total stats personality))
    Compiler.Personality.all;
  print_newline ();
  print_newline ();
  print_endline
    "reading: fast-math dominates; gcc folds libm calls divergently at \
     every level; nvcc's FMA default makes its 00 differ from 00_nofma.";
  Printf.printf
    "\ncampaign: %d programs, %s inconsistencies overall, simulated %s\n"
    budget
    (Report.Table.commas (Difftest.Stats.total_inconsistencies stats))
    (Util.Sim_clock.hms outcome.Harness.Campaign.sim_seconds)
