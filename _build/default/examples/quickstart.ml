(* Quickstart: the whole pipeline on one program.

   1. Ask the mock LLM for a floating-point C program (grammar prompt).
   2. Parse and validate it.
   3. Compile it under every (compiler x optimization level) configuration.
   4. Run all binaries on one input vector and compare the results bitwise.

   Run with: dune exec examples/quickstart.exe *)

let () =
  let seed = 2025 in

  (* 1. generation: the prompt is real text (shown truncated), the client
     returns C source like an API would *)
  let client = Llm.Client.create ~seed () in
  let prompt = Llm.Prompt.Grammar { precision = Lang.Ast.F64 } in
  let prompt_text = Llm.Prompt.render prompt in
  Printf.printf "--- prompt (first lines) ---\n%s...\n\n"
    (String.concat "\n"
       (List.filteri (fun i _ -> i < 4) (Util.Text.lines prompt_text)));
  let response = Llm.Client.generate client prompt in
  Printf.printf "--- generated program (%d tokens, %.1fs simulated latency) ---\n%s\n"
    response.Llm.Client.output_tokens response.Llm.Client.latency
    response.Llm.Client.source;

  (* 2. front end + validation *)
  let program = Cparse.Parse.program_exn response.Llm.Client.source in
  (match Analysis.Validate.check program with
   | Ok () -> print_endline "validation: ok"
   | Error issues ->
     List.iter
       (fun i -> print_endline (Analysis.Validate.issue_to_string i))
       issues);

  (* 3 + 4. differential testing across the full matrix *)
  let rng = Util.Rng.of_int (seed + 1) in
  let inputs = Gen.Generate.gen_inputs rng Llm.Client.generation_config program in
  Format.printf "inputs: %a@.@." Irsim.Inputs.pp inputs;
  let result = Difftest.Run.test program inputs in
  List.iter
    (fun (o : Difftest.Run.output) ->
      Printf.printf "%-28s %s\n" (Compiler.Config.name o.config) o.hex)
    result.Difftest.Run.outputs;
  Printf.printf "\n%d of %d cross-compiler comparisons inconsistent\n"
    (Difftest.Run.cross_inconsistencies result)
    (List.length result.Difftest.Run.cross);
  List.iter
    (fun (pair, (c : Difftest.Run.comparison)) ->
      if c.inconsistent then
        Printf.printf "  %s @ %s: %s vs %s (%d digits, %s)\n"
          (Compiler.Personality.pair_name pair)
          (Compiler.Optlevel.name c.level) c.left.hex c.right.hex c.digits
          (Fp.Bits.class_pair_name c.class_left c.class_right))
    result.Difftest.Run.cross
