(* Mutation explorer: the paper's five Feedback-Based Mutation strategies
   applied, one at a time, to a seed kernel — with before/after source and
   the numerical consequence under one compiler configuration.

   Run with: dune exec examples/mutation_explore.exe *)

let () =
  let seed_entry =
    Array.to_list Llm.Corpus.entries
    |> List.find (fun (e : Llm.Corpus.entry) -> e.Llm.Corpus.name = "axpy_accumulate")
  in
  let seed = Llm.Corpus.program seed_entry in
  Printf.printf "--- seed kernel (%s) ---\n%s\n\n" seed_entry.Llm.Corpus.name
    (Lang.Pp.compute_to_string seed);
  let rng = Util.Rng.of_int 5050 in
  let inputs = Gen.Generate.gen_inputs rng Llm.Client.generation_config seed in
  let gcc_o2 = Compiler.Config.make Compiler.Personality.Gcc Compiler.Optlevel.O2 in
  let value p =
    match Compiler.Driver.compile gcc_o2 p with
    | Ok bin -> Compiler.Driver.run_hex bin inputs
    | Error m -> "compile error: " ^ m
  in
  Printf.printf "seed result under %s: %s\n\n" (Compiler.Config.name gcc_o2)
    (value seed);
  Array.iter
    (fun strategy ->
      let mutated, changed = Llm.Mutate.apply rng strategy seed in
      Printf.printf "=== %s %s===\n" (Llm.Mutate.name strategy)
        (if changed then "" else "(no applicable site) ");
      if changed then begin
        print_string (Lang.Pp.compute_to_string mutated);
        print_newline ();
        let h = value mutated in
        Printf.printf "result: %s %s\n"
          h
          (if Irsim.Inputs.matches mutated inputs && h = value seed then
             "(numerically identical to seed)"
           else "(behaviour changed)")
      end;
      print_newline ())
    Llm.Mutate.all;
  print_endline
    "note: Insert_intermediates is the strategy that manufactures the \
     split multiply-add shapes gcc contracts across statements but clang \
     does not — run examples/triage_inconsistency.exe to see the effect."
