(* Triage: hunt for an inconsistency the way a tool user would, then dig
   into one — which compilers, which levels, what kind of values, how many
   digits, and what the optimized IR looks like on each side.

   Run with: dune exec examples/triage_inconsistency.exe *)

let () =
  let rng = Util.Rng.of_int 777 in
  let client = Llm.Client.create ~seed:777 () in

  (* generate until a program triggers a host/device inconsistency at the
     strictest level — the subtle kind the paper cares about *)
  let rec hunt attempt =
    if attempt > 200 then failwith "no inconsistency found in 200 programs";
    let response =
      Llm.Client.generate client (Llm.Prompt.Grammar { precision = Lang.Ast.F64 })
    in
    match Cparse.Parse.program response.Llm.Client.source with
    | Error _ -> hunt (attempt + 1)
    | Ok program when not (Analysis.Validate.is_valid program) -> hunt (attempt + 1)
    | Ok program ->
      let inputs =
        Gen.Generate.gen_inputs rng Llm.Client.generation_config program
      in
      let result = Difftest.Run.test program inputs in
      let strict_diff =
        List.exists
          (fun (_, (c : Difftest.Run.comparison)) ->
            c.inconsistent && c.level = Compiler.Optlevel.O0_nofma)
          result.Difftest.Run.cross
      in
      if strict_diff then (attempt, program, inputs, result)
      else hunt (attempt + 1)
  in
  let attempt, program, inputs, result = hunt 1 in
  Printf.printf "found after %d candidate(s):\n\n%s\n" attempt
    (Lang.Pp.compute_to_string program);
  Format.printf "@.inputs: %a@.@." Irsim.Inputs.pp inputs;

  Printf.printf "%-16s" "level";
  List.iter
    (fun pair -> Printf.printf " %-14s" (Compiler.Personality.pair_name pair))
    Compiler.Personality.pairs;
  print_newline ();
  Array.iter
    (fun level ->
      Printf.printf "%-16s" (Compiler.Optlevel.name level);
      List.iter
        (fun pair ->
          let status =
            List.find_map
              (fun (p, (c : Difftest.Run.comparison)) ->
                if p = pair && c.Difftest.Run.level = level then
                  Some
                    (if c.Difftest.Run.inconsistent then
                       Printf.sprintf "DIFF(%dd)" c.Difftest.Run.digits
                     else "same")
                else None)
              result.Difftest.Run.cross
          in
          Printf.printf " %-14s" (Option.value status ~default:"-"))
        Compiler.Personality.pairs;
      print_newline ())
    Compiler.Optlevel.all;

  (* dig into the strictest-level host/device divergence *)
  print_newline ();
  let interesting =
    List.find
      (fun (_, (c : Difftest.Run.comparison)) ->
        c.Difftest.Run.inconsistent && c.Difftest.Run.level = Compiler.Optlevel.O0_nofma)
      result.Difftest.Run.cross
  in
  let pair, c = interesting in
  Printf.printf "focus: %s at %s\n"
    (Compiler.Personality.pair_name pair)
    (Compiler.Optlevel.name c.Difftest.Run.level);
  Printf.printf "  left  (%s): %s = %.17g [%s]\n"
    (Compiler.Config.name c.Difftest.Run.left.Difftest.Run.config)
    c.Difftest.Run.left.Difftest.Run.hex c.Difftest.Run.left.Difftest.Run.value
    (Fp.Bits.class_name c.Difftest.Run.class_left);
  Printf.printf "  right (%s): %s = %.17g [%s]\n"
    (Compiler.Config.name c.Difftest.Run.right.Difftest.Run.config)
    c.Difftest.Run.right.Difftest.Run.hex c.Difftest.Run.right.Difftest.Run.value
    (Fp.Bits.class_name c.Difftest.Run.class_right);
  Printf.printf "  differing decimal digits: %d of 16\n" c.Difftest.Run.digits;
  Printf.printf "  ulp distance: %Ld\n"
    (try
       Fp.Bits.ulp_distance c.Difftest.Run.left.Difftest.Run.value
         c.Difftest.Run.right.Difftest.Run.value
     with Invalid_argument _ -> -1L)
