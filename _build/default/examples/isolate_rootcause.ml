(* Root-cause isolation: the paper's "future work" integration of
   pLiner-style analysis. Hunt for programs that disagree between
   gcc -O2 and the IEEE-strict baseline, then isolate which statements
   the optimizer transformed to cause it — or conclude that the
   divergence lives in the runtime (math library), not the optimizer.

   Run with: dune exec examples/isolate_rootcause.exe *)

let () =
  let client = Llm.Client.create ~seed:424242 () in
  let rng = Util.Rng.of_int 424243 in
  let suspect = Compiler.Config.make Compiler.Personality.Gcc Compiler.Optlevel.O2 in
  let reference =
    Compiler.Config.make Compiler.Personality.Gcc Compiler.Optlevel.O0_nofma
  in
  Printf.printf "suspect:   %s\nreference: %s\n\n"
    (Compiler.Config.name suspect)
    (Compiler.Config.name reference);
  let isolated = ref 0 and runtime = ref 0 and agree = ref 0 in
  let shown = ref 0 in
  let attempts = 400 in
  for _ = 1 to attempts do
    let r =
      Llm.Client.generate client (Llm.Prompt.Grammar { precision = Lang.Ast.F64 })
    in
    match Cparse.Parse.program r.Llm.Client.source with
    | Error _ -> ()
    | Ok program when not (Analysis.Validate.is_valid program) -> ()
    | Ok program -> begin
      let inputs =
        Gen.Generate.gen_inputs rng Llm.Client.generation_config program
      in
      match Isolate.isolate ~program ~inputs ~suspect ~reference with
      | Error _ -> ()
      | Ok Isolate.No_inconsistency -> incr agree
      | Ok Isolate.Runtime_divergence -> incr runtime
      | Ok (Isolate.Isolated indices as verdict) ->
        incr isolated;
        if !shown < 3 then begin
          incr shown;
          Printf.printf "--- case %d -----------------------------------\n"
            !shown;
          print_string (Lang.Pp.compute_to_string program);
          Printf.printf "\n%s\n\n" (Isolate.verdict_to_string program verdict);
          ignore indices
        end
    end
  done;
  Printf.printf "over %d candidates: %d agree, %d isolated to statements, \
                 %d runtime-level\n"
    attempts !agree !isolated !runtime;
  print_endline
    "\n(Runtime-level cases cannot be fixed by strictifying statements — \
     for a same-compiler pair like this they come from fast-math \
     runtimes; across host/device pairs they are usually the two math \
     libraries disagreeing.)"
