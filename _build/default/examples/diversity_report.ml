(* Diversity: CodeBLEU and clone analysis across the four approaches on a
   small budget — Table 3 in miniature, plus per-approach structural
   feature summaries that explain *why* the scores differ.

   Run with: dune exec examples/diversity_report.exe [-- budget] *)

let () =
  let budget =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 120
  in
  Printf.printf "diversity across approaches (budget %d per approach)\n\n" budget;
  let rows =
    Array.to_list Harness.Approach.all
    |> List.map (fun approach ->
           let outcome = Harness.Campaign.run ~budget ~seed:161803 approach in
           let programs = outcome.Harness.Campaign.programs in
           let codebleu =
             Diversity.Codebleu.corpus_mean ~max_pairs:5000 ~seed:1 programs
           in
           let clones = Diversity.Clones.analyze programs in
           let mean_calls =
             List.fold_left (fun acc p -> acc + Lang.Ast.call_count p) 0 programs
             |> fun total -> float_of_int total /. float_of_int (List.length programs)
           in
           let mean_loops =
             List.fold_left (fun acc p -> acc + Lang.Ast.loop_count p) 0 programs
             |> fun total -> float_of_int total /. float_of_int (List.length programs)
           in
           [ Harness.Approach.name approach;
             Printf.sprintf "%.4f" codebleu;
             string_of_int clones.Diversity.Clones.type1;
             string_of_int clones.Diversity.Clones.type2;
             string_of_int clones.Diversity.Clones.type2c;
             Printf.sprintf "%.2f%%" (Diversity.Clones.percentage clones);
             Printf.sprintf "%.1f" mean_calls;
             Printf.sprintf "%.1f" mean_loops ])
  in
  print_string
    (Report.Table.render
       ~header:
         [ "approach"; "CodeBLEU"; "T1"; "T2"; "T2c"; "clone%"; "calls/prog";
           "loops/prog" ]
       rows);
  print_newline ();
  print_endline
    "lower CodeBLEU = more diverse. Clones: Type-1 identical, Type-2c \
     consistent renaming, Type-2 blind identifier/literal substitution."
