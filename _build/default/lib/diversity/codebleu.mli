(** CodeBLEU (Ren et al., 2020), as used by the paper's diversity
    evaluation (§3.2.2, Table 3).

    CodeBLEU(cand, ref) = α·BLEU + β·BLEU_weighted + γ·Match_ast +
    δ·Match_df with α = β = γ = δ = 0.25. Tokens come from the mini-C
    lexer; keywords (C keywords and math-library names) weigh 4× in the
    weighted component; the AST component matches abstracted subtrees;
    the dataflow component matches alpha-normalized def-use edges.

    A {e lower} average pairwise score means a more diverse program set. *)

type summary
(** Everything precomputed about one program (token tables, subtree
    multiset, dataflow edges), so pair scoring is cheap. *)

val summarize : Lang.Ast.program -> summary

val pair_score : candidate:summary -> reference:summary -> float
(** CodeBLEU of one ordered pair, in [0, 1]. *)

val symmetric : summary -> summary -> float
(** Mean of both directions. *)

val corpus_mean :
  ?max_pairs:int -> seed:int -> Lang.Ast.program list -> float
(** Average symmetric pairwise score over all unordered pairs; when the
    pair count exceeds [max_pairs] (default 200_000) a deterministic
    uniform sample of that many pairs is used (the sampling seed is
    [seed]). Returns 0 for fewer than two programs. *)

val keyword_weight : string -> float
(** 4.0 for keywords, 1.0 otherwise (exposed for tests). *)
