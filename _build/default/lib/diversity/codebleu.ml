type summary = {
  plain : Bleu.ngram_table;
  weighted : Bleu.ngram_table;
  ast : Ast_match.summary;
  edges : (string * string, int) Hashtbl.t;
  n_edges : int;
}

let keyword_weight tok = if Cparse.Lex.is_keyword tok then 4.0 else 1.0

let tokens_of (p : Lang.Ast.program) =
  Cparse.Lex.tokens (Lang.Pp.compute_to_string p)
  |> List.map Cparse.Lex.to_string

let summarize p =
  let tokens = tokens_of p in
  let edges = Hashtbl.create 32 in
  let edge_list = Analysis.Dataflow.edges p in
  List.iter
    (fun (e : Analysis.Dataflow.edge) ->
      let key = (e.def, e.use) in
      Hashtbl.replace edges key
        (1 + Option.value (Hashtbl.find_opt edges key) ~default:0))
    edge_list;
  {
    plain = Bleu.table tokens;
    weighted = Bleu.table_weighted ~weight:keyword_weight tokens;
    ast = Ast_match.summarize p;
    edges;
    n_edges = List.length edge_list;
  }

let dataflow_score ~candidate ~reference =
  if candidate.n_edges = 0 then 1.0
  else begin
    let matched = ref 0 in
    Hashtbl.iter
      (fun key c ->
        match Hashtbl.find_opt reference.edges key with
        | None -> ()
        | Some r -> matched := !matched + min c r)
      candidate.edges;
    float_of_int !matched /. float_of_int candidate.n_edges
  end

let pair_score ~candidate ~reference =
  let bleu = Bleu.score ~candidate:candidate.plain ~reference:reference.plain in
  let wbleu =
    Bleu.score ~candidate:candidate.weighted ~reference:reference.weighted
  in
  let ast = Ast_match.score ~candidate:candidate.ast ~reference:reference.ast in
  let df = dataflow_score ~candidate ~reference in
  0.25 *. (bleu +. wbleu +. ast +. df)

let symmetric a b =
  0.5 *. (pair_score ~candidate:a ~reference:b +. pair_score ~candidate:b ~reference:a)

let corpus_mean ?(max_pairs = 200_000) ~seed programs =
  let summaries = Array.of_list (List.map summarize programs) in
  let n = Array.length summaries in
  if n < 2 then 0.0
  else begin
    let total_pairs = n * (n - 1) / 2 in
    if total_pairs <= max_pairs then begin
      let sum = ref 0.0 in
      for i = 0 to n - 2 do
        for j = i + 1 to n - 1 do
          sum := !sum +. symmetric summaries.(i) summaries.(j)
        done
      done;
      !sum /. float_of_int total_pairs
    end
    else begin
      let rng = Util.Rng.of_int seed in
      let sum = ref 0.0 in
      for _ = 1 to max_pairs do
        let i = Util.Rng.int rng n in
        let j = ref (Util.Rng.int rng n) in
        while !j = i do j := Util.Rng.int rng n done;
        sum := !sum +. symmetric summaries.(i) summaries.(!j)
      done;
      !sum /. float_of_int max_pairs
    end
  end
