(** Syntactic subtree matching (CodeBLEU's AST component).

    Every program is summarized as the multiset of its AST subtrees,
    rendered canonically with identifiers abstracted to [id] and numeric
    literals to [lit] (the reference implementation also compares
    subtrees name-insensitively). The match score of a candidate against
    a reference is the clipped fraction of candidate subtrees found in
    the reference. *)

type summary
(** Precomputed subtree multiset. *)

val summarize : Lang.Ast.program -> summary

val score : candidate:summary -> reference:summary -> float
(** In [0, 1]; 1.0 when the candidate has no subtrees. *)

val subtree_count : summary -> int
