(** NiCad-style code clone detection (paper §3.2.2, Table 3).

    The three clone granularities the paper analyzes, defined on whole
    generated programs:

    - {b Type-1}: identical code up to whitespace and comments. Our
      programs are ASTs printed canonically, so Type-1 equals structural
      AST equality (names and literals included).
    - {b Type-2c} (NiCad's consistent-rename subtype): identical after a
      {e consistent} renaming of identifiers — alpha-normalized equality,
      literals must match.
    - {b Type-2}: identical after {e blind} substitution of identifiers
      and literals.

    Type-1 ⊆ Type-2c ⊆ Type-2. Following the paper's accounting, each
    program beyond the first member of a clone class is counted once, in
    the strictest category it satisfies, and the clone percentage is the
    share of such programs among all generated. *)

type report = {
  type1 : int;
  type2 : int;   (** Type-2 but not Type-2c *)
  type2c : int;  (** Type-2c but not Type-1 *)
  total_programs : int;
}

val type1_key : Lang.Ast.program -> string
val type2_key : Lang.Ast.program -> string
val type2c_key : Lang.Ast.program -> string
(** Canonical fingerprints: two programs are clones of the given type iff
    their keys are equal. *)

val analyze : Lang.Ast.program list -> report

val percentage : report -> float
(** (type1 + type2 + type2c) / total, as a percentage. *)
