lib/diversity/clones.mli: Lang
