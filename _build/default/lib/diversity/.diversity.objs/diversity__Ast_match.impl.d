lib/diversity/ast_match.ml: Ast Float Lang List Map Printf String
