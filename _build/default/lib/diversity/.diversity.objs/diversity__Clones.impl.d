lib/diversity/clones.ml: Ast Cparse Hashtbl Lang List Pp String
