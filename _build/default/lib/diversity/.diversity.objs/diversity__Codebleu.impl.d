lib/diversity/codebleu.ml: Analysis Array Ast_match Bleu Cparse Hashtbl Lang List Option Util
