lib/diversity/codebleu.mli: Lang
