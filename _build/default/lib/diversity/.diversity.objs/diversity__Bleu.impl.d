lib/diversity/bleu.ml: Array Float List Map String
