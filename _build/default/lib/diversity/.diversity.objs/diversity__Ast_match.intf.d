lib/diversity/ast_match.mli: Lang
