lib/diversity/bleu.mli:
