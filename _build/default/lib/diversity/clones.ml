open Lang

type report = { type1 : int; type2 : int; type2c : int; total_programs : int }

let type1_key p = Pp.to_c p

let type2c_key p = Pp.to_c (Ast.alpha_normalize p)

(* Blind abstraction: identifiers, literals and numeric values all
   collapse; structure (operators, control flow, arities) remains. *)
let type2_key p =
  Cparse.Lex.tokens (Pp.compute_to_string p)
  |> List.map (fun tok ->
         match tok with
         | Cparse.Lex.Ident name when not (Cparse.Lex.is_keyword name) -> "id"
         | Cparse.Lex.Ident name -> name
         | Cparse.Lex.Float_tok _ -> "lit"
         | Cparse.Lex.Int_tok _ -> "ilit"
         | other -> Cparse.Lex.to_string other)
  |> String.concat " "

let analyze programs =
  let seen1 = Hashtbl.create 64
  and seen2c = Hashtbl.create 64
  and seen2 = Hashtbl.create 64 in
  let type1 = ref 0 and type2c = ref 0 and type2 = ref 0 in
  List.iter
    (fun p ->
      let k1 = type1_key p and k2c = type2c_key p and k2 = type2_key p in
      if Hashtbl.mem seen1 k1 then incr type1
      else if Hashtbl.mem seen2c k2c then incr type2c
      else if Hashtbl.mem seen2 k2 then incr type2;
      Hashtbl.replace seen1 k1 ();
      Hashtbl.replace seen2c k2c ();
      Hashtbl.replace seen2 k2 ())
    programs;
  {
    type1 = !type1;
    type2 = !type2;
    type2c = !type2c;
    total_programs = List.length programs;
  }

let percentage r =
  if r.total_programs = 0 then 0.0
  else
    100.0
    *. float_of_int (r.type1 + r.type2 + r.type2c)
    /. float_of_int r.total_programs
