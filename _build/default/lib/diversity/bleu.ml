let max_order = 4

module Smap = Map.Make (String)

type ngram_table = {
  len : int;
  (* per order (index 0 = unigrams): ngram -> weighted count *)
  counts : float Smap.t array;
  totals : float array;
}

let ngrams_of tokens n =
  let arr = Array.of_list tokens in
  let len = Array.length arr in
  let out = ref [] in
  for i = 0 to len - n do
    let gram = String.concat "\x00" (Array.to_list (Array.sub arr i n)) in
    out := (i, gram) :: !out
  done;
  List.rev !out

let table_weighted ~weight tokens =
  let arr = Array.of_list tokens in
  let counts =
    Array.init max_order (fun k ->
        let n = k + 1 in
        List.fold_left
          (fun map (i, gram) ->
            let w =
              (* weight of an n-gram = max weight of its tokens *)
              let rec max_w j acc =
                if j >= i + n then acc
                else max_w (j + 1) (Float.max acc (weight arr.(j)))
              in
              max_w i 1.0
            in
            Smap.update gram
              (function None -> Some w | Some c -> Some (c +. w))
              map)
          Smap.empty (ngrams_of tokens n))
  in
  let totals =
    Array.map (fun map -> Smap.fold (fun _ c acc -> acc +. c) map 0.0) counts
  in
  { len = Array.length arr; counts; totals }

let table tokens = table_weighted ~weight:(fun _ -> 1.0) tokens

let length t = t.len

let score ~candidate ~reference =
  if candidate.len = 0 then if reference.len = 0 then 1.0 else 0.0
  else begin
    let log_sum = ref 0.0 in
    for k = 0 to max_order - 1 do
      let matched =
        Smap.fold
          (fun gram c acc ->
            match Smap.find_opt gram reference.counts.(k) with
            | None -> acc
            | Some r -> acc +. Float.min c r)
          candidate.counts.(k) 0.0
      in
      let total = candidate.totals.(k) in
      let precision =
        if total <= 0.0 then 1.0 (* candidate shorter than the order *)
        else Float.max (matched /. total) 1e-9
      in
      log_sum := !log_sum +. log precision
    done;
    let geo = exp (!log_sum /. float_of_int max_order) in
    let bp =
      if candidate.len >= reference.len then 1.0
      else exp (1.0 -. (float_of_int reference.len /. float_of_int candidate.len))
    in
    geo *. bp
  end
