(** BLEU-style n-gram precision between token sequences.

    The n-gram components of CodeBLEU (Ren et al., 2020): modified n-gram
    precision with clipping, geometric mean over n = 1..4, and a brevity
    penalty. The weighted variant multiplies each n-gram's count by the
    maximum token weight it contains (keywords weigh more), following the
    reference implementation's keyword-weighted unigram idea extended to
    all orders. *)

type ngram_table
(** Precomputed clipped-count tables for one token sequence (orders
    1..4), reusable across many pairings. *)

val table : string list -> ngram_table
val table_weighted : weight:(string -> float) -> string list -> ngram_table

val score : candidate:ngram_table -> reference:ngram_table -> float
(** Geometric mean of modified precisions times brevity penalty, in
    [0, 1]. Empty candidates score 0 against non-empty references and 1
    against empty ones. Smoothing: zero precisions are floored at
    [1e-9] before the geometric mean (standard smoothing-epsilon). *)

val length : ngram_table -> int
(** Token count of the underlying sequence. *)
