open Lang

module Smap = Map.Make (String)

type summary = { trees : float Smap.t; total : int }

(* Canonical rendering of each subtree, identifiers and literals
   abstracted. Returns the rendering of [e] and appends every subtree's
   rendering to [acc]. *)
let rec expr_subtrees acc e =
  let render, acc =
    match e with
    | Ast.Lit _ -> ("lit", acc)
    | Ast.Int_lit _ -> ("ilit", acc)
    | Ast.Var _ -> ("id", acc)
    | Ast.Index (_, idx) ->
      let r, acc = expr_subtrees acc idx in
      (Printf.sprintf "idx(id,%s)" r, acc)
    | Ast.Neg inner ->
      let r, acc = expr_subtrees acc inner in
      (Printf.sprintf "neg(%s)" r, acc)
    | Ast.Bin (op, a, b) ->
      let ra, acc = expr_subtrees acc a in
      let rb, acc = expr_subtrees acc b in
      (Printf.sprintf "(%s%s%s)" ra (Ast.binop_symbol op) rb, acc)
    | Ast.Call (fn, args) ->
      let rs, acc =
        List.fold_left
          (fun (rs, acc) arg ->
            let r, acc = expr_subtrees acc arg in
            (r :: rs, acc))
          ([], acc) args
      in
      (Printf.sprintf "%s(%s)" (Ast.math_fn_name fn)
         (String.concat "," (List.rev rs)),
       acc)
  in
  (render, render :: acc)

let rec stmt_subtrees acc s =
  let render, acc =
    match s with
    | Ast.Decl { init; _ } ->
      let r, acc = expr_subtrees acc init in
      (Printf.sprintf "decl(%s)" r, acc)
    | Ast.Assign { lhs; op; rhs } ->
      let lhs_r, acc =
        match lhs with
        | Ast.Lv_var _ -> ("id", acc)
        | Ast.Lv_index (_, idx) ->
          let r, acc = expr_subtrees acc idx in
          (Printf.sprintf "idx(id,%s)" r, acc)
      in
      let r, acc = expr_subtrees acc rhs in
      (Printf.sprintf "assign(%s,%s,%s)" lhs_r (Ast.assign_op_symbol op) r, acc)
    | Ast.If { lhs; cmp; rhs; body } ->
      let rl, acc = expr_subtrees acc lhs in
      let rr, acc = expr_subtrees acc rhs in
      let rb, acc = body_subtrees acc body in
      (Printf.sprintf "if(%s%s%s){%s}" rl (Ast.cmpop_symbol cmp) rr rb, acc)
    | Ast.For { bound; body; _ } ->
      let rb, acc = body_subtrees acc body in
      (Printf.sprintf "for(%d){%s}" bound rb, acc)
  in
  (render, render :: acc)

and body_subtrees acc body =
  let rs, acc =
    List.fold_left
      (fun (rs, acc) s ->
        let r, acc = stmt_subtrees acc s in
        (r :: rs, acc))
      ([], acc) body
  in
  (String.concat ";" (List.rev rs), acc)

let summarize (p : Ast.program) =
  let _, subtrees = body_subtrees [] p.body in
  let trees =
    List.fold_left
      (fun map t ->
        Smap.update t (function None -> Some 1.0 | Some c -> Some (c +. 1.0)) map)
      Smap.empty subtrees
  in
  { trees; total = List.length subtrees }

let subtree_count s = s.total

let score ~candidate ~reference =
  if candidate.total = 0 then 1.0
  else
    let matched =
      Smap.fold
        (fun tree c acc ->
          match Smap.find_opt tree reference.trees with
          | None -> acc
          | Some r -> acc +. Float.min c r)
        candidate.trees 0.0
    in
    matched /. float_of_int candidate.total
