lib/parser/lex.ml: Array Buffer Hashtbl Lang List Printf String
