lib/parser/parse.ml: Array Ast Hashtbl Lang Lex List Option Printf Result String
