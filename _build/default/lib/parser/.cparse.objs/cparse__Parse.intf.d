lib/parser/parse.mli: Lang
