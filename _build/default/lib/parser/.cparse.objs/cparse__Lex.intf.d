lib/parser/lex.mli:
