type token =
  | Int_tok of int
  | Float_tok of float
  | Ident of string
  | Lparen | Rparen
  | Lbrace | Rbrace
  | Lbracket | Rbracket
  | Plus | Minus | Star | Slash
  | Comma | Semi
  | Assign | Plus_eq | Minus_eq | Star_eq | Slash_eq
  | Lt | Le | Gt | Ge | Eq_eq | Ne
  | Plus_plus
  | Amp
  | String_lit of string
  | Lshift
  | Rshift

exception Error of string

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_ident_start c || is_digit c

let tokens src =
  let n = String.length src in
  let line = ref 1 in
  let fail msg = raise (Error (Printf.sprintf "line %d: %s" !line msg)) in
  let out = ref [] in
  let emit tok = out := tok :: !out in
  let peek i = if i < n then Some src.[i] else None in
  let rec skip_line i =
    if i >= n then i
    else if src.[i] = '\n' then begin incr line; i + 1 end
    else skip_line (i + 1)
  in
  let rec skip_block i =
    if i + 1 >= n then fail "unterminated block comment"
    else if src.[i] = '*' && src.[i + 1] = '/' then i + 2
    else begin
      if src.[i] = '\n' then incr line;
      skip_block (i + 1)
    end
  in
  let lex_number i =
    let j = ref i in
    let is_float = ref false in
    while !j < n && is_digit src.[!j] do incr j done;
    if !j < n && src.[!j] = '.' then begin
      is_float := true;
      incr j;
      while !j < n && is_digit src.[!j] do incr j done
    end;
    if !j < n && (src.[!j] = 'e' || src.[!j] = 'E') then begin
      let k = !j + 1 in
      let k = match peek k with Some ('+' | '-') -> k + 1 | _ -> k in
      if k < n && is_digit src.[k] then begin
        is_float := true;
        j := k;
        while !j < n && is_digit src.[!j] do incr j done
      end
    end;
    let text = String.sub src i (!j - i) in
    (* Consume an optional float suffix. *)
    let j = match peek !j with Some ('f' | 'F') -> is_float := true; !j + 1 | _ -> !j in
    let tok =
      if !is_float then Float_tok (float_of_string text)
      else
        match int_of_string_opt text with
        | Some v -> Int_tok v
        | None -> Float_tok (float_of_string text)
    in
    (tok, j)
  in
  let lex_string i =
    let buf = Buffer.create 16 in
    let rec go i =
      if i >= n then fail "unterminated string literal"
      else
        match src.[i] with
        | '"' -> (String_lit (Buffer.contents buf), i + 1)
        | '\\' when i + 1 < n ->
          Buffer.add_char buf '\\';
          Buffer.add_char buf src.[i + 1];
          go (i + 2)
        | c ->
          Buffer.add_char buf c;
          go (i + 1)
    in
    go i
  in
  let rec go i =
    if i >= n then ()
    else
      match src.[i] with
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '\n' -> incr line; go (i + 1)
      | '#' -> go (skip_line (i + 1))
      | '/' when peek (i + 1) = Some '/' -> go (skip_line (i + 2))
      | '/' when peek (i + 1) = Some '*' -> go (skip_block (i + 2))
      | '/' when peek (i + 1) = Some '=' -> emit Slash_eq; go (i + 2)
      | '/' -> emit Slash; go (i + 1)
      | '+' when peek (i + 1) = Some '+' -> emit Plus_plus; go (i + 2)
      | '+' when peek (i + 1) = Some '=' -> emit Plus_eq; go (i + 2)
      | '+' -> emit Plus; go (i + 1)
      | '-' when peek (i + 1) = Some '=' -> emit Minus_eq; go (i + 2)
      | '-' -> emit Minus; go (i + 1)
      | '*' when peek (i + 1) = Some '=' -> emit Star_eq; go (i + 2)
      | '*' -> emit Star; go (i + 1)
      | '(' -> emit Lparen; go (i + 1)
      | ')' -> emit Rparen; go (i + 1)
      | '{' -> emit Lbrace; go (i + 1)
      | '}' -> emit Rbrace; go (i + 1)
      | '[' -> emit Lbracket; go (i + 1)
      | ']' -> emit Rbracket; go (i + 1)
      | ',' -> emit Comma; go (i + 1)
      | ';' -> emit Semi; go (i + 1)
      | '&' -> emit Amp; go (i + 1)
      | '"' ->
        let tok, j = lex_string (i + 1) in
        emit tok;
        go j
      | '<' when peek (i + 1) = Some '<' -> emit Lshift; go (i + 2)
      | '<' when peek (i + 1) = Some '=' -> emit Le; go (i + 2)
      | '<' -> emit Lt; go (i + 1)
      | '>' when peek (i + 1) = Some '>' -> emit Rshift; go (i + 2)
      | '>' when peek (i + 1) = Some '=' -> emit Ge; go (i + 2)
      | '>' -> emit Gt; go (i + 1)
      | '=' when peek (i + 1) = Some '=' -> emit Eq_eq; go (i + 2)
      | '=' -> emit Assign; go (i + 1)
      | '!' when peek (i + 1) = Some '=' -> emit Ne; go (i + 2)
      | c when is_digit c || (c = '.' && (match peek (i + 1) with Some d -> is_digit d | None -> false)) ->
        let tok, j = lex_number i in
        emit tok;
        go j
      | c when is_ident_start c ->
        let j = ref i in
        while !j < n && is_ident_char src.[!j] do incr j done;
        emit (Ident (String.sub src i (!j - i)));
        go !j
      | c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  go 0;
  List.rev !out

let keywords =
  [ "void"; "int"; "float"; "double"; "for"; "if"; "else"; "while"; "return";
    "const"; "sizeof"; "__global__"; "printf"; "atof"; "atoi"; "main";
    "compute" ]

let keyword_table =
  let tbl = Hashtbl.create 64 in
  List.iter (fun k -> Hashtbl.replace tbl k ()) keywords;
  Array.iter
    (fun fn -> Hashtbl.replace tbl (Lang.Ast.math_fn_name fn) ())
    Lang.Ast.all_math_fns;
  tbl

let is_keyword s = Hashtbl.mem keyword_table s

let to_string = function
  | Int_tok v -> string_of_int v
  | Float_tok v -> Printf.sprintf "%.17g" v
  | Ident s -> s
  | Lparen -> "(" | Rparen -> ")"
  | Lbrace -> "{" | Rbrace -> "}"
  | Lbracket -> "[" | Rbracket -> "]"
  | Plus -> "+" | Minus -> "-" | Star -> "*" | Slash -> "/"
  | Comma -> "," | Semi -> ";"
  | Assign -> "=" | Plus_eq -> "+=" | Minus_eq -> "-=" | Star_eq -> "*="
  | Slash_eq -> "/="
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq_eq -> "==" | Ne -> "!="
  | Plus_plus -> "++"
  | Amp -> "&"
  | String_lit s -> "\"" ^ s ^ "\""
  | Lshift -> "<<"
  | Rshift -> ">>"
