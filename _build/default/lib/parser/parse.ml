open Lang

exception Error of string

type state = {
  toks : Lex.token array;
  mutable pos : int;
  mutable precision : Ast.precision;
  array_lens : (string, int) Hashtbl.t;
  default_array_len : int;
}

let fail st msg =
  let context =
    let lo = max 0 (st.pos - 3) in
    let hi = min (Array.length st.toks) (st.pos + 4) in
    Array.sub st.toks lo (hi - lo)
    |> Array.to_list
    |> List.map Lex.to_string
    |> String.concat " "
  in
  raise (Error (Printf.sprintf "%s (near: %s)" msg context))

let peek st = if st.pos < Array.length st.toks then Some st.toks.(st.pos) else None
let peek2 st =
  if st.pos + 1 < Array.length st.toks then Some st.toks.(st.pos + 1) else None

let advance st = st.pos <- st.pos + 1

let expect st tok what =
  match peek st with
  | Some t when t = tok -> advance st
  | _ -> fail st (Printf.sprintf "expected %s" what)

let expect_ident st =
  match peek st with
  | Some (Lex.Ident name) -> advance st; name
  | _ -> fail st "expected identifier"

let is_fp_type = function "float" | "double" -> true | _ -> false

let fp_precision = function
  | "float" -> Ast.F32
  | "double" -> Ast.F64
  | s -> invalid_arg ("not an fp type: " ^ s)

(* --------------------------------------------------------------- *)
(* Expressions *)

let strip_f_suffix name =
  let n = String.length name in
  if n > 1 && name.[n - 1] = 'f' then String.sub name 0 (n - 1) else name

let lookup_math_fn name =
  match Ast.math_fn_of_name name with
  | Some fn -> Some fn
  | None -> Ast.math_fn_of_name (strip_f_suffix name)

let rec parse_expr st = parse_additive st

and parse_additive st =
  let rec loop acc =
    match peek st with
    | Some Lex.Plus ->
      advance st;
      loop (Ast.Bin (Ast.Add, acc, parse_multiplicative st))
    | Some Lex.Minus ->
      advance st;
      loop (Ast.Bin (Ast.Sub, acc, parse_multiplicative st))
    | _ -> acc
  in
  loop (parse_multiplicative st)

and parse_multiplicative st =
  let rec loop acc =
    match peek st with
    | Some Lex.Star ->
      advance st;
      loop (Ast.Bin (Ast.Mul, acc, parse_unary st))
    | Some Lex.Slash ->
      advance st;
      loop (Ast.Bin (Ast.Div, acc, parse_unary st))
    | _ -> acc
  in
  loop (parse_unary st)

and parse_unary st =
  match peek st with
  | Some Lex.Minus -> begin
    advance st;
    (* A numeral directly after '-' folds into a negative literal; anything
       else keeps an explicit Neg node (see Pp for the inverse). *)
    match peek st with
    | Some (Lex.Float_tok v) -> advance st; Ast.Lit (-.v)
    | Some (Lex.Int_tok v) -> advance st; Ast.Int_lit (-v)
    | _ -> Ast.Neg (parse_unary st)
  end
  | Some Lex.Plus -> advance st; parse_unary st
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | Some (Lex.Float_tok v) -> advance st; Ast.Lit v
  | Some (Lex.Int_tok v) -> advance st; Ast.Int_lit v
  | Some Lex.Lparen ->
    advance st;
    let e = parse_expr st in
    expect st Lex.Rparen "')'";
    e
  | Some (Lex.Ident name) -> begin
    advance st;
    match peek st with
    | Some Lex.Lparen -> begin
      match lookup_math_fn name with
      | None -> fail st (Printf.sprintf "unknown function %s" name)
      | Some fn ->
        advance st;
        let rec args acc =
          let e = parse_expr st in
          match peek st with
          | Some Lex.Comma -> advance st; args (e :: acc)
          | Some Lex.Rparen -> advance st; List.rev (e :: acc)
          | _ -> fail st "expected ',' or ')' in call"
        in
        let actual = args [] in
        if List.length actual <> Ast.math_fn_arity fn then
          fail st (Printf.sprintf "%s expects %d argument(s)" name
                     (Ast.math_fn_arity fn));
        Ast.Call (fn, actual)
    end
    | Some Lex.Lbracket ->
      advance st;
      let idx = parse_expr st in
      expect st Lex.Rbracket "']'";
      Ast.Index (name, idx)
    | _ -> Ast.Var name
  end
  | _ -> fail st "expected expression"

let parse_cmpop st =
  match peek st with
  | Some Lex.Lt -> advance st; Ast.Lt
  | Some Lex.Le -> advance st; Ast.Le
  | Some Lex.Gt -> advance st; Ast.Gt
  | Some Lex.Ge -> advance st; Ast.Ge
  | Some Lex.Eq_eq -> advance st; Ast.Eq
  | Some Lex.Ne -> advance st; Ast.Ne
  | _ -> fail st "expected comparison operator"

(* --------------------------------------------------------------- *)
(* Statements *)

let parse_assign_op st =
  match peek st with
  | Some Lex.Assign -> advance st; Ast.Set
  | Some Lex.Plus_eq -> advance st; Ast.Add_eq
  | Some Lex.Minus_eq -> advance st; Ast.Sub_eq
  | Some Lex.Star_eq -> advance st; Ast.Mul_eq
  | Some Lex.Slash_eq -> advance st; Ast.Div_eq
  | _ -> fail st "expected assignment operator"

let rec parse_block st =
  expect st Lex.Lbrace "'{'";
  let rec loop acc =
    match peek st with
    | Some Lex.Rbrace -> advance st; List.rev acc
    | Some _ -> begin
      match parse_stmt st with
      | Some s -> loop (s :: acc)
      | None -> loop acc
    end
    | None -> fail st "unterminated block"
  in
  loop []

and parse_stmt st : Ast.stmt option =
  match peek st with
  | Some (Lex.Ident ty) when is_fp_type ty -> begin
    advance st;
    let name = expect_ident st in
    expect st Lex.Assign "'=' in declaration";
    let init = parse_expr st in
    expect st Lex.Semi "';'";
    if name = Ast.comp_name then
      (* The accumulator is implicitly declared; a redundant `comp = 0.0`
         initializer is dropped, anything else becomes an assignment. *)
      if init = Ast.Lit 0.0 then None
      else Some (Ast.Assign { lhs = Ast.Lv_var name; op = Ast.Set; rhs = init })
    else Some (Ast.Decl { name; init })
  end
  | Some (Lex.Ident "printf") ->
    (* Result printing is part of the fixed scaffold, not of the body. *)
    let rec skip () =
      match peek st with
      | Some Lex.Semi -> advance st
      | Some _ -> advance st; skip ()
      | None -> fail st "unterminated printf"
    in
    skip ();
    None
  | Some (Lex.Ident "if") ->
    advance st;
    expect st Lex.Lparen "'(' after if";
    let lhs = parse_expr st in
    let cmp = parse_cmpop st in
    let rhs = parse_expr st in
    expect st Lex.Rparen "')' after condition";
    let body = parse_block st in
    if peek st = Some (Lex.Ident "else") then fail st "else blocks are not in the grammar";
    Some (Ast.If { lhs; cmp; rhs; body })
  | Some (Lex.Ident "for") ->
    advance st;
    expect st Lex.Lparen "'(' after for";
    expect st (Lex.Ident "int") "'int' in loop header";
    let var = expect_ident st in
    expect st Lex.Assign "'=' in loop header";
    expect st (Lex.Int_tok 0) "loop start 0";
    expect st Lex.Semi "';' in loop header";
    let var2 = expect_ident st in
    if var2 <> var then fail st "loop condition must test the counter";
    expect st Lex.Lt "'<' in loop condition";
    let bound =
      match peek st with
      | Some (Lex.Int_tok b) -> advance st; b
      | _ -> fail st "loop bound must be an integer literal"
    in
    expect st Lex.Semi "';' after loop condition";
    (match (peek st, peek2 st) with
     | Some Lex.Plus_plus, Some (Lex.Ident v) when v = var ->
       advance st; advance st
     | Some (Lex.Ident v), Some Lex.Plus_plus when v = var ->
       advance st; advance st
     | _ -> fail st "loop increment must be ++counter");
    expect st Lex.Rparen "')' after loop header";
    let body = parse_block st in
    Some (Ast.For { var; bound; body })
  | Some (Lex.Ident name) -> begin
    advance st;
    match peek st with
    | Some Lex.Lbracket ->
      advance st;
      let idx = parse_expr st in
      expect st Lex.Rbracket "']'";
      let op = parse_assign_op st in
      let rhs = parse_expr st in
      expect st Lex.Semi "';'";
      Some (Ast.Assign { lhs = Ast.Lv_index (name, idx); op; rhs })
    | _ ->
      let op = parse_assign_op st in
      let rhs = parse_expr st in
      expect st Lex.Semi "';'";
      Some (Ast.Assign { lhs = Ast.Lv_var name; op; rhs })
  end
  | _ -> fail st "expected statement"

(* --------------------------------------------------------------- *)
(* Program structure *)

(* Array parameter lengths live in main's declarations (`double a[8];`);
   recover them with a pre-scan so signatures can be reconstructed. *)
let scan_array_lens toks =
  let tbl = Hashtbl.create 8 in
  let arr = Array.of_list toks in
  let n = Array.length arr in
  for i = 0 to n - 5 do
    match (arr.(i), arr.(i + 1), arr.(i + 2), arr.(i + 3), arr.(i + 4)) with
    | ( Lex.Ident ty, Lex.Ident name, Lex.Lbracket, Lex.Int_tok len,
        Lex.Rbracket )
      when is_fp_type ty ->
      Hashtbl.replace tbl name len
    | _ -> ()
  done;
  tbl

let parse_params st =
  expect st Lex.Lparen "'(' after compute";
  if peek st = Some Lex.Rparen then begin advance st; [] end
  else
    let rec loop acc =
      let param =
        match peek st with
        | Some (Lex.Ident "int") ->
          advance st;
          Ast.P_int (expect_ident st)
        | Some (Lex.Ident ty) when is_fp_type ty -> begin
          st.precision <- fp_precision ty;
          advance st;
          match peek st with
          | Some Lex.Star ->
            advance st;
            let name = expect_ident st in
            let len =
              Option.value
                (Hashtbl.find_opt st.array_lens name)
                ~default:st.default_array_len
            in
            Ast.P_fp_array (name, len)
          | _ -> Ast.P_fp (expect_ident st)
        end
        | _ -> fail st "expected parameter declaration"
      in
      match peek st with
      | Some Lex.Comma -> advance st; loop (param :: acc)
      | Some Lex.Rparen -> advance st; List.rev (param :: acc)
      | _ -> fail st "expected ',' or ')' in parameter list"
    in
    loop []

let seek_compute st =
  let n = Array.length st.toks in
  let rec go i =
    if i + 1 >= n then fail st "no compute function found"
    else
      match (st.toks.(i), st.toks.(i + 1)) with
      | Lex.Ident "compute", Lex.Lparen
        when i >= 1
             && (st.toks.(i - 1) = Lex.Ident "void"
                || st.toks.(i - 1) = Lex.Star) ->
        st.pos <- i + 1
      | _ -> go (i + 1)
  in
  go 0

let program ?(default_array_len = 8) src =
  match
    let toks = Lex.tokens src in
    let st =
      { toks = Array.of_list toks;
        pos = 0;
        precision = Ast.F64;
        array_lens = scan_array_lens toks;
        default_array_len }
    in
    seek_compute st;
    let params = parse_params st in
    let body = parse_block st in
    ({ Ast.precision = st.precision; params; body } : Ast.program)
  with
  | p -> Ok p
  | exception Error msg -> Result.error ("parse error: " ^ msg)
  | exception Lex.Error msg -> Result.error ("lex error: " ^ msg)

let program_exn ?default_array_len src =
  match program ?default_array_len src with
  | Ok p -> p
  | Error msg -> failwith msg

let expr src =
  match
    let toks = Lex.tokens src in
    let st =
      { toks = Array.of_list toks;
        pos = 0;
        precision = Ast.F64;
        array_lens = Hashtbl.create 1;
        default_array_len = 8 }
    in
    let e = parse_expr st in
    if st.pos <> Array.length st.toks then fail st "trailing tokens";
    e
  with
  | e -> Ok e
  | exception Error msg -> Result.error ("parse error: " ^ msg)
  | exception Lex.Error msg -> Result.error ("lex error: " ^ msg)
