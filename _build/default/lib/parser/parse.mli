(** Recursive-descent parser for the mini-C subset.

    Accepts both a full translation unit (as emitted by {!Pp.to_c} /
    {!Pp.to_cuda} — includes and [main] are skipped, array parameter
    lengths are recovered from the declarations in [main]) and a bare
    [compute] function (as stored in the LLM corpus, where array lengths
    fall back to [default_array_len]).

    Grammar restrictions mirror Figure 2 of the paper: statements are
    declarations-with-initializer, compound assignments, braced [if]
    blocks with a single comparison, and counted [for] loops starting at
    zero. Expressions are arithmetic over [+ - * /], unary minus,
    parentheses, array indexing, and math-library calls. *)

val program :
  ?default_array_len:int -> string -> (Lang.Ast.program, string) result
(** Parse a program. The error string carries a token-level description of
    the first offending construct. [default_array_len] defaults to 8. *)

val program_exn : ?default_array_len:int -> string -> Lang.Ast.program
(** Like {!program}, raising [Failure] on error. *)

val expr : string -> (Lang.Ast.expr, string) result
(** Parse a standalone expression (test/tooling convenience). *)
