(** Lexer for the mini-C subset.

    Tokenizes the text emitted by {!Pp} (and the corpus/mutation sources),
    skipping whitespace, [//] and [/* */] comments, and preprocessor lines.
    The token stream is also the substrate for the diversity metrics: BLEU
    n-grams are computed over [to_string] renderings and the weighted
    n-gram match boosts [is_keyword] tokens. *)

type token =
  | Int_tok of int
  | Float_tok of float
  | Ident of string      (** identifiers and keywords *)
  | Lparen | Rparen
  | Lbrace | Rbrace
  | Lbracket | Rbracket
  | Plus | Minus | Star | Slash
  | Comma | Semi
  | Assign | Plus_eq | Minus_eq | Star_eq | Slash_eq
  | Lt | Le | Gt | Ge | Eq_eq | Ne
  | Plus_plus
  | Amp                   (** ['&'], appears in CUDA boilerplate *)
  | String_lit of string  (** printf format strings *)
  | Lshift                (** ["<<"], kernel launch syntax *)
  | Rshift                (** [">>"] *)

exception Error of string
(** Raised on an unrecognized character, with a line-numbered message. *)

val tokens : string -> token list
(** Tokenize a whole source text. Raises {!Error}. *)

val to_string : token -> string
(** Canonical spelling of one token (string literals are re-quoted). *)

val is_keyword : string -> bool
(** C keywords and the math-library function names used by the language;
    drives the weighted n-gram component of CodeBLEU. *)
