(** The execution engine.

    Evaluates lowered/optimized IR exactly as written: one binary64 (or
    binary32, for [F32] programs) rounding per arithmetic node, fused
    multiply-adds with a single rounding, math calls dispatched to the
    configured vendor library, and optional flush-to-zero of subnormal
    operands and results (device fast math).

    This is the "run the binary" stage of the paper's pipeline: the
    returned accumulator value is what the generated program would print,
    and its bit pattern is what differential testing compares. *)

type runtime = {
  libm : Mathlib.Libm.flavor;
  ftz : bool;  (** flush subnormal operands/results of FP operations *)
  nan_cmp_taken : bool;
      (** finite-math-only branch compilation: when a comparison operand
          is NaN, the branch condition evaluates to [true] instead of
          IEEE's [false]. Real fast-math compilers are free to compile
          [x < y] into the negation of [x >= y]; gcc and nvcc do, clang
          keeps the IEEE-shaped sequence — so NaN-bearing programs
          branch differently across compilers under fast math. *)
}

type outcome = {
  result : float;   (** final value of [comp] *)
  fp_ops : int;     (** dynamic floating-point operation count *)
}

val run : runtime -> Ir.t -> Inputs.t -> outcome
(** Execute. Raises [Invalid_argument] when the input vector does not
    match the program's bindings, [Assert_failure] on an out-of-bounds
    subscript (excluded by the validator). *)
