(** Value-unsafe fast-math transformations ([-ffast-math] /
    [-use_fast_math]).

    Three ingredients, each a real compiler behaviour:

    - {b algebraic simplification} assuming finite math and ignoring
      signed zero: [x - x → 0], [x / x → 1], [0 * x → 0], [x + 0 → x],
      [1 * x → x], [-(-x) → x]. These change results exactly when the
      operand is NaN/Inf/-0 — the mechanism behind the paper's
      {Real, NaN}-style class flips at [03_fastmath].
    - {b reciprocal division}: [a / b → a * (1/b)] (two roundings instead
      of one).
    - {b reassociation} of addition and multiplication chains. Each
      compiler reduces long chains in its own shape, so the same source
      sums in different orders: gcc builds a balanced reduction tree,
      clang splits even/odd partial sums (vectorization style), nvcc
      keeps the source order. Chains shorter than three terms are left
      alone. Subtractions are canonicalized into added negations during
      reassociation, as real middle-ends do. *)

type reassoc = Balanced | Pairwise | Flat

type config = {
  simplify : bool;
  simplify_div_self : bool;
      (** apply [x / x → 1]; compilers differ in whether this fires (the
          operand could be NaN, 0 or Inf at runtime — folding it erases
          the NaN), so it is a per-compiler knob *)
  simplify_sub_self : bool;  (** apply [x - x → 0] *)
  recip : bool;
  reassoc : reassoc;
}

val gcc : config
val clang : config
val nvcc : config

val rewrite_expr : config -> Ir.expr -> Ir.expr
(** The whole-expression rewrite (simplify, then reciprocal, then
    reassociate), exposed for tests. *)

val run : config -> Ir.t -> Ir.t
