(** Fused multiply-add contraction.

    The central FMA policy differences among the simulated compilers
    (paper §3.1.2, Table 1):

    - nvcc contracts by default at every level ([-fmad=true]); only
      [00_nofma]'s [-fmad=false] disables it.
    - gcc and clang contract once they optimize; gcc additionally
      contracts {e across statement boundaries} (its middle-end forwards
      single-use multiply temporaries before codegen — see {!Forward}),
      while clang only fuses a syntactic multiply-add inside one
      expression.

    [Syntactic] rewrites, bottom-up: [a*b + c], [c + a*b], [a*b - c], and
    [c - a*b] into single-rounding {!Ir.expr.Fma} nodes. When both
    operands of an addition are multiplications the left one fuses (what
    gcc/clang/nvcc codegen does for a simple tree walk). *)

type policy = No_contract | Syntactic | Cross_stmt

val policy_name : policy -> string

val contract_expr : Ir.expr -> Ir.expr
(** The syntactic rewrite on one expression tree. *)

val run : policy -> Ir.t -> Ir.t
(** [Cross_stmt] is {!Forward.run} followed by the syntactic rewrite. *)
