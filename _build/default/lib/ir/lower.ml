open Lang

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type sym = Sf of int | Si of int | Sa of int

type state = {
  mutable table : (string * sym) list;  (** scoped symbol stack *)
  mutable n_fslots : int;
  mutable n_islots : int;
  mutable arrs : int list;  (** reversed lengths *)
}

let fresh_f st =
  let slot = st.n_fslots in
  st.n_fslots <- slot + 1;
  slot

let fresh_i st =
  let slot = st.n_islots in
  st.n_islots <- slot + 1;
  slot

let fresh_a st len =
  let slot = List.length st.arrs in
  st.arrs <- len :: st.arrs;
  slot

let lookup st name =
  match List.assoc_opt name st.table with
  | Some sym -> sym
  | None -> fail "lowering: unbound variable %s" name

let bind st name sym = st.table <- (name, sym) :: st.table

(* Integer-context lowering: array subscripts. *)
let rec lower_iexpr st e =
  match e with
  | Ast.Int_lit n -> Ir.Iconst n
  | Ast.Var name -> begin
    match lookup st name with
    | Si slot -> Ir.Iload slot
    | Sf _ | Sa _ -> fail "lowering: %s is not an integer" name
  end
  | Ast.Neg e -> Ir.Ineg (lower_iexpr st e)
  | Ast.Bin (((Ast.Add | Ast.Sub | Ast.Mul) as op), a, b) ->
    Ir.Ibin (op, lower_iexpr st a, lower_iexpr st b)
  | Ast.Bin (Ast.Div, _, _) -> fail "lowering: integer division in subscript"
  | Ast.Lit _ | Ast.Index _ | Ast.Call _ ->
    fail "lowering: non-integer expression in subscript"

(* Floating-point context. *)
let rec lower_expr st e =
  match e with
  | Ast.Lit v -> Ir.Const v
  | Ast.Int_lit n -> Ir.Const (float_of_int n)
  | Ast.Var name -> begin
    match lookup st name with
    | Sf slot -> Ir.Load slot
    | Si slot -> Ir.Itof (Ir.Iload slot)
    | Sa _ -> fail "lowering: array %s used as scalar" name
  end
  | Ast.Index (name, idx) -> begin
    match lookup st name with
    | Sa slot -> Ir.Load_arr (slot, lower_iexpr st idx)
    | Sf _ | Si _ -> fail "lowering: %s is not an array" name
  end
  | Ast.Neg e -> Ir.Neg (lower_expr st e)
  | Ast.Bin (op, a, b) -> Ir.Bin (op, lower_expr st a, lower_expr st b)
  | Ast.Call (fn, args) ->
    if List.length args <> Ast.math_fn_arity fn then
      fail "lowering: arity mismatch in %s" (Ast.math_fn_name fn);
    Ir.Call (fn, List.map (lower_expr st) args)

let expand_compound op current rhs =
  match op with
  | Ast.Set -> rhs
  | Ast.Add_eq -> Ir.Bin (Ast.Add, current, rhs)
  | Ast.Sub_eq -> Ir.Bin (Ast.Sub, current, rhs)
  | Ast.Mul_eq -> Ir.Bin (Ast.Mul, current, rhs)
  | Ast.Div_eq -> Ir.Bin (Ast.Div, current, rhs)

let rec lower_body st body =
  let saved = st.table in
  let lowered =
    List.map
      (fun s ->
        match s with
        | Ast.Decl { name; init } ->
          let init = lower_expr st init in
          let slot = fresh_f st in
          bind st name (Sf slot);
          Ir.Store (slot, init)
        | Ast.Assign { lhs; op; rhs } -> begin
          match lhs with
          | Ast.Lv_var name -> begin
            match lookup st name with
            | Sf slot ->
              let rhs = lower_expr st rhs in
              Ir.Store (slot, expand_compound op (Ir.Load slot) rhs)
            | Si _ -> fail "lowering: assignment to integer %s" name
            | Sa _ -> fail "lowering: assignment to array %s" name
          end
          | Ast.Lv_index (name, idx) -> begin
            match lookup st name with
            | Sa slot ->
              let idx = lower_iexpr st idx in
              let rhs = lower_expr st rhs in
              Ir.Store_arr
                (slot, idx, expand_compound op (Ir.Load_arr (slot, idx)) rhs)
            | Sf _ | Si _ -> fail "lowering: %s is not an array" name
          end
        end
        | Ast.If { lhs; cmp; rhs; body } ->
          Ir.If
            { lhs = lower_expr st lhs;
              cmp;
              rhs = lower_expr st rhs;
              body = lower_body st body }
        | Ast.For { var; bound; body } ->
          let islot = fresh_i st in
          let saved_loop = st.table in
          bind st var (Si islot);
          let body = lower_body st body in
          st.table <- saved_loop;
          Ir.For { islot; bound; body })
      body
  in
  st.table <- saved;
  lowered

let program (p : Ast.program) =
  let st = { table = []; n_fslots = 0; n_islots = 0; arrs = [] } in
  let comp_slot = fresh_f st in
  bind st Ast.comp_name (Sf comp_slot);
  let bindings =
    List.map
      (fun prm ->
        match prm with
        | Ast.P_fp name ->
          let slot = fresh_f st in
          bind st name (Sf slot);
          Ir.Bind_fp slot
        | Ast.P_int name ->
          let slot = fresh_i st in
          bind st name (Si slot);
          Ir.Bind_int slot
        | Ast.P_fp_array (name, len) ->
          if len <= 0 then fail "lowering: array %s has length %d" name len;
          let slot = fresh_a st len in
          bind st name (Sa slot);
          Ir.Bind_arr (slot, len))
      p.params
  in
  let body = lower_body st p.body in
  {
    Ir.precision = p.precision;
    n_fslots = st.n_fslots;
    n_islots = st.n_islots;
    arr_lens = Array.of_list (List.rev st.arrs);
    bindings;
    body;
    comp_slot;
  }
