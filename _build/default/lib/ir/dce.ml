module Int_set = Set.Make (Int)

type uses = { mutable fslots : Int_set.t; mutable arrs : Int_set.t }

let rec note_expr u (e : Ir.expr) =
  match e with
  | Ir.Const _ | Ir.Itof _ -> ()
  | Ir.Load s -> u.fslots <- Int_set.add s u.fslots
  | Ir.Load_arr (s, _) -> u.arrs <- Int_set.add s u.arrs
  | Ir.Neg e | Ir.Recip e -> note_expr u e
  | Ir.Bin (_, a, b) ->
    note_expr u a;
    note_expr u b
  | Ir.Fma (a, b, c) ->
    note_expr u a;
    note_expr u b;
    note_expr u c
  | Ir.Call (_, args) -> List.iter (note_expr u) args

let rec note_body u body =
  List.iter
    (fun (s : Ir.stmt) ->
      match s with
      | Ir.Store (_, e) -> note_expr u e
      | Ir.Store_arr (_, _, e) -> note_expr u e
      | Ir.If { lhs; rhs; body; _ } ->
        note_expr u lhs;
        note_expr u rhs;
        note_body u body
      | Ir.For { body; _ } -> note_body u body)
    body

(* NaN constants make structural equality of bodies unreliable (nan <> nan),
   so convergence is tracked with an explicit removal counter. *)
let rec sweep removed live_f live_a comp body =
  List.filter_map
    (fun (s : Ir.stmt) ->
      match s with
      | Ir.Store (slot, _) ->
        if slot = comp || Int_set.mem slot live_f then Some s
        else begin incr removed; None end
      | Ir.Store_arr (arr, _, _) ->
        if Int_set.mem arr live_a then Some s
        else begin incr removed; None end
      | Ir.If r ->
        Some (Ir.If { r with body = sweep removed live_f live_a comp r.body })
      | Ir.For r ->
        Some (Ir.For { r with body = sweep removed live_f live_a comp r.body }))
    body

let rec fixpoint (ir : Ir.t) =
  let u = { fslots = Int_set.empty; arrs = Int_set.empty } in
  note_body u ir.body;
  let removed = ref 0 in
  let swept = sweep removed u.fslots u.arrs ir.comp_slot ir.body in
  if !removed = 0 then ir else fixpoint { ir with body = swept }

let run = fixpoint
