(** Single-use multiply-temporary forwarding.

    Models gcc's cross-statement contraction fodder: when a statement
    stores a pure multiplication into a scalar slot and the {e only}
    subsequent use of that slot in the same block is an additive operand
    at the same nesting level, the multiplication is inlined into the use
    site (where {!Contract} will fuse it). Forwarding is refused whenever
    an intervening statement redefines the slot or any slot/array the
    multiplication reads, or when the use sits inside a nested block
    (loop counters could change the operands' meaning).

    The defining store is left in place; dead-store elimination
    ({!Dce}) removes it when it becomes unused. *)

val run : Ir.t -> Ir.t
