open Lang

type reassoc = Balanced | Pairwise | Flat

type config = {
  simplify : bool;
  simplify_div_self : bool;
  simplify_sub_self : bool;
  recip : bool;
  reassoc : reassoc;
}

let gcc =
  { simplify = true; simplify_div_self = true; simplify_sub_self = true;
    recip = true; reassoc = Balanced }

let clang =
  { simplify = true; simplify_div_self = false; simplify_sub_self = true;
    recip = true; reassoc = Pairwise }

let nvcc =
  { simplify = true; simplify_div_self = true; simplify_sub_self = false;
    recip = true; reassoc = Flat }

(* ----------------------------------------------------------------- *)
(* Value-unsafe algebraic simplification. Structural equality of pure
   subtrees implies equal runtime values (expressions have no side
   effects), so `x - x` and `x / x` may be folded — unsafely, since the
   runtime value could be NaN or Inf. *)

let is_zero = function Ir.Const 0.0 -> true | _ -> false
let is_one = function Ir.Const 1.0 -> true | _ -> false

let rec simplify_expr cfg (e : Ir.expr) : Ir.expr =
  let simplify_expr = simplify_expr cfg in
  match e with
  | Ir.Const _ | Ir.Load _ | Ir.Load_arr _ | Ir.Itof _ -> e
  | Ir.Neg inner -> begin
    match simplify_expr inner with
    | Ir.Neg x -> x
    | inner -> Ir.Neg inner
  end
  | Ir.Recip inner -> Ir.Recip (simplify_expr inner)
  | Ir.Fma (a, b, c) -> Ir.Fma (simplify_expr a, simplify_expr b, simplify_expr c)
  | Ir.Call (fn, args) -> Ir.Call (fn, List.map simplify_expr args)
  | Ir.Bin (op, a, b) -> begin
    let a = simplify_expr a and b = simplify_expr b in
    match op with
    | Ast.Sub when cfg.simplify_sub_self && a = b -> Ir.Const 0.0
    | Ast.Div when cfg.simplify_div_self && a = b -> Ir.Const 1.0
    | Ast.Mul when is_zero a || is_zero b -> Ir.Const 0.0
    | Ast.Mul when is_one a -> b
    | Ast.Mul when is_one b -> a
    | Ast.Add when is_zero b -> a
    | Ast.Add when is_zero a -> b
    | Ast.Sub when is_zero b -> a
    | Ast.Div when is_one b -> a
    | _ -> Ir.Bin (op, a, b)
  end

(* ----------------------------------------------------------------- *)
(* Reciprocal division. *)

let rec recip_expr (e : Ir.expr) : Ir.expr =
  match e with
  | Ir.Const _ | Ir.Load _ | Ir.Load_arr _ | Ir.Itof _ -> e
  | Ir.Neg inner -> Ir.Neg (recip_expr inner)
  | Ir.Recip inner -> Ir.Recip (recip_expr inner)
  | Ir.Fma (a, b, c) -> Ir.Fma (recip_expr a, recip_expr b, recip_expr c)
  | Ir.Call (fn, args) -> Ir.Call (fn, List.map recip_expr args)
  | Ir.Bin (Ast.Div, a, b) ->
    (* Constant divisors get their reciprocal precomputed at compile time
       (all compilers do this under -freciprocal-math). *)
    let b = recip_expr b in
    let recip = match b with Ir.Const c -> Ir.Const (1.0 /. c) | _ -> Ir.Recip b in
    Ir.Bin (Ast.Mul, recip_expr a, recip)
  | Ir.Bin (op, a, b) -> Ir.Bin (op, recip_expr a, recip_expr b)

(* ----------------------------------------------------------------- *)
(* Reassociation. An Add/Sub tree flattens to a signed term list; a Mul
   tree to a factor list. The rebuild shape is the per-compiler knob. *)

type term = { negated : bool; expr : Ir.expr }

let rec flatten_sum (e : Ir.expr) ~negated acc =
  match e with
  | Ir.Bin (Ast.Add, a, b) ->
    flatten_sum a ~negated (flatten_sum b ~negated acc)
  | Ir.Bin (Ast.Sub, a, b) ->
    flatten_sum a ~negated (flatten_sum b ~negated:(not negated) acc)
  | _ -> { negated; expr = e } :: acc

let rec flatten_product (e : Ir.expr) acc =
  match e with
  | Ir.Bin (Ast.Mul, a, b) -> flatten_product a (flatten_product b acc)
  | _ -> e :: acc

let signed_term t = if t.negated then Ir.Neg t.expr else t.expr

(* Left-associated fold of a non-empty term list, subtracting negated
   terms (keeps `a - b + c` shaped naturally). *)
let rebuild_left terms =
  match terms with
  | [] -> invalid_arg "rebuild_left: empty"
  | first :: rest ->
    List.fold_left
      (fun acc t ->
        if t.negated then Ir.Bin (Ast.Sub, acc, t.expr)
        else Ir.Bin (Ast.Add, acc, t.expr))
      (signed_term first) rest

(* Balanced binary reduction in source order (gcc's reduction tree). *)
let rec rebuild_balanced terms =
  match terms with
  | [] -> invalid_arg "rebuild_balanced: empty"
  | [ t ] -> signed_term t
  | terms ->
    let n = List.length terms in
    let rec split k left right =
      if k = 0 then (List.rev left, right)
      else
        match right with
        | [] -> (List.rev left, [])
        | x :: rest -> split (k - 1) (x :: left) rest
    in
    let left, right = split (n / 2) [] terms in
    Ir.Bin (Ast.Add, rebuild_balanced left, rebuild_balanced right)

(* Even/odd partial sums (clang's two-lane vectorization shape). *)
let rebuild_pairwise terms =
  let evens, odds =
    List.fold_left
      (fun (evens, odds, k) t ->
        if k mod 2 = 0 then (t :: evens, odds, k + 1)
        else (evens, t :: odds, k + 1))
      ([], [], 0) terms
    |> fun (e, o, _) -> (List.rev e, List.rev o)
  in
  match (evens, odds) with
  | [], [] -> invalid_arg "rebuild_pairwise: empty"
  | terms, [] | [], terms -> rebuild_left terms
  | evens, odds -> Ir.Bin (Ast.Add, rebuild_left evens, rebuild_left odds)

let rebuild_product_left factors =
  match factors with
  | [] -> invalid_arg "rebuild_product_left: empty"
  | first :: rest ->
    List.fold_left (fun acc f -> Ir.Bin (Ast.Mul, acc, f)) first rest

let rec rebuild_product_balanced factors =
  match factors with
  | [] -> invalid_arg "rebuild_product_balanced: empty"
  | [ f ] -> f
  | factors ->
    let n = List.length factors in
    let rec split k left right =
      if k = 0 then (List.rev left, right)
      else
        match right with
        | [] -> (List.rev left, [])
        | x :: rest -> split (k - 1) (x :: left) rest
    in
    let left, right = split (n / 2) [] factors in
    Ir.Bin (Ast.Mul, rebuild_product_balanced left, rebuild_product_balanced right)

let rec reassoc_expr shape (e : Ir.expr) : Ir.expr =
  match e with
  | Ir.Const _ | Ir.Load _ | Ir.Load_arr _ | Ir.Itof _ -> e
  | Ir.Neg inner -> Ir.Neg (reassoc_expr shape inner)
  | Ir.Recip inner -> Ir.Recip (reassoc_expr shape inner)
  | Ir.Fma (a, b, c) ->
    Ir.Fma (reassoc_expr shape a, reassoc_expr shape b, reassoc_expr shape c)
  | Ir.Call (fn, args) -> Ir.Call (fn, List.map (reassoc_expr shape) args)
  | Ir.Bin ((Ast.Add | Ast.Sub), _, _) -> begin
    let terms =
      flatten_sum e ~negated:false []
      |> List.map (fun t -> { t with expr = reassoc_expr shape t.expr })
    in
    match shape with
    | Flat -> rebuild_left terms
    | _ when List.length terms < 3 -> rebuild_left terms
    | Balanced -> rebuild_balanced terms
    | Pairwise -> rebuild_pairwise terms
  end
  | Ir.Bin (Ast.Mul, _, _) -> begin
    let factors =
      flatten_product e [] |> List.map (reassoc_expr shape)
    in
    match shape with
    | Flat -> rebuild_product_left factors
    | _ when List.length factors < 3 -> rebuild_product_left factors
    | Balanced -> rebuild_product_balanced factors
    | Pairwise -> rebuild_product_left factors
  end
  | Ir.Bin (Ast.Div, a, b) ->
    Ir.Bin (Ast.Div, reassoc_expr shape a, reassoc_expr shape b)

let rewrite_expr cfg e =
  let e = if cfg.simplify then simplify_expr cfg e else e in
  let e = if cfg.recip then recip_expr e else e in
  reassoc_expr cfg.reassoc e

let run cfg (ir : Ir.t) = { ir with body = Ir.map_body (rewrite_expr cfg) ir.body }
