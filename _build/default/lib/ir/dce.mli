(** Dead-store elimination.

    Removes stores to scalar slots that are never loaded anywhere in the
    program (other than the accumulator) and stores to arrays that are
    never read, iterating to a fixpoint. Expressions are pure, so
    removal is semantically transparent; the pass exists because
    {!Forward} leaves behind dead multiply temporaries and because real
    pipelines run it, which keeps IR-size statistics honest. *)

val run : Ir.t -> Ir.t
