open Lang

type config = { fold_arith : bool; fold_calls : Mathlib.Libm.flavor option }

let nothing = { fold_arith = false; fold_calls = None }

let rec fold_iexpr (e : Ir.iexpr) : Ir.iexpr =
  match e with
  | Ir.Iconst _ | Ir.Iload _ -> e
  | Ir.Ineg inner -> begin
    match fold_iexpr inner with
    | Ir.Iconst n -> Ir.Iconst (-n)
    | inner -> Ir.Ineg inner
  end
  | Ir.Ibin (op, a, b) -> begin
    match (fold_iexpr a, fold_iexpr b) with
    | Ir.Iconst x, Ir.Iconst y -> begin
      match op with
      | Ast.Add -> Ir.Iconst (x + y)
      | Ast.Sub -> Ir.Iconst (x - y)
      | Ast.Mul -> Ir.Iconst (x * y)
      | Ast.Div -> if y = 0 then Ir.Ibin (op, Ir.Iconst x, Ir.Iconst y)
                   else Ir.Iconst (x / y)
    end
    | a, b -> Ir.Ibin (op, a, b)
  end

let rec fold_expr cfg (e : Ir.expr) : Ir.expr =
  match e with
  | Ir.Const _ | Ir.Load _ -> e
  | Ir.Load_arr (s, idx) -> Ir.Load_arr (s, fold_iexpr idx)
  | Ir.Itof idx -> begin
    match fold_iexpr idx with
    | Ir.Iconst n when cfg.fold_arith -> Ir.Const (float_of_int n)
    | idx -> Ir.Itof idx
  end
  | Ir.Neg inner -> begin
    match fold_expr cfg inner with
    | Ir.Const v when cfg.fold_arith -> Ir.Const (-.v)
    | inner -> Ir.Neg inner
  end
  | Ir.Bin (op, a, b) -> begin
    match (fold_expr cfg a, fold_expr cfg b) with
    | Ir.Const x, Ir.Const y when cfg.fold_arith -> begin
      match op with
      | Ast.Add -> Ir.Const (x +. y)
      | Ast.Sub -> Ir.Const (x -. y)
      | Ast.Mul -> Ir.Const (x *. y)
      | Ast.Div -> Ir.Const (x /. y)
    end
    | a, b -> Ir.Bin (op, a, b)
  end
  | Ir.Recip inner -> begin
    match fold_expr cfg inner with
    | Ir.Const v when cfg.fold_arith -> Ir.Const (1.0 /. v)
    | inner -> Ir.Recip inner
  end
  | Ir.Fma (a, b, c) -> begin
    match (fold_expr cfg a, fold_expr cfg b, fold_expr cfg c) with
    | Ir.Const x, Ir.Const y, Ir.Const z when cfg.fold_arith ->
      Ir.Const (Fp.Fma.contract x y z)
    | a, b, c -> Ir.Fma (a, b, c)
  end
  | Ir.Call (fn, args) -> begin
    let args = List.map (fold_expr cfg) args in
    let all_const =
      List.for_all (function Ir.Const _ -> true | _ -> false) args
    in
    match cfg.fold_calls with
    | Some flavor when all_const ->
      let values =
        List.map (function Ir.Const v -> v | _ -> assert false) args
      in
      Ir.Const (Mathlib.Libm.call flavor fn values)
    | _ -> Ir.Call (fn, args)
  end

let run cfg (ir : Ir.t) =
  if (not cfg.fold_arith) && cfg.fold_calls = None then ir
  else { ir with body = Ir.map_body (fold_expr cfg) ir.body }
