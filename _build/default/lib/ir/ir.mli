(** Intermediate representation for the compiler simulator.

    Programs are lowered ({!Lower}) from the surface AST into a slot-based
    IR with fully explicit evaluation order: every floating-point rounding
    the executed code performs corresponds to one IR node. Optimization
    passes rewrite this tree — introducing {!expr.Fma} nodes (contraction),
    {!expr.Recip} nodes (reciprocal division), reshaping associativity —
    and the interpreter ({!Interp}) evaluates exactly what the tree says.
    Two compiler configurations produce different printed results if and
    only if their pass pipelines produce semantically different IR or
    their runtimes (math library, FTZ) differ, which is precisely the
    paper's model of compiler-induced numerical inconsistency.

    Integer computations (loop counters, array subscripts) live in a
    separate expression type {!iexpr}; the validator guarantees they are
    statically bounded, so the interpreter never traps. *)

type iexpr =
  | Iconst of int
  | Iload of int          (** integer slot: loop counter or int parameter *)
  | Ineg of iexpr
  | Ibin of Lang.Ast.binop * iexpr * iexpr

type expr =
  | Const of float
  | Load of int           (** scalar floating-point slot *)
  | Load_arr of int * iexpr  (** array slot, subscript *)
  | Itof of iexpr         (** integer value used in floating-point context *)
  | Neg of expr
  | Bin of Lang.Ast.binop * expr * expr
  | Call of Lang.Ast.math_fn * expr list
  | Fma of expr * expr * expr   (** fused [a*b + c], single rounding *)
  | Recip of expr               (** explicit reciprocal: [1.0 / e] *)

type stmt =
  | Store of int * expr
  | Store_arr of int * iexpr * expr
  | If of { lhs : expr; cmp : Lang.Ast.cmpop; rhs : expr; body : stmt list }
  | For of { islot : int; bound : int; body : stmt list }

type param_binding =
  | Bind_fp of int        (** next input scalar goes to this slot *)
  | Bind_int of int
  | Bind_arr of int * int (** array slot, length *)

type t = {
  precision : Lang.Ast.precision;
  n_fslots : int;
  n_islots : int;
  arr_lens : int array;   (** length of each array slot *)
  bindings : param_binding list;  (** in parameter order *)
  body : stmt list;
  comp_slot : int;        (** always 0 *)
}

val expr_size : expr -> int
(** Node count, for pass statistics and tests. *)

val equal : t -> t -> bool

val pp_expr : Format.formatter -> expr -> unit
val pp : Format.formatter -> t -> unit
(** Debug printer (not valid C). *)

val map_body : (expr -> expr) -> stmt list -> stmt list
(** Rewrite every expression position with [f] (applied to whole
    right-hand sides and condition operands; [f] recurses itself).
    Subscript [iexpr]s are untouched. *)
