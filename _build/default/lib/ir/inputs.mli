(** Input vectors for test programs.

    Each generated program is paired with one set of input values (paper
    §3.1.3). A vector matches the program's parameter list positionally. *)

type value =
  | Fp of float
  | Int of int
  | Arr of float array

type t = value list

val matches : Lang.Ast.program -> t -> bool
(** Positional agreement with the parameter list (kinds and array
    lengths). *)

val to_argv : t -> string list
(** Command-line rendering under the {!Pp.arg_order_doc} convention:
    scalars as [%.17g] / decimal, arrays as consecutive entries. *)

val pp : Format.formatter -> t -> unit
