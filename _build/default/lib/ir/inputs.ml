type value = Fp of float | Int of int | Arr of float array

type t = value list

let matches (p : Lang.Ast.program) (inputs : t) =
  List.length p.params = List.length inputs
  && List.for_all2
       (fun param value ->
         match (param, value) with
         | Lang.Ast.P_fp _, Fp _ -> true
         | Lang.Ast.P_int _, Int _ -> true
         | Lang.Ast.P_fp_array (_, len), Arr a -> Array.length a = len
         | _ -> false)
       p.params inputs

let to_argv inputs =
  List.concat_map
    (function
      | Fp v -> [ Printf.sprintf "%.17g" v ]
      | Int v -> [ string_of_int v ]
      | Arr a ->
        Array.to_list (Array.map (Printf.sprintf "%.17g") a))
    inputs

let pp fmt inputs =
  let pp_value fmt = function
    | Fp v -> Format.fprintf fmt "%.17g" v
    | Int v -> Format.pp_print_int fmt v
    | Arr a ->
      Format.fprintf fmt "[%s]"
        (String.concat "; "
           (Array.to_list (Array.map (Printf.sprintf "%.17g") a)))
  in
  Format.fprintf fmt "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       pp_value)
    inputs
