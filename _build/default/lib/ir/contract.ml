type policy = No_contract | Syntactic | Cross_stmt

let policy_name = function
  | No_contract -> "none"
  | Syntactic -> "syntactic"
  | Cross_stmt -> "cross-statement"

let rec contract_expr (e : Ir.expr) : Ir.expr =
  match e with
  | Ir.Const _ | Ir.Load _ | Ir.Load_arr _ | Ir.Itof _ -> e
  | Ir.Neg inner -> Ir.Neg (contract_expr inner)
  | Ir.Recip inner -> Ir.Recip (contract_expr inner)
  | Ir.Call (fn, args) -> Ir.Call (fn, List.map contract_expr args)
  | Ir.Fma (a, b, c) ->
    Ir.Fma (contract_expr a, contract_expr b, contract_expr c)
  | Ir.Bin (op, a, b) -> begin
    let a = contract_expr a and b = contract_expr b in
    match (op, a, b) with
    | Lang.Ast.Add, Ir.Bin (Lang.Ast.Mul, x, y), c -> Ir.Fma (x, y, c)
    | Lang.Ast.Add, c, Ir.Bin (Lang.Ast.Mul, x, y) -> Ir.Fma (x, y, c)
    | Lang.Ast.Sub, Ir.Bin (Lang.Ast.Mul, x, y), c -> Ir.Fma (x, y, Ir.Neg c)
    | Lang.Ast.Sub, c, Ir.Bin (Lang.Ast.Mul, x, y) ->
      Ir.Fma (Ir.Neg x, y, c)
    | _ -> Ir.Bin (op, a, b)
  end

let run policy (ir : Ir.t) =
  match policy with
  | No_contract -> ir
  | Syntactic -> { ir with body = Ir.map_body contract_expr ir.body }
  | Cross_stmt ->
    let ir = Forward.run ir in
    { ir with body = Ir.map_body contract_expr ir.body }
