(** Lowering from the surface AST to the slot-based IR.

    Identifiers become integer slots (the accumulator [comp] is always
    slot 0), compound assignments are expanded into explicit
    load-modify-store trees, and integer-context expressions (array
    subscripts, promoted integer parameters) move into the {!Ir.iexpr}
    sub-language. Lowering performs no optimization: the resulting IR
    evaluates exactly the roundings the strict [-O0 -ffp-contract=off]
    compilation of the source would.

    Programs must pass {!Analysis.Validate.check} first; lowering raises
    {!Error} on constructs the validator rejects (e.g. a floating-point
    expression used as an array subscript). *)

exception Error of string

val program : Lang.Ast.program -> Ir.t
(** Raises {!Error} on invalid input. *)
