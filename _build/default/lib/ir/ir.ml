type iexpr =
  | Iconst of int
  | Iload of int
  | Ineg of iexpr
  | Ibin of Lang.Ast.binop * iexpr * iexpr

type expr =
  | Const of float
  | Load of int
  | Load_arr of int * iexpr
  | Itof of iexpr
  | Neg of expr
  | Bin of Lang.Ast.binop * expr * expr
  | Call of Lang.Ast.math_fn * expr list
  | Fma of expr * expr * expr
  | Recip of expr

type stmt =
  | Store of int * expr
  | Store_arr of int * iexpr * expr
  | If of { lhs : expr; cmp : Lang.Ast.cmpop; rhs : expr; body : stmt list }
  | For of { islot : int; bound : int; body : stmt list }

type param_binding = Bind_fp of int | Bind_int of int | Bind_arr of int * int

type t = {
  precision : Lang.Ast.precision;
  n_fslots : int;
  n_islots : int;
  arr_lens : int array;
  bindings : param_binding list;
  body : stmt list;
  comp_slot : int;
}

let rec expr_size = function
  | Const _ | Load _ | Itof _ -> 1
  | Load_arr _ -> 1
  | Neg e | Recip e -> 1 + expr_size e
  | Bin (_, a, b) -> 1 + expr_size a + expr_size b
  | Fma (a, b, c) -> 1 + expr_size a + expr_size b + expr_size c
  | Call (_, args) -> 1 + List.fold_left (fun acc e -> acc + expr_size e) 0 args

let equal (a : t) (b : t) = a = b

let rec pp_iexpr fmt = function
  | Iconst n -> Format.pp_print_int fmt n
  | Iload s -> Format.fprintf fmt "i%d" s
  | Ineg e -> Format.fprintf fmt "-(%a)" pp_iexpr e
  | Ibin (op, a, b) ->
    Format.fprintf fmt "(%a %s %a)" pp_iexpr a (Lang.Ast.binop_symbol op)
      pp_iexpr b

let rec pp_expr fmt = function
  | Const v -> Format.fprintf fmt "%.17g" v
  | Load s -> Format.fprintf fmt "f%d" s
  | Load_arr (s, i) -> Format.fprintf fmt "a%d[%a]" s pp_iexpr i
  | Itof i -> Format.fprintf fmt "(fp)%a" pp_iexpr i
  | Neg e -> Format.fprintf fmt "-(%a)" pp_expr e
  | Bin (op, a, b) ->
    Format.fprintf fmt "(%a %s %a)" pp_expr a (Lang.Ast.binop_symbol op)
      pp_expr b
  | Call (fn, args) ->
    Format.fprintf fmt "%s(%a)" (Lang.Ast.math_fn_name fn)
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         pp_expr)
      args
  | Fma (a, b, c) ->
    Format.fprintf fmt "fma(%a, %a, %a)" pp_expr a pp_expr b pp_expr c
  | Recip e -> Format.fprintf fmt "recip(%a)" pp_expr e

let rec pp_stmt fmt = function
  | Store (s, e) -> Format.fprintf fmt "@[f%d := %a@]" s pp_expr e
  | Store_arr (s, i, e) ->
    Format.fprintf fmt "@[a%d[%a] := %a@]" s pp_iexpr i pp_expr e
  | If { lhs; cmp; rhs; body } ->
    Format.fprintf fmt "@[<v 2>if %a %s %a {@,%a@]@,}" pp_expr lhs
      (Lang.Ast.cmpop_symbol cmp) pp_expr rhs pp_body body
  | For { islot; bound; body } ->
    Format.fprintf fmt "@[<v 2>for i%d < %d {@,%a@]@,}" islot bound pp_body
      body

and pp_body fmt body =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_cut fmt ())
    pp_stmt fmt body

let pp fmt t =
  Format.fprintf fmt
    "@[<v>ir{fslots=%d islots=%d arrays=%d comp=f%d}@,%a@]" t.n_fslots
    t.n_islots (Array.length t.arr_lens) t.comp_slot pp_body t.body

let rec map_body f body =
  List.map
    (fun s ->
      match s with
      | Store (slot, e) -> Store (slot, f e)
      | Store_arr (slot, i, e) -> Store_arr (slot, i, f e)
      | If { lhs; cmp; rhs; body } ->
        If { lhs = f lhs; cmp; rhs = f rhs; body = map_body f body }
      | For { islot; bound; body } ->
        For { islot; bound; body = map_body f body })
    body
