lib/ir/ir.mli: Format Lang
