lib/ir/contract.mli: Ir
