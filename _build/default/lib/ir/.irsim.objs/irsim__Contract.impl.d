lib/ir/contract.ml: Forward Ir Lang List
