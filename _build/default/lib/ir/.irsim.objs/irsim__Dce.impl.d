lib/ir/dce.ml: Int Ir List Set
