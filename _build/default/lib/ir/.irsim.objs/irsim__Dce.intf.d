lib/ir/dce.mli: Ir
