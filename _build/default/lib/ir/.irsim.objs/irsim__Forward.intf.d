lib/ir/forward.mli: Ir
