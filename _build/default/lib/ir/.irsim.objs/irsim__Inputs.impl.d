lib/ir/inputs.ml: Array Format Lang List Printf String
