lib/ir/fold.mli: Ir Mathlib
