lib/ir/ir.ml: Array Format Lang List
