lib/ir/interp.ml: Array Ast Float Fp Fun Inputs Int32 Ir Lang List Mathlib
