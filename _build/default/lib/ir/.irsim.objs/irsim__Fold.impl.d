lib/ir/fold.ml: Ast Fp Ir Lang List Mathlib
