lib/ir/fastmath.ml: Ast Ir Lang List
