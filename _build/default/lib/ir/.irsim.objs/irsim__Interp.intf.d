lib/ir/interp.mli: Inputs Ir Mathlib
