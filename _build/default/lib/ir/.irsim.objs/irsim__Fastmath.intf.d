lib/ir/fastmath.mli: Ir
