lib/ir/lower.mli: Ir Lang
