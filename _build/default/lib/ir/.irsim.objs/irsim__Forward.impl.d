lib/ir/forward.ml: Array Int Ir Lang List Set
