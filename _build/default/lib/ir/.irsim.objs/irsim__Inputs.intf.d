lib/ir/inputs.mli: Format Lang
