lib/ir/lower.ml: Array Ast Ir Lang List Printf
