(** Compile-time constant folding.

    Folding [+ - * /] on constants is semantically transparent (the
    compile-time rounding equals the runtime rounding), so it is enabled
    whenever a compiler optimizes at all. Folding a math-library call on
    constant arguments is the interesting case: real gcc folds through
    MPFR (correctly rounded), which can disagree with the runtime library
    in the last ulp — a genuine source of host-host inconsistency that
    LLM-style programs (rich in literal-argument calls) expose even at
    [-O0] (the paper's Table 6 gcc column). The [fold_calls] flavor says
    which library semantics the compiler evaluates with; [None] leaves
    calls alone. *)

type config = {
  fold_arith : bool;
  fold_calls : Mathlib.Libm.flavor option;
}

val nothing : config
(** No folding at all ([-O0 -ffp-contract=off] style). *)

val run : config -> Ir.t -> Ir.t
