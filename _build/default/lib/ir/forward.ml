module Int_set = Set.Make (Int)

type deps = {
  fslots : Int_set.t;   (** scalar slots the multiplication reads *)
  arrs : Int_set.t;     (** array slots it reads *)
  islots : Int_set.t;   (** integer slots its subscripts read *)
}

let empty_deps =
  { fslots = Int_set.empty; arrs = Int_set.empty; islots = Int_set.empty }

let rec ideps acc (e : Ir.iexpr) =
  match e with
  | Ir.Iconst _ -> acc
  | Ir.Iload s -> { acc with islots = Int_set.add s acc.islots }
  | Ir.Ineg e -> ideps acc e
  | Ir.Ibin (_, a, b) -> ideps (ideps acc a) b

let rec deps_of acc (e : Ir.expr) =
  match e with
  | Ir.Const _ -> acc
  | Ir.Load s -> { acc with fslots = Int_set.add s acc.fslots }
  | Ir.Load_arr (s, idx) ->
    ideps { acc with arrs = Int_set.add s acc.arrs } idx
  | Ir.Itof idx -> ideps acc idx
  | Ir.Neg e | Ir.Recip e -> deps_of acc e
  | Ir.Bin (_, a, b) -> deps_of (deps_of acc a) b
  | Ir.Fma (a, b, c) -> deps_of (deps_of (deps_of acc a) b) c
  | Ir.Call (_, args) -> List.fold_left deps_of acc args

(* Replace `Load slot` with the multiplication wherever it is a direct
   operand of an addition or subtraction. *)
let substitute slot mul e =
  let sub_operand operand =
    match operand with Ir.Load s when s = slot -> mul | _ -> operand
  in
  let rec go e =
    match e with
    | Ir.Const _ | Ir.Load _ | Ir.Load_arr _ | Ir.Itof _ -> e
    | Ir.Neg e -> Ir.Neg (go e)
    | Ir.Recip e -> Ir.Recip (go e)
    | Ir.Bin (((Lang.Ast.Add | Lang.Ast.Sub) as op), a, b) ->
      Ir.Bin (op, sub_operand (go a), sub_operand (go b))
    | Ir.Bin (op, a, b) -> Ir.Bin (op, go a, go b)
    | Ir.Fma (a, b, c) -> Ir.Fma (go a, go b, sub_operand (go c))
    | Ir.Call (fn, args) -> Ir.Call (fn, List.map go args)
  in
  go e

let is_mul = function Ir.Bin (Lang.Ast.Mul, _, _) -> true | _ -> false

let forward_block comp_slot body =
  let arr = Array.of_list body in
  let n = Array.length arr in
  for i = 0 to n - 1 do
    match arr.(i) with
    | Ir.Store (slot, mul)
      when slot <> comp_slot && is_mul mul
           && not (Int_set.mem slot (deps_of empty_deps mul).fslots) ->
      (* self-referential defs (t = t * x) must not forward: at the use
         site the recomputed product would read the new value of t *)
      let deps = deps_of empty_deps mul in
      let blocked = ref false in
      let j = ref (i + 1) in
      while (not !blocked) && !j < n do
        (match arr.(!j) with
         | Ir.Store (s', e') ->
           arr.(!j) <- Ir.Store (s', substitute slot mul e');
           if s' = slot || Int_set.mem s' deps.fslots then blocked := true
         | Ir.Store_arr (a', idx, e') ->
           arr.(!j) <- Ir.Store_arr (a', idx, substitute slot mul e');
           if Int_set.mem a' deps.arrs then blocked := true
         | Ir.If _ | Ir.For _ ->
           (* Control flow may iterate or skip redefinitions; stop
              conservatively. *)
           blocked := true);
        incr j
      done
    | Ir.Store _ | Ir.Store_arr _ | Ir.If _ | Ir.For _ -> ()
  done;
  Array.to_list arr

let run (ir : Ir.t) =
  let rec walk body =
    let body =
      List.map
        (fun (s : Ir.stmt) ->
          match s with
          | Ir.If r -> Ir.If { r with body = walk r.body }
          | Ir.For r -> Ir.For { r with body = walk r.body }
          | Ir.Store _ | Ir.Store_arr _ -> s)
        body
    in
    forward_block ir.comp_slot body
  in
  { ir with body = walk ir.body }
