let two_sum a b =
  let s = a +. b in
  let bb = s -. a in
  let e = (a -. (s -. bb)) +. (b -. bb) in
  (s, e)

let fast_two_sum a b =
  let s = a +. b in
  let e = b -. (s -. a) in
  (s, e)

let splitter = 0x1p27 +. 1.0 (* 2^27 + 1 *)

let split a =
  let c = splitter *. a in
  let hi = c -. (c -. a) in
  let lo = a -. hi in
  (hi, lo)

let two_prod a b =
  let p = a *. b in
  let ah, al = split a in
  let bh, bl = split b in
  let e = ((ah *. bh -. p) +. (ah *. bl) +. (al *. bh)) +. (al *. bl) in
  (p, e)

module Dd = struct
  type t = { hi : float; lo : float }

  let of_float x = { hi = x; lo = 0.0 }
  let to_float t = t.hi +. t.lo

  let of_sum a b =
    let hi, lo = two_sum a b in
    { hi; lo }

  let of_prod a b =
    let hi, lo = two_prod a b in
    { hi; lo }

  let add x y =
    let s, e = two_sum x.hi y.hi in
    let e = e +. x.lo +. y.lo in
    let hi, lo = fast_two_sum s e in
    { hi; lo }

  let add_float x f = add x (of_float f)

  let mul x y =
    let p, e = two_prod x.hi y.hi in
    let e = e +. (x.hi *. y.lo) +. (x.lo *. y.hi) in
    let hi, lo = fast_two_sum p e in
    { hi; lo }

  let mul_float x f = mul x (of_float f)
end
