lib/fp/digits.ml: Float Int64 Printf Seq Stdlib String
