lib/fp/bits.ml: Float Int32 Int64 Printf String
