lib/fp/bits.mli:
