lib/fp/eft.mli:
