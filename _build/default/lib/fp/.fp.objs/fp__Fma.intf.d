lib/fp/fma.mli:
