lib/fp/eft.ml:
