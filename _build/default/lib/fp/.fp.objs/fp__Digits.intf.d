lib/fp/digits.mli:
