lib/fp/fma.ml: Eft Float Int64
