(** Bit-level views of IEEE-754 binary64 values.

    The paper detects an inconsistency when two results "are not equal in
    their bitwise representations, i.e., the hexadecimal encoding of the
    floating-point result, such as when two 64-bit doubles yield different
    16-character strings" (§2.4). This module provides that encoding, the
    value classification used by RQ2, and ulp-level utilities used by the
    simulated math libraries. *)

type class_ =
  | Real  (** normal or subnormal non-zero finite value *)
  | Zero  (** +0.0 or -0.0 *)
  | Pos_inf
  | Neg_inf
  | Nan

val classify : float -> class_
(** Classification per the paper's five categories (§3.3). *)

val class_name : class_ -> string
(** ["Real"], ["Zero"], ["+Inf"], ["-Inf"], ["NaN"]. *)

val class_pair_name : class_ -> class_ -> string
(** Unordered pair label, e.g. ["{Real, Zero}"]. The order is normalized so
    [{a,b}] and [{b,a}] render identically. *)

val hex_of_double : float -> string
(** The 16-character lowercase hexadecimal encoding of the 64 bits. *)

val double_of_hex : string -> float
(** Inverse of [hex_of_double]. Raises [Invalid_argument] on malformed
    input. *)

val bits_of_double : float -> int64
val double_of_bits : int64 -> float

val is_subnormal : float -> bool
(** Non-zero value with a zero biased exponent field. *)

val flush_subnormal : float -> float
(** Flush-to-zero: subnormals become a zero of the same sign; everything
    else is unchanged. Models device fast-math FTZ. *)

val ulp : float -> float
(** Unit in the last place of a finite value: the gap to the next
    representable magnitude. [ulp 0.] is the smallest subnormal. *)

val next_up : float -> float
(** Next representable value toward +infinity. *)

val next_down : float -> float
(** Next representable value toward -infinity. *)

val nudge_ulps : float -> int -> float
(** [nudge_ulps x n] moves [x] by [n] representable steps ([n] may be
    negative). Non-finite inputs are returned unchanged. *)

val nudge_ulps32 : float -> int -> float
(** Like {!nudge_ulps}, but on the binary32 grid: [x] is rounded to
    single precision and moved by [n] single-precision steps. Used when
    modelling vendor divergence of the float math functions
    (sinf/__sinf and friends). *)

val ulp_distance : float -> float -> int64
(** Number of representable doubles strictly between the two finite values
    plus one (0 when bitwise equal, including the -0.0/+0.0 pair at
    distance 1). Raises [Invalid_argument] on NaN. *)
