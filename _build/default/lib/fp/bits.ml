type class_ = Real | Zero | Pos_inf | Neg_inf | Nan

let classify x =
  match Float.classify_float x with
  | FP_zero -> Zero
  | FP_infinite -> if x > 0.0 then Pos_inf else Neg_inf
  | FP_nan -> Nan
  | FP_normal | FP_subnormal -> Real

let class_name = function
  | Real -> "Real"
  | Zero -> "Zero"
  | Pos_inf -> "+Inf"
  | Neg_inf -> "-Inf"
  | Nan -> "NaN"

let class_rank = function
  | Real -> 0
  | Zero -> 1
  | Pos_inf -> 2
  | Neg_inf -> 3
  | Nan -> 4

let class_pair_name a b =
  let a, b = if class_rank a <= class_rank b then (a, b) else (b, a) in
  Printf.sprintf "{%s, %s}" (class_name a) (class_name b)

let bits_of_double = Int64.bits_of_float
let double_of_bits = Int64.float_of_bits

let hex_of_double x = Printf.sprintf "%016Lx" (bits_of_double x)

let double_of_hex s =
  if String.length s <> 16 then invalid_arg "Bits.double_of_hex: need 16 hex chars";
  match Int64.of_string_opt ("0x" ^ s) with
  | Some bits -> double_of_bits bits
  | None -> invalid_arg "Bits.double_of_hex: malformed hex"

let is_subnormal x = Float.classify_float x = FP_subnormal

let flush_subnormal x =
  if is_subnormal x then if Float.sign_bit x then -0.0 else 0.0 else x

let ulp x =
  match Float.classify_float x with
  | FP_nan -> Float.nan
  | FP_infinite -> Float.infinity
  | FP_zero -> Float.min_float *. 0x1p-52 (* smallest subnormal *)
  | FP_normal | FP_subnormal ->
    let ax = Float.abs x in
    Float.succ ax -. ax

let next_up = Float.succ
let next_down = Float.pred

(* Map the sign-magnitude bit pattern onto a monotone integer line so that
   stepping by 1 walks through adjacent representable values. Negative
   values (sign bit set, i.e. negative as a signed int64) map magnitude
   [mag] to [-(mag)-1], so -0.0 sits at -1, just below +0.0 at 0. *)
let monotone_of_bits b =
  if Int64.compare b 0L < 0 then Int64.lognot (Int64.logand b Int64.max_int)
  else b

let bits_of_monotone m =
  if Int64.compare m 0L < 0 then Int64.logor Int64.min_int (Int64.lognot m)
  else m

let nudge_ulps x n =
  match Float.classify_float x with
  | FP_nan | FP_infinite -> x
  | FP_zero | FP_normal | FP_subnormal ->
    let m = monotone_of_bits (bits_of_double x) in
    double_of_bits (bits_of_monotone (Int64.add m (Int64.of_int n)))

let monotone32_of_bits b =
  if Int32.compare b 0l < 0 then Int32.lognot (Int32.logand b Int32.max_int)
  else b

let bits32_of_monotone m =
  if Int32.compare m 0l < 0 then Int32.logor Int32.min_int (Int32.lognot m)
  else m

let nudge_ulps32 x n =
  match Float.classify_float x with
  | FP_nan | FP_infinite -> x
  | FP_zero | FP_normal | FP_subnormal ->
    let x32 = Int32.float_of_bits (Int32.bits_of_float x) in
    if Float.is_finite x32 then
      let m = monotone32_of_bits (Int32.bits_of_float x32) in
      Int32.float_of_bits (bits32_of_monotone (Int32.add m (Int32.of_int n)))
    else x32

let ulp_distance a b =
  if Float.is_nan a || Float.is_nan b then invalid_arg "Bits.ulp_distance: NaN";
  let ma = monotone_of_bits (bits_of_double a) in
  let mb = monotone_of_bits (bits_of_double b) in
  Int64.abs (Int64.sub ma mb)
