(** Error-free transformations on binary64 values.

    These classical building blocks (Møller/Knuth TwoSum, Dekker splitting
    and TwoProd) return both the rounded result of an operation and its
    exact rounding error. The simulated math libraries use them to evaluate
    polynomial approximations in double-double arithmetic, and the software
    FMA is built from them. *)

val two_sum : float -> float -> float * float
(** [two_sum a b = (s, e)] with [s = fl(a+b)] and [s + e = a + b] exactly
    (for finite values without intermediate overflow). Knuth's branch-free
    6-operation version. *)

val fast_two_sum : float -> float -> float * float
(** Dekker's 3-operation variant; requires [|a| >= |b|] (or one of them
    zero) for the error term to be exact. *)

val split : float -> float * float
(** Dekker splitting: [split a = (hi, lo)] with [a = hi + lo] and both
    halves representable in 26 bits of significand, so that products of
    halves are exact. Valid when [|a| < 2^996]. *)

val two_prod : float -> float -> float * float
(** [two_prod a b = (p, e)] with [p = fl(a*b)] and [p + e = a * b] exactly
    (finite, non-overflowing range). Uses [split]. *)

(** Double-double arithmetic: an unevaluated sum [hi + lo] with
    [|lo| <= ulp(hi)/2], giving roughly 106 bits of precision. Used by the
    simulated math libraries for near-correctly-rounded references. *)
module Dd : sig
  type t = { hi : float; lo : float }

  val of_float : float -> t
  val to_float : t -> float
  val add : t -> t -> t
  val add_float : t -> float -> t
  val mul : t -> t -> t
  val mul_float : t -> float -> t
  val of_sum : float -> float -> t
  (** Exact sum of two doubles. *)

  val of_prod : float -> float -> t
  (** Exact product of two doubles (non-overflowing range). *)
end
