let fp_type_name = function Ast.F32 -> "float" | Ast.F64 -> "double"

let lit_to_string v =
  if not (Float.is_finite v) then
    invalid_arg "Pp.lit_to_string: non-finite literal";
  let s = Printf.sprintf "%.17g" v in
  let has_marker =
    String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s
  in
  if has_marker then s else s ^ ".0"

let math_call_name precision fn =
  let base = Ast.math_fn_name fn in
  match precision with Ast.F64 -> base | Ast.F32 -> base ^ "f"

(* Precedence levels: additive 1, multiplicative 2, unary minus 3, atoms 4.
   Operands are parenthesized whenever a left-associative re-parse would
   rebuild a different tree, preserving FP evaluation order. *)
let rec level = function
  | Ast.Lit v -> if v < 0.0 || (v = 0.0 && Float.sign_bit v) then 3 else 4
  | Ast.Int_lit n -> if n < 0 then 3 else 4
  | Ast.Var _ | Ast.Index _ | Ast.Call _ -> 4
  | Ast.Neg _ -> 3
  | Ast.Bin ((Ast.Add | Ast.Sub), _, _) -> 1
  | Ast.Bin ((Ast.Mul | Ast.Div), _, _) -> 2

and expr_to_string precision e =
  let rec go min_level e =
    let s =
      match e with
      | Ast.Lit v -> lit_to_string v
      | Ast.Int_lit n -> string_of_int n
      | Ast.Var name -> name
      | Ast.Index (arr, idx) -> Printf.sprintf "%s[%s]" arr (go 0 idx)
      | Ast.Neg inner ->
        (* A numeral directly after '-' would re-parse as a negative
           literal; parenthesize it to keep Neg in the tree. *)
        let inner_s =
          match inner with
          | Ast.Lit _ | Ast.Int_lit _ -> "(" ^ go 0 inner ^ ")"
          | _ -> go 4 inner
        in
        "-" ^ inner_s
      | Ast.Bin (op, l, r) ->
        let lv = level e in
        Printf.sprintf "%s %s %s" (go lv l) (Ast.binop_symbol op) (go (lv + 1) r)
      | Ast.Call (fn, args) ->
        let rendered = List.map (go 0) args in
        Printf.sprintf "%s(%s)" (math_call_name precision fn)
          (String.concat ", " rendered)
    in
    if level e < min_level then "(" ^ s ^ ")" else s
  in
  go 0 e

let lvalue_to_string precision = function
  | Ast.Lv_var name -> name
  | Ast.Lv_index (arr, idx) ->
    Printf.sprintf "%s[%s]" arr (expr_to_string precision idx)

let rec stmt_to_lines precision depth stmt =
  let pad = String.make (2 * depth) ' ' in
  match stmt with
  | Ast.Decl { name; init } ->
    [ Printf.sprintf "%s%s %s = %s;" pad (fp_type_name precision) name
        (expr_to_string precision init) ]
  | Ast.Assign { lhs; op; rhs } ->
    [ Printf.sprintf "%s%s %s %s;" pad
        (lvalue_to_string precision lhs)
        (Ast.assign_op_symbol op)
        (expr_to_string precision rhs) ]
  | Ast.If { lhs; cmp; rhs; body } ->
    (Printf.sprintf "%sif (%s %s %s) {" pad
       (expr_to_string precision lhs)
       (Ast.cmpop_symbol cmp)
       (expr_to_string precision rhs))
    :: body_lines precision (depth + 1) body
    @ [ pad ^ "}" ]
  | Ast.For { var; bound; body } ->
    (Printf.sprintf "%sfor (int %s = 0; %s < %d; ++%s) {" pad var var bound var)
    :: body_lines precision (depth + 1) body
    @ [ pad ^ "}" ]

and body_lines precision depth body =
  List.concat_map (stmt_to_lines precision depth) body

let param_to_string precision = function
  | Ast.P_int name -> "int " ^ name
  | Ast.P_fp name -> fp_type_name precision ^ " " ^ name
  | Ast.P_fp_array (name, _) -> fp_type_name precision ^ "* " ^ name

let compute_signature ~cuda (p : Ast.program) =
  let params =
    p.params |> List.map (param_to_string p.precision) |> String.concat ", "
  in
  let qualifier = if cuda then "__global__ " else "" in
  Printf.sprintf "%svoid compute(%s)" qualifier params

let result_format = function Ast.F32 -> "%.9e" | Ast.F64 -> "%.17g"

let compute_to_string ?(cuda = false) (p : Ast.program) =
  let header = compute_signature ~cuda p ^ " {" in
  let decl_comp =
    Printf.sprintf "  %s %s = 0.0;" (fp_type_name p.precision) Ast.comp_name
  in
  let print_result =
    Printf.sprintf "  printf(\"%s\\n\", %s);" (result_format p.precision)
      Ast.comp_name
  in
  String.concat "\n"
    ((header :: decl_comp :: body_lines p.precision 1 p.body)
    @ [ print_result; "}" ])

let arg_order_doc =
  "argv convention: parameters are read left to right; an int parameter \
   consumes one argv entry (atoi), a scalar fp parameter one entry (atof), \
   and an fp array of length L consumes L consecutive entries."

let includes = [ "#include <stdio.h>"; "#include <stdlib.h>"; "#include <math.h>" ]

let main_reads (p : Ast.program) =
  let buf = Buffer.create 256 in
  let arg = ref 1 in
  let call_args = ref [] in
  List.iter
    (fun prm ->
      match prm with
      | Ast.P_int name ->
        Buffer.add_string buf
          (Printf.sprintf "  int %s = atoi(argv[%d]);\n" name !arg);
        incr arg;
        call_args := name :: !call_args
      | Ast.P_fp name ->
        Buffer.add_string buf
          (Printf.sprintf "  %s %s = atof(argv[%d]);\n"
             (fp_type_name p.precision) name !arg);
        incr arg;
        call_args := name :: !call_args
      | Ast.P_fp_array (name, len) ->
        Buffer.add_string buf
          (Printf.sprintf "  %s %s[%d];\n" (fp_type_name p.precision) name len);
        Buffer.add_string buf
          (Printf.sprintf
             "  for (int i_%s = 0; i_%s < %d; ++i_%s) { %s[i_%s] = \
              atof(argv[%d + i_%s]); }\n"
             name name len name name name !arg name);
        arg := !arg + len;
        call_args := name :: !call_args)
    p.params;
  (Buffer.contents buf, List.rev !call_args)

let to_c (p : Ast.program) =
  let reads, call_args = main_reads p in
  String.concat "\n"
    (includes
    @ [ "";
        compute_to_string ~cuda:false p;
        "";
        "int main(int argc, char* argv[]) {";
        reads
        ^ Printf.sprintf "  compute(%s);" (String.concat ", " call_args);
        "  return 0;";
        "}";
        "" ])

let to_cuda (p : Ast.program) =
  let reads, call_args = main_reads p in
  let array_copies =
    p.params
    |> List.filter_map (function
         | Ast.P_fp_array (name, len) ->
           Some
             (Printf.sprintf
                "  %s* d_%s;\n\
                 \  cudaMallocManaged(&d_%s, %d * sizeof(%s));\n\
                 \  for (int i_%s = 0; i_%s < %d; ++i_%s) { d_%s[i_%s] = \
                 %s[i_%s]; }"
                (fp_type_name p.precision) name name len
                (fp_type_name p.precision) name name len name name name name
                name)
         | Ast.P_int _ | Ast.P_fp _ -> None)
    |> String.concat "\n"
  in
  let kernel_args =
    List.map
      (fun prm ->
        match prm with
        | Ast.P_fp_array (name, _) -> "d_" ^ name
        | Ast.P_int name | Ast.P_fp name -> name)
      p.params
  in
  ignore call_args;
  String.concat "\n"
    (includes
    @ [ "";
        compute_to_string ~cuda:true p;
        "";
        "int main(int argc, char* argv[]) {";
        reads ^ array_copies;
        Printf.sprintf "  compute<<<1, 1>>>(%s);" (String.concat ", " kernel_args);
        "  cudaDeviceSynchronize();";
        "  return 0;";
        "}";
        "" ])
