lib/lang/ast.ml: Array Digest Hashtbl List Marshal Option Printf
