lib/lang/pp.ml: Ast Buffer Float List Printf String
