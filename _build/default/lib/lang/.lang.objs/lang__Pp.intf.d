lib/lang/pp.mli: Ast
