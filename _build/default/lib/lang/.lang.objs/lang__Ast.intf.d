lib/lang/ast.mli:
