(** Source emission for mini-C programs.

    Renders an AST to compilable C text (host path) or CUDA text (device
    path, the paper's "C to CUDA code translation": [compute] becomes a
    [__global__] kernel launched from [main] with a single block and a
    single thread, §2.4). The emitted text is what the diversity metrics
    (CodeBLEU, clone detection) and the mock LLM's prompts operate on.

    Expression printing preserves the AST shape: operands are parenthesized
    whenever re-parsing would otherwise rebuild a different tree, so
    [Parse.program (to_c p)] round-trips to [p] (see the parser tests).
    Shape preservation matters because floating-point evaluation order is
    semantically significant. *)

val fp_type_name : Ast.precision -> string
(** ["float"] or ["double"]. *)

val lit_to_string : float -> string
(** A decimal literal that parses back to the identical double (17
    significant digits, always containing ['.'], ['e'], or a non-finite
    spelling). *)

val math_call_name : Ast.precision -> Ast.math_fn -> string
(** C spelling, with the ['f'] suffix for single precision. *)

val expr_to_string : Ast.precision -> Ast.expr -> string

val stmt_to_lines : Ast.precision -> int -> Ast.stmt -> string list
(** Indented source lines for one statement. *)

val compute_signature : cuda:bool -> Ast.program -> string
(** The [compute] prototype line, e.g.
    ["void compute(double a, double* arr, int n)"], with [__global__]
    prepended for CUDA. *)

val compute_to_string : ?cuda:bool -> Ast.program -> string
(** The [compute] function definition only. *)

val to_c : Ast.program -> string
(** Full host translation unit: includes, [compute], and a [main] that
    reads inputs from [argv] (scalars with [atof]/[atoi]; arrays as
    [length] consecutive [argv] entries) and prints the result. *)

val to_cuda : Ast.program -> string
(** Full device translation unit with managed allocations and a
    single-thread kernel launch. *)

val arg_order_doc : string
(** Human-readable description of the [argv] convention shared with the
    input generator. *)
