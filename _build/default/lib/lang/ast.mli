(** Abstract syntax of the Varity mini-C floating-point language.

    The paper adopts Varity's high-level program structure (§2.2): every
    test program has exactly two functions, [main] and [compute]. [compute]
    takes scalar and array floating-point parameters plus integer
    parameters, performs a sequence of arithmetic statements over a
    distinguished accumulator variable [comp], and the final value of
    [comp] is printed by [main]. The internal structure follows the grammar
    of Figure 2: arithmetic expressions over [+ - * /], parentheses, calls
    into the C math library, nested counted [for] loops, [if] blocks, and
    named floating-point temporaries (scalars or array elements). *)

type precision = F32 | F64

type binop = Add | Sub | Mul | Div

type cmpop = Lt | Le | Gt | Ge | Eq | Ne

(** Math-library functions available to generated programs (a practical
    subset of [math.h] that Varity and the LLM prompts use). Unary unless
    noted. *)
type math_fn =
  | Sin | Cos | Tan | Asin | Acos | Atan
  | Sinh | Cosh | Tanh
  | Exp | Exp2 | Expm1
  | Log | Log2 | Log10 | Log1p
  | Sqrt | Cbrt
  | Fabs | Floor | Ceil
  | Pow   (** binary *)
  | Fmod  (** binary *)
  | Atan2 (** binary *)
  | Hypot (** binary *)
  | Fmin  (** binary *)
  | Fmax  (** binary *)

type expr =
  | Lit of float          (** floating-point literal *)
  | Int_lit of int        (** integer literal (loop bounds, indices) *)
  | Var of string         (** scalar variable or loop counter *)
  | Index of string * expr  (** array element [a\[e\]] *)
  | Neg of expr           (** unary minus *)
  | Bin of binop * expr * expr
  | Call of math_fn * expr list

type lvalue =
  | Lv_var of string
  | Lv_index of string * expr

type assign_op = Set | Add_eq | Sub_eq | Mul_eq | Div_eq

type stmt =
  | Decl of { name : string; init : expr }
      (** [fp_type name = init;] — a new floating-point temporary *)
  | Assign of { lhs : lvalue; op : assign_op; rhs : expr }
  | If of { lhs : expr; cmp : cmpop; rhs : expr; body : stmt list }
  | For of { var : string; bound : int; body : stmt list }
      (** [for (int var = 0; var < bound; ++var) { body }] *)

type param =
  | P_int of string
  | P_fp of string
  | P_fp_array of string * int  (** name and allocation length *)

type program = {
  precision : precision;
  params : param list;
  body : stmt list;
}
(** The [compute] function. The accumulator [comp] is implicitly declared
    as [fp_type comp = 0.0;] before [body] and printed by [main]. *)

val comp_name : string
(** The distinguished accumulator, ["comp"]. *)

val param_name : param -> string

val math_fn_name : math_fn -> string
(** C spelling for double precision (e.g. ["sin"], ["pow"]). *)

val math_fn_of_name : string -> math_fn option
(** Inverse of [math_fn_name]. *)

val math_fn_arity : math_fn -> int
(** 1 or 2. *)

val all_math_fns : math_fn array
(** Every supported function, in declaration order. *)

val binop_symbol : binop -> string
val cmpop_symbol : cmpop -> string
val assign_op_symbol : assign_op -> string

(** {1 Structure metrics} *)

val expr_size : expr -> int
(** Node count. *)

val expr_depth : expr -> int

val stmt_size : stmt -> int
val program_size : program -> int
(** Total AST node count of the body plus parameters. *)

val program_depth : program -> int
(** Maximum statement-nesting depth (loops/ifs). *)

val loop_count : program -> int
val call_count : program -> int
val max_loop_bound : program -> int
(** 0 when the program has no loop. *)

(** {1 Variable utilities} *)

val fold_expr : ('a -> expr -> 'a) -> 'a -> expr -> 'a
(** Pre-order fold over an expression and all sub-expressions. *)

val fold_stmts : ('a -> stmt -> 'a) -> ('a -> expr -> 'a) -> 'a -> stmt list -> 'a
(** Pre-order fold over statements and every contained expression. *)

val map_exprs : (expr -> expr) -> stmt list -> stmt list
(** Rewrite every top-level expression position (initializers, right-hand
    sides, condition operands, index expressions) with [f]. [f] receives
    whole expressions; it is responsible for its own recursion. *)

val declared_names : program -> string list
(** Parameter names, loop counters, and declared temporaries, in first-
    occurrence order (excluding [comp]). *)

val used_names : program -> string list
(** Names read anywhere in the body, in first-occurrence order. *)

val fresh_name : program -> string -> string
(** [fresh_name p base] is [base] or [base ^ suffix], distinct from every
    declared or used name and from [comp]. *)

val rename : (string -> string) -> program -> program
(** Apply a renaming to every identifier occurrence (parameters,
    declarations, uses, loop counters). The caller must keep the renaming
    injective to preserve semantics. *)

val alpha_normalize : program -> program
(** Canonical consistent renaming: parameters become [p0, p1, ...],
    temporaries and counters [v0, v1, ...] in declaration order. Two
    programs equal after [alpha_normalize] are Type-2c clones. *)

val equal : program -> program -> bool
(** Structural equality. *)

val structural_hash : program -> int
(** Hash invariant under [alpha_normalize]-equivalence (identifier names
    and nothing else are ignored); literals are included. *)
