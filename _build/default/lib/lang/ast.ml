type precision = F32 | F64
type binop = Add | Sub | Mul | Div
type cmpop = Lt | Le | Gt | Ge | Eq | Ne

type math_fn =
  | Sin | Cos | Tan | Asin | Acos | Atan
  | Sinh | Cosh | Tanh
  | Exp | Exp2 | Expm1
  | Log | Log2 | Log10 | Log1p
  | Sqrt | Cbrt
  | Fabs | Floor | Ceil
  | Pow | Fmod | Atan2 | Hypot | Fmin | Fmax

type expr =
  | Lit of float
  | Int_lit of int
  | Var of string
  | Index of string * expr
  | Neg of expr
  | Bin of binop * expr * expr
  | Call of math_fn * expr list

type lvalue = Lv_var of string | Lv_index of string * expr

type assign_op = Set | Add_eq | Sub_eq | Mul_eq | Div_eq

type stmt =
  | Decl of { name : string; init : expr }
  | Assign of { lhs : lvalue; op : assign_op; rhs : expr }
  | If of { lhs : expr; cmp : cmpop; rhs : expr; body : stmt list }
  | For of { var : string; bound : int; body : stmt list }

type param = P_int of string | P_fp of string | P_fp_array of string * int

type program = {
  precision : precision;
  params : param list;
  body : stmt list;
}

let comp_name = "comp"

let param_name = function
  | P_int n | P_fp n | P_fp_array (n, _) -> n

let math_fn_name = function
  | Sin -> "sin" | Cos -> "cos" | Tan -> "tan"
  | Asin -> "asin" | Acos -> "acos" | Atan -> "atan"
  | Sinh -> "sinh" | Cosh -> "cosh" | Tanh -> "tanh"
  | Exp -> "exp" | Exp2 -> "exp2" | Expm1 -> "expm1"
  | Log -> "log" | Log2 -> "log2" | Log10 -> "log10" | Log1p -> "log1p"
  | Sqrt -> "sqrt" | Cbrt -> "cbrt"
  | Fabs -> "fabs" | Floor -> "floor" | Ceil -> "ceil"
  | Pow -> "pow" | Fmod -> "fmod" | Atan2 -> "atan2"
  | Hypot -> "hypot" | Fmin -> "fmin" | Fmax -> "fmax"

let all_math_fns =
  [| Sin; Cos; Tan; Asin; Acos; Atan; Sinh; Cosh; Tanh;
     Exp; Exp2; Expm1; Log; Log2; Log10; Log1p; Sqrt; Cbrt;
     Fabs; Floor; Ceil; Pow; Fmod; Atan2; Hypot; Fmin; Fmax |]

let math_fn_of_name name =
  Array.find_opt (fun f -> math_fn_name f = name) all_math_fns

let math_fn_arity = function
  | Pow | Fmod | Atan2 | Hypot | Fmin | Fmax -> 2
  | Sin | Cos | Tan | Asin | Acos | Atan | Sinh | Cosh | Tanh
  | Exp | Exp2 | Expm1 | Log | Log2 | Log10 | Log1p | Sqrt | Cbrt
  | Fabs | Floor | Ceil -> 1

let binop_symbol = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"

let cmpop_symbol = function
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="

let assign_op_symbol = function
  | Set -> "=" | Add_eq -> "+=" | Sub_eq -> "-=" | Mul_eq -> "*=" | Div_eq -> "/="

(* ------------------------------------------------------------------ *)
(* Metrics *)

let rec expr_size = function
  | Lit _ | Int_lit _ | Var _ -> 1
  | Index (_, e) | Neg e -> 1 + expr_size e
  | Bin (_, a, b) -> 1 + expr_size a + expr_size b
  | Call (_, args) -> 1 + List.fold_left (fun acc e -> acc + expr_size e) 0 args

let rec expr_depth = function
  | Lit _ | Int_lit _ | Var _ -> 1
  | Index (_, e) | Neg e -> 1 + expr_depth e
  | Bin (_, a, b) -> 1 + max (expr_depth a) (expr_depth b)
  | Call (_, args) ->
    1 + List.fold_left (fun acc e -> max acc (expr_depth e)) 0 args

let rec stmt_size = function
  | Decl { init; _ } -> 1 + expr_size init
  | Assign { lhs; rhs; _ } ->
    let lhs_size = match lhs with Lv_var _ -> 1 | Lv_index (_, e) -> 1 + expr_size e in
    1 + lhs_size + expr_size rhs
  | If { lhs; rhs; body; _ } ->
    1 + expr_size lhs + expr_size rhs + body_size body
  | For { body; _ } -> 2 + body_size body

and body_size body = List.fold_left (fun acc s -> acc + stmt_size s) 0 body

let program_size p = List.length p.params + body_size p.body

let rec stmt_depth = function
  | Decl _ | Assign _ -> 1
  | If { body; _ } | For { body; _ } -> 1 + body_depth body

and body_depth body = List.fold_left (fun acc s -> max acc (stmt_depth s)) 0 body

let program_depth p = body_depth p.body

let rec count_stmts pred body =
  List.fold_left
    (fun acc s ->
      let inner =
        match s with
        | If { body; _ } | For { body; _ } -> count_stmts pred body
        | Decl _ | Assign _ -> 0
      in
      acc + (if pred s then 1 else 0) + inner)
    0 body

let loop_count p =
  count_stmts (function For _ -> true | Decl _ | Assign _ | If _ -> false) p.body

let rec fold_expr f acc e =
  let acc = f acc e in
  match e with
  | Lit _ | Int_lit _ | Var _ -> acc
  | Index (_, e) | Neg e -> fold_expr f acc e
  | Bin (_, a, b) -> fold_expr f (fold_expr f acc a) b
  | Call (_, args) -> List.fold_left (fold_expr f) acc args

let rec fold_stmts fs fe acc body =
  List.fold_left
    (fun acc s ->
      let acc = fs acc s in
      match s with
      | Decl { init; _ } -> fold_expr fe acc init
      | Assign { lhs; rhs; _ } ->
        let acc =
          match lhs with
          | Lv_var _ -> acc
          | Lv_index (_, e) -> fold_expr fe acc e
        in
        fold_expr fe acc rhs
      | If { lhs; rhs; body; _ } ->
        let acc = fold_expr fe acc lhs in
        let acc = fold_expr fe acc rhs in
        fold_stmts fs fe acc body
      | For { body; _ } -> fold_stmts fs fe acc body)
    acc body

let call_count p =
  fold_stmts
    (fun acc _ -> acc)
    (fun acc e -> match e with Call _ -> acc + 1 | _ -> acc)
    0 p.body

let max_loop_bound p =
  fold_stmts
    (fun acc s -> match s with For { bound; _ } -> max acc bound | _ -> acc)
    (fun acc _ -> acc)
    0 p.body

let rec map_stmts f body =
  List.map
    (fun s ->
      match s with
      | Decl { name; init } -> Decl { name; init = f init }
      | Assign { lhs; op; rhs } ->
        let lhs =
          match lhs with
          | Lv_var _ as lv -> lv
          | Lv_index (a, e) -> Lv_index (a, f e)
        in
        Assign { lhs; op; rhs = f rhs }
      | If { lhs; cmp; rhs; body } ->
        If { lhs = f lhs; cmp; rhs = f rhs; body = map_stmts f body }
      | For { var; bound; body } -> For { var; bound; body = map_stmts f body })
    body

let map_exprs = map_stmts

(* ------------------------------------------------------------------ *)
(* Names *)

let add_unique seen order name =
  if Hashtbl.mem seen name then ()
  else begin
    Hashtbl.add seen name ();
    order := name :: !order
  end

let declared_names p =
  let seen = Hashtbl.create 16 and order = ref [] in
  List.iter (fun prm -> add_unique seen order (param_name prm)) p.params;
  let rec walk body =
    List.iter
      (fun s ->
        match s with
        | Decl { name; _ } -> add_unique seen order name
        | Assign _ -> ()
        | If { body; _ } -> walk body
        | For { var; body; _ } ->
          add_unique seen order var;
          walk body)
      body
  in
  walk p.body;
  List.rev !order

let used_names p =
  let seen = Hashtbl.create 16 and order = ref [] in
  let note_expr () e =
    match e with
    | Var n | Index (n, _) -> add_unique seen order n
    | Lit _ | Int_lit _ | Neg _ | Bin _ | Call _ -> ()
  in
  let note_stmt () s =
    match s with
    | Assign { lhs = Lv_var n; _ } | Assign { lhs = Lv_index (n, _); _ } ->
      add_unique seen order n
    | Decl _ | If _ | For _ -> ()
  in
  fold_stmts note_stmt note_expr () p.body;
  List.rev !order

let fresh_name p base =
  let taken = Hashtbl.create 16 in
  Hashtbl.add taken comp_name ();
  List.iter (fun n -> Hashtbl.add taken n ()) (declared_names p);
  List.iter (fun n -> Hashtbl.replace taken n ()) (used_names p);
  if not (Hashtbl.mem taken base) then base
  else
    let rec go i =
      let candidate = Printf.sprintf "%s_%d" base i in
      if Hashtbl.mem taken candidate then go (i + 1) else candidate
    in
    go 1

let rename f p =
  let f name = if name = comp_name then comp_name else f name in
  let rec rn_expr e =
    match e with
    | Lit _ | Int_lit _ -> e
    | Var n -> Var (f n)
    | Index (a, e) -> Index (f a, rn_expr e)
    | Neg e -> Neg (rn_expr e)
    | Bin (op, a, b) -> Bin (op, rn_expr a, rn_expr b)
    | Call (fn, args) -> Call (fn, List.map rn_expr args)
  in
  let rec rn_body body =
    List.map
      (fun s ->
        match s with
        | Decl { name; init } -> Decl { name = f name; init = rn_expr init }
        | Assign { lhs; op; rhs } ->
          let lhs =
            match lhs with
            | Lv_var n -> Lv_var (f n)
            | Lv_index (a, e) -> Lv_index (f a, rn_expr e)
          in
          Assign { lhs; op; rhs = rn_expr rhs }
        | If { lhs; cmp; rhs; body } ->
          If { lhs = rn_expr lhs; cmp; rhs = rn_expr rhs; body = rn_body body }
        | For { var; bound; body } ->
          For { var = f var; bound; body = rn_body body })
      body
  in
  let params =
    List.map
      (function
        | P_int n -> P_int (f n)
        | P_fp n -> P_fp (f n)
        | P_fp_array (n, len) -> P_fp_array (f n, len))
      p.params
  in
  { p with params; body = rn_body p.body }

let alpha_normalize p =
  let table = Hashtbl.create 16 in
  List.iteri
    (fun i prm -> Hashtbl.replace table (param_name prm) (Printf.sprintf "p%d" i))
    p.params;
  let counter = ref 0 in
  let assign name =
    if not (Hashtbl.mem table name) then begin
      Hashtbl.replace table name (Printf.sprintf "v%d" !counter);
      incr counter
    end
  in
  let rec scan body =
    List.iter
      (fun s ->
        match s with
        | Decl { name; _ } -> assign name
        | Assign _ -> ()
        | If { body; _ } -> scan body
        | For { var; body; _ } ->
          assign var;
          scan body)
      body
  in
  scan p.body;
  rename (fun n -> Option.value (Hashtbl.find_opt table n) ~default:n) p

let equal (a : program) (b : program) = a = b

let structural_hash p =
  let normalized = alpha_normalize p in
  Hashtbl.hash (Digest.string (Marshal.to_string normalized []))
