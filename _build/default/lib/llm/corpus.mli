(** The mock LLM's prior knowledge: a corpus of idiomatic HPC
    floating-point kernels.

    The paper's insight is that an LLM "implicitly captures rich prior
    domain knowledge from a vast amount of source code seen during
    training", which lets it produce meaningful floating-point operations
    and code patterns random generators miss (§1). Our substitute makes
    that prior explicit: a library of small numerical kernels — reductions,
    recurrences, stencils, quadrature, special-function evaluations,
    iterative solvers — written as mini-C [compute] functions, parsed by
    the project's own front end at first use.

    Each entry carries topic tags so the sampler can model an LLM's
    clustered generation behaviour (a "safe and common" subset dominates
    unconstrained prompting, per the paper's Direct-Prompt analysis). *)

type tag =
  | Reduction      (** accumulation loops: sums, dot products, norms *)
  | Recurrence     (** loop-carried feedback: maps, ODE steps, series *)
  | Stencil        (** array neighborhoods *)
  | Quadrature     (** numerical integration *)
  | Special        (** transcendental-heavy formulas *)
  | Solver         (** iterative refinement: Newton, Babylonian *)
  | Statistics     (** mean/variance/normalization *)

type entry = {
  name : string;
  tags : tag list;
  common : bool;
      (** part of the "safe" subset an unconstrained LLM overuses *)
  source : string;  (** mini-C text of the compute function *)
}

val entries : entry array
(** The whole corpus (at least 30 kernels). *)

val program : entry -> Lang.Ast.program
(** Parsed and validated AST (memoized). Raises [Failure] if the corpus
    text is broken — the test suite parses every entry. *)

val common_entries : entry array
val by_tag : tag -> entry array
