(** The five mutation strategies of Feedback-Based Mutation (§2.3.2).

    Each strategy is a semantic-changing AST transform ("change a given
    floating-point C program to create a new one that behaves
    differently"). All transforms preserve validity: the result passes
    {!Analysis.Validate.check} whenever the input does. When a strategy
    finds no applicable site it returns the program unchanged; {!apply_n}
    reports whether anything changed so the client can retry. *)

type strategy =
  | Reorder_or_nest     (** swap commutative operands / rotate association *)
  | Change_constants    (** jitter literals and loop bounds *)
  | Add_control_flow    (** wrap a statement in a new loop or conditional *)
  | Swap_math_fn        (** replace a call with a same-arity neighbour *)
  | Insert_intermediates
      (** hoist a subexpression into a named temporary — the
          split-multiply-add maker *)

val all : strategy array
val name : strategy -> string

val apply :
  Util.Rng.t -> strategy -> Lang.Ast.program -> Lang.Ast.program * bool
(** The boolean reports whether the program changed. *)

val apply_n :
  Util.Rng.t -> strategy list -> Lang.Ast.program -> Lang.Ast.program * int
(** Apply strategies in order; returns the number that had an effect. *)
