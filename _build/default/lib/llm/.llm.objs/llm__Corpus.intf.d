lib/llm/corpus.mli: Lang
