lib/llm/client.ml: Array Ast Corpus Diversity Float Gen Gen_config Generate Hashtbl Lang Lazy List Mutate Pp Printf Prompt Sampler String Util
