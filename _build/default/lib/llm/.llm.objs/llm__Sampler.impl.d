lib/llm/sampler.ml: Array Float Hashtbl Option Util
