lib/llm/mutate.ml: Ast Float Lang List Util
