lib/llm/mutate.mli: Lang Util
