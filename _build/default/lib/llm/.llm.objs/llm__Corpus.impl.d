lib/llm/corpus.ml: Analysis Array Cparse Hashtbl Lang List Printf String
