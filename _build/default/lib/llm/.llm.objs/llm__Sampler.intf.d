lib/llm/sampler.mli: Util
