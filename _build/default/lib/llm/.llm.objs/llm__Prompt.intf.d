lib/llm/prompt.mli: Lang
