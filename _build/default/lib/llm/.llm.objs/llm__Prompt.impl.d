lib/llm/prompt.ml: Lang List Printf String
