lib/llm/client.mli: Gen Prompt Sampler
