type outcome = {
  approach : Approach.t;
  budget : int;
  stats : Difftest.Stats.t;
  programs : Lang.Ast.program list;
  cases : (Lang.Ast.program * Irsim.Inputs.t) list;
  generation_failures : int;
  successful : int;
  sim_seconds : float;
  llm_seconds : float;
  real_seconds : float;
}

let strategy_mix_probability = 0.5

(* A generated candidate: either a program that made it through the front
   end and validator, or the reason it did not. *)
let admit source =
  match Cparse.Parse.program source with
  | Error msg -> Error msg
  | Ok program -> begin
    match Analysis.Validate.check program with
    | Error issues ->
      Error
        (String.concat "; "
           (List.map Analysis.Validate.issue_to_string issues))
    | Ok () -> Ok program
  end

let run ?(budget = 1000) ?(precision = Lang.Ast.F64) ~seed approach =
  let rng = Util.Rng.of_int seed in
  let input_rng = Util.Rng.split rng in
  let clock = Util.Sim_clock.create () in
  let client = Llm.Client.create ~seed:(seed lxor 0x5eed) () in
  let stats = Difftest.Stats.create () in
  let successful = ref [] in
  let n_successful = ref 0 in
  let programs = ref [] in
  let cases = ref [] in
  let generation_failures = ref 0 in
  let t_start = Unix.gettimeofday () in
  let llm_generate prompt =
    let response = Llm.Client.generate client prompt in
    Time_model.charge_llm clock response.Llm.Client.latency;
    admit response.Llm.Client.source
  in
  let generate () : (Lang.Ast.program, string) result =
    match approach with
    | Approach.Varity ->
      Ok { (Gen.Varity.generate rng) with Lang.Ast.precision }
    | Approach.Direct_prompt ->
      llm_generate (Llm.Prompt.Direct { precision })
    | Approach.Grammar_guided ->
      llm_generate (Llm.Prompt.Grammar { precision })
    | Approach.Llm4fp ->
      if
        !successful <> []
        && Util.Rng.chance rng strategy_mix_probability
      then
        let example = Util.Rng.choose_list rng !successful in
        llm_generate (Llm.Prompt.Mutate { precision; example })
      else llm_generate (Llm.Prompt.Grammar { precision })
  in
  let input_config =
    match approach with
    | Approach.Varity -> Gen.Varity.config
    | Approach.Direct_prompt | Approach.Grammar_guided | Approach.Llm4fp ->
      Llm.Client.generation_config
  in
  let framework_cost =
    if Approach.uses_llm approach then Time_model.framework_llm
    else Time_model.framework
  in
  for _ = 1 to budget do
    Util.Sim_clock.advance clock framework_cost;
    match generate () with
    | Error _ ->
      incr generation_failures;
      Difftest.Stats.add_generation_failure stats
    | Ok program ->
      programs := program :: !programs;
      let inputs = Gen.Generate.gen_inputs input_rng input_config program in
      cases := (program, inputs) :: !cases;
      let result = Difftest.Run.test program inputs in
      Difftest.Stats.add stats result;
      Time_model.charge_program clock ~work:result.Difftest.Run.total_work
        ~ops:result.Difftest.Run.total_ops
        ~configs:(List.length result.Difftest.Run.outputs);
      if
        approach = Approach.Llm4fp
        && Difftest.Run.has_inconsistency result
      then begin
        successful := program :: !successful;
        incr n_successful
      end
  done;
  {
    approach;
    budget;
    stats;
    programs = List.rev !programs;
    cases = List.rev !cases;
    generation_failures = !generation_failures;
    successful = !n_successful;
    sim_seconds = Util.Sim_clock.elapsed clock;
    llm_seconds = Llm.Client.total_latency client;
    real_seconds = Unix.gettimeofday () -. t_start;
  }
