(** The four program-generation approaches the paper evaluates (§3.2.1). *)

type t =
  | Varity          (** random grammar generation, no LLM, no feedback *)
  | Direct_prompt   (** LLM, no grammar, no examples *)
  | Grammar_guided  (** LLM + Figure-2 grammar specification *)
  | Llm4fp          (** grammar + feedback-based mutation loop *)

val all : t array
(** In the paper's table order. *)

val name : t -> string
(** Paper spelling: ["VARITY"], ["DIRECT-PROMPT"], ["GRAMMAR-GUIDED"],
    ["LLM4FP"]. *)

val of_name : string -> t option
(** Case-insensitive. *)

val uses_llm : t -> bool
