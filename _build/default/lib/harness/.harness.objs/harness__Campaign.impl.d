lib/harness/campaign.ml: Analysis Approach Cparse Difftest Gen Irsim Lang List Llm String Time_model Unix Util
