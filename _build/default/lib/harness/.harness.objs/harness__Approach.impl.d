lib/harness/approach.ml: Array String
