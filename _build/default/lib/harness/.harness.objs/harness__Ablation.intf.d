lib/harness/ablation.mli: Compiler Difftest Irsim Lang
