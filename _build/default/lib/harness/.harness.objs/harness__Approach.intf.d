lib/harness/approach.mli:
