lib/harness/experiments.ml: Analysis Approach Array Buffer Campaign Compiler Difftest Diversity Float Fp Lang List Mathlib Printf Report Util
