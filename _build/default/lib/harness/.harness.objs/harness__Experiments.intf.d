lib/harness/experiments.mli: Approach Campaign
