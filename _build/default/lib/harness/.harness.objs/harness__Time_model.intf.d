lib/harness/time_model.mli: Util
