lib/harness/campaign.mli: Approach Difftest Irsim Lang
