lib/harness/time_model.ml: Util
