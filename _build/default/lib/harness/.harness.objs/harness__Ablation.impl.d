lib/harness/ablation.ml: Approach Campaign Compiler Difftest Irsim List Mathlib Printf Report
