type t = Varity | Direct_prompt | Grammar_guided | Llm4fp

let all = [| Varity; Direct_prompt; Grammar_guided; Llm4fp |]

let name = function
  | Varity -> "VARITY"
  | Direct_prompt -> "DIRECT-PROMPT"
  | Grammar_guided -> "GRAMMAR-GUIDED"
  | Llm4fp -> "LLM4FP"

let of_name s =
  let s = String.uppercase_ascii s in
  Array.find_opt (fun a -> name a = s) all

let uses_llm = function
  | Varity -> false
  | Direct_prompt | Grammar_guided | Llm4fp -> true
