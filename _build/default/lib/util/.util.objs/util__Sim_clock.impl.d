lib/util/sim_clock.ml: Float Format Printf
