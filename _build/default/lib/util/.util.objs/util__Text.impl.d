lib/util/text.ml: List String
