lib/util/rng.mli:
