lib/util/text.mli:
