(** Simulated wall clock for time-cost accounting.

    The paper's Table 2 reports end-to-end campaign durations in which LLM
    API latency accounts for ~30% of the total. Re-incurring network latency
    is neither possible (sealed container) nor useful, so campaigns charge
    modelled costs — API latency, compile time, execution time — to a
    simulated clock and report the accumulated duration. Real measured
    compute time can be charged too, so the reported figure is a hybrid of
    model and measurement, as documented in EXPERIMENTS.md. *)

type t
(** Mutable accumulator of simulated seconds. *)

val create : unit -> t
(** A clock at zero. *)

val advance : t -> float -> unit
(** [advance clock seconds] charges a cost. Negative costs are rejected. *)

val elapsed : t -> float
(** Total simulated seconds charged so far. *)

val reset : t -> unit
(** Back to zero. *)

val hms : float -> string
(** [hms seconds] renders ["hh:mm:ss"] (rounded to the nearest second), the
    format used by the paper's Table 2. *)

val pp : Format.formatter -> t -> unit
(** Prints the elapsed time as [hms]. *)
