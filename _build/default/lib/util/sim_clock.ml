type t = { mutable seconds : float }

let create () = { seconds = 0.0 }

let advance t s =
  if s < 0.0 then invalid_arg "Sim_clock.advance: negative duration";
  t.seconds <- t.seconds +. s

let elapsed t = t.seconds
let reset t = t.seconds <- 0.0

let hms seconds =
  let total = int_of_float (Float.round seconds) in
  let h = total / 3600 and m = total / 60 mod 60 and s = total mod 60 in
  Printf.sprintf "%02d:%02d:%02d" h m s

let pp fmt t = Format.pp_print_string fmt (hms t.seconds)
