(** The Varity baseline (Laguna, IPDPS 2020; paper §3.2.1).

    Random grammar-driven generation with no domain knowledge and no
    feedback: deep arithmetic expressions, machine-flavored identifiers,
    and inputs drawn from wide magnitude ranges — the regime that makes
    Varity's inconsistencies skew toward extreme values (NaN, ±Inf) in
    the paper's Figure 3. *)

val generate : Util.Rng.t -> Lang.Ast.program
(** One random program (always valid by construction). *)

val gen_case : Util.Rng.t -> Lang.Ast.program * Irsim.Inputs.t
(** A program paired with one random input vector (§3.1.3: each program
    is paired with a unique set of input values). *)

val config : Gen_config.t
(** The generation regime, exposed for tests and reports. *)
