type input_profile = Extreme | Sensible

type t = {
  min_params : int;
  max_params : int;
  p_array_param : float;
  p_int_param : float;
  array_len_min : int;
  array_len_max : int;
  min_stmts : int;
  max_stmts : int;
  max_expr_depth : int;
  max_block_depth : int;
  p_loop : float;
  p_if : float;
  p_decl : float;
  p_call : float;
  p_compound_assign : float;
  loop_bound_min : int;
  loop_bound_max : int;
  literal_log10_min : float;
  literal_log10_max : float;
  input_profile : input_profile;
}

let varity =
  {
    min_params = 2;
    max_params = 5;
    p_array_param = 0.35;
    p_int_param = 0.2;
    array_len_min = 4;
    array_len_max = 16;
    min_stmts = 2;
    max_stmts = 6;
    max_expr_depth = 5;
    max_block_depth = 2;
    p_loop = 0.3;
    p_if = 0.3;
    p_decl = 0.25;
    p_call = 0.26;
    p_compound_assign = 0.5;
    loop_bound_min = 2;
    loop_bound_max = 32;
    literal_log10_min = -6.0;
    literal_log10_max = 6.0;
    input_profile = Extreme;
  }

let validate t =
  let check cond msg = if not cond then invalid_arg ("Gen_config: " ^ msg) in
  check (t.min_params >= 0 && t.min_params <= t.max_params) "params range";
  check (t.array_len_min >= 1 && t.array_len_min <= t.array_len_max)
    "array length range";
  check (t.min_stmts >= 1 && t.min_stmts <= t.max_stmts) "stmts range";
  check (t.max_expr_depth >= 1) "expr depth";
  check (t.max_block_depth >= 0) "block depth";
  check
    (t.loop_bound_min >= 1 && t.loop_bound_max >= t.loop_bound_min
    && t.loop_bound_max <= Analysis.Validate.max_loop_bound)
    "loop bounds";
  check (t.literal_log10_min <= t.literal_log10_max) "literal range"
