open Lang

type naming = {
  param_pool : string array;
  temp_pool : string array;
  counter_pool : string array;
}

let varity_naming =
  {
    param_pool = [| "var_1"; "var_2"; "var_3"; "var_4"; "var_5"; "var_6" |];
    temp_pool = [| "tmp" |];
    counter_pool = [| "i" |];
  }

let human_naming =
  {
    param_pool =
      [| "x"; "y"; "z"; "a"; "b"; "c"; "u"; "v"; "w"; "alpha"; "beta";
         "gamma"; "scale"; "offset"; "rate"; "data"; "weights"; "coeffs";
         "values"; "n"; "count"; "steps" |];
    temp_pool =
      [| "t"; "sum"; "acc"; "prod"; "term"; "delta"; "factor"; "result";
         "partial"; "numer"; "denom"; "err" |];
    counter_pool = [| "i"; "j"; "k" |];
  }

type ctx = {
  rng : Util.Rng.t;
  cfg : Gen_config.t;
  naming : naming;
  mutable scalars : string list;          (* readable fp scalars incl. comp *)
  mutable read_only : string list;        (* promoted int parameters *)
  mutable arrays : (string * int) list;
  mutable counters : (string * int) list; (* in-scope counters with bounds *)
  mutable used : (string, unit) Hashtbl.t;
  mutable temp_idx : int;
  mutable counter_idx : int;
  mutable comp_assigned : bool;
}

let fresh ctx pool =
  let base = pool.(Util.Rng.int ctx.rng (Array.length pool)) in
  let rec go candidate n =
    if Hashtbl.mem ctx.used candidate then
      go (Printf.sprintf "%s_%d" base n) (n + 1)
    else begin
      Hashtbl.add ctx.used candidate ();
      candidate
    end
  in
  go base 1

let gen_literal rng (cfg : Gen_config.t) =
  let magnitude =
    10.0 ** Util.Rng.float_in rng cfg.literal_log10_min cfg.literal_log10_max
  in
  let v = if Util.Rng.bool rng then magnitude else -.magnitude in
  (* Keep a human-plausible fraction of round constants. *)
  if Util.Rng.chance rng 0.25 then
    Float.round (v *. 4.0) /. 4.0
    |> fun r -> if r = 0.0 then v else r
  else v

(* Weighted math functions: common HPC usage first. *)
let fn_weights =
  [| (6.0, Ast.Sin); (6.0, Ast.Cos); (5.0, Ast.Exp); (5.0, Ast.Log);
     (5.0, Ast.Sqrt); (4.0, Ast.Fabs); (3.0, Ast.Pow); (2.0, Ast.Tan);
     (2.0, Ast.Atan); (2.0, Ast.Tanh); (2.0, Ast.Floor); (3.0, Ast.Fmax);
     (3.0, Ast.Fmin); (1.0, Ast.Cosh); (1.0, Ast.Sinh); (1.0, Ast.Log10);
     (1.0, Ast.Exp2); (1.0, Ast.Log2); (1.0, Ast.Cbrt); (1.0, Ast.Hypot);
     (1.0, Ast.Atan2); (1.0, Ast.Fmod); (0.5, Ast.Asin); (0.5, Ast.Acos);
     (0.5, Ast.Expm1); (0.5, Ast.Log1p); (0.5, Ast.Ceil) |]

let gen_index ctx len =
  let fitting =
    List.filter (fun (_, bound) -> bound <= len) ctx.counters
  in
  match fitting with
  | (counter, bound) :: _ ->
    if bound < len && Util.Rng.chance ctx.rng 0.2 then
      (* counter + k stays in bounds when k <= len - bound *)
      Ast.Bin
        (Ast.Add, Ast.Var counter,
         Ast.Int_lit (Util.Rng.int ctx.rng (len - bound + 1)))
    else Ast.Var counter
  | [] -> Ast.Int_lit (Util.Rng.int ctx.rng len)

let gen_terminal ctx =
  let scalar_choices =
    List.map (fun name -> (3.0, `Scalar name)) ctx.scalars
  in
  let array_choices = List.map (fun arr -> (2.0, `Array arr)) ctx.arrays in
  let choices =
    Array.of_list
      ((4.0, `Literal) :: (scalar_choices @ array_choices))
  in
  match Util.Rng.weighted ctx.rng choices with
  | `Literal -> Ast.Lit (gen_literal ctx.rng ctx.cfg)
  | `Scalar name -> Ast.Var name
  | `Array (name, len) -> Ast.Index (name, gen_index ctx len)

let rec gen_expr ctx depth =
  if depth <= 0 then gen_terminal ctx
  else
    let r = Util.Rng.float ctx.rng 1.0 in
    if r < ctx.cfg.p_call then begin
      let fn = Util.Rng.weighted ctx.rng fn_weights in
      let args =
        List.init (Ast.math_fn_arity fn) (fun _ -> gen_expr ctx (depth - 1))
      in
      Ast.Call (fn, args)
    end
    else if r < ctx.cfg.p_call +. 0.05 then Ast.Neg (gen_expr ctx (depth - 1))
    else if r < ctx.cfg.p_call +. 0.75 then begin
      let op =
        Util.Rng.weighted ctx.rng
          [| (4.0, Ast.Add); (3.0, Ast.Mul); (2.5, Ast.Sub); (2.0, Ast.Div) |]
      in
      Ast.Bin (op, gen_expr ctx (depth - 1), gen_expr ctx (depth - 1))
    end
    else gen_terminal ctx

let cmp_pool = [| Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge |]

let gen_assign ctx =
  let depth = 1 + Util.Rng.int ctx.rng ctx.cfg.max_expr_depth in
  let rhs = gen_expr ctx depth in
  let op =
    if Util.Rng.chance ctx.rng ctx.cfg.p_compound_assign then
      Util.Rng.choose ctx.rng [| Ast.Add_eq; Ast.Sub_eq; Ast.Mul_eq; Ast.Div_eq |]
    else Ast.Set
  in
  let target =
    let temps =
      List.filter
        (fun s -> s <> Ast.comp_name && not (List.mem s ctx.read_only))
        ctx.scalars
    in
    let array_write =
      ctx.arrays <> [] && Util.Rng.chance ctx.rng 0.15
    in
    if array_write then begin
      let name, len = Util.Rng.choose_list ctx.rng ctx.arrays in
      Ast.Lv_index (name, gen_index ctx len)
    end
    else if temps <> [] && Util.Rng.chance ctx.rng 0.3 then
      Ast.Lv_var (Util.Rng.choose_list ctx.rng temps)
    else begin
      ctx.comp_assigned <- true;
      Ast.Lv_var Ast.comp_name
    end
  in
  Ast.Assign { lhs = target; op; rhs }

let rec gen_stmt ctx block_depth =
  let r = Util.Rng.float ctx.rng 1.0 in
  if r < ctx.cfg.p_decl then begin
    let name = fresh ctx ctx.naming.temp_pool in
    ctx.temp_idx <- ctx.temp_idx + 1;
    let init = gen_expr ctx (1 + Util.Rng.int ctx.rng ctx.cfg.max_expr_depth) in
    let stmt = Ast.Decl { name; init } in
    ctx.scalars <- name :: ctx.scalars;
    stmt
  end
  else if block_depth < ctx.cfg.max_block_depth
          && r < ctx.cfg.p_decl +. ctx.cfg.p_loop then begin
    let counter = fresh ctx ctx.naming.counter_pool in
    ctx.counter_idx <- ctx.counter_idx + 1;
    let bound =
      Util.Rng.int_in ctx.rng ctx.cfg.loop_bound_min ctx.cfg.loop_bound_max
    in
    let saved_scalars = ctx.scalars and saved_counters = ctx.counters in
    ctx.counters <- (counter, bound) :: ctx.counters;
    let n_body = Util.Rng.int_in ctx.rng 1 3 in
    let body = List.init n_body (fun _ -> gen_stmt ctx (block_depth + 1)) in
    ctx.scalars <- saved_scalars;
    ctx.counters <- saved_counters;
    Ast.For { var = counter; bound; body }
  end
  else if block_depth < ctx.cfg.max_block_depth
          && r < ctx.cfg.p_decl +. ctx.cfg.p_loop +. ctx.cfg.p_if then begin
    let lhs =
      (* Conditions preferentially test computed temporaries (consed most
         recently onto the scalar list): branching on computed data is
         where NaN-sensitivity lives. *)
      match ctx.scalars with
      | [] -> Ast.Lit (gen_literal ctx.rng ctx.cfg)
      | scalars ->
        let n = List.length scalars in
        let idx =
          if n > 1 && Util.Rng.chance ctx.rng 0.7 then
            Util.Rng.int ctx.rng ((n + 1) / 2)
          else Util.Rng.int ctx.rng n
        in
        Ast.Var (List.nth scalars idx)
    in
    let cmp = Util.Rng.choose ctx.rng cmp_pool in
    let rhs = gen_expr ctx (1 + Util.Rng.int ctx.rng 2) in
    let saved_scalars = ctx.scalars in
    let n_body = Util.Rng.int_in ctx.rng 1 2 in
    let body = List.init n_body (fun _ -> gen_stmt ctx (block_depth + 1)) in
    ctx.scalars <- saved_scalars;
    Ast.If { lhs; cmp; rhs; body }
  end
  else gen_assign ctx

let generate rng (cfg : Gen_config.t) naming =
  Gen_config.validate cfg;
  let ctx =
    {
      rng;
      cfg;
      naming;
      scalars = [];
      read_only = [];
      arrays = [];
      counters = [];
      used = Hashtbl.create 16;
      temp_idx = 0;
      counter_idx = 0;
      comp_assigned = false;
    }
  in
  Hashtbl.add ctx.used Ast.comp_name ();
  let n_scalars = Util.Rng.int_in rng cfg.min_params cfg.max_params in
  let params = ref [] in
  for _ = 1 to n_scalars do
    let name = fresh ctx naming.param_pool in
    ctx.scalars <- name :: ctx.scalars;
    params := Ast.P_fp name :: !params
  done;
  if Util.Rng.chance rng cfg.p_array_param then begin
    let name = fresh ctx naming.param_pool in
    let len = Util.Rng.int_in rng cfg.array_len_min cfg.array_len_max in
    ctx.arrays <- (name, len) :: ctx.arrays;
    params := Ast.P_fp_array (name, len) :: !params
  end;
  if Util.Rng.chance rng cfg.p_int_param then begin
    let name = fresh ctx naming.param_pool in
    (* Integer parameters join the scalar pool through implicit
       promotion, as in C — but only as read-only values. *)
    ctx.scalars <- name :: ctx.scalars;
    ctx.read_only <- name :: ctx.read_only;
    params := Ast.P_int name :: !params
  end;
  let params = List.rev !params in
  let n_stmts = Util.Rng.int_in rng cfg.min_stmts cfg.max_stmts in
  let body = List.init n_stmts (fun _ -> gen_stmt ctx 0) in
  let body =
    if ctx.comp_assigned then body
    else
      body
      @ [ Ast.Assign
            {
              lhs = Ast.Lv_var Ast.comp_name;
              op = Ast.Add_eq;
              rhs = gen_expr ctx 2;
            } ]
  in
  { Ast.precision = Ast.F64; params; body }

let gen_input_value rng (cfg : Gen_config.t) =
  match cfg.input_profile with
  | Gen_config.Extreme ->
    let r = Util.Rng.float rng 1.0 in
    let magnitude =
      if r < 0.35 then 10.0 ** Util.Rng.float_in rng (-300.0) 300.0
      else if r < 0.5 then Util.Rng.float_in rng 0.0 1e6
      else Util.Rng.float_in rng 0.0 10.0
    in
    if Util.Rng.bool rng then magnitude else -.magnitude
  | Gen_config.Sensible ->
    let r = Util.Rng.float rng 1.0 in
    if r < 0.05 then
      Util.Rng.choose rng [| 0.0; 1.0; -1.0; 0.5; 2.0; 0.1; 10.0 |]
    else if r < 0.85 then Util.Rng.float_in rng (-10.0) 10.0
    else Util.Rng.float_in rng (-100.0) 100.0

let gen_inputs rng (cfg : Gen_config.t) (p : Ast.program) =
  List.map
    (fun prm ->
      match prm with
      | Ast.P_fp _ -> Irsim.Inputs.Fp (gen_input_value rng cfg)
      | Ast.P_int _ -> Irsim.Inputs.Int (Util.Rng.int_in rng 1 10)
      | Ast.P_fp_array (_, len) ->
        Irsim.Inputs.Arr (Array.init len (fun _ -> gen_input_value rng cfg)))
    p.params
