lib/gen/gen_config.mli:
