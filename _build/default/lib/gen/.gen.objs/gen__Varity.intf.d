lib/gen/varity.mli: Gen_config Irsim Lang Util
