lib/gen/generate.mli: Gen_config Irsim Lang Util
