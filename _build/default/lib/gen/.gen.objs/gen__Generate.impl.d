lib/gen/generate.ml: Array Ast Float Gen_config Hashtbl Irsim Lang List Printf Util
