lib/gen/gen_config.ml: Analysis
