lib/gen/varity.ml: Gen_config Generate
