(** Tunable shape of randomly generated programs.

    One configuration describes a program-generation regime: how many
    parameters and statements, how deep expressions grow, how likely
    loops / branches / math calls are, and from which ranges literals and
    runtime inputs are drawn. {!varity} reproduces the regime of the
    Varity generator (deep single expressions over wide value ranges,
    few named temporaries, occasional math calls); the mock LLM uses its
    own regimes layered on corpus patterns. *)

type input_profile =
  | Extreme
      (** Varity-style: magnitudes up to 1e±300 with substantial
          probability, provoking overflow/invalid operations *)
  | Sensible
      (** LLM-style: human-plausible magnitudes (|x| mostly <= 10) *)

type t = {
  min_params : int;
  max_params : int;
  p_array_param : float;   (** probability an extra array parameter is added *)
  p_int_param : float;
  array_len_min : int;
  array_len_max : int;
  min_stmts : int;
  max_stmts : int;
  max_expr_depth : int;
  max_block_depth : int;   (** loop/if nesting limit *)
  p_loop : float;
  p_if : float;
  p_decl : float;          (** probability a statement declares a temporary *)
  p_call : float;          (** probability a subexpression is a math call *)
  p_compound_assign : float;  (** += and friends vs plain = *)
  loop_bound_min : int;
  loop_bound_max : int;
  literal_log10_min : float;  (** literals: magnitude 10^U(min,max) *)
  literal_log10_max : float;
  input_profile : input_profile;
}

val varity : t
(** The baseline regime (§3.2.1). *)

val validate : t -> unit
(** Sanity-check field ranges; raises [Invalid_argument]. *)
