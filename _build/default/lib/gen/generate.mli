(** Grammar-driven random program generation (the Varity baseline, and
    the structural backbone the mock LLM builds on).

    Generation follows the grammar of Figure 2 and is correct by
    construction: every emitted program passes
    {!Analysis.Validate.check} — identifiers are declared before use,
    subscripts are provably in bounds (counters are only used on arrays
    at least as long as the loop bound), loop bounds are in range, and
    the accumulator is always assigned. *)

type naming = {
  param_pool : string array;   (** names for scalar/array/int parameters *)
  temp_pool : string array;    (** base names for declared temporaries *)
  counter_pool : string array; (** base names for loop counters *)
}

val varity_naming : naming
(** Varity's machine-flavored names: [var_1], [tmp_1], [i_1], ... *)

val human_naming : naming
(** Human-plausible names the mock LLM samples from. *)

val generate : Util.Rng.t -> Gen_config.t -> naming -> Lang.Ast.program
(** A fresh random program. *)

val gen_inputs : Util.Rng.t -> Gen_config.t -> Lang.Ast.program -> Irsim.Inputs.t
(** A random input vector for the program, drawn from the
    configuration's {!Gen_config.input_profile}. *)

val gen_literal : Util.Rng.t -> Gen_config.t -> float
(** One random literal under the configuration's magnitude regime. *)
