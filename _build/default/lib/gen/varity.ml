let config = Gen_config.varity

let generate rng = Generate.generate rng config Generate.varity_naming

let gen_case rng =
  let program = generate rng in
  (program, Generate.gen_inputs rng config program)
