(** Def-use dataflow extraction.

    CodeBLEU's semantic component compares data-flow graphs: each
    assignment contributes edges from the variables it reads to the
    variable it writes. Identifiers are alpha-normalized first, so the
    comparison is insensitive to naming, as in the reference
    implementation. *)

type edge = { def : string; use : string }
(** [def] is the written variable, [use] one variable read by the defining
    expression. Compound assignments also read their own target. *)

val edges : Lang.Ast.program -> edge list
(** All def-use edges in body order (duplicates preserved — the graph is a
    multiset, matching CodeBLEU's recall-style counting). The program is
    alpha-normalized internally. *)

val match_score : candidate:Lang.Ast.program -> reference:Lang.Ast.program -> float
(** Fraction of the candidate's edges that also appear in the reference
    (multiset semantics). 1.0 when the candidate has no edges, matching
    CodeBLEU's convention for empty graphs. *)
