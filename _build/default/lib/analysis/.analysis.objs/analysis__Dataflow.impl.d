lib/analysis/dataflow.ml: Ast Hashtbl Lang List Option
