lib/analysis/dataflow.mli: Lang
