lib/analysis/features.mli: Format Lang
