lib/analysis/validate.mli: Lang
