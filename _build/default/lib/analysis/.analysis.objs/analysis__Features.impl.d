lib/analysis/features.ml: Ast Float Format Hashtbl Lang List String
