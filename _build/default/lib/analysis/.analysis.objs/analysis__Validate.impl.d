lib/analysis/validate.ml: Ast Lang List Printf Result
