(** Static validation of generated programs.

    The paper's prompts instruct the LLM to "require all variables to be
    initialized and avoid undefined behavior" (§2.3.1); Varity guarantees
    the same by construction. This checker enforces those guarantees on
    every candidate program before it enters the compilation driver, so an
    invalid generation is rejected and regenerated rather than producing a
    false inconsistency:

    - every used identifier is declared (parameter, temporary, counter);
    - no identifier is redeclared in the same block, and declarations do
      not shadow a live name (legal C, but banned to keep semantics
      obvious);
    - array subscripts provably stay inside the array bounds (interval
      analysis over loop counters and integer literals);
    - loop bounds are positive and below {!max_loop_bound};
    - no division by a literal zero, and no assignment to a loop counter
      or an array parameter as a whole;
    - the body assigns the accumulator at least once (otherwise the
      program cannot expose any inconsistency). *)

type issue =
  | Unbound_variable of string
  | Redeclared_variable of string
  | Array_index_out_of_bounds of string * int * int
      (** array, worst-case index, length *)
  | Array_index_unbounded of string
      (** index depends on a value with no static bound *)
  | Non_array_indexed of string
  | Array_used_as_scalar of string
  | Assign_to_counter of string
  | Loop_bound_invalid of int
  | Division_by_literal_zero
  | Comp_never_assigned
  | Bad_arity of string

val max_loop_bound : int
(** Upper limit on a single loop bound (keeps simulated execution cheap),
    1024. *)

val issue_to_string : issue -> string

val check : Lang.Ast.program -> (unit, issue list) result
(** All issues found, in source order (deduplicated). *)

val is_valid : Lang.Ast.program -> bool
