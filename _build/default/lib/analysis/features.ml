open Lang

type t = {
  size : int;
  depth : int;
  add_count : int;
  sub_count : int;
  mul_count : int;
  div_count : int;
  call_count : int;
  distinct_math_fns : string list;
  loop_count : int;
  if_count : int;
  temp_count : int;
  array_param_count : int;
  scalar_param_count : int;
  int_param_count : int;
  literal_count : int;
  literal_abs_max : float;
  mul_add_patterns : int;
  split_mul_add_patterns : int;
  accumulation_loops : int;
}

let is_mul = function Ast.Bin (Ast.Mul, _, _) -> true | _ -> false

(* Count syntactic multiply-add shapes: an addition or subtraction with a
   multiplication as a direct operand. *)
let rec mul_add_in_expr e =
  match e with
  | Ast.Lit _ | Ast.Int_lit _ | Ast.Var _ -> 0
  | Ast.Index (_, e) | Ast.Neg e -> mul_add_in_expr e
  | Ast.Call (_, args) ->
    List.fold_left (fun acc e -> acc + mul_add_in_expr e) 0 args
  | Ast.Bin (op, a, b) ->
    let here =
      match op with
      | Ast.Add | Ast.Sub -> if is_mul a || is_mul b then 1 else 0
      | Ast.Mul | Ast.Div -> 0
    in
    here + mul_add_in_expr a + mul_add_in_expr b

(* A "split" multiply-add: `t = a * b;` followed (anywhere later in the
   same block) by an additive use of `t`. This is the shape contracted by
   the simulated gcc but not by clang. *)
let split_mul_adds body =
  let rec scan body =
    let mul_temps = Hashtbl.create 8 in
    let count = ref 0 in
    let additive_use name e =
      Ast.fold_expr
        (fun acc e ->
          match e with
          | Ast.Bin ((Ast.Add | Ast.Sub), a, b) ->
            let uses_temp x = x = Ast.Var name in
            acc || uses_temp a || uses_temp b
          | _ -> acc)
        false e
    in
    List.iter
      (fun s ->
        match s with
        | Ast.Decl { name; init } ->
          Hashtbl.iter
            (fun t () -> if additive_use t init then incr count)
            mul_temps;
          if is_mul init then Hashtbl.replace mul_temps name ()
        | Ast.Assign { lhs; op; rhs } ->
          Hashtbl.iter
            (fun t () -> if additive_use t rhs then incr count)
            mul_temps;
          (match (lhs, op) with
           | Ast.Lv_var name, Ast.Set when is_mul rhs ->
             Hashtbl.replace mul_temps name ()
           | Ast.Lv_var name, _ -> Hashtbl.remove mul_temps name
           | Ast.Lv_index _, _ -> ())
        | Ast.If { body; _ } -> count := !count + scan body
        | Ast.For { body; _ } -> count := !count + scan body)
      body;
    !count
  in
  scan body

let accumulation_loops body =
  let rec loop_accumulates body =
    List.exists
      (fun s ->
        match s with
        | Ast.Assign { op = Ast.Add_eq | Ast.Sub_eq | Ast.Mul_eq | Ast.Div_eq; _ }
          ->
          true
        | Ast.Assign { lhs = Ast.Lv_var n; op = Ast.Set; rhs; _ } ->
          (* `x = x + ...` counts as accumulation too. *)
          Ast.fold_expr
            (fun acc e -> acc || e = Ast.Var n)
            false rhs
        | Ast.If { body; _ } -> loop_accumulates body
        | Ast.For _ | Ast.Decl _ | Ast.Assign _ -> false)
      body
  in
  let rec scan body =
    List.fold_left
      (fun acc s ->
        match s with
        | Ast.For { body; _ } ->
          acc + (if loop_accumulates body then 1 else 0) + scan body
        | Ast.If { body; _ } -> acc + scan body
        | Ast.Decl _ | Ast.Assign _ -> acc)
      0 body
  in
  scan body

let of_program (p : Ast.program) =
  let count_op op =
    Ast.fold_stmts
      (fun acc _ -> acc)
      (fun acc e -> match e with Ast.Bin (o, _, _) when o = op -> acc + 1 | _ -> acc)
      0 p.body
  in
  let fns =
    Ast.fold_stmts
      (fun acc _ -> acc)
      (fun acc e ->
        match e with Ast.Call (fn, _) -> Ast.math_fn_name fn :: acc | _ -> acc)
      [] p.body
  in
  let literals =
    Ast.fold_stmts
      (fun acc _ -> acc)
      (fun acc e -> match e with Ast.Lit v -> v :: acc | _ -> acc)
      [] p.body
  in
  let if_count =
    Ast.fold_stmts
      (fun acc s -> match s with Ast.If _ -> acc + 1 | _ -> acc)
      (fun acc _ -> acc)
      0 p.body
  in
  let temp_count =
    Ast.fold_stmts
      (fun acc s -> match s with Ast.Decl _ -> acc + 1 | _ -> acc)
      (fun acc _ -> acc)
      0 p.body
  in
  let mul_adds =
    Ast.fold_stmts
      (fun acc s ->
        match s with
        | Ast.Decl { init; _ } -> acc + mul_add_in_expr init
        | Ast.Assign { rhs; _ } -> acc + mul_add_in_expr rhs
        | Ast.If { lhs; rhs; _ } ->
          acc + mul_add_in_expr lhs + mul_add_in_expr rhs
        | Ast.For _ -> acc)
      (fun acc _ -> acc)
      0 p.body
  in
  let param_count pred = List.length (List.filter pred p.params) in
  {
    size = Ast.program_size p;
    depth = Ast.program_depth p;
    add_count = count_op Ast.Add;
    sub_count = count_op Ast.Sub;
    mul_count = count_op Ast.Mul;
    div_count = count_op Ast.Div;
    call_count = Ast.call_count p;
    distinct_math_fns = List.sort_uniq compare fns;
    loop_count = Ast.loop_count p;
    if_count;
    temp_count;
    array_param_count =
      param_count (function Ast.P_fp_array _ -> true | _ -> false);
    scalar_param_count = param_count (function Ast.P_fp _ -> true | _ -> false);
    int_param_count = param_count (function Ast.P_int _ -> true | _ -> false);
    literal_count = List.length literals;
    literal_abs_max =
      List.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 literals;
    mul_add_patterns = mul_adds;
    split_mul_add_patterns = split_mul_adds p.body;
    accumulation_loops = accumulation_loops p.body;
  }

let pp fmt t =
  Format.fprintf fmt
    "@[<v>size=%d depth=%d ops=(+%d -%d *%d /%d) calls=%d fns=[%s]@ \
     loops=%d ifs=%d temps=%d params=(fp %d, arr %d, int %d)@ \
     literals=%d max|lit|=%g mul-add=%d split-mul-add=%d accum-loops=%d@]"
    t.size t.depth t.add_count t.sub_count t.mul_count t.div_count
    t.call_count
    (String.concat "," t.distinct_math_fns)
    t.loop_count t.if_count t.temp_count t.scalar_param_count
    t.array_param_count t.int_param_count t.literal_count t.literal_abs_max
    t.mul_add_patterns t.split_mul_add_patterns t.accumulation_loops
