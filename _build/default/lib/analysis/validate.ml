open Lang

type issue =
  | Unbound_variable of string
  | Redeclared_variable of string
  | Array_index_out_of_bounds of string * int * int
  | Array_index_unbounded of string
  | Non_array_indexed of string
  | Array_used_as_scalar of string
  | Assign_to_counter of string
  | Loop_bound_invalid of int
  | Division_by_literal_zero
  | Comp_never_assigned
  | Bad_arity of string

let max_loop_bound = 1024

let issue_to_string = function
  | Unbound_variable v -> Printf.sprintf "use of undeclared variable %s" v
  | Redeclared_variable v -> Printf.sprintf "redeclaration of %s" v
  | Array_index_out_of_bounds (a, i, len) ->
    Printf.sprintf "index %d can exceed bounds of %s (length %d)" i a len
  | Array_index_unbounded a ->
    Printf.sprintf "index into %s has no static bound" a
  | Non_array_indexed v -> Printf.sprintf "%s is not an array but is indexed" v
  | Array_used_as_scalar a -> Printf.sprintf "array %s used as a scalar" a
  | Assign_to_counter v -> Printf.sprintf "assignment to loop counter %s" v
  | Loop_bound_invalid b -> Printf.sprintf "loop bound %d out of range" b
  | Division_by_literal_zero -> "division by literal zero"
  | Comp_never_assigned -> "the accumulator comp is never assigned"
  | Bad_arity f -> Printf.sprintf "wrong arity in call to %s" f

type kind =
  | Kscalar
  | Karray of int
  | Kint of { bound : int option }  (** counter with bound, or free int param *)

type env = (string * kind) list ref

let lookup env name = List.assoc_opt name !env

(* Interval of an integer-valued expression, when statically known.
   Counters range over [0, bound-1]. *)
let rec int_interval env e =
  match e with
  | Ast.Int_lit n -> Some (n, n)
  | Ast.Var name -> begin
    match lookup env name with
    | Some (Kint { bound = Some b }) -> Some (0, b - 1)
    | _ -> None
  end
  | Ast.Neg e -> begin
    match int_interval env e with
    | Some (lo, hi) -> Some (-hi, -lo)
    | None -> None
  end
  | Ast.Bin (op, a, b) -> begin
    match (int_interval env a, int_interval env b) with
    | Some (alo, ahi), Some (blo, bhi) -> begin
      match op with
      | Ast.Add -> Some (alo + blo, ahi + bhi)
      | Ast.Sub -> Some (alo - bhi, ahi - blo)
      | Ast.Mul ->
        let products = [ alo * blo; alo * bhi; ahi * blo; ahi * bhi ] in
        Some (List.fold_left min max_int products,
              List.fold_left max min_int products)
      | Ast.Div -> None
    end
    | _ -> None
  end
  | Ast.Lit _ | Ast.Index _ | Ast.Call _ -> None

let check (p : Ast.program) =
  let issues = ref [] in
  let note issue = if not (List.mem issue !issues) then issues := issue :: !issues in
  let env : env = ref [] in
  let declare name kind =
    if List.mem_assoc name !env || name = Ast.comp_name then
      note (Redeclared_variable name)
    else env := (name, kind) :: !env
  in
  List.iter
    (fun prm ->
      match prm with
      | Ast.P_int name -> declare name (Kint { bound = None })
      | Ast.P_fp name -> declare name Kscalar
      | Ast.P_fp_array (name, len) ->
        if len <= 0 then note (Loop_bound_invalid len);
        declare name (Karray len))
    p.params;
  let check_index arr idx =
    match lookup env arr with
    | None -> note (Unbound_variable arr)
    | Some (Kscalar | Kint _) -> note (Non_array_indexed arr)
    | Some (Karray len) -> begin
      match int_interval env idx with
      | None -> note (Array_index_unbounded arr)
      | Some (lo, hi) ->
        if lo < 0 then note (Array_index_out_of_bounds (arr, lo, len))
        else if hi >= len then note (Array_index_out_of_bounds (arr, hi, len))
    end
  in
  let rec check_expr e =
    match e with
    | Ast.Lit _ | Ast.Int_lit _ -> ()
    | Ast.Var name ->
      if name = Ast.comp_name then ()
      else begin
        match lookup env name with
        | None -> note (Unbound_variable name)
        | Some (Karray _) -> note (Array_used_as_scalar name)
        | Some (Kscalar | Kint _) -> ()
      end
    | Ast.Index (arr, idx) ->
      check_index arr idx;
      check_expr idx
    | Ast.Neg e -> check_expr e
    | Ast.Bin (op, a, b) ->
      if op = Ast.Div && (b = Ast.Lit 0.0 || b = Ast.Int_lit 0) then
        note Division_by_literal_zero;
      check_expr a;
      check_expr b
    | Ast.Call (fn, args) ->
      if List.length args <> Ast.math_fn_arity fn then
        note (Bad_arity (Ast.math_fn_name fn));
      List.iter check_expr args
  in
  let comp_assigned = ref false in
  let rec check_body body =
    let saved = !env in
    List.iter
      (fun s ->
        match s with
        | Ast.Decl { name; init } ->
          check_expr init;
          declare name Kscalar
        | Ast.Assign { lhs; op = _; rhs } -> begin
          (match lhs with
           | Ast.Lv_var name ->
             if name = Ast.comp_name then comp_assigned := true
             else begin
               match lookup env name with
               | None -> note (Unbound_variable name)
               | Some (Karray _) -> note (Array_used_as_scalar name)
               | Some (Kint _) -> note (Assign_to_counter name)
               | Some Kscalar -> ()
             end
           | Ast.Lv_index (arr, idx) ->
             check_index arr idx;
             check_expr idx);
          check_expr rhs
        end
        | Ast.If { lhs; cmp = _; rhs; body } ->
          check_expr lhs;
          check_expr rhs;
          check_body body
        | Ast.For { var; bound; body } ->
          if bound <= 0 || bound > max_loop_bound then
            note (Loop_bound_invalid bound);
          let saved_loop = !env in
          (if List.mem_assoc var !env || var = Ast.comp_name then
             note (Redeclared_variable var)
           else env := (var, Kint { bound = Some bound }) :: !env);
          check_body body;
          env := saved_loop)
      body;
    env := saved
  in
  check_body p.body;
  if not !comp_assigned then note Comp_never_assigned;
  match List.rev !issues with [] -> Ok () | issues -> Error issues

let is_valid p = Result.is_ok (check p)
