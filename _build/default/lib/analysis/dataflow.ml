open Lang

type edge = { def : string; use : string }

let reads_of_expr e =
  List.rev
    (Ast.fold_expr
       (fun acc e ->
         match e with
         | Ast.Var n -> n :: acc
         | Ast.Index (a, _) -> a :: acc
         | Ast.Lit _ | Ast.Int_lit _ | Ast.Neg _ | Ast.Bin _ | Ast.Call _ -> acc)
       [] e)

let edges p =
  let p = Ast.alpha_normalize p in
  let out = ref [] in
  let emit def uses = List.iter (fun use -> out := { def; use } :: !out) uses in
  let rec walk body =
    List.iter
      (fun s ->
        match s with
        | Ast.Decl { name; init } -> emit name (reads_of_expr init)
        | Ast.Assign { lhs; op; rhs } ->
          let def, extra_reads =
            match lhs with
            | Ast.Lv_var n -> (n, [])
            | Ast.Lv_index (a, idx) -> (a, reads_of_expr idx)
          in
          let self = if op = Ast.Set then [] else [ def ] in
          emit def (self @ extra_reads @ reads_of_expr rhs)
        | Ast.If { lhs; rhs; body; _ } ->
          (* Condition reads guard the block: attribute them to a pseudo
             definition so control dependence participates in the match. *)
          emit "<branch>" (reads_of_expr lhs @ reads_of_expr rhs);
          walk body
        | Ast.For { body; _ } -> walk body)
      body
  in
  walk p.body;
  List.rev !out

let match_score ~candidate ~reference =
  let cand = edges candidate and ref_ = edges reference in
  match cand with
  | [] -> 1.0
  | _ ->
    let table = Hashtbl.create 64 in
    List.iter
      (fun e ->
        let k = (e.def, e.use) in
        Hashtbl.replace table k (1 + Option.value (Hashtbl.find_opt table k) ~default:0))
      ref_;
    let matched =
      List.fold_left
        (fun acc e ->
          let k = (e.def, e.use) in
          match Hashtbl.find_opt table k with
          | Some n when n > 0 ->
            Hashtbl.replace table k (n - 1);
            acc + 1
          | _ -> acc)
        0 cand
    in
    float_of_int matched /. float_of_int (List.length cand)
