(** Structural feature extraction.

    A compact summary of what a program exercises. The harness uses it to
    characterize generated corpora (e.g. how often multiply-add patterns or
    loop-carried accumulations occur — the patterns that make compiler
    personalities diverge), and the reports print aggregate feature
    statistics alongside the paper's tables. *)

type t = {
  size : int;            (** AST node count *)
  depth : int;           (** statement nesting depth *)
  add_count : int;
  sub_count : int;
  mul_count : int;
  div_count : int;
  call_count : int;
  distinct_math_fns : string list;  (** sorted, deduplicated *)
  loop_count : int;
  if_count : int;
  temp_count : int;      (** declared temporaries *)
  array_param_count : int;
  scalar_param_count : int;
  int_param_count : int;
  literal_count : int;
  literal_abs_max : float;    (** 0 when there are no literals *)
  mul_add_patterns : int;
      (** syntactic [a*b + c] / [c + a*b] shapes, FMA-contraction fodder *)
  split_mul_add_patterns : int;
      (** multiply stored in a temporary and added in a later statement —
          the cross-statement contraction fodder that distinguishes the
          simulated gcc from clang *)
  accumulation_loops : int;
      (** loops whose body compound-assigns the accumulator or a temp *)
}

val of_program : Lang.Ast.program -> t

val pp : Format.formatter -> t -> unit
