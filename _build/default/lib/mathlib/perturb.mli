(** Deterministic last-ulp divergence between math-library vendors.

    Different libms agree to within an ulp or two on transcendental
    functions but round differently on a fraction of arguments; this is
    the root cause of the paper's host-vs-device inconsistencies at every
    optimization level. We model it as a pure function of
    (salt, function, argument bits): a keyed hash decides, per call site
    value, whether this vendor's result deviates from the baseline and by
    how many ulps. The same vendor always returns the same value for the
    same arguments (libraries are deterministic), and different salts give
    uncorrelated divergence patterns (different libraries disagree on
    different arguments). *)

type profile = {
  salt : int64;       (** vendor identity *)
  prob : float;       (** probability a given argument diverges *)
  max_ulps : int;     (** largest divergence magnitude, >= 1 *)
}

val profile : salt:int64 -> prob:float -> max_ulps:int -> profile

type grid = F64 | F32

val apply :
  ?grid:grid -> profile -> Lang.Ast.math_fn -> float list -> float -> float
(** [apply p fn args base] nudges [base] according to the profile, on the
    binary64 grid by default or the binary32 grid for single-precision
    library calls. Exactly rounded functions
    ({!Reference.is_exactly_rounded}), non-finite bases, and zero bases
    are returned unchanged. *)
