open Lang

type flavor =
  | Glibc
  | Mpfr_fold
  | Llvm_fold
  | Cuda
  | Gcc_fast
  | Clang_fast
  | Cuda_fast

let flavor_name = function
  | Glibc -> "glibc"
  | Mpfr_fold -> "mpfr-fold"
  | Llvm_fold -> "llvm-fold"
  | Cuda -> "cuda-libm"
  | Gcc_fast -> "gcc-fastmath"
  | Clang_fast -> "clang-fastmath"
  | Cuda_fast -> "cuda-fastmath"

(* Divergence profiles. Probabilities are per (function, argument) and were
   calibrated so campaign-level inconsistency rates land in the paper's
   regime (see EXPERIMENTS.md): real libms agree on the overwhelming
   majority of arguments, so per-call divergence is rare even though
   almost every long-running program eventually observes one. *)

let mpfr_profile = Perturb.profile ~salt:0x6D70667231L ~prob:0.04 ~max_ulps:1
let llvm_fold_profile = Perturb.profile ~salt:0x6C6C766DL ~prob:0.04 ~max_ulps:1
let cuda_profile = Perturb.profile ~salt:0x63756461L ~prob:0.5 ~max_ulps:1

(* pow/tan/hypot-class functions have larger vendor spreads. *)
let cuda_hard_profile = Perturb.profile ~salt:0x63756461FFL ~prob:0.65 ~max_ulps:2

let gcc_fast_profile = Perturb.profile ~salt:0x676363L ~prob:0.10 ~max_ulps:2
let clang_fast_profile = Perturb.profile ~salt:0x636C616E67L ~prob:0.10 ~max_ulps:2
let cuda_fast_other_profile = Perturb.profile ~salt:0x637564616646L ~prob:0.30 ~max_ulps:4

let is_hard = function
  | Ast.Pow | Ast.Tan | Ast.Sinh | Ast.Cosh | Ast.Expm1 | Ast.Log1p
  | Ast.Hypot | Ast.Atan2 ->
    true
  | _ -> false

(* Fast-math min/max lowering. C's fmin/fmax treat NaN as "missing", but
   under fast math compilers are free to emit a bare compare-and-select.
   gcc selects `a < b ? a : b`, clang the symmetric `b < a ? b : a`, so a
   NaN operand comes out differently per compiler; nvcc's device fast
   path keeps the IEEE number-favoring semantics. *)
let fast_minmax flavor fn args =
  match (flavor, fn, args) with
  | Gcc_fast, Ast.Fmin, [ a; b ] -> Some (if a < b then a else b)
  | Gcc_fast, Ast.Fmax, [ a; b ] -> Some (if a > b then a else b)
  | Clang_fast, Ast.Fmin, [ a; b ] -> Some (if b < a then b else a)
  | Clang_fast, Ast.Fmax, [ a; b ] -> Some (if b > a then b else a)
  | _ -> None

(* The float intrinsics (__sinf and friends) are a few float-ulps off;
   on the F32 grid the divergence profile is correspondingly coarser. *)
let cuda_fast32_profile = Perturb.profile ~salt:0x5F5F66L ~prob:0.6 ~max_ulps:3

let call ?(precision = Ast.F64) flavor fn args =
  let grid =
    match precision with Ast.F64 -> Perturb.F64 | Ast.F32 -> Perturb.F32
  in
  match fast_minmax flavor fn args with
  | Some v -> v
  | None ->
  let base = Reference.eval fn args in
  match flavor with
  | Glibc -> base
  | Mpfr_fold -> Perturb.apply ~grid mpfr_profile fn args base
  | Llvm_fold -> Perturb.apply ~grid llvm_fold_profile fn args base
  | Cuda ->
    let p = if is_hard fn then cuda_hard_profile else cuda_profile in
    Perturb.apply ~grid p fn args base
  | Gcc_fast -> Perturb.apply ~grid gcc_fast_profile fn args base
  | Clang_fast -> Perturb.apply ~grid clang_fast_profile fn args base
  | Cuda_fast -> begin
    let polynomial =
      match (fn, args) with
      | Ast.Sin, [ x ] -> Some (Poly.sin_fast x)
      | Ast.Cos, [ x ] -> Some (Poly.cos_fast x)
      | Ast.Tan, [ x ] -> Some (Poly.tan_fast x)
      | Ast.Exp, [ x ] -> Some (Poly.exp_fast x)
      | Ast.Exp2, [ x ] -> Some (Poly.exp2_fast x)
      | Ast.Log, [ x ] -> Some (Poly.log_fast x)
      | Ast.Log2, [ x ] -> Some (Poly.log2_fast x)
      | Ast.Log10, [ x ] -> Some (Poly.log10_fast x)
      | Ast.Pow, [ x; y ] -> Some (Poly.pow_fast x y)
      | _ -> None
    in
    match (polynomial, precision) with
    | Some v, Ast.F64 -> v
    | Some v, Ast.F32 ->
      (* the __foof intrinsics carry their own float-ulp error *)
      Perturb.apply ~grid cuda_fast32_profile fn args v
    | None, _ -> Perturb.apply ~grid cuda_fast_other_profile fn args base
  end

let call1 ?precision flavor fn x = call ?precision flavor fn [ x ]
let call2 ?precision flavor fn x y = call ?precision flavor fn [ x; y ]

let profiles_doc =
  "glibc: baseline (identity). mpfr-fold: p=0.04, <=1 ulp. llvm-fold: \
   p=0.04, <=1 ulp, distinct salt. cuda-libm: p=0.5 (hard fns 0.65), \
   <=1-2 ulp. gcc/clang-fastmath: p=0.10, <=2 ulp, distinct salts. \
   cuda-fastmath: polynomial kernels for sin/cos/tan/exp/log/pow (~1e-12 \
   rel. err.), p=0.30 <=4 ulp elsewhere."
