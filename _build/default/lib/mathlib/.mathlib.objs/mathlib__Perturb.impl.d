lib/mathlib/perturb.ml: Array Float Fp Int64 Lang List Reference
