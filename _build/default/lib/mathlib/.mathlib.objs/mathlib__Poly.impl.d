lib/mathlib/poly.ml: Array Float Int64
