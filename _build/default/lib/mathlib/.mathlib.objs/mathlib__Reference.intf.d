lib/mathlib/reference.mli: Lang
