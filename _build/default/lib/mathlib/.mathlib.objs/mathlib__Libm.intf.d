lib/mathlib/libm.mli: Lang
