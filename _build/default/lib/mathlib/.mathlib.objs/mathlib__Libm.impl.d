lib/mathlib/libm.ml: Ast Lang Perturb Poly Reference
