lib/mathlib/reference.ml: Ast Float Lang
