lib/mathlib/perturb.mli: Lang
