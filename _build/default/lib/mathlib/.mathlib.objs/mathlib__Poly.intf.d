lib/mathlib/poly.mli:
