(** Math-library vendor dispatch.

    Each simulated compiler configuration links one flavor:

    - [Glibc] — the GNU C library's libm; both host compilers link it
      (paper §3.1.1), so it is the baseline.
    - [Mpfr_fold] — the semantics gcc uses when it folds a libm call on
      constant arguments at compile time: correctly rounded (real gcc
      folds via MPFR), which disagrees with the runtime library in the
      last ulp on a small fraction of arguments. gcc folds builtins at
      every optimization level, including [-O0].
    - [Llvm_fold] — LLVM's constant folder calls the build machine's
      libm, which can disagree with the runtime library (and with MPFR)
      on its own set of arguments; clang folds once it optimizes
      ([-O1] and above).
    - [Cuda] — the CUDA Math library linked by nvcc: agrees with glibc on
      most arguments, diverges by 1–2 ulps on some (more often on hard
      functions such as pow and tan).
    - [Gcc_fast] / [Clang_fast] — host [-ffast-math] runtimes (vectorized
      math routines with relaxed accuracy); the two compilers ship
      different routines, so their divergence patterns are uncorrelated.
    - [Cuda_fast] — nvcc [-use_fast_math] intrinsics: the {!Poly} kernels
      for the common transcendentals, heavier perturbation elsewhere.

    Divergence probabilities are the model's central calibration knobs;
    they live in {!profiles_doc} and are reported by the benchmark
    harness. *)

type flavor =
  | Glibc
  | Mpfr_fold
  | Llvm_fold
  | Cuda
  | Gcc_fast
  | Clang_fast
  | Cuda_fast

val flavor_name : flavor -> string

val call :
  ?precision:Lang.Ast.precision ->
  flavor -> Lang.Ast.math_fn -> float list -> float
(** Evaluate one math-library call under a vendor flavor. [precision]
    (default FP64) selects the divergence grid: single-precision library
    functions disagree at {e float} ulps, and the device fast-math
    intrinsics ([__sinf] etc.) carry a few float-ulps of their own error.
    Raises [Invalid_argument] on arity mismatch. *)

val call1 :
  ?precision:Lang.Ast.precision -> flavor -> Lang.Ast.math_fn -> float -> float
val call2 :
  ?precision:Lang.Ast.precision ->
  flavor -> Lang.Ast.math_fn -> float -> float -> float

val profiles_doc : string
(** One-line-per-flavor description of the divergence model (salt,
    probability, magnitude), for reports and EXPERIMENTS.md. *)
