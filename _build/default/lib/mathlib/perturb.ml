type profile = { salt : int64; prob : float; max_ulps : int }

let profile ~salt ~prob ~max_ulps =
  if prob < 0.0 || prob > 1.0 then invalid_arg "Perturb.profile: prob";
  if max_ulps < 1 then invalid_arg "Perturb.profile: max_ulps";
  { salt; prob; max_ulps }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let fn_tag fn =
  let rec index i =
    if Lang.Ast.all_math_fns.(i) == fn || Lang.Ast.all_math_fns.(i) = fn then i
    else index (i + 1)
  in
  Int64.of_int (index 0)

let key profile fn args =
  let h = ref (mix profile.salt) in
  h := mix (Int64.add !h (fn_tag fn));
  List.iter (fun a -> h := mix (Int64.logxor !h (Int64.bits_of_float a))) args;
  !h

let unit_float h =
  Int64.to_float (Int64.shift_right_logical h 11) *. 0x1.0p-53

type grid = F64 | F32

let apply ?(grid = F64) profile fn args base =
  if Reference.is_exactly_rounded fn then base
  else if (not (Float.is_finite base)) || base = 0.0 then base
  else
    let h = key profile fn args in
    if unit_float h >= profile.prob then base
    else
      let h2 = mix h in
      let magnitude = 1 + Int64.to_int (Int64.rem (Int64.shift_right_logical h2 2) (Int64.of_int profile.max_ulps)) in
      let direction = if Int64.logand h2 1L = 0L then magnitude else -magnitude in
      match grid with
      | F64 -> Fp.Bits.nudge_ulps base direction
      | F32 -> Fp.Bits.nudge_ulps32 base direction
