(** Baseline double-precision math-library semantics.

    This is the semantics of the GNU C library's libm as seen through the
    host platform (which is what the paper's host compilations link
    against, §3.1.1). All vendor variants are expressed relative to it.

    Functions whose IEEE-754 results are exactly specified (sqrt, fabs,
    floor, ceil, fmin, fmax, fmod) are identical across every vendor; see
    {!is_exactly_rounded}. *)

val eval : Lang.Ast.math_fn -> float list -> float
(** Apply the function. Raises [Invalid_argument] on an arity mismatch. *)

val eval1 : Lang.Ast.math_fn -> float -> float
val eval2 : Lang.Ast.math_fn -> float -> float -> float

val is_exactly_rounded : Lang.Ast.math_fn -> bool
(** True for operations the IEEE standard fully specifies — every correct
    library agrees bit-for-bit, so vendor perturbation never applies. *)
