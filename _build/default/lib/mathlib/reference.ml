open Lang

let eval1 fn x =
  match fn with
  | Ast.Sin -> sin x
  | Ast.Cos -> cos x
  | Ast.Tan -> tan x
  | Ast.Asin -> asin x
  | Ast.Acos -> acos x
  | Ast.Atan -> atan x
  | Ast.Sinh -> sinh x
  | Ast.Cosh -> cosh x
  | Ast.Tanh -> tanh x
  | Ast.Exp -> exp x
  | Ast.Exp2 -> Float.exp2 x
  | Ast.Expm1 -> expm1 x
  | Ast.Log -> log x
  | Ast.Log2 -> Float.log2 x
  | Ast.Log10 -> log10 x
  | Ast.Log1p -> log1p x
  | Ast.Sqrt -> sqrt x
  | Ast.Cbrt -> Float.cbrt x
  | Ast.Fabs -> Float.abs x
  | Ast.Floor -> floor x
  | Ast.Ceil -> ceil x
  | Ast.Pow | Ast.Fmod | Ast.Atan2 | Ast.Hypot | Ast.Fmin | Ast.Fmax ->
    invalid_arg "Reference.eval1: binary function"

let eval2 fn x y =
  match fn with
  | Ast.Pow -> Float.pow x y
  | Ast.Fmod -> Float.rem x y
  | Ast.Atan2 -> Float.atan2 x y
  | Ast.Hypot -> Float.hypot x y
  | Ast.Fmin -> Float.min_num x y
  | Ast.Fmax -> Float.max_num x y
  | _ -> invalid_arg "Reference.eval2: unary function"

let eval fn args =
  match (Ast.math_fn_arity fn, args) with
  | 1, [ x ] -> eval1 fn x
  | 2, [ x; y ] -> eval2 fn x y
  | _ -> invalid_arg "Reference.eval: arity mismatch"

let is_exactly_rounded = function
  | Ast.Sqrt | Ast.Fabs | Ast.Floor | Ast.Ceil | Ast.Fmin | Ast.Fmax
  | Ast.Fmod ->
    true
  | Ast.Sin | Ast.Cos | Ast.Tan | Ast.Asin | Ast.Acos | Ast.Atan
  | Ast.Sinh | Ast.Cosh | Ast.Tanh | Ast.Exp | Ast.Exp2 | Ast.Expm1
  | Ast.Log | Ast.Log2 | Ast.Log10 | Ast.Log1p | Ast.Cbrt | Ast.Pow
  | Ast.Atan2 | Ast.Hypot ->
    false
