(* Cody–Waite two-constant split of pi/2: pi/2 = dp1 + dp2 with dp1 having
   trailing zero bits, so k*dp1 subtracts exactly for moderate k. *)
let dp1 = 1.5707963267341256e0 (* high part of pi/2 *)
let dp2 = 6.077100506506192e-11 (* low part *)

let poly coeffs x =
  Array.fold_left (fun acc c -> (acc *. x) +. c) 0.0 coeffs

(* Truncated Taylor kernels on |r| <= pi/4; the missing higher terms are
   exactly the fast-math accuracy loss. *)
let sin_kernel r =
  let r2 = r *. r in
  r
  *. poly
       [| -2.505210838544172e-8; 2.7557319223985893e-6;
          -1.984126984126984e-4; 8.333333333333333e-3;
          -0.16666666666666666; 1.0 |]
       r2

let cos_kernel r =
  let r2 = r *. r in
  poly
    [| -2.7557319223985888e-7; 2.48015873015873e-5; -1.3888888888888889e-3;
       4.1666666666666664e-2; -0.5; 1.0 |]
    r2

let reduce x =
  (* x = k * pi/2 + r, r in [-pi/4, pi/4]; k reduced mod 4. *)
  let k = Float.round (x /. 1.5707963267948966) in
  let r = x -. (k *. dp1) -. (k *. dp2) in
  let q = Int64.to_int (Int64.rem (Int64.of_float k) 4L) in
  let q = if q < 0 then q + 4 else q in
  (q, r)

let sin_fast x =
  if not (Float.is_finite x) then Float.nan
  else if Float.abs x > 1e15 then 0.0 (* fast reduction gives up *)
  else
    let q, r = reduce x in
    match q with
    | 0 -> sin_kernel r
    | 1 -> cos_kernel r
    | 2 -> -.sin_kernel r
    | _ -> -.cos_kernel r

let cos_fast x =
  if not (Float.is_finite x) then Float.nan
  else if Float.abs x > 1e15 then 1.0
  else
    let q, r = reduce x in
    match q with
    | 0 -> cos_kernel r
    | 1 -> -.sin_kernel r
    | 2 -> -.cos_kernel r
    | _ -> sin_kernel r

let tan_fast x =
  let s = sin_fast x and c = cos_fast x in
  s /. c

let log2_e = 1.4426950408889634

(* 2^f on f in [-0.5, 0.5], truncated expansion of exp(f ln 2). *)
let exp2_kernel f =
  let ln2 = 0.6931471805599453 in
  let t = f *. ln2 in
  poly
    [| 2.505210838544172e-8; 2.7557319223985893e-6; 2.48015873015873e-5;
       1.984126984126984e-4; 1.3888888888888889e-3; 8.333333333333333e-3;
       4.1666666666666664e-2; 0.16666666666666666; 0.5; 1.0; 1.0 |]
    t

let exp2_fast x =
  if Float.is_nan x then Float.nan
  else if x > 1024.0 then Float.infinity
  else if x < -1075.0 then 0.0
  else
    let k = Float.round x in
    let f = x -. k in
    ldexp (exp2_kernel f) (int_of_float k)

let exp_fast x = exp2_fast (x *. log2_e)

(* log2(m) for m in [1, 2) via atanh series: log(m) = 2 atanh((m-1)/(m+1)). *)
let log2_kernel m =
  let t = (m -. 1.0) /. (m +. 1.0) in
  let t2 = t *. t in
  let atanh_t =
    t
    *. poly
         [| 1.0 /. 13.0; 1.0 /. 11.0; 1.0 /. 9.0; 1.0 /. 7.0; 0.2;
            1.0 /. 3.0; 1.0 |]
         t2
  in
  2.0 *. atanh_t *. log2_e

let log2_fast x =
  if Float.is_nan x then Float.nan
  else if x < 0.0 then Float.nan
  else if x = 0.0 then Float.neg_infinity
  else if x = Float.infinity then Float.infinity
  else
    let m, e = Float.frexp x in
    (* frexp gives m in [0.5, 1); rescale to [1, 2). *)
    let m = m *. 2.0 and e = e - 1 in
    float_of_int e +. log2_kernel m

let ln2 = 0.6931471805599453
let log_fast x = log2_fast x *. ln2
let log10_fast x = log2_fast x *. 0.30102999566398120

let pow_fast x y =
  if y = 0.0 then 1.0
  else if x = 1.0 then 1.0
  else if x < 0.0 then Float.nan
  else if x = 0.0 then if y > 0.0 then 0.0 else Float.infinity
  else exp2_fast (y *. log2_fast x)
