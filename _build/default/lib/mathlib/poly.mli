(** Reduced-accuracy math kernels for device fast math.

    nvcc's [-use_fast_math] replaces math-library calls with faster, less
    accurate implementations. We implement that behaviour with real
    numerics rather than noise: Cody–Waite range reduction plus truncated
    polynomial kernels, giving relative errors around 1e-12..1e-14 — a few
    ulps off the precise library, deterministically, and in a pattern that
    is genuinely argument-dependent (as on real hardware).

    All kernels are total: they follow IEEE special-case conventions
    loosely (fast-math does not guarantee them), e.g. [log_fast] of a
    negative number is NaN, [exp_fast] overflows to infinity. *)

val sin_fast : float -> float
val cos_fast : float -> float
val tan_fast : float -> float
val exp_fast : float -> float
val log_fast : float -> float
val exp2_fast : float -> float
val log2_fast : float -> float
val log10_fast : float -> float
val pow_fast : float -> float -> float
(** [pow_fast x y] via [exp2_fast (y * log2_fast x)]; negative bases give
    NaN (fast math does not special-case integer exponents). *)
