lib/difftest/run.mli: Compiler Fp Irsim Lang
