lib/difftest/stats.mli: Compiler Fp Run
