lib/difftest/stats.ml: Array Compiler Fp Hashtbl List Option Run
