lib/difftest/run.ml: Array Compiler Either Fp Fun Irsim List
