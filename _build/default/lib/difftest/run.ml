type output = {
  config : Compiler.Config.t;
  value : float;
  hex : string;
  ops : int;
  work : int;
}

type comparison = {
  level : Compiler.Optlevel.t;
  left : output;
  right : output;
  inconsistent : bool;
  class_left : Fp.Bits.class_;
  class_right : Fp.Bits.class_;
  digits : int;
}

type result = {
  outputs : output list;
  failures : (Compiler.Config.t * string) list;
  cross : ((Compiler.Personality.t * Compiler.Personality.t) * comparison) list;
  within : (Compiler.Personality.t * comparison) list;
  total_work : int;
  total_ops : int;
}

let compare_outputs level (left : output) (right : output) =
  let inconsistent = left.hex <> right.hex in
  {
    level;
    left;
    right;
    inconsistent;
    class_left = Fp.Bits.classify left.value;
    class_right = Fp.Bits.classify right.value;
    digits = (if inconsistent then Fp.Digits.diff_count left.value right.value else 0);
  }

let test ?configs program inputs =
  let configs =
    match configs with Some cs -> cs | None -> Compiler.Config.all ()
  in
  let compiled, failures =
    List.partition_map Fun.id
      (List.map
         (fun config ->
           match Compiler.Driver.compile config program with
           | Ok binary -> Either.Left (config, binary)
           | Error msg -> Either.Right (config, msg))
         configs)
  in
  let outputs =
    List.map
      (fun ((config : Compiler.Config.t), (binary : Compiler.Driver.binary)) ->
        let out = Compiler.Driver.run binary inputs in
        {
          config;
          value = out.Irsim.Interp.result;
          hex = Fp.Bits.hex_of_double out.Irsim.Interp.result;
          ops = out.Irsim.Interp.fp_ops;
          work = binary.Compiler.Driver.work;
        })
      compiled
  in
  let find personality level =
    List.find_opt
      (fun o ->
        o.config.Compiler.Config.personality = personality
        && o.config.Compiler.Config.level = level)
      outputs
  in
  let cross =
    List.concat_map
      (fun level ->
        List.filter_map
          (fun (a, b) ->
            match (find a level, find b level) with
            | Some left, Some right ->
              Some ((a, b), compare_outputs level left right)
            | _ -> None)
          Compiler.Personality.pairs)
      (Array.to_list Compiler.Optlevel.all)
  in
  let within =
    List.concat_map
      (fun personality ->
        List.filter_map
          (fun level ->
            if level = Compiler.Optlevel.O0_nofma then None
            else
              match
                (find personality Compiler.Optlevel.O0_nofma, find personality level)
              with
              | Some baseline, Some other ->
                Some (personality, compare_outputs level baseline other)
              | _ -> None)
          (Array.to_list Compiler.Optlevel.all))
      (Array.to_list Compiler.Personality.all)
  in
  {
    outputs;
    failures;
    cross;
    within;
    total_work = List.fold_left (fun acc o -> acc + o.work) 0 outputs;
    total_ops = List.fold_left (fun acc o -> acc + o.ops) 0 outputs;
  }

let cross_inconsistencies result =
  List.fold_left
    (fun acc (_, c) -> if c.inconsistent then acc + 1 else acc)
    0 result.cross

let has_inconsistency result = cross_inconsistencies result > 0
