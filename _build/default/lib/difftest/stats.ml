let n_pairs = List.length Compiler.Personality.pairs
let n_levels = Array.length Compiler.Optlevel.all

type t = {
  mutable programs : int;
  mutable generation_failures : int;
  mutable programs_with_failures : int;
  cross_counts : int array array;              (* pair × level *)
  cross_digit_acc : Fp.Digits.Acc.t array array;
  class_counts : (int * int * int, int ref) Hashtbl.t;
      (* (level index, class rank low, class rank high) *)
  within : int array array;                    (* personality × level *)
  mutable inconsistencies : int;
  mutable work : int;
  mutable ops : int;
  mutable performed : int;
  mutable within_performed : int;
}

let create () =
  {
    programs = 0;
    generation_failures = 0;
    programs_with_failures = 0;
    cross_counts = Array.make_matrix n_pairs n_levels 0;
    cross_digit_acc =
      Array.init n_pairs (fun _ -> Array.make n_levels Fp.Digits.Acc.empty);
    class_counts = Hashtbl.create 32;
    within = Array.make_matrix (Array.length Compiler.Personality.all) n_levels 0;
    inconsistencies = 0;
    work = 0;
    ops = 0;
    performed = 0;
    within_performed = 0;
  }

let pair_index pair =
  let rec go i = function
    | [] -> invalid_arg "Stats.pair_index"
    | p :: rest -> if p = pair then i else go (i + 1) rest
  in
  go 0 Compiler.Personality.pairs

let personality_index p =
  let rec go i =
    if Compiler.Personality.all.(i) = p then i else go (i + 1)
  in
  go 0

let class_rank (c : Fp.Bits.class_) =
  match c with
  | Fp.Bits.Real -> 0
  | Fp.Bits.Zero -> 1
  | Fp.Bits.Pos_inf -> 2
  | Fp.Bits.Neg_inf -> 3
  | Fp.Bits.Nan -> 4

let note_class t level_idx a b =
  let ra = class_rank a and rb = class_rank b in
  let key = (level_idx, min ra rb, max ra rb) in
  match Hashtbl.find_opt t.class_counts key with
  | Some r -> incr r
  | None -> Hashtbl.replace t.class_counts key (ref 1)

let add t (result : Run.result) =
  t.programs <- t.programs + 1;
  if result.Run.failures <> [] then
    t.programs_with_failures <- t.programs_with_failures + 1;
  t.work <- t.work + result.Run.total_work;
  t.ops <- t.ops + result.Run.total_ops;
  List.iter
    (fun (pair, (c : Run.comparison)) ->
      t.performed <- t.performed + 1;
      if c.Run.inconsistent then begin
        let pi = pair_index pair in
        let li = Compiler.Optlevel.index c.Run.level in
        t.cross_counts.(pi).(li) <- t.cross_counts.(pi).(li) + 1;
        t.cross_digit_acc.(pi).(li) <-
          Fp.Digits.Acc.add t.cross_digit_acc.(pi).(li) c.Run.digits;
        t.inconsistencies <- t.inconsistencies + 1;
        note_class t li c.Run.class_left c.Run.class_right
      end)
    result.Run.cross;
  List.iter
    (fun (personality, (c : Run.comparison)) ->
      t.within_performed <- t.within_performed + 1;
      if c.Run.inconsistent then begin
        let pi = personality_index personality in
        let li = Compiler.Optlevel.index c.Run.level in
        t.within.(pi).(li) <- t.within.(pi).(li) + 1
      end)
    result.Run.within

let add_generation_failure t =
  t.programs <- t.programs + 1;
  t.generation_failures <- t.generation_failures + 1;
  t.programs_with_failures <- t.programs_with_failures + 1

let n_programs t = t.programs
let total_comparisons t = t.programs * n_pairs * n_levels
let performed_comparisons t = t.performed
let total_inconsistencies t = t.inconsistencies

let inconsistency_rate t =
  let total = total_comparisons t in
  if total = 0 then 0.0
  else float_of_int t.inconsistencies /. float_of_int total

let cross_count t ~pair ~level =
  t.cross_counts.(pair).(Compiler.Optlevel.index level)

let cross_digits t ~pair ~level =
  t.cross_digit_acc.(pair).(Compiler.Optlevel.index level)

let pair_total t ~pair = Array.fold_left ( + ) 0 t.cross_counts.(pair)

let class_pair_count t ?level (a, b) =
  let ra = class_rank a and rb = class_rank b in
  let lo = min ra rb and hi = max ra rb in
  match level with
  | Some l ->
    let li = Compiler.Optlevel.index l in
    Option.fold ~none:0 ~some:( ! ) (Hashtbl.find_opt t.class_counts (li, lo, hi))
  | None ->
    Hashtbl.fold
      (fun (_, l, h) count acc -> if l = lo && h = hi then acc + !count else acc)
      t.class_counts 0

let rank_class = function
  | 0 -> Fp.Bits.Real
  | 1 -> Fp.Bits.Zero
  | 2 -> Fp.Bits.Pos_inf
  | 3 -> Fp.Bits.Neg_inf
  | _ -> Fp.Bits.Nan

let class_pairs_present t =
  Hashtbl.fold (fun (_, lo, hi) _ acc -> (lo, hi) :: acc) t.class_counts []
  |> List.sort_uniq compare
  |> List.map (fun (lo, hi) -> (rank_class lo, rank_class hi))

let within_count t personality level =
  if level = Compiler.Optlevel.O0_nofma then 0
  else t.within.(personality_index personality).(Compiler.Optlevel.index level)

let within_total t personality =
  Array.fold_left ( + ) 0 t.within.(personality_index personality)

let within_comparisons t =
  t.programs * Array.length Compiler.Personality.all * (n_levels - 1)

let total_work t = t.work
let total_ops t = t.ops
let compile_failures t = t.programs_with_failures
