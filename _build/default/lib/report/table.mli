(** Plain-text table rendering for the experiment reports. *)

type align = Left | Right

val render :
  ?title:string ->
  header:string list ->
  ?align:align list ->
  string list list ->
  string
(** Column widths fit the widest cell; alignment defaults to [Left] for
    the first column and [Right] for the rest. Rows shorter than the
    header are padded with empty cells. *)

val pct : float -> string
(** [pct 0.2656 = "26.56%"]. *)

val pct1 : float -> string
(** One decimal: ["26.6%"]. *)

val commas : int -> string
(** Thousands separators: [commas 4781 = "4,781"]. *)

val to_csv : header:string list -> string list list -> string
(** The same data as comma-separated values (cells containing commas or
    quotes are quoted). *)
