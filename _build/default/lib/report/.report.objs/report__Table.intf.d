lib/report/table.mli:
