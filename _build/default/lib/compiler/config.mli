(** The policy matrix: what each (compiler, optimization level) pair
    actually does to floating-point code.

    This table is the simulator's model of gcc 9.4 / clang 12.0 /
    nvcc 12.3 behaviour (sources: compiler documentation and the
    mechanisms the Varity and pLiner papers report):

    {v
                 fold-calls      contraction        fast-math   libm       ftz
    gcc   00nf   mpfr (all lv)   none               -           glibc      no
          00     mpfr            none               -           glibc      no
          01-03  mpfr            cross-statement    -           glibc      no
          03fm   mpfr            cross-statement    balanced    gcc-fast   yes
    clang 00nf   -               none               -           glibc      no
          00     -               none               -           glibc      no
          01-03  llvm            syntactic          -           glibc      no
          03fm   llvm            syntactic          pairwise    clang-fast yes
    nvcc  00nf   -               none               -           cuda       no
          00-03  -               syntactic          -           cuda       no
          03fm   -               syntactic          flat        cuda-fast  yes
    v}

    Notes: gcc folds libm builtins on constants at every level (via MPFR,
    correctly rounded); clang folds once it optimizes, using the build
    host's libm; nvcc's device folding matches its runtime library, so it
    is modelled as no folding. nvcc contracts FMAs by default
    ([-fmad=true]) at every level except [00_nofma]. Host fast-math links
    [crtfastmath.o], enabling FTZ/DAZ on x86, so all three fast-math
    configurations flush subnormals. Basic-arithmetic constant folding is
    rounding-identical to runtime evaluation, hence enabled everywhere
    without observable effect. Our [O3] pipelines equal [O2]: without
    fast-math, real compilers' extra [-O3] work (vectorization choices,
    unrolling) is FP-transparent in the common case — EXPERIMENTS.md
    discusses the deviation. *)

type t = {
  personality : Personality.t;
  level : Optlevel.t;
  fold : Irsim.Fold.config;
  contract : Irsim.Contract.policy;
  fastmath : Irsim.Fastmath.config option;
  libm : Mathlib.Libm.flavor;
  ftz : bool;
  dce : bool;
  nan_cmp_taken : bool;
      (** fast-math finite-math branch compilation (gcc, nvcc) *)
}

val make : Personality.t -> Optlevel.t -> t

val effective : t -> Lang.Ast.precision -> t
(** The pipeline that actually applies to a program of the given
    precision. One adjustment: nvcc's [-use_fast_math] expands to
    [--ftz=true --prec-div=false --prec-sqrt=false --fmad=true], all of
    which affect {e single-precision} operations only — for an FP64
    program the device fast-math build behaves like [-O3] (the paper's
    Table 6 shows exactly this: the nvcc column is nearly flat across
    levels). The configuration's identity ([personality], [level]) is
    preserved for reporting. *)

val runtime : t -> Irsim.Interp.runtime

val name : t -> string
(** e.g. ["gcc -O3 -ffast-math"]. *)

val all : unit -> t list
(** Every (personality, level) combination, personalities major. *)
