lib/compiler/optlevel.mli:
