lib/compiler/personality.mli:
