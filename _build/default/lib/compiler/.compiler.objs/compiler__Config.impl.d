lib/compiler/config.ml: Array Irsim Lang List Mathlib Optlevel Personality Printf
