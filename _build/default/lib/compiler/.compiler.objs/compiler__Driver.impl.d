lib/compiler/driver.ml: Analysis Config Cparse Either Fp Irsim Lang List Personality Printf String
