lib/compiler/config.mli: Irsim Lang Mathlib Optlevel Personality
