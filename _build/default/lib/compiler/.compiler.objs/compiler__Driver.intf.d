lib/compiler/driver.mli: Config Either Irsim Lang
