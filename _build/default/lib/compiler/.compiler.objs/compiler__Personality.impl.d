lib/compiler/personality.ml: Printf
