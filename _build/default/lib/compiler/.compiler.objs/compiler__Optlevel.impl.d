lib/compiler/optlevel.ml: Array
