(** The simulated compilers (paper §3.1.1): gcc 9.4 and clang 12.0 as host
    compilers, nvcc 12.3 as the device compiler. *)

type t = Gcc | Clang | Nvcc

val all : t array
(** [| Gcc; Clang; Nvcc |]. *)

val name : t -> string
(** ["gcc"], ["clang"], ["nvcc"]. *)

val version : t -> string
(** The versions the paper evaluates. *)

val is_host : t -> bool

val pairs : (t * t) list
(** The three compiler pairs compared by differential testing, in the
    paper's column order: (gcc, clang), (gcc, nvcc), (clang, nvcc). *)

val pair_name : t * t -> string
(** e.g. ["gcc, nvcc"]. *)

val of_name : string -> t option
