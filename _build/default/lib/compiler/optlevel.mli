(** The six optimization levels of the paper's Table 1. *)

type t = O0_nofma | O0 | O1 | O2 | O3 | O3_fastmath

val all : t array
(** In Table 1 order. *)

val name : t -> string
(** Paper spelling: ["00_nofma"], ["00"], ..., ["03_fastmath"]. *)

val host_flags : t -> string
(** gcc/clang column of Table 1, e.g. ["-00 -ffp-contract=off"]. *)

val nvcc_flags : t -> string
(** nvcc column of Table 1, e.g. ["-00 -fmad=false"]. *)

val of_name : string -> t option

val index : t -> int
(** Position in {!all}. *)
