type t = O0_nofma | O0 | O1 | O2 | O3 | O3_fastmath

let all = [| O0_nofma; O0; O1; O2; O3; O3_fastmath |]

let name = function
  | O0_nofma -> "00_nofma"
  | O0 -> "00"
  | O1 -> "01"
  | O2 -> "02"
  | O3 -> "03"
  | O3_fastmath -> "03_fastmath"

let host_flags = function
  | O0_nofma -> "-O0 -ffp-contract=off"
  | O0 -> "-O0"
  | O1 -> "-O1"
  | O2 -> "-O2"
  | O3 -> "-O3"
  | O3_fastmath -> "-O3 -ffast-math"

let nvcc_flags = function
  | O0_nofma -> "-O0 -fmad=false"
  | O0 -> "-O0"
  | O1 -> "-O1"
  | O2 -> "-O2"
  | O3 -> "-O3"
  | O3_fastmath -> "-O3 -use_fast_math"

let of_name s =
  Array.find_opt (fun level -> name level = s) all

let index level =
  let rec go i = if all.(i) = level then i else go (i + 1) in
  go 0
