type t = {
  personality : Personality.t;
  level : Optlevel.t;
  fold : Irsim.Fold.config;
  contract : Irsim.Contract.policy;
  fastmath : Irsim.Fastmath.config option;
  libm : Mathlib.Libm.flavor;
  ftz : bool;
  dce : bool;
  nan_cmp_taken : bool;
}

let optimizes (level : Optlevel.t) =
  match level with
  | Optlevel.O0_nofma | Optlevel.O0 -> false
  | Optlevel.O1 | Optlevel.O2 | Optlevel.O3 | Optlevel.O3_fastmath -> true

let make (personality : Personality.t) (level : Optlevel.t) =
  let fastmath_level = level = Optlevel.O3_fastmath in
  let fold_calls =
    match personality with
    | Personality.Gcc -> Some Mathlib.Libm.Mpfr_fold
    | Personality.Clang ->
      if optimizes level then Some Mathlib.Libm.Llvm_fold else None
    | Personality.Nvcc -> None
  in
  let contract =
    match personality with
    | Personality.Gcc ->
      if optimizes level then Irsim.Contract.Cross_stmt
      else Irsim.Contract.No_contract
    | Personality.Clang ->
      if optimizes level then Irsim.Contract.Syntactic
      else Irsim.Contract.No_contract
    | Personality.Nvcc ->
      if level = Optlevel.O0_nofma then Irsim.Contract.No_contract
      else Irsim.Contract.Syntactic
  in
  let fastmath =
    if not fastmath_level then None
    else
      Some
        (match personality with
        | Personality.Gcc -> Irsim.Fastmath.gcc
        | Personality.Clang -> Irsim.Fastmath.clang
        | Personality.Nvcc -> Irsim.Fastmath.nvcc)
  in
  let libm =
    match (personality, fastmath_level) with
    | Personality.Gcc, false | Personality.Clang, false -> Mathlib.Libm.Glibc
    | Personality.Gcc, true -> Mathlib.Libm.Gcc_fast
    | Personality.Clang, true -> Mathlib.Libm.Clang_fast
    | Personality.Nvcc, false -> Mathlib.Libm.Cuda
    | Personality.Nvcc, true -> Mathlib.Libm.Cuda_fast
  in
  let nan_cmp_taken =
    (* finite-math branch compilation: gcc and nvcc negate the inverse
       predicate, clang keeps the IEEE-shaped compare *)
    fastmath_level
    && match personality with
       | Personality.Gcc | Personality.Nvcc -> true
       | Personality.Clang -> false
  in
  {
    personality;
    level;
    fold = { Irsim.Fold.fold_arith = true; fold_calls };
    contract;
    fastmath;
    libm;
    ftz = fastmath_level;
    dce = optimizes level;
    nan_cmp_taken;
  }

let effective t (precision : Lang.Ast.precision) =
  match (t.personality, t.level, precision) with
  | Personality.Nvcc, Optlevel.O3_fastmath, Lang.Ast.F64 ->
    (* -use_fast_math's extra flags are single-precision-only; an FP64
       kernel compiles as at -O3 (fmad is on either way) *)
    { (make Personality.Nvcc Optlevel.O3) with level = Optlevel.O3_fastmath }
  | _ -> t

let runtime t =
  { Irsim.Interp.libm = t.libm; ftz = t.ftz; nan_cmp_taken = t.nan_cmp_taken }

let name t =
  let flags =
    if Personality.is_host t.personality then Optlevel.host_flags t.level
    else Optlevel.nvcc_flags t.level
  in
  Printf.sprintf "%s %s" (Personality.name t.personality) flags

let all () =
  Array.to_list Personality.all
  |> List.concat_map (fun p ->
         Array.to_list Optlevel.all |> List.map (fun level -> make p level))
