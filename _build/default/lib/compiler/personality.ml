type t = Gcc | Clang | Nvcc

let all = [| Gcc; Clang; Nvcc |]

let name = function Gcc -> "gcc" | Clang -> "clang" | Nvcc -> "nvcc"

let version = function
  | Gcc -> "9.4"
  | Clang -> "12.0"
  | Nvcc -> "12.3"

let is_host = function Gcc | Clang -> true | Nvcc -> false

let pairs = [ (Gcc, Clang); (Gcc, Nvcc); (Clang, Nvcc) ]

let pair_name (a, b) = Printf.sprintf "%s, %s" (name a) (name b)

let of_name = function
  | "gcc" -> Some Gcc
  | "clang" -> Some Clang
  | "nvcc" -> Some Nvcc
  | _ -> None
