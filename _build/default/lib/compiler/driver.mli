(** The compilation driver (paper §2.4).

    Prepares a generated program for execution on host and device: the
    host path emits C and compiles it; the device path first translates C
    to CUDA ([compute] becomes a single-thread [__global__] kernel) and
    compiles that. "Compiling" means: emit the translation unit, re-parse
    it (the simulated front end — translation errors surface here, as
    real nvcc failures do), validate, lower to IR, and run the
    configuration's pass pipeline (constant folding → fast-math rewrites
    → FMA contraction → dead-store elimination). The result is a binary:
    optimized IR plus the runtime configuration. *)

type binary = {
  config : Config.t;
  source : string;  (** the exact translation unit that was "compiled" *)
  ir : Irsim.Ir.t;  (** after the pass pipeline *)
  work : int;       (** IR node count, the compile/execute cost proxy *)
}

val compile : Config.t -> Lang.Ast.program -> (binary, string) result
(** Validation or lowering failure yields [Error] (a compilation
    failure; the harness counts it and moves on, per §2.4 "only binaries
    that compile successfully are passed to the next stage"). *)

val run : binary -> Irsim.Inputs.t -> Irsim.Interp.outcome

val run_hex : binary -> Irsim.Inputs.t -> string
(** The 16-character hexadecimal encoding of the printed result — the
    comparison key of the paper's differential testing. *)

val matrix :
  Lang.Ast.program ->
  ((Config.t * binary, Config.t * string) Either.t) list
(** Compile under every configuration, keeping per-configuration
    successes and failures. *)
