(* Tests for lib/obs: JSON encoding, metrics registry, spans, sinks,
   and the end-to-end fixed-seed trace determinism guarantee. *)

open Helpers

(* ------------------------------------------------------------------ *)
(* Json *)

let test_json_roundtrip () =
  let v =
    Obs.Json.Obj
      [ ("name", Obs.Json.String "quote\"backslash\\newline\ntab\t");
        ("count", Obs.Json.Int 42);
        ("rate", Obs.Json.Float 0.1);
        ("flag", Obs.Json.Bool true);
        ("nothing", Obs.Json.Null);
        ("items", Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Float 2.5 ]) ]
  in
  let text = Obs.Json.to_string v in
  match Obs.Json.parse text with
  | Error msg -> Alcotest.fail ("parse failed: " ^ msg)
  | Ok parsed ->
    check_bool "round-trips" true (parsed = v);
    check_string "stable bytes" text (Obs.Json.to_string parsed)

let test_json_float_repr () =
  List.iter
    (fun f ->
      check_bool
        (Printf.sprintf "%h round-trips" f)
        true
        (float_of_string (Obs.Json.float_repr f) = f))
    [ 0.1; 1.0 /. 3.0; 557.3414196363634; 1e-300; 6.0; 0.0 ];
  (* shortest form preferred over noise digits *)
  check_string "0.1 is short" "0.1" (Obs.Json.float_repr 0.1)

let test_json_rejects_garbage () =
  List.iter
    (fun text ->
      match Obs.Json.parse text with
      | Ok _ -> Alcotest.fail ("accepted garbage: " ^ text)
      | Error _ -> ())
    [ "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ]

let test_event_jsonl () =
  let ev =
    Obs.Event.Inconsistency_found
      {
        slot = Some 7;
        pair = "gcc, nvcc";
        level = "03_fastmath";
        left_hex = "0x3ff0000000000000";
        right_hex = "0x3ff0000000000001";
        digits = 16;
      }
  in
  let line = Obs.Event.to_jsonl ev in
  match Obs.Json.parse line with
  | Error msg -> Alcotest.fail msg
  | Ok json ->
    check_bool "event field first" true
      (Obs.Json.member "event" json
      = Some (Obs.Json.String "inconsistency_found"));
    check_bool "slot carried" true
      (Obs.Json.member "slot" json = Some (Obs.Json.Int 7))

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics_counter () =
  let c = Obs.Metrics.counter "test.counter_a" in
  let before = Obs.Metrics.counter_value c in
  Obs.Metrics.incr c;
  Obs.Metrics.incr ~by:10 c;
  check_int "incremented" (before + 11) (Obs.Metrics.counter_value c);
  check_bool "same handle on re-request" true
    (Obs.Metrics.counter "test.counter_a" == c)

let test_metrics_gauge () =
  let g = Obs.Metrics.gauge "test.gauge_a" in
  Obs.Metrics.set g 2.5;
  Obs.Metrics.add g 1.5;
  check_bool "gauge value" true (Obs.Metrics.gauge_value g = 4.0)

let test_metrics_histogram () =
  let h = Obs.Metrics.histogram ~buckets:[| 1.0; 10.0 |] "test.hist_a" in
  List.iter (Obs.Metrics.observe h) [ 0.5; 1.0; 5.0; 100.0 ];
  match
    List.assoc_opt "test.hist_a" (Obs.Metrics.snapshot ())
  with
  | Some (Obs.Metrics.Histogram { counts; count; sum; _ }) ->
    check_int "total observations" 4 count;
    check_bool "sum" true (sum = 106.5);
    (* <=1 gets 0.5 and 1.0; <=10 gets 5.0; overflow gets 100.0 *)
    check_bool "bucket counts" true (counts = [| 2; 1; 1 |])
  | _ -> Alcotest.fail "histogram not in snapshot"

let test_metrics_kind_conflict () =
  let _ = Obs.Metrics.counter "test.conflicted" in
  match Obs.Metrics.gauge "test.conflicted" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind conflict accepted"

let test_metrics_snapshot_sorted_and_rendered () =
  let _ = Obs.Metrics.counter "test.zz_last" in
  let _ = Obs.Metrics.counter "test.aa_first" in
  let names = List.map fst (Obs.Metrics.snapshot ()) in
  check_bool "alphabetical" true (names = List.sort String.compare names);
  let table = Obs.Metrics.render_table () in
  check_bool "mentions instruments" true
    (Util.Text.contains_sub table "test.aa_first"
    && Util.Text.contains_sub table "test.zz_last")

let test_metrics_reset () =
  let c = Obs.Metrics.counter "test.reset_me" in
  Obs.Metrics.incr ~by:5 c;
  Obs.Metrics.reset ();
  check_int "zeroed in place" 0 (Obs.Metrics.counter_value c);
  Obs.Metrics.incr c;
  check_int "handle still live" 1 (Obs.Metrics.counter_value c)

(* ------------------------------------------------------------------ *)
(* Span *)

let with_spans f =
  Obs.Span.reset ();
  Obs.Span.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Span.set_enabled false;
      Obs.Span.reset ())
    f

let find_span label =
  List.find_opt
    (fun (r : Obs.Span.row) -> r.Obs.Span.label = label)
    (Obs.Span.summary ())

let test_span_nesting_and_aggregation () =
  with_spans @@ fun () ->
  for _ = 1 to 3 do
    Obs.Span.with_span "outer" (fun () ->
        Obs.Span.with_span "inner" (fun () -> Sys.opaque_identity (ignore 0)))
  done;
  match (find_span "outer", find_span "inner") with
  | Some outer, Some inner ->
    check_int "outer count" 3 outer.Obs.Span.count;
    check_int "inner count" 3 inner.Obs.Span.count;
    check_bool "nested time within parent" true
      (inner.Obs.Span.total_s <= outer.Obs.Span.total_s);
    check_bool "max <= total" true
      (outer.Obs.Span.max_s <= outer.Obs.Span.total_s +. 1e-12)
  | _ -> Alcotest.fail "spans not recorded"

let test_span_sim_clock () =
  with_spans @@ fun () ->
  let clock = Util.Sim_clock.create () in
  Obs.Span.with_clock clock (fun () ->
      Obs.Span.with_span "charged" (fun () ->
          Util.Sim_clock.advance clock 12.5));
  match find_span "charged" with
  | Some r -> check_bool "sim delta captured" true (r.Obs.Span.sim_s = 12.5)
  | None -> Alcotest.fail "span not recorded"

let test_span_disabled_records_nothing () =
  Obs.Span.reset ();
  check_bool "disabled by default here" false (Obs.Span.is_enabled ());
  check_int "disabled span returns value" 9
    (Obs.Span.with_span "ghost" (fun () -> 9));
  check_bool "nothing recorded" true (find_span "ghost" = None)

let test_span_records_on_exception () =
  with_spans @@ fun () ->
  (try Obs.Span.with_span "thrower" (fun () -> failwith "boom")
   with Failure _ -> ());
  match find_span "thrower" with
  | Some r -> check_int "recorded despite raise" 1 r.Obs.Span.count
  | None -> Alcotest.fail "span lost on exception"

let test_span_render () =
  with_spans @@ fun () ->
  Obs.Span.with_span "render.me" (fun () -> ());
  check_bool "table mentions label" true
    (Util.Text.contains_sub (Obs.Span.render ()) "render.me")

(* ------------------------------------------------------------------ *)
(* Sinks and trace dispatch *)

let test_ring_sink () =
  let sink, events = Obs.Sink.ring ~capacity:3 () in
  Obs.Trace.with_sink sink (fun () ->
      check_bool "trace on while subscribed" true (Obs.Trace.on ());
      for slot = 1 to 5 do
        Obs.Trace.emit (Obs.Event.Slot_started { slot; strategy = "grammar" })
      done);
  check_bool "trace off after" false (Obs.Trace.on ());
  let slots =
    List.map
      (function
        | Obs.Event.Slot_started { slot; _ } -> slot
        | _ -> Alcotest.fail "unexpected event")
      (events ())
  in
  check_bool "keeps last 3, oldest first" true (slots = [ 3; 4; 5 ])

let test_slot_context () =
  check_bool "no slot outside" true (Obs.Trace.current_slot () = None);
  let inside =
    Obs.Trace.with_slot 4 (fun () ->
        Obs.Trace.with_slot 9 (fun () -> ignore (Obs.Trace.current_slot ()));
        Obs.Trace.current_slot ())
  in
  check_bool "nested restores" true (inside = Some 4);
  check_bool "restored after" true (Obs.Trace.current_slot () = None)

(* ------------------------------------------------------------------ *)
(* End-to-end: campaign tracing *)

let trace_lines ~seed ~budget =
  let path = Filename.temp_file "llm4fp_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          Obs.Trace.with_sink (Obs.Sink.jsonl oc) (fun () ->
              ignore
                (Harness.Campaign.run ~budget ~seed Harness.Approach.Llm4fp)));
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go acc =
            match input_line ic with
            | line -> go (line :: acc)
            | exception End_of_file -> List.rev acc
          in
          go []))

let test_campaign_trace_deterministic () =
  let a = trace_lines ~seed:31337 ~budget:8 in
  let b = trace_lines ~seed:31337 ~budget:8 in
  check_bool "two fixed-seed runs trace identically" true (a = b);
  check_bool "different seed differs" false
    (trace_lines ~seed:31338 ~budget:8 = a)

let test_campaign_trace_shape () =
  let lines = trace_lines ~seed:31337 ~budget:8 in
  check_bool "non-trivial stream" true (List.length lines > 8);
  let parsed =
    List.map
      (fun line ->
        match Obs.Json.parse line with
        | Ok json -> json
        | Error msg -> Alcotest.fail (msg ^ ": " ^ line))
      lines
  in
  let kind json =
    match Obs.Json.member "event" json with
    | Some (Obs.Json.String k) -> k
    | _ -> Alcotest.fail "event field missing"
  in
  let kinds = List.map kind parsed in
  check_string "starts with campaign_started" "campaign_started"
    (List.hd kinds);
  check_string "ends with campaign_finished" "campaign_finished"
    (List.nth kinds (List.length kinds - 1));
  List.iter
    (fun needle ->
      check_bool (needle ^ " present") true (List.mem needle kinds))
    [ "slot_started"; "generated"; "compiled"; "executed"; "compared";
      "slot_finished" ];
  (* slot_started appears exactly once per budget slot *)
  check_int "one slot_started per slot" 8
    (List.length (List.filter (String.equal "slot_started") kinds));
  (* no raw wall-clock anywhere: the only time-like fields are the
     deterministic latency model and simulated clock *)
  List.iter
    (fun json ->
      check_bool "no timestamp field" true
        (Obs.Json.member "timestamp" json = None
        && Obs.Json.member "time" json = None))
    parsed

let test_campaign_untraced_still_works () =
  (* no sink: instrumentation must be inert, outcome unchanged *)
  let traced =
    let _ = trace_lines ~seed:777 ~budget:6 in
    Harness.Campaign.run ~budget:6 ~seed:777 Harness.Approach.Llm4fp
  in
  let untraced = Harness.Campaign.run ~budget:6 ~seed:777 Harness.Approach.Llm4fp in
  check_bool "same programs with and without tracing" true
    (List.for_all2 Lang.Ast.equal traced.Harness.Campaign.programs
       untraced.Harness.Campaign.programs);
  check_bool "same simulated time" true
    (traced.Harness.Campaign.sim_seconds
    = untraced.Harness.Campaign.sim_seconds)

let test_campaign_metrics_populated () =
  Obs.Metrics.reset ();
  let o = Harness.Campaign.run ~budget:10 ~seed:4242 Harness.Approach.Llm4fp in
  let value name =
    match List.assoc_opt name (Obs.Metrics.snapshot ()) with
    | Some (Obs.Metrics.Counter n) -> n
    | _ -> Alcotest.fail (name ^ " missing")
  in
  check_int "slots counted" 10 (value "campaign.slots");
  check_int "llm calls counted" 10 (value "llm.calls");
  check_int "difftest programs = valid programs"
    (List.length o.Harness.Campaign.programs)
    (value "difftest.programs");
  check_int "compiles = 18 per valid program"
    (18 * List.length o.Harness.Campaign.programs)
    (value "compiler.compile.ok" + value "compiler.compile.error")

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "float repr" `Quick test_json_float_repr;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
          Alcotest.test_case "event jsonl" `Quick test_event_jsonl;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter" `Quick test_metrics_counter;
          Alcotest.test_case "gauge" `Quick test_metrics_gauge;
          Alcotest.test_case "histogram" `Quick test_metrics_histogram;
          Alcotest.test_case "kind conflict" `Quick test_metrics_kind_conflict;
          Alcotest.test_case "snapshot sorted" `Quick
            test_metrics_snapshot_sorted_and_rendered;
          Alcotest.test_case "reset" `Quick test_metrics_reset;
        ] );
      ( "span",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting_and_aggregation;
          Alcotest.test_case "sim clock" `Quick test_span_sim_clock;
          Alcotest.test_case "disabled" `Quick test_span_disabled_records_nothing;
          Alcotest.test_case "exception safe" `Quick
            test_span_records_on_exception;
          Alcotest.test_case "render" `Quick test_span_render;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring sink" `Quick test_ring_sink;
          Alcotest.test_case "slot context" `Quick test_slot_context;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "deterministic jsonl" `Slow
            test_campaign_trace_deterministic;
          Alcotest.test_case "trace shape" `Slow test_campaign_trace_shape;
          Alcotest.test_case "tracing is inert" `Slow
            test_campaign_untraced_still_works;
          Alcotest.test_case "metrics populated" `Slow
            test_campaign_metrics_populated;
        ] );
    ]
