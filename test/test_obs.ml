(* Tests for lib/obs: JSON encoding, metrics registry, spans, sinks,
   and the end-to-end fixed-seed trace determinism guarantee. *)

open Helpers

(* ------------------------------------------------------------------ *)
(* Json *)

let test_json_roundtrip () =
  let v =
    Obs.Json.Obj
      [ ("name", Obs.Json.String "quote\"backslash\\newline\ntab\t");
        ("count", Obs.Json.Int 42);
        ("rate", Obs.Json.Float 0.1);
        ("flag", Obs.Json.Bool true);
        ("nothing", Obs.Json.Null);
        ("items", Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Float 2.5 ]) ]
  in
  let text = Obs.Json.to_string v in
  match Obs.Json.parse text with
  | Error msg -> Alcotest.fail ("parse failed: " ^ msg)
  | Ok parsed ->
    check_bool "round-trips" true (parsed = v);
    check_string "stable bytes" text (Obs.Json.to_string parsed)

let test_json_float_repr () =
  List.iter
    (fun f ->
      check_bool
        (Printf.sprintf "%h round-trips" f)
        true
        (float_of_string (Obs.Json.float_repr f) = f))
    [ 0.1; 1.0 /. 3.0; 557.3414196363634; 1e-300; 6.0; 0.0 ];
  (* shortest form preferred over noise digits *)
  check_string "0.1 is short" "0.1" (Obs.Json.float_repr 0.1)

let test_json_rejects_garbage () =
  List.iter
    (fun text ->
      match Obs.Json.parse text with
      | Ok _ -> Alcotest.fail ("accepted garbage: " ^ text)
      | Error _ -> ())
    [ "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ]

let test_event_jsonl () =
  let ev =
    Obs.Event.Inconsistency_found
      {
        slot = Some 7;
        pair = "gcc, nvcc";
        level = "03_fastmath";
        left_hex = "0x3ff0000000000000";
        right_hex = "0x3ff0000000000001";
        digits = 16;
      }
  in
  let line = Obs.Event.to_jsonl ev in
  match Obs.Json.parse line with
  | Error msg -> Alcotest.fail msg
  | Ok json ->
    check_bool "event field first" true
      (Obs.Json.member "event" json
      = Some (Obs.Json.String "inconsistency_found"));
    check_bool "slot carried" true
      (Obs.Json.member "slot" json = Some (Obs.Json.Int 7))

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics_counter () =
  let c = Obs.Metrics.counter "test.counter_a" in
  let before = Obs.Metrics.counter_value c in
  Obs.Metrics.incr c;
  Obs.Metrics.incr ~by:10 c;
  check_int "incremented" (before + 11) (Obs.Metrics.counter_value c);
  check_bool "same handle on re-request" true
    (Obs.Metrics.counter "test.counter_a" == c)

let test_metrics_gauge () =
  let g = Obs.Metrics.gauge "test.gauge_a" in
  Obs.Metrics.set g 2.5;
  Obs.Metrics.add g 1.5;
  check_bool "gauge value" true (Obs.Metrics.gauge_value g = 4.0)

let test_metrics_histogram () =
  let h = Obs.Metrics.histogram ~buckets:[| 1.0; 10.0 |] "test.hist_a" in
  List.iter (Obs.Metrics.observe h) [ 0.5; 1.0; 5.0; 100.0 ];
  match
    List.assoc_opt "test.hist_a" (Obs.Metrics.snapshot ())
  with
  | Some (Obs.Metrics.Histogram { counts; count; sum; _ }) ->
    check_int "total observations" 4 count;
    check_bool "sum" true (sum = 106.5);
    (* <=1 gets 0.5 and 1.0; <=10 gets 5.0; overflow gets 100.0 *)
    check_bool "bucket counts" true (counts = [| 2; 1; 1 |])
  | _ -> Alcotest.fail "histogram not in snapshot"

let test_metrics_kind_conflict () =
  let _ = Obs.Metrics.counter "test.conflicted" in
  match Obs.Metrics.gauge "test.conflicted" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind conflict accepted"

let test_metrics_snapshot_sorted_and_rendered () =
  let _ = Obs.Metrics.counter "test.zz_last" in
  let _ = Obs.Metrics.counter "test.aa_first" in
  let names = List.map fst (Obs.Metrics.snapshot ()) in
  check_bool "alphabetical" true (names = List.sort String.compare names);
  let table = Obs.Metrics.render_table () in
  check_bool "mentions instruments" true
    (Util.Text.contains_sub table "test.aa_first"
    && Util.Text.contains_sub table "test.zz_last")

let test_metrics_reset () =
  let c = Obs.Metrics.counter "test.reset_me" in
  Obs.Metrics.incr ~by:5 c;
  Obs.Metrics.reset ();
  check_int "zeroed in place" 0 (Obs.Metrics.counter_value c);
  Obs.Metrics.incr c;
  check_int "handle still live" 1 (Obs.Metrics.counter_value c)

(* ------------------------------------------------------------------ *)
(* Span *)

let with_spans f =
  Obs.Span.reset ();
  Obs.Span.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Span.set_enabled false;
      Obs.Span.reset ())
    f

let find_span label =
  List.find_opt
    (fun (r : Obs.Span.row) -> r.Obs.Span.label = label)
    (Obs.Span.summary ())

let test_span_nesting_and_aggregation () =
  with_spans @@ fun () ->
  for _ = 1 to 3 do
    Obs.Span.with_span "outer" (fun () ->
        Obs.Span.with_span "inner" (fun () -> Sys.opaque_identity (ignore 0)))
  done;
  match (find_span "outer", find_span "inner") with
  | Some outer, Some inner ->
    check_int "outer count" 3 outer.Obs.Span.count;
    check_int "inner count" 3 inner.Obs.Span.count;
    check_bool "nested time within parent" true
      (inner.Obs.Span.total_s <= outer.Obs.Span.total_s);
    check_bool "max <= total" true
      (outer.Obs.Span.max_s <= outer.Obs.Span.total_s +. 1e-12)
  | _ -> Alcotest.fail "spans not recorded"

let test_span_sim_clock () =
  with_spans @@ fun () ->
  let clock = Util.Sim_clock.create () in
  Obs.Span.with_clock clock (fun () ->
      Obs.Span.with_span "charged" (fun () ->
          Util.Sim_clock.advance clock 12.5));
  match find_span "charged" with
  | Some r -> check_bool "sim delta captured" true (r.Obs.Span.sim_s = 12.5)
  | None -> Alcotest.fail "span not recorded"

let test_span_disabled_records_nothing () =
  Obs.Span.reset ();
  check_bool "disabled by default here" false (Obs.Span.is_enabled ());
  check_int "disabled span returns value" 9
    (Obs.Span.with_span "ghost" (fun () -> 9));
  check_bool "nothing recorded" true (find_span "ghost" = None)

let test_span_records_on_exception () =
  with_spans @@ fun () ->
  (try Obs.Span.with_span "thrower" (fun () -> failwith "boom")
   with Failure _ -> ());
  match find_span "thrower" with
  | Some r -> check_int "recorded despite raise" 1 r.Obs.Span.count
  | None -> Alcotest.fail "span lost on exception"

let test_span_render () =
  with_spans @@ fun () ->
  Obs.Span.with_span "render.me" (fun () -> ());
  check_bool "table mentions label" true
    (Util.Text.contains_sub (Obs.Span.render ()) "render.me")

(* ------------------------------------------------------------------ *)
(* Sinks and trace dispatch *)

let test_ring_sink () =
  let sink, events = Obs.Sink.ring ~capacity:3 () in
  Obs.Trace.with_sink sink (fun () ->
      check_bool "trace on while subscribed" true (Obs.Trace.on ());
      for slot = 1 to 5 do
        Obs.Trace.emit (Obs.Event.Slot_started { slot; strategy = "grammar" })
      done);
  check_bool "trace off after" false (Obs.Trace.on ());
  let slots =
    List.map
      (function
        | Obs.Event.Slot_started { slot; _ } -> slot
        | _ -> Alcotest.fail "unexpected event")
      (events ())
  in
  check_bool "keeps last 3, oldest first" true (slots = [ 3; 4; 5 ])

let test_slot_context () =
  check_bool "no slot outside" true (Obs.Trace.current_slot () = None);
  let inside =
    Obs.Trace.with_slot 4 (fun () ->
        Obs.Trace.with_slot 9 (fun () -> ignore (Obs.Trace.current_slot ()));
        Obs.Trace.current_slot ())
  in
  check_bool "nested restores" true (inside = Some 4);
  check_bool "restored after" true (Obs.Trace.current_slot () = None)

(* ------------------------------------------------------------------ *)
(* End-to-end: campaign tracing *)

let trace_lines ~seed ~budget =
  let path = Filename.temp_file "llm4fp_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          Obs.Trace.with_sink (Obs.Sink.jsonl oc) (fun () ->
              ignore
                (Harness.Campaign.run ~budget ~seed Harness.Approach.Llm4fp)));
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go acc =
            match input_line ic with
            | line -> go (line :: acc)
            | exception End_of_file -> List.rev acc
          in
          go []))

let test_campaign_trace_deterministic () =
  let a = trace_lines ~seed:31337 ~budget:8 in
  let b = trace_lines ~seed:31337 ~budget:8 in
  check_bool "two fixed-seed runs trace identically" true (a = b);
  check_bool "different seed differs" false
    (trace_lines ~seed:31338 ~budget:8 = a)

let test_campaign_trace_shape () =
  let lines = trace_lines ~seed:31337 ~budget:8 in
  check_bool "non-trivial stream" true (List.length lines > 8);
  let parsed =
    List.map
      (fun line ->
        match Obs.Json.parse line with
        | Ok json -> json
        | Error msg -> Alcotest.fail (msg ^ ": " ^ line))
      lines
  in
  let kind json =
    match Obs.Json.member "event" json with
    | Some (Obs.Json.String k) -> k
    | _ -> Alcotest.fail "event field missing"
  in
  let kinds = List.map kind parsed in
  check_string "starts with campaign_started" "campaign_started"
    (List.hd kinds);
  check_string "ends with campaign_finished" "campaign_finished"
    (List.nth kinds (List.length kinds - 1));
  List.iter
    (fun needle ->
      check_bool (needle ^ " present") true (List.mem needle kinds))
    [ "slot_started"; "generated"; "compiled"; "executed"; "compared";
      "slot_finished" ];
  (* slot_started appears exactly once per budget slot *)
  check_int "one slot_started per slot" 8
    (List.length (List.filter (String.equal "slot_started") kinds));
  (* no raw wall-clock anywhere: the only time-like fields are the
     deterministic latency model and simulated clock *)
  List.iter
    (fun json ->
      check_bool "no timestamp field" true
        (Obs.Json.member "timestamp" json = None
        && Obs.Json.member "time" json = None))
    parsed

let test_campaign_untraced_still_works () =
  (* no sink: instrumentation must be inert, outcome unchanged *)
  let traced =
    let _ = trace_lines ~seed:777 ~budget:6 in
    Harness.Campaign.run ~budget:6 ~seed:777 Harness.Approach.Llm4fp
  in
  let untraced = Harness.Campaign.run ~budget:6 ~seed:777 Harness.Approach.Llm4fp in
  check_bool "same programs with and without tracing" true
    (List.for_all2 Lang.Ast.equal traced.Harness.Campaign.programs
       untraced.Harness.Campaign.programs);
  check_bool "same simulated time" true
    (traced.Harness.Campaign.sim_seconds
    = untraced.Harness.Campaign.sim_seconds)

let test_campaign_metrics_populated () =
  Obs.Metrics.reset ();
  let o = Harness.Campaign.run ~budget:10 ~seed:4242 Harness.Approach.Llm4fp in
  let value name =
    match List.assoc_opt name (Obs.Metrics.snapshot ()) with
    | Some (Obs.Metrics.Counter n) -> n
    | _ -> Alcotest.fail (name ^ " missing")
  in
  check_int "slots counted" 10 (value "campaign.slots");
  check_int "llm calls counted" 10 (value "llm.calls");
  check_int "difftest programs = valid programs"
    (List.length o.Harness.Campaign.programs)
    (value "difftest.programs");
  check_int "compiles = 18 per valid program"
    (18 * List.length o.Harness.Campaign.programs)
    (value "compiler.compile.ok" + value "compiler.compile.error")

(* ------------------------------------------------------------------ *)
(* Event decoding: of_json must invert to_json for every kind *)

let sample_events : Obs.Event.t list =
  [ Obs.Event.Campaign_started
      { approach = "LLM4FP"; budget = 16; seed = 42; precision = "fp64" };
    Obs.Event.Slot_started { slot = 1; strategy = "grammar" };
    Obs.Event.Arm_chosen
      { slot = 1; arm = "grow"; pulls = 4; reward = 0.0625; explore = false };
    Obs.Event.Arm_chosen
      { slot = 2; arm = "mutate"; pulls = 0; reward = 0.0; explore = true };
    Obs.Event.Generated
      { slot = Some 1; prompt = "grammar"; latency_s = 4.25;
        prompt_tokens = 120; output_tokens = 260 };
    Obs.Event.Parse_failed { slot = 2; reason = "unexpected token" };
    Obs.Event.Validation_failed { slot = 3; reason = "no fp ops" };
    Obs.Event.Compiled
      { slot = Some 1; config = "gcc -O3 -ffast-math"; ok = true; work = 93 };
    Obs.Event.Executed
      { slot = Some 1; config = "gcc -O3 -ffast-math";
        hex = "3ff0000000000000"; ops = 17 };
    Obs.Event.Compared
      { slot = Some 1; cross = 12; within = 21; inconsistent = 2 };
    Obs.Event.Inconsistency_found
      { slot = Some 1; pair = "gcc, nvcc"; level = "03_fastmath";
        left_hex = "3ff0000000000000"; right_hex = "3ff0000000000001";
        digits = 16 };
    Obs.Event.Case_recorded
      { slot = Some 1; fingerprint = "0123456789abcdef"; kind = "cross" };
    Obs.Event.Coverage_novel
      { slot = 1; kind = "cross"; pair = "gcc, nvcc"; level = "03_fastmath";
        classes = "{Real, Real}"; strategy = "grammar"; cells = 1;
        sim_s = 12.5 };
    Obs.Event.Coverage_hit
      { slot = 1; kind = "cross"; pair = "gcc, nvcc"; level = "03_fastmath";
        classes = "{Real, Real}"; strategy = "grammar"; hits = 2 };
    Obs.Event.Feedback_added { slot = 1; feedback_size = 3 };
    Obs.Event.Slot_finished
      { slot = 1; outcome = "inconsistent"; sim_s = 17.5 };
    Obs.Event.Campaign_finished
      { approach = "LLM4FP"; valid = 14; generation_failures = 2;
        inconsistencies = 9; comparisons = 462; sim_seconds = 138.0;
        llm_seconds = 49.0 } ]

let test_event_of_json_roundtrip () =
  List.iter
    (fun ev ->
      match Obs.Event.of_jsonl (Obs.Event.to_jsonl ev) with
      | Ok decoded ->
        check_bool (Obs.Event.name ev ^ " round-trips") true (decoded = ev)
      | Error msg -> Alcotest.fail (Obs.Event.name ev ^ ": " ^ msg))
    sample_events;
  (* whole-valued floats serialize as integers and must still decode *)
  let ev = Obs.Event.Slot_finished { slot = 1; outcome = "consistent"; sim_s = 6.0 } in
  (match Obs.Event.of_jsonl (Obs.Event.to_jsonl ev) with
  | Ok decoded -> check_bool "integer-rendered float" true (decoded = ev)
  | Error msg -> Alcotest.fail msg);
  List.iter
    (fun bad ->
      match Obs.Event.of_jsonl bad with
      | Ok _ -> Alcotest.fail ("accepted: " ^ bad)
      | Error _ -> ())
    [ {|{"event":"no_such_kind","slot":1}|};
      {|{"event":"slot_started","slot":1}|}  (* missing strategy *);
      {|{"slot":1}|};
      {|not json at all|} ]

let test_event_accessors () =
  check_bool "slot of slot_started" true
    (Obs.Event.slot (Obs.Event.Slot_started { slot = 7; strategy = "mutate" })
    = Some 7);
  check_bool "campaign_started has no slot" true
    (Obs.Event.slot
       (Obs.Event.Campaign_started
          { approach = "a"; budget = 1; seed = 1; precision = "fp64" })
    = None);
  check_bool "config of compiled" true
    (Obs.Event.config
       (Obs.Event.Compiled
          { slot = None; config = "clang -O0"; ok = true; work = 1 })
    = Some "clang -O0");
  List.iter
    (fun ev ->
      check_bool
        (Obs.Event.name ev ^ " has a summary")
        false
        (String.length (Obs.Event.summary ev) = 0))
    sample_events

(* ------------------------------------------------------------------ *)
(* Follow: incremental trace tailing *)

(* with_tmpdir hands out a fresh path without creating it *)
let with_dir f =
  with_tmpdir (fun dir ->
      Unix.mkdir dir 0o755;
      f dir)

let write_lines path lines =
  let oc = open_out_bin path in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  close_out oc

let ev_line slot =
  Obs.Event.to_jsonl (Obs.Event.Slot_started { slot; strategy = "grammar" })

let expect_ok = function
  | Ok (b : Obs.Follow.batch) -> b
  | Error msg -> Alcotest.fail ("poll failed: " ^ msg)

let test_follow_empty_and_missing () =
  with_dir @@ fun dir ->
  let missing = Filename.concat dir "never.jsonl" in
  let f = Obs.Follow.create ~path:missing in
  let b = expect_ok (Obs.Follow.poll f) in
  check_bool "missing file: no events" true (b.Obs.Follow.events = []);
  check_bool "missing file: not rotation" false b.Obs.Follow.rotated;
  (* zero-length file behaves the same *)
  let empty = Filename.concat dir "empty.jsonl" in
  write_lines empty [];
  let f = Obs.Follow.create ~path:empty in
  let b = expect_ok (Obs.Follow.poll f) in
  check_bool "empty file: no events" true (b.Obs.Follow.events = []);
  check_int "offset stays 0" 0 (Obs.Follow.offset f)

let test_follow_partial_final_line () =
  with_dir @@ fun dir ->
  let path = Filename.concat dir "trace.jsonl" in
  let l1 = ev_line 1 and l2 = ev_line 2 in
  (* a writer flushed line 1 and half of line 2 *)
  let oc = open_out_bin path in
  output_string oc (l1 ^ "\n");
  output_string oc (String.sub l2 0 (String.length l2 / 2));
  flush oc;
  let f = Obs.Follow.create ~path in
  let b = expect_ok (Obs.Follow.poll f) in
  check_int "only the complete line" 1 (List.length b.Obs.Follow.events);
  check_int "offset at the newline boundary" (String.length l1 + 1)
    (Obs.Follow.offset f);
  (* nothing new: the partial tail is not consumed twice *)
  let b = expect_ok (Obs.Follow.poll f) in
  check_bool "partial line never consumed" true (b.Obs.Follow.events = []);
  (* the writer finishes the line *)
  output_string oc (String.sub l2 (String.length l2 / 2)
                      (String.length l2 - (String.length l2 / 2)));
  output_string oc "\n";
  close_out oc;
  let b = expect_ok (Obs.Follow.poll f) in
  (match b.Obs.Follow.events with
  | [ Obs.Event.Slot_started { slot = 2; _ } ] -> ()
  | _ -> Alcotest.fail "completed line not decoded")

let test_follow_rotation () =
  with_dir @@ fun dir ->
  let path = Filename.concat dir "trace.jsonl" in
  write_lines path [ ev_line 1; ev_line 2 ];
  let f = Obs.Follow.create ~path in
  ignore (expect_ok (Obs.Follow.poll f));
  (* the file is replaced by a shorter one: a rotation *)
  write_lines path [ ev_line 9 ];
  let b = expect_ok (Obs.Follow.poll f) in
  check_bool "rotation detected" true b.Obs.Follow.rotated;
  (match b.Obs.Follow.events with
  | [ Obs.Event.Slot_started { slot = 9; _ } ] -> ()
  | _ -> Alcotest.fail "post-rotation events not re-read from the start")

let test_follow_corrupt_line () =
  with_dir @@ fun dir ->
  let path = Filename.concat dir "trace.jsonl" in
  write_lines path [ ev_line 1; "this is not an event" ];
  let f = Obs.Follow.create ~path in
  match Obs.Follow.poll f with
  | Ok _ -> Alcotest.fail "corrupt complete line accepted"
  | Error msg ->
    check_bool "error names the file" true (Util.Text.contains_sub msg path)

(* A structurally valid JSON line whose ["event"] tag no decoder knows
   (a trace from a newer writer, say) must fail loudly with full
   provenance — file, line, offset, and the offending tag — never be
   silently skipped. *)
let test_follow_unknown_event_kind () =
  with_dir @@ fun dir ->
  let path = Filename.concat dir "trace.jsonl" in
  write_lines path [ ev_line 1; {|{"event":"no_such_kind","slot":2}|} ];
  match Obs.Follow.read_all ~path with
  | Ok _ -> Alcotest.fail "unknown event kind accepted"
  | Error msg ->
    check_bool "error names the file" true (Util.Text.contains_sub msg path);
    check_bool "error names the line" true
      (Util.Text.contains_sub msg "line 2");
    check_bool "error names the offset" true
      (Util.Text.contains_sub msg "offset");
    check_bool "error names the unknown tag" true
      (Util.Text.contains_sub msg {|unknown event kind "no_such_kind"|})

(* Multi-file following tolerates members that do not exist yet: a
   fleet shard's chunk trace appears only when the chunk starts, and
   the supervisor begins following the whole plan up front. A missing
   member must read as an empty batch, never an error (the regression
   this pins down), and start streaming once the file appears. *)
let test_follow_multi_missing_member () =
  with_dir @@ fun dir ->
  let present = Filename.concat dir "chunk-0000.jsonl" in
  let missing = Filename.concat dir "chunk-0001.jsonl" in
  write_lines present [ ev_line 1; ev_line 2 ];
  let m = Obs.Follow.Multi.create ~paths:[ present; missing ] in
  check_bool "paths round-trip" true
    (Obs.Follow.Multi.paths m = [ present; missing ]);
  let batches =
    match Obs.Follow.Multi.poll m with
    | Ok bs -> bs
    | Error msg -> Alcotest.fail ("multi poll with missing member: " ^ msg)
  in
  (match batches with
  | [ (p1, b1); (p2, b2) ] ->
    check_string "present path first" present p1;
    check_int "present events" 2 (List.length b1.Obs.Follow.events);
    check_string "missing path second" missing p2;
    check_bool "missing member is an empty batch" true
      (b2.Obs.Follow.events = []);
    check_bool "missing member is not a rotation" false b2.Obs.Follow.rotated
  | bs -> Alcotest.failf "expected two batches, got %d" (List.length bs));
  (* the member appearing later starts streaming from its beginning *)
  write_lines missing [ ev_line 7 ];
  match Obs.Follow.Multi.poll m with
  | Error msg -> Alcotest.fail msg
  | Ok [ (_, b1); (_, b2) ] ->
    check_bool "present member drained" true (b1.Obs.Follow.events = []);
    check_int "appeared member streams" 1 (List.length b2.Obs.Follow.events)
  | Ok bs -> Alcotest.failf "expected two batches, got %d" (List.length bs)

(* The protocol's core guarantee: streaming a trace through a follower
   in arbitrary small increments yields the byte-identical event stream
   of a one-shot read — at any job count (the ordered sink makes the
   file itself identical across job counts, which this also checks). *)
let test_follow_stream_equals_one_shot () =
  with_dir @@ fun dir ->
  let trace ~jobs =
    let path = Filename.concat dir (Printf.sprintf "trace-j%d.jsonl" jobs) in
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        Obs.Trace.with_sink
          (Obs.Sink.ordered (Obs.Sink.jsonl oc))
          (fun () ->
            ignore
              (Harness.Campaign.run ~budget:6 ~jobs ~seed:2024
                 Harness.Approach.Llm4fp)));
    path
  in
  let path1 = trace ~jobs:1 and path4 = trace ~jobs:4 in
  check_string "trace bytes identical at jobs 1 and 4" (read_file path1)
    (read_file path4);
  let one_shot =
    match Obs.Follow.read_all ~path:path1 with
    | Ok evs -> evs
    | Error msg -> Alcotest.fail msg
  in
  check_bool "trace is non-trivial" true (List.length one_shot > 20);
  List.iter
    (fun src ->
      let data = read_file src in
      let dst = Filename.concat dir "stream.jsonl" in
      let oc = open_out_bin dst in
      let f = Obs.Follow.create ~path:dst in
      let streamed = ref [] in
      let chunk = 7 in
      let rec feed pos =
        if pos < String.length data then begin
          let len = min chunk (String.length data - pos) in
          output_string oc (String.sub data pos len);
          flush oc;
          let b = expect_ok (Obs.Follow.poll f) in
          streamed := !streamed @ b.Obs.Follow.events;
          feed (pos + len)
        end
      in
      feed 0;
      close_out oc;
      check_bool "streamed batches equal one-shot read" true
        (!streamed = one_shot);
      Sys.remove dst)
    [ path1; path4 ]

(* ------------------------------------------------------------------ *)
(* Span tree and flame export *)

let test_span_tree () =
  with_spans @@ fun () ->
  Obs.Span.with_span "a" (fun () ->
      Obs.Span.with_span "b" (fun () -> ());
      Obs.Span.with_span "b" (fun () -> ());
      Obs.Span.with_span "c" (fun () -> ()));
  Obs.Span.with_span "b" (fun () -> ());
  let roots = Obs.Span.tree () in
  check_bool "roots sorted by label" true
    (List.map (fun n -> n.Obs.Span.n_label) roots = [ "a"; "b" ]);
  let a = List.hd roots in
  check_bool "a's children sorted" true
    (List.map (fun n -> n.Obs.Span.n_label) a.Obs.Span.n_children
    = [ "b"; "c" ]);
  let ab = List.hd a.Obs.Span.n_children in
  check_int "b under a aggregates both entries" 2 ab.Obs.Span.n_count;
  check_bool "path is root-first" true (ab.Obs.Span.n_path = [ "a"; "b" ]);
  check_int "root b is separate" 1
    (List.nth roots 1).Obs.Span.n_count;
  (* self time: parent total covers its children *)
  let child_total =
    List.fold_left
      (fun s c -> s +. c.Obs.Span.n_total_s)
      0.0 a.Obs.Span.n_children
  in
  check_bool "self = total - children (clamped)" true
    (a.Obs.Span.n_self_s >= 0.0
    && a.Obs.Span.n_self_s <= a.Obs.Span.n_total_s -. child_total +. 1e-9);
  (* flat summary merges on leaf label across parents *)
  (match find_span "b" with
  | Some r -> check_int "flat count sums both paths" 3 r.Obs.Span.count
  | None -> Alcotest.fail "flat summary lost b");
  check_bool "tree render mentions labels" true
    (Util.Text.contains_sub (Obs.Span.render_tree ()) "  b")

let test_span_flame () =
  with_spans @@ fun () ->
  Obs.Span.with_span "outer" (fun () ->
      Obs.Span.with_span "inner" (fun () -> Unix.sleepf 0.002));
  let flame = Obs.Span.flame () in
  let reparsed =
    match Obs.Json.parse (Obs.Json.to_string flame) with
    | Ok v -> v
    | Error msg -> Alcotest.fail ("flame not valid JSON: " ^ msg)
  in
  let events =
    match Obs.Json.member "traceEvents" reparsed with
    | Some (Obs.Json.List evs) -> evs
    | _ -> Alcotest.fail "no traceEvents list"
  in
  check_int "one slice per tree node" 2 (List.length events);
  let num field ev =
    match Obs.Json.member field ev with
    | Some (Obs.Json.Float f) -> f
    | Some (Obs.Json.Int i) -> float_of_int i
    | _ -> Alcotest.fail (field ^ " missing")
  in
  List.iter
    (fun ev ->
      check_bool "complete slice" true
        (Obs.Json.member "ph" ev = Some (Obs.Json.String "X"));
      check_bool "has name" true (Obs.Json.member "name" ev <> None);
      check_bool "has pid/tid" true
        (Obs.Json.member "pid" ev <> None && Obs.Json.member "tid" ev <> None);
      check_bool "non-negative timing" true
        (num "ts" ev >= 0.0 && num "dur" ev >= 0.0))
    events;
  (* DFS order: outer first, inner nested within it *)
  match events with
  | [ outer; inner ] ->
    check_bool "outer named first" true
      (Obs.Json.member "name" outer = Some (Obs.Json.String "outer"));
    check_bool "child nested in parent" true
      (num "ts" inner >= num "ts" outer
      && num "ts" inner +. num "dur" inner
         <= num "ts" outer +. num "dur" outer)
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Coverage ledger *)

let ckey kind pair level classes = { Obs.Coverage.kind; pair; level; classes }

let test_coverage_ledger () =
  let t = Obs.Coverage.create () in
  check_float "default window" 600.0 (Obs.Coverage.window t);
  let k1 = ckey "cross" "gcc, nvcc" "03_fastmath" "{Real, Real}" in
  let k2 = ckey "within" "gcc" "01" "{Real, Real}" in
  check_bool "first hit is novel" true
    (Obs.Coverage.record t ~slot:1 ~strategy:"grammar" ~sim_s:5.0 k1);
  check_bool "repeat hit is not novel" false
    (Obs.Coverage.record t ~slot:2 ~strategy:"mutate" ~sim_s:9.0 k1);
  check_bool "second key is novel again" true
    (Obs.Coverage.record t ~slot:3 ~strategy:"mutate" ~sim_s:12.0 k2);
  check_int "total cells" 2 (Obs.Coverage.total_cells t);
  check_int "cross cells" 1 (Obs.Coverage.kind_cells t "cross");
  check_int "within cells" 1 (Obs.Coverage.kind_cells t "within");
  check_int "total hits" 3 (Obs.Coverage.total_hits t);
  (match Obs.Coverage.find t k1 with
  | None -> Alcotest.fail "recorded key lost"
  | Some c ->
    check_int "per-cell hits" 2 c.Obs.Coverage.hits;
    check_int "first-discovery slot" 1 c.Obs.Coverage.first_slot;
    check_float "first-discovery sim clock" 5.0 c.Obs.Coverage.first_sim_s;
    check_string "discovering strategy survives repeats" "grammar"
      c.Obs.Coverage.strategy);
  check_bool "cells sorted by key" true
    (List.map fst (Obs.Coverage.cells t) = [ k1; k2 ]);
  check_float "last novel" 12.0 (Obs.Coverage.last_novel t)

let test_coverage_rates_and_plateau () =
  let t = Obs.Coverage.create ~window:100.0 () in
  let k n = ckey "cross" (Printf.sprintf "p%d" n) "03" "{Real, Real}" in
  ignore (Obs.Coverage.record t ~slot:1 ~strategy:"grammar" ~sim_s:10.0 (k 1));
  ignore (Obs.Coverage.record t ~slot:2 ~strategy:"grammar" ~sim_s:20.0 (k 1));
  ignore (Obs.Coverage.record t ~slot:3 ~strategy:"mutate" ~sim_s:40.0 (k 2));
  (match Obs.Coverage.strategy_rates t ~now:50.0 with
  | [ g; m ] ->
    check_string "rates sorted by strategy" "grammar" g.Obs.Coverage.strategy;
    check_int "grammar window hits" 2 g.Obs.Coverage.window_hits;
    check_int "grammar window novel" 1 g.Obs.Coverage.window_novel;
    (* only 50 sim-seconds observed so far: divide by the real span *)
    check_float ~eps:1e-12 "rate over the observed span" (2.0 /. 50.0)
      g.Obs.Coverage.hits_per_sim_s;
    check_int "mutate window novel" 1 m.Obs.Coverage.window_novel
  | rs ->
    Alcotest.fail (Printf.sprintf "expected 2 strategies, got %d"
                     (List.length rs)));
  check_bool "novelty at 40 keeps 50 off the plateau" false
    (Obs.Coverage.plateaued t ~now:50.0);
  (* recording at 130 prunes everything at or before 30 from the window *)
  ignore (Obs.Coverage.record t ~slot:4 ~strategy:"mutate" ~sim_s:130.0 (k 2));
  (match Obs.Coverage.strategy_rates t ~now:130.0 with
  | [ m ] ->
    check_string "grammar aged out of the window" "mutate"
      m.Obs.Coverage.strategy;
    check_int "window keeps the 40 and 130 hits" 2 m.Obs.Coverage.window_hits
  | rs ->
    Alcotest.fail (Printf.sprintf "expected 1 strategy, got %d"
                     (List.length rs)));
  check_bool "not plateaued 90s after the last novelty" false
    (Obs.Coverage.plateaued t ~now:130.0);
  check_bool "plateaued one window after the last novelty" true
    (Obs.Coverage.plateaued t ~now:141.0);
  (match Obs.Coverage.plateau_at t ~now:141.0 with
  | Some at -> check_float ~eps:1e-12 "plateau trip time" 140.0 at
  | None -> Alcotest.fail "plateau_at missing while plateaued");
  check_bool "plateau_at silent before the trip" true
    (Obs.Coverage.plateau_at t ~now:130.0 = None);
  (* an all-quiet campaign plateaus one window after its start *)
  let quiet = Obs.Coverage.create ~window:50.0 () in
  check_bool "quiet campaign plateaus" true
    (Obs.Coverage.plateaued quiet ~now:50.0)

let test_coverage_json_roundtrip () =
  let t = Obs.Coverage.create ~window:120.0 () in
  ignore
    (Obs.Coverage.record t ~slot:1 ~strategy:"grammar" ~sim_s:7.25
       (ckey "cross" "gcc, clang" "02" "{Real, Real}"));
  ignore
    (Obs.Coverage.record t ~slot:1 ~strategy:"grammar" ~sim_s:7.25
       (ckey "within" "nvcc" "03" "{Real, Zero}"));
  ignore
    (Obs.Coverage.record t ~slot:2 ~strategy:"mutate" ~sim_s:19.0
       (ckey "cross" "gcc, clang" "02" "{Real, Real}"));
  let json = Obs.Coverage.to_json t in
  match Obs.Coverage.of_json json with
  | Error msg -> Alcotest.fail ("snapshot did not decode: " ^ msg)
  | Ok t' ->
    check_string "byte-identical reserialization" (Obs.Json.to_string json)
      (Obs.Json.to_string (Obs.Coverage.to_json t'));
    (* the restored ledger is full continuation state: both continue
       recording identically *)
    let k = ckey "within" "gcc" "01" "{Real, Real}" in
    let a = Obs.Coverage.record t ~slot:9 ~strategy:"direct" ~sim_s:90.0 k in
    let b = Obs.Coverage.record t' ~slot:9 ~strategy:"direct" ~sim_s:90.0 k in
    check_bool "continuation agrees on novelty" true (a = b);
    check_string "continuation serializes identically"
      (Obs.Json.to_string (Obs.Coverage.to_json t))
      (Obs.Json.to_string (Obs.Coverage.to_json t'));
    List.iter
      (fun (label, bad) ->
        match Obs.Coverage.of_json bad with
        | Ok _ -> Alcotest.fail ("accepted " ^ label)
        | Error msg ->
          check_bool (label ^ " diagnosed") true (String.length msg > 0))
      [ ("wrong schema",
         Obs.Json.Obj [ ("schema", Obs.Json.String "llm4fp-bench/9") ]);
        ("non-object", Obs.Json.Int 3) ]

(* ------------------------------------------------------------------ *)
(* Deck fold and flight-deck rendering *)

let test_deck_fold_and_render () =
  let v = Obs.Deck.of_events sample_events in
  check_int "budget" 16 v.Report.Flightdeck.budget;
  check_int "slots done" 1 v.Report.Flightdeck.slots_done;
  check_bool "strategy counted" true
    (v.Report.Flightdeck.strategies = [ ("grammar", 1) ]);
  check_bool "hit counted by pair and level" true
    (v.Report.Flightdeck.hits = [ (("gcc, nvcc", "03_fastmath"), 1) ]);
  check_int "cases" 1 v.Report.Flightdeck.cases;
  check_int "coverage cells" 1 v.Report.Flightdeck.coverage_cells;
  check_int "coverage cross cells" 1 v.Report.Flightdeck.coverage_cross;
  check_int "coverage within cells" 0 v.Report.Flightdeck.coverage_within;
  check_int "coverage hits (novel + repeat)" 2 v.Report.Flightdeck.coverage_hits;
  check_bool "novelty counted by strategy" true
    (v.Report.Flightdeck.novel_by_strategy = [ ("grammar", 1) ]);
  check_float "last novel sim clock" 12.5 v.Report.Flightdeck.last_novel_sim_s;
  check_float "window learned from campaign start"
    Obs.Coverage.default_window v.Report.Flightdeck.coverage_window;
  check_bool "finished" true v.Report.Flightdeck.finished;
  check_bool "sim clock is max of boundaries" true
    (v.Report.Flightdeck.sim_s = 138.0);
  let frame = Obs.Deck.of_events sample_events |> Report.Flightdeck.render in
  check_string "render is pure" frame
    (Report.Flightdeck.render (Obs.Deck.of_events sample_events));
  check_bool "frame mentions the deck" true
    (Util.Text.contains_sub frame "flight deck");
  check_bool "frame reports eta done" true
    (Util.Text.contains_sub frame "eta done");
  (* campaign_started resets a stale view (rotation) *)
  let reset =
    Obs.Deck.apply v
      (Obs.Event.Campaign_started
         { approach = "Varity"; budget = 3; seed = 1; precision = "fp32" })
  in
  check_int "restart clears the fold" 0 reset.Report.Flightdeck.slots_done

let test_deck_sparkline () =
  check_string "empty" "" (Report.Flightdeck.sparkline []);
  let s = Report.Flightdeck.sparkline [ 0.0; 1.0; 2.0; 4.0 ] in
  check_bool "max maps to full block" true
    (Util.Text.contains_sub s "\xe2\x96\x88");
  check_string "deterministic" s
    (Report.Flightdeck.sparkline [ 0.0; 1.0; 2.0; 4.0 ])

let test_metrics_empty_percentiles_render () =
  let _ = Obs.Metrics.histogram ~buckets:[| 1.0 |] "test.empty_hist" in
  let table = Obs.Metrics.render_percentiles () in
  check_bool "empty histogram listed" true
    (Util.Text.contains_sub table "test.empty_hist");
  check_bool "empty quantiles render as dash" true
    (Util.Text.contains_sub table "-")

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "float repr" `Quick test_json_float_repr;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
          Alcotest.test_case "event jsonl" `Quick test_event_jsonl;
          Alcotest.test_case "event of_json roundtrip" `Quick
            test_event_of_json_roundtrip;
          Alcotest.test_case "event accessors" `Quick test_event_accessors;
        ] );
      ( "follow",
        [
          Alcotest.test_case "empty and missing files" `Quick
            test_follow_empty_and_missing;
          Alcotest.test_case "partial final line" `Quick
            test_follow_partial_final_line;
          Alcotest.test_case "rotation" `Quick test_follow_rotation;
          Alcotest.test_case "corrupt line" `Quick test_follow_corrupt_line;
          Alcotest.test_case "unknown event kind diagnosed" `Quick
            test_follow_unknown_event_kind;
          Alcotest.test_case "multi tolerates missing member" `Quick
            test_follow_multi_missing_member;
          Alcotest.test_case "stream equals one-shot (jobs 1 and 4)" `Slow
            test_follow_stream_equals_one_shot;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "ledger" `Quick test_coverage_ledger;
          Alcotest.test_case "rates and plateau" `Quick
            test_coverage_rates_and_plateau;
          Alcotest.test_case "json roundtrip" `Quick
            test_coverage_json_roundtrip;
        ] );
      ( "deck",
        [
          Alcotest.test_case "fold and render" `Quick test_deck_fold_and_render;
          Alcotest.test_case "sparkline" `Quick test_deck_sparkline;
          Alcotest.test_case "empty percentiles render" `Quick
            test_metrics_empty_percentiles_render;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter" `Quick test_metrics_counter;
          Alcotest.test_case "gauge" `Quick test_metrics_gauge;
          Alcotest.test_case "histogram" `Quick test_metrics_histogram;
          Alcotest.test_case "kind conflict" `Quick test_metrics_kind_conflict;
          Alcotest.test_case "snapshot sorted" `Quick
            test_metrics_snapshot_sorted_and_rendered;
          Alcotest.test_case "reset" `Quick test_metrics_reset;
        ] );
      ( "span",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting_and_aggregation;
          Alcotest.test_case "sim clock" `Quick test_span_sim_clock;
          Alcotest.test_case "disabled" `Quick test_span_disabled_records_nothing;
          Alcotest.test_case "exception safe" `Quick
            test_span_records_on_exception;
          Alcotest.test_case "render" `Quick test_span_render;
          Alcotest.test_case "tree" `Quick test_span_tree;
          Alcotest.test_case "flame export" `Quick test_span_flame;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring sink" `Quick test_ring_sink;
          Alcotest.test_case "slot context" `Quick test_slot_context;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "deterministic jsonl" `Slow
            test_campaign_trace_deterministic;
          Alcotest.test_case "trace shape" `Slow test_campaign_trace_shape;
          Alcotest.test_case "tracing is inert" `Slow
            test_campaign_untraced_still_works;
          Alcotest.test_case "metrics populated" `Slow
            test_campaign_metrics_populated;
        ] );
    ]
