(* Tests for lib/gen: random program/input generation. *)

open Helpers

let test_determinism () =
  let a = Gen.Varity.generate (Util.Rng.of_int 5) in
  let b = Gen.Varity.generate (Util.Rng.of_int 5) in
  check_bool "same seed same program" true (Lang.Ast.equal a b)

let test_inputs_match_params () =
  let rng = Util.Rng.of_int 6 in
  for _ = 1 to 200 do
    let p, inputs = Gen.Varity.gen_case rng in
    check_bool "positional match" true (Irsim.Inputs.matches p inputs)
  done

let test_config_bounds_respected () =
  let cfg = Gen.Gen_config.varity in
  let rng = Util.Rng.of_int 7 in
  for _ = 1 to 200 do
    let p = Gen.Varity.generate rng in
    check_bool "loop bounds" true
      (Lang.Ast.max_loop_bound p <= cfg.Gen.Gen_config.loop_bound_max);
    check_bool "nesting depth" true
      (Lang.Ast.program_depth p <= cfg.Gen.Gen_config.max_block_depth + 1);
    check_bool "comp assigned" true
      (match Analysis.Validate.check p with
       | Ok () -> true
       | Error issues ->
         not (List.mem Analysis.Validate.Comp_never_assigned issues))
  done

let test_extreme_inputs_reach_big_magnitudes () =
  let rng = Util.Rng.of_int 8 in
  let big = ref false in
  for _ = 1 to 300 do
    let p, inputs = Gen.Varity.gen_case rng in
    ignore p;
    List.iter
      (fun (v : Irsim.Inputs.value) ->
        match v with
        | Irsim.Inputs.Fp x when Float.abs x > 1e100 -> big := true
        | Irsim.Inputs.Arr a when Array.exists (fun x -> Float.abs x > 1e100) a ->
          big := true
        | _ -> ())
      inputs
  done;
  check_bool "extreme magnitudes sampled" true !big

let test_sensible_inputs_bounded () =
  let cfg = Llm.Client.generation_config in
  let rng = Util.Rng.of_int 9 in
  for _ = 1 to 200 do
    let p = Gen.Generate.generate rng cfg Gen.Generate.human_naming in
    let inputs = Gen.Generate.gen_inputs rng cfg p in
    List.iter
      (fun (v : Irsim.Inputs.value) ->
        match v with
        | Irsim.Inputs.Fp x -> check_bool "bounded" true (Float.abs x <= 100.0)
        | Irsim.Inputs.Arr a ->
          Array.iter (fun x -> check_bool "bounded" true (Float.abs x <= 100.0)) a
        | Irsim.Inputs.Int n -> check_bool "small int" true (n >= 1 && n <= 10))
      inputs
  done

let test_varity_naming_style () =
  let rng = Util.Rng.of_int 10 in
  let p = Gen.Varity.generate rng in
  let names = Lang.Ast.declared_names p in
  check_bool "machine-flavored names" true
    (List.exists
       (fun n -> Util.Text.starts_with ~prefix:"var_" n
                 || Util.Text.starts_with ~prefix:"tmp" n
                 || Util.Text.starts_with ~prefix:"i" n)
       names)

let test_argv_rendering () =
  let rng = Util.Rng.of_int 11 in
  let p, inputs = Gen.Varity.gen_case rng in
  let argv = Irsim.Inputs.to_argv inputs in
  let expected =
    List.fold_left
      (fun acc (prm : Lang.Ast.param) ->
        acc
        + match prm with
          | Lang.Ast.P_fp _ | Lang.Ast.P_int _ -> 1
          | Lang.Ast.P_fp_array (_, len) -> len)
      0 p.Lang.Ast.params
  in
  Alcotest.(check int) "argv arity" expected (List.length argv)

let qcheck_gen_config_validation =
  QCheck.Test.make ~name:"invalid configs rejected" ~count:50 QCheck.small_int
    (fun n ->
      let bad = { Gen.Gen_config.varity with Gen.Gen_config.min_stmts = n + 1; max_stmts = 0 } in
      try
        Gen.Gen_config.validate bad;
        false
      with Invalid_argument _ -> true)

let () =
  Alcotest.run "gen"
    [
      ( "generate",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "inputs match params" `Quick test_inputs_match_params;
          Alcotest.test_case "config bounds" `Quick test_config_bounds_respected;
          Alcotest.test_case "extreme inputs" `Quick test_extreme_inputs_reach_big_magnitudes;
          Alcotest.test_case "sensible inputs" `Quick test_sensible_inputs_bounded;
          Alcotest.test_case "varity naming" `Quick test_varity_naming_style;
          Alcotest.test_case "argv rendering" `Quick test_argv_rendering;
          QCheck_alcotest.to_alcotest qcheck_gen_config_validation;
        ] );
    ]
