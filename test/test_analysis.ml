(* Tests for lib/analysis: validator, features, dataflow. *)

open Lang
open Helpers

let has_issue issue_pred p =
  match Analysis.Validate.check p with
  | Ok () -> false
  | Error issues -> List.exists issue_pred issues

(* ------------------------------------------------------------------ *)
(* Validator: positive cases *)

let test_valid_program () =
  let p = parse {|
void compute(double x, double* a, int n) {
  double comp = 0.0;
  double t = x * 0.5;
  for (int i = 0; i < 8; ++i) {
    comp += a[i] * t;
  }
  if (comp > 1.0) {
    comp /= 2.0;
  }
}
|} in
  check_bool "valid" true (Analysis.Validate.is_valid p)

let test_sibling_scopes_ok () =
  let p = parse {|
void compute(double* a) {
  double comp = 0.0;
  for (int i = 0; i < 8; ++i) {
    double t = a[i];
    comp += t;
  }
  for (int i = 0; i < 8; ++i) {
    double t = a[i] * 2.0;
    comp += t;
  }
}
|} in
  check_bool "sibling scope reuse allowed" true (Analysis.Validate.is_valid p)

(* ------------------------------------------------------------------ *)
(* Validator: each issue kind *)

let test_unbound_variable () =
  let p = parse "void compute(double x) { double comp = 0.0; comp = y; }" in
  check_bool "unbound" true
    (has_issue (function Analysis.Validate.Unbound_variable "y" -> true | _ -> false) p)

let test_out_of_scope_temp () =
  let p = parse {|
void compute(double x) {
  double comp = 0.0;
  if (x > 0.0) {
    double t = x;
    comp += t;
  }
  comp += t;
}
|} in
  check_bool "block-local temp out of scope" true
    (has_issue (function Analysis.Validate.Unbound_variable "t" -> true | _ -> false) p)

let test_redeclaration () =
  let p = parse "void compute(double x) { double comp = 0.0; double x = 1.0; comp = x; }" in
  check_bool "shadowing rejected" true
    (has_issue (function Analysis.Validate.Redeclared_variable "x" -> true | _ -> false) p)

let test_index_out_of_bounds () =
  let p = parse {|
void compute(double* a) {
  double comp = 0.0;
  for (int i = 0; i < 9; ++i) {
    comp += a[i];
  }
}
|} in
  check_bool "counter can exceed length 8" true
    (has_issue
       (function Analysis.Validate.Array_index_out_of_bounds ("a", 8, 8) -> true | _ -> false)
       p)

let test_index_offset_in_bounds () =
  let p = parse {|
void compute(double* a) {
  double comp = 0.0;
  for (int i = 0; i < 6; ++i) {
    comp += a[i + 2];
  }
}
|} in
  check_bool "i+2 with bound 6 fits length 8" true (Analysis.Validate.is_valid p)

let test_index_unbounded () =
  let p = parse "void compute(double* a, int n) { double comp = 0.0; comp += a[n]; }" in
  check_bool "free int param has no bound" true
    (has_issue (function Analysis.Validate.Array_index_unbounded "a" -> true | _ -> false) p)

let test_non_array_indexed () =
  let p = parse "void compute(double x) { double comp = 0.0; comp += x[0]; }" in
  check_bool "scalar indexed" true
    (has_issue (function Analysis.Validate.Non_array_indexed "x" -> true | _ -> false) p)

let test_array_as_scalar () =
  let p = parse "void compute(double* a) { double comp = 0.0; comp += a; }" in
  check_bool "array as scalar" true
    (has_issue (function Analysis.Validate.Array_used_as_scalar "a" -> true | _ -> false) p)

let test_assign_to_counter () =
  let p = parse {|
void compute(double x) {
  double comp = 0.0;
  for (int i = 0; i < 4; ++i) {
    i = x;
    comp += x;
  }
}
|} in
  check_bool "counter write" true
    (has_issue (function Analysis.Validate.Assign_to_counter "i" -> true | _ -> false) p)

let test_loop_bound_invalid () =
  let p = parse {|
void compute(double x) {
  double comp = 0.0;
  for (int i = 0; i < 100000; ++i) {
    comp += x;
  }
}
|} in
  check_bool "bound too large" true
    (has_issue (function Analysis.Validate.Loop_bound_invalid 100000 -> true | _ -> false) p)

let test_div_by_literal_zero () =
  let p = parse "void compute(double x) { double comp = 0.0; comp = x / 0.0; }" in
  check_bool "division by zero literal" true
    (has_issue (function Analysis.Validate.Division_by_literal_zero -> true | _ -> false) p)

let test_comp_never_assigned () =
  let p = parse "void compute(double x) { double comp = 0.0; double t = x; }" in
  check_bool "comp unassigned" true
    (has_issue (function Analysis.Validate.Comp_never_assigned -> true | _ -> false) p)

let test_issue_messages () =
  List.iter
    (fun issue ->
      check_bool "non-empty message" true
        (String.length (Analysis.Validate.issue_to_string issue) > 0))
    [ Analysis.Validate.Unbound_variable "v";
      Analysis.Validate.Redeclared_variable "v";
      Analysis.Validate.Array_index_out_of_bounds ("a", 9, 8);
      Analysis.Validate.Array_index_unbounded "a";
      Analysis.Validate.Non_array_indexed "v";
      Analysis.Validate.Array_used_as_scalar "a";
      Analysis.Validate.Assign_to_counter "i";
      Analysis.Validate.Loop_bound_invalid 0;
      Analysis.Validate.Division_by_literal_zero;
      Analysis.Validate.Comp_never_assigned;
      Analysis.Validate.Bad_arity "pow" ]

(* ------------------------------------------------------------------ *)
(* Features *)

let featured = {|
void compute(double a, double* xs, int n) {
  double comp = 0.0;
  for (int i = 0; i < 8; ++i) {
    double t = a * xs[i];
    comp += t + xs[i];
  }
  if (comp > 10.0) {
    comp = comp - sin(a) * 0.5;
  }
}
|}

let test_features () =
  let f = Analysis.Features.of_program (parse featured) in
  check_int "loops" 1 f.Analysis.Features.loop_count;
  check_int "ifs" 1 f.Analysis.Features.if_count;
  check_int "temps" 1 f.Analysis.Features.temp_count;
  check_int "array params" 1 f.Analysis.Features.array_param_count;
  check_int "scalar params" 1 f.Analysis.Features.scalar_param_count;
  check_int "int params" 1 f.Analysis.Features.int_param_count;
  check_bool "sin listed" true (List.mem "sin" f.Analysis.Features.distinct_math_fns);
  check_bool "split mul-add found" true (f.Analysis.Features.split_mul_add_patterns >= 1);
  check_bool "mul-add found" true (f.Analysis.Features.mul_add_patterns >= 1);
  check_int "accumulation loops" 1 f.Analysis.Features.accumulation_loops

(* ------------------------------------------------------------------ *)
(* Dataflow *)

let test_dataflow_edges () =
  let p = parse {|
void compute(double x, double y) {
  double comp = 0.0;
  double t = x * y;
  comp = t + x;
}
|} in
  let edges = Analysis.Dataflow.edges p in
  (* alpha-normalized: x -> p0, y -> p1, t -> v0 *)
  let has def use =
    List.exists
      (fun (e : Analysis.Dataflow.edge) -> e.def = def && e.use = use)
      edges
  in
  check_bool "t reads x" true (has "v0" "p0");
  check_bool "t reads y" true (has "v0" "p1");
  check_bool "comp reads t" true (has "comp" "v0")

let test_dataflow_match_self () =
  let p = parse featured in
  Alcotest.(check (float 1e-9)) "self match" 1.0
    (Analysis.Dataflow.match_score ~candidate:p ~reference:p)

let test_dataflow_match_rename_invariant () =
  let p = parse featured in
  let renamed = Ast.rename (fun n -> n ^ "_zz") p in
  Alcotest.(check (float 1e-9)) "rename invariant" 1.0
    (Analysis.Dataflow.match_score ~candidate:p ~reference:renamed)

(* ------------------------------------------------------------------ *)
(* Generators always valid *)

let qcheck_varity_valid =
  QCheck.Test.make ~name:"Varity generator emits valid programs" ~count:300
    QCheck.small_int (fun seed ->
      Analysis.Validate.is_valid (Gen.Varity.generate (Util.Rng.of_int seed)))

let qcheck_llm_config_valid =
  QCheck.Test.make ~name:"grammar generator emits valid programs (LLM regime)"
    ~count:300 QCheck.small_int (fun seed ->
      Analysis.Validate.is_valid
        (Gen.Generate.generate (Util.Rng.of_int seed) Llm.Client.generation_config
           Gen.Generate.human_naming))

let () =
  Alcotest.run "analysis"
    [
      ( "validator",
        [
          Alcotest.test_case "valid program" `Quick test_valid_program;
          Alcotest.test_case "sibling scopes" `Quick test_sibling_scopes_ok;
          Alcotest.test_case "unbound variable" `Quick test_unbound_variable;
          Alcotest.test_case "out-of-scope temp" `Quick test_out_of_scope_temp;
          Alcotest.test_case "redeclaration" `Quick test_redeclaration;
          Alcotest.test_case "index out of bounds" `Quick test_index_out_of_bounds;
          Alcotest.test_case "offset index in bounds" `Quick test_index_offset_in_bounds;
          Alcotest.test_case "unbounded index" `Quick test_index_unbounded;
          Alcotest.test_case "non-array indexed" `Quick test_non_array_indexed;
          Alcotest.test_case "array as scalar" `Quick test_array_as_scalar;
          Alcotest.test_case "assign to counter" `Quick test_assign_to_counter;
          Alcotest.test_case "loop bound invalid" `Quick test_loop_bound_invalid;
          Alcotest.test_case "div by literal zero" `Quick test_div_by_literal_zero;
          Alcotest.test_case "comp never assigned" `Quick test_comp_never_assigned;
          Alcotest.test_case "issue messages" `Quick test_issue_messages;
        ] );
      ( "features",
        [ Alcotest.test_case "feature extraction" `Quick test_features ] );
      ( "dataflow",
        [
          Alcotest.test_case "edges" `Quick test_dataflow_edges;
          Alcotest.test_case "self match" `Quick test_dataflow_match_self;
          Alcotest.test_case "rename invariance" `Quick test_dataflow_match_rename_invariant;
        ] );
      ( "generators",
        [
          QCheck_alcotest.to_alcotest qcheck_varity_valid;
          QCheck_alcotest.to_alcotest qcheck_llm_config_valid;
        ] );
    ]
