(* Tests for lib/difftest: differential testing and statistics. *)

open Helpers

(* A program designed to diverge: a chaotic recurrence seeded by a
   transcendental, so the CUDA libm's ulp divergence amplifies. *)
let chaotic = {|
void compute(double r, double x0) {
  double comp = 0.0;
  double rate = 3.7 + 0.2 * sin(r);
  double x = 0.2 + 0.6 * fabs(sin(x0));
  for (int i = 0; i < 48; ++i) {
    x = rate * x * (1.0 - x);
  }
  comp = x;
}
|}

(* A program that cannot diverge anywhere: a single addition. *)
let inert = "void compute(double x, double y) { double comp = 0.0; comp = x + y; }"

let test_comparison_counts () =
  let result = Difftest.Run.test (parse inert) Irsim.Inputs.[ Fp 1.0; Fp 2.0 ] in
  check_int "18 configurations" 18 (List.length result.Difftest.Run.outputs);
  check_int "no failures" 0 (List.length result.Difftest.Run.failures);
  check_int "18 cross comparisons" 18 (List.length result.Difftest.Run.cross);
  check_int "15 within comparisons" 15 (List.length result.Difftest.Run.within)

let test_inert_program_consistent () =
  let result = Difftest.Run.test (parse inert) Irsim.Inputs.[ Fp 1.5; Fp 2.5 ] in
  check_int "no inconsistencies" 0 (Difftest.Run.cross_inconsistencies result);
  check_bool "not successful" false (Difftest.Run.has_inconsistency result)

let test_chaotic_program_diverges () =
  (* sweep seeds until the libm divergence fires (probability ~0.9 per
     seed with two sin calls at p=0.45) *)
  let rng = Util.Rng.of_int 77 in
  let found = ref false in
  let max_digits = ref 0 in
  for _ = 1 to 10 do
    let inputs =
      Irsim.Inputs.[ Fp (Util.Rng.float_in rng (-5.0) 5.0);
                     Fp (Util.Rng.float_in rng (-5.0) 5.0) ]
    in
    let result = Difftest.Run.test (parse chaotic) inputs in
    if Difftest.Run.has_inconsistency result then begin
      found := true;
      List.iter
        (fun (_, (c : Difftest.Run.comparison)) ->
          max_digits := max !max_digits c.Difftest.Run.digits)
        result.Difftest.Run.cross
    end
  done;
  check_bool "divergence found" true !found;
  (* chaos amplifies a seed-value ulp into most printed digits *)
  check_bool "heavily amplified somewhere" true (!max_digits >= 10)

let test_comparison_fields () =
  let result = Difftest.Run.test (parse inert) Irsim.Inputs.[ Fp 0.5; Fp 0.25 ] in
  List.iter
    (fun ((a, b), (c : Difftest.Run.comparison)) ->
      check_bool "pair ordered" true (a < b);
      check_bool "same level compared" true
        (c.Difftest.Run.left.Difftest.Run.config.Compiler.Config.level
        = c.Difftest.Run.right.Difftest.Run.config.Compiler.Config.level);
      check_bool "consistent means zero digits" true
        (c.Difftest.Run.inconsistent || c.Difftest.Run.digits = 0))
    result.Difftest.Run.cross

let test_within_baseline_is_nofma () =
  let result = Difftest.Run.test (parse inert) Irsim.Inputs.[ Fp 0.5; Fp 0.25 ] in
  List.iter
    (fun (_, (c : Difftest.Run.comparison)) ->
      check_bool "left side at 00_nofma" true
        (c.Difftest.Run.left.Difftest.Run.config.Compiler.Config.level
        = Compiler.Optlevel.O0_nofma);
      check_bool "right side labelled" true
        (c.Difftest.Run.level <> Compiler.Optlevel.O0_nofma))
    result.Difftest.Run.within

(* ------------------------------------------------------------------ *)
(* Stats *)

let run_one stats src inputs =
  Difftest.Stats.add stats (Difftest.Run.test (parse src) inputs)

let test_stats_denominators () =
  let stats = Difftest.Stats.create () in
  run_one stats inert Irsim.Inputs.[ Fp 1.0; Fp 2.0 ];
  run_one stats inert Irsim.Inputs.[ Fp 3.0; Fp 4.0 ];
  Difftest.Stats.add_generation_failure stats;
  check_int "programs include failures" 3 (Difftest.Stats.n_programs stats);
  check_int "total comparisons" (3 * 18) (Difftest.Stats.total_comparisons stats);
  check_int "performed excludes failures" (2 * 18)
    (Difftest.Stats.performed_comparisons stats);
  check_int "within denominator" (3 * 15) (Difftest.Stats.within_comparisons stats);
  check_int "compile failures" 1 (Difftest.Stats.compile_failures stats)

let test_stats_rate () =
  let stats = Difftest.Stats.create () in
  run_one stats inert Irsim.Inputs.[ Fp 1.0; Fp 2.0 ];
  Alcotest.(check (float 1e-9)) "zero rate" 0.0
    (Difftest.Stats.inconsistency_rate stats);
  check_int "zero total" 0 (Difftest.Stats.total_inconsistencies stats)

let test_stats_aggregation_with_divergence () =
  let stats = Difftest.Stats.create () in
  let rng = Util.Rng.of_int 78 in
  for _ = 1 to 10 do
    let inputs =
      Irsim.Inputs.[ Fp (Util.Rng.float_in rng (-5.0) 5.0);
                     Fp (Util.Rng.float_in rng (-5.0) 5.0) ]
    in
    run_one stats chaotic inputs
  done;
  let total = Difftest.Stats.total_inconsistencies stats in
  check_bool "divergences found" true (total > 0);
  (* cross counts per pair/level sum to the total *)
  let sum = ref 0 in
  List.iteri
    (fun pair _ ->
      Array.iter
        (fun level ->
          sum := !sum + Difftest.Stats.cross_count stats ~pair ~level)
        Compiler.Optlevel.all)
    Compiler.Personality.pairs;
  check_int "cell sum = total" total !sum;
  (* pair totals likewise *)
  let pair_sum =
    List.fold_left ( + ) 0
      (List.mapi (fun pair _ -> Difftest.Stats.pair_total stats ~pair)
         Compiler.Personality.pairs)
  in
  check_int "pair totals sum" total pair_sum;
  (* class pairs: all inconsistencies are classified *)
  let class_sum =
    List.fold_left
      (fun acc pair -> acc + Difftest.Stats.class_pair_count stats pair)
      0 (Difftest.Stats.class_pairs_present stats)
  in
  check_int "classes cover all" total class_sum;
  (* digit accumulators align with counts *)
  List.iteri
    (fun pair _ ->
      Array.iter
        (fun level ->
          check_int "digit acc count matches"
            (Difftest.Stats.cross_count stats ~pair ~level)
            (Fp.Digits.Acc.count (Difftest.Stats.cross_digits stats ~pair ~level)))
        Compiler.Optlevel.all)
    Compiler.Personality.pairs

let test_stats_class_filter_by_level () =
  let stats = Difftest.Stats.create () in
  let rng = Util.Rng.of_int 79 in
  for _ = 1 to 5 do
    let inputs =
      Irsim.Inputs.[ Fp (Util.Rng.float_in rng (-5.0) 5.0);
                     Fp (Util.Rng.float_in rng (-5.0) 5.0) ]
    in
    run_one stats chaotic inputs
  done;
  let rr = (Fp.Bits.Real, Fp.Bits.Real) in
  let total = Difftest.Stats.class_pair_count stats rr in
  let by_level =
    Array.fold_left
      (fun acc level -> acc + Difftest.Stats.class_pair_count stats ~level rr)
      0 Compiler.Optlevel.all
  in
  check_int "level breakdown sums" total by_level

(* Cross-check: Run.test's outputs must equal compiling and running each
   configuration by hand. *)
let test_run_matches_manual_driver () =
  let p = parse chaotic in
  let inputs = Irsim.Inputs.[ Fp 1.25; Fp (-2.5) ] in
  let result = Difftest.Run.test p inputs in
  List.iter
    (fun (o : Difftest.Run.output) ->
      match Compiler.Driver.compile o.Difftest.Run.config p with
      | Error m -> Alcotest.fail m
      | Ok bin ->
        Alcotest.(check string) "hex agrees with manual compile+run"
          (Compiler.Driver.run_hex bin inputs)
          o.Difftest.Run.hex)
    result.Difftest.Run.outputs

let test_run_idempotent () =
  let p = parse chaotic in
  let inputs = Irsim.Inputs.[ Fp 0.5; Fp 3.25 ] in
  let hexes r =
    List.map (fun (o : Difftest.Run.output) -> o.Difftest.Run.hex)
      r.Difftest.Run.outputs
  in
  check_bool "two runs identical" true
    (hexes (Difftest.Run.test p inputs) = hexes (Difftest.Run.test p inputs))

let test_custom_config_list () =
  let p = parse inert in
  let configs =
    [ Compiler.Config.make Compiler.Personality.Gcc Compiler.Optlevel.O0;
      Compiler.Config.make Compiler.Personality.Clang Compiler.Optlevel.O0 ]
  in
  let r = Difftest.Run.test ~configs p Irsim.Inputs.[ Fp 1.0; Fp 2.0 ] in
  check_int "two outputs" 2 (List.length r.Difftest.Run.outputs);
  check_int "one comparable pair-level cell" 1 (List.length r.Difftest.Run.cross);
  check_int "no within pairs without baselines" 0
    (List.length r.Difftest.Run.within)

(* Executing 18 back-end outputs dedups to one run per distinct
   (post-pipeline IR, runtime) key; the metrics record the split. *)
let test_exec_dedup_metrics () =
  let hits = Obs.Metrics.counter "exec.dedup.hits" in
  let misses = Obs.Metrics.counter "exec.dedup.misses" in
  let h0 = Obs.Metrics.counter_value hits in
  let m0 = Obs.Metrics.counter_value misses in
  ignore (Difftest.Run.test (parse chaotic) Irsim.Inputs.[ Fp 1.0; Fp 2.0 ]);
  let dh = Obs.Metrics.counter_value hits - h0 in
  let dm = Obs.Metrics.counter_value misses - m0 in
  check_int "every output either hit or missed" 18 (dh + dm);
  check_bool "some configurations share an execution" true (dh > 0);
  check_bool "at least one distinct execution" true (dm > 0)

(* The VM engine must be invisible in the results: same hex outputs,
   same comparisons, as the tree-walking interpreter. *)
let test_engines_agree () =
  let p = parse chaotic in
  let inputs = Irsim.Inputs.[ Fp 1.25; Fp (-2.5) ] in
  let saved = Compiler.Driver.engine () in
  let under e =
    Compiler.Driver.set_engine e;
    let r = Difftest.Run.test p inputs in
    List.map (fun (o : Difftest.Run.output) -> o.Difftest.Run.hex)
      r.Difftest.Run.outputs
  in
  Fun.protect
    ~finally:(fun () -> Compiler.Driver.set_engine saved)
    (fun () ->
      check_bool "tree and vm produce identical hex outputs" true
        (under Compiler.Driver.Tree = under Compiler.Driver.Vm))

let test_pair_index () =
  check_int "gcc-clang first" 0
    (Difftest.Stats.pair_index (Compiler.Personality.Gcc, Compiler.Personality.Clang));
  check_int "clang-nvcc last" 2
    (Difftest.Stats.pair_index (Compiler.Personality.Clang, Compiler.Personality.Nvcc))

(* coverage_keys projects exactly the inconsistent comparisons, with
   rendered names the ledger can key on *)
let test_coverage_keys () =
  let consistent =
    Difftest.Run.test (parse inert) Irsim.Inputs.[ Fp 1.0; Fp 2.0 ]
  in
  check_bool "inert program projects no keys" true
    (Difftest.Run.coverage_keys consistent = []);
  let rng = Util.Rng.of_int 77 in
  let divergent = ref None in
  for _ = 1 to 10 do
    let inputs =
      Irsim.Inputs.[ Fp (Util.Rng.float_in rng (-5.0) 5.0);
                     Fp (Util.Rng.float_in rng (-5.0) 5.0) ]
    in
    let result = Difftest.Run.test (parse chaotic) inputs in
    if !divergent = None && Difftest.Run.has_inconsistency result then
      divergent := Some result
  done;
  match !divergent with
  | None -> Alcotest.fail "chaotic program never diverged"
  | Some result ->
    let keys = Difftest.Run.coverage_keys result in
    let inconsistent =
      List.length
        (List.filter (fun (_, (c : Difftest.Run.comparison)) ->
             c.Difftest.Run.inconsistent)
           result.Difftest.Run.cross)
      + List.length
          (List.filter (fun (_, (c : Difftest.Run.comparison)) ->
               c.Difftest.Run.inconsistent)
             result.Difftest.Run.within)
    in
    check_int "one key per inconsistent comparison" inconsistent
      (List.length keys);
    List.iter
      (fun (k : Obs.Coverage.key) ->
        check_bool "kind is cross or within" true
          (k.Obs.Coverage.kind = "cross" || k.Obs.Coverage.kind = "within");
        check_bool "classes rendered as a pair label" true
          (String.length k.Obs.Coverage.classes > 0
          && k.Obs.Coverage.classes.[0] = '{'))
      keys

let () =
  Alcotest.run "difftest"
    [
      ( "run",
        [
          Alcotest.test_case "comparison counts" `Quick test_comparison_counts;
          Alcotest.test_case "inert consistent" `Quick test_inert_program_consistent;
          Alcotest.test_case "chaotic diverges" `Quick test_chaotic_program_diverges;
          Alcotest.test_case "comparison fields" `Quick test_comparison_fields;
          Alcotest.test_case "within baseline" `Quick test_within_baseline_is_nofma;
          Alcotest.test_case "matches manual driver" `Quick test_run_matches_manual_driver;
          Alcotest.test_case "idempotent" `Quick test_run_idempotent;
          Alcotest.test_case "custom config list" `Quick test_custom_config_list;
          Alcotest.test_case "exec dedup metrics" `Quick test_exec_dedup_metrics;
          Alcotest.test_case "engines agree" `Quick test_engines_agree;
          Alcotest.test_case "coverage keys" `Quick test_coverage_keys;
        ] );
      ( "stats",
        [
          Alcotest.test_case "denominators" `Quick test_stats_denominators;
          Alcotest.test_case "rate" `Quick test_stats_rate;
          Alcotest.test_case "aggregation" `Quick test_stats_aggregation_with_divergence;
          Alcotest.test_case "class level filter" `Quick test_stats_class_filter_by_level;
          Alcotest.test_case "pair index" `Quick test_pair_index;
        ] );
    ]
