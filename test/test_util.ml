(* Tests for lib/util: deterministic RNG, simulated clock, text helpers. *)

open Helpers

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_determinism () =
  let a = Util.Rng.of_int 42 and b = Util.Rng.of_int 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Util.Rng.bits64 a) (Util.Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Util.Rng.of_int 1 and b = Util.Rng.of_int 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Util.Rng.bits64 a <> Util.Rng.bits64 b then differs := true
  done;
  check_bool "different seeds differ" true !differs

let test_copy_replays () =
  let a = Util.Rng.of_int 7 in
  ignore (Util.Rng.bits64 a);
  let b = Util.Rng.copy a in
  check_bool "copy replays" (Util.Rng.bits64 a = Util.Rng.bits64 b) true

let test_split_decorrelated () =
  let a = Util.Rng.of_int 7 in
  let child = Util.Rng.split a in
  let equal = ref 0 in
  for _ = 1 to 64 do
    if Util.Rng.bits64 a = Util.Rng.bits64 child then incr equal
  done;
  check_int "streams don't coincide" 0 !equal

let test_int_bounds () =
  let rng = Util.Rng.of_int 3 in
  for _ = 1 to 1000 do
    let v = Util.Rng.int rng 17 in
    check_bool "in [0,17)" true (v >= 0 && v < 17)
  done

let test_int_in_bounds () =
  let rng = Util.Rng.of_int 4 in
  for _ = 1 to 1000 do
    let v = Util.Rng.int_in rng (-5) 9 in
    check_bool "in [-5,9]" true (v >= -5 && v <= 9)
  done

let test_int_in_covers_endpoints () =
  let rng = Util.Rng.of_int 5 in
  let lo = ref false and hi = ref false in
  for _ = 1 to 2000 do
    match Util.Rng.int_in rng 0 3 with
    | 0 -> lo := true
    | 3 -> hi := true
    | _ -> ()
  done;
  check_bool "0 reached" true !lo;
  check_bool "3 reached" true !hi

let test_int_invalid () =
  let rng = Util.Rng.of_int 6 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Util.Rng.int rng 0))

let test_float_bounds () =
  let rng = Util.Rng.of_int 8 in
  for _ = 1 to 1000 do
    let v = Util.Rng.float rng 2.5 in
    check_bool "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_chance_extremes () =
  let rng = Util.Rng.of_int 9 in
  check_bool "p=0 never" false (Util.Rng.chance rng 0.0);
  check_bool "p=1 always" true (Util.Rng.chance rng 1.0)

let test_chance_one_draw () =
  (* Regression: the boundary probabilities used to early-return without
     consuming a draw, desyncing any replayed stream that crossed them.
     Every call must burn exactly one uniform, p in range or not. *)
  List.iter
    (fun p ->
      let a = Util.Rng.of_int 9 in
      let b = Util.Rng.of_int 9 in
      ignore (Util.Rng.chance a p);
      ignore (Util.Rng.float b 1.0);
      check_bool
        (Printf.sprintf "state advanced identically at p=%g" p)
        true
        (Util.Rng.state a = Util.Rng.state b))
    [ 0.0; 1.0; -0.5; 1.5; 0.3 ]

let test_chance_rate () =
  let rng = Util.Rng.of_int 10 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Util.Rng.chance rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  check_bool "rate near 0.3" true (Float.abs (rate -. 0.3) < 0.02)

let test_choose_uniform () =
  let rng = Util.Rng.of_int 11 in
  let counts = Array.make 4 0 in
  for _ = 1 to 8000 do
    let v = Util.Rng.choose rng [| 0; 1; 2; 3 |] in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c -> check_bool "roughly uniform" true (c > 1700 && c < 2300))
    counts

let test_weighted_bias () =
  let rng = Util.Rng.of_int 12 in
  let heavy = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Util.Rng.weighted rng [| (9.0, `H); (1.0, `L) |] = `H then incr heavy
  done;
  let rate = float_of_int !heavy /. float_of_int n in
  check_bool "9:1 weighting" true (Float.abs (rate -. 0.9) < 0.02)

let test_weighted_zero_weight_excluded () =
  let rng = Util.Rng.of_int 13 in
  for _ = 1 to 200 do
    check_bool "never the 0-weight item" true
      (Util.Rng.weighted rng [| (0.0, `Never); (1.0, `Always) |] = `Always)
  done

let test_shuffle_permutation () =
  let rng = Util.Rng.of_int 14 in
  let arr = Array.init 20 Fun.id in
  Util.Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 20 Fun.id) sorted

let test_sample_distinct () =
  let rng = Util.Rng.of_int 15 in
  let s = Util.Rng.sample rng [ 1; 2; 3; 4; 5 ] 3 in
  check_int "3 drawn" 3 (List.length s);
  check_int "distinct" 3 (List.length (List.sort_uniq compare s))

let test_sample_overdraw () =
  let rng = Util.Rng.of_int 16 in
  check_int "clamped to population" 2
    (List.length (Util.Rng.sample rng [ 1; 2 ] 10))

let test_gaussian_moments () =
  let rng = Util.Rng.of_int 17 in
  let n = 20_000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let x = Util.Rng.gaussian rng in
    sum := !sum +. x;
    sumsq := !sumsq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  check_bool "mean ~ 0" true (Float.abs mean < 0.05);
  check_bool "var ~ 1" true (Float.abs (var -. 1.0) < 0.1)

let test_gaussian_pair_draws () =
  (* A Box–Muller pair costs exactly two uniform draws: after two
     gaussians the raw stream must line up with two plain floats. *)
  let a = Util.Rng.of_int 18 and b = Util.Rng.of_int 18 in
  ignore (Util.Rng.gaussian a);
  ignore (Util.Rng.gaussian a);
  ignore (Util.Rng.float b 1.0);
  ignore (Util.Rng.float b 1.0);
  Alcotest.(check int64) "streams aligned after one pair" (Util.Rng.bits64 a)
    (Util.Rng.bits64 b)

let test_gaussian_copy_replays_spare () =
  let a = Util.Rng.of_int 19 in
  ignore (Util.Rng.gaussian a);
  (* a now holds the banked sine deviate *)
  let b = Util.Rng.copy a in
  Alcotest.(check (float 0.0)) "copy returns the same banked deviate"
    (Util.Rng.gaussian a) (Util.Rng.gaussian b);
  Alcotest.(check (float 0.0)) "and the streams stay in lockstep"
    (Util.Rng.gaussian a) (Util.Rng.gaussian b)

(* ------------------------------------------------------------------ *)
(* Sim_clock *)

let test_clock_accumulates () =
  let c = Util.Sim_clock.create () in
  Util.Sim_clock.advance c 1.5;
  Util.Sim_clock.advance c 2.25;
  Alcotest.(check (float 1e-9)) "sum" 3.75 (Util.Sim_clock.elapsed c)

let test_clock_rejects_negative () =
  let c = Util.Sim_clock.create () in
  Alcotest.check_raises "negative"
    (Invalid_argument "Sim_clock.advance: negative duration") (fun () ->
      Util.Sim_clock.advance c (-1.0))

let test_clock_reset () =
  let c = Util.Sim_clock.create () in
  Util.Sim_clock.advance c 10.0;
  Util.Sim_clock.reset c;
  Alcotest.(check (float 0.0)) "zero" 0.0 (Util.Sim_clock.elapsed c)

let test_hms () =
  check_string "zero" "00:00:00" (Util.Sim_clock.hms 0.0);
  check_string "round" "00:00:02" (Util.Sim_clock.hms 1.6);
  check_string "half hour" "00:30:42" (Util.Sim_clock.hms 1842.0);
  check_string "hours" "03:22:00" (Util.Sim_clock.hms 12120.0)

(* ------------------------------------------------------------------ *)
(* Text *)

let test_lines_unlines () =
  check_bool "split" true (Util.Text.lines "a\nb\nc\n" = [ "a"; "b"; "c" ]);
  check_string "join" "a\nb\n" (Util.Text.unlines [ "a"; "b" ])

let test_indent () =
  check_string "indents non-empty lines" "  a\n\n  b"
    (Util.Text.indent 2 "a\n\nb")

let test_padding () =
  check_string "right" "ab " (Util.Text.pad_right 3 "ab");
  check_string "left" " ab" (Util.Text.pad_left 3 "ab");
  check_string "no-op" "abcd" (Util.Text.pad_left 2 "abcd")

let test_contains_sub () =
  check_bool "found" true (Util.Text.contains_sub "hello world" "lo wo");
  check_bool "missing" false (Util.Text.contains_sub "hello" "z");
  check_bool "empty needle" true (Util.Text.contains_sub "x" "")

let test_common_prefix () =
  check_int "shared" 3 (Util.Text.common_prefix_len "abcx" "abcy");
  check_int "none" 0 (Util.Text.common_prefix_len "x" "y")

(* ------------------------------------------------------------------ *)

let qcheck_int_in =
  QCheck.Test.make ~name:"int_in always within range" ~count:500
    QCheck.(triple small_int small_int small_int)
    (fun (seed, a, b) ->
      let lo = min a b and hi = max a b in
      let rng = Util.Rng.of_int seed in
      let v = Util.Rng.int_in rng lo hi in
      v >= lo && v <= hi)

let qcheck_float_in =
  QCheck.Test.make ~name:"float_in always within range" ~count:500
    QCheck.(triple small_int (float_bound_exclusive 100.0) (float_bound_exclusive 100.0))
    (fun (seed, a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      QCheck.assume (lo < hi);
      let rng = Util.Rng.of_int seed in
      let v = Util.Rng.float_in rng lo hi in
      v >= lo && v <= hi)

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "copy replays" `Quick test_copy_replays;
          Alcotest.test_case "split decorrelated" `Quick test_split_decorrelated;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_int_in_bounds;
          Alcotest.test_case "int_in endpoints" `Quick test_int_in_covers_endpoints;
          Alcotest.test_case "int invalid bound" `Quick test_int_invalid;
          Alcotest.test_case "float bounds" `Quick test_float_bounds;
          Alcotest.test_case "chance extremes" `Quick test_chance_extremes;
          Alcotest.test_case "chance burns one draw" `Quick test_chance_one_draw;
          Alcotest.test_case "chance rate" `Quick test_chance_rate;
          Alcotest.test_case "choose uniform" `Quick test_choose_uniform;
          Alcotest.test_case "weighted bias" `Quick test_weighted_bias;
          Alcotest.test_case "weighted zero excluded" `Quick
            test_weighted_zero_weight_excluded;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "sample distinct" `Quick test_sample_distinct;
          Alcotest.test_case "sample overdraw" `Quick test_sample_overdraw;
          Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
          Alcotest.test_case "gaussian pair draws" `Quick
            test_gaussian_pair_draws;
          Alcotest.test_case "gaussian copy replays spare" `Quick
            test_gaussian_copy_replays_spare;
          QCheck_alcotest.to_alcotest qcheck_int_in;
          QCheck_alcotest.to_alcotest qcheck_float_in;
        ] );
      ( "sim_clock",
        [
          Alcotest.test_case "accumulates" `Quick test_clock_accumulates;
          Alcotest.test_case "rejects negative" `Quick test_clock_rejects_negative;
          Alcotest.test_case "reset" `Quick test_clock_reset;
          Alcotest.test_case "hms format" `Quick test_hms;
        ] );
      ( "text",
        [
          Alcotest.test_case "lines/unlines" `Quick test_lines_unlines;
          Alcotest.test_case "indent" `Quick test_indent;
          Alcotest.test_case "padding" `Quick test_padding;
          Alcotest.test_case "contains_sub" `Quick test_contains_sub;
          Alcotest.test_case "common prefix" `Quick test_common_prefix;
        ] );
    ]
