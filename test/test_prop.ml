(* Tests for lib/prop: the seeded property engine, its shrinkers, and
   the framework's property suites run at a fixed seed so the tier-1
   gate exercises the same invariants as [llm4fp fuzz]. *)

open Helpers

let fixed_seed = 20250704L

(* ------------------------------------------------------------------ *)
(* Engine: determinism, replay, shrinking *)

let int_arb lo hi =
  Prop.Engine.make ~shrink:Prop.Engine.Shrink.int ~print:string_of_int
    (Prop.Engine.Gen.int_in lo hi)

let test_run_deterministic () =
  let arb = int_arb 0 1_000_000 in
  let collect () =
    let acc = ref [] in
    (match
       Prop.Engine.run ~count:50 ~seed:fixed_seed arb (fun x ->
           acc := x :: !acc;
           true)
     with
    | Prop.Engine.Pass n -> check_int "all cases pass" 50 n
    | Prop.Engine.Fail _ -> Alcotest.fail "trivial property failed");
    !acc
  in
  check_bool "same seed, same case stream" true (collect () = collect ())

let test_failure_replays_from_seed () =
  let arb = int_arb 0 1_000_000 in
  (* Fails on roughly half the domain, so some iteration trips it. *)
  let prop x = x < 500_000 in
  match Prop.Engine.run ~count:200 ~seed:fixed_seed arb prop with
  | Prop.Engine.Pass _ -> Alcotest.fail "property should have failed"
  | Prop.Engine.Fail f ->
    check_bool "counterexample violates the property" false
      (prop f.Prop.Engine.counterexample);
    (* The printed seed deterministically replays the original
       (pre-shrink) counterexample. *)
    (match
       Prop.Engine.run_case ~seed:f.Prop.Engine.case_seed arb prop
     with
    | Prop.Engine.Pass _ -> Alcotest.fail "replay seed did not reproduce"
    | Prop.Engine.Fail replayed ->
      check_bool "replayed case still fails" false
        (prop replayed.Prop.Engine.counterexample));
    (* The failure report carries the replay hint. *)
    let report = Prop.Engine.pp_failure string_of_int f in
    let needle = Printf.sprintf "replay seed: %Ld" f.Prop.Engine.case_seed in
    check_bool "report prints the replay seed" true
      (Util.Text.contains_sub report needle)

let test_shrink_minimizes () =
  let arb = int_arb 0 1_000_000 in
  match Prop.Engine.run ~count:200 ~seed:fixed_seed arb (fun x -> x < 77) with
  | Prop.Engine.Pass _ -> Alcotest.fail "property should have failed"
  | Prop.Engine.Fail f ->
    (* Greedy halving toward 0 lands exactly on the boundary. *)
    check_int "shrunk to the smallest failing value" 77
      f.Prop.Engine.counterexample;
    check_bool "took shrink steps" true (f.Prop.Engine.shrink_steps > 0)

let test_shrink_int_converges () =
  let rec drive x steps =
    if steps > 100 then Alcotest.fail "Shrink.int does not converge"
    else
      match Prop.Engine.Shrink.int x () with
      | Seq.Nil -> x
      | Seq.Cons (c, _) ->
        check_bool "candidate is strictly smaller" true (abs c < abs x);
        drive c (steps + 1)
  in
  check_int "converges to 0 from above" 0 (drive 123_456 0);
  check_int "converges to 0 from below" 0 (drive (-9_999) 0)

let test_shrink_list_removes_chunks () =
  let candidates =
    List.of_seq (Prop.Engine.Shrink.list [ 1; 2; 3; 4; 5; 6; 7; 8 ])
  in
  check_bool "proposes candidates" true (candidates <> []);
  List.iter
    (fun c ->
      check_bool "never proposes the input itself" false
        (c = [ 1; 2; 3; 4; 5; 6; 7; 8 ]);
      check_bool "only ever removes elements" true (List.length c < 8))
    candidates;
  (* ddmin granularity: big half-chunks first, then single elements *)
  check_bool "tries removing each half" true
    (List.mem [ 5; 6; 7; 8 ] candidates && List.mem [ 1; 2; 3; 4 ] candidates);
  check_bool "tries single-element removals" true
    (List.exists (fun c -> List.length c = 7) candidates);
  (* greedy re-application drives all the way down to the empty list *)
  let rec drive l steps =
    if steps > 50 then Alcotest.fail "greedy chunk removal does not converge"
    else
      match Prop.Engine.Shrink.list l () with
      | Seq.Nil -> l
      | Seq.Cons (c, _) -> drive c (steps + 1)
  in
  check_bool "reaches the empty list" true (drive [ 1; 2; 3; 4; 5; 6; 7; 8 ] 0 = [])

let test_gen_list_bounds () =
  let rng = Util.Rng.of_int 11 in
  for _ = 1 to 200 do
    let l = Prop.Engine.Gen.(list ~min:2 ~max:5 (int_in 0 9)) rng in
    let n = List.length l in
    check_bool "length within bounds" true (n >= 2 && n <= 5)
  done

let test_iteration_env_knob () =
  (* LLM4FP_PROP_ITERS gates the quick/full split; garbage falls back. *)
  Unix.putenv "LLM4FP_PROP_ITERS" "7";
  check_int "env override" 7 (Prop.Engine.default_count ());
  Unix.putenv "LLM4FP_PROP_ITERS" "not-a-number";
  check_int "garbage falls back to default" 60 (Prop.Engine.default_count ());
  Unix.putenv "LLM4FP_PROP_ITERS" "";
  check_int "empty falls back to default" 60 (Prop.Engine.default_count ())

(* ------------------------------------------------------------------ *)
(* Program shrinker: candidates stay valid and strictly smaller *)

let test_shrink_program_valid_and_smaller () =
  let rng = Util.Rng.of_int 31 in
  for _ = 1 to 25 do
    let p = Gen.Varity.generate rng in
    let size = Lang.Ast.program_size p in
    let saw_smaller = ref false in
    Prop.Arb.shrink_program p
    |> Seq.iter (fun c ->
           check_bool "candidate validates" true (Analysis.Validate.is_valid c);
           check_bool "candidate differs from the input" false (c = p);
           (* literal/bound rewrites keep the node count; removals and
              hoists must strictly shrink it, and nothing may grow *)
           let csize = Lang.Ast.program_size c in
           check_bool "candidate never grows" true (csize <= size);
           if csize < size then saw_smaller := true);
    check_bool "some candidate is strictly smaller" true !saw_smaller
  done

let test_shrink_inputs_preserve_arity () =
  let rng = Util.Rng.of_int 32 in
  for _ = 1 to 25 do
    let p, inputs = Gen.Varity.gen_case rng in
    Prop.Arb.shrink_inputs inputs
    |> Seq.iter (fun c ->
           check_bool "shrunk inputs still match the params" true
             (Irsim.Inputs.matches p c))
  done

(* ------------------------------------------------------------------ *)
(* The framework suites at a fixed seed (satellite properties:
   interp totality, EFT identities, BLEU range and self-score) *)

let run_suite name =
  match Prop.Suites.find name with
  | None -> Alcotest.failf "unknown suite %s" name
  | Some s ->
    let r = s.Prop.Suites.run ~count:25 ~seed:fixed_seed () in
    (match r.Prop.Suites.failure with
    | None -> ()
    | Some report -> Alcotest.failf "suite %s failed:\n%s" name report);
    check_bool "suite passed" true (Prop.Suites.passed r);
    check_int "ran the requested count" 25 r.Prop.Suites.iterations

let suite_case name =
  Alcotest.test_case name `Quick (fun () -> run_suite name)

let test_all_suites_listed () =
  check_int "seventeen suites" 17 (List.length Prop.Suites.all);
  List.iter
    (fun s ->
      check_bool "documented" true (String.length s.Prop.Suites.doc > 0);
      match Prop.Suites.find s.Prop.Suites.name with
      | Some found -> check_string "find round-trips" s.Prop.Suites.name
          found.Prop.Suites.name
      | None -> Alcotest.failf "find misses %s" s.Prop.Suites.name)
    Prop.Suites.all

let () =
  Alcotest.run "prop"
    [
      ( "engine",
        [
          Alcotest.test_case "deterministic runs" `Quick
            test_run_deterministic;
          Alcotest.test_case "failure replays from printed seed" `Quick
            test_failure_replays_from_seed;
          Alcotest.test_case "shrink minimizes" `Quick test_shrink_minimizes;
          Alcotest.test_case "Shrink.int converges" `Quick
            test_shrink_int_converges;
          Alcotest.test_case "Shrink.list removes chunks" `Quick
            test_shrink_list_removes_chunks;
          Alcotest.test_case "Gen.list bounds" `Quick test_gen_list_bounds;
          Alcotest.test_case "LLM4FP_PROP_ITERS knob" `Quick
            test_iteration_env_knob;
        ] );
      ( "arb",
        [
          Alcotest.test_case "shrink_program valid and smaller" `Quick
            test_shrink_program_valid_and_smaller;
          Alcotest.test_case "shrink_inputs preserve arity" `Quick
            test_shrink_inputs_preserve_arity;
        ] );
      ( "suites",
        [
          Alcotest.test_case "all suites listed" `Quick test_all_suites_listed;
          suite_case "gen-valid";
          suite_case "interp-total";
          suite_case "fold-preserves";
          suite_case "pp-parse-fixpoint";
          suite_case "case-codec-roundtrip";
          suite_case "digits-total";
          suite_case "chance-one-draw";
          suite_case "eft-two-sum";
          suite_case "eft-two-prod";
          suite_case "bleu-range";
          suite_case "bleu-self";
          suite_case "vm-equiv";
          suite_case "fleet-merge";
        ] );
    ]
