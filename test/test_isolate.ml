(* Tests for lib/isolate: pLiner-style statement isolation. *)

open Helpers

let gcc level = Compiler.Config.make Compiler.Personality.Gcc level
let nvcc level = Compiler.Config.make Compiler.Personality.Nvcc level

(* A program with exactly one contraction-sensitive statement among inert
   ones: statement 1 computes a*a - 1 with a near 1, which gcc's O2
   contraction fuses. Statements 0 and 2 are contraction-free. *)
let culprit_program = parse {|
void compute(double a, double b) {
  double safe = a + b;
  double sensitive = a * a - 1.0;
  comp = sensitive * safe;
}
|}

let culprit_inputs = Irsim.Inputs.[ Fp (1.0 +. 0x1p-27); Fp 0.25 ]

let test_no_inconsistency () =
  match
    Isolate.isolate ~program:culprit_program ~inputs:culprit_inputs
      ~suspect:(gcc Compiler.Optlevel.O0) ~reference:(gcc Compiler.Optlevel.O0_nofma)
  with
  | Ok Isolate.No_inconsistency -> ()
  | Ok _ -> Alcotest.fail "expected agreement at O0 (no host contraction)"
  | Error m -> Alcotest.fail m

let test_isolates_contraction () =
  match
    Isolate.isolate ~program:culprit_program ~inputs:culprit_inputs
      ~suspect:(gcc Compiler.Optlevel.O2) ~reference:(gcc Compiler.Optlevel.O0_nofma)
  with
  | Ok (Isolate.Isolated [ 1 ]) -> ()
  | Ok v ->
    Alcotest.failf "expected statement 1, got: %s"
      (Isolate.verdict_to_string culprit_program v)
  | Error m -> Alcotest.fail m

let test_runtime_divergence_detected () =
  (* a bare libm call difference between host and device cannot be fixed
     by strictifying statements: the libraries themselves disagree *)
  let program = parse {|
void compute(double x) {
  double comp = 0.0;
  comp = sin(x);
}
|} in
  (* find an input where the CUDA libm nudges sin *)
  let rng = Util.Rng.of_int 5 in
  let rec hunt k =
    if k = 0 then None
    else
      let x = Util.Rng.float_in rng (-3.0) 3.0 in
      if
        Mathlib.Libm.call1 Mathlib.Libm.Cuda Lang.Ast.Sin x
        <> Mathlib.Libm.call1 Mathlib.Libm.Glibc Lang.Ast.Sin x
      then Some x
      else hunt (k - 1)
  in
  match hunt 100 with
  | None -> Alcotest.fail "no divergent sin argument found"
  | Some x -> begin
    match
      Isolate.isolate ~program ~inputs:Irsim.Inputs.[ Fp x ]
        ~suspect:(nvcc Compiler.Optlevel.O0_nofma)
        ~reference:(gcc Compiler.Optlevel.O0_nofma)
    with
    | Ok Isolate.Runtime_divergence -> ()
    | Ok v ->
      Alcotest.failf "expected runtime divergence, got: %s"
        (Isolate.verdict_to_string program v)
    | Error m -> Alcotest.fail m
  end

let test_hybrid_all_strict_equals_baseline () =
  (* with every statement strict and no fast-math runtime, the hybrid
     behaves like the unoptimized build *)
  let program = culprit_program in
  match
    ( Isolate.hybrid_compile (gcc Compiler.Optlevel.O2) program
        ~strict:(fun _ -> true),
      Compiler.Driver.compile (gcc Compiler.Optlevel.O0_nofma) program )
  with
  | Ok hybrid, Ok baseline ->
    Alcotest.(check string) "bitwise equal"
      (Compiler.Driver.run_hex baseline culprit_inputs)
      (Compiler.Driver.run_hex hybrid culprit_inputs)
  | Error m, _ | _, Error m -> Alcotest.fail m

let test_hybrid_none_strict_equals_optimized () =
  let program = culprit_program in
  match
    ( Isolate.hybrid_compile (gcc Compiler.Optlevel.O2) program
        ~strict:(fun _ -> false),
      Compiler.Driver.compile (gcc Compiler.Optlevel.O2) program )
  with
  | Ok hybrid, Ok optimized ->
    Alcotest.(check string) "bitwise equal"
      (Compiler.Driver.run_hex optimized culprit_inputs)
      (Compiler.Driver.run_hex hybrid culprit_inputs)
  | Error m, _ | _, Error m -> Alcotest.fail m

let test_minimality_with_two_culprits () =
  (* two independent contraction-sensitive statements both feed comp:
     both must be reported *)
  let program = parse {|
void compute(double a, double b) {
  double s1 = a * a - 1.0;
  double mid = a + b;
  double s2 = b * b - 1.0;
  comp = s1 * s2 * mid;
}
|} in
  let inputs = Irsim.Inputs.[ Fp (1.0 +. 0x1p-27); Fp (1.0 +. 0x1p-28) ] in
  match
    Isolate.isolate ~program ~inputs
      ~suspect:(gcc Compiler.Optlevel.O2)
      ~reference:(gcc Compiler.Optlevel.O0_nofma)
  with
  | Ok (Isolate.Isolated indices) ->
    check_bool "both culprits, nothing else" true
      (List.sort compare indices = [ 0; 2 ])
  | Ok v -> Alcotest.failf "unexpected: %s" (Isolate.verdict_to_string program v)
  | Error m -> Alcotest.fail m

let test_verdict_strings () =
  check_bool "no inconsistency" true
    (Isolate.verdict_to_string culprit_program Isolate.No_inconsistency
    = "no inconsistency on these inputs");
  check_bool "runtime mentions library" true
    (Util.Text.contains_sub
       (Isolate.verdict_to_string culprit_program Isolate.Runtime_divergence)
       "math library");
  check_bool "isolated quotes statements" true
    (Util.Text.contains_sub
       (Isolate.verdict_to_string culprit_program (Isolate.Isolated [ 1 ]))
       "sensitive")

let qcheck_hybrid_is_total =
  QCheck.Test.make ~name:"hybrid compile works on random programs/subsets"
    ~count:100 QCheck.small_int (fun seed ->
      let rng = Util.Rng.of_int seed in
      let p, inputs = Gen.Varity.gen_case rng in
      let n = List.length p.Lang.Ast.body in
      let strict i = (i + seed) mod 2 = 0 in
      ignore n;
      match Isolate.hybrid_compile (gcc Compiler.Optlevel.O3_fastmath) p ~strict with
      | Ok bin ->
        ignore (Compiler.Driver.run bin inputs);
        true
      | Error _ -> false)

let test_classify_corpus () =
  let outcome = Harness.Campaign.run ~budget:25 ~seed:99 Harness.Approach.Llm4fp in
  let c =
    Isolate.classify ~suspect:(gcc Compiler.Optlevel.O2)
      ~reference:(gcc Compiler.Optlevel.O0_nofma)
      outcome.Harness.Campaign.cases
  in
  let total =
    c.Isolate.agree + c.Isolate.isolated_one + c.Isolate.isolated_many
    + c.Isolate.runtime + c.Isolate.failed
  in
  Alcotest.(check int) "every case classified"
    (List.length outcome.Harness.Campaign.cases) total;
  check_bool "report renders" true
    (String.length (Isolate.classification_to_string c) > 20)

let () =
  Alcotest.run "isolate"
    [
      ( "isolate",
        [
          Alcotest.test_case "no inconsistency" `Quick test_no_inconsistency;
          Alcotest.test_case "isolates contraction" `Quick test_isolates_contraction;
          Alcotest.test_case "runtime divergence" `Quick test_runtime_divergence_detected;
          Alcotest.test_case "hybrid all strict" `Quick test_hybrid_all_strict_equals_baseline;
          Alcotest.test_case "hybrid none strict" `Quick test_hybrid_none_strict_equals_optimized;
          Alcotest.test_case "minimal two culprits" `Quick test_minimality_with_two_culprits;
          Alcotest.test_case "verdict strings" `Quick test_verdict_strings;
          QCheck_alcotest.to_alcotest qcheck_hybrid_is_total;
          Alcotest.test_case "corpus classification" `Slow test_classify_corpus;
        ] );
    ]
