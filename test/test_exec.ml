(* Tests for lib/exec: the work-sharing domain pool.

   The pool's contract is that [Pool.map ~jobs f xs] is observationally
   [List.map f xs] for pure [f] at every job count — same results, same
   order, same (earliest) exception — so most cases compare a parallel
   run against the sequential gold answer. *)

open Helpers

let test_empty () =
  check_int "empty in, empty out" 0
    (List.length (Exec.Pool.map ~jobs:4 (fun x -> x) []))

let test_singleton () =
  Alcotest.(check (list int)) "singleton" [ 42 ]
    (Exec.Pool.map ~jobs:4 (fun x -> x * 2) [ 21 ])

let test_ordering () =
  let xs = List.init 100 Fun.id in
  let expected = List.map (fun x -> x * x) xs in
  Alcotest.(check (list int)) "results in input order" expected
    (Exec.Pool.map ~jobs:4 (fun x -> x * x) xs)

let test_matches_sequential () =
  let xs = List.init 57 (fun i -> (i * 31) mod 17) in
  let f x = Printf.sprintf "<%d>" (x + 1) in
  Alcotest.(check (list string)) "jobs=4 = jobs=1"
    (Exec.Pool.map ~jobs:1 f xs)
    (Exec.Pool.map ~jobs:4 f xs)

let test_jobs1_is_sequential () =
  (* jobs=1 must run on the calling domain, in order, with no spawning:
     observable through side-effect order. *)
  let seen = ref [] in
  ignore
    (Exec.Pool.map ~jobs:1
       (fun x ->
         seen := x :: !seen;
         x)
       [ 1; 2; 3; 4; 5 ]);
  Alcotest.(check (list int)) "left-to-right effects" [ 1; 2; 3; 4; 5 ]
    (List.rev !seen)

let test_oversubscription () =
  (* More workers than items must neither deadlock nor drop results. *)
  let xs = [ 10; 20; 30; 40; 50 ] in
  Alcotest.(check (list int)) "jobs=16 over 5 items"
    (List.map (fun x -> x + 1) xs)
    (Exec.Pool.map ~jobs:16 (fun x -> x + 1) xs)

exception Boom of int

let test_exception_propagates () =
  check_bool "raises" true
    (try
       ignore (Exec.Pool.map ~jobs:4 (fun x -> if x = 3 then raise (Boom x) else x)
                 [ 1; 2; 3; 4; 5 ]);
       false
     with Boom 3 -> true)

let test_earliest_exception_wins () =
  (* With several failing items the re-raised exception is the one from
     the earliest input index, independent of completion timing. *)
  for _ = 1 to 20 do
    match
      Exec.Pool.map ~jobs:4
        (fun x -> if x >= 2 then raise (Boom x) else x)
        [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    with
    | _ -> Alcotest.fail "expected Boom"
    | exception Boom i -> check_int "earliest failing index" 2 i
  done

let test_nested_map () =
  (* A map issued from inside a pool worker degrades to sequential
     rather than deadlocking on the shared queue. *)
  let result =
    Exec.Pool.map ~jobs:4
      (fun row -> Exec.Pool.map ~jobs:4 (fun x -> (row * 10) + x) [ 1; 2; 3 ])
      [ 1; 2; 3; 4 ]
  in
  Alcotest.(check (list (list int)))
    "nested results"
    [ [ 11; 12; 13 ]; [ 21; 22; 23 ]; [ 31; 32; 33 ]; [ 41; 42; 43 ] ]
    result

let test_pool_reusable () =
  (* Consecutive maps (growing the pool in between) share one pool. *)
  let sum jobs n =
    List.fold_left ( + ) 0 (Exec.Pool.map ~jobs Fun.id (List.init n Fun.id))
  in
  check_int "first batch" 4950 (sum 2 100);
  check_int "wider batch" 4950 (sum 8 100);
  check_int "narrow again" 4950 (sum 2 100);
  check_bool "workers retained" true (Exec.Pool.worker_count () >= 1)

let test_recommended_jobs () =
  check_bool "at least one" true (Exec.Pool.recommended_jobs () >= 1)

let () =
  Alcotest.run "exec"
    [
      ( "pool",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "singleton" `Quick test_singleton;
          Alcotest.test_case "ordering" `Quick test_ordering;
          Alcotest.test_case "matches sequential" `Quick test_matches_sequential;
          Alcotest.test_case "jobs=1 sequential" `Quick test_jobs1_is_sequential;
          Alcotest.test_case "oversubscription" `Quick test_oversubscription;
          Alcotest.test_case "exception propagates" `Quick
            test_exception_propagates;
          Alcotest.test_case "earliest exception wins" `Quick
            test_earliest_exception_wins;
          Alcotest.test_case "nested map" `Quick test_nested_map;
          Alcotest.test_case "pool reusable" `Quick test_pool_reusable;
          Alcotest.test_case "recommended jobs" `Quick test_recommended_jobs;
        ] );
    ]
